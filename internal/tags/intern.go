package tags

import (
	"sync"
	"sync/atomic"
)

// Tag interning.
//
// Every tag issued (or registered) through a Store receives a dense,
// process-wide intern index, assigned in first-seen order. The labels
// package uses the first InternWidth indexes as bit positions of a
// per-set bitmask, turning the subset/superset tests on the dispatch
// hot path into single word operations (see labels.Set).
//
// Indexes are assigned exactly once per identity and never change:
// stores seeded identically mint identical identity streams, so
// re-creating a system with the same seed (as benchmarks do) reuses
// the same intern slots instead of exhausting the fast-path width.
//
// Interning is a pure acceleration layer: a tag that was never
// interned (e.g. one rebuilt via FromID and never registered) is still
// fully functional — set operations fall back to the sorted-slice
// path whenever any participating tag lacks a fast-path index.

// InternWidth is the number of intern indexes that participate in the
// labels bitmask fast path. Indexes at or beyond this width still get
// assigned (they keep the order dense for diagnostics) but do not map
// to mask bits.
//
// The width is 256 — four 64-bit words in the labels mask — so the
// paper's own evaluation workload (one tag per trader plus one per
// in-flight order, §6.2) stays on the word-op fast path at the
// 100–400 trader sweep points instead of spilling to the sorted-slice
// merge path after the 64th identity.
const InternWidth = 256

var (
	internMu    sync.Mutex
	internNext  uint32
	internCount atomic.Uint32
	internTable sync.Map // ID -> uint32
)

// Intern assigns (or returns) the dense intern index of t. The zero
// tag is never interned and reports index 0, false-like semantics via
// InternIndex.
func Intern(t Tag) uint32 {
	if t.IsZero() {
		return 0
	}
	if v, ok := internTable.Load(t.id); ok {
		return v.(uint32)
	}
	internMu.Lock()
	defer internMu.Unlock()
	if v, ok := internTable.Load(t.id); ok {
		return v.(uint32)
	}
	idx := internNext
	internNext++
	internTable.Store(t.id, idx)
	internCount.Store(internNext)
	return idx
}

// InternIndex returns t's intern index and whether t has been
// interned. It never assigns.
func InternIndex(t Tag) (uint32, bool) {
	if t.IsZero() {
		return 0, false
	}
	v, ok := internTable.Load(t.id)
	if !ok {
		return 0, false
	}
	return v.(uint32), true
}

// InternCount reports how many distinct tag identities have been
// interned process-wide.
func InternCount() int { return int(internCount.Load()) }
