package tags

import (
	"sync"
	"testing"
)

func TestCreateIssuesUniqueTags(t *testing.T) {
	s := NewStore(1)
	seen := make(map[Tag]bool)
	for i := 0; i < 10000; i++ {
		tag := s.Create("t", "unit")
		if tag.IsZero() {
			t.Fatalf("Create returned zero tag at %d", i)
		}
		if seen[tag] {
			t.Fatalf("duplicate tag at %d: %v", i, tag)
		}
		seen[tag] = true
	}
	if got := s.Count(); got != 10000 {
		t.Fatalf("Count = %d, want 10000", got)
	}
}

func TestLookupRoundTrip(t *testing.T) {
	s := NewStore(2)
	tag := s.Create("i-trader-77", "trader-77")
	in, err := s.Lookup(tag)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if in.Name != "i-trader-77" || in.Creator != "trader-77" || in.Tag != tag {
		t.Fatalf("Lookup = %+v", in)
	}
	if in.Seq != 1 {
		t.Fatalf("Seq = %d, want 1", in.Seq)
	}
}

func TestLookupUnknown(t *testing.T) {
	s := NewStore(3)
	other := NewStore(4).Create("x", "u")
	if _, err := s.Lookup(other); err == nil {
		t.Fatal("Lookup of foreign tag succeeded, want error")
	}
	if _, err := s.Lookup(Tag{}); err == nil {
		t.Fatal("Lookup of zero tag succeeded, want error")
	}
}

func TestNameFallsBackToString(t *testing.T) {
	s := NewStore(5)
	tag := s.Create("dark-pool", "broker")
	if got := s.Name(tag); got != "dark-pool" {
		t.Fatalf("Name = %q, want dark-pool", got)
	}
	foreign := NewStore(6).Create("x", "u")
	if got := s.Name(foreign); got != foreign.String() {
		t.Fatalf("Name(foreign) = %q, want %q", got, foreign.String())
	}
}

func TestCompareOrdersConsistently(t *testing.T) {
	s := NewStore(7)
	a, b := s.Create("a", "u"), s.Create("b", "u")
	if a.Compare(a) != 0 {
		t.Fatal("Compare(a,a) != 0")
	}
	if a.Compare(b) == 0 {
		t.Fatal("distinct tags compare equal")
	}
	if a.Compare(b) != -b.Compare(a) {
		t.Fatal("Compare is not antisymmetric")
	}
	if a.Less(b) == b.Less(a) {
		t.Fatal("Less inconsistent")
	}
}

func TestZeroTag(t *testing.T) {
	var z Tag
	if !z.IsZero() {
		t.Fatal("zero Tag not IsZero")
	}
	if z.String() != "tag(zero)" {
		t.Fatalf("String = %q", z.String())
	}
	s := NewStore(8)
	tag := s.Create("t", "u")
	if tag.IsZero() {
		t.Fatal("issued tag is zero")
	}
	if tag.String() == "tag(zero)" {
		t.Fatal("issued tag renders as zero")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	a, b := NewStore(42), NewStore(42)
	for i := 0; i < 100; i++ {
		if a.Create("t", "u") != b.Create("t", "u") {
			t.Fatal("same-seed stores diverged")
		}
	}
}

func TestConcurrentCreate(t *testing.T) {
	s := NewStore(9)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	got := make([][]Tag, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				got[w] = append(got[w], s.Create("t", "u"))
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[Tag]bool)
	for _, tags := range got {
		for _, tag := range tags {
			if seen[tag] {
				t.Fatal("concurrent Create produced duplicate")
			}
			seen[tag] = true
		}
	}
	if len(seen) != workers*per {
		t.Fatalf("issued %d tags, want %d", len(seen), workers*per)
	}
}
