// Package tags implements DEFC security tags (paper §3.1.1).
//
// A tag represents an individual, indivisible concern about either the
// confidentiality or the integrity of data. Tags are opaque values,
// implemented as unique random bit-strings; units refer to them by
// reference and cannot forge or modify them. Symbolic names (such as
// "i-trader-77") exist only for diagnostics and never affect identity.
package tags

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// IDLen is the length in bytes of a tag's random identity.
//
// The paper describes tags as "unique, random bit-strings"; 16 bytes
// matches the uniqueness guarantee of a UUID while keeping Tag a small
// comparable value usable as a map key.
const IDLen = 16

// ID is the raw identity of a tag. IDs are comparable and ordered
// lexicographically (see Compare).
type ID [IDLen]byte

// Tag is an opaque capability-like reference to a security concern.
// The zero Tag is invalid and never issued by a Store.
//
// Tag is a value type: copies are identical and interchangeable.
// Possession of a Tag value alone confers no privilege over it
// (privileges live in priv.Owned sets); it merely lets a unit name the
// tag in API calls.
type Tag struct {
	id ID
}

// IsZero reports whether t is the invalid zero tag.
func (t Tag) IsZero() bool { return t.id == ID{} }

// ID returns the tag's raw identity.
func (t Tag) ID() ID { return t.id }

// Compare orders tags lexicographically by identity. It returns -1, 0
// or +1 in the manner of bytes.Compare.
func (t Tag) Compare(u Tag) int {
	for i := 0; i < IDLen; i++ {
		switch {
		case t.id[i] < u.id[i]:
			return -1
		case t.id[i] > u.id[i]:
			return 1
		}
	}
	return 0
}

// Less reports whether t orders before u.
func (t Tag) Less(u Tag) bool { return t.Compare(u) < 0 }

// String renders a short hex prefix of the identity; it intentionally
// omits the symbolic name, which only the issuing Store knows.
func (t Tag) String() string {
	if t.IsZero() {
		return "tag(zero)"
	}
	return "tag(" + hex.EncodeToString(t.id[:4]) + ")"
}

// ErrUnknownTag is returned by Store lookups for tags the store did not
// issue.
var ErrUnknownTag = errors.New("tags: unknown tag")

// Info records a store's metadata about an issued tag.
type Info struct {
	Tag     Tag
	Name    string // symbolic name, diagnostics only
	Creator string // identity of the creating unit, diagnostics only
	Seq     uint64 // issue sequence number within the store
}

// Store is the DEFCon tag store (§3.2 "Label/tag management"): it
// issues fresh tags at runtime and records their metadata. A single
// Store serves one DEFCon instance; units hold Tag values issued here.
//
// A Store is safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	rng  *rand.Rand
	seq  uint64
	info map[Tag]Info
}

// NewStore returns a tag store whose identity stream is derived from
// seed. Distinct stores with distinct seeds produce disjoint tag
// populations with overwhelming probability; a fixed seed makes tests
// reproducible.
func NewStore(seed int64) *Store {
	return &Store{
		rng:  rand.New(rand.NewSource(seed)),
		info: make(map[Tag]Info),
	}
}

// Create issues a fresh, unique tag. name is a symbolic, diagnostics-only
// label; creator identifies the requesting unit (§3.1.3: "Units can
// request that tags be created for them at run-time by the system").
func (s *Store) Create(name, creator string) Tag {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		var id ID
		// Fill the identity from the store RNG. Two 64-bit reads cover
		// the 16-byte ID exactly.
		binary.BigEndian.PutUint64(id[0:8], s.rng.Uint64())
		binary.BigEndian.PutUint64(id[8:16], s.rng.Uint64())
		t := Tag{id: id}
		if t.IsZero() {
			continue // astronomically unlikely; the zero tag is reserved
		}
		if _, dup := s.info[t]; dup {
			continue
		}
		s.seq++
		s.info[t] = Info{Tag: t, Name: name, Creator: creator, Seq: s.seq}
		Intern(t)
		return t
	}
}

// FromID reconstructs a tag value from its raw identity. It is the
// deserialisation half of inter-node event transfer: a tag's identity
// IS its global name, so a faithfully transferred ID denotes the same
// concern on every node. Possession of the value still confers no
// privilege (privileges live in per-unit Owned sets).
func FromID(id ID) Tag { return Tag{id: id} }

// RegisterForeign records a tag minted on another node so local
// diagnostics (Name, Lookup) can resolve it. Registering an existing
// tag is a no-op; identity is global, metadata is advisory.
func (s *Store) RegisterForeign(t Tag, name, origin string) {
	if t.IsZero() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.info[t]; ok {
		return
	}
	s.seq++
	s.info[t] = Info{Tag: t, Name: name, Creator: origin, Seq: s.seq}
	Intern(t)
}

// Lookup returns the metadata for a tag issued by this store.
func (s *Store) Lookup(t Tag) (Info, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	in, ok := s.info[t]
	if !ok {
		return Info{}, fmt.Errorf("%w: %v", ErrUnknownTag, t)
	}
	return in, nil
}

// Name returns the symbolic name of t, or t.String() if the store does
// not know the tag. Intended for log and error messages.
func (s *Store) Name(t Tag) string {
	if in, err := s.Lookup(t); err == nil && in.Name != "" {
		return in.Name
	}
	return t.String()
}

// Count reports how many tags the store has issued.
func (s *Store) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.info)
}
