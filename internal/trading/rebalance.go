package trading

// Live shard rebalancing (DESIGN-dispatch.md §13): a Rebalancer
// migrates one symbol between broker shards with a freeze→drain→
// hand-off protocol, and symbol routing becomes an epoch-versioned
// indirection table consulted by every route decision — trader oshard
// stamping, the broker's forged-shard re-check, audit re-dispatch and
// journal recovery.
//
// The protocol, in publish order:
//
//	freeze      routeTable.freeze(S) — new orders for S park in a
//	            per-symbol queue instead of publishing; acquiring the
//	            table's write lock fences every in-flight publish.
//	fence       the Rebalancer publishes a "migrate" event routed to
//	            the source shard. Managed delivery is FIFO per
//	            receiver, so when the fence arrives every order for S
//	            published before the freeze has been matched.
//	drain       the source shard serializes S's complete state — book
//	            via orderbook.Dump, trade-log ring, conservation
//	            ledger, trade-ID sequence — into a hand-off blob,
//	            publishes it to the destination shard with the
//	            delegation authority (tr±auth) of every tag the state
//	            references, and forgets the symbol.
//	install     the destination restores the blob (first-install-wins
//	            by epoch), journals it, and re-wires the market-data
//	            depth hook after the restore so the shared feed sees
//	            no duplicate levels.
//	swap        once the install is durable the source journals a
//	            migrate-out record, the route table swaps the
//	            override, and the frozen queue drains into the new
//	            shard — still in arrival order.
//
// Durability is ordered so a crash can never lose the symbol: the
// destination's migrate-in record is flushed before the source appends
// migrate-out. A crash between the two leaves the symbol in both
// journals; recovery reconciles by epoch (reconcileMigrations) and
// exactly one shard keeps it.

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/freeze"
	"repro/internal/orderbook"
	"repro/internal/priv"
	"repro/internal/tags"
)

// routeSnap is one immutable routing snapshot: the copy-on-write value
// behind routeTable, same discipline as the dispatcher's filter index.
type routeSnap struct {
	// overrides maps migrated symbols to their current owner; symbols
	// absent here live on their RouteSymbol home shard.
	overrides map[string]int
	// frozen holds the publish queue of each symbol currently mid-
	// hand-off; publishers park order closures here instead of routing.
	frozen map[string]*frozenQ
}

// shardOf resolves a symbol under this snapshot.
func (s *routeSnap) shardOf(symbol string, nshards int) int {
	if s != nil {
		if sh, ok := s.overrides[symbol]; ok {
			return sh
		}
	}
	return RouteSymbol(symbol, nshards)
}

// clone copies the snapshot's maps for a copy-on-write update.
func (s *routeSnap) clone() *routeSnap {
	n := &routeSnap{}
	if len(s.overrides) > 0 {
		n.overrides = make(map[string]int, len(s.overrides))
		for k, v := range s.overrides {
			n.overrides[k] = v
		}
	}
	if len(s.frozen) > 0 {
		n.frozen = make(map[string]*frozenQ, len(s.frozen))
		for k, v := range s.frozen {
			n.frozen[k] = v
		}
	}
	return n
}

// routeTable is the epoch-versioned symbol→shard indirection. Reads
// are a lock-free snapshot load; publishers hold the read lock across
// resolve-and-publish so that acquiring the write lock (freeze, swap)
// is a fence: once freeze returns, no publish resolved under the old
// snapshot is still in flight.
type routeTable struct {
	nshards int
	mu      sync.RWMutex
	snap    atomic.Pointer[routeSnap]
	// epoch counts migrations; each Migrate stamps the next value onto
	// the hand-off so recovery can order competing ownership claims.
	epoch atomic.Uint64
}

func newRouteTable(nshards int) *routeTable {
	rt := &routeTable{nshards: nshards}
	rt.snap.Store(&routeSnap{})
	return rt
}

func (rt *routeTable) load() *routeSnap { return rt.snap.Load() }

// shardOf resolves a symbol's current owner — lock-free.
func (rt *routeTable) shardOf(symbol string) int {
	return rt.load().shardOf(symbol, rt.nshards)
}

// freeze parks future publishes for symbol. Returning from the write
// lock doubles as the publish fence described on routeTable.
func (rt *routeTable) freeze(symbol string) {
	rt.mu.Lock()
	s := rt.load().clone()
	if s.frozen == nil {
		s.frozen = make(map[string]*frozenQ, 1)
	}
	s.frozen[symbol] = &frozenQ{}
	rt.snap.Store(s)
	rt.mu.Unlock()
}

// swap points the symbol at its new owner; the frozen queue stays in
// place until release drains it.
func (rt *routeTable) swap(symbol string, dst int) {
	rt.mu.Lock()
	s := rt.load().clone()
	if dst == RouteSymbol(symbol, rt.nshards) {
		delete(s.overrides, symbol)
	} else {
		if s.overrides == nil {
			s.overrides = make(map[string]int, 1)
		}
		s.overrides[symbol] = dst
	}
	rt.snap.Store(s)
	rt.mu.Unlock()
}

// release drains the symbol's frozen queue into its current route and
// unfreezes. The loop re-checks under the write lock so a publisher
// racing the drain either lands in a batch we run or publishes
// normally after the frozen entry is gone — never neither.
func (rt *routeTable) release(symbol string) {
	for {
		rt.mu.Lock()
		s := rt.load()
		fq := s.frozen[symbol]
		if fq == nil {
			rt.mu.Unlock()
			return
		}
		thunks := fq.take()
		if len(thunks) == 0 {
			// Write lock held and queue empty: no publisher can add
			// (they need the read lock), so unfreezing here is atomic.
			ns := s.clone()
			delete(ns.frozen, symbol)
			rt.snap.Store(ns)
			rt.mu.Unlock()
			return
		}
		shard := s.shardOf(symbol, rt.nshards)
		rt.mu.Unlock()
		for _, fn := range thunks {
			fn(shard)
		}
	}
}

// install replaces the whole table — recovery rebuilding the route
// history from the journals.
func (rt *routeTable) install(overrides map[string]int, epoch uint64) {
	rt.mu.Lock()
	s := &routeSnap{}
	if len(overrides) > 0 {
		s.overrides = overrides
	}
	rt.snap.Store(s)
	rt.epoch.Store(epoch)
	rt.mu.Unlock()
}

// frozenQ is one frozen symbol's publish queue: deferred publications
// in arrival order, each run later with the post-swap shard.
type frozenQ struct {
	mu sync.Mutex
	q  []func(shard int)
}

func (f *frozenQ) add(fn func(int)) {
	f.mu.Lock()
	f.q = append(f.q, fn)
	f.mu.Unlock()
}

func (f *frozenQ) take() []func(int) {
	f.mu.Lock()
	q := f.q
	f.q = nil
	f.mu.Unlock()
	return q
}

// MigratePhase names the hand-off protocol checkpoints surfaced to
// MigrateOptions.OnPhase; the crash-interplay suite kills the platform
// at each one.
type MigratePhase int

const (
	// PhaseFrozen: routing parks the symbol's orders; the fence event
	// is about to publish.
	PhaseFrozen MigratePhase = iota + 1
	// PhaseDrained: the source shard has serialized and forgotten the
	// symbol; the hand-off blob is in flight or installed.
	PhaseDrained
	// PhaseTransferred: the destination installed the state and its
	// journal flushed — the migrate-in record is durable.
	PhaseTransferred
	// PhasePreSwap: the source's migrate-out record is written; the
	// route still points at the source.
	PhasePreSwap
	// PhaseDone: route swapped, frozen queue released.
	PhaseDone
)

func (ph MigratePhase) String() string {
	switch ph {
	case PhaseFrozen:
		return "frozen"
	case PhaseDrained:
		return "drained"
	case PhaseTransferred:
		return "transferred"
	case PhasePreSwap:
		return "pre-swap"
	case PhaseDone:
		return "done"
	}
	return fmt.Sprintf("phase(%d)", int(ph))
}

// MigrateOptions tunes one Migrate call.
type MigrateOptions struct {
	// OnPhase, when set, is called synchronously as each protocol
	// checkpoint is reached — the crash suite's kill hook.
	OnPhase func(MigratePhase)
	// Timeout bounds the waits on the drain and install
	// acknowledgements (default 30s).
	Timeout time.Duration
}

// migSignal is a drain/install acknowledgement from a shard handler.
type migSignal struct {
	symbol string
	epoch  uint64
	err    error
}

// Rebalancer migrates symbols between broker shards. One migration
// runs at a time; Migrate is safe to call concurrently.
type Rebalancer struct {
	p    *Platform
	unit *core.Unit

	// mu serialises migrations end to end.
	mu sync.Mutex

	// infMu guards the in-flight descriptor consulted by the shard
	// handlers (expecting): a "migrate" event is data any unit could
	// forge, so the shards act only on the hand-off this process
	// actually started.
	infMu    sync.Mutex
	inflight struct {
		active bool
		symbol string
		dst    int
		epoch  uint64
	}

	drained   chan migSignal
	installed chan migSignal

	migrations counter
}

func newRebalancer(p *Platform) *Rebalancer {
	return &Rebalancer{
		p:         p,
		unit:      p.Sys.NewUnit("rebalancer", core.UnitConfig{}),
		drained:   make(chan migSignal, 4),
		installed: make(chan migSignal, 4),
	}
}

// Migrations reports completed migrations.
func (r *Rebalancer) Migrations() uint64 { return r.migrations.load() }

// Migrate moves symbol to shard dst with the freeze→drain→hand-off
// protocol. No-op if dst already owns the symbol. Orders arriving
// during the hand-off are parked, never dropped, and drain into the
// new shard in arrival order, so per-symbol matching is bit-identical
// to a run that never migrated.
func (r *Rebalancer) Migrate(symbol string, dst int, opts ...MigrateOptions) error {
	var o MigrateOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	phase := func(ph MigratePhase) {
		if o.OnPhase != nil {
			o.OnPhase(ph)
		}
	}
	if symbol == "" {
		return errors.New("rebalance: empty symbol")
	}
	rt := r.p.routes
	if dst < 0 || dst >= rt.nshards {
		return fmt.Errorf("rebalance: destination shard %d out of range [0,%d)", dst, rt.nshards)
	}
	if r.p.closed.Load() {
		return errors.New("rebalance: platform closed")
	}

	r.mu.Lock()
	defer r.mu.Unlock()

	src := rt.shardOf(symbol)
	if src == dst {
		return nil
	}
	epoch := rt.epoch.Add(1)
	r.setInflight(symbol, dst, epoch)
	drainSignals(r.drained)
	drainSignals(r.installed)

	// Abort paths must stop expecting BEFORE releasing the queue: a
	// late fence delivery after release would otherwise still drain
	// the source while orders are flowing to it again.
	fail := func(stage string, err error) error {
		r.clearInflight()
		rt.release(symbol)
		return fmt.Errorf("rebalance %s (shard %d→%d): %s: %w", symbol, src, dst, stage, err)
	}

	rt.freeze(symbol)
	phase(PhaseFrozen)
	deadline := time.Now().Add(o.Timeout)
	if err := r.publishFence(symbol, src, dst, epoch); err != nil {
		return fail("fence publish", err)
	}
	if err := r.wait(r.drained, symbol, epoch, deadline); err != nil {
		return fail("drain", err)
	}
	phase(PhaseDrained)
	if err := r.wait(r.installed, symbol, epoch, deadline); err != nil {
		// The source has already forgotten the symbol; the only
		// consistent forward path is the destination (the blob is in
		// its queue or installed). Swap anyway — this branch is only
		// reachable on shutdown or a pathological stall.
		r.clearInflight()
		rt.swap(symbol, dst)
		rt.release(symbol)
		return fmt.Errorf("rebalance %s (shard %d→%d): install: %w", symbol, src, dst, err)
	}
	// Durability order: the destination's migrate-in record must be on
	// storage before the source writes migrate-out, so no crash point
	// leaves the symbol in neither journal. If the destination flush
	// fails, skip the migrate-out — recovery then finds the symbol in
	// both journals and reconciliation picks one owner by epoch.
	flushErr := r.p.Broker.shards[dst].flushJournal()
	phase(PhaseTransferred)
	if flushErr == nil {
		r.p.Broker.shards[src].journalMigrateOut(symbol, dst, epoch)
	}
	phase(PhasePreSwap)
	r.clearInflight()
	rt.swap(symbol, dst)
	rt.release(symbol)
	r.migrations.inc()
	phase(PhaseDone)
	return nil
}

// publishFence publishes the drain fence: a "migrate" event routed to
// the source shard whose b-protected body names the hand-off. Raising
// secrecy needs no privilege, so the Rebalancer's plain unit can
// confine the body to {b}; only the broker instances can read it.
func (r *Rebalancer) publishFence(symbol string, src, dst int, epoch uint64) error {
	e := r.unit.CreateEvent()
	if err := r.unit.AddPart(e, noTags, noTags, "type", "migrate"); err != nil {
		return err
	}
	if err := r.unit.AddPart(e, noTags, noTags, "oshard", int64(src)); err != nil {
		return err
	}
	body := freeze.MapOf("symbol", symbol, "dst", int64(dst), "epoch", int64(epoch))
	if err := r.unit.AddPart(e, setOf(r.p.tagB), noTags, "migrate_out", body); err != nil {
		return err
	}
	return r.unit.Publish(e)
}

// wait blocks for the shard acknowledgement matching (symbol, epoch),
// discarding stale signals from aborted migrations.
func (r *Rebalancer) wait(ch chan migSignal, symbol string, epoch uint64, deadline time.Time) error {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case sig := <-ch:
			if sig.symbol != symbol || sig.epoch != epoch {
				continue
			}
			return sig.err
		case <-tick.C:
			if r.p.closed.Load() {
				return errors.New("platform closed")
			}
			if time.Now().After(deadline) {
				return errors.New("timeout")
			}
		}
	}
}

func (r *Rebalancer) setInflight(symbol string, dst int, epoch uint64) {
	r.infMu.Lock()
	r.inflight.active, r.inflight.symbol, r.inflight.dst, r.inflight.epoch = true, symbol, dst, epoch
	r.infMu.Unlock()
}

func (r *Rebalancer) clearInflight() {
	r.infMu.Lock()
	r.inflight.active = false
	r.infMu.Unlock()
}

// expecting reports whether (symbol → dst, epoch) is the hand-off this
// process is running right now — the shards' defence against forged
// migrate events (any unit can raise a part's secrecy to {b}).
func (r *Rebalancer) expecting(symbol string, dst int, epoch uint64) bool {
	r.infMu.Lock()
	defer r.infMu.Unlock()
	i := r.inflight
	return i.active && i.symbol == symbol && i.dst == dst && i.epoch == epoch
}

func (r *Rebalancer) noteDrained(symbol string, epoch uint64, err error) {
	select {
	case r.drained <- migSignal{symbol: symbol, epoch: epoch, err: err}:
	default:
	}
}

func (r *Rebalancer) noteInstalled(symbol string, epoch uint64, err error) {
	select {
	case r.installed <- migSignal{symbol: symbol, epoch: epoch, err: err}:
	default:
	}
}

func drainSignals(ch chan migSignal) {
	for {
		select {
		case <-ch:
		default:
			return
		}
	}
}

// RouteOf reports the shard currently owning a symbol — RouteSymbol
// plus any live migration overrides.
func (p *Platform) RouteOf(symbol string) int { return p.routes.shardOf(symbol) }

// handleMigrateOut drains this shard's state for the fenced symbol:
// serialize, publish to the destination with the delegation authority
// the state references, then forget. Runs under b.mu from handle().
// Publish-before-mutate: a failed publish leaves the shard untouched.
func (b *Broker) handleMigrateOut(u *core.Unit, e *events.Event, bk *brokerBook) {
	view, err := u.ReadOne(e, "migrate_out")
	if err != nil {
		return
	}
	m, ok := view.Data.(*freeze.Map)
	if !ok {
		return
	}
	symbol := m.GetString("symbol")
	dst := int(m.GetInt("dst"))
	epoch := uint64(m.GetInt("epoch"))
	r := b.p.Rebalance
	if symbol == "" || r == nil || dst == b.shard || !r.expecting(symbol, dst, epoch) {
		b.migRejects.inc()
		return
	}
	sb := bk.syms[symbol]
	if sb == nil {
		// Never traded here: hand over an empty state so the
		// destination still learns the trade-ID namespace and epoch.
		sb = &symBook{book: orderbook.New(), ns: b.p.symbolNS(symbol)}
	}
	sb.epoch = epoch
	blob := encodeMigrateBlob(symbol, sb)
	refs := symAuthRefs(sb)

	out := u.CreateEvent()
	bSet := setOf(b.p.tagB)
	if u.AddPart(out, noTags, noTags, "type", "migrate") != nil ||
		u.AddPart(out, noTags, noTags, "oshard", int64(dst)) != nil ||
		u.AddPart(out, bSet, noTags, "migrate_in", string(blob)) != nil {
		r.noteDrained(symbol, epoch, errors.New("hand-off event build failed"))
		return
	}
	// Delegation authority travels with the state: attach tr±auth for
	// every tag the books or trade log reference, so the destination
	// can keep answering audits. Best effort — tags rebuilt from a
	// journal hold no live privileges (recovery is fail-safe about
	// delegation), and for those the attach fails harmlessly.
	moved := make([]tags.Tag, 0, len(refs))
	for t := range refs {
		moved = append(moved, t)
	}
	sort.Slice(moved, func(i, j int) bool { return moved[i].Less(moved[j]) })
	for _, t := range moved {
		_ = u.AttachPrivilegeToPart(out, "migrate_in", bSet, noTags, t, priv.PlusAuth)
		_ = u.AttachPrivilegeToPart(out, "migrate_in", bSet, noTags, t, priv.MinusAuth)
	}
	if err := u.Publish(out); err != nil {
		r.noteDrained(symbol, epoch, err)
		return
	}
	// Hand-off in flight: this shard no longer owns the symbol. Its
	// auth references leave with the state; a tag whose last referent
	// moved sheds its privileges here (the grants attached above carry
	// the authority onward).
	delete(bk.syms, symbol)
	for t, n := range refs {
		if rem := bk.auths[t] - n; rem > 0 {
			bk.auths[t] = rem
		} else {
			delete(bk.auths, t)
			b.dropAuthPair(u, t)
		}
	}
	r.noteDrained(symbol, epoch, nil)
}

// handleMigrateIn installs a hand-off blob on the destination shard.
// Reading the part bestows the attached tr±auth grants; the epoch
// guard makes installs first-wins so a duplicated or forged hand-off
// cannot clobber live state. Runs under b.mu from handle().
func (b *Broker) handleMigrateIn(u *core.Unit, e *events.Event, bk *brokerBook) {
	view, err := u.ReadOne(e, "migrate_in") // bestows the attached grants
	if err != nil {
		return
	}
	s, ok := view.Data.(string)
	if !ok {
		return
	}
	symbol, sb, err := b.decodeMigrateBlob([]byte(s), false)
	r := b.p.Rebalance
	if err != nil || r == nil || !r.expecting(symbol, b.shard, sb.epoch) {
		b.migRejects.inc()
		return
	}
	if cur := bk.syms[symbol]; cur != nil && cur.epoch >= sb.epoch {
		b.migRejects.inc()
		return
	}
	b.installSym(bk, symbol, sb)
	if b.jw != nil {
		b.jlast, _ = b.jw.Append(encodeMigrateInRec([]byte(s)))
		b.jsince++
	}
	r.noteInstalled(symbol, sb.epoch, nil)
	b.maybeCheckpoint(bk)
}

// installSym replaces the shard's state for one symbol, keeping the
// auth refcounts consistent: any state being displaced gives its
// references back first. The symBook arrives already restored and
// feed-wired by decodeMigrateBlob/decodeSymState.
func (b *Broker) installSym(bk *brokerBook, symbol string, sb *symBook) {
	if cur := bk.syms[symbol]; cur != nil {
		bk.subAuthRefs(symAuthRefs(cur))
	}
	bk.syms[symbol] = sb
	bk.addAuthRefs(symAuthRefs(sb))
}

// symAuthRefs computes the delegation-authority references one
// symbol's state holds: one per resting order, one per live trade-log
// occurrence of a tag. An order's tag belongs to exactly one symbol
// and a symbol to exactly one shard, so these counts are exactly the
// slice of brokerBook.auths the symbol contributes — subtracting them
// on hand-off and re-adding on install moves the refcounts with the
// books.
func symAuthRefs(sb *symBook) map[tags.Tag]int {
	refs := make(map[tags.Tag]int)
	for _, os := range sb.book.Dump() {
		if !os.Owner.Tag.IsZero() {
			refs[os.Owner.Tag]++
		}
	}
	for i := range sb.log.recs {
		rec := &sb.log.recs[i]
		if rec.id == 0 {
			continue
		}
		if !rec.trBuyer.IsZero() {
			refs[rec.trBuyer]++
		}
		if !rec.trSeller.IsZero() {
			refs[rec.trSeller]++
		}
	}
	return refs
}

func (bk *brokerBook) addAuthRefs(refs map[tags.Tag]int) {
	for t, n := range refs {
		bk.auths[t] += n
	}
}

func (bk *brokerBook) subAuthRefs(refs map[tags.Tag]int) {
	for t, n := range refs {
		if rem := bk.auths[t] - n; rem > 0 {
			bk.auths[t] = rem
		} else {
			delete(bk.auths, t)
		}
	}
}

// flushJournal forces the shard's staged journal records to storage —
// the hand-off durability point.
func (b *Broker) flushJournal() error {
	b.mu.Lock()
	jw := b.jw
	b.mu.Unlock()
	if jw == nil {
		return nil
	}
	return jw.Flush()
}

// journalMigrateOut appends and flushes the source side's migrate-out
// record. Write failures are shed-and-marked like any journal append;
// recovery reconciles the resulting double ownership by epoch.
func (b *Broker) journalMigrateOut(symbol string, dst int, epoch uint64) {
	b.mu.Lock()
	jw := b.jw
	if jw != nil {
		b.jlast, _ = jw.Append(encodeMigrateOutRec(symbol, dst, epoch))
		b.jsince++
	}
	b.mu.Unlock()
	if jw != nil {
		_ = jw.Flush()
	}
}

// Symbols lists the symbols this shard currently holds state for,
// sorted — the crash-interplay suite asserts exactly-one-owner with it.
func (b *Broker) Symbols() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.bk == nil {
		return nil
	}
	out := make([]string, 0, len(b.bk.syms))
	for sym := range b.bk.syms {
		out = append(out, sym)
	}
	sort.Strings(out)
	return out
}

// AuditForwards reports audit requests re-routed to the shard that
// owns the symbol now (trades published before a migration carry the
// old shard's oshard stamp).
func (b *Broker) AuditForwards() uint64 { return b.forwards.load() }

// MigrationRejects reports migrate events this shard refused: forged
// or stale hand-offs (not the one the Rebalancer is running), or
// duplicate installs losing the first-wins race.
func (b *Broker) MigrationRejects() uint64 { return b.migRejects.load() }

// reconcileMigrations runs after every shard has replayed its journal:
// if a crash landed between the destination's migrate-in and the
// source's migrate-out, the symbol exists on both shards — the higher
// hand-off epoch wins (the state that moved most recently), ties
// prefer the RouteSymbol home shard, then the lowest shard index. The
// loser's copy is dropped with its auth references; the route table is
// rebuilt from the surviving owners.
func (p *Platform) reconcileMigrations() {
	type claim struct {
		shard int
		epoch uint64
	}
	best := make(map[string]claim)
	var maxEpoch uint64
	for _, b := range p.Broker.shards {
		b.mu.Lock()
		if b.bk != nil {
			for sym, sb := range b.bk.syms {
				if sb.epoch > maxEpoch {
					maxEpoch = sb.epoch
				}
				cur, ok := best[sym]
				if !ok || sb.epoch > cur.epoch ||
					(sb.epoch == cur.epoch && b.shard == RouteSymbol(sym, len(p.Broker.shards))) {
					best[sym] = claim{shard: b.shard, epoch: sb.epoch}
				}
			}
		}
		b.mu.Unlock()
	}
	overrides := make(map[string]int)
	for _, b := range p.Broker.shards {
		b.mu.Lock()
		if b.bk != nil {
			for sym, sb := range b.bk.syms {
				if best[sym].shard != b.shard {
					b.bk.subAuthRefs(symAuthRefs(sb))
					delete(b.bk.syms, sym)
				}
			}
		}
		b.mu.Unlock()
	}
	for sym, c := range best {
		if c.shard != RouteSymbol(sym, p.routes.nshards) {
			overrides[sym] = c.shard
		}
	}
	p.routes.install(overrides, maxEpoch)
}
