package trading

// Planner is the policy layer above the Rebalancer (DESIGN-dispatch.md
// §15): it closes the loop from load measurement (load.go) to
// automatic symbol migration (rebalance.go). A periodic tick samples
// the platform's load, detects a hot shard by EWMA fill-rate imbalance
// and — with hysteresis — picks the smallest set of hot symbols whose
// move rebalances the pool, then schedules Rebalancer.Migrate calls
// serially. Correctness rides entirely on the migration mechanism:
// the planner only ever chooses WHEN and WHAT to migrate, and Migrate
// is bit-identity-preserving per symbol, so a planner-on run produces
// exactly the fills, books and trade logs of a planner-off run in
// every security mode.
//
// Hysteresis — why the planner provably does not thrash:
//
//   - EWMA smoothing (load.go): a one-burst spike decays with time
//     constant tau instead of registering as a hot shard.
//   - Streak gate: the imbalance ratio must exceed HotRatio on
//     HotStreak consecutive ticks; any balanced tick resets the
//     streak, so load oscillating around the threshold never
//     accumulates one.
//   - Improvement floor: a wave only executes if the predicted
//     post-move imbalance improves on the measured one by at least
//     ImprovementFloor (relative) — moving the load problem to
//     another shard (predicted == measured) is rejected.
//   - Per-symbol cooldown: a migrated symbol is not a candidate again
//     for SymbolCooldown, so no symbol ping-pongs between shards even
//     if the measurement disagrees with the prediction.
//   - Wave cooldown: after an executed wave the planner waits
//     WaveCooldown before the next one, giving the EWMA time to
//     re-converge on the post-move routing before it is judged.
//
// Under a static imbalance this yields exactly one wave: the wave
// executes, the moved flow re-attributes to the destination within a
// few tau, the ratio drops below HotRatio and every later tick reads
// "balanced" (streak stays zero). The planner-hysteresis tests pin
// both properties against the pure decide() core.
//
// Every decision emits a labeled plan event. The plan body derives
// from the load measurements, which derive from {b}-confined order
// parts, so per the derived-event rule its label is the join of its
// inputs: S={b} (the public queue depths and shard indices join as
// public). Raising secrecy needs no privilege — the planner's plain
// unit confines the body exactly like the Rebalancer's fence — and
// the public "type"="plan" part makes the decision stream observable
// without revealing flow details to unprivileged units.

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/freeze"
)

// Planner defaults; every knob is overridable via PlannerConfig.
const (
	defaultPlanInterval      = 50 * time.Millisecond
	defaultHotRatio          = 1.6
	defaultHotStreak         = 3
	defaultImprovementFloor  = 0.1
	defaultSymbolCooldown    = 2 * time.Second
	defaultWaveCooldown      = time.Second
	defaultMinSamples        = 4
	defaultMinRate           = 20.0
	defaultMaxMovesPerPlan   = 4
	defaultPlanReportWindow  = 128
)

// PlannerConfig tunes the rebalancing policy. The zero value disables
// the planner entirely (Config.Planner.Enable gates it).
type PlannerConfig struct {
	// Enable turns the planner on.
	Enable bool
	// Manual suppresses the periodic goroutine: the planner is
	// assembled but ticks only when the caller invokes Step —
	// deterministic pacing for tests and smoke jobs.
	Manual bool
	// Interval is the tick period (default 50ms).
	Interval time.Duration
	// EWMATau is the load-rate smoothing time constant (default 500ms).
	EWMATau time.Duration
	// HotRatio is the imbalance threshold: a shard is hot when its
	// EWMA fill rate exceeds HotRatio × the per-shard mean (default
	// 1.6). Must exceed 1.
	HotRatio float64
	// HotStreak is how many consecutive hot ticks arm a wave (default
	// 3); any balanced tick resets the streak.
	HotStreak int
	// ImprovementFloor is the minimum relative imbalance improvement a
	// wave must predict to execute (default 0.1 = 10%).
	ImprovementFloor float64
	// SymbolCooldown keeps a migrated symbol off the candidate list
	// (default 2s).
	SymbolCooldown time.Duration
	// WaveCooldown is the minimum dwell between executed waves
	// (default 1s).
	WaveCooldown time.Duration
	// MinSamples is the warm-up: no decision executes before this many
	// load samples (default 4).
	MinSamples uint64
	// MinRate is the activity floor in total fills/s; below it the
	// pool is idle and imbalance ratios are noise (default 20).
	MinRate float64
	// MaxMovesPerPlan bounds one wave (default 4).
	MaxMovesPerPlan int
	// OnPlan, when set, receives every decision synchronously on the
	// planner's tick (or the Step caller's goroutine).
	OnPlan func(PlanReport)
}

func (c *PlannerConfig) defaults() {
	if c.Interval <= 0 {
		c.Interval = defaultPlanInterval
	}
	if c.EWMATau <= 0 {
		c.EWMATau = defaultEWMATau
	}
	if c.HotRatio <= 1 {
		c.HotRatio = defaultHotRatio
	}
	if c.HotStreak <= 0 {
		c.HotStreak = defaultHotStreak
	}
	if c.ImprovementFloor <= 0 {
		c.ImprovementFloor = defaultImprovementFloor
	}
	if c.SymbolCooldown <= 0 {
		c.SymbolCooldown = defaultSymbolCooldown
	}
	if c.WaveCooldown <= 0 {
		c.WaveCooldown = defaultWaveCooldown
	}
	if c.MinSamples == 0 {
		c.MinSamples = defaultMinSamples
	}
	if c.MinRate <= 0 {
		c.MinRate = defaultMinRate
	}
	if c.MaxMovesPerPlan <= 0 {
		c.MaxMovesPerPlan = defaultMaxMovesPerPlan
	}
}

// PlanDecision names the outcome of one planner tick.
type PlanDecision string

const (
	// PlanWarming: not enough load samples yet.
	PlanWarming PlanDecision = "warming"
	// PlanIdle: total fill rate below MinRate; ratios are noise.
	PlanIdle PlanDecision = "idle"
	// PlanBalanced: imbalance below HotRatio; streak reset.
	PlanBalanced PlanDecision = "balanced"
	// PlanStreak: hot, but the streak gate has not armed yet.
	PlanStreak PlanDecision = "streak"
	// PlanCooldown: hot and armed, but inside the wave cooldown.
	PlanCooldown PlanDecision = "cooldown"
	// PlanNoCandidates: hot, but no movable symbol (all cooled down or
	// rate-less).
	PlanNoCandidates PlanDecision = "no-candidates"
	// PlanNoImprovement: the best wave predicts less improvement than
	// the floor — moving load would just move the problem.
	PlanNoImprovement PlanDecision = "no-improvement"
	// PlanExecute: a migration wave was scheduled.
	PlanExecute PlanDecision = "execute"
)

// PlannedMove is one scheduled migration inside a wave.
type PlannedMove struct {
	Symbol   string
	From, To int
	// FillRate is the symbol's EWMA fill rate that justified the move.
	FillRate float64
	// Err records a failed Migrate call ("" = executed cleanly).
	Err string
}

// PlanReport is one tick's full decision record — the
// preflight (measurements) / plan (moves) / execute (Errs) / report
// (this struct, the plan event, the OnPlan hook) shape.
type PlanReport struct {
	Seq uint64
	At  time.Time
	// Hot and Ratio are the measured hottest shard and imbalance.
	Hot   int
	Ratio float64
	// Predicted is the post-wave imbalance the move simulation
	// expects (0 when no wave was simulated).
	Predicted float64
	Decision  PlanDecision
	Moves     []PlannedMove
}

// Executed reports whether this tick scheduled a wave.
func (r *PlanReport) Executed() bool { return r.Decision == PlanExecute }

// policy is the pure decision core: given a load snapshot and a clock
// it decides, mutating only its own hysteresis state. Pure in the
// sense that it touches no platform state — the hysteresis property
// tests drive it with synthetic snapshots.
type policy struct {
	cfg       PlannerConfig
	streak    int
	lastWave  time.Time
	lastMoved map[string]time.Time
}

func newPolicy(cfg PlannerConfig) policy {
	cfg.defaults()
	return policy{cfg: cfg, lastMoved: make(map[string]time.Time)}
}

// decide runs one tick of the policy pipeline:
// warm-up → activity floor → imbalance → streak gate → wave cooldown
// → candidate selection/simulation → improvement floor → execute.
func (pl *policy) decide(snap *LoadSnapshot, now time.Time) PlanReport {
	hot, ratio := snap.Imbalance()
	rep := PlanReport{At: now, Hot: hot, Ratio: ratio}
	cfg := &pl.cfg
	switch {
	case snap.Samples < cfg.MinSamples:
		pl.streak = 0
		rep.Decision = PlanWarming
		return rep
	case snap.TotalFillRate() < cfg.MinRate:
		pl.streak = 0
		rep.Decision = PlanIdle
		return rep
	case ratio < cfg.HotRatio:
		pl.streak = 0
		rep.Decision = PlanBalanced
		return rep
	}
	pl.streak++
	if pl.streak < cfg.HotStreak {
		rep.Decision = PlanStreak
		return rep
	}
	if !pl.lastWave.IsZero() && now.Sub(pl.lastWave) < cfg.WaveCooldown {
		rep.Decision = PlanCooldown
		return rep
	}
	moves, predicted := pl.selectMoves(snap, hot, now)
	rep.Predicted = predicted
	if len(moves) == 0 {
		rep.Decision = PlanNoCandidates
		return rep
	}
	if ratio-predicted < cfg.ImprovementFloor*ratio {
		rep.Decision = PlanNoImprovement
		return rep
	}
	rep.Decision, rep.Moves = PlanExecute, moves
	pl.streak = 0
	pl.lastWave = now
	for i := range moves {
		pl.lastMoved[moves[i].Symbol] = now
	}
	return rep
}

// selectMoves simulates the smallest hot-symbol set whose move brings
// the predicted imbalance under HotRatio: candidates are the hot
// shard's symbols by EWMA fill rate descending (cooled-down and
// rate-less symbols excluded), each virtually moved to the currently
// coldest shard, and each individual move must itself improve the
// simulated imbalance — a move that merely relocates the hot spot is
// skipped, which is what makes a one-hot-symbol pool settle instead
// of ping-ponging.
func (pl *policy) selectMoves(snap *LoadSnapshot, hot int, now time.Time) ([]PlannedMove, float64) {
	cfg := &pl.cfg
	rates := make([]float64, len(snap.Shards))
	for i := range snap.Shards {
		rates[snap.Shards[i].Shard] = snap.Shards[i].FillRate
	}
	imbalance := func(rs []float64) float64 {
		var sum, max float64
		for _, r := range rs {
			sum += r
			if r > max {
				max = r
			}
		}
		if mean := sum / float64(len(rs)); mean > 0 {
			return max / mean
		}
		return 0
	}
	coldest := func(rs []float64) int {
		c := 0
		for i := range rs {
			if rs[i] < rs[c] {
				c = i
			}
		}
		return c
	}

	var cands []SymbolLoad
	for i := range snap.Symbols {
		sl := &snap.Symbols[i]
		if sl.Shard != hot || sl.FillRate <= 0 {
			continue
		}
		if t, ok := pl.lastMoved[sl.Symbol]; ok && now.Sub(t) < cfg.SymbolCooldown {
			continue
		}
		cands = append(cands, *sl)
	}
	// Largest first; ties broken by symbol so the wave is a pure
	// function of the snapshot.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].FillRate != cands[j].FillRate {
			return cands[i].FillRate > cands[j].FillRate
		}
		return cands[i].Symbol < cands[j].Symbol
	})

	var moves []PlannedMove
	cur := imbalance(rates)
	for i := range cands {
		if len(moves) >= cfg.MaxMovesPerPlan || cur < cfg.HotRatio {
			break
		}
		dst := coldest(rates)
		if dst == hot {
			break
		}
		next := make([]float64, len(rates))
		copy(next, rates)
		next[hot] -= cands[i].FillRate
		next[dst] += cands[i].FillRate
		if ni := imbalance(next); ni < cur {
			rates, cur = next, ni
			moves = append(moves, PlannedMove{
				Symbol: cands[i].Symbol, From: hot, To: dst,
				FillRate: cands[i].FillRate,
			})
		}
	}
	return moves, cur
}

// Planner runs the policy against the live platform: sample → decide →
// execute → report, periodically or on demand (Manual/Step).
type Planner struct {
	p    *Platform
	unit *core.Unit

	// mu serialises ticks (the periodic goroutine and any Step caller)
	// and guards the policy state and the report ring.
	mu      sync.Mutex
	pol     policy
	seq     uint64
	reports []PlanReport

	plans counter // executed waves
	moved counter // cleanly executed migrations

	started atomic.Bool
	stop    chan struct{}
	done    chan struct{}
}

func newPlanner(p *Platform) *Planner {
	return &Planner{
		p:    p,
		unit: p.Sys.NewUnit("planner", core.UnitConfig{}),
		pol:  newPolicy(p.cfg.Planner),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// start launches the periodic tick (unless Manual); idempotent.
func (pl *Planner) start() {
	if pl.pol.cfg.Manual || pl.started.Swap(true) {
		return
	}
	go pl.run()
}

// stopWait stops the periodic tick and waits for it to exit; no-op in
// Manual mode or before start.
func (pl *Planner) stopWait() {
	if !pl.started.Load() {
		return
	}
	select {
	case <-pl.stop:
	default:
		close(pl.stop)
	}
	<-pl.done
}

func (pl *Planner) run() {
	defer close(pl.done)
	tick := time.NewTicker(pl.pol.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-pl.stop:
			return
		case <-tick.C:
			pl.Step()
		}
	}
}

// Step runs one planner tick synchronously and returns its report —
// the deterministic pacing hook for tests and smoke jobs (Manual
// mode), also what the periodic goroutine calls.
func (pl *Planner) Step() PlanReport {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	snap := pl.p.SampleLoad()
	pl.seq++
	rep := pl.pol.decide(&snap, snap.At)
	rep.Seq = pl.seq
	if rep.Executed() {
		// Execute serially: Rebalancer.Migrate serialises internally,
		// and one-at-a-time hand-offs bound how much flow is frozen at
		// once. A failed call (shutdown, timeout) is recorded on the
		// move and the wave continues — the next tick re-measures.
		for i := range rep.Moves {
			m := &rep.Moves[i]
			if err := pl.p.Rebalance.Migrate(m.Symbol, m.To); err != nil {
				m.Err = err.Error()
			} else {
				pl.moved.inc()
			}
		}
		pl.plans.inc()
	}
	pl.publishPlan(&rep)
	pl.reports = append(pl.reports, rep)
	if len(pl.reports) > defaultPlanReportWindow {
		pl.reports = pl.reports[len(pl.reports)-defaultPlanReportWindow:]
	}
	if hook := pl.pol.cfg.OnPlan; hook != nil {
		hook(rep)
	}
	return rep
}

// publishPlan emits the decision as a labeled event: public
// "type"="plan" part for observability, body confined to S={b} — the
// join of its inputs per the derived-event rule (the rates derive
// from {b}-confined order flow; the queue depths and shard indices
// are public and join as public). Best effort: a publish failure
// costs observability, never a decision.
func (pl *Planner) publishPlan(rep *PlanReport) {
	e := pl.unit.CreateEvent()
	if pl.unit.AddPart(e, noTags, noTags, "type", "plan") != nil {
		return
	}
	moves := ""
	for i := range rep.Moves {
		m := &rep.Moves[i]
		if i > 0 {
			moves += ","
		}
		moves += m.Symbol
	}
	body := freeze.MapOf(
		"seq", int64(rep.Seq),
		"decision", string(rep.Decision),
		"hot", int64(rep.Hot),
		"ratio_milli", int64(rep.Ratio*1000),
		"predicted_milli", int64(rep.Predicted*1000),
		"moves", moves,
	)
	if pl.unit.AddPart(e, setOf(pl.p.tagB), noTags, "plan", body) != nil {
		return
	}
	_ = pl.unit.Publish(e)
}

// Reports copies the recent decision window (oldest first).
func (pl *Planner) Reports() []PlanReport {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	out := make([]PlanReport, len(pl.reports))
	copy(out, pl.reports)
	return out
}

// Plans reports executed migration waves.
func (pl *Planner) Plans() uint64 { return pl.plans.load() }

// Moved reports cleanly executed planner-scheduled migrations.
func (pl *Planner) Moved() uint64 { return pl.moved.load() }
