package trading

// Proof obligations of live shard rebalancing (rebalance.go,
// DESIGN-dispatch.md §13):
//
//   - migration equivalence: a run that migrates the hot symbol
//     mid-trace produces bit-identical per-symbol fill sequences,
//     final books and trade logs to a run that never migrates, in all
//     four security modes — quiesced and with the hand-off racing the
//     replay;
//   - crash interplay: a kill at every protocol phase recovers with
//     the symbol on exactly one shard, the route table agreeing with
//     ownership, conservation and book validity intact, and the
//     recovered pool still clearing trades;
//   - forged migrate events (any unit can raise a part to {b}) are
//     rejected without touching books or routes;
//   - audit requests stamped with a pre-migration shard route forward
//     to the symbol's current owner and still yield a delegation.

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/freeze"
	"repro/internal/journal"
	"repro/internal/orderbook"
	"repro/internal/workload"
)

// rebalanceCfg is the shared 8-shard platform the equivalence proofs
// run on; identical to the sharded-equivalence config so the two
// suites pin the same flow.
func rebalanceCfg(mode core.SecurityMode, rec *fillRecorder) Config {
	return Config{
		Mode:             mode,
		NumTraders:       6,
		Universe:         workload.NewUniverse(8), // 16 symbols
		Seed:             11,
		BrokerShards:     8,
		AuditSampleEvery: noAudits,
		OrderTTL:         time.Hour,
		QueueCap:         2048,
		OnFill:           rec.hook(),
	}
}

// hotSymbol picks the busiest symbol of a fill map — deterministic
// tie-break by name.
func hotSymbol(fills map[string][]Fill) string {
	var hot string
	for sym, fs := range fills {
		if hot == "" || len(fs) > len(fills[hot]) || (len(fs) == len(fills[hot]) && sym < hot) {
			hot = sym
		}
	}
	return hot
}

// TestRebalanceEquivalence is the tentpole proof: replaying a trace
// with the hot symbol migrated between shards at the midpoint yields
// per-symbol fill sequences, books and trade logs bit-identical to the
// never-migrated run, in every security mode. Trade IDs are per-symbol,
// so the comparison covers them too: the hand-off moves the ID sequence
// with the state.
func TestRebalanceEquivalence(t *testing.T) {
	const ops = 1800
	for _, mode := range []core.SecurityMode{
		core.NoSecurity, core.LabelsFreeze, core.LabelsClone, core.LabelsFreezeIsolation,
	} {
		t.Run(mode.String(), func(t *testing.T) {
			run := func(migrate bool, hot string, dst int) (map[string][]Fill, map[string][]orderbook.LevelSnap, map[string][]TradeRec, *Platform) {
				rec := &fillRecorder{}
				p, err := New(rebalanceCfg(mode, rec))
				if err != nil {
					t.Fatal(err)
				}
				flow := workload.NewOrderFlow(p.Universe(), shardedFlowConfig(6), 23)
				trace := flow.Take(ops)
				p.ReplayOrders(trace[:ops/2])
				if !p.Quiesce(20 * time.Second) {
					t.Fatal("no quiesce at midpoint")
				}
				if migrate {
					if err := p.Rebalance.Migrate(hot, dst); err != nil {
						t.Fatalf("migrate %s→%d: %v", hot, dst, err)
					}
					if got := p.RouteOf(hot); got != dst {
						t.Fatalf("route after migrate = %d, want %d", got, dst)
					}
				}
				p.ReplayOrders(trace[ops/2:])
				if !p.Quiesce(20 * time.Second) {
					t.Fatal("no quiesce")
				}
				time.Sleep(50 * time.Millisecond)
				return bySymbol(rec.snapshot()), p.Broker.SnapshotBooks(), p.Broker.TradeLogSnapshot(), p
			}

			fills0, books0, logs0, p0 := run(false, "", 0)
			if len(fills0) == 0 {
				t.Fatal("no fills to compare")
			}
			hot := hotSymbol(fills0)
			src := RouteSymbol(hot, 8)
			dst := (src + 1) % 8
			p0.Close()

			fills1, books1, logs1, p1 := run(true, hot, dst)
			defer p1.Close()
			if !reflect.DeepEqual(fills0, fills1) {
				t.Fatalf("per-symbol fill sequences diverge after migrating %s:\nref: %+v\nmig: %+v", hot, fills0[hot], fills1[hot])
			}
			if !reflect.DeepEqual(books0, books1) {
				t.Fatalf("final books diverge after migrating %s", hot)
			}
			if !reflect.DeepEqual(logs0, logs1) {
				t.Fatalf("trade logs diverge after migrating %s", hot)
			}
			if got := p1.Rebalance.Migrations(); got != 1 {
				t.Fatalf("migrations counted %d, want 1", got)
			}
			if n := p1.Broker.Misroutes(); n != 0 {
				t.Fatalf("%d misroutes after migration", n)
			}
			// The destination holds the symbol's state; the source forgot it.
			if _, ok := p1.Broker.Shards()[dst].TradeLogSnapshot()[hot]; !ok {
				t.Fatalf("destination shard %d holds no trade log for %s", dst, hot)
			}
			for i, sh := range p1.Broker.Shards() {
				if i == dst {
					continue
				}
				if _, ok := sh.TradeLogSnapshot()[hot]; ok {
					t.Fatalf("shard %d still holds %s after migration to %d", i, hot, dst)
				}
			}
		})
	}
}

// TestRebalanceDuringFlow races the hand-off against a live replay:
// the hot symbol migrates across all shards while its order flow is
// being published. Frozen orders park and release in arrival order, so
// the result must still be bit-identical to the never-migrated run.
func TestRebalanceDuringFlow(t *testing.T) {
	const ops = 1800
	baseline := func() (map[string][]Fill, map[string][]orderbook.LevelSnap, map[string][]TradeRec) {
		rec := &fillRecorder{}
		p, err := New(rebalanceCfg(core.LabelsFreeze, rec))
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		flow := workload.NewOrderFlow(p.Universe(), shardedFlowConfig(6), 23)
		p.ReplayOrders(flow.Take(ops))
		if !p.Quiesce(20 * time.Second) {
			t.Fatal("no quiesce")
		}
		time.Sleep(50 * time.Millisecond)
		return bySymbol(rec.snapshot()), p.Broker.SnapshotBooks(), p.Broker.TradeLogSnapshot()
	}
	fills0, books0, logs0 := baseline()
	hot := hotSymbol(fills0)

	rec := &fillRecorder{}
	p, err := New(rebalanceCfg(core.LabelsFreeze, rec))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	flow := workload.NewOrderFlow(p.Universe(), shardedFlowConfig(6), 23)
	trace := flow.Take(ops)
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Waves keep the replay's read-lock hold times short so the
		// migrations genuinely interleave with live publishing.
		for i := 0; i < len(trace); i += 150 {
			j := i + 150
			if j > len(trace) {
				j = len(trace)
			}
			p.ReplayOrders(trace[i:j])
		}
	}()
	const moves = 4
	for i := 0; i < moves; i++ {
		cur := p.RouteOf(hot)
		if err := p.Rebalance.Migrate(hot, (cur+1)%8); err != nil {
			t.Fatalf("migration %d: %v", i, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	<-done
	if !p.Quiesce(20 * time.Second) {
		t.Fatal("no quiesce")
	}
	time.Sleep(50 * time.Millisecond)

	if got := p.Rebalance.Migrations(); got != moves {
		t.Fatalf("migrations counted %d, want %d", got, moves)
	}
	fills1 := bySymbol(rec.snapshot())
	if !reflect.DeepEqual(fills0, fills1) {
		t.Fatalf("per-symbol fill sequences diverge under racing migrations:\nref: %+v\nmig: %+v", fills0[hot], fills1[hot])
	}
	if !reflect.DeepEqual(books0, p.Broker.SnapshotBooks()) {
		t.Fatal("final books diverge under racing migrations")
	}
	if !reflect.DeepEqual(logs0, p.Broker.TradeLogSnapshot()) {
		t.Fatal("trade logs diverge under racing migrations")
	}
	if n := p.Broker.Misroutes(); n != 0 {
		t.Fatalf("%d misroutes under racing migrations", n)
	}
	if err := p.Broker.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestRebalanceCrashAtPhase kills the journal filesystem at each
// hand-off phase, then recovers from whatever reached storage. At every
// kill point the symbol must land on exactly one shard, the rebuilt
// route table must agree with ownership, the structural and
// conservation invariants must hold, and the recovered pool must still
// clear trades on the migrated symbol.
//
// Ownership per phase follows the durability order: at the freeze
// point neither migrate record is durable (source keeps the symbol);
// after the destination's flush the migrate-in outlives the crash and
// reconciliation awards the symbol to the higher hand-off epoch; after
// the source's migrate-out both journals agree. Only the drained
// window is timing-dependent — the destination's append races the
// kill — so there the suite asserts exactly-one-owner without naming
// it.
func TestRebalanceCrashAtPhase(t *testing.T) {
	const shards = 4
	cases := []struct {
		phase MigratePhase
		owner func(src, dst int) int // -1 = either, but exactly one
	}{
		{PhaseFrozen, func(src, dst int) int { return src }},
		{PhaseDrained, func(src, dst int) int { return -1 }},
		{PhaseTransferred, func(src, dst int) int { return dst }},
		{PhasePreSwap, func(src, dst int) int { return dst }},
	}
	for _, tc := range cases {
		t.Run(tc.phase.String(), func(t *testing.T) {
			mem := journal.NewMemFS()
			cfs := journal.NewCrashFS(mem)
			cfg := Config{
				Mode:             core.LabelsFreeze,
				NumTraders:       4,
				Universe:         workload.NewUniverse(2), // 4 symbols
				Seed:             31,
				BrokerShards:     shards,
				AuditSampleEvery: noAudits,
				OrderTTL:         time.Hour,
				QueueCap:         2048,
				JournalFS:        cfs,
				JournalNoSync:    true,
			}
			p, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			flow := workload.NewOrderFlow(p.Universe(), workload.FlowConfig{
				Traders:       4,
				AggressionPct: 50,
				CancelPct:     10,
				SymbolSkew:    1.2,
			}, 41)
			p.ReplayOrders(flow.Take(600))
			if !p.Quiesce(20 * time.Second) {
				t.Fatal("no quiesce")
			}
			time.Sleep(30 * time.Millisecond)

			sym := hotSymbol(map[string][]Fill{})
			for s := range p.Broker.TradeLogSnapshot() {
				if sym == "" || s < sym {
					sym = s
				}
			}
			if sym == "" {
				t.Fatal("flow produced no trades")
			}
			src := p.RouteOf(sym)
			dst := (src + 1) % shards

			// Kill the filesystem exactly at the phase under test; the
			// live migration continues in memory and must stay
			// consistent even though durability ends here.
			err = p.Rebalance.Migrate(sym, dst, MigrateOptions{OnPhase: func(ph MigratePhase) {
				if ph == tc.phase {
					_ = p.SyncJournal()
					cfs.KillAfter(0)
				}
			}})
			if err != nil {
				t.Fatalf("live migrate: %v", err)
			}
			if got := p.RouteOf(sym); got != dst {
				t.Fatalf("live route after migrate = %d, want %d", got, dst)
			}
			p.Close()

			// Recovery reads the post-crash disk, not the dead CrashFS.
			rcfg := cfg
			rcfg.JournalFS = mem
			p2, _, err := Recover(rcfg)
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			defer p2.Close()

			var owners []int
			for i, sh := range p2.Broker.Shards() {
				for _, s := range sh.Symbols() {
					if s == sym {
						owners = append(owners, i)
					}
				}
			}
			if len(owners) != 1 {
				t.Fatalf("symbol %s recovered on %v shards, want exactly one", sym, owners)
			}
			if want := tc.owner(src, dst); want >= 0 && owners[0] != want {
				t.Fatalf("symbol %s recovered on shard %d, want %d", sym, owners[0], want)
			}
			if got := p2.RouteOf(sym); got != owners[0] {
				t.Fatalf("route table says %d, state lives on %d", got, owners[0])
			}
			if err := p2.Broker.ValidateBooks(); err != nil {
				t.Fatal(err)
			}
			if err := p2.Broker.CheckConservation(); err != nil {
				t.Fatal(err)
			}

			// The recovered pool still clears the migrated symbol.
			pre := p2.Broker.Trades()
			base := p2.Universe().BasePrice(sym)
			const idBase = int64(1) << 41
			p2.ReplayOrdersSingle(manualOps(sym,
				workload.OrderOp{Trader: 0, Kind: workload.OpLimit, ID: idBase + 1, Side: "bid", Price: base + 50, Qty: 100},
				workload.OrderOp{Trader: 1, Kind: workload.OpLimit, ID: idBase + 2, Side: "ask", Price: base - 50, Qty: 100},
			))
			if !p2.Quiesce(10 * time.Second) {
				t.Fatal("post-recovery flow did not quiesce")
			}
			time.Sleep(30 * time.Millisecond)
			if got := p2.Broker.Trades(); got < pre+1 {
				t.Fatalf("recovered pool cleared no trades on %s: %d → %d", sym, pre, got)
			}
			if err := p2.Broker.CheckConservation(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestForgedMigrateRejected: migrate events are data any unit can
// construct — raising a part's secrecy to {b} needs no privilege. The
// shards only act on the hand-off the process's own Rebalancer is
// running, so a forged fence or a forged state blob is counted and
// dropped without touching books or routes.
func TestForgedMigrateRejected(t *testing.T) {
	const shards = 4
	p, err := New(Config{
		Mode:         core.LabelsFreeze,
		NumTraders:   2,
		Universe:     workload.NewUniverse(1),
		Seed:         5,
		BrokerShards: shards,
		OrderTTL:     time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	sym := p.Universe().Pairs[0].A
	base := p.Universe().BasePrice(sym)
	home := p.RouteOf(sym)
	wrong := (home + 1) % shards

	// Seed the home shard with resting interest the forgery would steal.
	p.ReplayOrdersSingle(manualOps(sym,
		workload.OrderOp{Trader: 0, Kind: workload.OpLimit, ID: int64(1)<<40 + 1, Side: "bid", Price: base - 10, Qty: 100},
	))
	if !p.Quiesce(5 * time.Second) {
		t.Fatal("no quiesce")
	}
	time.Sleep(30 * time.Millisecond)
	booksBefore := p.Broker.SnapshotBooks()

	mallory := p.Sys.NewUnit("mallory", core.UnitConfig{})
	forge := func(oshard int, part string, data freeze.Value) {
		e := mallory.CreateEvent()
		for _, pp := range []struct {
			name string
			data freeze.Value
		}{
			{"type", "migrate"},
			{"oshard", int64(oshard)},
		} {
			if err := mallory.AddPart(e, noTags, noTags, pp.name, pp.data); err != nil {
				t.Fatal(err)
			}
		}
		if err := mallory.AddPart(e, setOf(p.tagB), noTags, part, data); err != nil {
			t.Fatal(err)
		}
		if err := mallory.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	// A forged fence telling the home shard to drain to `wrong`, and a
	// forged state blob telling `wrong` to install garbage.
	forge(home, "migrate_out", freeze.MapOf("symbol", sym, "dst", int64(wrong), "epoch", int64(99)))
	forge(wrong, "migrate_in", "not a handoff blob")
	if !p.Quiesce(5 * time.Second) {
		t.Fatal("no quiesce")
	}
	time.Sleep(30 * time.Millisecond)

	if got := p.Broker.Shards()[home].MigrationRejects(); got != 1 {
		t.Fatalf("home shard counted %d migrate rejects, want 1", got)
	}
	if got := p.Broker.Shards()[wrong].MigrationRejects(); got != 1 {
		t.Fatalf("wrong shard counted %d migrate rejects, want 1", got)
	}
	if got := p.RouteOf(sym); got != home {
		t.Fatalf("forged migrate moved the route to %d", got)
	}
	if !reflect.DeepEqual(booksBefore, p.Broker.SnapshotBooks()) {
		t.Fatal("forged migrate changed book state")
	}
	if err := p.Broker.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if got := p.Rebalance.Migrations(); got != 0 {
		t.Fatalf("forged events counted as %d migrations", got)
	}
}

// TestMigrateArgumentErrors pins the cheap validation edges.
func TestMigrateArgumentErrors(t *testing.T) {
	p, err := New(Config{
		Mode:         core.LabelsFreeze,
		NumTraders:   2,
		Universe:     workload.NewUniverse(1),
		Seed:         5,
		BrokerShards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	sym := p.Universe().Pairs[0].A
	if err := p.Rebalance.Migrate("", 0); err == nil {
		t.Fatal("empty symbol accepted")
	}
	if err := p.Rebalance.Migrate(sym, 7); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	// Migrating to the current owner is a clean no-op.
	if err := p.Rebalance.Migrate(sym, p.RouteOf(sym)); err != nil {
		t.Fatalf("no-op migrate failed: %v", err)
	}
	if got := p.Rebalance.Migrations(); got != 0 {
		t.Fatalf("no-op counted as %d migrations", got)
	}
}

// TestAuditForwardAfterMigration: trade events published before a
// migration carry the old shard's oshard stamp. An audit request built
// from such a trade reaches the old shard, which no longer holds the
// log — it must re-stamp the event with the current route so the new
// owner answers, and the delegation must still be issued there (the
// hand-off carried the tr±auth grants with the state).
func TestAuditForwardAfterMigration(t *testing.T) {
	const shards = 4
	p, err := New(Config{
		Mode:             core.LabelsFreeze,
		NumTraders:       2,
		Universe:         workload.NewUniverse(1),
		Seed:             5,
		BrokerShards:     shards,
		AuditSampleEvery: noAudits,
		OrderTTL:         time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	sym := p.Universe().Pairs[0].A
	base := p.Universe().BasePrice(sym)
	src := p.RouteOf(sym)
	dst := (src + 1) % shards

	const idBase = int64(1) << 40
	p.ReplayOrdersSingle(manualOps(sym,
		workload.OrderOp{Trader: 0, Kind: workload.OpLimit, ID: idBase + 1, Side: "bid", Price: base, Qty: 100},
		workload.OrderOp{Trader: 1, Kind: workload.OpLimit, ID: idBase + 2, Side: "ask", Price: base, Qty: 100},
	))
	if !p.Quiesce(5 * time.Second) {
		t.Fatal("no quiesce")
	}
	time.Sleep(30 * time.Millisecond)
	logs := p.Broker.TradeLogSnapshot()[sym]
	if len(logs) != 1 {
		t.Fatalf("expected one logged trade, have %+v", logs)
	}
	tradeID := logs[0].ID

	if err := p.Rebalance.Migrate(sym, dst); err != nil {
		t.Fatal(err)
	}

	// An audit request as the Regulator would have raised it on the
	// pre-migration trade event: routed by the OLD oshard stamp.
	auditor := p.Sys.NewUnit("late-auditor", core.UnitConfig{})
	e := auditor.CreateEvent()
	for _, pp := range []struct {
		name string
		data freeze.Value
	}{
		{"oshard", int64(src)},
		{"audit_req", int64(1)},
		{"trade", freeze.MapOf("id", tradeID, "symbol", sym)},
	} {
		if err := auditor.AddPart(e, noTags, noTags, pp.name, pp.data); err != nil {
			t.Fatal(err)
		}
	}
	if err := auditor.Publish(e); err != nil {
		t.Fatal(err)
	}
	if !p.Quiesce(5 * time.Second) {
		t.Fatal("no quiesce")
	}
	time.Sleep(50 * time.Millisecond)

	if got := p.Broker.Shards()[src].AuditForwards(); got != 1 {
		t.Fatalf("source shard forwarded %d audits, want 1", got)
	}
	if got := p.Broker.Shards()[dst].Delegations(); got != 1 {
		t.Fatalf("destination shard issued %d delegations, want 1", got)
	}
	if got := p.Broker.Shards()[src].Delegations(); got != 0 {
		t.Fatalf("source shard issued %d delegations after losing the symbol", got)
	}
	// The operational counters must surface in the aggregate Stats()
	// snapshot, not only on the per-shard accessors.
	st := p.Stats()
	if st.Migrations != 1 {
		t.Fatalf("Stats.Migrations = %d, want 1", st.Migrations)
	}
	if st.AuditForwards != 1 {
		t.Fatalf("Stats.AuditForwards = %d, want 1", st.AuditForwards)
	}
	if st.MigrationRejects != 0 || st.Misroutes != 0 {
		t.Fatalf("honest run rejected work: %d migration rejects, %d misroutes",
			st.MigrationRejects, st.Misroutes)
	}
	if st.OrdersRouted != st.OrdersPlaced || st.OrdersRouted < 2 {
		t.Fatalf("Stats.OrdersRouted = %d for %d placed orders", st.OrdersRouted, st.OrdersPlaced)
	}
}
