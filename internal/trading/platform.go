// Package trading implements the paper's evaluation application (§6.1):
// a stock trading platform of DEFCon processing units — Stock Exchange,
// per-trader Pair Monitors, Traders, a dark-pool Local Broker and a
// Regulator — wired with the tag/privilege choreography of Figure 4.
//
// Event vocabulary (all events carry a public scalar "type" part used
// for indexable subscriptions):
//
//	tick       type="tick",  body{symbol,price,seq}           I={s}
//	match      type="match", to=<trader>, match{...}          S={t_i}
//	order      type="order", order{...}+[tr±] S={b},
//	           name=<trader>+[tr+auth]                        S={b,tr}
//	trade      type="trade", trade{...} public,
//	           buyer=<name> S={tr_b}, seller=<name> S={tr_s}
//	audit      type="audit", audit{trade}                     public
//	           (answered by adding a "delegation" part to the trade)
//	vol        vol{trader,qty}+[tr+]                          S={reg}
//	warning    warning{to,msg}                                S={tr}
//
// The choreography follows Figure 4's steps 1–9; deviations forced by
// under-specification in the paper are documented on the unit that
// implements them.
package trading

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/isolation"
	"repro/internal/journal"
	"repro/internal/labels"
	"repro/internal/mdfeed"
	"repro/internal/orderbook"
	"repro/internal/priv"
	"repro/internal/tags"
	"repro/internal/workload"
)

// DefaultThresholdBps is the pairs-trade trigger threshold in basis
// points of ratio deviation; workload.DivergeBps comfortably exceeds
// it so engineered divergences always fire.
const DefaultThresholdBps = 200

// Config assembles a trading platform.
type Config struct {
	// Mode is the DEFCon security mode (the four curves of Figs 5–7).
	Mode core.SecurityMode
	// NumTraders is the trader population (the x-axis of Figs 5–7).
	NumTraders int
	// Universe defaults to workload.UniverseForTraders(NumTraders).
	Universe *workload.Universe
	// Seed drives pair assignment and the tag store.
	Seed int64
	// ThresholdBps is the pairs-trade trigger threshold (default 200).
	ThresholdBps int64
	// AuditSampleEvery has the Regulator audit every n-th trade
	// (default 8; 0 disables auditing).
	AuditSampleEvery uint64
	// QuotaShares is the per-trader traded-volume quota above which the
	// Regulator publishes a warning (default 5000).
	QuotaShares int64
	// TickCacheSize bounds the Stock Exchange's in-memory tick cache
	// (default 4096) — the paper's deployment cached ≈300 MiB of tick
	// events; the cache models that retained footprint.
	TickCacheSize int
	// QueueCap bounds unit delivery queues (default 512; queue buffers
	// are allocated eagerly, so large trader populations scale memory
	// with this knob).
	QueueCap int
	// BrokerShards is the dark-pool pool size: matching is partitioned
	// across this many broker units by a deterministic symbol→shard
	// map (RouteSymbol), each clearing its symbols in its own pinned
	// instance. Default: GOMAXPROCS, clamped to [1, 8]. Per-symbol
	// behaviour (fill sequences, book states, trade logs) is identical
	// at every pool size; only cross-symbol interleaving changes.
	BrokerShards int
	// SelfTradePolicy is applied by the broker shards before any fill
	// that would cross an owner with itself (default orderbook.STPAllow).
	SelfTradePolicy orderbook.STP
	// PairAssignment, when non-nil, pins trader→pair assignment
	// explicitly (one universe pair index per trader, len NumTraders)
	// instead of the seeded Zipf draw — tests that must exercise a
	// specific co-monitoring topology (e.g. two traders on distinct
	// pairs) use it to make the setup deterministic by construction.
	PairAssignment []int
	// Enforcer optionally shares a pre-built isolation enforcer.
	Enforcer *isolation.Enforcer
	// OrderTTL bounds how long unfilled orders rest in the dark pool's
	// books (default orderTTL, 100ms). Deterministic-replay tests
	// raise it so wall-clock expiry cannot perturb the fill sequence.
	OrderTTL time.Duration
	// OnTrade, when set, receives the end-to-end latency in nanoseconds
	// (trade production time minus originating tick time) of every
	// completed trade — the Figure 6 measurement, taken at the Broker.
	// Like all broker hooks it may be invoked concurrently from
	// different shards; the callback must synchronise its own state.
	OnTrade func(latencyNs int64)
	// OnFill, when set, receives every fill — in publication order per
	// symbol; fills of different symbols may interleave arbitrarily
	// (and concurrently) across shards. Deterministic-replay tests
	// compare the per-symbol streams across publish paths and pool
	// sizes. Called from the owning shard's book instance; keep it
	// cheap and synchronised.
	OnFill func(Fill)
	// OnBookDepth, when set, receives the touched symbol's resting
	// order count after each processed order — the order-book bench
	// samples depth through it. Same concurrency caveat as OnFill.
	OnBookDepth func(depth int)
	// MarketData enables the per-symbol L2 delta feed: each broker
	// shard publishes sequence-numbered book deltas for its owned
	// symbols through Platform.MD (see internal/mdfeed). Off by
	// default — the feed staging buffer costs a few appends per fill
	// even with no subscribers.
	MarketData bool
	// MDSyncFanout runs feed fanout inline on the shard instead of on
	// per-feed goroutines — deterministic delivery for tests.
	MDSyncFanout bool
	// MDJournal, MDFanoutRing, MDBatchMax and MDSubscriberQueue tune
	// the feed (zero = mdfeed defaults).
	MDJournal         int
	MDFanoutRing      int
	MDBatchMax        int
	MDSubscriberQueue int
	// JournalDir enables crash-safe event sourcing: each broker shard
	// appends its accepted orders to a per-shard CRC-framed journal in
	// this directory, with periodic full-state checkpoints. Recover
	// rebuilds the pool from the directory after a crash
	// (DESIGN-dispatch.md §12). Empty = journaling off.
	JournalDir string
	// JournalFS overrides JournalDir with an injectable filesystem —
	// the fault-injection suites run on journal.MemFS and
	// journal.CrashFS.
	JournalFS journal.FS
	// JournalNoSync skips fsync on group commit (CI and benchmarks:
	// crash-consistent format without the sync latency).
	JournalNoSync bool
	// JournalCheckpointEvery checkpoints a shard after this many
	// journal records (default 4096; negative = only explicit
	// ForceCheckpoint calls).
	JournalCheckpointEvery int
	// JournalStagingCap bounds the per-shard staging ring between the
	// matching thread and the group-commit goroutine (default 1024);
	// overflow sheds records and marks the loss in the journal rather
	// than ever blocking matching.
	JournalStagingCap int
	// Planner configures the load-aware rebalancing policy layer
	// (planner.go); Planner.Enable turns it on.
	Planner PlannerConfig

	// deferPlannerStart suppresses the planner's periodic tick during
	// assembly; Recover sets it so the planner cannot race journal
	// replay and route reconciliation, then starts it explicitly.
	deferPlannerStart bool
}

// Fill describes one completed fill (one published trade event).
type Fill struct {
	TradeID             int64
	Symbol              string
	Price, Qty          int64
	BuyOrder, SellOrder int64
}

// Stats aggregate platform activity.
type Stats struct {
	TicksPublished   uint64
	MatchesEmitted   uint64
	OrdersPlaced     uint64
	CancelsRequested uint64
	CancelsDone      uint64
	AmendsRequested  uint64
	AmendsDone       uint64
	SelfTradeCancels uint64
	TradesCompleted  uint64
	PartialFills     uint64
	OrdersExpired    uint64
	AuditsRequested  uint64
	WarningsReceived uint64
	// OrdersRouted counts order publications stamped for a shard at
	// route resolution — the offered-load side of the load accounting.
	OrdersRouted uint64
	// Misroutes counts orders a shard rejected because the public
	// oshard stamp did not re-derive (forged routing).
	Misroutes uint64
	// Migrations counts completed live symbol migrations (manual and
	// planner-scheduled alike).
	Migrations uint64
	// AuditForwards counts audit requests re-routed to a symbol's
	// current owner after a migration.
	AuditForwards uint64
	// MigrationRejects counts refused migrate events: forged or stale
	// hand-offs, or duplicate installs losing the first-wins race.
	MigrationRejects uint64
	// PlannerPlans and PlannerMoves count executed planner waves and
	// the migrations they scheduled cleanly (zero when disabled).
	PlannerPlans uint64
	PlannerMoves uint64
}

// Platform is an assembled trading system.
type Platform struct {
	Sys       *core.System
	Exchange  *Exchange
	Broker    *BrokerPool
	Regulator *Regulator
	Traders   []*Trader

	// Rebalance migrates symbols between broker shards live (see
	// rebalance.go); routes is the epoch-versioned symbol→shard
	// indirection every routing decision consults.
	Rebalance *Rebalancer
	routes    *routeTable

	// Planner is the load-aware rebalancing policy layer (nil unless
	// Config.Planner.Enable); load is the EWMA tracker behind
	// SampleLoad, always present.
	Planner *Planner
	load    *loadTracker

	// MD is the market-data hub (nil unless Config.MarketData): one
	// L2 delta feed per symbol, fed by the owning broker shard.
	MD *mdfeed.Hub

	cfg      Config
	universe *workload.Universe
	tagB     tags.Tag // dark-pool broker tag b
	tagS     tags.Tag // exchange integrity tag s
	tagMD    tags.Tag // market-data entitlement tag md

	// jfs is the resolved journal filesystem (nil = journaling off);
	// closeOnce makes Close idempotent and concurrency-safe; closed
	// lets Quiesce return immediately once shutdown has begun (the
	// queues will never drain further).
	jfs       journal.FS
	closeOnce sync.Once
	closed    atomic.Bool

	// symNS assigns each symbol a stable namespace for per-symbol
	// trade IDs (symBook): universe symbols get their universe index,
	// so IDs are identical across pool sizes; unknown symbols are
	// assigned on first trade.
	nsMu  sync.Mutex
	symNS map[string]int64
}

// defaultBrokerShards scales the pool to the host: one shard per
// GOMAXPROCS, clamped to [1, 8] — past eight shards the replay drivers
// and the dispatcher, not matching, dominate.
func defaultBrokerShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > 8 {
		n = 8
	}
	return n
}

// New assembles and starts a platform: units are created with the
// bootstrap privileges of Figure 4 (the Stock Exchange and Regulator
// own s; the Broker owns b) and traders instantiate their own Pair
// Monitors, delegating their t_i privileges.
func New(cfg Config) (*Platform, error) {
	if cfg.NumTraders <= 0 {
		return nil, fmt.Errorf("trading: NumTraders must be positive")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.ThresholdBps == 0 {
		cfg.ThresholdBps = DefaultThresholdBps
	}
	if cfg.AuditSampleEvery == 0 {
		cfg.AuditSampleEvery = 8
	}
	if cfg.QuotaShares == 0 {
		cfg.QuotaShares = 5000
	}
	if cfg.TickCacheSize == 0 {
		cfg.TickCacheSize = 4096
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 512
	}
	if cfg.OrderTTL == 0 {
		cfg.OrderTTL = orderTTL
	}
	if cfg.BrokerShards == 0 {
		cfg.BrokerShards = defaultBrokerShards()
	}
	if cfg.BrokerShards < 1 {
		return nil, fmt.Errorf("trading: BrokerShards must be positive")
	}
	if cfg.Universe == nil {
		cfg.Universe = workload.UniverseForTraders(cfg.NumTraders)
	}
	if cfg.PairAssignment != nil {
		if len(cfg.PairAssignment) != cfg.NumTraders {
			return nil, fmt.Errorf("trading: PairAssignment has %d entries for %d traders",
				len(cfg.PairAssignment), cfg.NumTraders)
		}
		for i, ix := range cfg.PairAssignment {
			if ix < 0 || ix >= len(cfg.Universe.Pairs) {
				return nil, fmt.Errorf("trading: PairAssignment[%d] = %d out of range [0,%d)",
					i, ix, len(cfg.Universe.Pairs))
			}
		}
	}
	if cfg.JournalCheckpointEvery == 0 {
		cfg.JournalCheckpointEvery = 4096
	}
	jfs, err := resolveJournalFS(&cfg)
	if err != nil {
		return nil, err
	}
	if jfs != nil {
		// A journal directory is bound to the shard count that writes
		// it: symbol → shard routing depends on the pool size, so a
		// mismatched pool would journal a symbol's orders under a
		// different shard than the one holding its earlier records.
		switch n, ok, err := journal.ReadManifest(jfs); {
		case err != nil:
			return nil, fmt.Errorf("trading: journal manifest: %w", err)
		case ok && n != cfg.BrokerShards:
			return nil, fmt.Errorf("%w: journal written with %d shards, pool has %d",
				ErrShardMismatch, n, cfg.BrokerShards)
		case !ok:
			if err := journal.WriteManifest(jfs, cfg.BrokerShards); err != nil {
				return nil, fmt.Errorf("trading: journal manifest: %w", err)
			}
		}
	}

	sys := core.NewSystem(core.Config{
		Mode:     cfg.Mode,
		Seed:     cfg.Seed,
		QueueCap: cfg.QueueCap,
		Enforcer: cfg.Enforcer,
	})
	p := &Platform{Sys: sys, cfg: cfg, universe: cfg.Universe}
	p.routes = newRouteTable(cfg.BrokerShards)
	p.load = newLoadTracker(cfg.BrokerShards, cfg.Planner.EWMATau)
	p.symNS = make(map[string]int64, len(p.universe.Symbols))
	for i, s := range p.universe.Symbols {
		p.symNS[s] = int64(i + 1)
	}

	// Bootstrap tags: the platform operator mints the shared tags and
	// hands out the Figure 4 ownerships. Using a throwaway bootstrap
	// unit keeps tag creation on the unit API.
	boot := sys.NewUnit("platform-bootstrap", core.UnitConfig{})
	p.tagS = boot.CreateTagAuthOnly("i-exchange")
	p.tagB = boot.CreateTagAuthOnly("dark-pool")

	if cfg.MarketData {
		// The feed's batch label is the md entitlement: deltas derive
		// from {b}-confined order parts, and the broker — which owns
		// b± — declassifies each sealed batch to S={md} (one label per
		// batch; see DESIGN-dispatch.md §10). Subscribers present
		// S={md}; Public subscribers fail the flow check in every
		// label-checking mode.
		p.tagMD = boot.CreateTagAuthOnly("mdfeed")
		p.MD = mdfeed.NewHub(mdfeed.HubConfig{
			Label:        labels.New(setOf(p.tagMD), noTags),
			CheckLabels:  cfg.Mode.CheckLabels(),
			Journal:      cfg.MDJournal,
			FanoutRing:   cfg.MDFanoutRing,
			BatchMax:     cfg.MDBatchMax,
			DefaultQueue: cfg.MDSubscriberQueue,
			SyncFanout:   cfg.MDSyncFanout,
			NS:           p.symbolNS,
		})
	}

	grantsOf := func(t tags.Tag, rights ...priv.Right) []priv.Grant {
		gs := make([]priv.Grant, len(rights))
		for i, r := range rights {
			gs[i] = priv.Grant{Tag: t, Right: r}
		}
		return gs
	}

	p.Exchange = newExchange(p, grantsOf(p.tagS, priv.Plus))
	p.Regulator = newRegulator(p, grantsOf(p.tagS, priv.Plus))
	p.Broker = newBrokerPool(p, cfg.BrokerShards, func() []priv.Grant {
		return grantsOf(p.tagB, priv.Plus, priv.Minus)
	})
	if jfs != nil {
		// One journal writer per shard: appends happen on the shard's
		// matching path under b.mu, group commit runs on the writer's
		// own goroutine, so matching never blocks on IO.
		p.jfs = jfs
		for _, b := range p.Broker.shards {
			b.jw = journal.NewWriter(jfs, b.shard, journal.Options{
				NoSync:     cfg.JournalNoSync,
				StagingCap: cfg.JournalStagingCap,
			})
		}
	}
	if err := p.Broker.wire(); err != nil {
		sys.Close()
		p.closeJournals()
		return nil, fmt.Errorf("trading: broker wiring: %w", err)
	}
	if err := p.Regulator.wire(); err != nil {
		sys.Close()
		p.closeJournals()
		return nil, fmt.Errorf("trading: regulator wiring: %w", err)
	}
	p.Rebalance = newRebalancer(p)

	assignment := cfg.PairAssignment
	if assignment == nil {
		assignment = p.universe.AssignPairs(cfg.NumTraders, cfg.Seed+7)
	}
	p.Traders = make([]*Trader, cfg.NumTraders)
	perPair := make([]int, len(p.universe.Pairs))
	for i := range p.Traders {
		pairIx := assignment[i]
		// Alternate bid/ask within each pair's trader population so
		// co-monitoring traders take opposite sides and the dark pool
		// crosses (§6.1: co-located traders clear against each other).
		side := "bid"
		if perPair[pairIx]%2 == 1 {
			side = "ask"
		}
		perPair[pairIx]++
		tr, err := newTrader(p, i, p.universe.Pairs[pairIx], side)
		if err != nil {
			sys.Close()
			p.closeJournals()
			return nil, fmt.Errorf("trading: trader %d: %w", i, err)
		}
		p.Traders[i] = tr
	}
	if cfg.Planner.Enable {
		p.Planner = newPlanner(p)
		if !cfg.deferPlannerStart {
			p.Planner.start()
		}
	}
	return p, nil
}

// TagB exposes the dark-pool tag reference. Tag values are opaque and
// confer no privilege; traders use the reference to protect order
// parts (raising secrecy needs no privilege).
func (p *Platform) TagB() tags.Tag { return p.tagB }

// TagS exposes the exchange integrity tag reference.
func (p *Platform) TagS() tags.Tag { return p.tagS }

// TagMD exposes the market-data entitlement tag (zero unless
// Config.MarketData).
func (p *Platform) TagMD() tags.Tag { return p.tagMD }

// MDLabel is the subscriber label an entitled market-data consumer
// presents: S={md}, I=∅.
func (p *Platform) MDLabel() labels.Label {
	return labels.New(setOf(p.tagMD), noTags)
}

// Universe returns the platform's symbol universe.
func (p *Platform) Universe() *workload.Universe { return p.universe }

// BrokerShards reports the dark-pool pool size.
func (p *Platform) BrokerShards() int { return p.cfg.BrokerShards }

// symbolNS returns a symbol's stable trade-ID namespace: the universe
// index for known symbols (identical across pool sizes), a fresh
// assignment for anything else.
func (p *Platform) symbolNS(symbol string) int64 {
	p.nsMu.Lock()
	defer p.nsMu.Unlock()
	if ns, ok := p.symNS[symbol]; ok {
		return ns
	}
	ns := int64(len(p.symNS) + 1)
	p.symNS[symbol] = ns
	return ns
}

// Replay publishes ticks from the trace as fast as possible on the
// caller's goroutine — the paper's single-threaded Stock Exchange
// replaying "tick event traces as quickly as possible". It runs on
// the batched publish path (PublishTicks), which delivers the same
// events in the same order as per-tick publishing.
func (p *Platform) Replay(ticks []workload.Tick) {
	p.Exchange.PublishTicks(ticks)
}

// ReplayPaced publishes ticks at the given rate (events/second), the
// Figure 6/9 latency measurement regime.
func (p *Platform) ReplayPaced(ticks []workload.Tick, rate float64) {
	if rate <= 0 {
		p.Replay(ticks)
		return
	}
	interval := time.Duration(float64(time.Second) / rate)
	next := time.Now()
	for i := range ticks {
		p.Exchange.PublishTick(&ticks[i])
		next = next.Add(interval)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}
}

// ReplayOrders drives a pre-generated order-flow trace through the
// trader units on the caller's goroutine: consecutive same-trader runs
// are published as one batch (the amortised path, mirroring
// PublishTicks), and ops reach the dark pool in trace order — which
// makes the Broker's fill sequence deterministic for a given trace.
func (p *Platform) ReplayOrders(ops []workload.OrderOp) {
	p.replayOrders(ops, true)
}

// ReplayOrdersSingle is ReplayOrders on the one-publish-per-op path;
// delivery order (and hence fills and final book state) must be
// identical to the batched path.
func (p *Platform) ReplayOrdersSingle(ops []workload.OrderOp) {
	p.replayOrders(ops, false)
}

func (p *Platform) replayOrders(ops []workload.OrderOp, batched bool) {
	for i := 0; i < len(ops); {
		j := i + 1
		for j < len(ops) && ops[j].Trader == ops[i].Trader {
			j++
		}
		t := p.Traders[ops[i].Trader%len(p.Traders)]
		t.placeFlow(ops[i:j], batched)
		i = j
	}
}

// Quiesce waits until all unit queues (including managed instances)
// drain or the timeout expires.
func (p *Platform) Quiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if p.closed.Load() {
			// Shutdown already began: the dispatchers are gone and
			// nothing else will drain. Report quiescent rather than
			// spinning until the deadline.
			return true
		}
		if p.Sys.TotalQueueLen() == 0 {
			// Double-check after a beat: a handler may be mid-publish.
			time.Sleep(2 * time.Millisecond)
			if p.Sys.TotalQueueLen() == 0 {
				if p.MD != nil && !p.MD.Quiesce(time.Until(deadline)) {
					return false
				}
				return true
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

// Stats snapshots platform activity.
func (p *Platform) Stats() Stats {
	var st Stats
	st.TicksPublished = p.Exchange.Published()
	st.TradesCompleted = p.Broker.Trades()
	st.PartialFills = p.Broker.PartialFills()
	st.CancelsDone = p.Broker.Cancels()
	st.AmendsDone = p.Broker.Amends()
	st.SelfTradeCancels = p.Broker.SelfTradeCancels()
	st.OrdersExpired = p.Broker.Expired()
	st.AuditsRequested = p.Regulator.Audits()
	st.OrdersRouted = p.Broker.RoutedOrders()
	st.Misroutes = p.Broker.Misroutes()
	st.Migrations = p.Rebalance.Migrations()
	st.AuditForwards = p.Broker.AuditForwards()
	st.MigrationRejects = p.Broker.MigrationRejects()
	if p.Planner != nil {
		st.PlannerPlans = p.Planner.Plans()
		st.PlannerMoves = p.Planner.Moved()
	}
	for _, t := range p.Traders {
		st.MatchesEmitted += t.Matches()
		st.OrdersPlaced += t.Orders()
		st.CancelsRequested += t.CancelsRequested()
		st.AmendsRequested += t.AmendsRequested()
		st.WarningsReceived += t.Warnings()
	}
	return st
}

// Close shuts the platform down: dispatch first (stops all ingest
// into the feeds and the journals), then the market-data fanout, then
// the journal writers (their final group commit flushes everything
// the shards appended). Idempotent and safe to call concurrently —
// including concurrently with in-flight publishes, which core.System
// drains before its close returns.
func (p *Platform) Close() {
	p.closeOnce.Do(func() {
		p.closed.Store(true)
		if p.Planner != nil {
			// Stop the policy tick before dispatch: a wave scheduled
			// mid-shutdown would race the dispatcher teardown.
			p.Planner.stopWait()
		}
		p.Sys.Close()
		if p.MD != nil {
			p.MD.Close()
		}
		p.closeJournals()
	})
}

// closeJournals stops every shard's journal writer, flushing staged
// records. Writer.Close is itself idempotent.
func (p *Platform) closeJournals() error {
	var first error
	for _, b := range p.Broker.shards {
		if b.jw == nil {
			continue
		}
		if err := b.jw.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SyncJournal blocks until every record staged so far is committed
// (and synced, unless JournalNoSync); it returns the first shard's
// sticky commit error, if any. Tests and operators call it to pin a
// durability point without closing the platform.
func (p *Platform) SyncJournal() error {
	var first error
	for _, b := range p.Broker.shards {
		if b.jw == nil {
			continue
		}
		if err := b.jw.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// CheckpointJournal forces a full-state checkpoint on every shard
// (see Broker.ForceCheckpoint) and waits for it to commit.
func (p *Platform) CheckpointJournal() error {
	for _, b := range p.Broker.shards {
		b.ForceCheckpoint()
	}
	return p.SyncJournal()
}

// JournalMetrics snapshots each shard's journal writer counters, in
// shard order; nil when journaling is off.
func (p *Platform) JournalMetrics() []journal.Metrics {
	if p.jfs == nil {
		return nil
	}
	out := make([]journal.Metrics, len(p.Broker.shards))
	for i, b := range p.Broker.shards {
		if b.jw != nil {
			out[i] = b.jw.Metrics()
		}
	}
	return out
}

// resolveJournalFS picks the journal filesystem from a config:
// JournalFS wins, else JournalDir opens a DirFS, else nil (off).
func resolveJournalFS(cfg *Config) (journal.FS, error) {
	if cfg.JournalFS != nil {
		return cfg.JournalFS, nil
	}
	if cfg.JournalDir == "" {
		return nil, nil
	}
	fs, err := journal.NewDirFS(cfg.JournalDir)
	if err != nil {
		return nil, fmt.Errorf("trading: journal dir: %w", err)
	}
	return fs, nil
}

// label helpers shared by the units.

func setOf(ts ...tags.Tag) labels.Set { return labels.NewSet(ts...) }

var noTags = labels.EmptySet

// counter is a tiny atomic counter embedded in units.
type counter struct{ v atomic.Uint64 }

func (c *counter) inc() uint64    { return c.v.Add(1) }
func (c *counter) add(n uint64)   { c.v.Add(n) }
func (c *counter) load() uint64   { return c.v.Load() }
func (c *counter) store(n uint64) { c.v.Store(n) }
