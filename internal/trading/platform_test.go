package trading

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// runScenario builds a small platform, replays ticks and quiesces.
func runScenario(t *testing.T, mode core.SecurityMode, traders, ticks int, tweak func(*Config)) *Platform {
	t.Helper()
	cfg := Config{
		Mode:             mode,
		NumTraders:       traders,
		Universe:         workload.NewUniverse(4),
		Seed:             11,
		AuditSampleEvery: 2,
		QuotaShares:      300, // 3 trades of 100 shares
		QueueCap:         1024,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	trace := workload.NewTrace(p.Universe(), 99)
	p.Replay(trace.Take(ticks))
	if !p.Quiesce(10 * time.Second) {
		t.Fatal("platform did not quiesce")
	}
	// Quiescing queues does not mean every handler finished its last
	// publish; settle briefly.
	time.Sleep(50 * time.Millisecond)
	return p
}

// onePair pins all traders to a single pair so bid/ask sides always
// share a symbol and the dark pool crosses.
func onePair(c *Config) { c.Universe = workload.NewUniverse(1) }

func TestEndToEndTradingFlow(t *testing.T) {
	p := runScenario(t, core.LabelsFreeze, 4, 400, nil)
	st := p.Stats()

	if st.TicksPublished < 400 {
		t.Fatalf("ticks published = %d", st.TicksPublished)
	}
	if st.MatchesEmitted == 0 {
		t.Fatal("no matches: pairs algorithm never triggered")
	}
	if st.OrdersPlaced == 0 {
		t.Fatal("no orders placed")
	}
	if st.TradesCompleted == 0 {
		t.Fatal("no trades completed: dark pool never crossed")
	}
	// Workload triggers once every TriggerEvery B-ticks per pair;
	// matches should be in that ballpark (monitors of the same pair all
	// fire on the same spike).
	if st.MatchesEmitted > st.TicksPublished {
		t.Fatalf("implausible match count %d", st.MatchesEmitted)
	}
	// Each trade involves one bid and one ask.
	if st.TradesCompleted*2 > st.OrdersPlaced {
		t.Fatalf("trades %d exceed order pairs %d", st.TradesCompleted, st.OrdersPlaced)
	}
}

func TestTradersRecogniseOwnTradesOnly(t *testing.T) {
	p := runScenario(t, core.LabelsFreeze, 2, 300, onePair)
	st := p.Stats()
	if st.TradesCompleted == 0 {
		t.Fatal("no trades")
	}
	// Both traders share the pair (two traders, bid+ask); every trade
	// should be recognised by both counterparties — each recognising
	// its own side.
	var recognised uint64
	for _, tr := range p.Traders {
		recognised += tr.Trades()
	}
	if recognised == 0 {
		t.Fatal("no trader recognised its trades")
	}
	if recognised > 2*st.TradesCompleted {
		t.Fatalf("recognitions %d exceed 2×trades %d: identity leak", recognised, st.TradesCompleted)
	}
}

func TestAuditAndDelegationFlow(t *testing.T) {
	p := runScenario(t, core.LabelsFreeze, 2, 600, onePair)
	st := p.Stats()
	if st.AuditsRequested == 0 {
		t.Fatal("regulator never sampled a trade")
	}
	if p.Broker.Delegations() == 0 {
		t.Fatal("broker never delegated identities")
	}
	if p.Regulator.VolsSeen() == 0 {
		t.Fatal("regulator primary never received volume reports")
	}
}

func TestQuotaWarningsReachOnlyBreachingTraders(t *testing.T) {
	p := runScenario(t, core.LabelsFreeze, 2, 900, func(c *Config) {
		onePair(c)
		c.AuditSampleEvery = 1 // audit every trade
		c.QuotaShares = 100    // breach after the first audited trade
	})
	st := p.Stats()
	if st.TradesCompleted == 0 {
		t.Fatal("no trades")
	}
	if st.WarningsReceived == 0 {
		t.Fatal("no warnings delivered despite tiny quota")
	}
	// At most one warning per trader (warned set).
	if st.WarningsReceived > uint64(len(p.Traders)) {
		t.Fatalf("warnings %d exceed trader count", st.WarningsReceived)
	}
}

func TestStrategyConfinement(t *testing.T) {
	// Traders on different pairs must not perceive each other's match
	// events even though every monitor publishes "to"/"match" parts:
	// the t_i tags isolate the flows.
	p := runScenario(t, core.LabelsFreeze, 4, 400, nil)
	for _, tr := range p.Traders {
		if tr.Matches() > 0 && tr.Orders() == 0 {
			t.Fatalf("%s got matches but placed no orders", tr.Name())
		}
	}
	// Indirect leak check: total deliveries to trader units must be
	// explainable by their own subscriptions. A cheap proxy: warnings
	// for traders that never traded must be zero.
	for _, tr := range p.Traders {
		if tr.Trades() == 0 && tr.Warnings() > 0 {
			t.Fatalf("%s warned without trading", tr.Name())
		}
	}
}

func TestNoSecurityModeStillTrades(t *testing.T) {
	p := runScenario(t, core.NoSecurity, 4, 400, nil)
	st := p.Stats()
	if st.TradesCompleted == 0 {
		t.Fatal("no-security mode completed no trades")
	}
}

func TestLabelsCloneModeStillTrades(t *testing.T) {
	p := runScenario(t, core.LabelsClone, 4, 400, nil)
	if p.Stats().TradesCompleted == 0 {
		t.Fatal("labels+clone mode completed no trades")
	}
}

func TestIsolationModeStillTrades(t *testing.T) {
	p := runScenario(t, core.LabelsFreezeIsolation, 2, 300, onePair)
	if p.Stats().TradesCompleted == 0 {
		t.Fatal("labels+freeze+isolation mode completed no trades")
	}
}

func TestOnTradeHookReportsPlausibleLatency(t *testing.T) {
	// The hook may fire concurrently from different broker shards.
	var mu sync.Mutex
	var latencies []int64
	p := runScenario(t, core.LabelsFreeze, 2, 300, func(c *Config) {
		onePair(c)
		c.OnTrade = func(ns int64) {
			mu.Lock()
			latencies = append(latencies, ns)
			mu.Unlock()
		}
	})
	if p.Stats().TradesCompleted == 0 {
		t.Fatal("no trades")
	}
	if len(latencies) == 0 {
		t.Fatal("hook never invoked")
	}
	for _, l := range latencies {
		if l <= 0 || l > int64(30*time.Second) {
			t.Fatalf("implausible latency %d ns", l)
		}
	}
}

func TestTickCacheBounded(t *testing.T) {
	p := runScenario(t, core.LabelsFreeze, 2, 500, func(c *Config) {
		onePair(c)
		c.TickCacheSize = 64
	})
	if got := p.Exchange.CacheLen(); got > 64 {
		t.Fatalf("tick cache grew to %d, cap 64", got)
	}
}

func TestPacedReplayHonoursRate(t *testing.T) {
	cfg := Config{
		Mode:       core.LabelsFreeze,
		NumTraders: 2,
		Universe:   workload.NewUniverse(2),
		Seed:       3,
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	trace := workload.NewTrace(p.Universe(), 5)
	start := time.Now()
	p.ReplayPaced(trace.Take(200), 2000) // 200 ticks at 2000/s ≈ 100 ms
	elapsed := time.Since(start)
	if elapsed < 80*time.Millisecond {
		t.Fatalf("paced replay too fast: %v", elapsed)
	}
}

func TestPlatformValidation(t *testing.T) {
	if _, err := New(Config{NumTraders: 0}); err == nil {
		t.Fatal("zero traders accepted")
	}
}
