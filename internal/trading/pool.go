package trading

// The symbol-sharded broker pool: N Broker units, each owning a
// disjoint symbol partition via the deterministic RouteSymbol map,
// each clearing its partition in its own pinned managed instance —
// so order flow for different symbols matches concurrently in every
// security mode, with no shared mutable state between shards.
// DESIGN-dispatch.md §9 documents the architecture and the proofs the
// shard_test.go suite pins.

import (
	"fmt"

	"repro/internal/orderbook"
	"repro/internal/priv"
)

// RouteSymbol maps a symbol to its HOME broker shard: FNV-1a of the
// symbol modulo the pool size. The map is deterministic and depends
// only on (symbol, shards). Live routing goes through the platform's
// route table (Platform.RouteOf), which starts as exactly this map and
// diverges only where the Rebalancer has migrated a symbol; traders
// stamp the table's answer onto order events as the public "oshard"
// part and shards re-derive it for the integrity check.
func RouteSymbol(symbol string, shards int) int {
	if shards <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(symbol); i++ {
		h = (h ^ uint64(symbol[i])) * prime64
	}
	return int(h % uint64(shards))
}

// BrokerPool is the symbol-partitioned dark pool: the platform-facing
// façade over its broker shards. Aggregate accessors sum or union the
// shards; symbol partitions are disjoint, so the unions never merge.
type BrokerPool struct {
	p      *Platform
	shards []*Broker
}

// newBrokerPool assembles n broker shards; grants mints each shard's
// bootstrap privilege set (the Figure 4 b-ownership).
func newBrokerPool(p *Platform, n int, grants func() []priv.Grant) *BrokerPool {
	bp := &BrokerPool{p: p, shards: make([]*Broker, n)}
	for i := range bp.shards {
		bp.shards[i] = newBroker(p, i, n, grants())
	}
	return bp
}

// wire attaches every shard's managed subscriptions.
func (bp *BrokerPool) wire() error {
	for _, b := range bp.shards {
		if err := b.wire(); err != nil {
			return fmt.Errorf("shard %d: %w", b.shard, err)
		}
	}
	return nil
}

// NumShards reports the pool size.
func (bp *BrokerPool) NumShards() int { return len(bp.shards) }

// Shards exposes the shard slice (read-only by convention); tests use
// it for per-shard assertions.
func (bp *BrokerPool) Shards() []*Broker { return bp.shards }

// ShardFor returns the shard currently owning a symbol (home route
// plus any live migration overrides).
func (bp *BrokerPool) ShardFor(symbol string) *Broker {
	return bp.shards[bp.p.routes.shardOf(symbol)]
}

// Trades reports completed fills across the pool.
func (bp *BrokerPool) Trades() uint64 { return bp.sum((*Broker).Trades) }

// PartialFills reports residual-leaving fills across the pool.
func (bp *BrokerPool) PartialFills() uint64 { return bp.sum((*Broker).PartialFills) }

// Cancels reports owner-withdrawn orders across the pool.
func (bp *BrokerPool) Cancels() uint64 { return bp.sum((*Broker).Cancels) }

// Amends reports owner-amended orders across the pool.
func (bp *BrokerPool) Amends() uint64 { return bp.sum((*Broker).Amends) }

// SelfTradeCancels reports STP-withdrawn orders across the pool.
func (bp *BrokerPool) SelfTradeCancels() uint64 { return bp.sum((*Broker).SelfTradeCancels) }

// Expired reports TTL-evicted orders across the pool.
func (bp *BrokerPool) Expired() uint64 { return bp.sum((*Broker).Expired) }

// Delegations reports audit delegations issued across the pool.
func (bp *BrokerPool) Delegations() uint64 { return bp.sum((*Broker).Delegations) }

// Misroutes reports rejected misrouted orders across the pool; always
// zero unless an oshard part was forged.
func (bp *BrokerPool) Misroutes() uint64 { return bp.sum((*Broker).Misroutes) }

// AuditForwards reports audit requests re-routed to a symbol's current
// owner across the pool (trades published before a migration carry the
// old shard's oshard stamp).
func (bp *BrokerPool) AuditForwards() uint64 { return bp.sum((*Broker).AuditForwards) }

// MigrationRejects reports refused migrate events across the pool:
// forged or stale hand-offs, or duplicate installs losing the
// first-wins race.
func (bp *BrokerPool) MigrationRejects() uint64 { return bp.sum((*Broker).MigrationRejects) }

// RoutedOrders reports order publications stamped for any shard — the
// offered-load side of the load accounting (see load.go).
func (bp *BrokerPool) RoutedOrders() uint64 { return bp.sum((*Broker).RoutedOrders) }

func (bp *BrokerPool) sum(f func(*Broker) uint64) uint64 {
	var n uint64
	for _, b := range bp.shards {
		n += f(b)
	}
	return n
}

// BookDepths unions the per-symbol resting-order counts across shards.
func (bp *BrokerPool) BookDepths() map[string]int {
	out := make(map[string]int)
	for _, b := range bp.shards {
		for sym, n := range b.BookDepths() {
			out[sym] = n
		}
	}
	return out
}

// SnapshotBooks unions the per-symbol book snapshots across shards.
func (bp *BrokerPool) SnapshotBooks() map[string][]orderbook.LevelSnap {
	out := make(map[string][]orderbook.LevelSnap)
	for _, b := range bp.shards {
		for sym, snap := range b.SnapshotBooks() {
			out[sym] = snap
		}
	}
	return out
}

// TradeLogSnapshot unions the per-symbol audit windows across shards.
func (bp *BrokerPool) TradeLogSnapshot() map[string][]TradeRec {
	out := make(map[string][]TradeRec)
	for _, b := range bp.shards {
		for sym, recs := range b.TradeLogSnapshot() {
			out[sym] = recs
		}
	}
	return out
}

// ValidateBooks runs the engine invariant checker over every shard.
func (bp *BrokerPool) ValidateBooks() error {
	for _, b := range bp.shards {
		if err := b.ValidateBooks(); err != nil {
			return err
		}
	}
	return nil
}

// CheckConservation verifies the quantity balance on every shard.
func (bp *BrokerPool) CheckConservation() error {
	for _, b := range bp.shards {
		if err := b.CheckConservation(); err != nil {
			return err
		}
	}
	return nil
}
