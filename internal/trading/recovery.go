package trading

// Event-sourced crash recovery (DESIGN-dispatch.md §12). The trading
// layer owns what the journal stores: order records are the decoded,
// validated takerOrder (post-routing, pre-match) plus the wall clock
// the matching used — together the exact deterministic input of a
// shard's matching state — and checkpoints are the full serialized
// brokerBook (books via orderbook.Dump, trade-log rings, conservation
// ledgers, auth refcounts, observability counters). Recover rebuilds
// a fresh Platform from the newest valid checkpoint plus a replay of
// the journal tail through the same applyOrder/consumeAudit code the
// live path runs, which is what makes recovery-equals-replay a
// checkable invariant rather than a hope.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/journal"
	"repro/internal/orderbook"
	"repro/internal/tags"
)

// Typed recovery errors, layered above the journal's fault classes.
var (
	// ErrNoJournal: Recover called without JournalDir/JournalFS.
	ErrNoJournal = errors.New("trading: recovery needs JournalDir or JournalFS")
	// ErrShardMismatch: the journal was written by a pool with a
	// different shard count than the recovering config — RouteSymbol
	// would steer new orders for a symbol to a different shard than
	// the one holding its recovered book (invariant 13), so recovery
	// refuses in BOTH directions, too many shards and too few.
	ErrShardMismatch = errors.New("trading: journal shard count does not match BrokerShards")
	// ErrCheckpointDecode: a checkpoint passed its CRC but does not
	// decode — version skew, not disk damage; refusing beats silently
	// discarding state.
	ErrCheckpointDecode = errors.New("trading: checkpoint decode failed")
	// ErrRecordDecode: a journal record passed its CRC but does not
	// decode; replaying past it would diverge, so recovery refuses.
	ErrRecordDecode = errors.New("trading: journal record decode failed")
)

// ShardRecovery is one shard's recovery outcome.
type ShardRecovery struct {
	Shard         int
	CheckpointLSN uint64
	LastLSN       uint64
	journal.Report
}

// RecoveryReport aggregates what Recover found and fixed.
type RecoveryReport struct {
	Shards []ShardRecovery
}

// RecoveredRecords totals the journal records replayed across shards.
func (r *RecoveryReport) RecoveredRecords() uint64 {
	var n uint64
	for i := range r.Shards {
		n += r.Shards[i].Report.RecoveredRecords
	}
	return n
}

// TornTails totals torn-frame truncations across shards.
func (r *RecoveryReport) TornTails() int {
	n := 0
	for i := range r.Shards {
		n += r.Shards[i].Report.TornTail
	}
	return n
}

// CheckpointFallbacks totals invalid checkpoints skipped across shards.
func (r *RecoveryReport) CheckpointFallbacks() int {
	n := 0
	for i := range r.Shards {
		n += r.Shards[i].Report.CheckpointFallbacks
	}
	return n
}

// Faults flattens every shard's typed fault list.
func (r *RecoveryReport) Faults() []error {
	var out []error
	for i := range r.Shards {
		out = append(out, r.Shards[i].Report.Faults...)
	}
	return out
}

// Recover rebuilds a platform from its journal directory: it
// assembles a fresh Platform from cfg (which must carry the same
// Mode, Seed, shard count and matching knobs as the crashed run, and
// name the journal via JournalDir or JournalFS), loads every shard's
// newest valid checkpoint, replays the journal tail through the live
// matching code, and resumes journaling at the recovered LSN. The
// rebuilt pool reproduces the pre-crash books, per-symbol trade logs,
// conservation ledgers and auth refcounts bit-identically up to the
// journal's consistent prefix; replayed fills are delivered to
// cfg.OnFill in publication order. Damage found in the journal is
// repaired (truncated tails, checkpoint fallbacks) and itemized in
// the report, never panicked on.
func Recover(cfg Config) (*Platform, *RecoveryReport, error) {
	fs, err := resolveJournalFS(&cfg)
	if err != nil {
		return nil, nil, err
	}
	if fs == nil {
		return nil, nil, ErrNoJournal
	}
	cfg.JournalFS, cfg.JournalDir = fs, ""

	// The manifest pins the writing pool's shard count; an unset
	// config adopts it, a set config must match it exactly. Without a
	// manifest (a journal built below the platform layer) the file set
	// is the only evidence: idle shards leave no files, so we demand
	// the strictest reading — max shard + 1 — and reject anything else
	// rather than risk splitting a symbol's state across shards.
	switch n, ok, err := journal.ReadManifest(fs); {
	case err != nil:
		return nil, nil, fmt.Errorf("trading: recover: %w", err)
	case ok:
		if cfg.BrokerShards == 0 {
			cfg.BrokerShards = n
		}
		if cfg.BrokerShards != n {
			return nil, nil, fmt.Errorf("%w: journal written with %d shards, config asks for %d",
				ErrShardMismatch, n, cfg.BrokerShards)
		}
	default:
		if cfg.BrokerShards == 0 {
			cfg.BrokerShards = defaultBrokerShards()
		}
		shards, err := journal.Shards(fs)
		if err != nil {
			return nil, nil, fmt.Errorf("trading: recover: %w", err)
		}
		if len(shards) > 0 && shards[len(shards)-1]+1 != cfg.BrokerShards {
			return nil, nil, fmt.Errorf("%w: no manifest; journal files imply %d shards, config asks for %d",
				ErrShardMismatch, shards[len(shards)-1]+1, cfg.BrokerShards)
		}
	}

	// The planner must not tick while shards replay and routes are
	// being reconciled — it would measure half-rebuilt state and could
	// schedule a migration against a route table mid-repair. Assemble
	// with the tick deferred and start it once recovery is done.
	cfg.deferPlannerStart = true
	p, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	report := &RecoveryReport{}
	for _, b := range p.Broker.shards {
		sr, err := b.recover(fs)
		if err != nil {
			p.Close()
			return nil, nil, fmt.Errorf("trading: recover shard %d: %w", b.shard, err)
		}
		report.Shards = append(report.Shards, sr)
	}
	// A crash inside a migration hand-off can leave a symbol's state
	// in two shards' journals (migrate-in durable, migrate-out not);
	// pick one owner per symbol by hand-off epoch and rebuild the
	// route table before traffic resumes.
	p.reconcileMigrations()
	if p.Planner != nil {
		p.Planner.start()
	}
	return p, report, nil
}

// recover rebuilds one shard's state from fs and resumes its writer.
// Called before any traffic reaches the fresh platform.
func (b *Broker) recover(fs journal.FS) (ShardRecovery, error) {
	rst, err := journal.Recover(fs, b.shard)
	if err != nil {
		return ShardRecovery{}, err
	}
	sr := ShardRecovery{
		Shard:         b.shard,
		CheckpointLSN: rst.CheckpointLSN,
		LastLSN:       rst.LastLSN,
		Report:        rst.Report,
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	bk := newBrokerBook()
	if rst.Checkpoint != nil {
		bk, err = b.decodeCheckpoint(rst.Checkpoint)
		if err != nil {
			return ShardRecovery{}, fmt.Errorf("%w: %v", ErrCheckpointDecode, err)
		}
	}
	for i, rec := range rst.Records {
		if err := b.replayRecord(bk, rec); err != nil {
			return ShardRecovery{}, fmt.Errorf("%w: record %d (LSN %d): %v",
				ErrRecordDecode, i, rst.CheckpointLSN+uint64(i)+1, err)
		}
	}
	if rst.Checkpoint != nil || len(rst.Records) > 0 {
		b.bk = bk
	}
	if b.jw != nil {
		b.jw.StartAt(rst.LastLSN)
		b.jlast = rst.LastLSN
	}
	return sr, nil
}

// replayRecord applies one journal record to the rebuilding state
// through the same code the live path runs, with no unit: privilege
// choreography and event publication are skipped, state mutation is
// bit-identical.
func (b *Broker) replayRecord(bk *brokerBook, rec []byte) error {
	if len(rec) == 0 {
		return fmt.Errorf("empty record")
	}
	switch rec[0] {
	case recOrder:
		o, now, err := decodeOrderRec(rec)
		if err != nil {
			return err
		}
		b.applyOrder(nil, bk, &o, now)
	case recAudit:
		symbol, id, err := decodeAuditRec(rec)
		if err != nil {
			return err
		}
		if sb := bk.syms[symbol]; sb != nil {
			if r := sb.log.get(id); r != nil {
				b.consumeAudit(nil, bk, sb, r)
			}
		}
	case recMigrateOut:
		symbol, _, _, err := decodeMigrateOutRec(rec)
		if err != nil {
			return err
		}
		// The symbol left this shard: drop its state and the auth
		// references it holds, exactly as the live hand-off did.
		if sb := bk.syms[symbol]; sb != nil {
			bk.subAuthRefs(symAuthRefs(sb))
			delete(bk.syms, symbol)
		}
	case recMigrateIn:
		// The symbol arrived here: install the transferred state. The
		// feed wires before the restore (emitDepth) so a fresh feed is
		// rebuilt from the restored levels, like the checkpoint path.
		symbol, sb, err := b.decodeMigrateBlob(rec[1:], true)
		if err != nil {
			return err
		}
		b.installSym(bk, symbol, sb)
	default:
		return fmt.Errorf("unknown record kind %d", rec[0])
	}
	return nil
}

// record and checkpoint codecs — fixed-width little-endian, no
// reflection, and decoders that fail with errors instead of panics on
// any malformed input (the fuzz target feeds them damage the CRC
// framing happened to miss).

const (
	recOrder = 1
	recAudit = 2
	// recMigrateOut records a symbol leaving the shard (hand-off
	// epoch, destination, symbol); recMigrateIn records a symbol
	// arriving (the full hand-off blob). Together they make the route
	// history deterministic under replay.
	recMigrateOut = 3
	recMigrateIn  = 4

	// ckptVersion 2 added the per-symbol hand-off epoch.
	ckptVersion = 2

	// migVersion frames the hand-off blob carried by migrate events
	// and recMigrateIn records.
	migVersion = 1
)

// ordtype wire codes.
var ordtypeCode = map[string]byte{"limit": 0, "market": 1, "cancel": 2, "amend": 3}
var ordtypeName = [4]string{"limit", "market", "cancel", "amend"}

// enc is an append-only byte encoder.
type enc struct{ b []byte }

func (e *enc) u8(v byte) { e.b = append(e.b, v) }
func (e *enc) i64(v int64) {
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], uint64(v))
	e.b = append(e.b, w[:]...)
}
func (e *enc) u64(v uint64) { e.i64(int64(v)) }
func (e *enc) str(s string) {
	var w [4]byte
	binary.LittleEndian.PutUint32(w[:], uint32(len(s)))
	e.b = append(e.b, w[:]...)
	e.b = append(e.b, s...)
}
func (e *enc) tag(t tags.Tag) {
	id := t.ID()
	e.b = append(e.b, id[:]...)
}

// dec is a bounds-checked byte decoder: the first out-of-range read
// latches err and every later read returns zero values.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("truncated at offset %d of %d", d.off, len(d.b))
	}
}

func (d *dec) u8() byte {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) i64() int64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := int64(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

func (d *dec) u64() uint64 { return uint64(d.i64()) }

func (d *dec) str() string {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return ""
	}
	n := int(binary.LittleEndian.Uint32(d.b[d.off:]))
	d.off += 4
	if n < 0 || d.off+n > len(d.b) {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *dec) tag() tags.Tag {
	var id tags.ID
	if d.err != nil || d.off+len(id) > len(d.b) {
		d.fail()
		return tags.Tag{}
	}
	copy(id[:], d.b[d.off:])
	d.off += len(id)
	return tags.FromID(id)
}

// encodeOrderRec serializes one accepted order plus the matching wall
// clock.
func encodeOrderRec(o *takerOrder, now int64) []byte {
	e := enc{b: make([]byte, 0, 96+len(o.symbol)+len(o.trader))}
	e.u8(recOrder)
	e.u8(ordtypeCode[o.ordtype])
	e.u8(byte(o.side))
	e.i64(now)
	e.i64(o.id)
	e.i64(o.price)
	e.i64(o.qty)
	e.i64(o.target)
	e.i64(o.stamp)
	e.tag(o.tr)
	e.tag(o.strat)
	e.str(o.symbol)
	e.str(o.trader)
	return e.b
}

func decodeOrderRec(b []byte) (takerOrder, int64, error) {
	d := dec{b: b}
	if d.u8() != recOrder {
		return takerOrder{}, 0, fmt.Errorf("not an order record")
	}
	ot := d.u8()
	var o takerOrder
	o.side = orderbook.Side(int8(d.u8()))
	now := d.i64()
	o.id = d.i64()
	o.price = d.i64()
	o.qty = d.i64()
	o.target = d.i64()
	o.stamp = d.i64()
	o.tr = d.tag()
	o.strat = d.tag()
	o.symbol = d.str()
	o.trader = d.str()
	if d.err != nil {
		return takerOrder{}, 0, d.err
	}
	if int(ot) >= len(ordtypeName) {
		return takerOrder{}, 0, fmt.Errorf("bad ordtype code %d", ot)
	}
	o.ordtype = ordtypeName[ot]
	if d.off != len(b) {
		return takerOrder{}, 0, fmt.Errorf("%d trailing bytes", len(b)-d.off)
	}
	return o, now, nil
}

// encodeAuditRec serializes one audit consumption.
func encodeAuditRec(symbol string, tradeID int64) []byte {
	e := enc{b: make([]byte, 0, 16+len(symbol))}
	e.u8(recAudit)
	e.i64(tradeID)
	e.str(symbol)
	return e.b
}

func decodeAuditRec(b []byte) (string, int64, error) {
	d := dec{b: b}
	if d.u8() != recAudit {
		return "", 0, fmt.Errorf("not an audit record")
	}
	id := d.i64()
	symbol := d.str()
	if d.err != nil {
		return "", 0, d.err
	}
	if d.off != len(b) {
		return "", 0, fmt.Errorf("%d trailing bytes", len(b)-d.off)
	}
	return symbol, id, nil
}

// encodeSymState serializes one symbol's complete matching state —
// the shared unit of checkpoints and migration hand-off blobs, so the
// transfer format and the recovery format can never drift apart.
func encodeSymState(e *enc, symbol string, sb *symBook) {
	e.str(symbol)
	e.u64(sb.epoch)
	e.i64(sb.ns)
	e.i64(sb.seq)
	e.i64(sb.ledger.submitted)
	e.i64(sb.ledger.filled)
	e.i64(sb.ledger.canceled)
	e.i64(sb.ledger.expired)
	e.i64(sb.ledger.discarded)

	dump := sb.book.Dump()
	e.i64(int64(len(dump)))
	for i := range dump {
		o := &dump[i]
		e.i64(o.ID)
		e.u8(byte(o.Side))
		e.i64(o.Price)
		e.i64(o.Qty)
		e.i64(o.Entered)
		e.str(o.Owner.Name)
		e.tag(o.Owner.Tag)
		e.tag(o.Owner.Strat)
		e.i64(o.Owner.Stamp)
	}

	// The trade-log ring is stored slot-for-slot (empty and consumed
	// slots included) so the restored ring is the same ring, not a
	// compaction of it.
	e.i64(int64(len(sb.log.recs)))
	for i := range sb.log.recs {
		r := &sb.log.recs[i]
		e.i64(r.id)
		e.str(r.buyer)
		e.str(r.seller)
		e.tag(r.trBuyer)
		e.tag(r.trSeller)
		e.tag(r.stratBuyer)
		e.tag(r.stratSeller)
		e.str(r.symbol)
		e.i64(r.price)
		e.i64(r.qty)
	}
}

// decodeSymState rebuilds one symbol's state from the decoder. With
// emitDepth the feed wires before the book restore, so the restored
// levels emit into a fresh feed (recovery paths); without it the feed
// wires after, so a live hand-off does not re-emit levels the shared
// feed already carries from the source shard.
func (b *Broker) decodeSymState(d *dec, emitDepth bool) (string, *symBook, error) {
	symbol := d.str()
	if d.err != nil {
		return "", nil, d.err
	}
	sb := &symBook{book: orderbook.New()}
	if emitDepth {
		b.wireFeed(symbol, sb)
	}
	sb.epoch = d.u64()
	sb.ns = d.i64()
	sb.seq = d.i64()
	sb.ledger.submitted = d.i64()
	sb.ledger.filled = d.i64()
	sb.ledger.canceled = d.i64()
	sb.ledger.expired = d.i64()
	sb.ledger.discarded = d.i64()

	norders := d.i64()
	if d.err != nil {
		return "", nil, d.err
	}
	if norders < 0 || norders > int64(len(d.b)) {
		return "", nil, fmt.Errorf("%s: implausible order count %d", symbol, norders)
	}
	dump := make([]orderbook.OrderState, norders)
	for j := range dump {
		o := &dump[j]
		o.ID = d.i64()
		o.Side = orderbook.Side(int8(d.u8()))
		o.Price = d.i64()
		o.Qty = d.i64()
		o.Entered = d.i64()
		o.Owner.Name = d.str()
		o.Owner.Tag = d.tag()
		o.Owner.Strat = d.tag()
		o.Owner.Stamp = d.i64()
	}
	if d.err != nil {
		return "", nil, d.err
	}
	if err := sb.book.Restore(dump); err != nil {
		return "", nil, err
	}
	if !emitDepth {
		b.wireFeed(symbol, sb)
	}

	nlog := d.i64()
	if d.err != nil {
		return "", nil, d.err
	}
	if nlog < 0 || nlog > maxTradeLog {
		return "", nil, fmt.Errorf("%s: implausible log length %d", symbol, nlog)
	}
	sb.log.recs = make([]tradeRecord, nlog)
	for j := range sb.log.recs {
		r := &sb.log.recs[j]
		r.id = d.i64()
		r.buyer = d.str()
		r.seller = d.str()
		r.trBuyer = d.tag()
		r.trSeller = d.tag()
		r.stratBuyer = d.tag()
		r.stratSeller = d.tag()
		r.symbol = d.str()
		r.price = d.i64()
		r.qty = d.i64()
	}
	if d.err != nil {
		return "", nil, d.err
	}
	return symbol, sb, nil
}

// encodeMigrateBlob serializes one symbol's state for a hand-off; the
// blob rides in the migrate event's data part and in the destination's
// recMigrateIn journal record.
func encodeMigrateBlob(symbol string, sb *symBook) []byte {
	e := enc{b: make([]byte, 0, 1024)}
	e.u8(migVersion)
	encodeSymState(&e, symbol, sb)
	return e.b
}

// decodeMigrateBlob rebuilds a hand-off blob; emitDepth as on
// decodeSymState (false for live installs, true under journal replay).
func (b *Broker) decodeMigrateBlob(blob []byte, emitDepth bool) (string, *symBook, error) {
	d := dec{b: blob}
	if v := d.u8(); d.err != nil || v != migVersion {
		return "", nil, fmt.Errorf("hand-off blob version %d, want %d", v, migVersion)
	}
	symbol, sb, err := b.decodeSymState(&d, emitDepth)
	if err != nil {
		return "", nil, err
	}
	if d.off != len(blob) {
		return "", nil, fmt.Errorf("%d trailing bytes", len(blob)-d.off)
	}
	return symbol, sb, nil
}

// encodeMigrateOutRec serializes the source side of a hand-off.
func encodeMigrateOutRec(symbol string, dst int, epoch uint64) []byte {
	e := enc{b: make([]byte, 0, 24+len(symbol))}
	e.u8(recMigrateOut)
	e.u64(epoch)
	e.i64(int64(dst))
	e.str(symbol)
	return e.b
}

func decodeMigrateOutRec(b []byte) (string, int, uint64, error) {
	d := dec{b: b}
	if d.u8() != recMigrateOut {
		return "", 0, 0, fmt.Errorf("not a migrate-out record")
	}
	epoch := d.u64()
	dst := d.i64()
	symbol := d.str()
	if d.err != nil {
		return "", 0, 0, d.err
	}
	if d.off != len(b) {
		return "", 0, 0, fmt.Errorf("%d trailing bytes", len(b)-d.off)
	}
	return symbol, int(dst), epoch, nil
}

// encodeMigrateInRec frames a hand-off blob as the destination side's
// journal record.
func encodeMigrateInRec(blob []byte) []byte {
	rec := make([]byte, 0, 1+len(blob))
	rec = append(rec, recMigrateIn)
	return append(rec, blob...)
}

// encodeCheckpoint serializes a shard's complete matching state.
// Symbols and auth tags are emitted in sorted order so identical
// states encode to identical bytes. Called with b.mu held.
func encodeCheckpoint(b *Broker, bk *brokerBook) []byte {
	e := enc{b: make([]byte, 0, 4096)}
	e.u8(ckptVersion)
	for _, c := range []*counter{
		&b.trades, &b.partials, &b.cancels, &b.amends,
		&b.stpCancels, &b.expired, &b.delegates, &b.misroutes,
	} {
		e.u64(c.load())
	}

	syms := make([]string, 0, len(bk.syms))
	for s := range bk.syms {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	e.i64(int64(len(syms)))
	for _, s := range syms {
		encodeSymState(&e, s, bk.syms[s])
	}

	auths := make([]tags.Tag, 0, len(bk.auths))
	for t := range bk.auths {
		auths = append(auths, t)
	}
	sort.Slice(auths, func(i, j int) bool {
		a, b := auths[i].ID(), auths[j].ID()
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	e.i64(int64(len(auths)))
	for _, t := range auths {
		e.tag(t)
		e.i64(int64(bk.auths[t]))
	}
	return e.b
}

// decodeCheckpoint rebuilds a brokerBook from a checkpoint blob,
// wiring each symbol's feed exactly as live creation would. Called
// with b.mu held on a traffic-free shard.
func (b *Broker) decodeCheckpoint(blob []byte) (*brokerBook, error) {
	d := dec{b: blob}
	if v := d.u8(); v != ckptVersion {
		return nil, fmt.Errorf("checkpoint version %d, want %d", v, ckptVersion)
	}
	counters := [8]*counter{
		&b.trades, &b.partials, &b.cancels, &b.amends,
		&b.stpCancels, &b.expired, &b.delegates, &b.misroutes,
	}
	var cvals [8]uint64
	for i := range cvals {
		cvals[i] = d.u64()
	}

	bk := newBrokerBook()
	nsyms := d.i64()
	if d.err != nil {
		return nil, d.err
	}
	if nsyms < 0 || nsyms > int64(len(blob)) {
		return nil, fmt.Errorf("implausible symbol count %d", nsyms)
	}
	for i := int64(0); i < nsyms; i++ {
		// The auth refcounts are stored separately below, so the
		// decoded state installs with a plain map insert rather than
		// installSym (which would double-count them).
		symbol, sb, err := b.decodeSymState(&d, true)
		if err != nil {
			return nil, err
		}
		bk.syms[symbol] = sb
	}

	nauths := d.i64()
	if d.err != nil {
		return nil, d.err
	}
	if nauths < 0 || nauths > int64(len(blob)) {
		return nil, fmt.Errorf("implausible auth count %d", nauths)
	}
	for i := int64(0); i < nauths; i++ {
		t := d.tag()
		n := d.i64()
		if d.err != nil {
			return nil, d.err
		}
		if n <= 0 {
			return nil, fmt.Errorf("non-positive auth refcount %d", n)
		}
		bk.auths[t] = int(n)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(blob) {
		return nil, fmt.Errorf("%d trailing bytes", len(blob)-d.off)
	}
	for i, c := range counters {
		c.store(cvals[i])
	}
	return bk, nil
}
