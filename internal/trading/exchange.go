package trading

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/freeze"
	"repro/internal/priv"
	"repro/internal/workload"
)

// exchangeBatch is the number of ticks PublishTicks turns into one
// PublishBatch call. 128 keeps the per-chunk event buffer small while
// amortising the dispatch and queue handoff across enough events that
// per-event overhead disappears from the replay profile.
const exchangeBatch = 128

// Exchange is the Stock Exchange unit: the source of stock tick events,
// endorsed with the integrity tag s that it owns — Pair Monitors are
// instantiated with read integrity s and therefore perceive only
// exchange-endorsed ticks (§6.1).
//
// The unit is single-threaded by design (as noted in §6.2): ticks are
// published from whatever goroutine drives Replay. The batch buffer
// below relies on that — PublishTicks must not be called concurrently
// with itself or PublishTick.
type Exchange struct {
	p    *Platform
	unit *core.Unit

	published counter

	// cache retains recent tick events, modelling the ≈300 MiB of
	// cached ticks in the paper's deployment (Figure 7). It is an
	// atomic-index ring: remember() runs once per published tick on
	// the replay hot path, so it claims a slot with one atomic add
	// and stores the event with one atomic pointer write — no lock.
	cache    []atomic.Pointer[events.Event]
	cacheSeq atomic.Uint64

	// batch is the reusable event buffer for PublishTicks (the unit is
	// single-threaded, so one buffer suffices).
	batch []*events.Event
}

// newExchange bootstraps the exchange with s+ and endorses its output.
func newExchange(p *Platform, grants []priv.Grant) *Exchange {
	x := &Exchange{p: p}
	x.unit = p.Sys.NewUnit("stock-exchange", core.UnitConfig{Grants: grants})
	// Endorse everything the exchange publishes (§3.1.4: adding s to
	// Iout vouches for output without per-event calls).
	if err := x.unit.ChangeOutLabel(core.Integrity, core.Add, p.tagS); err != nil {
		panic("exchange endorsement failed: " + err.Error())
	}
	x.cache = make([]atomic.Pointer[events.Event], p.cfg.TickCacheSize)
	x.batch = make([]*events.Event, 0, exchangeBatch)
	return x
}

// makeTick builds one tick event.
//
// Parts: type="tick" and body{symbol,price,seq}, both public with
// integrity {s} attached automatically from the output label.
func (x *Exchange) makeTick(tk *workload.Tick) *events.Event {
	e := x.unit.CreateEvent()
	if err := x.unit.AddPart(e, noTags, noTags, "type", "tick"); err != nil {
		return nil
	}
	body := freeze.MapOf(
		"symbol", tk.Symbol,
		"price", tk.Price,
		"seq", int64(tk.Seq),
	)
	if err := x.unit.AddPart(e, noTags, noTags, "body", body); err != nil {
		return nil
	}
	return e
}

// PublishTick publishes one tick event.
func (x *Exchange) PublishTick(tk *workload.Tick) {
	e := x.makeTick(tk)
	if e == nil {
		return
	}
	if err := x.unit.Publish(e); err != nil {
		return
	}
	x.published.inc()
	x.remember(e)
}

// PublishTicks publishes a run of ticks through the batched dispatch
// path: events are built in chunks and handed to PublishBatch, so
// every matched receiver pays one queue handoff per chunk instead of
// one per tick. Delivery semantics are identical to calling
// PublishTick for each tick in order — the replay driver and the
// bench harness use it as their throughput path.
func (x *Exchange) PublishTicks(tks []workload.Tick) {
	for start := 0; start < len(tks); start += exchangeBatch {
		end := min(start+exchangeBatch, len(tks))
		batch := x.batch[:0]
		for i := start; i < end; i++ {
			if e := x.makeTick(&tks[i]); e != nil {
				batch = append(batch, e)
			}
		}
		if len(batch) == 0 {
			continue
		}
		if err := x.unit.PublishBatch(batch); err != nil {
			return
		}
		x.published.add(uint64(len(batch)))
		for _, e := range batch {
			x.remember(e)
		}
		// Drop the event references before reuse: the buffer must not
		// pin the previous chunk's events until the next replay.
		clear(batch)
		x.batch = batch[:0]
	}
}

// remember stores the event in the bounded tick cache.
func (x *Exchange) remember(e *events.Event) {
	if len(x.cache) == 0 {
		return
	}
	ix := (x.cacheSeq.Add(1) - 1) % uint64(len(x.cache))
	x.cache[ix].Store(e)
}

// Published reports the number of ticks published.
func (x *Exchange) Published() uint64 { return x.published.load() }

// CacheLen reports the current tick-cache occupancy.
func (x *Exchange) CacheLen() int {
	n := x.cacheSeq.Load()
	if n > uint64(len(x.cache)) {
		return len(x.cache)
	}
	return int(n)
}
