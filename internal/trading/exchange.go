package trading

import (
	"sync"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/freeze"
	"repro/internal/priv"
	"repro/internal/workload"
)

// Exchange is the Stock Exchange unit: the source of stock tick events,
// endorsed with the integrity tag s that it owns — Pair Monitors are
// instantiated with read integrity s and therefore perceive only
// exchange-endorsed ticks (§6.1).
//
// The unit is single-threaded by design (as noted in §6.2): ticks are
// published from whatever goroutine drives Replay.
type Exchange struct {
	p    *Platform
	unit *core.Unit

	published counter

	// cache retains recent tick events, modelling the ≈300 MiB of
	// cached ticks in the paper's deployment (Figure 7).
	mu      sync.Mutex
	cache   []*events.Event
	cacheIx int
}

// newExchange bootstraps the exchange with s+ and endorses its output.
func newExchange(p *Platform, grants []priv.Grant) *Exchange {
	x := &Exchange{p: p}
	x.unit = p.Sys.NewUnit("stock-exchange", core.UnitConfig{Grants: grants})
	// Endorse everything the exchange publishes (§3.1.4: adding s to
	// Iout vouches for output without per-event calls).
	if err := x.unit.ChangeOutLabel(core.Integrity, core.Add, p.tagS); err != nil {
		panic("exchange endorsement failed: " + err.Error())
	}
	x.cache = make([]*events.Event, 0, p.cfg.TickCacheSize)
	return x
}

// PublishTick publishes one tick event.
//
// Parts: type="tick" and body{symbol,price,seq}, both public with
// integrity {s} attached automatically from the output label.
func (x *Exchange) PublishTick(tk *workload.Tick) {
	e := x.unit.CreateEvent()
	if err := x.unit.AddPart(e, noTags, noTags, "type", "tick"); err != nil {
		return
	}
	body := freeze.MapOf(
		"symbol", tk.Symbol,
		"price", tk.Price,
		"seq", int64(tk.Seq),
	)
	if err := x.unit.AddPart(e, noTags, noTags, "body", body); err != nil {
		return
	}
	if err := x.unit.Publish(e); err != nil {
		return
	}
	x.published.inc()
	x.remember(e)
}

// remember stores the event in the bounded tick cache.
func (x *Exchange) remember(e *events.Event) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if len(x.cache) < cap(x.cache) {
		x.cache = append(x.cache, e)
		return
	}
	if len(x.cache) == 0 {
		return
	}
	x.cache[x.cacheIx] = e
	x.cacheIx = (x.cacheIx + 1) % len(x.cache)
}

// Published reports the number of ticks published.
func (x *Exchange) Published() uint64 { return x.published.load() }

// CacheLen reports the current tick-cache occupancy.
func (x *Exchange) CacheLen() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return len(x.cache)
}
