package trading

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/freeze"
	"repro/internal/workload"
)

// TestForgedTicksDoNotReachMonitors verifies the §6.1 integrity
// property: "Pair Monitor units are always instantiated with read
// integrity s and are thus only able to perceive events published by
// the Stock Exchange unit that owns s". A malicious trader feeding
// fabricated prices into the market must be ignored.
func TestForgedTicksDoNotReachMonitors(t *testing.T) {
	p, err := New(Config{
		Mode:       core.LabelsFreeze,
		NumTraders: 2,
		Universe:   workload.NewUniverse(1),
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	pair := p.Universe().Pairs[0]

	// The attacker publishes fake ticks shaped exactly like real ones —
	// same parts, same data, a price divergence that would trigger the
	// pairs algorithm — but cannot endorse them with s.
	mallory := p.Sys.NewUnit("mallory", core.UnitConfig{})
	for i := 0; i < 40; i++ {
		e := mallory.CreateEvent()
		if err := mallory.AddPart(e, noTags, noTags, "type", "tick"); err != nil {
			t.Fatal(err)
		}
		price := pair.BaseA
		sym := pair.A
		if i%2 == 1 {
			sym = pair.B
			price = pair.BaseB * 2 // would fire every monitor if accepted
		}
		body := freeze.MapOf("symbol", sym, "price", price, "seq", int64(i))
		if err := mallory.AddPart(e, noTags, noTags, "body", body); err != nil {
			t.Fatal(err)
		}
		if err := mallory.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	p.Quiesce(5 * time.Second)
	time.Sleep(30 * time.Millisecond)

	st := p.Stats()
	if st.MatchesEmitted != 0 || st.OrdersPlaced != 0 {
		t.Fatalf("forged ticks moved the market: %d matches, %d orders",
			st.MatchesEmitted, st.OrdersPlaced)
	}

	// Genuine endorsed ticks still work after the attack.
	trace := workload.NewTrace(p.Universe(), 99)
	p.Replay(trace.Take(300))
	p.Quiesce(5 * time.Second)
	if p.Stats().MatchesEmitted == 0 {
		t.Fatal("genuine ticks no longer trigger")
	}
}

// TestRepublishedTicksCarryEndorsement verifies step 9's flip side:
// the Regulator owns s, so its republished local trades ARE perceived
// by monitors (unlike mallory's forgeries).
func TestRepublishedTicksCarryEndorsement(t *testing.T) {
	p := runScenario(t, core.LabelsFreeze, 2, 600, func(c *Config) {
		onePair(c)
		c.AuditSampleEvery = 1
	})
	st := p.Stats()
	if st.AuditsRequested == 0 {
		t.Fatal("no audits, republication never exercised")
	}
	// Each monitor subscribes to both symbols of the single pair, so it
	// receives every exchange tick; any surplus beyond TicksPublished
	// is the regulator's endorsed feedback.
	ticksDelivered := p.Traders[0].monitor.Usage().Deliveries +
		p.Traders[1].monitor.Usage().Deliveries
	perMonitor := ticksDelivered / 2
	if perMonitor <= st.TicksPublished {
		t.Fatalf("no republished ticks perceived: %d deliveries per monitor vs %d published",
			perMonitor, st.TicksPublished)
	}
}
