package trading

import (
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/events"
	"repro/internal/freeze"
	"repro/internal/units"
	"repro/internal/workload"
)

// Monitor is a Pair Monitor unit (§6.1): it provides pairs trading as
// a service for one trader, watching two symbols' ticks and emitting a
// Match event when the expected price divergence occurs.
//
// Figure 4 choreography: the monitor runs confined to the trader's tag
// t_i — everything it emits is visible only to that trader — and is
// instantiated with read integrity {s}, so it perceives only events
// endorsed by the Stock Exchange (or the Regulator's republished local
// trades, step 9).
//
// Deviation note: the paper's step 1 delivers the pair configuration
// via a t_i-protected Monitor event. A unit whose input integrity is
// pinned to {s} cannot also receive the unendorsed configuration event,
// so — like the paper's own implementation, which parameterises
// monitors with "a stock pair and an investment threshold" — the
// configuration travels through instantiateUnit instead. The t_i+
// delegation of step 1 is preserved.
type Monitor struct {
	unit         *core.Unit
	trader       string
	pair         workload.Pair
	thresholdBps int64

	subA, subB uint64

	lastA, lastB int64
	// armed gates triggering on reversion confirmation: the monitor
	// fires at most once per divergence episode and re-arms only after
	// quietneed consecutive sub-threshold B-side ticks. The Regulator
	// republishes sampled trades as ticks at the traded (diverged)
	// price; without reversion confirmation that feedback would re-fire
	// every monitor of the pair, amplifying one genuine divergence into
	// an open-ended cascade.
	armed       bool
	quietStreak int

	matches *counter // shared with the trader's counter
}

// quietNeed is the number of consecutive sub-threshold B-ticks required
// to re-arm the trigger after a divergence episode.
const quietNeed = 3

// setupMonitor registers the monitor's tick subscriptions; the trader
// calls it synchronously before the processing loop starts.
func (m *Monitor) setup() error {
	var err error
	m.subA, err = m.unit.Subscribe(dispatch.MustFilter(dispatch.KeyEq("body", "symbol", m.pair.A)))
	if err != nil {
		return err
	}
	m.subB, err = m.unit.Subscribe(dispatch.MustFilter(dispatch.KeyEq("body", "symbol", m.pair.B)))
	return err
}

// monitorDrainBatch bounds how many tick deliveries the monitor loop
// drains per GetEvents call; the exchange publishes in chunks of 128,
// so bursts are common at replay rates.
const monitorDrainBatch = 32

// run is the monitor's processing loop. Monitors sit directly on the
// tick feed — the highest-rate consumers in the system — so the loop
// drains deliveries in batches: one amortised interceptor traversal
// and one queue synchronisation per burst instead of per tick. The
// monitor never modifies its deliveries and retains only scalars, so
// each event is recycled after handling (a no-op outside the
// labels+clone mode).
func (m *Monitor) run() {
	var buf [monitorDrainBatch]units.Delivery
	for {
		n, err := m.unit.GetEvents(buf[:])
		if err != nil {
			return
		}
		for i := 0; i < n; i++ {
			m.handle(buf[i].Event, buf[i].Sub)
			m.unit.Recycle(buf[i].Event)
			buf[i] = units.Delivery{}
		}
	}
}

// handle processes one tick delivery.
func (m *Monitor) handle(e *events.Event, sub uint64) {
	view, err := m.unit.ReadOne(e, "body")
	if err != nil {
		return
	}
	body, ok := view.Data.(*freeze.Map)
	if !ok {
		return
	}
	price := body.GetInt("price")
	if price <= 0 {
		return
	}
	isB := sub != m.subA
	if isB {
		m.lastB = price
	} else {
		m.lastA = price
	}
	if m.lastA == 0 || m.lastB == 0 {
		return
	}

	// Pairs trade: deviation of the current price ratio from the
	// pair's expected ratio, in basis points. All integer math:
	// dev = |(pA/pB) / (baseA/baseB) − 1| · 10000.
	ratioNow := m.lastA * 10000 * m.pair.BaseB
	ratioMean := m.lastB * m.pair.BaseA
	devBps := ratioNow/ratioMean - 10000
	if devBps < 0 {
		devBps = -devBps
	}
	if devBps < m.thresholdBps {
		if isB {
			m.quietStreak++
			if m.quietStreak >= quietNeed {
				m.armed = true
			}
		}
		return
	}
	m.quietStreak = 0
	if m.armed {
		m.armed = false
		m.emitMatch(e, devBps)
	}
}

// emitMatch publishes the Match event for the trader (step 3). Its
// parts are contaminated with t_i by the monitor's output label, so
// only the owning trader can perceive them.
func (m *Monitor) emitMatch(trigger *events.Event, devBps int64) {
	e := m.unit.CreateEventFrom(trigger)
	// The spiked side (B, by workload construction) is overpriced:
	// sell B, buy A; the order trades on B at its current price.
	if err := m.unit.AddPart(e, noTags, noTags, "type", "match"); err != nil {
		return
	}
	if err := m.unit.AddPart(e, noTags, noTags, "to", m.trader); err != nil {
		return
	}
	body := freeze.MapOf(
		"buy", m.pair.A,
		"sell", m.pair.B,
		"symbol", m.pair.B,
		"price", m.lastB,
		"dev_bps", devBps,
	)
	if err := m.unit.AddPart(e, noTags, noTags, "match", body); err != nil {
		return
	}
	if err := m.unit.Publish(e); err != nil {
		return
	}
	m.matches.inc()
}
