package trading

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/events"
	"repro/internal/freeze"
	"repro/internal/labels"
	"repro/internal/priv"
	"repro/internal/tags"
	"repro/internal/workload"
)

// maxLiveOrderTags bounds how many per-order tags a trader keeps in its
// input label; older tags are dropped FIFO (the trader owns tr−, so
// lowering is always permitted). Keeping recent tags lets the trader
// read its trade confirmations and any Regulator warnings.
const maxLiveOrderTags = 32

// Trader encapsulates one trader's strategy (§6.1): it owns the unique
// tag t_i protecting its strategy flow, instantiates its Pair Monitor
// with delegated t_i+ (step 1), reacts to Match events by placing
// orders into the dark pool (step 4), and recognises its own trades
// and Regulator warnings (steps 6, 8).
type Trader struct {
	p    *Platform
	unit *core.Unit

	name string
	idx  int
	pair workload.Pair
	side string // "bid" for even indices, "ask" for odd: orders cross
	tag  tags.Tag

	monitor *core.Unit
	mon     *Monitor

	subMatch, subBuy, subSell, subWarning uint64

	orderSeq uint64
	liveTags []tags.Tag

	matches  counter
	orders   counter
	trades   counter
	warnings counter
}

// newTrader assembles a trader, its tag and its monitor.
func newTrader(p *Platform, idx int, pair workload.Pair, side string) (*Trader, error) {
	t := &Trader{
		p:    p,
		idx:  idx,
		name: fmt.Sprintf("trader-%04d", idx),
		pair: pair,
		side: side,
	}
	t.unit = p.Sys.NewUnit(t.name, core.UnitConfig{})

	// Step 1: the trader owns its unique tag and raises its input label
	// so everything tagged t_i flows to it; its output stays public so
	// orders can reach the Broker. Raising input-only needs t_i± —
	// which the creator holds.
	t.tag = t.unit.CreateTag("t-" + t.name)
	if err := t.unit.ChangeInLabel(core.Confidentiality, core.Add, t.tag); err != nil {
		return nil, err
	}

	// Instantiate the confined Pair Monitor at read integrity {s},
	// delegating t_i+ (step 1). The monitor inherits the trader's
	// contamination, so its entire output is t_i-protected.
	mon, err := t.unit.InstantiateUnit(t.name+"-monitor", labels.EmptySet, setOf(p.tagS),
		[]priv.Grant{{Tag: t.tag, Right: priv.Plus}}, nil)
	if err != nil {
		return nil, err
	}
	t.monitor = mon
	t.mon = &Monitor{
		unit:         mon,
		trader:       t.name,
		pair:         pair,
		thresholdBps: p.cfg.ThresholdBps,
		matches:      &t.matches,
	}
	if err := t.mon.setup(); err != nil {
		return nil, err
	}

	// Subscriptions (all equality-indexable so the dispatcher's
	// centralised filtering stays sub-linear in the trader count).
	if t.subMatch, err = t.unit.Subscribe(dispatch.MustFilter(dispatch.PartEq("to", t.name))); err != nil {
		return nil, err
	}
	// Trade confirmations arrive via the identity parts themselves:
	// the filter is equality-indexed on this trader's name and the
	// parts are tr-protected, so each trade reaches exactly its two
	// counterparties — no broadcast, no leak.
	if t.subBuy, err = t.unit.Subscribe(dispatch.MustFilter(dispatch.PartEq("buyer", t.name))); err != nil {
		return nil, err
	}
	if t.subSell, err = t.unit.Subscribe(dispatch.MustFilter(dispatch.PartEq("seller", t.name))); err != nil {
		return nil, err
	}
	if t.subWarning, err = t.unit.Subscribe(dispatch.MustFilter(dispatch.KeyEq("warning", "to", t.name))); err != nil {
		return nil, err
	}

	p.Sys.Go(t.run)
	p.Sys.Go(t.mon.run)
	return t, nil
}

// Name returns the trader's platform name.
func (t *Trader) Name() string { return t.name }

// Tag returns the trader's strategy tag t_i.
func (t *Trader) Tag() tags.Tag { return t.tag }

// Pair returns the monitored symbol pair.
func (t *Trader) Pair() workload.Pair { return t.pair }

// Matches reports Match events emitted by the trader's monitor.
func (t *Trader) Matches() uint64 { return t.matches.load() }

// Orders reports orders placed.
func (t *Trader) Orders() uint64 { return t.orders.load() }

// Trades reports completed trades this trader recognised as its own.
func (t *Trader) Trades() uint64 { return t.trades.load() }

// Warnings reports Regulator warnings received.
func (t *Trader) Warnings() uint64 { return t.warnings.load() }

// run is the trader's processing loop. No branch modifies the
// delivered event (orders are fresh events), so each delivery is
// recycled after handling (a no-op outside the labels+clone mode).
func (t *Trader) run() {
	for {
		e, sub, err := t.unit.GetEvent()
		if err != nil {
			return
		}
		switch sub {
		case t.subMatch:
			t.placeOrder(e)
		case t.subBuy, t.subSell:
			t.checkTrade(e)
		case t.subWarning:
			t.warnings.inc()
		}
		t.unit.Recycle(e)
	}
}

// placeOrder implements step 4: a bid/ask with the three-way protection
// of Figure 1 — order details confined to the dark pool by b, the
// trader identity additionally protected by a fresh per-order tag tr,
// and the privilege payload that lets the Broker (and transitively the
// Regulator) do their jobs:
//
//	order part (S={b})      carries [tr+, tr−]      — the Broker may
//	    temporarily raise its input to read the identity and may
//	    declassify what it is entitled to.
//	name  part (S={b,tr})   carries [tr+auth, tr−auth] — the Broker may
//	    delegate those privileges onwards to the Regulator (step 7's
//	    "only possible as long as t+auth_r was included in the second
//	    part of the bid order").
func (t *Trader) placeOrder(match *events.Event) {
	view, err := t.unit.ReadOne(match, "match")
	if err != nil {
		return
	}
	body, ok := view.Data.(*freeze.Map)
	if !ok {
		return
	}
	symbol := body.GetString("symbol")
	price := body.GetInt("price")
	if symbol == "" || price <= 0 {
		return
	}

	t.orderSeq++
	orderID := int64(t.idx)*1_000_000 + int64(t.orderSeq)
	tr := t.unit.CreateTag(fmt.Sprintf("tr-%s-%d", t.name, t.orderSeq))

	// Keep tr in the input label so trade confirmations and warnings
	// protected by it remain visible (bounded FIFO).
	if err := t.unit.ChangeInLabel(core.Confidentiality, core.Add, tr); err == nil {
		t.liveTags = append(t.liveTags, tr)
		if len(t.liveTags) > maxLiveOrderTags {
			old := t.liveTags[0]
			t.liveTags = t.liveTags[1:]
			_ = t.unit.ChangeInLabel(core.Confidentiality, core.Del, old)
			// The order left the confirmation window: renounce its tag
			// entirely so privilege sets stay bounded.
			for _, r := range []priv.Right{priv.Plus, priv.Minus, priv.PlusAuth, priv.MinusAuth} {
				t.unit.DropPrivilege(old, r)
			}
		}
	}

	e := t.unit.CreateEventFrom(match)
	if err := t.unit.AddPart(e, noTags, noTags, "type", "order"); err != nil {
		return
	}
	// The tr reference travels in the order data (§3.1.5: "this
	// reference is carried in the data part of an event"); the
	// reference alone conveys no privilege — the attached grants do.
	order := freeze.MapOf(
		"symbol", symbol,
		"price", price,
		"side", t.side,
		"qty", int64(100),
		"id", orderID,
		"tr", tr,
		// The trader's durable strategy-tag reference rides along so a
		// Regulator warning can be protected by a tag the trader is
		// guaranteed to still hold: the per-order tr leaves the input
		// label after maxLiveOrderTags further orders, and a warning
		// protected by an evicted tr would silently never arrive. The
		// reference conveys no privilege (§3.1.1: tags are opaque).
		"strat", t.tag,
	)
	bSet := setOf(t.p.tagB)
	if err := t.unit.AddPart(e, bSet, noTags, "order", order); err != nil {
		return
	}
	for _, r := range []priv.Right{priv.Plus, priv.Minus} {
		if err := t.unit.AttachPrivilegeToPart(e, "order", bSet, noTags, tr, r); err != nil {
			return
		}
	}
	nameSet := setOf(t.p.tagB, tr)
	if err := t.unit.AddPart(e, nameSet, noTags, "name", t.name); err != nil {
		return
	}
	for _, r := range []priv.Right{priv.PlusAuth, priv.MinusAuth} {
		if err := t.unit.AttachPrivilegeToPart(e, "name", nameSet, noTags, tr, r); err != nil {
			return
		}
	}
	if err := t.unit.Publish(e); err != nil {
		return
	}
	t.orders.inc()
}

// checkTrade implements step 6's consumer side: the trader reads the
// trade's identity parts; only parts protected by one of its own live
// order tags are visible, so it recognises exactly its own trades.
func (t *Trader) checkTrade(e *events.Event) {
	mine := false
	for _, part := range []string{"buyer", "seller"} {
		views, err := t.unit.ReadPart(e, part)
		if err != nil {
			continue
		}
		for _, v := range views {
			if v.Data == freeze.Value(t.name) {
				mine = true
			}
		}
	}
	if mine {
		t.trades.inc()
	}
}
