package trading

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/events"
	"repro/internal/freeze"
	"repro/internal/labels"
	"repro/internal/priv"
	"repro/internal/tags"
	"repro/internal/workload"
)

// maxLiveOrderTags bounds how many per-order tags a trader keeps in its
// input label; older tags are dropped FIFO (the trader owns tr−, so
// lowering is always permitted). Keeping recent tags lets the trader
// read its trade confirmations and any Regulator warnings.
const maxLiveOrderTags = 32

// Trader encapsulates one trader's strategy (§6.1): it owns the unique
// tag t_i protecting its strategy flow, instantiates its Pair Monitor
// with delegated t_i+ (step 1), reacts to Match events by placing
// orders into the dark pool (step 4), and recognises its own trades
// and Regulator warnings (steps 6, 8).
//
// Besides the monitor-driven flow, a trader is also the publishing
// principal for order-flow traces (Platform.ReplayOrders): limit,
// market and cancel operations enter the dark pool through the same
// tag/privilege choreography, from the replay driver's goroutine.
type Trader struct {
	p    *Platform
	unit *core.Unit

	name string
	idx  int
	pair workload.Pair
	side string // "bid" for even indices, "ask" for odd: orders cross
	tag  tags.Tag

	monitor *core.Unit
	mon     *Monitor

	subMatch, subBuy, subSell, subWarning uint64

	orderSeq uint64

	// tagMu guards the live-tag window (and the input-label surgery it
	// implies): the trader's own loop places monitor-driven orders
	// while the replay driver places flow orders, and label changes
	// are read-modify-write.
	tagMu    sync.Mutex
	liveTags []tags.Tag

	matches  counter
	orders   counter
	cancels  counter
	amends   counter
	trades   counter
	warnings counter
}

// newTrader assembles a trader, its tag and its monitor.
func newTrader(p *Platform, idx int, pair workload.Pair, side string) (*Trader, error) {
	t := &Trader{
		p:    p,
		idx:  idx,
		name: fmt.Sprintf("trader-%04d", idx),
		pair: pair,
		side: side,
	}
	t.unit = p.Sys.NewUnit(t.name, core.UnitConfig{})

	// Step 1: the trader owns its unique tag and raises its input label
	// so everything tagged t_i flows to it; its output stays public so
	// orders can reach the Broker. Raising input-only needs t_i± —
	// which the creator holds.
	t.tag = t.unit.CreateTag("t-" + t.name)
	if err := t.unit.ChangeInLabel(core.Confidentiality, core.Add, t.tag); err != nil {
		return nil, err
	}

	// Instantiate the confined Pair Monitor at read integrity {s},
	// delegating t_i+ (step 1). The monitor inherits the trader's
	// contamination, so its entire output is t_i-protected.
	mon, err := t.unit.InstantiateUnit(t.name+"-monitor", labels.EmptySet, setOf(p.tagS),
		[]priv.Grant{{Tag: t.tag, Right: priv.Plus}}, nil)
	if err != nil {
		return nil, err
	}
	t.monitor = mon
	t.mon = &Monitor{
		unit:         mon,
		trader:       t.name,
		pair:         pair,
		thresholdBps: p.cfg.ThresholdBps,
		matches:      &t.matches,
	}
	if err := t.mon.setup(); err != nil {
		return nil, err
	}

	// Subscriptions (all equality-indexable so the dispatcher's
	// centralised filtering stays sub-linear in the trader count).
	if t.subMatch, err = t.unit.Subscribe(dispatch.MustFilter(dispatch.PartEq("to", t.name))); err != nil {
		return nil, err
	}
	// Trade confirmations arrive via the identity parts themselves:
	// the filter is equality-indexed on this trader's name and the
	// parts are tr-protected, so each trade reaches exactly its two
	// counterparties — no broadcast, no leak.
	if t.subBuy, err = t.unit.Subscribe(dispatch.MustFilter(dispatch.PartEq("buyer", t.name))); err != nil {
		return nil, err
	}
	if t.subSell, err = t.unit.Subscribe(dispatch.MustFilter(dispatch.PartEq("seller", t.name))); err != nil {
		return nil, err
	}
	if t.subWarning, err = t.unit.Subscribe(dispatch.MustFilter(dispatch.KeyEq("warning", "to", t.name))); err != nil {
		return nil, err
	}

	p.Sys.Go(t.run)
	p.Sys.Go(t.mon.run)
	return t, nil
}

// Name returns the trader's platform name.
func (t *Trader) Name() string { return t.name }

// Tag returns the trader's strategy tag t_i.
func (t *Trader) Tag() tags.Tag { return t.tag }

// Pair returns the monitored symbol pair.
func (t *Trader) Pair() workload.Pair { return t.pair }

// Matches reports Match events emitted by the trader's monitor.
func (t *Trader) Matches() uint64 { return t.matches.load() }

// Orders reports orders placed (limit and market; cancels excluded).
func (t *Trader) Orders() uint64 { return t.orders.load() }

// CancelsRequested reports cancel operations published.
func (t *Trader) CancelsRequested() uint64 { return t.cancels.load() }

// AmendsRequested reports amend operations published.
func (t *Trader) AmendsRequested() uint64 { return t.amends.load() }

// Trades reports completed trades this trader recognised as its own.
func (t *Trader) Trades() uint64 { return t.trades.load() }

// Warnings reports Regulator warnings received.
func (t *Trader) Warnings() uint64 { return t.warnings.load() }

// run is the trader's processing loop. No branch modifies the
// delivered event (orders are fresh events), so each delivery is
// recycled after handling (a no-op outside the labels+clone mode).
func (t *Trader) run() {
	for {
		e, sub, err := t.unit.GetEvent()
		if err != nil {
			return
		}
		switch sub {
		case t.subMatch:
			t.placeOrder(e)
		case t.subBuy, t.subSell:
			t.checkTrade(e)
		case t.subWarning:
			t.warnings.inc()
		}
		t.unit.Recycle(e)
	}
}

// trackOrderTag mints the bookkeeping for a fresh per-order tag: it
// joins the trader's input label so confirmations and warnings
// protected by it remain visible (bounded FIFO window), and the oldest
// tag beyond the window is renounced entirely so privilege sets stay
// bounded.
func (t *Trader) trackOrderTag(tr tags.Tag) {
	t.tagMu.Lock()
	defer t.tagMu.Unlock()
	if err := t.unit.ChangeInLabel(core.Confidentiality, core.Add, tr); err != nil {
		return
	}
	t.liveTags = append(t.liveTags, tr)
	if len(t.liveTags) > maxLiveOrderTags {
		old := t.liveTags[0]
		t.liveTags = t.liveTags[1:]
		_ = t.unit.ChangeInLabel(core.Confidentiality, core.Del, old)
		// The order left the confirmation window: renounce its tag
		// entirely so privilege sets stay bounded.
		for _, r := range []priv.Right{priv.Plus, priv.Minus, priv.PlusAuth, priv.MinusAuth} {
			t.unit.DropPrivilege(old, r)
		}
	}
}

// buildOrderEvent assembles one order event with the three-way
// protection of Figure 1 — order details confined to the dark pool by
// b, the trader identity additionally protected by a fresh per-order
// tag tr, and the privilege payload that lets the Broker (and
// transitively the Regulator) do their jobs:
//
//	order part (S={b})      carries [tr+, tr−]      — the Broker may
//	    temporarily raise its input to read the identity and may
//	    declassify what it is entitled to.
//	name  part (S={b,tr})   carries [tr+auth, tr−auth] — the Broker may
//	    delegate those privileges onwards to the Regulator (step 7's
//	    "only possible as long as t+auth_r was included in the second
//	    part of the bid order").
//
// trigger, when non-nil, donates its origin stamp (latency accounting
// along the tick→match→order→trade chain). shard is the symbol's
// route, resolved by the caller through the platform's route table
// (see routeOne): it must be resolved under the table's read lock so
// a concurrent migration cannot swap the route mid-publish.
func (t *Trader) buildOrderEvent(trigger *events.Event, id int64, symbol, side, ordtype string, price, qty, target int64, shard int) *events.Event {
	tr := t.unit.CreateTag(fmt.Sprintf("tr-%s-%d", t.name, id))
	t.trackOrderTag(tr)

	var e *events.Event
	if trigger != nil {
		e = t.unit.CreateEventFrom(trigger)
	} else {
		e = t.unit.CreateEvent()
	}
	if err := t.unit.AddPart(e, noTags, noTags, "type", "order"); err != nil {
		return nil
	}
	// The public shard-route part steers the order to the broker shard
	// owning its symbol (the per-shard subscription filters key on it).
	// It leaks at most log2(shards) bits of the symbol's hash — the
	// symbol universe itself is public, and the order's existence is
	// already observable through the public type part; price, size,
	// side and identity stay under {b} and {b,tr} as before. The shard
	// re-derives the route from the b-protected symbol and rejects
	// mismatches, so forging this part cannot split a symbol's book.
	if err := t.unit.AddPart(e, noTags, noTags, "oshard", int64(shard)); err != nil {
		return nil
	}
	// The tr reference travels in the order data (§3.1.5: "this
	// reference is carried in the data part of an event"); the
	// reference alone conveys no privilege — the attached grants do.
	order := freeze.MapOf(
		"symbol", symbol,
		"price", price,
		"side", side,
		"qty", qty,
		"id", id,
		"ordtype", ordtype,
		"target", target,
		"tr", tr,
		// The trader's durable strategy-tag reference rides along so a
		// Regulator warning can be protected by a tag the trader is
		// guaranteed to still hold: the per-order tr leaves the input
		// label after maxLiveOrderTags further orders, and a warning
		// protected by an evicted tr would silently never arrive. The
		// reference conveys no privilege (§3.1.1: tags are opaque).
		"strat", t.tag,
	)
	bSet := setOf(t.p.tagB)
	if err := t.unit.AddPart(e, bSet, noTags, "order", order); err != nil {
		return nil
	}
	for _, r := range []priv.Right{priv.Plus, priv.Minus} {
		if err := t.unit.AttachPrivilegeToPart(e, "order", bSet, noTags, tr, r); err != nil {
			return nil
		}
	}
	nameSet := setOf(t.p.tagB, tr)
	if err := t.unit.AddPart(e, nameSet, noTags, "name", t.name); err != nil {
		return nil
	}
	for _, r := range []priv.Right{priv.PlusAuth, priv.MinusAuth} {
		if err := t.unit.AttachPrivilegeToPart(e, "name", nameSet, noTags, tr, r); err != nil {
			return nil
		}
	}
	return e
}

// placeOrder implements step 4: the monitor's Match event becomes a
// limit order for the divergence's overpriced side.
func (t *Trader) placeOrder(match *events.Event) {
	view, err := t.unit.ReadOne(match, "match")
	if err != nil {
		return
	}
	body, ok := view.Data.(*freeze.Map)
	if !ok {
		return
	}
	symbol := body.GetString("symbol")
	price := body.GetInt("price")
	if symbol == "" || price <= 0 {
		return
	}

	t.orderSeq++
	orderID := int64(t.idx)*1_000_000 + int64(t.orderSeq)
	// Only the trigger's origin stamp survives into the order; capture
	// it by value — a frozen publication may run after the match event
	// has been recycled.
	stamp := match.Stamp
	t.routeOne(symbol, func(shard int) {
		e := t.buildOrderEvent(nil, orderID, symbol, t.side, "limit", price, 100, 0, shard)
		if e == nil {
			return
		}
		e.Stamp = stamp
		if t.unit.Publish(e) == nil {
			t.orders.inc()
		}
	})
}

// routeOne resolves the symbol's current shard under the route table's
// publish fence and runs publish with it — or, if the symbol is frozen
// mid-migration, parks the publication in the symbol's queue to run
// with the post-swap shard. Orders are never dropped by a migration;
// parked publications run in arrival order.
func (t *Trader) routeOne(symbol string, publish func(shard int)) {
	rt := t.p.routes
	rt.mu.RLock()
	s := rt.load()
	if fq := s.frozen[symbol]; fq != nil {
		fq.add(func(shard int) {
			t.noteRouted(shard)
			publish(shard)
		})
		rt.mu.RUnlock()
		return
	}
	shard := s.shardOf(symbol, rt.nshards)
	t.noteRouted(shard)
	publish(shard)
	rt.mu.RUnlock()
}

// noteRouted charges one order publication to the shard the routing
// layer chose — the load sampler's offered-load counter. One atomic
// add on the publish path; the rate math happens at sample time.
func (t *Trader) noteRouted(shard int) {
	t.p.Broker.shards[shard].routedTo.inc()
}

// flowEvent turns one order-flow op into an order event. Cancels and
// amends reuse the full choreography — the fresh tr protects the
// requester's identity part, which the Broker checks against the
// resting order's owner before acting on it.
func (t *Trader) flowEvent(op *workload.OrderOp, shard int) *events.Event {
	switch op.Kind {
	case workload.OpCancel:
		return t.buildOrderEvent(nil, 0, op.Symbol, op.Side, "cancel", 0, 0, op.Target, shard)
	case workload.OpAmend:
		return t.buildOrderEvent(nil, 0, op.Symbol, op.Side, "amend", op.Price, op.Qty, op.Target, shard)
	case workload.OpMarket:
		return t.buildOrderEvent(nil, op.ID, op.Symbol, op.Side, "market", 0, op.Qty, 0, shard)
	default:
		return t.buildOrderEvent(nil, op.ID, op.Symbol, op.Side, "limit", op.Price, op.Qty, 0, shard)
	}
}

// publishFlowOp publishes one previously frozen flow op into the shard
// the hand-off chose; counters move only when the op actually
// publishes.
func (t *Trader) publishFlowOp(op *workload.OrderOp, shard int) {
	e := t.flowEvent(op, shard)
	if e == nil {
		return
	}
	if t.unit.Publish(e) != nil {
		return
	}
	switch op.Kind {
	case workload.OpCancel:
		t.cancels.inc()
	case workload.OpAmend:
		t.amends.inc()
	default:
		t.orders.inc()
	}
}

// placeFlow publishes one run of order-flow ops from this trader, as a
// single batch (the replay driver's amortised path) or one publish per
// op; both deliver identically in order. The whole run resolves and
// publishes under the route table's read lock (the migration fence);
// ops for a symbol frozen mid-hand-off are parked in its queue — in
// run order — and publish into the new shard after the swap.
func (t *Trader) placeFlow(ops []workload.OrderOp, batched bool) {
	var placed, cancels, amends uint64
	count := func(k workload.OrderKind) {
		switch k {
		case workload.OpCancel:
			cancels++
		case workload.OpAmend:
			amends++
		default:
			placed++
		}
	}
	rt := t.p.routes
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	snap := rt.load()
	route := func(i int) (int, bool) {
		if fq := snap.frozen[ops[i].Symbol]; fq != nil {
			op := ops[i]
			fq.add(func(shard int) {
				t.noteRouted(shard)
				t.publishFlowOp(&op, shard)
			})
			return 0, false
		}
		shard := snap.shardOf(ops[i].Symbol, rt.nshards)
		t.noteRouted(shard)
		return shard, true
	}
	if batched && len(ops) > 1 {
		batch := make([]*events.Event, 0, len(ops))
		for i := range ops {
			shard, ok := route(i)
			if !ok {
				continue
			}
			if e := t.flowEvent(&ops[i], shard); e != nil {
				batch = append(batch, e)
				count(ops[i].Kind)
			}
		}
		if len(batch) == 0 {
			return
		}
		if err := t.unit.PublishBatch(batch); err != nil {
			return
		}
	} else {
		for i := range ops {
			shard, ok := route(i)
			if !ok {
				continue
			}
			e := t.flowEvent(&ops[i], shard)
			if e == nil {
				continue
			}
			if err := t.unit.Publish(e); err != nil {
				return
			}
			count(ops[i].Kind)
		}
	}
	t.orders.add(placed)
	t.cancels.add(cancels)
	t.amends.add(amends)
}

// checkTrade implements step 6's consumer side: the trader reads the
// trade's identity parts; only parts protected by one of its own live
// order tags are visible, so it recognises exactly its own trades.
func (t *Trader) checkTrade(e *events.Event) {
	mine := false
	for _, part := range []string{"buyer", "seller"} {
		views, err := t.unit.ReadPart(e, part)
		if err != nil {
			continue
		}
		for _, v := range views {
			if v.Data == freeze.Value(t.name) {
				mine = true
			}
		}
	}
	if mine {
		t.trades.inc()
	}
}
