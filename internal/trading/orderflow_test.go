package trading

// Order-flow workload integration: the dark pool's price-time book
// under limit/market/cancel flow — partial fills in every security
// mode, ownership-checked cancels, deterministic batch-vs-single
// replay equivalence, and a concurrent hammer for the -race job.

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/freeze"
	"repro/internal/orderbook"
	"repro/internal/workload"
)

// flowScenario builds a platform, replays a generated order flow and
// quiesces.
func flowScenario(t *testing.T, mode core.SecurityMode, traders, ops int, tweak func(*Config)) *Platform {
	t.Helper()
	cfg := Config{
		Mode:             mode,
		NumTraders:       traders,
		Universe:         workload.NewUniverse(2),
		Seed:             11,
		AuditSampleEvery: 4,
		QueueCap:         1024,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	flow := workload.NewOrderFlow(p.Universe(), workload.FlowConfig{
		Traders:       traders,
		AggressionPct: 55,
	}, 17)
	p.ReplayOrders(flow.Take(ops))
	if !p.Quiesce(15 * time.Second) {
		t.Fatal("platform did not quiesce")
	}
	time.Sleep(50 * time.Millisecond)
	return p
}

// TestOrderFlowPartialFillsAllModes is the headline scenario: crossing
// order flow produces partial fills in all four security modes. Every
// fill exhausts at least one side, so fills can never exceed orders —
// but the pre-book engine (whole-quantity FIFO matching) was bounded
// by orders/2, and the book comfortably beats that while reporting
// explicit residual-leaving fills.
func TestOrderFlowPartialFillsAllModes(t *testing.T) {
	for _, mode := range []core.SecurityMode{
		core.NoSecurity, core.LabelsFreeze, core.LabelsClone, core.LabelsFreezeIsolation,
	} {
		t.Run(mode.String(), func(t *testing.T) {
			p := flowScenario(t, mode, 8, 3000, nil)
			st := p.Stats()
			if st.OrdersPlaced == 0 {
				t.Fatal("no orders placed")
			}
			if st.TradesCompleted == 0 {
				t.Fatal("no fills")
			}
			if st.PartialFills == 0 {
				t.Fatal("no partial fills on mixed-size crossing flow")
			}
			if 2*st.TradesCompleted <= st.OrdersPlaced {
				t.Fatalf("fills %d do not beat the whole-quantity bound (orders %d)",
					st.TradesCompleted, st.OrdersPlaced)
			}
			if st.TradesCompleted > st.OrdersPlaced {
				t.Fatalf("impossible: fills %d exceed orders %d", st.TradesCompleted, st.OrdersPlaced)
			}
			if st.CancelsRequested == 0 {
				t.Fatal("flow placed no cancels")
			}
		})
	}
}

// TestOrderFlowAuditsStillFlow checks the step 7–8 choreography holds
// under partial fills: one order's tag backs several trades, and the
// reference-counted delegation authority keeps every in-window audit
// answerable.
func TestOrderFlowAuditsStillFlow(t *testing.T) {
	p := flowScenario(t, core.LabelsFreeze, 4, 2500, func(c *Config) {
		c.AuditSampleEvery = 1 // audit every fill
	})
	st := p.Stats()
	if st.AuditsRequested == 0 {
		t.Fatal("no audits requested")
	}
	deleg := p.Broker.Delegations()
	if deleg == 0 {
		t.Fatal("no delegations issued")
	}
	// Every audit of an in-window trade must be answered; only trades
	// evicted past the ring (impossible here: sample==1 keeps pace) or
	// re-audited may miss. Allow a small slack for trades still in
	// flight when replay ended.
	if deleg*10 < st.AuditsRequested*9 {
		t.Fatalf("only %d of %d audits answered", deleg, st.AuditsRequested)
	}
	if p.Regulator.VolsSeen() == 0 {
		t.Fatal("no volume reports reached the regulator")
	}
}

// manualOps builds a hand-rolled op sequence for the cancel tests.
func manualOps(symbol string, ops ...workload.OrderOp) []workload.OrderOp {
	for i := range ops {
		ops[i].Seq = uint64(i + 1)
		ops[i].Symbol = symbol
	}
	return ops
}

// TestCancelPreventsFill pins cancel-then-fill-impossible end to end:
// a resting order withdrawn by its owner can never trade afterwards.
func TestCancelPreventsFill(t *testing.T) {
	cfg := Config{
		Mode:       core.LabelsFreeze,
		NumTraders: 2,
		Universe:   workload.NewUniverse(1),
		Seed:       5,
		OrderTTL:   time.Hour,
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	sym := p.Universe().Pairs[0].A
	base := p.Universe().BasePrice(sym)
	const id = int64(1)<<40 + 1
	p.ReplayOrdersSingle(manualOps(sym,
		workload.OrderOp{Trader: 0, Kind: workload.OpLimit, ID: id, Side: "bid", Price: base, Qty: 100},
		workload.OrderOp{Trader: 0, Kind: workload.OpCancel, Target: id},
		workload.OrderOp{Trader: 1, Kind: workload.OpLimit, ID: id + 1, Side: "ask", Price: base, Qty: 100},
	))
	if !p.Quiesce(5 * time.Second) {
		t.Fatal("no quiesce")
	}
	time.Sleep(30 * time.Millisecond)
	st := p.Stats()
	if st.CancelsDone != 1 {
		t.Fatalf("cancel not honoured: %d", st.CancelsDone)
	}
	if st.TradesCompleted != 0 {
		t.Fatalf("canceled order traded: %d fills", st.TradesCompleted)
	}
	// The ask must now be resting alone.
	depths := p.Broker.BookDepths()
	if depths[sym] != 1 {
		t.Fatalf("book depth %v, want 1 resting ask", depths)
	}
}

// TestCancelOwnershipChecked: only the identity that placed an order
// may withdraw it — a foreign cancel is ignored and the order still
// fills.
func TestCancelOwnershipChecked(t *testing.T) {
	cfg := Config{
		Mode:       core.LabelsFreeze,
		NumTraders: 2,
		Universe:   workload.NewUniverse(1),
		Seed:       5,
		OrderTTL:   time.Hour,
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	sym := p.Universe().Pairs[0].A
	base := p.Universe().BasePrice(sym)
	const id = int64(1)<<40 + 1
	p.ReplayOrdersSingle(manualOps(sym,
		workload.OrderOp{Trader: 0, Kind: workload.OpLimit, ID: id, Side: "bid", Price: base, Qty: 100},
		workload.OrderOp{Trader: 1, Kind: workload.OpCancel, Target: id}, // not the owner
		workload.OrderOp{Trader: 1, Kind: workload.OpLimit, ID: id + 1, Side: "ask", Price: base, Qty: 100},
	))
	if !p.Quiesce(5 * time.Second) {
		t.Fatal("no quiesce")
	}
	time.Sleep(30 * time.Millisecond)
	st := p.Stats()
	if st.CancelsDone != 0 {
		t.Fatal("foreign cancel was honoured")
	}
	if st.TradesCompleted != 1 {
		t.Fatalf("order did not fill after rejected foreign cancel: %d", st.TradesCompleted)
	}
}

// fillRecorder collects the Broker's fill stream race-safely.
type fillRecorder struct {
	mu    sync.Mutex
	fills []Fill
}

func (r *fillRecorder) hook() func(Fill) {
	return func(f Fill) {
		r.mu.Lock()
		r.fills = append(r.fills, f)
		r.mu.Unlock()
	}
}

func (r *fillRecorder) snapshot() []Fill {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Fill(nil), r.fills...)
}

// bySymbol groups a fill stream into per-symbol sequences, the unit
// of determinism under the sharded pool: each symbol's fills are
// totally ordered, fills of different symbols may interleave freely
// (they clear on concurrent shards).
func bySymbol(fills []Fill) map[string][]Fill {
	out := make(map[string][]Fill)
	for _, f := range fills {
		out[f.Symbol] = append(out[f.Symbol], f)
	}
	return out
}

// TestReplayOrdersEquivalence: the same order-flow seed through the
// batched publish path and the single-publish path yields identical
// per-symbol fill sequences and final book state — in all four
// security modes, at the default pool size.
func TestReplayOrdersEquivalence(t *testing.T) {
	const ops = 1500
	for _, mode := range []core.SecurityMode{
		core.NoSecurity, core.LabelsFreeze, core.LabelsClone, core.LabelsFreezeIsolation,
	} {
		t.Run(mode.String(), func(t *testing.T) {
			run := func(batched bool) ([]Fill, map[string][]orderbook.LevelSnap) {
				rec := &fillRecorder{}
				p, err := New(Config{
					Mode:             mode,
					NumTraders:       6,
					Universe:         workload.NewUniverse(2),
					Seed:             11,
					AuditSampleEvery: 4,
					// Expiry is wall-clock; pin it far out so timing
					// differences between the paths cannot perturb the
					// book.
					OrderTTL: time.Hour,
					OnFill:   rec.hook(),
				})
				if err != nil {
					t.Fatal(err)
				}
				defer p.Close()
				flow := workload.NewOrderFlow(p.Universe(), workload.FlowConfig{
					Traders:       6,
					AggressionPct: 50,
				}, 23)
				trace := flow.Take(ops)
				if batched {
					p.ReplayOrders(trace)
				} else {
					p.ReplayOrdersSingle(trace)
				}
				if !p.Quiesce(15 * time.Second) {
					t.Fatal("no quiesce")
				}
				time.Sleep(50 * time.Millisecond)
				return rec.snapshot(), p.Broker.SnapshotBooks()
			}
			singleFills, singleBooks := run(false)
			batchFills, batchBooks := run(true)
			if len(singleFills) == 0 {
				t.Fatal("no fills to compare")
			}
			if len(singleFills) != len(batchFills) {
				t.Fatalf("fill counts diverge: single %d, batched %d", len(singleFills), len(batchFills))
			}
			single, batched := bySymbol(singleFills), bySymbol(batchFills)
			if !reflect.DeepEqual(single, batched) {
				t.Fatalf("per-symbol fill sequences diverge:\nsingle: %+v\nbatched: %+v", single, batched)
			}
			if !reflect.DeepEqual(singleBooks, batchBooks) {
				t.Fatalf("final books diverge:\nsingle: %+v\nbatched: %+v", singleBooks, batchBooks)
			}
		})
	}
}

// TestMalformedOrdersAndForgedAuditsAreHarmless: junk input must
// neither kill the book instance nor leave privilege residue — a
// forged audit request with a negative trade ID (which would panic a
// naive ring index) and malformed orders (empty symbol, bogus side)
// are shed, and genuine flow still clears afterwards.
func TestMalformedOrdersAndForgedAuditsAreHarmless(t *testing.T) {
	p, err := New(Config{
		Mode:       core.LabelsFreeze,
		NumTraders: 2,
		Universe:   workload.NewUniverse(1),
		Seed:       5,
		OrderTTL:   time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	sym := p.Universe().Pairs[0].A
	base := p.Universe().BasePrice(sym)

	mallory := p.Sys.NewUnit("mallory", core.UnitConfig{})
	forged := mallory.CreateEvent()
	for _, part := range []struct {
		name string
		data freeze.Value
	}{
		{"type", "trade"},
		{"trade", freeze.MapOf("id", int64(-5))},
		{"audit_req", int64(1)},
	} {
		if err := mallory.AddPart(forged, noTags, noTags, part.name, part.data); err != nil {
			t.Fatal(err)
		}
	}
	if err := mallory.Publish(forged); err != nil {
		t.Fatal(err)
	}

	tr0 := p.Traders[0]
	for i, bad := range []*events.Event{
		tr0.buildOrderEvent(nil, 900001, "", "bid", "limit", base, 10, 0, p.RouteOf("")),
		tr0.buildOrderEvent(nil, 900002, sym, "sideways", "limit", base, 10, 0, p.RouteOf(sym)),
		tr0.buildOrderEvent(nil, 900003, sym, "bid", "limit", -base, 10, 0, p.RouteOf(sym)),
	} {
		if bad == nil {
			t.Fatalf("malformed order %d not built", i)
		}
		if err := tr0.unit.Publish(bad); err != nil {
			t.Fatal(err)
		}
	}
	if !p.Quiesce(5 * time.Second) {
		t.Fatal("junk wave did not quiesce")
	}

	const id = int64(1)<<40 + 1
	p.ReplayOrdersSingle(manualOps(sym,
		workload.OrderOp{Trader: 0, Kind: workload.OpLimit, ID: id, Side: "bid", Price: base, Qty: 100},
		workload.OrderOp{Trader: 1, Kind: workload.OpLimit, ID: id + 1, Side: "ask", Price: base, Qty: 100},
	))
	if !p.Quiesce(5 * time.Second) {
		t.Fatal("no quiesce")
	}
	time.Sleep(30 * time.Millisecond)
	if got := p.Stats().TradesCompleted; got != 1 {
		t.Fatalf("book instance no longer clears genuine flow: %d trades", got)
	}
}

// TestConcurrentBookHammer drives one symbol's book from several
// concurrent replay goroutines (disjoint trader ranges) while
// snapshot readers poll — the -race CI job runs this against the
// managed-instance delivery path end to end.
func TestConcurrentBookHammer(t *testing.T) {
	const (
		lanes      = 4
		perLane    = 2
		opsPerLane = 800
	)
	p, err := New(Config{
		Mode:       core.LabelsFreeze,
		NumTraders: lanes * perLane,
		Universe:   workload.NewUniverse(1),
		Seed:       3,
		QueueCap:   2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	sym := p.Universe().Pairs[0].A

	var wg sync.WaitGroup
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			flow := workload.NewOrderFlow(p.Universe(), workload.FlowConfig{
				Traders:       perLane,
				AggressionPct: 50,
			}, int64(100+lane))
			ops := flow.Take(opsPerLane)
			for i := range ops {
				// One symbol, disjoint trader lanes.
				ops[i].Symbol = sym
				ops[i].Trader += lane * perLane
			}
			p.ReplayOrders(ops)
		}(lane)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
		default:
			p.Broker.BookDepths()
			p.Broker.SnapshotBooks()
			time.Sleep(time.Millisecond)
			continue
		}
		break
	}
	if !p.Quiesce(15 * time.Second) {
		t.Fatal("no quiesce")
	}
	time.Sleep(50 * time.Millisecond)
	st := p.Stats()
	if st.TradesCompleted == 0 {
		t.Fatal("hammer produced no fills")
	}
	// Snapshot and depth views agree after the dust settles.
	depths := p.Broker.BookDepths()
	snaps := p.Broker.SnapshotBooks()
	for s, n := range depths {
		count := 0
		for _, lv := range snaps[s] {
			count += len(lv.Orders)
		}
		if count != n {
			t.Fatalf("symbol %s: depth %d vs snapshot %d", s, n, count)
		}
	}
}
