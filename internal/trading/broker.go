package trading

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/events"
	"repro/internal/freeze"
	"repro/internal/orderbook"
	"repro/internal/priv"
	"repro/internal/tags"
)

// maxTradeLog bounds the Broker's completed-trade log retained for
// audit responses.
const maxTradeLog = 1024

// orderTTL bounds how long an unfilled order rests in the book. Dark
// pools routinely expire resting interest; here it also keeps the
// latency measurement honest — a stale leftover crossing a much later
// divergence wave would otherwise report book-wait time rather than
// processing time.
const orderTTL = 100 * time.Millisecond

// Broker is the Local Broker unit (§6.1): it clears traders' orders
// locally — the dark pool — by matching bids against asks (step 5) and
// publishing trade events (step 6). Per the paper it processes orders
// through a managed subscription: DEFCon routes every order to a pooled
// instance contaminated at {b}, where the order book lives; the
// broker's primary unit stays clean.
//
// Matching is price-time priority with partial fills: each symbol's
// resting interest lives in an orderbook.Book (sorted price levels,
// FIFO within a level), and every partial fill publishes one trade
// event whose identity parts merge both counterparties' tr tags.
// Orders carry an "ordtype" — limit, market or cancel — and cancels
// withdraw resting interest by order ID after an ownership check
// against the identity the canceller disclosed.
//
// Identity handling: reading an order part bestows [tr+, tr−]; the
// instance raises its input label by tr (legal: it holds tr−), reads
// the trader's name, and lowers again. Reading the name part bestows
// [tr+auth, tr−auth], which later authorises the delegation to the
// Regulator (step 7): an audit request arrives as an "audit_req" part
// the Regulator added to the trade event, and the instance answers by
// attaching a "delegation" part carrying [tr±] for both sides,
// protected by the Regulator's tag.
//
// With partial fills one order's tag can back several trade records at
// once, so the tr±auth pair is reference-counted (see brokerBook.auths)
// and renounced only when the last referent — the resting order itself
// or a logged trade — is gone.
type Broker struct {
	p    *Platform
	unit *core.Unit

	regTag tags.Tag // the Regulator's tag protecting delegations

	// mu serialises book access between the managed instance's handler
	// and external snapshot readers (tests, benchmarks). The handler
	// path takes it once per delivery; orders are orders of magnitude
	// rarer than ticks, so the uncontended lock is noise next to the
	// identity-read label churn.
	mu sync.Mutex
	bk *brokerBook // the live instance's state (nil until first order)

	trades    counter
	partials  counter
	cancels   counter
	expired   counter
	delegates counter
}

// brokerBook is the dark-pool state, living in the managed instance's
// state at contamination {b}.
type brokerBook struct {
	books map[string]*orderbook.Book // per-symbol price-time books
	log   tradeLog
	// auths reference-counts the delegation authority (tr±auth) held
	// per order tag: one reference while the order is live in a book,
	// one per trade record in the audit window. The privileges are
	// renounced when the count reaches zero.
	auths map[tags.Tag]int
	ids   int64
}

func newBrokerBook() *brokerBook {
	return &brokerBook{
		books: make(map[string]*orderbook.Book),
		auths: make(map[tags.Tag]int),
	}
}

// book returns the symbol's order book, creating it on first use.
func (bk *brokerBook) book(symbol string) *orderbook.Book {
	b := bk.books[symbol]
	if b == nil {
		b = orderbook.New()
		bk.books[symbol] = b
	}
	return b
}

// tradeRecord is one completed trade retained for audit responses.
type tradeRecord struct {
	id                      int64 // 0 = empty/consumed slot
	buyer, seller           string
	trBuyer, trSeller       tags.Tag
	stratBuyer, stratSeller tags.Tag
	symbol                  string
	price, qty              int64
}

// tradeLog is the bounded audit-window store. Trade IDs are dense and
// increasing, so the log is a ring indexed by ID: storing trade N
// lands on the slot trade N−maxTradeLog occupied, making the eviction
// O(1) — the previous map-backed log paid O(log) map ops per trade
// once the window was full (the ROADMAP item this PR retires).
type tradeLog struct {
	recs [maxTradeLog]tradeRecord
}

// put stores rec, returning the evicted record if the slot still held
// a live entry from maxTradeLog trades ago.
func (l *tradeLog) put(rec tradeRecord) (evicted tradeRecord, ok bool) {
	slot := &l.recs[rec.id%maxTradeLog]
	evicted, ok = *slot, slot.id != 0
	*slot = rec
	return evicted, ok
}

// get returns the record for a trade ID, or nil if it has been evicted
// or consumed. IDs the broker never issued — including negative ones a
// crafted audit request could carry, which would make the ring index
// panic — miss harmlessly.
func (l *tradeLog) get(id int64) *tradeRecord {
	if id <= 0 {
		return nil
	}
	rec := &l.recs[id%maxTradeLog]
	if rec.id != id {
		return nil
	}
	return rec
}

// consume clears a record once its delegation has been issued.
func (l *tradeLog) consume(id int64) {
	if rec := l.get(id); rec != nil {
		*rec = tradeRecord{}
	}
}

// newBroker assembles the broker unit; wire() attaches its managed
// subscriptions once the Regulator's tag exists.
func newBroker(p *Platform, grants []priv.Grant) *Broker {
	b := &Broker{p: p}
	b.unit = p.Sys.NewUnit("local-broker", core.UnitConfig{Grants: grants})
	return b
}

// wire registers the broker's managed subscriptions; called by the
// platform once the Regulator (and its tag) exists.
func (b *Broker) wire() error {
	b.regTag = b.p.Regulator.RegTag()
	_, err := b.unit.SubscribeManagedMulti(b.handle, core.ManagedOptions{
		// The book must persist across orders: no reset; the instance
		// holds the declassification privileges that make this sound.
		ResetOnDrift: false,
		// Pin the pool at {b} so public audit-request deliveries reach
		// the same instance as the b-protected orders.
		Pin: setOf(b.p.tagB),
		// The book is a singleton aggregating every trader's orders:
		// give it a deep queue so spike waves do not stall publishers.
		QueueCap: 16384,
	},
		dispatch.MustFilter(dispatch.PartEq("type", "order")),
		dispatch.MustFilter(dispatch.PartExists("audit_req")),
	)
	return err
}

// Trades reports completed fills (one trade event each).
func (b *Broker) Trades() uint64 { return b.trades.load() }

// PartialFills reports fills that left a residual on at least one
// side — impossible under whole-quantity matching, so a positive count
// is direct evidence the book fills partially.
func (b *Broker) PartialFills() uint64 { return b.partials.load() }

// Cancels reports resting orders withdrawn by their owners.
func (b *Broker) Cancels() uint64 { return b.cancels.load() }

// Expired reports resting orders dropped by TTL expiry.
func (b *Broker) Expired() uint64 { return b.expired.load() }

// Delegations reports audit delegations issued.
func (b *Broker) Delegations() uint64 { return b.delegates.load() }

// BookDepths snapshots the per-symbol resting-order counts.
func (b *Broker) BookDepths() map[string]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int)
	if b.bk == nil {
		return out
	}
	for sym, bo := range b.bk.books {
		if n := bo.RestingOrders(); n > 0 {
			out[sym] = n
		}
	}
	return out
}

// SnapshotBooks copies every non-empty book's resting state — the
// deterministic-replay tests compare these across publish paths.
func (b *Broker) SnapshotBooks() map[string][]orderbook.LevelSnap {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string][]orderbook.LevelSnap)
	if b.bk == nil {
		return out
	}
	for sym, bo := range b.bk.books {
		if snap := bo.Snapshot(); len(snap) > 0 {
			out[sym] = snap
		}
	}
	return out
}

// handle processes one delivery in the book instance.
func (b *Broker) handle(u *core.Unit, e *events.Event, sub uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := u.State()
	bk, _ := st["book"].(*brokerBook)
	if bk == nil {
		bk = newBrokerBook()
		st["book"] = bk
		b.bk = bk
	}
	if _, err := u.ReadPart(e, "audit_req"); err == nil {
		b.handleAudit(u, e, bk)
		return
	}
	b.handleOrder(u, e, bk)
}

// takerOrder is the in-flight view of the order being processed.
type takerOrder struct {
	id         int64
	symbol     string
	side       orderbook.Side
	price, qty int64
	ordtype    string
	target     int64
	trader     string
	tr, strat  tags.Tag
	stamp      int64
	rem        int64 // remaining unfilled quantity, updated per fill
}

// handleOrder implements step 5: read, learn the identity, then run
// the matching engine — expiry, cancel/market/limit, fills.
func (b *Broker) handleOrder(u *core.Unit, e *events.Event, bk *brokerBook) {
	view, err := u.ReadOne(e, "order") // bestows tr+, tr−
	if err != nil {
		return
	}
	om, ok := view.Data.(*freeze.Map)
	if !ok {
		return
	}
	o := takerOrder{
		id:      om.GetInt("id"),
		symbol:  om.GetString("symbol"),
		price:   om.GetInt("price"),
		qty:     om.GetInt("qty"),
		ordtype: om.GetString("ordtype"),
		target:  om.GetInt("target"),
		stamp:   e.Stamp,
	}
	if o.ordtype == "" {
		o.ordtype = "limit"
	}
	// The per-order tag reference travels in the order data (§3.1.5);
	// the privileges over it arrived via the part's attached grants —
	// which means even a malformed order may have bestowed tr±, so
	// every rejection below must shed them (and the auth pair, in case
	// grants were attached to other parts) or the instance's privilege
	// sets grow with each junk order.
	if tv, ok := om.Get("tr"); ok {
		o.tr, _ = tv.(tags.Tag)
	}
	if o.tr.IsZero() {
		return
	}
	reject := func() {
		u.DropPrivilege(o.tr, priv.Plus)
		u.DropPrivilege(o.tr, priv.Minus)
		b.dropAuthPair(u, o.tr)
	}
	if o.symbol == "" {
		reject()
		return
	}
	var sideOK bool
	o.side, sideOK = orderbook.SideOf(om.GetString("side"))
	if !sideOK && o.ordtype != "cancel" {
		reject()
		return
	}
	if sv, ok := om.Get("strat"); ok {
		o.strat, _ = sv.(tags.Tag)
	}
	// Temporarily raise the input label to read the identity (the
	// §3.1.4 pattern); we hold tr±, so this is a permitted standing
	// declassification, immediately lowered again.
	if err := u.ChangeInLabel(core.Confidentiality, core.Add, o.tr); err != nil {
		reject()
		return
	}
	if nv, err := u.ReadOne(e, "name"); err == nil { // bestows tr±auth
		if s, ok := nv.Data.(string); ok {
			o.trader = s
		}
	}
	_ = u.ChangeInLabel(core.Confidentiality, core.Del, o.tr)
	// Hygiene: tr± were only needed for the identity read; keeping them
	// would grow the instance's privilege sets with every order. The
	// tr±auth pair stays as long as the order or one of its trades can
	// still be audited (reference-counted below).
	u.DropPrivilege(o.tr, priv.Plus)
	u.DropPrivilege(o.tr, priv.Minus)
	if o.trader == "" {
		// The name read may still have bestowed the auth pair; an
		// identity-less order can never be audited, so renounce it.
		b.dropAuthPair(u, o.tr)
		return
	}

	now := time.Now().UnixNano()
	book := bk.book(o.symbol)
	// TTL expiry folds into order processing: stale heads are popped
	// before the incoming order sees the book, and each eviction
	// releases the dead order's delegation authority — interest that
	// never traded leaves no privilege residue.
	if n := book.Expire(now-int64(b.p.cfg.OrderTTL), func(ro *orderbook.Order) {
		b.releaseAuth(u, bk, ro.Owner.Tag)
	}); n > 0 {
		b.expired.add(uint64(n))
	}

	switch o.ordtype {
	case "cancel":
		// Ownership check: only the identity that placed an order may
		// withdraw it. The canceller's own tr carried the identity; it
		// backs no resting interest, so its authority drops right away.
		if ro := book.Lookup(o.target); ro != nil && ro.Owner.Name == o.trader {
			t := ro.Owner.Tag
			book.Cancel(o.target)
			b.releaseAuth(u, bk, t)
			b.cancels.inc()
		}
		b.dropAuthPair(u, o.tr)
	case "market":
		if o.qty <= 0 {
			b.dropAuthPair(u, o.tr)
			break
		}
		bk.auths[o.tr]++ // live while matching: fills log against it
		o.rem = o.qty
		book.Market(o.side, o.qty, func(maker *orderbook.Order, price, qty int64) {
			b.publishFill(u, bk, maker, &o, price, qty)
		})
		b.releaseAuth(u, bk, o.tr) // never rests
	default: // limit
		if o.price <= 0 || o.qty <= 0 {
			b.dropAuthPair(u, o.tr)
			break
		}
		bk.auths[o.tr]++
		o.rem = o.qty
		ow := orderbook.Owner{Name: o.trader, Tag: o.tr, Strat: o.strat, Stamp: o.stamp}
		_, rested := book.Limit(o.id, o.side, o.price, o.qty, ow, now, func(maker *orderbook.Order, price, qty int64) {
			b.publishFill(u, bk, maker, &o, price, qty)
		})
		if !rested {
			b.releaseAuth(u, bk, o.tr)
		}
	}
	if hook := b.p.cfg.OnBookDepth; hook != nil {
		hook(book.RestingOrders())
	}
}

// publishFill implements step 6 once per fill: the trade's price and
// symbol are declassified and public; the two identity parts are
// protected by the counterparties' per-order tags, so each trader
// recognises only its own fills while the broker's publication leaks
// nothing else. The maker pointer is the engine's pooled struct —
// everything needed later is copied into the trade record here.
func (b *Broker) publishFill(u *core.Unit, bk *brokerBook, maker *orderbook.Order, taker *takerOrder, price, qty int64) {
	taker.rem -= qty
	bk.ids++
	rec := tradeRecord{id: bk.ids, symbol: taker.symbol, price: price, qty: qty}
	var buyOrder, sellOrder int64
	if taker.side == orderbook.Bid {
		rec.buyer, rec.trBuyer, rec.stratBuyer = taker.trader, taker.tr, taker.strat
		rec.seller, rec.trSeller, rec.stratSeller = maker.Owner.Name, maker.Owner.Tag, maker.Owner.Strat
		buyOrder, sellOrder = taker.id, maker.ID
	} else {
		rec.buyer, rec.trBuyer, rec.stratBuyer = maker.Owner.Name, maker.Owner.Tag, maker.Owner.Strat
		rec.seller, rec.trSeller, rec.stratSeller = taker.trader, taker.tr, taker.strat
		buyOrder, sellOrder = maker.ID, taker.id
	}
	// The audit window retains delegation authority for both sides.
	bk.auths[rec.trBuyer]++
	bk.auths[rec.trSeller]++
	if old, ok := bk.log.put(rec); ok {
		// O(1) ring eviction: past the audit window the broker has no
		// business retaining the old trade or its authority.
		b.releaseAuth(u, bk, old.trBuyer)
		b.releaseAuth(u, bk, old.trSeller)
	}
	if maker.Qty > 0 || taker.rem > 0 {
		b.partials.inc()
	}
	// The maker's live reference ends with its last fill.
	if maker.Qty == 0 {
		b.releaseAuth(u, bk, maker.Owner.Tag)
	}

	e := u.CreateEvent()
	// Latency accounting: the trade inherits the older originating
	// tick stamp of the two orders — conservative end-to-end latency.
	e.Stamp = min(maker.Owner.Stamp, taker.stamp)
	if e.Stamp == 0 {
		e.Stamp = max(maker.Owner.Stamp, taker.stamp)
	}
	if err := u.AddPart(e, noTags, noTags, "type", "trade"); err != nil {
		return
	}
	body := freeze.MapOf(
		"id", rec.id,
		"symbol", rec.symbol,
		"price", price,
		"qty", qty,
		"buy_order", buyOrder,
		"sell_order", sellOrder,
	)
	if err := u.AddPart(e, noTags, noTags, "trade", body); err != nil {
		return
	}
	if err := u.AddPart(e, setOf(rec.trBuyer), noTags, "buyer", rec.buyer); err != nil {
		return
	}
	if err := u.AddPart(e, setOf(rec.trSeller), noTags, "seller", rec.seller); err != nil {
		return
	}
	if hook := b.p.cfg.OnTrade; hook != nil {
		hook(time.Now().UnixNano() - e.Stamp)
	}
	if hook := b.p.cfg.OnFill; hook != nil {
		hook(Fill{
			TradeID: rec.id, Symbol: rec.symbol,
			Price: price, Qty: qty,
			BuyOrder: buyOrder, SellOrder: sellOrder,
		})
	}
	if err := u.Publish(e); err != nil {
		return
	}
	b.trades.inc()
}

// handleAudit implements step 7's producer side: on an audit request
// (an "audit_req" part the Regulator added to a trade event), attach a
// delegation part to that same trade event, protected by the
// Regulator's tag and carrying [tr±] for both sides. The release
// machinery re-dispatches the augmented event to the Regulator.
func (b *Broker) handleAudit(u *core.Unit, e *events.Event, bk *brokerBook) {
	tv, err := u.ReadOne(e, "trade")
	if err != nil {
		return
	}
	tm, ok := tv.Data.(*freeze.Map)
	if !ok {
		return
	}
	rec := bk.log.get(tm.GetInt("id"))
	if rec == nil {
		return
	}
	regSet := setOf(b.regTag)
	payload := freeze.MapOf(
		"trade", rec.id,
		"buyer_tag", rec.trBuyer,
		"seller_tag", rec.trSeller,
		"buyer_strat", rec.stratBuyer,
		"seller_strat", rec.stratSeller,
		"qty", rec.qty,
	)
	if err := u.AddPart(e, regSet, noTags, "delegation", payload); err != nil {
		return
	}
	for _, g := range []priv.Grant{
		{Tag: rec.trBuyer, Right: priv.Plus},
		{Tag: rec.trBuyer, Right: priv.Minus},
		{Tag: rec.trSeller, Right: priv.Plus},
		{Tag: rec.trSeller, Right: priv.Minus},
	} {
		if err := u.AttachPrivilegeToPart(e, "delegation", regSet, noTags, g.Tag, g.Right); err != nil {
			return
		}
	}
	b.delegates.inc()
	// Delegation done: the audit authority for this trade is spent.
	trBuyer, trSeller, id := rec.trBuyer, rec.trSeller, rec.id
	bk.log.consume(id)
	b.releaseAuth(u, bk, trBuyer)
	b.releaseAuth(u, bk, trSeller)
	// The managed runtime re-dispatches the modified event on return.
}

// releaseAuth drops one reference to a tag's delegation authority and
// renounces tr±auth when the last referent is gone.
func (b *Broker) releaseAuth(u *core.Unit, bk *brokerBook, t tags.Tag) {
	if t.IsZero() {
		return
	}
	if n := bk.auths[t]; n > 1 {
		bk.auths[t] = n - 1
		return
	}
	delete(bk.auths, t)
	b.dropAuthPair(u, t)
}

// dropAuthPair renounces a tag's tr±auth outright.
func (b *Broker) dropAuthPair(u *core.Unit, t tags.Tag) {
	if t.IsZero() {
		return
	}
	u.DropPrivilege(t, priv.PlusAuth)
	u.DropPrivilege(t, priv.MinusAuth)
}
