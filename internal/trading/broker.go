package trading

import (
	"time"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/events"
	"repro/internal/freeze"
	"repro/internal/priv"
	"repro/internal/tags"
)

// maxTradeLog bounds the Broker's completed-trade log retained for
// audit responses.
const maxTradeLog = 1024

// orderTTL bounds how long an unfilled order rests in the book. Dark
// pools routinely expire resting interest; here it also keeps the
// latency measurement honest — a stale leftover crossing a much later
// divergence wave would otherwise report book-wait time rather than
// processing time.
const orderTTL = 100 * time.Millisecond

// Broker is the Local Broker unit (§6.1): it clears traders' orders
// locally — the dark pool — by matching bids against asks (step 5) and
// publishing trade events (step 6). Per the paper it processes orders
// through a managed subscription: DEFCon routes every order to a pooled
// instance contaminated at {b}, where the order book lives; the
// broker's primary unit stays clean.
//
// Identity handling: reading an order part bestows [tr+, tr−]; the
// instance raises its input label by tr (legal: it holds tr−), reads
// the trader's name, and lowers again. Reading the name part bestows
// [tr+auth, tr−auth], which later authorises the delegation to the
// Regulator (step 7): an audit request arrives as an "audit_req" part
// the Regulator added to the trade event, and the instance answers by
// attaching a "delegation" part carrying [tr±] for both sides,
// protected by the Regulator's tag.
type Broker struct {
	p    *Platform
	unit *core.Unit

	regTag tags.Tag // the Regulator's tag protecting delegations

	trades    counter
	delegates counter
}

// book is the dark-pool order book, living in the managed instance's
// state at contamination {b}.
type book struct {
	bids map[string][]*restingOrder // symbol → FIFO
	asks map[string][]*restingOrder
	// log holds completed trades for audit responses.
	log map[int64]*tradeRecord
	ids int64
}

type restingOrder struct {
	id      int64
	symbol  string
	price   int64
	qty     int64
	trader  string
	tr      tags.Tag
	strat   tags.Tag // trader's durable strategy tag (reference only)
	stamp   int64    // originating tick time (latency accounting)
	entered int64    // book-entry time (TTL accounting)
}

type tradeRecord struct {
	buyer, seller           string
	trBuyer, trSeller       tags.Tag
	stratBuyer, stratSeller tags.Tag
	symbol                  string
	price, qty              int64
}

// newBroker assembles the broker unit; wire() attaches its managed
// subscriptions once the Regulator's tag exists.
func newBroker(p *Platform, grants []priv.Grant) *Broker {
	b := &Broker{p: p}
	b.unit = p.Sys.NewUnit("local-broker", core.UnitConfig{Grants: grants})
	return b
}

// wire registers the broker's managed subscriptions; called by the
// platform once the Regulator (and its tag) exists.
func (b *Broker) wire() error {
	b.regTag = b.p.Regulator.RegTag()
	_, err := b.unit.SubscribeManagedMulti(b.handle, core.ManagedOptions{
		// The book must persist across orders: no reset; the instance
		// holds the declassification privileges that make this sound.
		ResetOnDrift: false,
		// Pin the pool at {b} so public audit-request deliveries reach
		// the same instance as the b-protected orders.
		Pin: setOf(b.p.tagB),
		// The book is a singleton aggregating every trader's orders:
		// give it a deep queue so spike waves do not stall publishers.
		QueueCap: 16384,
	},
		dispatch.MustFilter(dispatch.PartEq("type", "order")),
		dispatch.MustFilter(dispatch.PartExists("audit_req")),
	)
	return err
}

// Trades reports completed trades.
func (b *Broker) Trades() uint64 { return b.trades.load() }

// Delegations reports audit delegations issued.
func (b *Broker) Delegations() uint64 { return b.delegates.load() }

// handle processes one delivery in the book instance.
func (b *Broker) handle(u *core.Unit, e *events.Event, sub uint64) {
	st := u.State()
	bk, _ := st["book"].(*book)
	if bk == nil {
		bk = &book{
			bids: make(map[string][]*restingOrder),
			asks: make(map[string][]*restingOrder),
			log:  make(map[int64]*tradeRecord),
		}
		st["book"] = bk
	}
	if _, err := u.ReadPart(e, "audit_req"); err == nil {
		b.handleAudit(u, e, bk)
		return
	}
	b.handleOrder(u, e, bk)
}

// handleOrder implements step 5: read, learn the identity, rest the
// order, match.
func (b *Broker) handleOrder(u *core.Unit, e *events.Event, bk *book) {
	view, err := u.ReadOne(e, "order") // bestows tr+, tr−
	if err != nil {
		return
	}
	om, ok := view.Data.(*freeze.Map)
	if !ok {
		return
	}
	o := &restingOrder{
		id:      om.GetInt("id"),
		symbol:  om.GetString("symbol"),
		price:   om.GetInt("price"),
		qty:     om.GetInt("qty"),
		stamp:   e.Stamp,
		entered: time.Now().UnixNano(),
	}
	if o.symbol == "" || o.price <= 0 {
		return
	}
	// The per-order tag reference travels in the order data (§3.1.5);
	// the privileges over it arrived via the part's attached grants.
	if tv, ok := om.Get("tr"); ok {
		o.tr, _ = tv.(tags.Tag)
	}
	if o.tr.IsZero() {
		return
	}
	if sv, ok := om.Get("strat"); ok {
		o.strat, _ = sv.(tags.Tag)
	}
	// Temporarily raise the input label to read the identity (the
	// §3.1.4 pattern); we hold tr±, so this is a permitted standing
	// declassification, immediately lowered again.
	if err := u.ChangeInLabel(core.Confidentiality, core.Add, o.tr); err != nil {
		return
	}
	if nv, err := u.ReadOne(e, "name"); err == nil { // bestows tr±auth
		if s, ok := nv.Data.(string); ok {
			o.trader = s
		}
	}
	_ = u.ChangeInLabel(core.Confidentiality, core.Del, o.tr)
	// Hygiene: tr± were only needed for the identity read; keeping them
	// would grow the instance's privilege sets with every order. The
	// tr±auth pair stays until the trade leaves the audit window.
	u.DropPrivilege(o.tr, priv.Plus)
	u.DropPrivilege(o.tr, priv.Minus)
	if o.trader == "" {
		return
	}

	side := om.GetString("side")
	if side == "bid" {
		bk.bids[o.symbol] = append(bk.bids[o.symbol], o)
	} else {
		bk.asks[o.symbol] = append(bk.asks[o.symbol], o)
	}
	expire(bk, o.symbol)
	b.match(u, bk, o.symbol)
}

// expire drops resting orders that have sat unfilled in the book for
// longer than orderTTL. Expiry is measured from book entry, not from
// the originating tick: under transient overload an order may arrive
// already "old" and must still get its chance to cross.
func expire(bk *book, symbol string) {
	cutoff := time.Now().Add(-orderTTL).UnixNano()
	for len(bk.bids[symbol]) > 0 && bk.bids[symbol][0].entered < cutoff {
		bk.bids[symbol] = bk.bids[symbol][1:]
	}
	for len(bk.asks[symbol]) > 0 && bk.asks[symbol][0].entered < cutoff {
		bk.asks[symbol] = bk.asks[symbol][1:]
	}
}

// match crosses resting bids and asks FIFO (price-compatible) and
// publishes a trade event per cross.
func (b *Broker) match(u *core.Unit, bk *book, symbol string) {
	for len(bk.bids[symbol]) > 0 && len(bk.asks[symbol]) > 0 {
		bid, ask := bk.bids[symbol][0], bk.asks[symbol][0]
		if bid.price < ask.price {
			return // book not crossed
		}
		bk.bids[symbol] = bk.bids[symbol][1:]
		bk.asks[symbol] = bk.asks[symbol][1:]
		b.publishTrade(u, bk, bid, ask)
	}
}

// publishTrade implements step 6: the trade's price/symbol part is
// declassified and public; the two identity parts are protected by the
// per-order tags, so each trader recognises only its own trades while
// the broker's publication leaks nothing else.
func (b *Broker) publishTrade(u *core.Unit, bk *book, bid, ask *restingOrder) {
	bk.ids++
	tradeID := bk.ids
	qty := min64(bid.qty, ask.qty)
	rec := &tradeRecord{
		buyer: bid.trader, seller: ask.trader,
		trBuyer: bid.tr, trSeller: ask.tr,
		stratBuyer: bid.strat, stratSeller: ask.strat,
		symbol: bid.symbol, price: ask.price, qty: qty,
	}
	bk.log[tradeID] = rec
	if len(bk.log) > maxTradeLog {
		// Evict the oldest entry (IDs are dense and increasing) and
		// renounce its delegation authority: past the audit window the
		// broker has no business retaining it.
		old := bk.log[tradeID-int64(maxTradeLog)]
		delete(bk.log, tradeID-int64(maxTradeLog))
		if old != nil {
			b.dropAuths(u, old)
		}
	}

	e := u.CreateEvent()
	// Latency accounting: the trade inherits the older originating
	// tick stamp of the two orders — conservative end-to-end latency.
	e.Stamp = min64(bid.stamp, ask.stamp)
	if err := u.AddPart(e, noTags, noTags, "type", "trade"); err != nil {
		return
	}
	body := freeze.MapOf(
		"id", tradeID,
		"symbol", rec.symbol,
		"price", rec.price,
		"qty", qty,
		"buy_order", bid.id,
		"sell_order", ask.id,
	)
	if err := u.AddPart(e, noTags, noTags, "trade", body); err != nil {
		return
	}
	if err := u.AddPart(e, setOf(bid.tr), noTags, "buyer", bid.trader); err != nil {
		return
	}
	if err := u.AddPart(e, setOf(ask.tr), noTags, "seller", ask.trader); err != nil {
		return
	}
	if hook := b.p.cfg.OnTrade; hook != nil {
		hook(time.Now().UnixNano() - e.Stamp)
	}
	if err := u.Publish(e); err != nil {
		return
	}
	b.trades.inc()
}

// handleAudit implements step 7's producer side: on an audit request
// (an "audit_req" part the Regulator added to a trade event), attach a
// delegation part to that same trade event, protected by the
// Regulator's tag and carrying [tr±] for both sides. The release
// machinery re-dispatches the augmented event to the Regulator.
func (b *Broker) handleAudit(u *core.Unit, e *events.Event, bk *book) {
	tv, err := u.ReadOne(e, "trade")
	if err != nil {
		return
	}
	tm, ok := tv.Data.(*freeze.Map)
	if !ok {
		return
	}
	rec := bk.log[tm.GetInt("id")]
	if rec == nil {
		return
	}
	regSet := setOf(b.regTag)
	payload := freeze.MapOf(
		"trade", tm.GetInt("id"),
		"buyer_tag", rec.trBuyer,
		"seller_tag", rec.trSeller,
		"buyer_strat", rec.stratBuyer,
		"seller_strat", rec.stratSeller,
		"qty", rec.qty,
	)
	if err := u.AddPart(e, regSet, noTags, "delegation", payload); err != nil {
		return
	}
	for _, g := range []priv.Grant{
		{Tag: rec.trBuyer, Right: priv.Plus},
		{Tag: rec.trBuyer, Right: priv.Minus},
		{Tag: rec.trSeller, Right: priv.Plus},
		{Tag: rec.trSeller, Right: priv.Minus},
	} {
		if err := u.AttachPrivilegeToPart(e, "delegation", regSet, noTags, g.Tag, g.Right); err != nil {
			return
		}
	}
	b.delegates.inc()
	// Delegation done: the audit authority for this trade is spent.
	b.dropAuths(u, rec)
	delete(bk.log, tm.GetInt("id"))
	// The managed runtime re-dispatches the modified event on return.
}

// dropAuths renounces the delegation authority retained for a completed
// trade's two order tags.
func (b *Broker) dropAuths(u *core.Unit, rec *tradeRecord) {
	for _, tg := range []tags.Tag{rec.trBuyer, rec.trSeller} {
		if tg.IsZero() {
			continue
		}
		u.DropPrivilege(tg, priv.PlusAuth)
		u.DropPrivilege(tg, priv.MinusAuth)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
