package trading

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/events"
	"repro/internal/freeze"
	"repro/internal/journal"
	"repro/internal/mdfeed"
	"repro/internal/orderbook"
	"repro/internal/priv"
	"repro/internal/tags"
)

// maxTradeLog bounds the completed-trade log retained for audit
// responses, per symbol: trade IDs are dense per symbol (see symBook),
// so each symbol's audit window holds its own last maxTradeLog fills
// regardless of how busy the rest of the shard is — and regardless of
// how many shards the pool runs, which is what keeps the log contents
// identical across pool sizes.
const maxTradeLog = 1024

// orderTTL bounds how long an unfilled order rests in the book. Dark
// pools routinely expire resting interest; here it also keeps the
// latency measurement honest — a stale leftover crossing a much later
// divergence wave would otherwise report book-wait time rather than
// processing time.
const orderTTL = 100 * time.Millisecond

// Broker is one shard of the Local Broker pool (§6.1): it clears the
// orders of its symbol partition locally — the dark pool — by matching
// bids against asks (step 5) and publishing trade events (step 6).
// Per the paper it processes orders through a managed subscription:
// DEFCon routes every order to a pooled instance contaminated at {b},
// where the order book lives; the shard's primary unit stays clean.
//
// Sharding: every order and trade event carries a public "oshard"
// part, the symbol's deterministic route (RouteSymbol). Each shard's
// managed subscription filters on its own shard index first, so the
// dispatcher's equality index delivers each symbol's flow to exactly
// one shard and different symbols match concurrently with no shared
// mutable state between shards. The shard re-derives the route from
// the symbol it reads and rejects mismatches (see handleOrder), so a
// forged oshard part cannot split one symbol's book across shards.
//
// Matching is price-time priority with partial fills: each symbol's
// resting interest lives in an orderbook.Book (sorted price levels,
// FIFO within a level), and every partial fill publishes one trade
// event whose identity parts merge both counterparties' tr tags.
// Orders carry an "ordtype" — limit, market, cancel or amend — and
// cancels/amends address resting orders by ID after an ownership check
// against the identity the requester disclosed. The shard optionally
// applies a self-trade prevention policy (Config.SelfTradePolicy)
// before any fill that would cross an owner with itself.
//
// Identity handling: reading an order part bestows [tr+, tr−]; the
// instance raises its input label by tr (legal: it holds tr−), reads
// the trader's name, and lowers again. Reading the name part bestows
// [tr+auth, tr−auth], which later authorises the delegation to the
// Regulator (step 7): an audit request arrives as an "audit_req" part
// the Regulator added to the trade event, and the instance answers by
// attaching a "delegation" part carrying [tr±] for both sides,
// protected by the Regulator's tag.
//
// With partial fills one order's tag can back several trade records at
// once, so the tr±auth pair is reference-counted (see brokerBook.auths)
// and renounced only when the last referent — the resting order itself
// or a logged trade — is gone. The counts need no cross-shard
// coordination: an order belongs to exactly one symbol, a symbol
// routes to exactly one shard, and every referent of its tag (the
// resting order, its fills' trade records, the audit delegations)
// lives in that shard's instance.
type Broker struct {
	p    *Platform
	unit *core.Unit

	shard   int // this shard's index in the pool
	nshards int // pool size, for the route re-check

	regTag tags.Tag // the Regulator's tag protecting delegations

	// mu serialises book access between the managed instance's handler
	// and external snapshot readers (tests, benchmarks). The handler
	// path takes it once per delivery; orders are orders of magnitude
	// rarer than ticks, so the uncontended lock is noise next to the
	// identity-read label churn.
	mu sync.Mutex
	bk *brokerBook // the live instance's state (nil until first order)

	// jw is the shard's order journal (nil = journaling off): every
	// accepted order and audit consumption appends one record under
	// b.mu, post-routing and pre-match, so the journal is exactly the
	// deterministic input stream of this shard's matching state.
	// jsince counts records since the last checkpoint; jlast is the
	// LSN of the most recent append (accepted or shed).
	jw     *journal.Writer
	jsince int
	jlast  uint64

	// inst captures the managed instance's unit on the delivery path so
	// the load sampler can read the shard's ingress queue depth
	// (QueueLen) without reaching into the managed router; nil until
	// the first delivery.
	inst atomic.Pointer[core.Unit]

	// routedTo counts order publications the routing layer stamped for
	// this shard — incremented at the trader's route resolution, so it
	// measures offered load where trades measures cleared load.
	routedTo counter

	trades     counter
	partials   counter
	cancels    counter
	amends     counter
	stpCancels counter
	expired    counter
	delegates  counter
	misroutes  counter
	forwards   counter
	migRejects counter
}

// brokerBook is the dark-pool state, living in the managed instance's
// state at contamination {b}.
type brokerBook struct {
	syms map[string]*symBook // per-symbol book + audit log + ledger
	// auths reference-counts the delegation authority (tr±auth) held
	// per order tag: one reference while the order is live in a book,
	// one per trade record in the audit window. The privileges are
	// renounced when the count reaches zero.
	auths map[tags.Tag]int
}

func newBrokerBook() *brokerBook {
	return &brokerBook{
		syms:  make(map[string]*symBook),
		auths: make(map[tags.Tag]int),
	}
}

// symBook is one symbol's matching state. Trade IDs are namespaced per
// symbol — id = ns<<32 | seq with seq dense from 1 — so the fill and
// audit streams a symbol produces are identical no matter how many
// shards the pool runs or what else the shard clears: the cross-shard
// equivalence proofs compare them directly.
type symBook struct {
	book   *orderbook.Book
	log    tradeLog
	ns     int64 // platform-wide symbol namespace (symbolNS)
	seq    int64 // per-symbol dense trade counter
	ledger symLedger
	// epoch is the hand-off epoch this state last migrated at (0 =
	// never migrated). Recovery uses it to reconcile ownership when a
	// crash lands mid-hand-off: the highest epoch holds the freshest
	// copy of the symbol's state.
	epoch uint64
	// feed is the symbol's L2 delta feed (nil unless Config.MarketData):
	// the book's depth hook stages level changes into it and handleOrder
	// flushes one sequence-numbered batch per processed order.
	feed *mdfeed.Feed
	// fills and orders are the symbol's cumulative load counts, bumped
	// under b.mu on the matching path and read by the load sampler.
	// They travel with neither checkpoint nor hand-off blob — a
	// migration or recovery restarts them at zero, which the sampler's
	// delta logic treats as a counter restart.
	fills  int64
	orders int64
}

// nextID mints the next trade ID in this symbol's namespace.
func (sb *symBook) nextID() int64 {
	sb.seq++
	return sb.ns<<32 | sb.seq
}

// symLedger is the per-symbol quantity-conservation ledger: every
// accepted order's quantity is accounted to exactly one of fills
// (twice: maker and taker), explicit cancels (including self-trade
// prevention and the cancel-half of an amend), TTL expiry, discards
// (market remainders, STP-cancel-incoming remainders) or resting
// interest. CheckConservation pins the balance.
type symLedger struct {
	submitted int64 // accepted limit/market/amend quantity
	filled    int64 // filled quantity, counted once per fill
	canceled  int64 // withdrawn remainders (cancel, STP, amend-out)
	expired   int64 // TTL-evicted remainders
	discarded int64 // never-rested remainders
}

// sym returns the symbol's matching state, creating it on first use.
func (b *Broker) sym(bk *brokerBook, symbol string) *symBook {
	sb := bk.syms[symbol]
	if sb == nil {
		sb = &symBook{book: orderbook.New(), ns: b.p.symbolNS(symbol)}
		b.wireFeed(symbol, sb)
		bk.syms[symbol] = sb
	}
	return sb
}

// wireFeed attaches the symbol's shared L2 feed to a book (no-op with
// market data off). Order matters around Restore: wiring first makes
// the restore emit its resting levels into the feed (recovery, where
// the feed is fresh); wiring after keeps a live hand-off from
// re-emitting levels the feed already carries from the source shard.
func (b *Broker) wireFeed(symbol string, sb *symBook) {
	if b.p.MD != nil {
		sb.feed = b.p.MD.Feed(symbol)
		sb.book.SetDepthHook(sb.feed.IngestLevel)
	}
}

// tradeRecord is one completed trade retained for audit responses.
type tradeRecord struct {
	id                      int64 // 0 = empty/consumed slot
	buyer, seller           string
	trBuyer, trSeller       tags.Tag
	stratBuyer, stratSeller tags.Tag
	symbol                  string
	price, qty              int64
}

// tradeSeqMask extracts the dense per-symbol sequence from a
// namespaced trade ID.
const tradeSeqMask = int64(1)<<32 - 1

// tradeLog is the bounded per-symbol audit-window store. A symbol's
// trade sequence numbers are dense and increasing, so the log is a
// ring indexed by the ID's sequence bits: storing trade N lands on the
// slot trade N−maxTradeLog of the same symbol occupied, making the
// eviction O(1) with no map in sight. The backing slice grows lazily
// with the symbol's actual trade count up to maxTradeLog slots — a
// quiet symbol costs a handful of records, not the full window (the
// Figure 7 heap series sweeps hundreds of symbols).
type tradeLog struct {
	recs []tradeRecord
}

// slotOf maps a trade ID to its ring slot.
func slotOf(id int64) int64 { return (id & tradeSeqMask) % maxTradeLog }

// slot returns the record slot for a trade ID, growing the ring to
// reach it. IDs are dense per symbol, so growth is at most one slot
// per put until the ring wraps at maxTradeLog.
func (l *tradeLog) slot(id int64) *tradeRecord {
	idx := slotOf(id)
	for int64(len(l.recs)) <= idx {
		l.recs = append(l.recs, tradeRecord{})
	}
	return &l.recs[idx]
}

// put stores rec, returning the evicted record if the slot still held
// a live entry from maxTradeLog trades ago.
func (l *tradeLog) put(rec tradeRecord) (evicted tradeRecord, ok bool) {
	slot := l.slot(rec.id)
	evicted, ok = *slot, slot.id != 0
	*slot = rec
	return evicted, ok
}

// get returns the record for a trade ID, or nil if it has been evicted
// or consumed. IDs the broker never issued — including negative ones a
// crafted audit request could carry, which would make the ring index
// panic — miss harmlessly.
func (l *tradeLog) get(id int64) *tradeRecord {
	if id <= 0 {
		return nil
	}
	idx := slotOf(id)
	if idx >= int64(len(l.recs)) {
		return nil
	}
	rec := &l.recs[idx]
	if rec.id != id {
		return nil
	}
	return rec
}

// consume clears a record once its delegation has been issued.
func (l *tradeLog) consume(id int64) {
	if rec := l.get(id); rec != nil {
		*rec = tradeRecord{}
	}
}

// newBroker assembles one broker shard; wire() attaches its managed
// subscriptions once the Regulator's tag exists.
func newBroker(p *Platform, shard, nshards int, grants []priv.Grant) *Broker {
	b := &Broker{p: p, shard: shard, nshards: nshards}
	b.unit = p.Sys.NewUnit(fmt.Sprintf("local-broker-%d", shard), core.UnitConfig{Grants: grants})
	return b
}

// wire registers the shard's managed subscriptions; called by the
// pool once the Regulator (and its tag) exists. The shard-index
// equality condition comes first so the dispatcher indexes both
// subscriptions under this shard's oshard hash: a publish only probes
// the shards its event actually routes to.
func (b *Broker) wire() error {
	b.regTag = b.p.Regulator.RegTag()
	_, err := b.unit.SubscribeManagedMulti(b.handle, core.ManagedOptions{
		// The book must persist across orders: no reset; the instance
		// holds the declassification privileges that make this sound.
		ResetOnDrift: false,
		// Pin the pool at {b} so public audit-request deliveries reach
		// the same instance as the b-protected orders.
		Pin: setOf(b.p.tagB),
		// Each shard aggregates its partition's order flow: give it a
		// deep queue so spike waves do not stall publishers.
		QueueCap: 16384,
	},
		dispatch.MustFilter(
			dispatch.PartEq("oshard", int64(b.shard)),
			dispatch.PartEq("type", "order"),
		),
		dispatch.MustFilter(
			dispatch.PartEq("oshard", int64(b.shard)),
			dispatch.PartExists("audit_req"),
		),
		// Migration hand-off events: the drain fence routed to the
		// source shard and the state transfer routed to the destination
		// (see rebalance.go).
		dispatch.MustFilter(
			dispatch.PartEq("oshard", int64(b.shard)),
			dispatch.PartEq("type", "migrate"),
		),
	)
	return err
}

// Shard returns this broker's shard index.
func (b *Broker) Shard() int { return b.shard }

// Trades reports completed fills (one trade event each).
func (b *Broker) Trades() uint64 { return b.trades.load() }

// PartialFills reports fills that left a residual on at least one
// side — impossible under whole-quantity matching, so a positive count
// is direct evidence the book fills partially.
func (b *Broker) PartialFills() uint64 { return b.partials.load() }

// Cancels reports resting orders withdrawn by their owners.
func (b *Broker) Cancels() uint64 { return b.cancels.load() }

// Amends reports resting orders amended by their owners.
func (b *Broker) Amends() uint64 { return b.amends.load() }

// SelfTradeCancels reports resting orders withdrawn by the self-trade
// prevention policy.
func (b *Broker) SelfTradeCancels() uint64 { return b.stpCancels.load() }

// Expired reports resting orders dropped by TTL expiry.
func (b *Broker) Expired() uint64 { return b.expired.load() }

// Delegations reports audit delegations issued.
func (b *Broker) Delegations() uint64 { return b.delegates.load() }

// Misroutes reports order events that reached this shard carrying a
// symbol that routes elsewhere — always zero unless an oshard part was
// forged; such orders are rejected, not processed.
func (b *Broker) Misroutes() uint64 { return b.misroutes.load() }

// BookDepths snapshots the per-symbol resting-order counts.
func (b *Broker) BookDepths() map[string]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int)
	if b.bk == nil {
		return out
	}
	for sym, sb := range b.bk.syms {
		if n := sb.book.RestingOrders(); n > 0 {
			out[sym] = n
		}
	}
	return out
}

// SnapshotBooks copies every non-empty book's resting state — the
// deterministic-replay tests compare these across publish paths and
// across pool sizes.
func (b *Broker) SnapshotBooks() map[string][]orderbook.LevelSnap {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string][]orderbook.LevelSnap)
	if b.bk == nil {
		return out
	}
	for sym, sb := range b.bk.syms {
		if snap := sb.book.Snapshot(); len(snap) > 0 {
			out[sym] = snap
		}
	}
	return out
}

// TradeRec is one audit-window entry in a TradeLogSnapshot.
type TradeRec struct {
	ID            int64
	Symbol        string
	Buyer, Seller string
	Price, Qty    int64
}

// TradeLogSnapshot copies the live audit window per symbol, ordered by
// trade sequence — the cross-shard equivalence proof compares these
// between pool sizes.
func (b *Broker) TradeLogSnapshot() map[string][]TradeRec {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string][]TradeRec)
	if b.bk == nil {
		return out
	}
	for sym, sb := range b.bk.syms {
		var recs []TradeRec
		for i := range sb.log.recs {
			r := &sb.log.recs[i]
			if r.id == 0 {
				continue
			}
			recs = append(recs, TradeRec{
				ID: r.id, Symbol: r.symbol,
				Buyer: r.buyer, Seller: r.seller,
				Price: r.price, Qty: r.qty,
			})
		}
		if len(recs) == 0 {
			continue
		}
		sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
		out[sym] = recs
	}
	return out
}

// ValidateBooks runs the engine's structural invariant checker over
// every book in the shard; the chaos suite calls it at every quiescent
// point.
func (b *Broker) ValidateBooks() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.bk == nil {
		return nil
	}
	for sym, sb := range b.bk.syms {
		if err := sb.book.Validate(); err != nil {
			return fmt.Errorf("shard %d, symbol %s: %w", b.shard, sym, err)
		}
	}
	return nil
}

// CheckConservation verifies the per-symbol quantity balance: every
// accepted share is either filled (counted on both sides), canceled,
// expired, discarded or still resting. Any leak — a fill that
// double-counts, a cancel that loses quantity, an amend that mints
// shares — trips it.
func (b *Broker) CheckConservation() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.bk == nil {
		return nil
	}
	for sym, sb := range b.bk.syms {
		_, bidQty := sb.book.Resting(orderbook.Bid)
		_, askQty := sb.book.Resting(orderbook.Ask)
		resting := bidQty + askQty
		l := sb.ledger
		if got := 2*l.filled + l.canceled + l.expired + l.discarded + resting; got != l.submitted {
			return fmt.Errorf(
				"shard %d, symbol %s: conservation broken: submitted %d != 2*filled %d + canceled %d + expired %d + discarded %d + resting %d",
				b.shard, sym, l.submitted, l.filled, l.canceled, l.expired, l.discarded, resting)
		}
	}
	return nil
}

// handle processes one delivery in the book instance. b.bk is the
// authoritative state reference — Recover installs a rebuilt book
// there before traffic resumes — and the managed instance's state map
// mirrors it, keeping the contamination story intact (the books live
// in the pinned instance at {b}).
func (b *Broker) handle(u *core.Unit, e *events.Event, sub uint64) {
	b.inst.Store(u) // expose the instance's queue to the load sampler
	b.mu.Lock()
	defer b.mu.Unlock()
	bk := b.bk
	if bk == nil {
		bk = newBrokerBook()
		b.bk = bk
	}
	u.State()["book"] = bk
	if _, err := u.ReadPart(e, "migrate_out"); err == nil {
		b.handleMigrateOut(u, e, bk)
		return
	}
	if _, err := u.ReadPart(e, "migrate_in"); err == nil {
		b.handleMigrateIn(u, e, bk)
		return
	}
	if _, err := u.ReadPart(e, "audit_req"); err == nil {
		b.handleAudit(u, e, bk)
		return
	}
	b.handleOrder(u, e, bk)
}

// takerOrder is the in-flight view of the order being processed. For
// amends it describes the re-entering resting order (the amended order
// becomes the taker of its own re-entry fills).
type takerOrder struct {
	id         int64
	symbol     string
	side       orderbook.Side
	price, qty int64
	ordtype    string
	target     int64
	trader     string
	tr, strat  tags.Tag
	stamp      int64
	rem        int64 // remaining unfilled quantity, updated per fill
}

// handleOrder implements step 5: read, learn the identity, then run
// the matching engine — expiry, cancel/amend/market/limit, fills.
func (b *Broker) handleOrder(u *core.Unit, e *events.Event, bk *brokerBook) {
	view, err := u.ReadOne(e, "order") // bestows tr+, tr−
	if err != nil {
		return
	}
	om, ok := view.Data.(*freeze.Map)
	if !ok {
		return
	}
	o := takerOrder{
		id:      om.GetInt("id"),
		symbol:  om.GetString("symbol"),
		price:   om.GetInt("price"),
		qty:     om.GetInt("qty"),
		ordtype: om.GetString("ordtype"),
		target:  om.GetInt("target"),
		stamp:   e.Stamp,
	}
	if o.ordtype == "" {
		o.ordtype = "limit"
	}
	// The per-order tag reference travels in the order data (§3.1.5);
	// the privileges over it arrived via the part's attached grants —
	// which means even a malformed order may have bestowed tr±, so
	// every rejection below must shed them (and the auth pair, in case
	// grants were attached to other parts) or the instance's privilege
	// sets grow with each junk order.
	if tv, ok := om.Get("tr"); ok {
		o.tr, _ = tv.(tags.Tag)
	}
	if o.tr.IsZero() {
		return
	}
	reject := func() {
		u.DropPrivilege(o.tr, priv.Plus)
		u.DropPrivilege(o.tr, priv.Minus)
		b.dropAuthPair(u, o.tr)
	}
	if o.symbol == "" {
		reject()
		return
	}
	// Shard-routing integrity: the oshard part steered delivery here,
	// but it is event data a unit could forge. Re-derive the route
	// from the symbol actually read — through the live route table, so
	// a migrated symbol's orders are accepted by its current owner —
	// and reject mismatches; processing a misrouted order would open a
	// second book for the symbol on the wrong shard and split its
	// crossing interest. Sound during a hand-off too: a frozen symbol
	// has no in-flight orders (the fence drained them before the route
	// changed), so every order that reaches a shard was routed under a
	// snapshot naming that shard.
	if b.p.routes.shardOf(o.symbol) != b.shard {
		b.misroutes.inc()
		reject()
		return
	}
	var sideOK bool
	o.side, sideOK = orderbook.SideOf(om.GetString("side"))
	if !sideOK && o.ordtype != "cancel" && o.ordtype != "amend" {
		reject()
		return
	}
	if sv, ok := om.Get("strat"); ok {
		o.strat, _ = sv.(tags.Tag)
	}
	// Temporarily raise the input label to read the identity (the
	// §3.1.4 pattern); we hold tr±, so this is a permitted standing
	// declassification, immediately lowered again.
	if err := u.ChangeInLabel(core.Confidentiality, core.Add, o.tr); err != nil {
		reject()
		return
	}
	if nv, err := u.ReadOne(e, "name"); err == nil { // bestows tr±auth
		if s, ok := nv.Data.(string); ok {
			o.trader = s
		}
	}
	_ = u.ChangeInLabel(core.Confidentiality, core.Del, o.tr)
	// Hygiene: tr± were only needed for the identity read; keeping them
	// would grow the instance's privilege sets with every order. The
	// tr±auth pair stays as long as the order or one of its trades can
	// still be audited (reference-counted below).
	u.DropPrivilege(o.tr, priv.Plus)
	u.DropPrivilege(o.tr, priv.Minus)
	if o.trader == "" {
		// The name read may still have bestowed the auth pair; an
		// identity-less order can never be audited, so renounce it.
		b.dropAuthPair(u, o.tr)
		return
	}

	now := time.Now().UnixNano()
	if b.jw != nil {
		// Journal the accepted order — post-routing, pre-match, with
		// the identity/tag metadata and the wall clock the matching
		// below will use (journalling now is what keeps TTL expiry
		// deterministic under replay). A full staging ring sheds the
		// record and the writer marks the loss in the journal.
		b.jlast, _ = b.jw.Append(encodeOrderRec(&o, now))
		b.jsince++
	}
	b.applyOrder(u, bk, &o, now)
	b.maybeCheckpoint(bk)
}

// applyOrder runs the matching engine for one validated order — the
// deterministic core shared by live processing (u is the instance
// unit) and journal replay (u == nil). Under replay every privilege
// operation and event publish is skipped — recovered owners' tags
// hold no delegation privileges in the new system; crash recovery is
// deliberately fail-safe about delegation authority — but the books,
// ledgers, trade logs and auth refcounts evolve bit-identically to
// the pre-crash run, and fills still reach the OnFill hook.
func (b *Broker) applyOrder(u *core.Unit, bk *brokerBook, o *takerOrder, now int64) {
	sb := b.sym(bk, o.symbol)
	sb.orders++ // per-symbol load count, under b.mu
	book := sb.book
	// TTL expiry folds into order processing: stale heads are popped
	// before the incoming order sees the book, and each eviction
	// releases the dead order's delegation authority — interest that
	// never traded leaves no privilege residue.
	if n := book.Expire(now-int64(b.p.cfg.OrderTTL), func(ro *orderbook.Order) {
		sb.ledger.expired += ro.Qty
		b.releaseAuth(u, bk, ro.Owner.Tag)
	}); n > 0 {
		b.expired.add(uint64(n))
	}

	stp := b.p.cfg.SelfTradePolicy
	stpCancel := func(ro *orderbook.Order) {
		sb.ledger.canceled += ro.Qty
		b.releaseAuth(u, bk, ro.Owner.Tag)
		b.stpCancels.inc()
	}

	switch o.ordtype {
	case "cancel":
		// Ownership check: only the identity that placed an order may
		// withdraw it. The canceller's own tr carried the identity; it
		// backs no resting interest, so its authority drops right away.
		if ro := book.Lookup(o.target); ro != nil && ro.Owner.Name == o.trader {
			t := ro.Owner.Tag
			sb.ledger.canceled += ro.Qty
			book.Cancel(o.target)
			b.releaseAuth(u, bk, t)
			b.cancels.inc()
		}
		b.dropAuthPair(u, o.tr)
	case "amend":
		// Ownership-checked like cancel; the amend request's own tag
		// never backs interest, so its authority drops at the end.
		if o.price <= 0 || o.qty <= 0 {
			b.dropAuthPair(u, o.tr)
			break
		}
		ro := book.Lookup(o.target)
		if ro == nil || ro.Owner.Name != o.trader {
			b.dropAuthPair(u, o.tr)
			break
		}
		// Copy everything before the engine call: ro is pooled and
		// invalid once AmendSTP touches the book. The amended order
		// becomes the taker of its own re-entry fills, under its
		// ORIGINAL identity and tag — the amend event's identity only
		// authorised the change.
		prevQty := ro.Qty
		at := takerOrder{
			id: o.target, symbol: o.symbol, side: ro.Side,
			ordtype: "amend", trader: ro.Owner.Name,
			tr: ro.Owner.Tag, strat: ro.Owner.Strat,
			stamp: ro.Owner.Stamp, rem: o.qty,
		}
		filled, ok := book.AmendSTP(o.target, o.price, o.qty, now, stp, stpCancel,
			func(maker *orderbook.Order, price, qty int64) {
				b.publishFill(u, bk, sb, maker, &at, price, qty)
			})
		if ok {
			// Ledger: an amend is a cancel of the old remainder plus a
			// fresh submission of the new quantity (this also covers
			// the in-place quantity reduction: prev out, new in).
			sb.ledger.canceled += prevQty
			sb.ledger.submitted += o.qty
			var residual int64
			if cur := book.Lookup(o.target); cur != nil {
				residual = cur.Qty
			} else {
				// Fully filled on re-entry (or discarded by the STP
				// policy): the live delegation reference ends here.
				b.releaseAuth(u, bk, at.tr)
			}
			sb.ledger.discarded += o.qty - filled - residual
			b.amends.inc()
		}
		b.dropAuthPair(u, o.tr)
	case "market":
		if o.qty <= 0 {
			b.dropAuthPair(u, o.tr)
			break
		}
		bk.auths[o.tr]++ // live while matching: fills log against it
		o.rem = o.qty
		filled, ok := book.MarketSTP(o.side, o.qty, o.trader, stp, stpCancel,
			func(maker *orderbook.Order, price, qty int64) {
				b.publishFill(u, bk, sb, maker, o, price, qty)
			})
		if ok {
			sb.ledger.submitted += o.qty
			sb.ledger.discarded += o.qty - filled
		}
		b.releaseAuth(u, bk, o.tr) // never rests
	default: // limit
		if o.price <= 0 || o.qty <= 0 {
			b.dropAuthPair(u, o.tr)
			break
		}
		bk.auths[o.tr]++
		o.rem = o.qty
		ow := orderbook.Owner{Name: o.trader, Tag: o.tr, Strat: o.strat, Stamp: o.stamp}
		filled, rested, ok := book.LimitSTP(o.id, o.side, o.price, o.qty, ow, now, stp, stpCancel,
			func(maker *orderbook.Order, price, qty int64) {
				b.publishFill(u, bk, sb, maker, o, price, qty)
			})
		if ok {
			sb.ledger.submitted += o.qty
			if !rested {
				sb.ledger.discarded += o.qty - filled
			}
		}
		if !rested {
			b.releaseAuth(u, bk, o.tr)
		}
	}
	if hook := b.p.cfg.OnBookDepth; hook != nil && u != nil {
		hook(book.RestingOrders())
	}
	if sb.feed != nil {
		// Seal everything this order changed — expiry, withdrawals,
		// fills, resting — into one delta batch. The flush never
		// blocks on market-data consumers.
		sb.feed.Flush()
	}
}

// publishFill implements step 6 once per fill: the trade's price and
// symbol are declassified and public; the two identity parts are
// protected by the counterparties' per-order tags, so each trader
// recognises only its own fills while the broker's publication leaks
// nothing else. The maker pointer is the engine's pooled struct —
// everything needed later is copied into the trade record here.
func (b *Broker) publishFill(u *core.Unit, bk *brokerBook, sb *symBook, maker *orderbook.Order, taker *takerOrder, price, qty int64) {
	taker.rem -= qty
	sb.fills++ // per-symbol load count, under b.mu
	sb.ledger.filled += qty
	rec := tradeRecord{id: sb.nextID(), symbol: taker.symbol, price: price, qty: qty}
	var buyOrder, sellOrder int64
	if taker.side == orderbook.Bid {
		rec.buyer, rec.trBuyer, rec.stratBuyer = taker.trader, taker.tr, taker.strat
		rec.seller, rec.trSeller, rec.stratSeller = maker.Owner.Name, maker.Owner.Tag, maker.Owner.Strat
		buyOrder, sellOrder = taker.id, maker.ID
	} else {
		rec.buyer, rec.trBuyer, rec.stratBuyer = maker.Owner.Name, maker.Owner.Tag, maker.Owner.Strat
		rec.seller, rec.trSeller, rec.stratSeller = taker.trader, taker.tr, taker.strat
		buyOrder, sellOrder = maker.ID, taker.id
	}
	// The audit window retains delegation authority for both sides.
	bk.auths[rec.trBuyer]++
	bk.auths[rec.trSeller]++
	if old, ok := sb.log.put(rec); ok {
		// O(1) ring eviction: past the audit window the broker has no
		// business retaining the old trade or its authority.
		b.releaseAuth(u, bk, old.trBuyer)
		b.releaseAuth(u, bk, old.trSeller)
	}
	if maker.Qty > 0 || taker.rem > 0 {
		b.partials.inc()
	}
	// The maker's live reference ends with its last fill.
	if maker.Qty == 0 {
		b.releaseAuth(u, bk, maker.Owner.Tag)
	}

	if u == nil {
		// Journal replay: no unit, no trade event, no latency sample —
		// but the fill stream still reaches OnFill in publication
		// order, which is how the recovery-equivalence tests observe
		// the replayed tail.
		if hook := b.p.cfg.OnFill; hook != nil {
			hook(Fill{
				TradeID: rec.id, Symbol: rec.symbol,
				Price: price, Qty: qty,
				BuyOrder: buyOrder, SellOrder: sellOrder,
			})
		}
		b.trades.inc()
		return
	}

	e := u.CreateEvent()
	// Latency accounting: the trade inherits the older originating
	// tick stamp of the two orders — conservative end-to-end latency.
	e.Stamp = min(maker.Owner.Stamp, taker.stamp)
	if e.Stamp == 0 {
		e.Stamp = max(maker.Owner.Stamp, taker.stamp)
	}
	if err := u.AddPart(e, noTags, noTags, "type", "trade"); err != nil {
		return
	}
	// The shard route rides along publicly so an audit request on this
	// trade re-dispatches back to exactly this shard's instance.
	if err := u.AddPart(e, noTags, noTags, "oshard", int64(b.shard)); err != nil {
		return
	}
	body := freeze.MapOf(
		"id", rec.id,
		"symbol", rec.symbol,
		"price", price,
		"qty", qty,
		"buy_order", buyOrder,
		"sell_order", sellOrder,
	)
	if err := u.AddPart(e, noTags, noTags, "trade", body); err != nil {
		return
	}
	if err := u.AddPart(e, setOf(rec.trBuyer), noTags, "buyer", rec.buyer); err != nil {
		return
	}
	if err := u.AddPart(e, setOf(rec.trSeller), noTags, "seller", rec.seller); err != nil {
		return
	}
	if hook := b.p.cfg.OnTrade; hook != nil {
		hook(time.Now().UnixNano() - e.Stamp)
	}
	if hook := b.p.cfg.OnFill; hook != nil {
		hook(Fill{
			TradeID: rec.id, Symbol: rec.symbol,
			Price: price, Qty: qty,
			BuyOrder: buyOrder, SellOrder: sellOrder,
		})
	}
	if err := u.Publish(e); err != nil {
		return
	}
	b.trades.inc()
}

// handleAudit implements step 7's producer side: on an audit request
// (an "audit_req" part the Regulator added to a trade event), attach a
// delegation part to that same trade event, protected by the
// Regulator's tag and carrying [tr±] for both sides. The release
// machinery re-dispatches the augmented event to the Regulator.
func (b *Broker) handleAudit(u *core.Unit, e *events.Event, bk *brokerBook) {
	tv, err := u.ReadOne(e, "trade")
	if err != nil {
		return
	}
	tm, ok := tv.Data.(*freeze.Map)
	if !ok {
		return
	}
	symbol := tm.GetString("symbol")
	sb := bk.syms[symbol]
	if sb == nil {
		// Trades published before a migration carry this shard's
		// oshard stamp, but the trade log moved with the symbol. Stamp
		// the event with the current owner's route and return: adding
		// a part re-dispatches the event, multi-part matching delivers
		// it to the owner's audit filter, and the managed runtime's
		// delivery dedup keeps it from looping back here.
		if home := b.p.routes.shardOf(symbol); home != b.shard {
			if u.AddPart(e, noTags, noTags, "oshard", int64(home)) == nil {
				b.forwards.inc()
			}
		}
		return
	}
	rec := sb.log.get(tm.GetInt("id"))
	if rec == nil {
		return
	}
	regSet := setOf(b.regTag)
	payload := freeze.MapOf(
		"trade", rec.id,
		"buyer_tag", rec.trBuyer,
		"seller_tag", rec.trSeller,
		"buyer_strat", rec.stratBuyer,
		"seller_strat", rec.stratSeller,
		"qty", rec.qty,
	)
	if err := u.AddPart(e, regSet, noTags, "delegation", payload); err != nil {
		return
	}
	for _, g := range []priv.Grant{
		{Tag: rec.trBuyer, Right: priv.Plus},
		{Tag: rec.trBuyer, Right: priv.Minus},
		{Tag: rec.trSeller, Right: priv.Plus},
		{Tag: rec.trSeller, Right: priv.Minus},
	} {
		if err := u.AttachPrivilegeToPart(e, "delegation", regSet, noTags, g.Tag, g.Right); err != nil {
			return
		}
	}
	if b.jw != nil {
		// Audit consumption mutates the trade log and auth refcounts,
		// so it journals like an order: replay must consume the same
		// trades to reproduce the log and refcount state.
		b.jlast, _ = b.jw.Append(encodeAuditRec(rec.symbol, rec.id))
		b.jsince++
	}
	b.consumeAudit(u, bk, sb, rec)
	b.maybeCheckpoint(bk)
	// The managed runtime re-dispatches the modified event on return.
}

// consumeAudit retires an audited trade from the log and releases the
// audit-window references — the deterministic state mutation shared by
// live delegation and journal replay (u == nil).
func (b *Broker) consumeAudit(u *core.Unit, bk *brokerBook, sb *symBook, rec *tradeRecord) {
	b.delegates.inc()
	// Delegation done: the audit authority for this trade is spent.
	trBuyer, trSeller, id := rec.trBuyer, rec.trSeller, rec.id
	sb.log.consume(id)
	b.releaseAuth(u, bk, trBuyer)
	b.releaseAuth(u, bk, trSeller)
}

// maybeCheckpoint snapshots the shard's full state into the journal
// once enough records have accumulated since the last checkpoint.
// Called with b.mu held, right after the state mutation the latest
// record describes — so the checkpoint LSN is exactly the last
// assigned LSN and the rotated segment holds only later records.
func (b *Broker) maybeCheckpoint(bk *brokerBook) {
	every := b.p.cfg.JournalCheckpointEvery
	if b.jw == nil || every <= 0 || b.jsince < every {
		return
	}
	b.jsince = 0
	b.jw.Checkpoint(b.jlast, encodeCheckpoint(b, bk))
}

// ForceCheckpoint snapshots the shard's state into the journal now,
// regardless of the checkpoint cadence; no-op with journaling off or
// before the first order. The chaos suite and the CI smoke use it to
// pin checkpoint+tail recovery at chosen points.
func (b *Broker) ForceCheckpoint() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.jw == nil || b.bk == nil {
		return
	}
	b.jsince = 0
	b.jw.Checkpoint(b.jw.LastLSN(), encodeCheckpoint(b, b.bk))
}

// AuthRefs copies the shard's delegation-authority refcounts — the
// recovery-equivalence tests compare them across crash boundaries.
func (b *Broker) AuthRefs() map[tags.Tag]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[tags.Tag]int)
	if b.bk == nil {
		return out
	}
	for t, n := range b.bk.auths {
		out[t] = n
	}
	return out
}

// releaseAuth drops one reference to a tag's delegation authority and
// renounces tr±auth when the last referent is gone.
func (b *Broker) releaseAuth(u *core.Unit, bk *brokerBook, t tags.Tag) {
	if t.IsZero() {
		return
	}
	if n := bk.auths[t]; n > 1 {
		bk.auths[t] = n - 1
		return
	}
	delete(bk.auths, t)
	b.dropAuthPair(u, t)
}

// dropAuthPair renounces a tag's tr±auth outright. With u == nil
// (journal replay) there is no privilege to renounce: recovered tags
// never re-acquire tr±auth in the new system, so the rebuilt instance
// holds no delegation authority it could leak.
func (b *Broker) dropAuthPair(u *core.Unit, t tags.Tag) {
	if u == nil || t.IsZero() {
		return
	}
	u.DropPrivilege(t, priv.PlusAuth)
	u.DropPrivilege(t, priv.MinusAuth)
}
