package trading

// Crash-recovery proofs (DESIGN-dispatch.md §12): recovery equals
// replay in all four security modes, every injected fault class
// (torn tail, bad CRC, partial checkpoint, full crash at arbitrary
// byte offsets) recovers without panic, and the platform lifecycle
// is idempotent under concurrent shutdown.

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/workload"
)

// recoveryFlowCfg mirrors shardedFlowConfig: all five op kinds over a
// skewed multi-symbol draw.
func recoveryFlowCfg() workload.FlowConfig {
	return workload.FlowConfig{
		Traders:       6,
		AggressionPct: 50,
		CancelPct:     10,
		AmendPct:      10,
		SymbolSkew:    1.2,
	}
}

// recoveryCfg assembles the shared platform config for the recovery
// suites; fs == nil runs journal-off (the reference).
func recoveryCfg(mode core.SecurityMode, fs journal.FS, rec *fillRecorder) Config {
	cfg := Config{
		Mode:             mode,
		NumTraders:       6,
		Universe:         workload.NewUniverse(8), // 16 symbols
		Seed:             11,
		BrokerShards:     2,
		AuditSampleEvery: noAudits,
		OrderTTL:         time.Hour,
		QueueCap:         2048,
		JournalFS:        fs,
		JournalNoSync:    true,
		// Low cadence so runs cross several checkpoints and recovery
		// exercises checkpoint+tail, not just tail.
		JournalCheckpointEvery: 150,
		// Roomy staging so scheduler hiccups cannot shed records and
		// perturb the equivalence comparison.
		JournalStagingCap: 1 << 16,
	}
	if rec != nil {
		cfg.OnFill = rec.hook()
	}
	return cfg
}

// TestRecoveryEquivalence is the tentpole proof: checkpoint + journal
// tail replay reproduces bit-identical per-symbol fill sequences,
// book snapshots, trade logs, auth refcounts and conservation ledgers
// in all four security modes.
func TestRecoveryEquivalence(t *testing.T) {
	const ops = 1500
	for _, mode := range []core.SecurityMode{
		core.NoSecurity, core.LabelsFreeze, core.LabelsClone, core.LabelsFreezeIsolation,
	} {
		t.Run(mode.String(), func(t *testing.T) {
			run := func(fs journal.FS) (*fillRecorder, Config, map[string][]Fill, interface{}, interface{}, []map[string]int) {
				rec := &fillRecorder{}
				cfg := recoveryCfg(mode, fs, rec)
				p, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				flow := workload.NewOrderFlow(p.Universe(), recoveryFlowCfg(), 23)
				p.ReplayOrders(flow.Take(ops))
				if !p.Quiesce(20 * time.Second) {
					t.Fatal("no quiesce")
				}
				time.Sleep(50 * time.Millisecond)
				books := p.Broker.SnapshotBooks()
				logs := p.Broker.TradeLogSnapshot()
				var auths []map[string]int
				for _, sh := range p.Broker.Shards() {
					m := make(map[string]int)
					for tg, n := range sh.AuthRefs() {
						id := tg.ID()
						m[string(id[:])] = n
					}
					auths = append(auths, m)
				}
				p.Close()
				return rec, cfg, bySymbol(rec.snapshot()), books, logs, auths
			}

			// Reference: journal off.
			_, _, refFills, refBooks, refLogs, _ := run(nil)
			if len(refFills) == 0 {
				t.Fatal("no fills to compare")
			}

			// Journaled run: behavior must be identical to the reference.
			fs := journal.NewMemFS()
			_, cfg, liveFills, liveBooks, liveLogs, liveAuths := run(fs)
			if !reflect.DeepEqual(refFills, liveFills) {
				t.Fatal("journal-on run diverges from journal-off reference (fills)")
			}
			if !reflect.DeepEqual(refBooks, liveBooks) || !reflect.DeepEqual(refLogs, liveLogs) {
				t.Fatal("journal-on run diverges from journal-off reference (state)")
			}

			// Recover a fresh platform from the journal alone.
			recRec := &fillRecorder{}
			cfg.OnFill = recRec.hook()
			p2, report, err := Recover(cfg)
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			defer p2.Close()
			if got := p2.Broker.SnapshotBooks(); !reflect.DeepEqual(got, refBooks) {
				t.Fatalf("recovered books diverge:\nref: %+v\ngot: %+v", refBooks, got)
			}
			if got := p2.Broker.TradeLogSnapshot(); !reflect.DeepEqual(got, refLogs) {
				t.Fatalf("recovered trade logs diverge:\nref: %+v\ngot: %+v", refLogs, got)
			}
			for i, sh := range p2.Broker.Shards() {
				m := make(map[string]int)
				for tg, n := range sh.AuthRefs() {
					id := tg.ID()
					m[string(id[:])] = n
				}
				if !reflect.DeepEqual(m, liveAuths[i]) {
					t.Fatalf("shard %d auth refcounts diverge after recovery", i)
				}
			}
			if err := p2.Broker.ValidateBooks(); err != nil {
				t.Fatalf("recovered books invalid: %v", err)
			}
			if err := p2.Broker.CheckConservation(); err != nil {
				t.Fatalf("recovered conservation broken: %v", err)
			}
			if report.RecoveredRecords() == 0 {
				t.Fatal("recovery replayed no records (checkpoint cadence too coarse?)")
			}
			if n := len(report.Faults()); n != 0 {
				t.Fatalf("clean journal reported %d faults: %v", n, report.Faults())
			}

			// The fills emitted during recovery replay must be exactly
			// the suffix of the reference stream after each symbol's
			// last checkpoint.
			for sym, got := range bySymbol(recRec.snapshot()) {
				ref := refFills[sym]
				if len(got) > len(ref) {
					t.Fatalf("%s: recovery replayed %d fills, reference has %d", sym, len(got), len(ref))
				}
				if !reflect.DeepEqual(got, ref[len(ref)-len(got):]) {
					t.Fatalf("%s: replayed fills are not a suffix of the reference stream", sym)
				}
			}

			// The recovered platform keeps trading: fresh flow clears
			// against recovered books and conservation still holds.
			before := p2.Broker.Trades()
			flow2 := workload.NewOrderFlow(p2.Universe(), recoveryFlowCfg(), 31)
			p2.ReplayOrders(flow2.Take(400))
			if !p2.Quiesce(20 * time.Second) {
				t.Fatal("no quiesce after recovery")
			}
			time.Sleep(50 * time.Millisecond)
			if p2.Broker.Trades() == before {
				t.Fatal("recovered platform completed no new trades")
			}
			if err := p2.Broker.CheckConservation(); err != nil {
				t.Fatalf("conservation broken after post-recovery traffic: %v", err)
			}
			if err := p2.Broker.ValidateBooks(); err != nil {
				t.Fatalf("books invalid after post-recovery traffic: %v", err)
			}
		})
	}
}

// TestRecoveryWithAudits covers the audit-consumption records: a
// recovered trade log must reflect exactly the delegations the
// pre-crash run issued, so an audited (consumed) trade stays consumed
// after recovery.
func TestRecoveryWithAudits(t *testing.T) {
	fs := journal.NewMemFS()
	cfg := recoveryCfg(core.LabelsFreeze, fs, nil)
	cfg.AuditSampleEvery = 3
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flow := workload.NewOrderFlow(p.Universe(), recoveryFlowCfg(), 43)
	p.ReplayOrders(flow.Take(1200))
	if !p.Quiesce(20 * time.Second) {
		t.Fatal("no quiesce")
	}
	time.Sleep(50 * time.Millisecond)
	if p.Broker.Delegations() == 0 {
		t.Fatal("no delegations issued; audit path unexercised")
	}
	liveLogs := p.Broker.TradeLogSnapshot()
	liveDelegs := p.Broker.Delegations()
	p.Close()

	p2, _, err := Recover(cfg)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer p2.Close()
	if got := p2.Broker.TradeLogSnapshot(); !reflect.DeepEqual(got, liveLogs) {
		t.Fatal("recovered trade logs diverge from pre-crash logs under auditing")
	}
	if got := p2.Broker.Delegations(); got != liveDelegs {
		t.Fatalf("recovered delegation count %d, want %d", got, liveDelegs)
	}
}

// journalFiles lists fs entries with the given suffix, sorted (the
// fixed-width hex LSN in the names makes lexical order LSN order).
func journalFiles(t *testing.T, fs *journal.MemFS, suffix string) []string {
	t.Helper()
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, n := range names {
		if strings.HasSuffix(n, suffix) {
			out = append(out, n)
		}
	}
	return out
}

// buildJournaledRun produces a journal with two forced checkpoints
// and a live tail, returning the filesystem and the config to recover
// with.
func buildJournaledRun(t *testing.T) (*journal.MemFS, Config) {
	t.Helper()
	fs := journal.NewMemFS()
	cfg := recoveryCfg(core.LabelsFreeze, fs, nil)
	cfg.JournalCheckpointEvery = -1 // only explicit checkpoints
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flow := workload.NewOrderFlow(p.Universe(), recoveryFlowCfg(), 59)
	drive := func(n int) {
		p.ReplayOrders(flow.Take(n))
		if !p.Quiesce(20 * time.Second) {
			t.Fatal("no quiesce")
		}
		time.Sleep(30 * time.Millisecond)
	}
	drive(400)
	if err := p.CheckpointJournal(); err != nil {
		t.Fatalf("checkpoint 1: %v", err)
	}
	drive(400)
	if err := p.CheckpointJournal(); err != nil {
		t.Fatalf("checkpoint 2: %v", err)
	}
	drive(300)
	p.Close()
	return fs, cfg
}

// TestRecoveryFaultClasses injects each damage class the fault matrix
// names — torn tail, bad CRC mid-segment, partial checkpoint — and
// requires recovery to detect it, degrade cleanly and keep every
// structural and conservation invariant.
func TestRecoveryFaultClasses(t *testing.T) {
	check := func(t *testing.T, cfg Config) *RecoveryReport {
		t.Helper()
		p, report, err := Recover(cfg)
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		defer p.Close()
		if err := p.Broker.ValidateBooks(); err != nil {
			t.Fatalf("recovered books invalid: %v", err)
		}
		if err := p.Broker.CheckConservation(); err != nil {
			t.Fatalf("recovered conservation broken: %v", err)
		}
		return report
	}

	t.Run("torn tail", func(t *testing.T) {
		fs, cfg := buildJournaledRun(t)
		for _, seg := range journalFiles(t, fs, ".jnl") {
			if n := fs.Size(seg); n > 8 {
				fs.Truncate(seg, int64(n-5))
			}
		}
		report := check(t, cfg)
		if report.TornTails() == 0 {
			t.Fatalf("torn tails not reported: %+v", report)
		}
	})

	t.Run("bad crc", func(t *testing.T) {
		fs, cfg := buildJournaledRun(t)
		for _, seg := range journalFiles(t, fs, ".jnl") {
			if fs.Size(seg) > 64 {
				fs.Corrupt(seg, 40, 0x20)
			}
		}
		report := check(t, cfg)
		found := 0
		for i := range report.Shards {
			found += report.Shards[i].BadCRC + report.Shards[i].TornTail
		}
		if found == 0 {
			t.Fatalf("corrupted frames not reported: %+v", report)
		}
	})

	t.Run("partial checkpoint", func(t *testing.T) {
		fs, cfg := buildJournaledRun(t)
		ckpts := journalFiles(t, fs, ".ckp")
		if len(ckpts) < 2 {
			t.Fatalf("expected retained checkpoints, have %v", ckpts)
		}
		// Tear the NEWEST checkpoint of every shard mid-payload;
		// recovery must fall back to the previous one and replay the
		// longer tail to the same end state.
		seen := map[string]bool{}
		for i := len(ckpts) - 1; i >= 0; i-- {
			shard := ckpts[i][:strings.LastIndex(ckpts[i], "-")]
			if !seen[shard] {
				seen[shard] = true
				fs.Truncate(ckpts[i], int64(fs.Size(ckpts[i])/2))
			}
		}
		report := check(t, cfg)
		if report.CheckpointFallbacks() == 0 {
			t.Fatalf("checkpoint fallback not reported: %+v", report)
		}
	})
}

// TestRecoveryCrashSweep kills the filesystem at a sweep of byte
// budgets while a live workload runs — tearing group commits and
// checkpoint publishes at arbitrary offsets — then recovers from
// whatever survived. Recovery must never panic, always satisfy the
// structural and conservation invariants, and every replayed fill
// must be bit-identical to the live run's fill with the same trade ID.
func TestRecoveryCrashSweep(t *testing.T) {
	// Size the sweep from a pristine run.
	pristine, _ := buildJournaledRun(t)
	total := 0
	names, _ := pristine.List()
	for _, n := range names {
		total += pristine.Size(n)
	}

	for i := 1; i <= 5; i++ {
		kill := int64(total * i / 6)
		mem := journal.NewMemFS()
		cfs := journal.NewCrashFS(mem)
		cfs.KillAfter(kill)

		liveRec := &fillRecorder{}
		cfg := recoveryCfg(core.LabelsFreeze, cfs, liveRec)
		cfg.JournalCheckpointEvery = 150
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		flow := workload.NewOrderFlow(p.Universe(), recoveryFlowCfg(), 59)
		p.ReplayOrders(flow.Take(1100))
		if !p.Quiesce(20 * time.Second) {
			t.Fatal("no quiesce")
		}
		time.Sleep(30 * time.Millisecond)
		liveTrades := p.Broker.Trades()
		p.Close()
		if !cfs.Crashed() {
			t.Fatalf("kill=%d: budget never exhausted (journal smaller than sweep?)", kill)
		}

		// Recovery reads the post-crash disk, not the dead CrashFS.
		recRec := &fillRecorder{}
		cfg.JournalFS = mem
		cfg.OnFill = recRec.hook()
		p2, report, err := Recover(cfg)
		if err != nil {
			t.Fatalf("kill=%d: recover: %v", kill, err)
		}
		if err := p2.Broker.ValidateBooks(); err != nil {
			t.Fatalf("kill=%d: recovered books invalid: %v", kill, err)
		}
		if err := p2.Broker.CheckConservation(); err != nil {
			t.Fatalf("kill=%d: recovered conservation broken: %v", kill, err)
		}
		if got := p2.Broker.Trades(); got > liveTrades {
			t.Fatalf("kill=%d: recovered %d trades, live run had %d", kill, got, liveTrades)
		}
		// Bit-identity of the replayed window against the live stream.
		liveByID := make(map[int64]Fill)
		for _, f := range liveRec.snapshot() {
			liveByID[f.TradeID] = f
		}
		for _, f := range recRec.snapshot() {
			ref, ok := liveByID[f.TradeID]
			if !ok || !reflect.DeepEqual(f, ref) {
				t.Fatalf("kill=%d: replayed fill %+v diverges from live fill %+v", kill, f, ref)
			}
		}
		_ = report
		p2.Close()
	}
}

// TestRecoverShardCountMismatch pins the manifest guard: a journal is
// bound to the shard count that wrote it, and recovery (or reopening)
// with any other pool size is refused in both directions — recovering
// a 2-shard journal into a larger pool would route a symbol's new
// orders away from the shard holding its recovered book.
func TestRecoverShardCountMismatch(t *testing.T) {
	_, cfg := buildJournaledRun(t) // written with BrokerShards = 2

	for _, bad := range []int{1, 4} {
		c := cfg
		c.BrokerShards = bad
		if _, _, err := Recover(c); !errors.Is(err, ErrShardMismatch) {
			t.Fatalf("Recover with BrokerShards=%d: err=%v, want ErrShardMismatch", bad, err)
		}
	}

	// New refuses to open the journal with a mismatched pool too.
	{
		c := cfg
		c.BrokerShards = 4
		if _, err := New(c); !errors.Is(err, ErrShardMismatch) {
			t.Fatalf("New with BrokerShards=4: err=%v, want ErrShardMismatch", err)
		}
	}

	// An unset shard count adopts the manifest's.
	c := cfg
	c.BrokerShards = 0
	p, _, err := Recover(c)
	if err != nil {
		t.Fatalf("recover with adopted shard count: %v", err)
	}
	defer p.Close()
	if got := p.Broker.NumShards(); got != 2 {
		t.Fatalf("adopted %d shards, want 2", got)
	}
}

// TestRecoverResumeRunRecover pins the crash→recover→run→crash path
// end to end: the first recovery repairs the torn journal, so records
// the resumed platform journals afterwards — with NO checkpoint to
// heal the chain — are fully recoverable by a second recovery instead
// of being stranded behind the old damage.
func TestRecoverResumeRunRecover(t *testing.T) {
	mem := journal.NewMemFS()
	cfs := journal.NewCrashFS(mem)
	cfg := recoveryCfg(core.LabelsFreeze, cfs, nil)
	cfg.JournalCheckpointEvery = 150
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flow := workload.NewOrderFlow(p.Universe(), recoveryFlowCfg(), 67)
	p.ReplayOrders(flow.Take(600))
	if !p.Quiesce(20 * time.Second) {
		t.Fatal("no quiesce")
	}
	// Tear the next group commit mid-frame, past the last checkpoint.
	cfs.KillAfter(37)
	p.ReplayOrders(flow.Take(200))
	if !p.Quiesce(20 * time.Second) {
		t.Fatal("no quiesce after crash")
	}
	p.Close()
	if !cfs.Crashed() {
		t.Fatal("crash never fired")
	}

	// First recovery repairs the chain; the resumed run journals more
	// records but — checkpoints disabled — nothing else heals it.
	cfg.JournalFS = mem
	cfg.JournalCheckpointEvery = -1
	p2, _, err := Recover(cfg)
	if err != nil {
		t.Fatalf("first recover: %v", err)
	}
	flow2 := workload.NewOrderFlow(p2.Universe(), recoveryFlowCfg(), 71)
	p2.ReplayOrders(flow2.Take(300))
	if !p2.Quiesce(20 * time.Second) {
		t.Fatal("no quiesce on resumed platform")
	}
	time.Sleep(50 * time.Millisecond)
	books := p2.Broker.SnapshotBooks()
	logs := p2.Broker.TradeLogSnapshot()
	trades := p2.Broker.Trades()
	p2.Close()

	// The second recovery must reproduce the resumed platform's state
	// — every record journaled after the first recovery included.
	p3, report, err := Recover(cfg)
	if err != nil {
		t.Fatalf("second recover: %v", err)
	}
	defer p3.Close()
	if n := len(report.Faults()); n != 0 {
		t.Fatalf("second recovery found %d faults on the repaired journal: %v", n, report.Faults())
	}
	if got := p3.Broker.Trades(); got != trades {
		t.Fatalf("second recovery lost trades: %d, resumed platform had %d", got, trades)
	}
	if got := p3.Broker.SnapshotBooks(); !reflect.DeepEqual(got, books) {
		t.Fatal("second recovery diverges from the resumed platform (books)")
	}
	if got := p3.Broker.TradeLogSnapshot(); !reflect.DeepEqual(got, logs) {
		t.Fatal("second recovery diverges from the resumed platform (trade logs)")
	}
	if err := p3.Broker.ValidateBooks(); err != nil {
		t.Fatalf("recovered books invalid: %v", err)
	}
	if err := p3.Broker.CheckConservation(); err != nil {
		t.Fatalf("recovered conservation broken: %v", err)
	}
}

// TestPlatformCloseIdempotent pins the lifecycle satellite: Close is
// idempotent and safe to call concurrently — including concurrently
// with in-flight publishes — and Quiesce after Close returns.
func TestPlatformCloseIdempotent(t *testing.T) {
	fs := journal.NewMemFS()
	cfg := recoveryCfg(core.LabelsFreeze, fs, nil)
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flow := workload.NewOrderFlow(p.Universe(), recoveryFlowCfg(), 61)
	ops := flow.Take(2000)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		// In-flight publishes racing the close: placeFlow returns
		// errors after shutdown instead of panicking.
		defer wg.Done()
		p.ReplayOrders(ops)
	}()
	time.Sleep(5 * time.Millisecond)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Close()
		}()
	}
	wg.Wait()
	p.Close() // and once more, sequentially
	if !p.Quiesce(time.Second) {
		t.Fatal("quiesce after close did not drain")
	}
}
