package trading

// Proof obligations of the rebalancing planner (DESIGN-dispatch.md
// §15):
//
//   - hysteresis, against the pure policy core: a static imbalance
//     triggers exactly one migration wave (streak gate → execute →
//     cooldowns → balanced), oscillating load near the threshold
//     triggers none, and a wave that would merely relocate the hot
//     spot is rejected outright;
//   - convergence, against the live platform: a deterministically
//     constructed hot shard (every symbol pre-migrated onto shard 0)
//     is healed automatically — at least one planner-scheduled
//     migration, the imbalance ratio drops below the threshold, and
//     no further waves execute once balanced — while fills, books and
//     trade logs stay bit-identical to a planner-off twin run in all
//     four security modes, with conservation intact;
//   - observability: every decision is published as a plan event whose
//     public "type" part routes it and whose body is confined to
//     S={b} (the derived-event label), invisible to unprivileged
//     subscribers in label-checking modes.

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/orderbook"
	"repro/internal/workload"
)

// loadSnap builds a synthetic snapshot for the policy table tests:
// shard i gets shardRates[i] as its EWMA fill rate.
func loadSnap(at time.Time, samples uint64, shardRates []float64, syms ...SymbolLoad) LoadSnapshot {
	s := LoadSnapshot{At: at, Samples: samples}
	for i, r := range shardRates {
		s.Shards = append(s.Shards, ShardLoad{Shard: i, FillRate: r})
	}
	s.Symbols = syms
	return s
}

// hysteresisPolicy is the table tests' shared tuning: warm-up and
// activity floor effectively off, so the decisions under test are the
// streak gate, the cooldowns and the improvement floor.
func hysteresisPolicy() policy {
	return newPolicy(PlannerConfig{
		HotRatio:         1.5,
		HotStreak:        3,
		MinSamples:       1,
		MinRate:          1,
		ImprovementFloor: 0.1,
		WaveCooldown:     time.Second,
		SymbolCooldown:   10 * time.Second,
	})
}

// TestPlannerStaticImbalanceOneWave: a persistent hot shard arms the
// streak, executes exactly one wave, and every later tick — hot
// measurements inside the cooldown, then balanced ones after the move
// re-attributes — executes nothing.
func TestPlannerStaticImbalanceOneWave(t *testing.T) {
	pol := hysteresisPolicy()
	base := time.Unix(1000, 0)
	tick := func(i int) time.Time { return base.Add(time.Duration(i) * 10 * time.Millisecond) }
	hot := func(at time.Time, samples uint64) LoadSnapshot {
		return loadSnap(at, samples, []float64{100, 10},
			SymbolLoad{Symbol: "HOT1", Shard: 0, FillRate: 60},
			SymbolLoad{Symbol: "HOT2", Shard: 0, FillRate: 40},
			SymbolLoad{Symbol: "COLD", Shard: 1, FillRate: 10},
		)
	}

	// Ticks 1–2: hot (ratio 100/55 ≈ 1.82 ≥ 1.5) but the streak gate
	// holds.
	for i := 1; i <= 2; i++ {
		s := hot(tick(i), uint64(i))
		if rep := pol.decide(&s, s.At); rep.Decision != PlanStreak {
			t.Fatalf("tick %d: decision %q, want streak", i, rep.Decision)
		}
	}
	// Tick 3: the wave. Moving HOT1 (60) to shard 1 alone brings the
	// simulated ratio to 70/55 ≈ 1.27 < 1.5, so the smallest set is
	// exactly one symbol.
	s := hot(tick(3), 3)
	rep := pol.decide(&s, s.At)
	if !rep.Executed() {
		t.Fatalf("tick 3: decision %q, want execute", rep.Decision)
	}
	want := []PlannedMove{{Symbol: "HOT1", From: 0, To: 1, FillRate: 60}}
	if !reflect.DeepEqual(rep.Moves, want) {
		t.Fatalf("wave moves %+v, want %+v", rep.Moves, want)
	}
	if rep.Predicted >= pol.cfg.HotRatio {
		t.Fatalf("executed wave predicts ratio %.3f ≥ threshold", rep.Predicted)
	}

	// Ticks 4–9: the measurement still reads hot (EWMA lag) — the
	// streak re-arms but the wave cooldown holds every armed tick.
	executes := 0
	for i := 4; i <= 9; i++ {
		s := hot(tick(i), uint64(i))
		rep := pol.decide(&s, s.At)
		if rep.Executed() {
			executes++
		}
		if i >= 6 && rep.Decision != PlanCooldown {
			t.Fatalf("tick %d: decision %q, want cooldown once re-armed", i, rep.Decision)
		}
	}
	// Ticks 10–20: the move has re-attributed; balanced measurements
	// reset the streak for good.
	for i := 10; i <= 20; i++ {
		s := loadSnap(tick(i), uint64(i), []float64{40, 70},
			SymbolLoad{Symbol: "HOT2", Shard: 0, FillRate: 40},
			SymbolLoad{Symbol: "HOT1", Shard: 1, FillRate: 60},
			SymbolLoad{Symbol: "COLD", Shard: 1, FillRate: 10},
		)
		rep := pol.decide(&s, s.At)
		if rep.Executed() {
			executes++
		}
		if rep.Decision != PlanBalanced {
			t.Fatalf("tick %d: decision %q, want balanced", i, rep.Decision)
		}
	}
	if executes != 0 {
		t.Fatalf("static imbalance executed %d extra waves after the first", executes)
	}
}

// TestPlannerOscillationNoThrash: load flapping around the threshold
// never accumulates a streak, so no wave ever executes — the no-thrash
// guarantee under the exact adversarial pattern hysteresis exists for.
func TestPlannerOscillationNoThrash(t *testing.T) {
	pol := hysteresisPolicy()
	base := time.Unix(2000, 0)
	for i := 1; i <= 40; i++ {
		rates := []float64{100, 10} // ratio ≈ 1.82: hot
		if i%3 == 0 {
			rates = []float64{60, 50} // ratio ≈ 1.09: balanced resets streak
		}
		s := loadSnap(base.Add(time.Duration(i)*10*time.Millisecond), uint64(i), rates,
			SymbolLoad{Symbol: "HOT1", Shard: 0, FillRate: rates[0]},
			SymbolLoad{Symbol: "COLD", Shard: 1, FillRate: rates[1]},
		)
		rep := pol.decide(&s, s.At)
		if rep.Executed() {
			t.Fatalf("tick %d: oscillating load executed a wave: %+v", i, rep)
		}
		if rep.Decision != PlanStreak && rep.Decision != PlanBalanced {
			t.Fatalf("tick %d: decision %q, want streak or balanced", i, rep.Decision)
		}
	}
}

// TestPlannerRejectsRelocatingTheProblem: a shard hot because of one
// dominant symbol has no useful wave — moving the symbol moves the
// imbalance — and the planner must decide no-candidates rather than
// ping-pong it.
func TestPlannerRejectsRelocatingTheProblem(t *testing.T) {
	pol := hysteresisPolicy()
	base := time.Unix(3000, 0)
	for i := 1; i <= 6; i++ {
		s := loadSnap(base.Add(time.Duration(i)*10*time.Millisecond), uint64(i),
			[]float64{100, 0},
			SymbolLoad{Symbol: "ONLY", Shard: 0, FillRate: 100},
		)
		rep := pol.decide(&s, s.At)
		if rep.Executed() {
			t.Fatalf("tick %d: executed a wave that can only relocate the hot spot", i)
		}
		if i >= 3 && rep.Decision != PlanNoCandidates {
			t.Fatalf("tick %d: decision %q, want no-candidates", i, rep.Decision)
		}
	}
}

// TestPlannerConvergesHotShard is the live convergence proof, per
// security mode: every symbol is pre-migrated onto shard 0 (a
// deterministically constructed hot shard), a seeded Zipf flow
// (skew 1.6) replays in chunks with a manual planner tick at each
// quiescent point, and the planner must heal the pool — at least one
// automatic migration, imbalance below the threshold at the end, no
// wave executing once balanced — while the fills, final books and
// trade logs stay bit-identical to a planner-off twin run from the
// same constructed state, with quantity conservation intact.
func TestPlannerConvergesHotShard(t *testing.T) {
	const (
		shards      = 2
		chunks      = 14
		opsPerChunk = 300
		// On a 2-shard pool the constructed hot shard measures 2.0 and a
		// healed one ≈1.2; the threshold sits between with margin for
		// EWMA burst noise (~±0.1 at this chunk size).
		hotRatio = 1.45
	)
	for _, mode := range []core.SecurityMode{
		core.NoSecurity, core.LabelsFreeze, core.LabelsClone, core.LabelsFreezeIsolation,
	} {
		t.Run(mode.String(), func(t *testing.T) {
			run := func(planner bool) (map[string][]Fill, map[string][]orderbook.LevelSnap, map[string][]TradeRec, []PlanReport, Stats) {
				rec := &fillRecorder{}
				cfg := Config{
					Mode:             mode,
					NumTraders:       6,
					Universe:         workload.NewUniverse(8), // 16 symbols
					Seed:             17,
					BrokerShards:     shards,
					AuditSampleEvery: noAudits,
					OrderTTL:         time.Hour,
					QueueCap:         4096,
					OnFill:           rec.hook(),
				}
				if planner {
					cfg.Planner = PlannerConfig{
						Enable:           true,
						Manual:           true,
						EWMATau:          120 * time.Millisecond,
						HotRatio:         hotRatio,
						HotStreak:        2,
						MinSamples:       2,
						MinRate:          0.000001,
						ImprovementFloor: 0.05,
						SymbolCooldown:   50 * time.Millisecond,
						WaveCooldown:     time.Millisecond,
					}
				}
				p, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer p.Close()
				// Construct the hot shard: everything onto shard 0. Both
				// twins start from this state, so the comparison isolates
				// the planner's effect.
				for _, sym := range p.Universe().Symbols {
					if err := p.Rebalance.Migrate(sym, 0); err != nil {
						t.Fatalf("constructing hot shard: %s: %v", sym, err)
					}
				}
				flow := workload.NewOrderFlow(p.Universe(), workload.FlowConfig{
					Traders:       6,
					AggressionPct: 55,
					CancelPct:     5,
					AmendPct:      5,
					SymbolSkew:    1.6,
				}, 41)
				var reports []PlanReport
				for c := 0; c < chunks; c++ {
					p.ReplayOrders(flow.Take(opsPerChunk))
					if !p.Quiesce(20 * time.Second) {
						t.Fatalf("chunk %d did not quiesce", c)
					}
					if p.Planner != nil {
						reports = append(reports, p.Planner.Step())
					}
				}
				time.Sleep(30 * time.Millisecond)
				if err := p.Broker.CheckConservation(); err != nil {
					t.Fatal(err)
				}
				return bySymbol(rec.snapshot()), p.Broker.SnapshotBooks(),
					p.Broker.TradeLogSnapshot(), reports, p.Stats()
			}

			fillsOff, booksOff, logsOff, _, stOff := run(false)
			fillsOn, booksOn, logsOn, reports, stOn := run(true)
			if len(fillsOff) == 0 {
				t.Fatal("no fills to compare")
			}

			// The planner acted: at least one wave, every scheduled
			// migration clean, and the aggregate counters agree.
			if stOn.PlannerPlans == 0 || stOn.PlannerMoves == 0 {
				t.Fatalf("planner never acted: %d plans, %d moves", stOn.PlannerPlans, stOn.PlannerMoves)
			}
			lastExec := -1
			for i := range reports {
				if reports[i].Executed() {
					lastExec = i
					for _, m := range reports[i].Moves {
						if m.Err != "" {
							t.Fatalf("wave %d: migrate %s: %s", i, m.Symbol, m.Err)
						}
					}
				}
			}
			// Pre-migrations constructed the hot shard (16 symbols minus
			// the ones already home on shard 0); the planner's moves come
			// on top.
			if stOn.Migrations <= stOff.Migrations {
				t.Fatalf("planner run completed %d migrations, twin %d", stOn.Migrations, stOff.Migrations)
			}

			// Convergence: the final measurement is balanced and no wave
			// executed in the closing ticks.
			final := reports[len(reports)-1]
			if final.Ratio >= hotRatio {
				t.Fatalf("final imbalance %.3f did not converge below %.2f (decision %q)",
					final.Ratio, hotRatio, final.Decision)
			}
			if lastExec >= len(reports)-2 {
				t.Fatalf("wave still executing at tick %d of %d: not settled", lastExec, len(reports))
			}

			// Bit-identical outcomes against the planner-off twin.
			if !reflect.DeepEqual(fillsOff, fillsOn) {
				t.Fatal("per-symbol fill sequences diverge with the planner on")
			}
			if !reflect.DeepEqual(booksOff, booksOn) {
				t.Fatal("final books diverge with the planner on")
			}
			if !reflect.DeepEqual(logsOff, logsOn) {
				t.Fatal("trade logs diverge with the planner on")
			}
		})
	}
}

// TestPlannerPlanEventsLabeled: every planner tick publishes a plan
// event; the public "type" part routes it to any subscriber, while the
// decision body is confined to S={b} — an unprivileged probe must not
// see it in a label-checking mode.
func TestPlannerPlanEventsLabeled(t *testing.T) {
	p, err := New(Config{
		Mode:       core.LabelsFreeze,
		NumTraders: 2,
		Universe:   workload.NewUniverse(1),
		Seed:       3,
		Planner: PlannerConfig{
			Enable: true,
			Manual: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	type seen struct {
		typeOK, bodyVisible bool
	}
	got := make(chan seen, 16)
	probe := p.Sys.NewUnit("plan-probe", core.UnitConfig{})
	if _, err := probe.Subscribe(dispatch.MustFilter(dispatch.PartEq("type", "plan"))); err != nil {
		t.Fatal(err)
	}
	p.Sys.Go(func() {
		for {
			e, _, err := probe.GetEvent()
			if err != nil {
				return
			}
			var s seen
			_, terr := probe.ReadOne(e, "type")
			s.typeOK = terr == nil
			_, berr := probe.ReadOne(e, "plan")
			s.bodyVisible = berr == nil
			got <- s
			probe.Recycle(e)
		}
	})

	var hooked []PlanReport
	p.Planner.pol.cfg.OnPlan = func(r PlanReport) { hooked = append(hooked, r) }
	const steps = 3
	for i := 0; i < steps; i++ {
		p.Planner.Step()
	}
	deadline := time.After(10 * time.Second)
	for i := 0; i < steps; i++ {
		select {
		case s := <-got:
			if !s.typeOK {
				t.Fatal("public type part unreadable by the probe")
			}
			if s.bodyVisible {
				t.Fatal("confined plan body visible to an unprivileged probe")
			}
		case <-deadline:
			t.Fatalf("probe saw %d of %d plan events", i, steps)
		}
	}
	if len(hooked) != steps {
		t.Fatalf("OnPlan saw %d of %d decisions", len(hooked), steps)
	}
	for _, r := range hooked {
		// An idle platform warms up then reads idle; nothing executes.
		if r.Executed() {
			t.Fatalf("idle platform executed a wave: %+v", r)
		}
	}
}
