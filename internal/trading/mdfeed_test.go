package trading

// Market-data integration (satellite: sequence-gap recovery): the
// per-symbol L2 feed published by the broker shards must give a late
// joiner — snapshot at seq S, deltas S+1.. — exactly the book state a
// live subscriber assembled from the full delta stream, in all four
// security modes; and the per-batch label check must admit entitled
// subscribers, refuse public ones, and cost one check per
// (batch, class) regardless of population.

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mdfeed"
	"repro/internal/workload"
)

// mdScenario drives a crossing order flow with the feed on and a live
// (never-gapping) subscriber per symbol attached before the first
// order; returns the platform and the live mirrors.
func mdScenario(t *testing.T, mode core.SecurityMode, ops int) (*Platform, map[string]*mdfeed.L2Mirror) {
	t.Helper()
	cfg := Config{
		Mode:         mode,
		NumTraders:   8,
		Universe:     workload.NewUniverse(2),
		Seed:         11,
		QueueCap:     1024,
		MarketData:   true,
		MDSyncFanout: true,
		// Wall-clock TTL expiry would race the assertions below: the
		// feed tracks it faithfully, but the book could change between
		// quiesce and compare.
		OrderTTL: time.Minute,
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)

	mirrors := make(map[string]*mdfeed.L2Mirror)
	type sub struct {
		s *mdfeed.Subscription
		m *mdfeed.L2Mirror
	}
	subs := make(map[string]sub)
	for _, sym := range p.Universe().Symbols {
		f := p.MD.Feed(sym)
		subs[sym] = sub{
			s: f.Subscribe(mdfeed.SubOptions{Label: p.MDLabel(), Queue: 1 << 16, NoConflate: true}),
			m: mdfeed.NewMirror(),
		}
	}

	flow := workload.NewOrderFlow(p.Universe(), workload.FlowConfig{
		Traders:       8,
		AggressionPct: 55,
	}, 17)
	p.ReplayOrders(flow.Take(ops))
	if !p.Quiesce(15 * time.Second) {
		t.Fatal("platform did not quiesce")
	}

	for sym, su := range subs {
		if _, recovered := su.s.Drain(su.m.Apply); recovered {
			t.Fatalf("%s: live subscriber needed recovery on the sync fanout path", sym)
		}
		if got, want := su.s.LastSeq(), p.MD.Feed(sym).Seq(); got != want {
			t.Fatalf("%s: live subscriber at seq %d, feed at %d", sym, got, want)
		}
		mirrors[sym] = su.m
	}
	return p, mirrors
}

// TestMDFeedLateJoinerAllModes: a subscriber joining after the whole
// session recovers (snapshot at S + deltas S+1..) to a state
// bit-identical to the live subscriber's — and both match the
// broker's own book snapshot.
func TestMDFeedLateJoinerAllModes(t *testing.T) {
	for _, mode := range []core.SecurityMode{
		core.NoSecurity, core.LabelsFreeze, core.LabelsClone, core.LabelsFreezeIsolation,
	} {
		t.Run(mode.String(), func(t *testing.T) {
			p, liveMirrors := mdScenario(t, mode, 4000)
			books := p.Broker.SnapshotBooks()
			if p.MD.Stats().Deltas == 0 {
				t.Fatal("feed emitted nothing")
			}
			for _, sym := range p.Universe().Symbols {
				f := p.MD.Feed(sym)
				late := f.Subscribe(mdfeed.SubOptions{Label: p.MDLabel()})
				m := mdfeed.NewMirror()
				if _, recovered := late.Drain(m.Apply); !recovered && f.Seq() > 0 {
					t.Fatalf("%s: late joiner did not take the recovery path", sym)
				}
				if got, want := late.LastSeq(), f.Seq(); got != want {
					t.Fatalf("%s: late joiner at seq %d, feed at %d", sym, got, want)
				}
				if !m.Equal(liveMirrors[sym]) {
					t.Fatalf("%s: late joiner differs from live subscriber\nlate:\n%vlive:\n%v",
						sym, m, liveMirrors[sym])
				}
				if truth := mdfeed.FromLevelSnaps(books[sym]); !m.Equal(truth) {
					t.Fatalf("%s: subscriber state differs from broker book\nsub:\n%vbook:\n%v",
						sym, m, truth)
				}
			}
		})
	}
}

// TestMDFeedEntitlement: public subscribers are refused by the
// per-batch flow check in every label-checking mode and admitted with
// security off — and checks scale with batches × classes, not with
// the subscriber population.
func TestMDFeedEntitlement(t *testing.T) {
	for _, mode := range []core.SecurityMode{core.NoSecurity, core.LabelsFreeze} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := Config{
				Mode:         mode,
				NumTraders:   8,
				Universe:     workload.NewUniverse(1),
				Seed:         11,
				QueueCap:     1024,
				MarketData:   true,
				MDSyncFanout: true,
				OrderTTL:     time.Minute,
			}
			p, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			sym := p.Universe().Symbols[0]
			f := p.MD.Feed(sym)
			const pop = 40
			entitled := make([]*mdfeed.Subscription, pop)
			public := make([]*mdfeed.Subscription, pop)
			for i := 0; i < pop; i++ {
				entitled[i] = f.Subscribe(mdfeed.SubOptions{Label: p.MDLabel(), Queue: 1 << 15, NoConflate: true})
				public[i] = f.Subscribe(mdfeed.SubOptions{Queue: 1 << 15, NoConflate: true})
			}
			flow := workload.NewOrderFlow(p.Universe(), workload.FlowConfig{Traders: 8, AggressionPct: 55}, 17)
			p.ReplayOrders(flow.Take(2000))
			if !p.Quiesce(15 * time.Second) {
				t.Fatal("no quiesce")
			}
			if f.Batches() == 0 {
				t.Fatal("no batches")
			}
			var pubN int
			for _, s := range public {
				n, _ := s.Drain(func(mdfeed.Delta) {})
				pubN += n
			}
			var entN int
			for _, s := range entitled {
				n, _ := s.Drain(func(mdfeed.Delta) {})
				entN += n
			}
			if entN == 0 {
				t.Fatal("entitled subscribers received nothing")
			}
			if mode.CheckLabels() {
				if pubN != 0 {
					t.Fatalf("public subscribers crossed the flow check: %d deltas", pubN)
				}
				// Two classes (entitled, public): exactly 2 checks per
				// batch, for 80 subscribers.
				if got, want := f.LabelChecks(), 2*f.Batches(); got != want {
					t.Fatalf("labelChecks=%d, want batches×classes=%d", got, want)
				}
				if f.LabelDenied() != f.Batches() {
					t.Fatalf("labelDenied=%d, want %d", f.LabelDenied(), f.Batches())
				}
			} else {
				if pubN == 0 {
					t.Fatal("no-security mode should deliver to everyone")
				}
				if f.LabelChecks() != 0 {
					t.Fatalf("labelChecks=%d with security off", f.LabelChecks())
				}
			}
		})
	}
}
