package trading

import (
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/events"
	"repro/internal/freeze"
	"repro/internal/priv"
	"repro/internal/tags"
)

// Regulator samples local trades on behalf of a regulatory body
// (§6.1): it verifies per-trader traded volume against a quota,
// learns trader identities only through on-demand privilege delegation
// from the Broker (steps 7–8), warns traders that exceed the quota,
// and republishes sampled local trades as integrity-endorsed ticks
// (step 9) — it owns the integrity tag s for exactly that purpose.
//
// Information flow summary:
//
//	trade (public)  ──sample──▶ primary adds "audit_req", releases
//	trade+audit_req ──────────▶ Broker book instance adds "delegation"
//	                            (S={reg}, carries tr± for both sides)
//	trade+delegation ─────────▶ managed instance @{reg}: raises by tr
//	                            (input-only: it holds tr−), reads the
//	                            names, publishes per-side "vol" events
//	                            at S={reg}; instance resets afterwards
//	vol (S={reg})  ───────────▶ primary (Sin={reg}) accumulates volume,
//	                            publishes "warning" at S={tr} on breach
type Regulator struct {
	p    *Platform
	unit *core.Unit

	regTag tags.Tag

	subTrade, subVol, subGReject, subGSession uint64

	audits   counter
	volsSeen counter

	// Gateway admission oversight: the ingress publishes every shed
	// order and session close as a public-bodied event (trader
	// identity protected by t_i), so the regulator sees the shape of
	// overload without learning who was throttled.
	gwRejects  counter // shed orders (sum of greject counts)
	gwSessions counter // gsession events seen

	// primary-loop state (single goroutine): per-trader volume and
	// warned set.
	volumes map[string]int64
	warned  map[string]bool
	seen    uint64
}

// newRegulator assembles the regulator: it owns its tag reg, raises its
// input to {reg} (it holds reg±), and endorses its output with s.
func newRegulator(p *Platform, grants []priv.Grant) *Regulator {
	r := &Regulator{
		p:       p,
		volumes: make(map[string]int64),
		warned:  make(map[string]bool),
	}
	// The regulator aggregates every trade: give the singleton a deep
	// queue so bursts do not stall the Broker.
	r.unit = p.Sys.NewUnit("regulator", core.UnitConfig{Grants: grants, QueueCap: 16384})
	r.regTag = r.unit.CreateTag("regulator")
	if err := r.unit.ChangeInLabel(core.Confidentiality, core.Add, r.regTag); err != nil {
		panic("regulator label: " + err.Error())
	}
	if err := r.unit.ChangeOutLabel(core.Integrity, core.Add, p.tagS); err != nil {
		panic("regulator endorsement: " + err.Error())
	}
	return r
}

// RegTag exposes the regulator's tag reference (used by the Broker to
// protect delegation parts; the reference conveys no privilege).
func (r *Regulator) RegTag() tags.Tag { return r.regTag }

// Audits reports audit requests issued.
func (r *Regulator) Audits() uint64 { return r.audits.load() }

// VolsSeen reports volume reports processed.
func (r *Regulator) VolsSeen() uint64 { return r.volsSeen.load() }

// GatewayRejects reports shed orders observed via greject events.
func (r *Regulator) GatewayRejects() uint64 { return r.gwRejects.load() }

// GatewaySessionCloses reports gsession events observed.
func (r *Regulator) GatewaySessionCloses() uint64 { return r.gwSessions.load() }

// wire registers subscriptions and starts the primary loop.
func (r *Regulator) wire() error {
	var err error
	if r.subTrade, err = r.unit.Subscribe(dispatch.MustFilter(dispatch.PartEq("type", "trade"))); err != nil {
		return err
	}
	if r.subVol, err = r.unit.Subscribe(dispatch.MustFilter(dispatch.PartExists("vol"))); err != nil {
		return err
	}
	if r.subGReject, err = r.unit.Subscribe(dispatch.MustFilter(dispatch.PartEq("type", "greject"))); err != nil {
		return err
	}
	if r.subGSession, err = r.unit.Subscribe(dispatch.MustFilter(dispatch.PartEq("type", "gsession"))); err != nil {
		return err
	}
	// Managed subscription for delegations: the trade event augmented
	// with a "delegation" part re-dispatches here; instances run at
	// {reg} and are reset after every (privilege-acquiring) delivery.
	if _, err = r.unit.SubscribeManagedOpts(r.handleDelegation,
		dispatch.MustFilter(dispatch.PartExists("delegation")),
		core.ManagedOptions{ResetOnDrift: true, Pin: setOf(r.regTag)}); err != nil {
		return err
	}
	r.p.Sys.Go(r.run)
	return nil
}

// run is the primary loop: trade sampling and volume accounting.
func (r *Regulator) run() {
	for {
		e, sub, err := r.unit.GetEvent()
		if err != nil {
			return
		}
		switch sub {
		case r.subTrade:
			if !r.handleTrade(e) {
				// Unsampled trades are unmodified and unreferenced —
				// the common case on the regulator's busiest stream.
				// Sampled ones gain an "audit_req" part and must
				// survive until the next GetEvent re-dispatches them.
				r.unit.Recycle(e)
			}
		case r.subVol:
			r.handleVol(e)
			r.unit.Recycle(e)
		case r.subGReject:
			if v, err := r.unit.ReadOne(e, "greject"); err == nil {
				if m, ok := v.Data.(*freeze.Map); ok {
					r.gwRejects.add(uint64(m.GetInt("count")))
				}
			}
			r.unit.Recycle(e)
		case r.subGSession:
			r.gwSessions.inc()
			r.unit.Recycle(e)
		}
	}
}

// handleTrade samples every n-th trade: it requests an audit by adding
// a public "audit_req" part to the trade event (re-dispatched to the
// Broker on release) and republishes the trade as an s-endorsed tick
// (step 9). It reports whether it modified the delivered event, so
// the caller knows an unmodified delivery may be recycled.
func (r *Regulator) handleTrade(e *events.Event) bool {
	r.seen++
	if r.p.cfg.AuditSampleEvery == 0 || r.seen%r.p.cfg.AuditSampleEvery != 0 {
		return false
	}
	tv, err := r.unit.ReadOne(e, "trade")
	if err != nil {
		return false
	}
	tm, ok := tv.Data.(*freeze.Map)
	if !ok {
		return false
	}

	// Step 9: republish the local trade as a valid stock tick. The
	// regulator owns s, so monitors perceive it like an exchange tick.
	// The republication is a fresh market event: it gets its own origin
	// stamp, so second-generation trades do not inherit the first
	// generation's latency.
	tick := r.unit.CreateEvent()
	if err := r.unit.AddPart(tick, noTags, noTags, "type", "tick"); err == nil {
		body := freeze.MapOf(
			"symbol", tm.GetString("symbol"),
			"price", tm.GetInt("price"),
			"seq", int64(0),
		)
		if r.unit.AddPart(tick, noTags, noTags, "body", body) == nil {
			// Best-effort: the feedback edge must never stall the
			// regulator behind congested monitor queues.
			_ = r.unit.PublishBestEffort(tick)
		}
	}

	// Step 7: request the identity delegation. The part is public; the
	// Broker's pinned book instance answers on the same event.
	if err := r.unit.AddPart(e, noTags, noTags, "audit_req", r.seen); err != nil {
		return false
	}
	r.audits.inc()
	// The next GetEvent auto-releases the modified trade event,
	// re-dispatching it to the Broker.
	return true
}

// handleDelegation runs in a managed instance at {reg}: it consumes the
// privileges the Broker delegated, reads the trade's identity parts and
// reports per-side volumes to the primary as {reg}-protected events.
// Holding tr− makes the input-only raise (and hence the declassified
// volume report) legal; the instance resets afterwards.
func (r *Regulator) handleDelegation(u *core.Unit, e *events.Event, sub uint64) {
	dv, err := u.ReadOne(e, "delegation") // bestows tr± for both sides
	if err != nil {
		return
	}
	dm, ok := dv.Data.(*freeze.Map)
	if !ok {
		return
	}
	qty := dm.GetInt("qty")
	sides := []struct {
		tagKey, stratKey, part string
	}{
		{"buyer_tag", "buyer_strat", "buyer"},
		{"seller_tag", "seller_strat", "seller"},
	}
	for _, side := range sides {
		tv, ok := dm.Get(side.tagKey)
		if !ok {
			continue
		}
		tr, ok := tv.(tags.Tag)
		if !ok || tr.IsZero() {
			continue
		}
		var strat tags.Tag
		if sv, ok := dm.Get(side.stratKey); ok {
			strat, _ = sv.(tags.Tag)
		}
		if err := u.ChangeInLabel(core.Confidentiality, core.Add, tr); err != nil {
			continue
		}
		nv, err := u.ReadOne(e, side.part)
		_ = u.ChangeInLabel(core.Confidentiality, core.Del, tr)
		if err != nil {
			continue
		}
		name, _ := nv.Data.(string)
		if name == "" {
			continue
		}
		// Volume report to the primary, protected by reg; the trader's
		// tag references ride along for the eventual warning.
		ve := u.CreateEventFrom(e)
		payload := freeze.MapOf("trader", name, "qty", qty, "tr", tr, "strat", strat)
		if err := u.AddPart(ve, setOf(r.regTag), noTags, "vol", payload); err != nil {
			continue
		}
		_ = u.Publish(ve)
	}
}

// handleVol accumulates volume per trader and warns on quota breach
// (step 8). The warning part is protected by the trader's own order
// tag, so only that trader perceives it.
func (r *Regulator) handleVol(e *events.Event) {
	vv, err := r.unit.ReadOne(e, "vol")
	if err != nil {
		return
	}
	vm, ok := vv.Data.(*freeze.Map)
	if !ok {
		return
	}
	r.volsSeen.inc()
	name := vm.GetString("trader")
	r.volumes[name] += vm.GetInt("qty")
	if r.volumes[name] <= r.p.cfg.QuotaShares || r.warned[name] {
		return
	}
	// Protect the warning with the trader's durable strategy tag: the
	// per-order tr leaves the trader's input label after a bounded
	// number of further orders, so a warning issued after the regulator
	// catches up on its queue would silently never be admitted. The
	// strategy tag is held for the trader's lifetime and confines the
	// warning exactly as tightly — only that trader's flow carries it.
	// Fall back to the order tag for counterparties that did not
	// disclose a strategy-tag reference.
	guard, _ := vm.Get("strat")
	gtag, _ := guard.(tags.Tag)
	if gtag.IsZero() {
		tv, ok := vm.Get("tr")
		if !ok {
			return
		}
		if gtag, ok = tv.(tags.Tag); !ok || gtag.IsZero() {
			return
		}
	}
	r.warned[name] = true
	we := r.unit.CreateEventFrom(e)
	warning := freeze.MapOf(
		"to", name,
		"msg", "trading volume exceeded quota",
	)
	if err := r.unit.AddPart(we, setOf(gtag), noTags, "warning", warning); err != nil {
		return
	}
	_ = r.unit.Publish(we)
}
