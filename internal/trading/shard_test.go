package trading

// Proof obligations of the symbol-sharded broker pool:
//
//   - sharded-vs-single equivalence: the same multi-symbol trace
//     through a 1-shard and an 8-shard pool yields identical
//     per-symbol fill sequences, final book snapshots and trade-log
//     contents, in all four security modes;
//   - shard routing: RouteSymbol is a deterministic partition, order
//     events only ever reach their symbol's shard, and a forged
//     oshard part is rejected rather than processed;
//   - a deterministic chaos suite interleaving limit/market/cancel/
//     amend/TTL-expiry across shards with per-shard pauses, auditing
//     orderbook.Validate plus quantity conservation at every
//     quiescent point;
//   - a cross-shard -race hammer (the multi-symbol sibling of
//     TestConcurrentBookHammer);
//   - trading-layer self-trade prevention and amend choreography
//     (ownership checks, qty-down-keeps-priority, reprice re-entry).

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/freeze"
	"repro/internal/journal"
	"repro/internal/orderbook"
	"repro/internal/priv"
	"repro/internal/workload"
)

// noAudits keeps the Regulator from sampling (and thereby consuming
// audit-window entries), so trade logs stay comparable across runs.
const noAudits = uint64(1) << 60

// shardedFlowConfig is the multi-symbol trace the equivalence and
// routing tests replay: skewed symbol draw, all five op kinds.
func shardedFlowConfig(traders int) workload.FlowConfig {
	return workload.FlowConfig{
		Traders:       traders,
		AggressionPct: 50,
		CancelPct:     10,
		AmendPct:      10,
		SymbolSkew:    1.2,
	}
}

// TestShardedVsSingleEquivalence is the headline proof: replaying the
// same OrderFlow trace through a 1-shard and an 8-shard pool must
// produce bit-identical per-symbol fill sequences (IDs included —
// trade IDs are per-symbol, not per-shard), final book snapshots and
// audit-window trade logs, in all four security modes. This is the
// paper's per-symbol determinism argument extended across shards: the
// partition moves work, never semantics.
func TestShardedVsSingleEquivalence(t *testing.T) {
	const ops = 1800
	for _, mode := range []core.SecurityMode{
		core.NoSecurity, core.LabelsFreeze, core.LabelsClone, core.LabelsFreezeIsolation,
	} {
		t.Run(mode.String(), func(t *testing.T) {
			run := func(shards int) (map[string][]Fill, map[string][]orderbook.LevelSnap, map[string][]TradeRec, int) {
				rec := &fillRecorder{}
				p, err := New(Config{
					Mode:             mode,
					NumTraders:       6,
					Universe:         workload.NewUniverse(8), // 16 symbols
					Seed:             11,
					BrokerShards:     shards,
					AuditSampleEvery: noAudits,
					OrderTTL:         time.Hour,
					QueueCap:         2048,
					OnFill:           rec.hook(),
				})
				if err != nil {
					t.Fatal(err)
				}
				defer p.Close()
				flow := workload.NewOrderFlow(p.Universe(), shardedFlowConfig(6), 23)
				p.ReplayOrders(flow.Take(ops))
				if !p.Quiesce(20 * time.Second) {
					t.Fatal("no quiesce")
				}
				time.Sleep(50 * time.Millisecond)
				active := 0
				for _, sh := range p.Broker.Shards() {
					if sh.Trades() > 0 {
						active++
					}
				}
				return bySymbol(rec.snapshot()), p.Broker.SnapshotBooks(), p.Broker.TradeLogSnapshot(), active
			}
			fills1, books1, logs1, _ := run(1)
			fills8, books8, logs8, active := run(8)
			if len(fills1) == 0 {
				t.Fatal("no fills to compare")
			}
			if active < 2 {
				t.Fatalf("8-shard pool cleared trades on %d shard(s): partition degenerate", active)
			}
			if !reflect.DeepEqual(fills1, fills8) {
				t.Fatalf("per-symbol fill sequences diverge between 1 and 8 shards:\n1: %+v\n8: %+v", fills1, fills8)
			}
			if !reflect.DeepEqual(books1, books8) {
				t.Fatalf("final books diverge between 1 and 8 shards:\n1: %+v\n8: %+v", books1, books8)
			}
			if !reflect.DeepEqual(logs1, logs8) {
				t.Fatalf("trade logs diverge between 1 and 8 shards:\n1: %+v\n8: %+v", logs1, logs8)
			}
		})
	}
}

// TestShardRoutingProperty pins the pure routing map: deterministic,
// in range, total (every symbol routes somewhere) — and a realistic
// universe actually spreads across shards instead of collapsing onto
// one.
func TestShardRoutingProperty(t *testing.T) {
	f := func(sym string, n uint8) bool {
		shards := int(n%8) + 1
		r := RouteSymbol(sym, shards)
		return r >= 0 && r < shards && r == RouteSymbol(sym, shards)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	if got := RouteSymbol("ANY", 1); got != 0 {
		t.Fatalf("single-shard route = %d", got)
	}
	u := workload.NewUniverse(16) // 32 symbols
	seen := map[int]bool{}
	for _, s := range u.Symbols {
		seen[RouteSymbol(s, 4)] = true
	}
	if len(seen) < 3 {
		t.Fatalf("32 symbols landed on only %d of 4 shards", len(seen))
	}
}

// TestShardRoutingDeliveryIsolation replays a multi-symbol flow
// through a 4-shard pool and proves the delivery-level property: every
// shard's books and trade logs only ever contain symbols that route to
// it, and no shard observed a misrouted order.
func TestShardRoutingDeliveryIsolation(t *testing.T) {
	const shards = 4
	p, err := New(Config{
		Mode:             core.LabelsFreeze,
		NumTraders:       6,
		Universe:         workload.NewUniverse(8),
		Seed:             7,
		BrokerShards:     shards,
		AuditSampleEvery: 4,
		OrderTTL:         time.Hour,
		QueueCap:         2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	flow := workload.NewOrderFlow(p.Universe(), shardedFlowConfig(6), 29)
	p.ReplayOrders(flow.Take(3000))
	if !p.Quiesce(20 * time.Second) {
		t.Fatal("no quiesce")
	}
	time.Sleep(50 * time.Millisecond)

	if p.Stats().TradesCompleted == 0 {
		t.Fatal("no trades")
	}
	for i, sh := range p.Broker.Shards() {
		for sym := range sh.BookDepths() {
			if RouteSymbol(sym, shards) != i {
				t.Fatalf("shard %d holds a book for %s, which routes to %d", i, sym, RouteSymbol(sym, shards))
			}
		}
		for sym := range sh.TradeLogSnapshot() {
			if RouteSymbol(sym, shards) != i {
				t.Fatalf("shard %d logged trades for %s, which routes to %d", i, sym, RouteSymbol(sym, shards))
			}
		}
	}
	if n := p.Broker.Misroutes(); n != 0 {
		t.Fatalf("%d misrouted orders under honest traders", n)
	}
}

// forgedOrderEvent builds a well-formed order event with an explicit —
// possibly wrong — oshard part, mirroring Trader.buildOrderEvent. The
// routing integrity check must reject it at the receiving shard.
func forgedOrderEvent(tr *Trader, oshard int64, id int64, symbol, side string, price, qty int64) *events.Event {
	tg := tr.unit.CreateTag(fmt.Sprintf("tr-forged-%d", id))
	tr.trackOrderTag(tg)
	e := tr.unit.CreateEvent()
	if tr.unit.AddPart(e, noTags, noTags, "type", "order") != nil {
		return nil
	}
	if tr.unit.AddPart(e, noTags, noTags, "oshard", oshard) != nil {
		return nil
	}
	order := freeze.MapOf(
		"symbol", symbol, "price", price, "side", side, "qty", qty,
		"id", id, "ordtype", "limit", "target", int64(0),
		"tr", tg, "strat", tr.tag,
	)
	bSet := setOf(tr.p.tagB)
	if tr.unit.AddPart(e, bSet, noTags, "order", order) != nil {
		return nil
	}
	for _, r := range []priv.Right{priv.Plus, priv.Minus} {
		if tr.unit.AttachPrivilegeToPart(e, "order", bSet, noTags, tg, r) != nil {
			return nil
		}
	}
	nameSet := setOf(tr.p.tagB, tg)
	if tr.unit.AddPart(e, nameSet, noTags, "name", tr.name) != nil {
		return nil
	}
	for _, r := range []priv.Right{priv.PlusAuth, priv.MinusAuth} {
		if tr.unit.AttachPrivilegeToPart(e, "name", nameSet, noTags, tg, r) != nil {
			return nil
		}
	}
	return e
}

// TestForgedShardRouteRejected: an order whose oshard part points at
// the wrong shard is rejected by that shard's route re-check — it
// never opens a book on the wrong shard, and the counterparty flow it
// tried to dodge cannot fill against it.
func TestForgedShardRouteRejected(t *testing.T) {
	const shards = 4
	p, err := New(Config{
		Mode:         core.LabelsFreeze,
		NumTraders:   2,
		Universe:     workload.NewUniverse(1),
		Seed:         5,
		BrokerShards: shards,
		OrderTTL:     time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	sym := p.Universe().Pairs[0].A
	base := p.Universe().BasePrice(sym)
	home := RouteSymbol(sym, shards)
	wrong := (home + 1) % shards

	forged := forgedOrderEvent(p.Traders[0], int64(wrong), int64(1)<<40+1, sym, "bid", base, 100)
	if forged == nil {
		t.Fatal("forged event not built")
	}
	if err := p.Traders[0].unit.Publish(forged); err != nil {
		t.Fatal(err)
	}
	// A genuine crossing ask: it must find an empty book, not the
	// forged bid.
	p.ReplayOrdersSingle(manualOps(sym,
		workload.OrderOp{Trader: 1, Kind: workload.OpLimit, ID: int64(1)<<40 + 2, Side: "ask", Price: base, Qty: 100},
	))
	if !p.Quiesce(5 * time.Second) {
		t.Fatal("no quiesce")
	}
	time.Sleep(30 * time.Millisecond)

	if got := p.Broker.Shards()[wrong].Misroutes(); got != 1 {
		t.Fatalf("wrong shard counted %d misroutes, want 1", got)
	}
	if got := p.Stats().TradesCompleted; got != 0 {
		t.Fatalf("forged-route order traded: %d fills", got)
	}
	if depths := p.Broker.Shards()[wrong].BookDepths(); len(depths) != 0 {
		t.Fatalf("wrong shard opened books: %v", depths)
	}
	if err := p.Broker.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedPoolChaos is the deterministic chaos suite: a seeded
// multi-symbol flow of all five op kinds over 8 symbols × 4 shards,
// with one shard's flow paused and then released as a burst each wave
// and TTL expiry interleaved between waves. After every quiescent
// point the full structural audit runs: orderbook.Validate on every
// book plus per-symbol quantity conservation. On top of that,
// workload.CrashSchedule picks seeded kill waves: at those quiescent
// points every shard's in-memory state is dropped, the pool is
// rebuilt from its journal via Recover, and the recovered state must
// match the pre-kill snapshot bit for bit before the next wave lands
// on it. workload.MigrationSchedule interleaves live symbol hand-offs
// with the crash waves: migrated routes must survive recovery, and a
// migrated symbol's state must always live on exactly the shard the
// route table names.
func TestShardedPoolChaos(t *testing.T) {
	const (
		shards     = 4
		seed       = 99
		waves      = 6
		opsPerWave = 1200
		ttl        = 50 * time.Millisecond
	)
	cfg := Config{
		Mode:             core.LabelsFreeze,
		NumTraders:       8,
		Universe:         workload.NewUniverse(4), // 8 symbols
		Seed:             seed,
		BrokerShards:     shards,
		OrderTTL:         ttl,
		QueueCap:         4096,
		SelfTradePolicy:  orderbook.STPCancelResting,
		AuditSampleEvery: noAudits,
		JournalFS:        journal.NewMemFS(),
		JournalNoSync:    true,
		// Coarse enough that recovery always replays a real tail, fine
		// enough that later waves recover from checkpoint+tail.
		JournalCheckpointEvery: 1500,
		JournalStagingCap:      1 << 16,
		// The planner runs throughout the chaos, ticked manually at each
		// quiescent point with hair-trigger thresholds so its waves
		// interleave with the scheduled crashes and hand-offs; per-symbol
		// outcomes are migration-invariant, so every audit below must
		// hold regardless of what it decides. Manual mode also exercises
		// Recover's deferred-start path on every kill wave.
		Planner: PlannerConfig{
			Enable:         true,
			Manual:         true,
			EWMATau:        50 * time.Millisecond,
			HotRatio:       1.2,
			HotStreak:      1,
			MinSamples:     1,
			MinRate:        0.000001,
			SymbolCooldown: time.Millisecond,
			WaveCooldown:   time.Millisecond,
		},
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { p.Close() }()
	kills := map[int]workload.CrashPoint{}
	for _, cp := range workload.CrashSchedule(seed, waves, shards) {
		kills[cp.Wave] = cp
	}
	// Decorrelated seed so migration waves and crash waves overlap in
	// some runs of the schedule space but not lockstep.
	migs := map[int]workload.MigrationPoint{}
	for _, mp := range workload.MigrationSchedule(seed+1, waves, shards, len(p.Universe().Symbols)) {
		migs[mp.Wave] = mp
	}
	flow := workload.NewOrderFlow(p.Universe(), workload.FlowConfig{
		Traders:       8,
		AggressionPct: 50,
		CancelPct:     12,
		AmendPct:      12,
		SymbolSkew:    1.3,
	}, seed)

	for wave := 0; wave < waves; wave++ {
		if mp, ok := migs[wave]; ok {
			// Live hand-off between waves: the next wave's flow for this
			// symbol lands on its new shard (a draw onto the current
			// owner is a legal no-op).
			sym := p.Universe().Symbols[mp.Symbol]
			if err := p.Rebalance.Migrate(sym, mp.Dst); err != nil {
				t.Fatalf("wave %d: migrate %s→%d: %v", wave, sym, mp.Dst, err)
			}
			if got := p.RouteOf(sym); got != mp.Dst {
				t.Fatalf("wave %d: route for %s = %d after migrating to %d", wave, sym, got, mp.Dst)
			}
		}
		ops := flow.Take(opsPerWave)
		// Per-shard pause: the designated shard receives nothing while
		// its peers clear their flow, then its backlog lands at once.
		paused := wave % shards
		var deferred, main []workload.OrderOp
		for _, op := range ops {
			// Live route, not the home map: a migrated symbol's pause
			// must follow it to its new shard.
			if p.RouteOf(op.Symbol) == paused {
				deferred = append(deferred, op)
			} else {
				main = append(main, op)
			}
		}
		p.ReplayOrders(main)
		time.Sleep(10 * time.Millisecond)
		p.ReplayOrders(deferred)
		if !p.Quiesce(20 * time.Second) {
			t.Fatalf("wave %d did not quiesce", wave)
		}
		time.Sleep(30 * time.Millisecond)
		// Planner tick at the quiescent point: any wave it schedules
		// lands before the audits below, which must hold over the
		// post-wave state too.
		if rep := p.Planner.Step(); rep.Executed() {
			for _, m := range rep.Moves {
				if m.Err != "" {
					t.Fatalf("wave %d: planner migrate %s: %s", wave, m.Symbol, m.Err)
				}
			}
		}
		// Quiescent point: full structural + conservation audit.
		if err := p.Broker.ValidateBooks(); err != nil {
			t.Fatalf("wave %d: %v", wave, err)
		}
		if err := p.Broker.CheckConservation(); err != nil {
			t.Fatalf("wave %d: %v", wave, err)
		}
		// Route/ownership agreement: every symbol with shard state lives
		// on exactly the shard the live route table names.
		for i, sh := range p.Broker.Shards() {
			for _, sym := range sh.Symbols() {
				if got := p.RouteOf(sym); got != i {
					t.Fatalf("wave %d: shard %d holds %s but the route table says %d", wave, i, sym, got)
				}
			}
		}
		if cp, ok := kills[wave]; ok {
			// Kill/recover wave: snapshot, drop everything in memory,
			// rebuild from the journal alone, and re-audit before the
			// next wave trades against the recovered books.
			books := p.Broker.SnapshotBooks()
			logs := p.Broker.TradeLogSnapshot()
			shardTrades := p.Broker.Shards()[cp.Shard].Trades()
			routes := map[string]int{}
			for _, sym := range p.Universe().Symbols {
				routes[sym] = p.RouteOf(sym)
			}
			p.Close()
			p2, _, err := Recover(cfg)
			if err != nil {
				t.Fatalf("wave %d: recover: %v", wave, err)
			}
			p = p2
			if got := p.Broker.SnapshotBooks(); !reflect.DeepEqual(got, books) {
				t.Fatalf("wave %d: recovered books diverge from pre-kill snapshot", wave)
			}
			if got := p.Broker.TradeLogSnapshot(); !reflect.DeepEqual(got, logs) {
				t.Fatalf("wave %d: recovered trade logs diverge from pre-kill snapshot", wave)
			}
			if got := p.Broker.Shards()[cp.Shard].Trades(); got != shardTrades {
				t.Fatalf("wave %d: shard %d recovered %d trades, had %d", wave, cp.Shard, got, shardTrades)
			}
			// Migrated routes are journal state: recovery must rebuild
			// the same symbol→shard table the live run was using.
			for _, sym := range p.Universe().Symbols {
				if got := p.RouteOf(sym); got != routes[sym] {
					t.Fatalf("wave %d: recovered route for %s = %d, had %d", wave, sym, got, routes[sym])
				}
			}
			if err := p.Broker.ValidateBooks(); err != nil {
				t.Fatalf("wave %d post-recovery: %v", wave, err)
			}
			if err := p.Broker.CheckConservation(); err != nil {
				t.Fatalf("wave %d post-recovery: %v", wave, err)
			}
		}
		if wave%2 == 1 {
			// Let resting interest go stale so the next wave's orders
			// trigger TTL eviction mid-chaos.
			time.Sleep(ttl + 20*time.Millisecond)
		}
	}

	st := p.Stats()
	if st.TradesCompleted == 0 || st.CancelsDone == 0 || st.AmendsDone == 0 || st.OrdersExpired == 0 {
		t.Fatalf("chaos missed an op class: %+v", st)
	}
	if n := p.Broker.Misroutes(); n != 0 {
		t.Fatalf("%d misroutes under honest chaos", n)
	}
	active := 0
	for _, sh := range p.Broker.Shards() {
		if sh.Trades() > 0 {
			active++
		}
	}
	if active < 2 {
		t.Fatalf("chaos cleared trades on %d shard(s)", active)
	}
}

// TestShardedPoolHammer is the cross-shard -race hammer: four
// concurrent replay lanes (disjoint trader and order-ID ranges) drive
// a skewed multi-symbol flow across a 4-shard pool while snapshot,
// depth and trade-log readers poll every shard. The CI race job runs
// this against the managed-instance delivery path end to end.
func TestShardedPoolHammer(t *testing.T) {
	const (
		shards     = 4
		lanes      = 4
		perLane    = 2
		opsPerLane = 700
	)
	p, err := New(Config{
		Mode:             core.LabelsFreeze,
		NumTraders:       lanes * perLane,
		Universe:         workload.NewUniverse(8),
		Seed:             3,
		BrokerShards:     shards,
		QueueCap:         4096,
		AuditSampleEvery: 4,
		SelfTradePolicy:  orderbook.STPCancelResting,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var wg sync.WaitGroup
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			flow := workload.NewOrderFlow(p.Universe(), workload.FlowConfig{
				Traders:       perLane,
				AggressionPct: 55,
				CancelPct:     10,
				AmendPct:      10,
				SymbolSkew:    1.2,
			}, int64(100+lane))
			ops := flow.Take(opsPerLane)
			for i := range ops {
				ops[i].Trader += lane * perLane
				// Disjoint ID ranges so lanes cannot collide in a book.
				if ops[i].ID != 0 {
					ops[i].ID += int64(lane) << 30
				}
				if ops[i].Target != 0 {
					ops[i].Target += int64(lane) << 30
				}
			}
			p.ReplayOrders(ops)
		}(lane)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
		default:
			p.Broker.BookDepths()
			p.Broker.SnapshotBooks()
			p.Broker.TradeLogSnapshot()
			time.Sleep(time.Millisecond)
			continue
		}
		break
	}
	if !p.Quiesce(20 * time.Second) {
		t.Fatal("no quiesce")
	}
	time.Sleep(50 * time.Millisecond)
	if p.Stats().TradesCompleted == 0 {
		t.Fatal("hammer produced no fills")
	}
	if err := p.Broker.ValidateBooks(); err != nil {
		t.Fatal(err)
	}
	if err := p.Broker.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	// Snapshot and depth views agree after the dust settles.
	depths := p.Broker.BookDepths()
	snaps := p.Broker.SnapshotBooks()
	for s, n := range depths {
		count := 0
		for _, lv := range snaps[s] {
			count += len(lv.Orders)
		}
		if count != n {
			t.Fatalf("symbol %s: depth %d vs snapshot %d", s, n, count)
		}
	}
}

// stpScenario replays the partial-fill-then-self-cross script under a
// policy: trader 1's ask has time priority, trader 0's own ask rests
// behind it, then trader 0 crosses with an oversized bid.
func stpScenario(t *testing.T, policy orderbook.STP) *Platform {
	t.Helper()
	p, err := New(Config{
		Mode:             core.LabelsFreeze,
		NumTraders:       2,
		Universe:         workload.NewUniverse(1),
		Seed:             5,
		BrokerShards:     1,
		OrderTTL:         time.Hour,
		SelfTradePolicy:  policy,
		AuditSampleEvery: noAudits,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	sym := p.Universe().Pairs[0].A
	base := p.Universe().BasePrice(sym)
	const idBase = int64(1) << 40
	p.ReplayOrdersSingle(manualOps(sym,
		workload.OrderOp{Trader: 1, Kind: workload.OpLimit, ID: idBase + 1, Side: "ask", Price: base, Qty: 60},
		workload.OrderOp{Trader: 0, Kind: workload.OpLimit, ID: idBase + 2, Side: "ask", Price: base, Qty: 60},
		workload.OrderOp{Trader: 0, Kind: workload.OpLimit, ID: idBase + 3, Side: "bid", Price: base, Qty: 150},
	))
	if !p.Quiesce(5 * time.Second) {
		t.Fatal("no quiesce")
	}
	time.Sleep(30 * time.Millisecond)
	return p
}

// TestSelfTradePolicyEndToEnd pins the three policies through the
// whole choreography — including the partial-fill-then-self-cross
// edge, where the first fill against the counterparty must stand under
// every policy.
func TestSelfTradePolicyEndToEnd(t *testing.T) {
	sym := workload.NewUniverse(1).Pairs[0].A
	cases := []struct {
		name       string
		policy     orderbook.STP
		trades     uint64
		stpCancels uint64
		// resting: remaining depth for the symbol and the qty of the
		// single expected survivor.
		depth       int
		survivorQty int64
	}{
		// Allow: bid fills both asks (60+60), residual 30 bid rests.
		{"allow", orderbook.STPAllow, 2, 0, 1, 30},
		// Cancel-resting: fill 60 from trader 1, own ask withdrawn,
		// residual 90 bid rests.
		{"cancel-resting", orderbook.STPCancelResting, 1, 1, 1, 90},
		// Cancel-incoming: fill 60 from trader 1, then the incoming
		// remainder dies at the self-cross; the own ask 60 stays.
		{"cancel-incoming", orderbook.STPCancelIncoming, 1, 0, 1, 60},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := stpScenario(t, tc.policy)
			st := p.Stats()
			if st.TradesCompleted != tc.trades {
				t.Fatalf("trades %d, want %d", st.TradesCompleted, tc.trades)
			}
			if st.SelfTradeCancels != tc.stpCancels {
				t.Fatalf("stp cancels %d, want %d", st.SelfTradeCancels, tc.stpCancels)
			}
			snaps := p.Broker.SnapshotBooks()[sym]
			resting := 0
			var qty int64
			for _, lv := range snaps {
				for _, o := range lv.Orders {
					resting++
					qty = o.Qty
				}
			}
			if resting != tc.depth || qty != tc.survivorQty {
				t.Fatalf("resting %d orders (last qty %d), want %d order of qty %d: %+v",
					resting, qty, tc.depth, tc.survivorQty, snaps)
			}
			if err := p.Broker.CheckConservation(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAmendFlowEndToEnd drives the trading-layer amend choreography:
// quantity reduction keeps time priority, reprice re-enters and can
// fill, and a foreign amend is rejected by the ownership check.
func TestAmendFlowEndToEnd(t *testing.T) {
	newP := func(t *testing.T) (*Platform, string, int64, *fillRecorder) {
		rec := &fillRecorder{}
		p, err := New(Config{
			Mode:             core.LabelsFreeze,
			NumTraders:       2,
			Universe:         workload.NewUniverse(1),
			Seed:             5,
			BrokerShards:     1,
			OrderTTL:         time.Hour,
			AuditSampleEvery: noAudits,
			OnFill:           rec.hook(),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		sym := p.Universe().Pairs[0].A
		return p, sym, p.Universe().BasePrice(sym), rec
	}
	const idBase = int64(1) << 40

	t.Run("qty-down keeps priority", func(t *testing.T) {
		p, sym, base, rec := newP(t)
		p.ReplayOrdersSingle(manualOps(sym,
			workload.OrderOp{Trader: 0, Kind: workload.OpLimit, ID: idBase + 1, Side: "ask", Price: base, Qty: 100},
			workload.OrderOp{Trader: 1, Kind: workload.OpLimit, ID: idBase + 2, Side: "ask", Price: base, Qty: 100},
			workload.OrderOp{Trader: 0, Kind: workload.OpAmend, Target: idBase + 1, Price: base, Qty: 40},
			workload.OrderOp{Trader: 1, Kind: workload.OpLimit, ID: idBase + 3, Side: "bid", Price: base, Qty: 40},
		))
		if !p.Quiesce(5 * time.Second) {
			t.Fatal("no quiesce")
		}
		time.Sleep(30 * time.Millisecond)
		st := p.Stats()
		if st.AmendsDone != 1 {
			t.Fatalf("amends done %d, want 1", st.AmendsDone)
		}
		fills := rec.snapshot()
		if len(fills) != 1 || fills[0].SellOrder != idBase+1 || fills[0].Qty != 40 {
			t.Fatalf("amended order lost time priority: fills %+v", fills)
		}
		if err := p.Broker.CheckConservation(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("reprice re-enters and fills", func(t *testing.T) {
		p, sym, base, rec := newP(t)
		p.ReplayOrdersSingle(manualOps(sym,
			workload.OrderOp{Trader: 1, Kind: workload.OpLimit, ID: idBase + 1, Side: "ask", Price: base + 2, Qty: 50},
			workload.OrderOp{Trader: 0, Kind: workload.OpLimit, ID: idBase + 2, Side: "bid", Price: base - 2, Qty: 50},
			// Reprice the bid through the ask: it loses priority,
			// re-enters, and crosses immediately.
			workload.OrderOp{Trader: 0, Kind: workload.OpAmend, Target: idBase + 2, Price: base + 2, Qty: 50},
		))
		if !p.Quiesce(5 * time.Second) {
			t.Fatal("no quiesce")
		}
		time.Sleep(30 * time.Millisecond)
		st := p.Stats()
		if st.AmendsDone != 1 || st.TradesCompleted != 1 {
			t.Fatalf("amends %d trades %d, want 1/1", st.AmendsDone, st.TradesCompleted)
		}
		fills := rec.snapshot()
		if len(fills) != 1 || fills[0].BuyOrder != idBase+2 || fills[0].Price != base+2 {
			t.Fatalf("reprice fills wrong: %+v", fills)
		}
		if err := p.Broker.CheckConservation(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("foreign amend rejected", func(t *testing.T) {
		p, sym, base, rec := newP(t)
		p.ReplayOrdersSingle(manualOps(sym,
			workload.OrderOp{Trader: 0, Kind: workload.OpLimit, ID: idBase + 1, Side: "ask", Price: base, Qty: 100},
			// Trader 1 tries to shrink trader 0's order before crossing
			// it — the ownership check must ignore the amend.
			workload.OrderOp{Trader: 1, Kind: workload.OpAmend, Target: idBase + 1, Price: base, Qty: 1},
			workload.OrderOp{Trader: 1, Kind: workload.OpLimit, ID: idBase + 2, Side: "bid", Price: base, Qty: 100},
		))
		if !p.Quiesce(5 * time.Second) {
			t.Fatal("no quiesce")
		}
		time.Sleep(30 * time.Millisecond)
		st := p.Stats()
		if st.AmendsDone != 0 {
			t.Fatal("foreign amend was honoured")
		}
		fills := rec.snapshot()
		if len(fills) != 1 || fills[0].Qty != 100 {
			t.Fatalf("order did not fill whole after rejected foreign amend: %+v", fills)
		}
	})
}

// TestShardedAuditsFlow re-runs the step 7–8 choreography on a
// 4-shard pool: audit requests re-dispatch to the shard owning the
// trade's symbol (via the trade event's oshard part), so delegations
// keep flowing when the log is partitioned.
func TestShardedAuditsFlow(t *testing.T) {
	p, err := New(Config{
		Mode:             core.LabelsFreeze,
		NumTraders:       4,
		Universe:         workload.NewUniverse(4),
		Seed:             17,
		BrokerShards:     4,
		AuditSampleEvery: 1,
		OrderTTL:         time.Hour,
		QueueCap:         2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	flow := workload.NewOrderFlow(p.Universe(), workload.FlowConfig{
		Traders:       4,
		AggressionPct: 55,
	}, 17)
	p.ReplayOrders(flow.Take(2500))
	if !p.Quiesce(20 * time.Second) {
		t.Fatal("no quiesce")
	}
	time.Sleep(80 * time.Millisecond)
	st := p.Stats()
	if st.AuditsRequested == 0 {
		t.Fatal("no audits requested")
	}
	deleg := p.Broker.Delegations()
	if deleg == 0 {
		t.Fatal("no delegations issued")
	}
	if deleg*10 < st.AuditsRequested*9 {
		t.Fatalf("only %d of %d audits answered across shards", deleg, st.AuditsRequested)
	}
	if p.Regulator.VolsSeen() == 0 {
		t.Fatal("no volume reports reached the regulator")
	}
}
