package trading

// Gateway ingress backend: token→trader binding, labeled admission
// events (the reject carries the session trader's tag — readable by
// that trader, opaque to everyone else), and the Submit path into the
// dark pool.

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/freeze"
	"repro/internal/workload"
)

// ingressScenario builds a small labeled platform with an ingress and
// an observer unit subscribed to admission events.
func ingressScenario(t *testing.T, mode core.SecurityMode) (*Platform, *Ingress, *core.Unit, uint64, uint64) {
	t.Helper()
	p, err := New(Config{
		Mode:             mode,
		NumTraders:       4,
		Universe:         workload.NewUniverse(2),
		Seed:             19,
		AuditSampleEvery: 1 << 30,
		QueueCap:         1024,
		OrderTTL:         time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	in := p.NewIngress()
	obs := p.Sys.NewUnit("observer", core.UnitConfig{})
	subRej, err := obs.Subscribe(dispatch.MustFilter(dispatch.PartEq("type", "greject")))
	if err != nil {
		t.Fatal(err)
	}
	subSes, err := obs.Subscribe(dispatch.MustFilter(dispatch.PartEq("type", "gsession")))
	if err != nil {
		t.Fatal(err)
	}
	return p, in, obs, subRej, subSes
}

func TestIngressAuthenticate(t *testing.T) {
	_, in, _, _, _ := ingressScenario(t, core.NoSecurity)

	idx, tag, err := in.Authenticate(TraderToken(2))
	if err != nil || idx != 2 || tag != "t-trader-0002" {
		t.Fatalf("authenticate: %d %q %v", idx, tag, err)
	}
	// Second binding of the same trader is refused.
	if _, _, err := in.Authenticate(TraderToken(2)); !errors.Is(err, ErrTraderBound) {
		t.Fatalf("duplicate bind: %v", err)
	}
	// Unknown tokens are refused.
	for _, token := range []string{"", "nobody", "trader-9999", "trader-x", "trader--1"} {
		if _, _, err := in.Authenticate(token); !errors.Is(err, ErrBadToken) {
			t.Fatalf("token %q: %v", token, err)
		}
	}
	// SessionClose releases the binding.
	in.SessionClose(2, tag, "disconnect")
	if _, _, err := in.Authenticate(TraderToken(2)); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
}

// TestGatewayRejectLabelCorrectness is the satellite's core claim:
// the greject event's body is public (the Regulator sees the shed and
// its reason) while the identity part carries the *session trader's*
// tag — trader 1 can read who was throttled (itself), trader 2 and a
// public observer cannot.
func TestGatewayRejectLabelCorrectness(t *testing.T) {
	p, in, obs, subRej, _ := ingressScenario(t, core.LabelsFreeze)

	in.Reject(1, "t-trader-0001", "overflow", 3)
	if in.Rejects() != 3 {
		t.Fatalf("rejects: %d", in.Rejects())
	}

	e, sub, err := obs.GetEvent()
	if err != nil || sub != subRej {
		t.Fatalf("observer delivery: sub %d err %v", sub, err)
	}
	// Public body: visible to the (public) observer.
	bv, err := obs.ReadOne(e, "greject")
	if err != nil {
		t.Fatalf("public body unreadable: %v", err)
	}
	body, ok := bv.Data.(*freeze.Map)
	if !ok || body.GetString("reason") != "overflow" || body.GetInt("count") != 3 {
		t.Fatalf("body: %+v", bv.Data)
	}
	// Identity: opaque to the observer...
	if views, err := obs.ReadPart(e, "gwho"); err == nil && len(views) > 0 {
		t.Fatalf("observer read the protected identity: %+v", views)
	}
	// ...readable by the trader it names (t_1 is in trader 1's input
	// label)...
	views, err := p.Traders[1].unit.ReadPart(e, "gwho")
	if err != nil || len(views) != 1 || views[0].Data != freeze.Value("trader-0001") {
		t.Fatalf("trader 1 identity read: %v %v", views, err)
	}
	// ...and opaque to a different trader.
	if views, err := p.Traders[2].unit.ReadPart(e, "gwho"); err == nil && len(views) > 0 {
		t.Fatalf("trader 2 read trader 1's identity: %+v", views)
	}

	// The Regulator accumulated the shed count from the public body.
	if !p.Quiesce(10 * time.Second) {
		t.Fatal("no quiesce")
	}
	time.Sleep(20 * time.Millisecond)
	if p.Regulator.GatewayRejects() != 3 {
		t.Fatalf("regulator rejects: %d", p.Regulator.GatewayRejects())
	}
}

// TestGatewaySessionCloseEvent: the gsession event mirrors greject's
// labeling, and the Regulator counts it.
func TestGatewaySessionCloseEvent(t *testing.T) {
	p, in, obs, _, subSes := ingressScenario(t, core.LabelsFreeze)

	if _, _, err := in.Authenticate(TraderToken(3)); err != nil {
		t.Fatal(err)
	}
	in.SessionClose(3, "t-trader-0003", "idle-timeout")
	if in.SessionCloses() != 1 {
		t.Fatalf("closes: %d", in.SessionCloses())
	}

	e, sub, err := obs.GetEvent()
	if err != nil || sub != subSes {
		t.Fatalf("observer delivery: sub %d err %v", sub, err)
	}
	bv, err := obs.ReadOne(e, "gsession")
	if err != nil {
		t.Fatalf("public body unreadable: %v", err)
	}
	if body, ok := bv.Data.(*freeze.Map); !ok || body.GetString("reason") != "idle-timeout" {
		t.Fatalf("body: %+v", bv.Data)
	}
	if views, err := obs.ReadPart(e, "gwho"); err == nil && len(views) > 0 {
		t.Fatal("observer read the protected identity")
	}
	views, err := p.Traders[3].unit.ReadPart(e, "gwho")
	if err != nil || len(views) != 1 || views[0].Data != freeze.Value("trader-0003") {
		t.Fatalf("trader 3 identity read: %v %v", views, err)
	}

	if !p.Quiesce(10 * time.Second) {
		t.Fatal("no quiesce")
	}
	time.Sleep(20 * time.Millisecond)
	if p.Regulator.GatewaySessionCloses() != 1 {
		t.Fatalf("regulator session closes: %d", p.Regulator.GatewaySessionCloses())
	}
}

// TestIngressSubmitPlacesFlow: admitted ops enter through the bound
// trader's unit with the full order choreography — they match, and
// the books conserve.
func TestIngressSubmitPlacesFlow(t *testing.T) {
	p, in, _, _, _ := ingressScenario(t, core.LabelsFreeze)

	idx, _, err := in.Authenticate(TraderToken(0))
	if err != nil {
		t.Fatal(err)
	}
	flow := workload.NewOrderFlow(p.Universe(), workload.FlowConfig{Traders: 1, AggressionPct: 60}, 41)
	ops := flow.Take(300)
	if err := in.Submit(idx, ops); err != nil {
		t.Fatal(err)
	}
	if !p.Quiesce(15 * time.Second) {
		t.Fatal("no quiesce")
	}
	time.Sleep(20 * time.Millisecond)
	st := p.Stats()
	if st.OrdersPlaced+st.CancelsRequested+st.AmendsRequested != uint64(len(ops)) {
		t.Fatalf("flow ops recorded: %+v", st)
	}
	if p.Broker.Trades() == 0 {
		t.Fatal("crossing flow produced no trades")
	}
	if err := p.Broker.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if err := p.Broker.ValidateBooks(); err != nil {
		t.Fatal(err)
	}
}

// TestIngressSubmitAfterClose: a closed platform refuses Submit and
// admission events instead of wedging.
func TestIngressSubmitAfterClose(t *testing.T) {
	p, in, _, _, _ := ingressScenario(t, core.NoSecurity)
	idx, tag, err := in.Authenticate(TraderToken(1))
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if err := in.Submit(idx, workload.NewOrderFlow(p.Universe(), workload.FlowConfig{}, 1).Take(4)); !errors.Is(err, ErrPlatformDown) {
		t.Fatalf("submit after close: %v", err)
	}
	if _, _, err := in.Authenticate(TraderToken(2)); !errors.Is(err, ErrPlatformDown) {
		t.Fatalf("auth after close: %v", err)
	}
	// SessionClose still releases the binding without publishing.
	in.SessionClose(idx, tag, "drain")
	if in.SessionCloses() != 0 {
		t.Fatalf("published a close event on a dead platform")
	}
}
