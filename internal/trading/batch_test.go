package trading

// Batch-vs-single equivalence: PublishTicks (the batched replay path)
// must deliver the same tick events in the same per-receiver order as
// publishing each tick with PublishTick. A probe unit subscribed to
// tick events records the sequence numbers it observes; the Regulator
// republishes sampled trades as seq-0 ticks, so the probe filters to
// the exchange's own seq ≥ 1 stream, which is what the two publish
// paths must agree on.

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/freeze"
	"repro/internal/workload"
)

// tickSeqProbe subscribes a unit to tick events on p and returns a
// function that waits for n exchange ticks and reports their seqs in
// delivery order.
func tickSeqProbe(t *testing.T, p *Platform) func(n int) []int64 {
	t.Helper()
	seqs := make(chan int64, 1<<16)
	u := p.Sys.NewUnit("tick-probe", core.UnitConfig{QueueCap: 1 << 14})
	// Subscribe synchronously so no tick published after this call can
	// miss the probe.
	if _, err := u.Subscribe(dispatch.MustFilter(dispatch.PartEq("type", "tick"))); err != nil {
		t.Fatal(err)
	}
	p.Sys.Go(func() {
		for {
			e, _, err := u.GetEvent()
			if err != nil {
				return
			}
			if v, err := u.ReadOne(e, "body"); err == nil {
				if m, ok := v.Data.(*freeze.Map); ok {
					seqs <- m.GetInt("seq")
				}
			}
			u.Recycle(e)
		}
	})
	return func(n int) []int64 {
		var out []int64
		deadline := time.After(10 * time.Second)
		for len(out) < n {
			select {
			case s := <-seqs:
				if s >= 1 { // exchange stream only (republications carry seq 0)
					out = append(out, s)
				}
			case <-deadline:
				t.Fatalf("probe saw %d of %d exchange ticks", len(out), n)
			}
		}
		return out
	}
}

func TestPublishTicksMatchesSinglePublish(t *testing.T) {
	const n = 500
	for _, mode := range []core.SecurityMode{core.NoSecurity, core.LabelsFreeze, core.LabelsClone} {
		t.Run(mode.String(), func(t *testing.T) {
			run := func(batch bool) []int64 {
				p, err := New(Config{Mode: mode, NumTraders: 8, Seed: 11})
				if err != nil {
					t.Fatal(err)
				}
				defer p.Close()
				wait := tickSeqProbe(t, p)
				ticks := workload.NewTrace(p.Universe(), 5).Take(n)
				if batch {
					p.Exchange.PublishTicks(ticks)
				} else {
					for i := range ticks {
						p.Exchange.PublishTick(&ticks[i])
					}
				}
				if got := p.Exchange.Published(); got != n {
					t.Fatalf("published %d of %d", got, n)
				}
				return wait(n)
			}
			single := run(false)
			batched := run(true)
			if len(single) != len(batched) {
				t.Fatalf("delivery counts differ: %d vs %d", len(single), len(batched))
			}
			for i := range single {
				if single[i] != batched[i] {
					t.Fatalf("order diverges at %d: single=%d batched=%d", i, single[i], batched[i])
				}
			}
			// The single-publish path is FIFO per receiver, so both
			// streams must equal the publish order outright.
			for i, s := range batched {
				if s != int64(i+1) {
					t.Fatalf("batched stream out of publish order at %d: %d", i, s)
				}
			}
		})
	}
}
