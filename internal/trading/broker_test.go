package trading

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestTradeLogRingAcrossWrap pins the O(1) ring-indexed audit window:
// storing trade N evicts exactly trade N−maxTradeLog, lookups answer
// correctly on both sides of the wrap boundary, and consuming a record
// removes it without disturbing its slot-sharing successors.
func TestTradeLogRingAcrossWrap(t *testing.T) {
	var log tradeLog
	const total = maxTradeLog + maxTradeLog/2
	var evictions []int64
	for id := int64(1); id <= total; id++ {
		old, ok := log.put(tradeRecord{id: id, qty: id * 10})
		if ok {
			evictions = append(evictions, old.id)
			if old.id != id-maxTradeLog {
				t.Fatalf("storing %d evicted %d, want %d", id, old.id, id-maxTradeLog)
			}
		} else if id > maxTradeLog {
			t.Fatalf("storing %d evicted nothing past the window", id)
		}
	}
	if len(evictions) != total-maxTradeLog {
		t.Fatalf("%d evictions, want %d", len(evictions), total-maxTradeLog)
	}
	// Audit responses across the boundary: everything inside the
	// window answers, everything evicted does not.
	for _, id := range []int64{1, 100, total - maxTradeLog} {
		if log.get(id) != nil {
			t.Fatalf("evicted trade %d still answers audits", id)
		}
	}
	for _, id := range []int64{total - maxTradeLog + 1, maxTradeLog, maxTradeLog + 1, total} {
		rec := log.get(id)
		if rec == nil || rec.id != id || rec.qty != id*10 {
			t.Fatalf("live trade %d lost across wrap: %+v", id, rec)
		}
	}
	// Consume one audited trade: it stops answering, neighbours stay.
	log.consume(maxTradeLog + 7)
	if log.get(maxTradeLog+7) != nil {
		t.Fatal("consumed trade still answers")
	}
	if log.get(maxTradeLog+8) == nil {
		t.Fatal("consume disturbed a neighbour")
	}
	// A consumed slot must not report an eviction when overwritten.
	if _, ok := log.put(tradeRecord{id: maxTradeLog + 7 + maxTradeLog}); ok {
		t.Fatal("overwriting a consumed slot reported an eviction")
	}
	// IDs the broker never issued — including negative ones a crafted
	// audit request could carry — must miss, not panic the ring index.
	for _, id := range []int64{-1, -maxTradeLog - 5, 0} {
		if log.get(id) != nil {
			t.Fatalf("bogus trade id %d answered", id)
		}
		log.consume(id)
	}
}

func TestBrokerPrivilegeHygiene(t *testing.T) {
	// After a full run, the broker's privilege sets must stay bounded:
	// per-order grants are renounced as orders complete and trades age
	// out of the audit window.
	p := runScenario(t, core.LabelsFreeze, 2, 900, func(c *Config) {
		onePair(c)
		c.AuditSampleEvery = 1
	})
	st := p.Stats()
	if st.TradesCompleted < 10 {
		t.Fatalf("too few trades (%d) to exercise hygiene", st.TradesCompleted)
	}
	// The book instance is registered with the system; find it via
	// accounting and check its label state indirectly: the platform
	// should still be responsive to a fresh wave (no quadratic stall).
	trace := workload.NewTrace(p.Universe(), 321)
	start := time.Now()
	p.Replay(trace.Take(300))
	if !p.Quiesce(10 * time.Second) {
		t.Fatal("second wave did not quiesce")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("second wave implausibly slow: privilege accumulation?")
	}
}

func TestMonitorDampsFeedback(t *testing.T) {
	// With auditing on every trade (maximal feedback), matches must stay
	// close to the genuine trigger count instead of cascading.
	p := runScenario(t, core.LabelsFreeze, 2, 800, func(c *Config) {
		onePair(c)
		c.AuditSampleEvery = 1
	})
	st := p.Stats()
	// Genuine triggers: 800 ticks on one pair = 400 B-ticks = 40 spikes,
	// two monitors → ≈80 genuine matches. Allow modest feedback slack.
	if st.MatchesEmitted > 200 {
		t.Fatalf("feedback cascade: %d matches for ~80 genuine triggers", st.MatchesEmitted)
	}
	if st.MatchesEmitted < 40 {
		t.Fatalf("damping too aggressive: %d matches", st.MatchesEmitted)
	}
}

func TestAccountingCoversTradingUnits(t *testing.T) {
	p := runScenario(t, core.LabelsFreeze, 2, 300, onePair)
	acc := p.Sys.Accounting()
	// exchange + broker(+instance) + regulator(+instances) + 2 traders
	// + 2 monitors + bootstrap at least.
	if len(acc) < 8 {
		t.Fatalf("accounting covers %d units", len(acc))
	}
	var exchangeSeen bool
	for _, u := range acc {
		if u.Unit == "stock-exchange" {
			exchangeSeen = true
			if u.Published == 0 || u.APICalls == 0 {
				t.Fatalf("exchange account empty: %+v", u)
			}
		}
	}
	if !exchangeSeen {
		t.Fatal("exchange missing from accounting")
	}
}

func TestNoTradesAcrossDistinctPairs(t *testing.T) {
	// Traders on different pairs never cross: the dark pool matches per
	// symbol only.
	cfg := Config{
		Mode:       core.LabelsFreeze,
		NumTraders: 2,
		Universe:   workload.NewUniverse(2),
		Seed:       11,
		// Pin one trader per pair so the premise can never silently
		// degrade into a same-pair (and therefore vacuous) run.
		PairAssignment: []int{0, 1},
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Traders[0].Pair() == p.Traders[1].Pair() {
		t.Fatalf("PairAssignment ignored: both traders on %v", p.Traders[0].Pair())
	}
	trace := workload.NewTrace(p.Universe(), 99)
	p.Replay(trace.Take(400))
	p.Quiesce(5 * time.Second)
	if got := p.Stats().TradesCompleted; got != 0 {
		t.Fatalf("cross-pair trades: %d", got)
	}
}
