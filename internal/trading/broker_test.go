package trading

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestOrderBookExpiry(t *testing.T) {
	bk := &book{
		bids: map[string][]*restingOrder{},
		asks: map[string][]*restingOrder{},
	}
	old := time.Now().Add(-2 * orderTTL).UnixNano()
	fresh := time.Now().UnixNano()
	bk.bids["S"] = []*restingOrder{
		{id: 1, entered: old},
		{id: 2, entered: fresh},
	}
	bk.asks["S"] = []*restingOrder{{id: 3, entered: old}}
	expire(bk, "S")
	if len(bk.bids["S"]) != 1 || bk.bids["S"][0].id != 2 {
		t.Fatalf("stale bid not expired: %+v", bk.bids["S"])
	}
	if len(bk.asks["S"]) != 0 {
		t.Fatal("stale ask not expired")
	}
}

func TestBrokerPrivilegeHygiene(t *testing.T) {
	// After a full run, the broker's privilege sets must stay bounded:
	// per-order grants are renounced as orders complete and trades age
	// out of the audit window.
	p := runScenario(t, core.LabelsFreeze, 2, 900, func(c *Config) {
		onePair(c)
		c.AuditSampleEvery = 1
	})
	st := p.Stats()
	if st.TradesCompleted < 10 {
		t.Fatalf("too few trades (%d) to exercise hygiene", st.TradesCompleted)
	}
	// The book instance is registered with the system; find it via
	// accounting and check its label state indirectly: the platform
	// should still be responsive to a fresh wave (no quadratic stall).
	trace := workload.NewTrace(p.Universe(), 321)
	start := time.Now()
	p.Replay(trace.Take(300))
	if !p.Quiesce(10 * time.Second) {
		t.Fatal("second wave did not quiesce")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("second wave implausibly slow: privilege accumulation?")
	}
}

func TestMonitorDampsFeedback(t *testing.T) {
	// With auditing on every trade (maximal feedback), matches must stay
	// close to the genuine trigger count instead of cascading.
	p := runScenario(t, core.LabelsFreeze, 2, 800, func(c *Config) {
		onePair(c)
		c.AuditSampleEvery = 1
	})
	st := p.Stats()
	// Genuine triggers: 800 ticks on one pair = 400 B-ticks = 40 spikes,
	// two monitors → ≈80 genuine matches. Allow modest feedback slack.
	if st.MatchesEmitted > 200 {
		t.Fatalf("feedback cascade: %d matches for ~80 genuine triggers", st.MatchesEmitted)
	}
	if st.MatchesEmitted < 40 {
		t.Fatalf("damping too aggressive: %d matches", st.MatchesEmitted)
	}
}

func TestAccountingCoversTradingUnits(t *testing.T) {
	p := runScenario(t, core.LabelsFreeze, 2, 300, onePair)
	acc := p.Sys.Accounting()
	// exchange + broker(+instance) + regulator(+instances) + 2 traders
	// + 2 monitors + bootstrap at least.
	if len(acc) < 8 {
		t.Fatalf("accounting covers %d units", len(acc))
	}
	var exchangeSeen bool
	for _, u := range acc {
		if u.Unit == "stock-exchange" {
			exchangeSeen = true
			if u.Published == 0 || u.APICalls == 0 {
				t.Fatalf("exchange account empty: %+v", u)
			}
		}
	}
	if !exchangeSeen {
		t.Fatal("exchange missing from accounting")
	}
}

func TestNoTradesAcrossDistinctPairs(t *testing.T) {
	// Traders on different pairs never cross: the dark pool matches per
	// symbol only.
	cfg := Config{
		Mode:       core.LabelsFreeze,
		NumTraders: 2,
		Universe:   workload.NewUniverse(2),
		Seed:       11,
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Traders[0].Pair() == p.Traders[1].Pair() {
		t.Skip("assignment put both traders on one pair")
	}
	trace := workload.NewTrace(p.Universe(), 99)
	p.Replay(trace.Take(400))
	p.Quiesce(5 * time.Second)
	if got := p.Stats().TradesCompleted; got != 0 {
		t.Fatalf("cross-pair trades: %d", got)
	}
}
