package trading

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/freeze"
	"repro/internal/workload"
)

// Event vocabulary added by the ingress gateway (admission decisions
// are events, never silent):
//
//	greject   type="greject",  greject{reason,count} public,
//	          gwho=<trader>                                    S={t_i}
//	gsession  type="gsession", gsession{reason} public,
//	          gwho=<trader>                                    S={t_i}
//
// The body parts are public — the Regulator (and anyone else) can see
// that admission control shed load and why. The identity part is
// protected by the shed trader's durable strategy tag t_i: which
// trader was throttled is exactly as confidential as the trader's
// order flow itself. Raising secrecy needs no privilege, so the
// gateway unit can protect the part without holding t_i; reading it
// requires t_i in the reader's input label, which only trader i (and
// units it delegates to) can raise.

// Errors returned by Ingress.Authenticate.
var (
	ErrBadToken     = errors.New("trading: unknown trader token")
	ErrTraderBound  = errors.New("trading: trader already has a live session")
	ErrPlatformDown = errors.New("trading: platform closed")
)

// Ingress adapts a Platform to the gateway.Backend interface (it
// implements it without the gateway package importing trading, or
// vice versa): sessions authenticate as traders, admitted orders
// enter through the trader's own unit and tag choreography, and
// admission decisions become labeled events.
type Ingress struct {
	p    *Platform
	unit *core.Unit

	mu    sync.Mutex
	bound map[int]bool

	rejects counter // shed orders (sum of reject-event counts)
	closes  counter // session-close events published
}

// TraderToken is the auth token that binds a gateway session to the
// given trader index.
func TraderToken(idx int) string { return fmt.Sprintf("trader-%04d", idx) }

// NewIngress builds the platform's gateway backend. The ingress unit
// publishes with a public output label; identity parts are raised to
// the trader's tag per part.
func (p *Platform) NewIngress() *Ingress {
	return &Ingress{
		p:     p,
		unit:  p.Sys.NewUnit("gateway", core.UnitConfig{}),
		bound: make(map[int]bool),
	}
}

// Rejects reports shed orders for which a labeled greject event was
// published (the gateway side counts sheds; the two must agree).
func (in *Ingress) Rejects() uint64 { return in.rejects.load() }

// SessionCloses reports gsession events published.
func (in *Ingress) SessionCloses() uint64 { return in.closes.load() }

// Authenticate resolves a trader token ("trader-0007") to its index
// and tag name, binding the trader to the calling session. A trader
// has at most one live session: the trader unit serializes its order
// flow, so a second session would interleave two socket streams
// through one principal.
func (in *Ingress) Authenticate(token string) (int, string, error) {
	if in.p.closed.Load() {
		return 0, "", ErrPlatformDown
	}
	num, ok := strings.CutPrefix(token, "trader-")
	if !ok {
		return 0, "", ErrBadToken
	}
	idx, err := strconv.Atoi(num)
	if err != nil || idx < 0 || idx >= len(in.p.Traders) || in.p.Traders[idx].name != token {
		return 0, "", ErrBadToken
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.bound[idx] {
		return 0, "", fmt.Errorf("%w: %s", ErrTraderBound, token)
	}
	in.bound[idx] = true
	return idx, "t-" + token, nil
}

// Submit publishes one run of admitted ops through the trader's unit
// (the full tag/privilege choreography of buildOrderEvent). It may
// block on dispatcher backpressure — that pressure lands on the
// gateway's per-session submitter, whose bounded ingress queue then
// sheds with labeled rejects; the broker's matching path never waits
// on a socket.
func (in *Ingress) Submit(trader int, ops []workload.OrderOp) error {
	if in.p.closed.Load() {
		return ErrPlatformDown
	}
	in.p.Traders[trader%len(in.p.Traders)].placeFlow(ops, true)
	return nil
}

// Reject publishes one labeled greject event covering n shed orders.
func (in *Ingress) Reject(trader int, tag, reason string, n int) {
	if n <= 0 {
		return
	}
	if in.publishAdmission(trader, "greject",
		freeze.MapOf("reason", reason, "count", int64(n))) {
		in.rejects.add(uint64(n))
	}
}

// SessionClose unbinds the trader and publishes a labeled gsession
// event. It is also the release path for a bind whose session never
// went live (duplicate session ID): unbinding must happen even when
// the platform is already closed.
func (in *Ingress) SessionClose(trader int, tag, reason string) {
	in.mu.Lock()
	delete(in.bound, trader)
	in.mu.Unlock()
	if in.publishAdmission(trader, "gsession", freeze.MapOf("reason", reason)) {
		in.closes.inc()
	}
}

// publishAdmission publishes one admission event: public type and
// body, trader identity under the trader's strategy tag.
func (in *Ingress) publishAdmission(trader int, kind string, body *freeze.Map) bool {
	if in.p.closed.Load() {
		return false
	}
	t := in.p.Traders[trader%len(in.p.Traders)]
	e := in.unit.CreateEvent()
	if in.unit.AddPart(e, noTags, noTags, "type", kind) != nil {
		return false
	}
	if in.unit.AddPart(e, noTags, noTags, kind, body) != nil {
		return false
	}
	if in.unit.AddPart(e, setOf(t.tag), noTags, "gwho", t.name) != nil {
		return false
	}
	return in.unit.Publish(e) == nil
}
