package trading

// Load accounting for the rebalancing planner (DESIGN-dispatch.md §15):
// per-shard and per-symbol activity rates measured on the matching path
// with the same zero-alloc discipline as the compiled interceptor
// plans. The hot path only bumps counters that already sit under locks
// the path holds — per-shard routed orders as one atomic add at the
// trader's routing point, per-symbol fills/orders as plain int64 adds
// under the shard's b.mu — and every piece of rate math (EWMA decay,
// imbalance ratios) runs at sample time on the planner's clock, never
// on the matching thread.
//
// Rates are exponentially-weighted moving averages with a configurable
// time constant: alpha = 1 - exp(-dt/tau), rate += alpha*(delta/dt -
// rate). The EWMA smooths the burstiness of replayed flow so one hot
// batch does not read as a hot shard; the planner's hysteresis
// argument (§15) leans on that smoothing.

import (
	"math"
	"sync"
	"time"
)

// defaultEWMATau is the rate smoothing time constant: long enough to
// ride out one replay burst, short enough that a genuinely migrated
// hot symbol stops charging its old shard within a few planner ticks.
const defaultEWMATau = 500 * time.Millisecond

// ShardLoad is one broker shard's load sample.
type ShardLoad struct {
	Shard int
	// Fills and Routed are the cumulative counters behind the rates:
	// fills matched by this shard, and orders the routing layer stamped
	// for it (counted at the trader's route resolution, so parked
	// publishes during a migration freeze count when they actually
	// route).
	Fills  uint64
	Routed uint64
	// FillRate and RouteRate are the EWMA rates, per second.
	FillRate  float64
	RouteRate float64
	// QueueLen is the shard's managed-instance ingress queue depth at
	// sample time — the direct back-pressure signal (0 until the shard
	// has processed its first delivery).
	QueueLen int
}

// SymbolLoad is one symbol's load sample, attributed to the shard that
// currently owns it.
type SymbolLoad struct {
	Symbol string
	Shard  int
	// Fills and Orders are cumulative counts held by the owning
	// shard's state. They travel with neither checkpoint nor hand-off
	// blob: a migration restarts the symbol's counters at zero on the
	// destination (the sampler treats the drop as a restart, never a
	// negative delta).
	Fills  int64
	Orders int64
	// FillRate and OrderRate are the EWMA rates, per second.
	FillRate  float64
	OrderRate float64
}

// LoadSnapshot is one poll of the platform's load state — the
// planner's entire world view, also exposed to tests and operators
// via Platform.SampleLoad.
type LoadSnapshot struct {
	At time.Time
	// Interval is the time since the previous sample (0 on the first).
	Interval time.Duration
	// Samples counts how many times the tracker has sampled — the
	// planner's warm-up gate reads it.
	Samples uint64
	Shards  []ShardLoad
	Symbols []SymbolLoad
}

// TotalFillRate sums the per-shard EWMA fill rates.
func (s *LoadSnapshot) TotalFillRate() float64 {
	var t float64
	for i := range s.Shards {
		t += s.Shards[i].FillRate
	}
	return t
}

// Imbalance returns the hottest shard by EWMA fill rate and the
// imbalance ratio max/mean — 1.0 is perfectly balanced, nshards is one
// shard taking everything. A zero mean (no fills yet) reports ratio 0.
func (s *LoadSnapshot) Imbalance() (hot int, ratio float64) {
	if len(s.Shards) == 0 {
		return 0, 0
	}
	var sum, max float64
	hot = s.Shards[0].Shard
	for i := range s.Shards {
		r := s.Shards[i].FillRate
		sum += r
		if r > max {
			max, hot = r, s.Shards[i].Shard
		}
	}
	mean := sum / float64(len(s.Shards))
	if mean <= 0 {
		return hot, 0
	}
	return hot, max / mean
}

// symCum is one symbol's last-sampled cumulative counts.
type symCum struct {
	fills, orders int64
}

// symEWMA is one symbol's smoothed rates.
type symEWMA struct {
	fillRate, orderRate float64
}

// loadTracker owns the EWMA state behind SampleLoad. One mutex
// serialises samplers (the planner and any polling test); nothing here
// is touched by the matching path.
type loadTracker struct {
	mu      sync.Mutex
	tau     time.Duration
	samples uint64
	lastAt  time.Time

	lastFills  []uint64 // per shard
	lastRouted []uint64
	fillRate   []float64
	routeRate  []float64

	lastSym map[string]symCum
	rateSym map[string]symEWMA
}

func newLoadTracker(nshards int, tau time.Duration) *loadTracker {
	if tau <= 0 {
		tau = defaultEWMATau
	}
	return &loadTracker{
		tau:        tau,
		lastFills:  make([]uint64, nshards),
		lastRouted: make([]uint64, nshards),
		fillRate:   make([]float64, nshards),
		routeRate:  make([]float64, nshards),
		lastSym:    make(map[string]symCum),
		rateSym:    make(map[string]symEWMA),
	}
}

// ewma folds one interval's observed rate into the smoothed rate.
func ewma(rate, observed, alpha float64) float64 {
	return rate + alpha*(observed-rate)
}

// counterDelta handles cumulative counters that can restart at zero
// (a migrated symbol's counts reset on the destination shard): a
// shrinking counter reads as a restart, charging only the new count.
func counterDelta(cum, last int64) int64 {
	if cum < last {
		return cum
	}
	return cum - last
}

// SampleLoad polls every shard's counters and queue depth, folds them
// into the EWMA rates and returns the snapshot. Safe to call from any
// goroutine; samplers serialise on the tracker's mutex. The first
// sample establishes the baseline (rates 0); rates converge over a few
// tau intervals of steady flow.
func (p *Platform) SampleLoad() LoadSnapshot {
	return p.load.sample(p, time.Now())
}

func (lt *loadTracker) sample(p *Platform, now time.Time) LoadSnapshot {
	lt.mu.Lock()
	defer lt.mu.Unlock()

	var dt time.Duration
	if !lt.lastAt.IsZero() {
		dt = now.Sub(lt.lastAt)
	}
	lt.lastAt = now
	lt.samples++
	alpha, secs := 0.0, dt.Seconds()
	if secs > 0 {
		alpha = 1 - math.Exp(-secs/lt.tau.Seconds())
	}

	snap := LoadSnapshot{
		At:       now,
		Interval: dt,
		Samples:  lt.samples,
		Shards:   make([]ShardLoad, len(p.Broker.shards)),
	}
	for i, b := range p.Broker.shards {
		fills, routed := b.trades.load(), b.routedTo.load()
		if alpha > 0 {
			lt.fillRate[i] = ewma(lt.fillRate[i],
				float64(counterDelta(int64(fills), int64(lt.lastFills[i])))/secs, alpha)
			lt.routeRate[i] = ewma(lt.routeRate[i],
				float64(counterDelta(int64(routed), int64(lt.lastRouted[i])))/secs, alpha)
		}
		lt.lastFills[i], lt.lastRouted[i] = fills, routed
		snap.Shards[i] = ShardLoad{
			Shard:     b.shard,
			Fills:     fills,
			Routed:    routed,
			FillRate:  lt.fillRate[i],
			RouteRate: lt.routeRate[i],
			QueueLen:  b.QueueLen(),
		}
	}

	// Per-symbol counts live with the owning shard's state; collect
	// them under each shard's b.mu, then fold. Symbols mid-migration
	// are frozen (no flow), so missing a beat there is harmless.
	cur := make(map[string]symCum, len(lt.lastSym))
	shardOf := make(map[string]int, len(lt.lastSym))
	for _, b := range p.Broker.shards {
		b.symbolLoadCounts(func(symbol string, fills, orders int64) {
			c := cur[symbol] // a symbol lives on one shard; no merge
			c.fills += fills
			c.orders += orders
			cur[symbol] = c
			shardOf[symbol] = b.shard
		})
	}
	for sym, c := range cur {
		last := lt.lastSym[sym]
		r := lt.rateSym[sym]
		if alpha > 0 {
			r.fillRate = ewma(r.fillRate, float64(counterDelta(c.fills, last.fills))/secs, alpha)
			r.orderRate = ewma(r.orderRate, float64(counterDelta(c.orders, last.orders))/secs, alpha)
		}
		lt.lastSym[sym] = c
		lt.rateSym[sym] = r
		snap.Symbols = append(snap.Symbols, SymbolLoad{
			Symbol:    sym,
			Shard:     shardOf[sym],
			Fills:     c.fills,
			Orders:    c.orders,
			FillRate:  r.fillRate,
			OrderRate: r.orderRate,
		})
	}
	return snap
}

// QueueLen reports the shard's managed-instance ingress queue depth —
// 0 until the instance has handled its first delivery (the pointer is
// captured on the delivery path).
func (b *Broker) QueueLen() int {
	if u := b.inst.Load(); u != nil {
		return u.QueueLen()
	}
	return 0
}

// RoutedOrders reports how many order publications the routing layer
// stamped for this shard (counted at route resolution, before
// delivery).
func (b *Broker) RoutedOrders() uint64 { return b.routedTo.load() }

// symbolLoadCounts visits every symbol this shard holds state for with
// its cumulative fill and order counts, under b.mu.
func (b *Broker) symbolLoadCounts(visit func(symbol string, fills, orders int64)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.bk == nil {
		return
	}
	for sym, sb := range b.bk.syms {
		visit(sym, sb.fills, sb.orders)
	}
}
