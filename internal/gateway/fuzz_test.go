package gateway

import (
	"bufio"
	"bytes"
	"testing"

	"repro/internal/workload"
)

// FuzzWireDecode feeds arbitrary bytes through the full ingress
// decode path — frame stripping, then message decoding — and demands
// a typed error or a valid message, never a panic. Valid messages
// must re-encode to a decodable frame (decode∘encode is stable), and
// valid orders must convert to workload ops without violating the
// book's preconditions (non-negative price/qty, a bounded symbol).
func FuzzWireDecode(f *testing.F) {
	// Seed corpus: every message type, plus truncations and bit flips
	// (testdata/fuzz/FuzzWireDecode holds committed seeds too).
	for _, m := range []any{
		&Hello{Proto: ProtoVersion, Session: 3, Token: "trader-0001"},
		&HelloOK{Session: 3, Trader: 1, LastSeq: 10},
		&Order{Seq: 1, Kind: workload.OpLimit, Side: 0, ID: 1 << 40, Price: 9900, Qty: 200, Symbol: "SYM0000"},
		&Order{Seq: 2, Kind: workload.OpCancel, Target: 1 << 40, Symbol: "SYM0000"},
		&Ping{Nonce: 1}, &Pong{Nonce: 1}, &Bye{},
		&Ack{Seq: 5}, &Reject{Seq: 6, Code: RejectRate, Tag: "t-trader-0001"},
		&Close{Code: RejectDrain, Reason: "drain"},
	} {
		frame := EncodeMsg(nil, m)
		f.Add(frame)
		f.Add(frame[:len(frame)/2])
		flipped := append([]byte{}, frame...)
		flipped[len(flipped)-1] ^= 0xff
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte{0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		payload, err := readFrame(br, nil)
		if err != nil {
			return // typed framing/IO fault: fine
		}
		m, err := DecodeMsg(payload)
		if err != nil {
			return // typed decode fault: fine
		}
		// A decoded message must survive re-encoding.
		re := EncodeMsg(nil, m)
		rePayload, err := readFrame(bufio.NewReader(bytes.NewReader(re)), nil)
		if err != nil {
			t.Fatalf("re-encoded frame unreadable: %v", err)
		}
		if _, err := DecodeMsg(rePayload); err != nil {
			t.Fatalf("re-encoded message undecodable: %v", err)
		}
		// A decoded order must satisfy the book's preconditions.
		if o, ok := m.(*Order); ok {
			op := o.Op()
			if op.Price < 0 || op.Qty < 0 {
				t.Fatalf("decoded order with negative price/qty: %+v", op)
			}
			if len(op.Symbol) > maxString {
				t.Fatalf("decoded order with oversized symbol (%d bytes)", len(op.Symbol))
			}
			if op.Side != "bid" && op.Side != "ask" && op.Side != "" {
				t.Fatalf("decoded order with side %q", op.Side)
			}
		}
	})
}
