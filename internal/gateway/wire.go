// Package gateway implements the ingress edge of the trading
// platform: a TCP server speaking a compact, CRC-framed binary order
// protocol, with per-session authentication, token-bucket rate
// limits, bounded ingress queues that shed to labeled reject events,
// idle/slow-writer eviction and graceful drain — plus the matching
// load-generator client with retry, capped exponential backoff and
// reconnect-with-resync.
//
// The framing discipline mirrors internal/journal: every frame is
// [u32 len | u32 crc32(payload) | payload], little-endian, with a
// hard length bound so a corrupt length word is damage, not an
// allocation. The payload's first byte is the message type. Decoding
// arbitrary bytes yields a typed error or a valid message — never a
// panic (FuzzWireDecode pins this).
//
// Admission control is evented, never silent: an order the gateway
// cannot admit (rate limit, ingress overflow, drain, malformed) is
// answered with a wire Reject AND handed to the Backend so the
// platform can publish a reject event labeled with the session
// trader's tag. The matching path never waits on a socket; the
// gateway waits on the matching path (DESIGN-dispatch.md §11).
package gateway

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/workload"
)

// Wire protocol constants.
const (
	// ProtoVersion is the protocol revision a Hello proposes.
	ProtoVersion = 1

	// frameHdrLen is u32 len + u32 crc.
	frameHdrLen = 8
	// MaxFrame bounds one frame payload; a larger length word is
	// damage, not data.
	MaxFrame = 1 << 16
	// maxString bounds any string field inside a message.
	maxString = 256
)

// Message types. Client→server types are low, server→client high.
const (
	MsgHello   byte = 0x01
	MsgOrder   byte = 0x02
	MsgPing    byte = 0x03
	MsgBye     byte = 0x04
	MsgHelloOK byte = 0x81
	MsgAck     byte = 0x82
	MsgReject  byte = 0x83
	MsgPong    byte = 0x84
	MsgClose   byte = 0x85
)

// Typed decode faults. Every malformed input maps to one of these
// (possibly wrapped with context); decoding never panics.
var (
	// ErrBadFrame marks a frame header whose length word is outside
	// [1, MaxFrame].
	ErrBadFrame = errors.New("gateway: bad frame length")
	// ErrBadCRC marks a payload that does not match its frame CRC.
	ErrBadCRC = errors.New("gateway: frame CRC mismatch")
	// ErrShortMsg marks a payload that ends before its fields do.
	ErrShortMsg = errors.New("gateway: truncated message")
	// ErrBadMsg marks an unknown message type or an invalid field.
	ErrBadMsg = errors.New("gateway: malformed message")
)

// RejectCode classifies one admission refusal; it travels on the wire
// and, stringified, in the labeled reject event.
type RejectCode uint8

const (
	// RejectAuth: the session is not authenticated (or the token was
	// refused) — auth-before-first-order is enforced.
	RejectAuth RejectCode = iota + 1
	// RejectRate: the session's token bucket is empty.
	RejectRate
	// RejectOverflow: the session's bounded ingress queue is full.
	RejectOverflow
	// RejectProto: the order was malformed.
	RejectProto
	// RejectDrain: the gateway is draining and admits no new orders.
	RejectDrain
	// RejectDuplicate: the session ID or trader is already bound.
	RejectDuplicate
)

// String names the code for reject events and logs.
func (c RejectCode) String() string {
	switch c {
	case RejectAuth:
		return "auth"
	case RejectRate:
		return "rate"
	case RejectOverflow:
		return "overflow"
	case RejectProto:
		return "proto"
	case RejectDrain:
		return "drain"
	case RejectDuplicate:
		return "duplicate"
	default:
		return fmt.Sprintf("reject(%d)", uint8(c))
	}
}

// Hello opens a session: the client proposes a protocol version, an
// optional session ID to resume (0 = assign fresh) and an auth token
// binding the connection to a trader.
type Hello struct {
	Proto   uint8
	Session uint64
	Token   string
}

// HelloOK confirms a session. LastSeq is the server's processed
// high-water mark for the session — a reconnecting client resumes
// sending after it (resync).
type HelloOK struct {
	Session uint64
	Trader  uint32
	LastSeq uint64
}

// Order carries one order operation. Seq is the session's strictly
// increasing operation sequence; cumulative Acks and per-op Rejects
// refer to it.
type Order struct {
	Seq    uint64
	Kind   workload.OrderKind
	Side   uint8 // 0 = bid, 1 = ask, 2 = none (cancels/amends: the book derives it from the target)
	ID     int64
	Target int64
	Price  int64
	Qty    int64
	Symbol string
}

// Wire encodings of Order.Side.
const (
	SideBid  uint8 = 0
	SideAsk  uint8 = 1
	SideNone uint8 = 2
)

// Ping/Pong carry an opaque nonce.
type Ping struct{ Nonce uint64 }

// Pong answers a Ping.
type Pong struct{ Nonce uint64 }

// Bye announces a graceful client-side session end.
type Bye struct{}

// Ack acknowledges processing (admission or rejection) of every
// operation with sequence ≤ Seq.
type Ack struct{ Seq uint64 }

// Reject refuses one operation. Tag is the session trader's tag name:
// the wire image of the labeled reject event, so the client can see
// the admission decision was attributed to its principal, not to the
// gateway.
type Reject struct {
	Seq  uint64
	Code RejectCode
	Tag  string
}

// Close announces the server is ending the session (drain, idle
// timeout, eviction, protocol damage).
type Close struct {
	Code   RejectCode
	Reason string
}

// Op converts a wire order to a workload op. The wire Seq rides along
// so acks can be derived after submission.
func (o *Order) Op() workload.OrderOp {
	var side string
	switch o.Side {
	case SideBid:
		side = "bid"
	case SideAsk:
		side = "ask"
	}
	return workload.OrderOp{
		Seq:    o.Seq,
		Kind:   o.Kind,
		ID:     o.ID,
		Target: o.Target,
		Symbol: o.Symbol,
		Side:   side,
		Price:  o.Price,
		Qty:    o.Qty,
	}
}

// OrderFromOp builds the wire order for a workload op, stamping the
// given session sequence.
func OrderFromOp(op *workload.OrderOp, seq uint64) Order {
	var side uint8
	switch op.Side {
	case "bid":
		side = SideBid
	case "ask":
		side = SideAsk
	default:
		side = SideNone
	}
	return Order{
		Seq:    seq,
		Kind:   op.Kind,
		Side:   side,
		ID:     op.ID,
		Target: op.Target,
		Price:  op.Price,
		Qty:    op.Qty,
		Symbol: op.Symbol,
	}
}

// --- Encoding ---------------------------------------------------------

// appendFrame wraps a payload in the frame header.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func appendI64(dst []byte, v int64) []byte { return appendU64(dst, uint64(v)) }

func appendString(dst []byte, s string) []byte {
	if len(s) > maxString {
		s = s[:maxString]
	}
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], uint16(len(s)))
	dst = append(dst, b[:]...)
	return append(dst, s...)
}

// EncodeMsg appends the framed encoding of a message to dst. It
// accepts exactly the message structs of this package.
func EncodeMsg(dst []byte, m any) []byte {
	var p []byte
	switch v := m.(type) {
	case *Hello:
		p = append(p, MsgHello, v.Proto)
		p = appendU64(p, v.Session)
		p = appendString(p, v.Token)
	case *HelloOK:
		p = append(p, MsgHelloOK)
		p = appendU64(p, v.Session)
		p = appendU64(p, uint64(v.Trader))
		p = appendU64(p, v.LastSeq)
	case *Order:
		p = append(p, MsgOrder)
		p = appendU64(p, v.Seq)
		p = append(p, byte(v.Kind), v.Side)
		p = appendI64(p, v.ID)
		p = appendI64(p, v.Target)
		p = appendI64(p, v.Price)
		p = appendI64(p, v.Qty)
		p = appendString(p, v.Symbol)
	case *Ping:
		p = append(p, MsgPing)
		p = appendU64(p, v.Nonce)
	case *Pong:
		p = append(p, MsgPong)
		p = appendU64(p, v.Nonce)
	case *Bye:
		p = append(p, MsgBye)
	case *Ack:
		p = append(p, MsgAck)
		p = appendU64(p, v.Seq)
	case *Reject:
		p = append(p, MsgReject)
		p = appendU64(p, v.Seq)
		p = append(p, byte(v.Code))
		p = appendString(p, v.Tag)
	case *Close:
		p = append(p, MsgClose, byte(v.Code))
		p = appendString(p, v.Reason)
	default:
		panic(fmt.Sprintf("gateway: EncodeMsg of unknown type %T", m))
	}
	return appendFrame(dst, p)
}

// --- Decoding ---------------------------------------------------------

// cursor is a bounds-checked reader over one payload.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) u8() uint8 {
	if c.err != nil || c.off+1 > len(c.b) {
		c.fail()
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) u64() uint64 {
	if c.err != nil || c.off+8 > len(c.b) {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *cursor) i64() int64 { return int64(c.u64()) }

func (c *cursor) str() string {
	if c.err != nil || c.off+2 > len(c.b) {
		c.fail()
		return ""
	}
	n := int(binary.LittleEndian.Uint16(c.b[c.off:]))
	c.off += 2
	if n > maxString {
		c.err = fmt.Errorf("%w: string length %d", ErrBadMsg, n)
		return ""
	}
	if c.off+n > len(c.b) {
		c.fail()
		return ""
	}
	v := string(c.b[c.off : c.off+n])
	c.off += n
	return v
}

func (c *cursor) fail() {
	if c.err == nil {
		c.err = ErrShortMsg
	}
}

// done demands the payload was consumed exactly.
func (c *cursor) done() error {
	if c.err != nil {
		return c.err
	}
	if c.off != len(c.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadMsg, len(c.b)-c.off)
	}
	return nil
}

// DecodeMsg decodes one frame payload into a typed message. Arbitrary
// bytes yield a typed error, never a panic.
func DecodeMsg(p []byte) (any, error) {
	if len(p) == 0 {
		return nil, ErrShortMsg
	}
	c := &cursor{b: p, off: 1}
	switch p[0] {
	case MsgHello:
		m := &Hello{Proto: c.u8(), Session: c.u64(), Token: c.str()}
		if err := c.done(); err != nil {
			return nil, err
		}
		if m.Proto != ProtoVersion {
			return nil, fmt.Errorf("%w: protocol version %d", ErrBadMsg, m.Proto)
		}
		return m, nil
	case MsgHelloOK:
		m := &HelloOK{Session: c.u64()}
		tr := c.u64()
		m.LastSeq = c.u64()
		if err := c.done(); err != nil {
			return nil, err
		}
		if tr > 1<<31 {
			return nil, fmt.Errorf("%w: trader %d", ErrBadMsg, tr)
		}
		m.Trader = uint32(tr)
		return m, nil
	case MsgOrder:
		m := &Order{Seq: c.u64(), Kind: workload.OrderKind(c.u8()), Side: c.u8(),
			ID: c.i64(), Target: c.i64(), Price: c.i64(), Qty: c.i64(), Symbol: c.str()}
		if err := c.done(); err != nil {
			return nil, err
		}
		if m.Kind > workload.OpAmend {
			return nil, fmt.Errorf("%w: order kind %d", ErrBadMsg, m.Kind)
		}
		if m.Side > SideNone {
			return nil, fmt.Errorf("%w: order side %d", ErrBadMsg, m.Side)
		}
		if m.Price < 0 || m.Qty < 0 {
			return nil, fmt.Errorf("%w: negative price or qty", ErrBadMsg)
		}
		return m, nil
	case MsgPing:
		m := &Ping{Nonce: c.u64()}
		return m, c.done()
	case MsgPong:
		m := &Pong{Nonce: c.u64()}
		return m, c.done()
	case MsgBye:
		return &Bye{}, c.done()
	case MsgAck:
		m := &Ack{Seq: c.u64()}
		return m, c.done()
	case MsgReject:
		m := &Reject{Seq: c.u64(), Code: RejectCode(c.u8()), Tag: c.str()}
		return m, c.done()
	case MsgClose:
		m := &Close{Code: RejectCode(c.u8()), Reason: c.str()}
		return m, c.done()
	default:
		return nil, fmt.Errorf("%w: type 0x%02x", ErrBadMsg, p[0])
	}
}

// readFrame reads one frame from the stream. Stream-position errors
// (io.EOF, timeouts) pass through; a length word outside bounds or a
// CRC mismatch is a framing fault — the stream cannot be trusted past
// it.
func readFrame(br *bufio.Reader, buf []byte) ([]byte, error) {
	var hdr [frameHdrLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n == 0 || n > MaxFrame {
		return nil, fmt.Errorf("%w: %d", ErrBadFrame, n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(buf) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, ErrBadCRC
	}
	return buf, nil
}
