package gateway

// Connection-fault chaos against a live trading platform: seeded
// kill/reconnect waves, mid-frame disconnects and partial writes over
// a faulty net.Conn wrapper. The platform's conservation and book
// invariants must hold, every shed order must have a labeled reject
// event, and no client may lose an order silently.

import (
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trading"
	"repro/internal/workload"
)

// The trading ingress is the production Backend.
var _ Backend = (*trading.Ingress)(nil)

// faultConn injects write-side faults: every Write goes out in small
// chunks (partial writes), and after cutAfter total bytes the
// connection is torn down mid-stream — which lands mid-frame whenever
// the budget runs out inside one.
type faultConn struct {
	net.Conn
	mu         sync.Mutex
	cutAfter   int // total write budget; < 0 = unlimited
	partialMax int // per-chunk cap; 0 = unlimited
	written    int
}

func (f *faultConn) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var total int
	for len(p) > 0 {
		chunk := len(p)
		if f.partialMax > 0 && chunk > f.partialMax {
			chunk = f.partialMax
		}
		if f.cutAfter >= 0 {
			if f.written >= f.cutAfter {
				f.Conn.Close()
				return total, net.ErrClosed
			}
			if f.written+chunk > f.cutAfter {
				chunk = f.cutAfter - f.written
			}
		}
		n, err := f.Conn.Write(p[:chunk])
		total += n
		f.written += n
		if err != nil {
			return total, err
		}
		p = p[n:]
	}
	return total, nil
}

// chaosDialer builds per-attempt faulty connections: early attempts
// get tight byte budgets (guaranteeing mid-frame cuts and reconnect
// waves), later attempts loosen until the client can finish.
func chaosDialer(addr string, seed int64) func() (net.Conn, error) {
	rng := rand.New(rand.NewSource(seed))
	var mu sync.Mutex
	attempt := 0
	return func() (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		attempt++
		a := attempt
		budget := 150 + rng.Intn(900)*a // grows with attempts
		partial := 1 + rng.Intn(7)
		mu.Unlock()
		if a >= 5 {
			budget = -1 // let the session finish eventually
		}
		return &faultConn{Conn: conn, cutAfter: budget, partialMax: partial}, nil
	}
}

// chaosPlatform assembles a platform + ingress + gateway for fault
// testing.
func chaosPlatform(t *testing.T, mode core.SecurityMode, traders int, tweak func(*Config)) (*trading.Platform, *trading.Ingress, *Gateway, string) {
	t.Helper()
	p, err := trading.New(trading.Config{
		Mode:       mode,
		NumTraders: traders,
		Universe:   workload.NewUniverse(4),
		Seed:       31,
		// Keep the feedback path (sampled trades republished as
		// ticks) out of the order accounting.
		AuditSampleEvery: 1 << 30,
		QueueCap:         1024,
		BrokerShards:     2,
		OrderTTL:         time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	ingress := p.NewIngress()
	cfg := Config{Backend: ingress, OutboundQueue: 2048, IdleTimeout: 10 * time.Second}
	if tweak != nil {
		tweak(&cfg)
	}
	g, addr := startGateway(t, cfg)
	return p, ingress, g, addr
}

// sessionOps derives one session's trace with a disjoint order-ID
// space, so independent sessions never collide inside a shared book.
func sessionOps(u *workload.Universe, session, n int) []workload.OrderOp {
	flow := workload.NewOrderFlow(u, workload.FlowConfig{Traders: 1, AggressionPct: 55}, int64(1000+session))
	return workload.OffsetOrderIDs(flow.Take(n), int64(session+1)<<24)
}

// TestChaosKillReconnectWaves is the headline fault run: every client
// speaks through connections that die mid-frame under partial writes,
// reconnects with backoff and resyncs — repeatedly — while the
// platform matches their interleaved flow. At the end: no silent
// drops anywhere, labeled reject events cover every shed, books
// conserve.
func TestChaosKillReconnectWaves(t *testing.T) {
	const sessions = 8
	const perSession = 120
	p, ingress, g, addr := chaosPlatform(t, core.LabelsFreeze, sessions, func(cfg *Config) {
		// A modest rate limit mixes labeled rate sheds into the waves.
		cfg.Rate = 400
		cfg.Burst = 50
	})

	var wg sync.WaitGroup
	clients := make([]*Client, sessions)
	errs := make([]error, sessions)
	sent := make([]int, sessions)
	for i := 0; i < sessions; i++ {
		ops := sessionOps(p.Universe(), i, perSession)
		sent[i] = len(ops)
		clients[i] = NewClient(ClientConfig{
			Token:       trading.TraderToken(i),
			Session:     uint64(100 + i),
			Dial:        chaosDialer(addr, int64(i)*7+1),
			Seed:        int64(i) + 1,
			MaxAttempts: 40,
			BaseBackoff: 2 * time.Millisecond,
			MaxBackoff:  50 * time.Millisecond,
			IOTimeout:   5 * time.Second,
		})
		wg.Add(1)
		go func(i int, ops []workload.OrderOp) {
			defer wg.Done()
			errs[i] = clients[i].Run(ops)
		}(i, ops)
	}
	wg.Wait()

	var reconnects, acked, rejected uint64
	for i, cl := range clients {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		st := cl.Stats()
		if st.Acked+st.Rejected+st.Unsent != uint64(sent[i]) {
			t.Fatalf("client %d ledger: %+v over %d ops", i, st, sent[i])
		}
		if st.Unsent != 0 {
			t.Fatalf("client %d lost %d ops", i, st.Unsent)
		}
		reconnects += st.Reconnects
		acked += st.Acked
		rejected += st.Rejected
	}
	if reconnects == 0 {
		t.Fatal("chaos produced no reconnects — the fault injection is dead")
	}

	// Gateway ledger: nothing received was silently dropped.
	st := g.Stats()
	if st.OrdersReceived != st.Admitted+st.Rejected()+st.DupOrders {
		t.Fatalf("gateway admission ledger leaks: %+v", st)
	}
	if st.Resyncs == 0 {
		t.Fatal("no resyncs despite reconnect waves")
	}

	// Every shed order has a labeled reject event.
	sheds := st.RateRejects + st.OverflowRejects + st.DrainRejects
	if ingress.Rejects() != sheds {
		t.Fatalf("labeled reject events %d != gateway sheds %d", ingress.Rejects(), sheds)
	}

	// Drain the gateway, settle the platform, check the books.
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if !p.Quiesce(30 * time.Second) {
		t.Fatal("platform did not quiesce")
	}
	time.Sleep(50 * time.Millisecond)
	if err := p.Broker.CheckConservation(); err != nil {
		t.Fatalf("conservation after chaos: %v", err)
	}
	if err := p.Broker.ValidateBooks(); err != nil {
		t.Fatalf("book validation after chaos: %v", err)
	}
	// The regulator observed the admission decisions.
	if p.Regulator.GatewayRejects() != ingress.Rejects() {
		t.Fatalf("regulator saw %d rejects, ingress published %d",
			p.Regulator.GatewayRejects(), ingress.Rejects())
	}
	if p.Regulator.GatewaySessionCloses() != ingress.SessionCloses() {
		t.Fatalf("regulator saw %d session closes, ingress published %d",
			p.Regulator.GatewaySessionCloses(), ingress.SessionCloses())
	}
	if ingress.SessionCloses() == 0 {
		t.Fatal("no labeled session-close events")
	}
	// Everything admitted reached a trader unit's order flow.
	ps := p.Stats()
	flowOps := ps.OrdersPlaced + ps.CancelsRequested + ps.AmendsRequested
	if flowOps < st.Admitted {
		t.Fatalf("platform recorded %d flow ops < %d admitted", flowOps, st.Admitted)
	}
}

// TestChaosStalledReaderEviction: a client that wedges its read side
// while flooding cannot wedge the gateway — the outbound queue fills
// and the session is evicted; the books stay valid.
func TestChaosStalledReaderEviction(t *testing.T) {
	p, _, g, addr := chaosPlatform(t, core.LabelsFreeze, 2, func(cfg *Config) {
		cfg.Rate = 10 // nearly every order sheds → heavy outbound traffic
		cfg.Burst = 2
		cfg.OutboundQueue = 8
		cfg.WriteTimeout = 200 * time.Millisecond
	})
	c := dialRaw(t, addr)
	c.hello(trading.TraderToken(0), 0)
	ops := sessionOps(p.Universe(), 0, 4000)
	for i := range ops {
		o := OrderFromOp(&ops[i], ops[i].Seq)
		c.conn.SetWriteDeadline(time.Now().Add(100 * time.Millisecond))
		if _, err := c.conn.Write(EncodeMsg(nil, &o)); err != nil {
			break // evicted
		}
	}
	waitFor(t, 10*time.Second, "stalled reader evicted", func() bool {
		st := g.Stats()
		return st.SlowEvictions >= 1 && st.SessionsClosed >= 1
	})
	if !p.Quiesce(15 * time.Second) {
		t.Fatal("platform did not quiesce")
	}
	if err := p.Broker.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if err := p.Broker.ValidateBooks(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosDrainUnderLoad: closing the gateway while clients are
// mid-flood flushes admitted orders and refuses the rest with drain
// rejects — the ledger still balances and the books survive.
func TestChaosDrainUnderLoad(t *testing.T) {
	const sessions = 4
	p, ingress, g, addr := chaosPlatform(t, core.NoSecurity, sessions, nil)

	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		ops := sessionOps(p.Universe(), i, 2000)
		cl := NewClient(ClientConfig{
			Addr:        addr,
			Token:       trading.TraderToken(i),
			Seed:        int64(i),
			MaxAttempts: 2,
			BaseBackoff: time.Millisecond,
			IOTimeout:   2 * time.Second,
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl.Run(ops) // error expected: the server drains mid-run
		}()
	}
	time.Sleep(50 * time.Millisecond)
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	st := g.Stats()
	if st.OrdersReceived != st.Admitted+st.Rejected()+st.DupOrders {
		t.Fatalf("ledger leaks across drain: %+v", st)
	}
	if ingress.Rejects() != st.RateRejects+st.OverflowRejects+st.DrainRejects {
		t.Fatalf("labeled rejects %d != sheds", ingress.Rejects())
	}
	if !p.Quiesce(15 * time.Second) {
		t.Fatal("platform did not quiesce")
	}
	if err := p.Broker.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if err := p.Broker.ValidateBooks(); err != nil {
		t.Fatal(err)
	}
}
