package gateway

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/workload"
)

// decodeFramed strips one frame (via readFrame, the production path)
// and decodes its payload.
func decodeFramed(t *testing.T, buf []byte) any {
	t.Helper()
	br := bufio.NewReader(bytes.NewReader(buf))
	payload, err := readFrame(br, nil)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	m, err := DecodeMsg(payload)
	if err != nil {
		t.Fatalf("DecodeMsg: %v", err)
	}
	return m
}

// TestWireRoundTrip pins encode∘decode = identity for every message
// type.
func TestWireRoundTrip(t *testing.T) {
	msgs := []any{
		&Hello{Proto: ProtoVersion, Session: 42, Token: "trader-0007"},
		&HelloOK{Session: 42, Trader: 7, LastSeq: 1234},
		&Order{Seq: 9, Kind: workload.OpLimit, Side: 1, ID: 1 << 41, Target: 0,
			Price: 10050, Qty: 300, Symbol: "SYM0001"},
		&Order{Seq: 10, Kind: workload.OpCancel, Target: 77, Symbol: "SYM0002"},
		&Ping{Nonce: 0xdeadbeef},
		&Pong{Nonce: 0xdeadbeef},
		&Bye{},
		&Ack{Seq: 999},
		&Reject{Seq: 1000, Code: RejectOverflow, Tag: "t-trader-0007"},
		&Close{Code: RejectDrain, Reason: "drain"},
	}
	for _, m := range msgs {
		got := decodeFramed(t, EncodeMsg(nil, m))
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip %T: got %+v want %+v", m, got, m)
		}
	}
}

// TestWireOrderOpConversion pins Order↔OrderOp fidelity.
func TestWireOrderOpConversion(t *testing.T) {
	flow := workload.NewOrderFlow(workload.NewUniverse(4), workload.FlowConfig{Traders: 3}, 5)
	for _, op := range flow.Take(200) {
		o := OrderFromOp(&op, op.Seq)
		back := o.Op()
		// Trader identity never rides the wire: the session binding
		// supplies it, so the round trip leaves it zero.
		op.Trader = 0
		if !reflect.DeepEqual(back, op) {
			t.Fatalf("op round trip: got %+v want %+v", back, op)
		}
	}
}

// TestWireDecodeFaults maps malformed inputs to their typed errors.
func TestWireDecodeFaults(t *testing.T) {
	order := EncodeMsg(nil, &Order{Seq: 1, Symbol: "S", Qty: 1})

	t.Run("empty payload", func(t *testing.T) {
		if _, err := DecodeMsg(nil); !errors.Is(err, ErrShortMsg) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("unknown type", func(t *testing.T) {
		if _, err := DecodeMsg([]byte{0x7f}); !errors.Is(err, ErrBadMsg) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("truncated fields", func(t *testing.T) {
		payload := order[frameHdrLen:]
		for n := 1; n < len(payload); n++ {
			if _, err := DecodeMsg(payload[:n]); err == nil {
				t.Fatalf("truncation to %d bytes decoded", n)
			}
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		payload := append(append([]byte{}, order[frameHdrLen:]...), 0x00)
		if _, err := DecodeMsg(payload); !errors.Is(err, ErrBadMsg) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("bad order kind", func(t *testing.T) {
		o := &Order{Seq: 1, Kind: 200, Symbol: "S"}
		if _, err := DecodeMsg(EncodeMsg(nil, o)[frameHdrLen:]); !errors.Is(err, ErrBadMsg) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("negative qty", func(t *testing.T) {
		o := &Order{Seq: 1, Qty: -5, Symbol: "S"}
		if _, err := DecodeMsg(EncodeMsg(nil, o)[frameHdrLen:]); !errors.Is(err, ErrBadMsg) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("wrong proto version", func(t *testing.T) {
		h := EncodeMsg(nil, &Hello{Proto: ProtoVersion, Token: "x"})
		h[frameHdrLen+1] = 99
		if _, err := DecodeMsg(h[frameHdrLen:]); !errors.Is(err, ErrBadMsg) {
			t.Fatalf("got %v", err)
		}
	})
}

// TestReadFrameFaults pins the framing layer: corrupt length words
// and payloads are framing faults, stream truncation passes through
// as an IO error.
func TestReadFrameFaults(t *testing.T) {
	frame := EncodeMsg(nil, &Ping{Nonce: 7})

	t.Run("zero length", func(t *testing.T) {
		hdr := make([]byte, frameHdrLen)
		_, err := readFrame(bufio.NewReader(bytes.NewReader(hdr)), nil)
		if !errors.Is(err, ErrBadFrame) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("oversized length", func(t *testing.T) {
		hdr := make([]byte, frameHdrLen)
		binary.LittleEndian.PutUint32(hdr, MaxFrame+1)
		_, err := readFrame(bufio.NewReader(bytes.NewReader(hdr)), nil)
		if !errors.Is(err, ErrBadFrame) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("flipped payload bit", func(t *testing.T) {
		bad := append([]byte{}, frame...)
		bad[len(bad)-1] ^= 0x01
		_, err := readFrame(bufio.NewReader(bytes.NewReader(bad)), nil)
		if !errors.Is(err, ErrBadCRC) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("mid-frame truncation", func(t *testing.T) {
		_, err := readFrame(bufio.NewReader(bytes.NewReader(frame[:len(frame)-3])), nil)
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("clean EOF between frames", func(t *testing.T) {
		_, err := readFrame(bufio.NewReader(bytes.NewReader(nil)), nil)
		if !errors.Is(err, io.EOF) {
			t.Fatalf("got %v", err)
		}
	})
}

// TestRejectCodeStrings pins the reject vocabulary the labeled events
// carry.
func TestRejectCodeStrings(t *testing.T) {
	want := map[RejectCode]string{
		RejectAuth:      "auth",
		RejectRate:      "rate",
		RejectOverflow:  "overflow",
		RejectProto:     "proto",
		RejectDrain:     "drain",
		RejectDuplicate: "duplicate",
	}
	for code, s := range want {
		if code.String() != s {
			t.Errorf("%d: got %q want %q", code, code.String(), s)
		}
	}
}
