package gateway

import "testing"

// TestClientSeedDerivation: zero-seed clients must not share a jitter
// stream. A reconnect storm after a gateway restart is only survivable
// because the fleet's backoffs decorrelate; identical default seeds
// would re-synchronize every client's retry schedule exactly.
func TestClientSeedDerivation(t *testing.T) {
	seedOf := func(token string, session uint64) int64 {
		cfg := ClientConfig{Addr: "unused:0", Token: token, Session: session}
		cfg.defaults()
		return cfg.Seed
	}

	if a, b := seedOf("trader-0001", 0), seedOf("trader-0002", 0); a == b {
		t.Fatalf("distinct tokens derived the same seed %d", a)
	}
	if a, b := seedOf("trader-0001", 1), seedOf("trader-0001", 2); a == b {
		t.Fatalf("distinct sessions derived the same seed %d", a)
	}
	if a, b := seedOf("trader-0001", 7), seedOf("trader-0001", 7); a != b {
		t.Fatalf("seed derivation not deterministic: %d vs %d", a, b)
	}
	if seedOf("trader-0001", 0) == 0 {
		t.Fatal("derived seed left at zero")
	}

	cfg := ClientConfig{Addr: "unused:0", Token: "trader-0001", Seed: 42}
	cfg.defaults()
	if cfg.Seed != 42 {
		t.Fatalf("explicit seed overwritten: %d", cfg.Seed)
	}
}
