package gateway

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/workload"
)

// ClientConfig tunes a load-generator client. Zero fields take
// defaults.
type ClientConfig struct {
	// Addr is the gateway address (required unless Dial is set).
	Addr string
	// Token authenticates the session (the trading backend expects a
	// trader name, e.g. "trader-0001").
	Token string
	// Session is the client's stable session ID for
	// reconnect-with-resync; 0 lets the server assign one (and the
	// client adopts it for reconnects).
	Session uint64
	// Dial overrides net.Dial for tests and fault injection.
	Dial func() (net.Conn, error)
	// Seed feeds the backoff jitter; 0 derives a per-identity seed
	// from Token and Session, so a fleet of zero-config clients never
	// shares one jitter sequence (which would synchronize their
	// reconnect storms against a recovering gateway).
	Seed int64
	// MaxAttempts bounds consecutive failed connect attempts
	// (default 8); progress resets the counter.
	MaxAttempts int
	// BaseBackoff and MaxBackoff bound the capped exponential
	// backoff between attempts (defaults 10ms / 1s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// IOTimeout bounds individual reads/writes (default 10s).
	IOTimeout time.Duration
	// Window is how many orders may be unacked in flight
	// (default 512).
	Window int
}

func (c *ClientConfig) defaults() {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 10 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	if c.IOTimeout <= 0 {
		c.IOTimeout = 10 * time.Second
	}
	if c.Window <= 0 {
		c.Window = 512
	}
	if c.Dial == nil {
		addr := c.Addr
		c.Dial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if c.Seed == 0 {
		// FNV-1a over the client identity: distinct tokens or sessions
		// get decorrelated jitter without any shared global state.
		const (
			offset64 = 14695981039346656037
			prime64  = 1099511628211
		)
		h := uint64(offset64)
		for i := 0; i < len(c.Token); i++ {
			h = (h ^ uint64(c.Token[i])) * prime64
		}
		for i := 0; i < 8; i++ {
			h = (h ^ (c.Session >> (8 * i) & 0xff)) * prime64
		}
		c.Seed = int64(h)
	}
}

// ClientStats accounts for every order handed to Run: at exit,
// Acked + Rejected + Unsent == len(ops) when Run returns nil.
type ClientStats struct {
	Sent        uint64 // wire sends, including resends after reconnect
	Acked       uint64 // orders admitted (cumulative-ack covered, not rejected)
	Rejected    uint64 // orders shed by the gateway with a labeled reject
	Unsent      uint64 // orders never processed (Run gave up)
	Reconnects  uint64 // successful re-handshakes after a drop
	DialRetries uint64
}

// Client drives one session of orders through a gateway, surviving
// disconnects by reconnecting with capped exponential backoff plus
// jitter and resuming from the server's resync point.
type Client struct {
	cfg ClientConfig
	rng *rand.Rand

	mu       sync.Mutex
	stats    ClientStats
	rejected map[uint64]bool
}

// NewClient builds a client.
func NewClient(cfg ClientConfig) *Client {
	cfg.defaults()
	return &Client{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		rejected: make(map[uint64]bool),
	}
}

// Stats snapshots the accounting.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// backoff sleeps the capped-exponential-with-jitter delay for the
// given consecutive failure count (1-based).
func (c *Client) backoff(attempt int) {
	d := c.cfg.BaseBackoff << (attempt - 1)
	if d <= 0 || d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	c.mu.Lock()
	jittered := d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.mu.Unlock()
	time.Sleep(jittered)
}

// Run sends ops (which must carry strictly increasing Seq, as
// workload.NewOrderFlow produces) and returns once every op is acked
// or rejected, or an error once reconnect attempts are exhausted.
func (c *Client) Run(ops []workload.OrderOp) error {
	total := uint64(len(ops))
	if total == 0 {
		return nil
	}
	var processed uint64 // server's cumulative processed high-water
	attempts := 0
	for processed < ops[len(ops)-1].Seq {
		madeProgress, err := c.runConn(ops, &processed)
		if madeProgress {
			attempts = 0
		}
		if processed >= ops[len(ops)-1].Seq {
			break
		}
		if err != nil {
			attempts++
			if attempts >= c.cfg.MaxAttempts {
				c.settle(ops, processed)
				return fmt.Errorf("gateway client: giving up after %d attempts: %w", attempts, err)
			}
			c.backoff(attempts)
		}
	}
	c.settle(ops, processed)
	return nil
}

// settle finalizes the ledger: every op is acked, rejected, or
// unsent, with Acked + Rejected + Unsent == len(ops).
func (c *Client) settle(ops []workload.OrderOp, processed uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Unsent = c.unprocessedLocked(ops, processed)
	var rejected uint64
	for seq := range c.rejected {
		if seq <= processed {
			rejected++
		}
	}
	c.stats.Acked = uint64(len(ops)) - c.stats.Unsent - rejected
}

// unprocessedLocked counts ops beyond the processed high-water mark.
func (c *Client) unprocessedLocked(ops []workload.OrderOp, processed uint64) uint64 {
	var n uint64
	for i := len(ops) - 1; i >= 0 && ops[i].Seq > processed; i-- {
		n++
	}
	return n
}

// runConn performs one connect-handshake-send-drain cycle. It
// advances *processed from server acks and reports whether any
// progress happened (connect succeeded and at least the handshake
// completed).
func (c *Client) runConn(ops []workload.OrderOp, processed *uint64) (bool, error) {
	conn, err := c.cfg.Dial()
	if err != nil {
		c.mu.Lock()
		c.stats.DialRetries++
		c.mu.Unlock()
		return false, err
	}
	defer conn.Close()

	deadline := func() { conn.SetDeadline(time.Now().Add(c.cfg.IOTimeout)) }
	br := bufio.NewReaderSize(conn, 4096)

	// Handshake.
	deadline()
	if _, err := conn.Write(EncodeMsg(nil, &Hello{Proto: ProtoVersion, Session: c.cfg.Session, Token: c.cfg.Token})); err != nil {
		return false, err
	}
	var frame []byte
	deadline()
	payload, err := readFrame(br, frame)
	if err != nil {
		return false, err
	}
	m, err := DecodeMsg(payload)
	if err != nil {
		return false, err
	}
	ok, isOK := m.(*HelloOK)
	if !isOK {
		if cl, isClose := m.(*Close); isClose {
			return false, fmt.Errorf("gateway client: refused: %s (%s)", cl.Reason, cl.Code)
		}
		return false, fmt.Errorf("gateway client: unexpected handshake reply %T", m)
	}
	reconnected := c.cfg.Session != 0
	c.cfg.Session = ok.Session
	if ok.LastSeq > *processed {
		*processed = ok.LastSeq
	}
	c.mu.Lock()
	if reconnected {
		c.stats.Reconnects++
	}
	c.mu.Unlock()

	// Resume past everything the server already processed.
	start := 0
	for start < len(ops) && ops[start].Seq <= *processed {
		start++
	}
	if start == len(ops) {
		return true, nil
	}

	// Reader: consume acks/rejects, advance the processed mark.
	type ackUpdate struct {
		seq uint64
		err error
	}
	acks := make(chan ackUpdate, 64)
	quit := make(chan struct{})
	defer close(quit)
	go func() {
		push := func(u ackUpdate) bool {
			select {
			case acks <- u:
				return true
			case <-quit:
				return false
			}
		}
		var frame []byte
		for {
			payload, err := readFrame(br, frame)
			if err != nil {
				push(ackUpdate{err: err})
				return
			}
			frame = payload[:0]
			m, err := DecodeMsg(payload)
			if err != nil {
				push(ackUpdate{err: err})
				return
			}
			switch v := m.(type) {
			case *Ack:
				if !push(ackUpdate{seq: v.Seq}) {
					return
				}
			case *Reject:
				c.mu.Lock()
				if !c.rejected[v.Seq] {
					c.rejected[v.Seq] = true
					c.stats.Rejected++
				}
				c.mu.Unlock()
				if !push(ackUpdate{seq: v.Seq}) {
					return
				}
			case *Close:
				push(ackUpdate{err: fmt.Errorf("gateway client: closed by server: %s (%s)", v.Reason, v.Code)})
				return
			case *Pong:
				// ignore
			default:
				push(ackUpdate{err: fmt.Errorf("gateway client: unexpected %T", m)})
				return
			}
		}
	}()

	// Window-limited sender on this goroutine.
	inflight := 0
	next := start
	var buf []byte
	drainAck := func(block bool) error {
		for {
			if block {
				u := <-acks
				block = false
				if u.err != nil {
					return u.err
				}
				if u.seq > *processed {
					*processed = u.seq
				}
				continue
			}
			select {
			case u := <-acks:
				if u.err != nil {
					return u.err
				}
				if u.seq > *processed {
					*processed = u.seq
				}
			default:
				return nil
			}
		}
	}
	for next < len(ops) || *processed < ops[len(ops)-1].Seq {
		if err := drainAck(false); err != nil {
			return true, err
		}
		// Recompute inflight from the cumulative processed mark.
		inflight = 0
		for i := next - 1; i >= 0 && ops[i].Seq > *processed; i-- {
			inflight++
		}
		if next >= len(ops) || inflight >= c.cfg.Window {
			// Window full or all sent: wait for acks.
			if err := drainAck(true); err != nil {
				return true, err
			}
			continue
		}
		o := OrderFromOp(&ops[next], ops[next].Seq)
		buf = EncodeMsg(buf[:0], &o)
		deadline()
		if _, err := conn.Write(buf); err != nil {
			return true, err
		}
		c.mu.Lock()
		c.stats.Sent++
		c.mu.Unlock()
		next++
	}

	// All processed: polite goodbye (best-effort).
	deadline()
	conn.Write(EncodeMsg(nil, &Bye{}))
	return true, nil
}
