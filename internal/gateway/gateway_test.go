package gateway

// Session lifecycle edges against a mock backend: auth-before-first-
// order, duplicate session IDs, idle timeout, mid-frame disconnect,
// overload shedding with per-order labeled rejects, slow-writer
// eviction, graceful drain, and reconnect-with-resync. The trading-
// side label correctness lives in internal/trading/ingress_test.go;
// here the mock records exactly what the gateway told the platform.
import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/workload"
)

// mockBackend records everything the gateway reports, behind the same
// contract trading.Ingress implements.
type mockBackend struct {
	mu         sync.Mutex
	bound      map[int]bool
	submitted  map[int][]workload.OrderOp
	rejects    map[string]int // reason -> shed count
	rejectTag  map[string]int // tag observed on rejects -> count
	closes     []string       // close reasons in order
	closeTag   map[string]int
	submitGate chan struct{} // non-nil: Submit blocks until closed
	authErr    error
}

func newMockBackend() *mockBackend {
	return &mockBackend{
		bound:     make(map[int]bool),
		submitted: make(map[int][]workload.OrderOp),
		rejects:   make(map[string]int),
		rejectTag: make(map[string]int),
		closeTag:  make(map[string]int),
	}
}

func (m *mockBackend) Authenticate(token string) (int, string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.authErr != nil {
		return 0, "", m.authErr
	}
	num, ok := strings.CutPrefix(token, "trader-")
	if !ok {
		return 0, "", errors.New("unknown token")
	}
	idx, err := strconv.Atoi(num)
	if err != nil || idx < 0 {
		return 0, "", errors.New("unknown token")
	}
	if m.bound[idx] {
		return 0, "", errors.New("trader already bound")
	}
	m.bound[idx] = true
	return idx, "t-" + token, nil
}

func (m *mockBackend) Submit(trader int, ops []workload.OrderOp) error {
	if m.submitGate != nil {
		<-m.submitGate
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.submitted[trader] = append(m.submitted[trader], ops...)
	return nil
}

func (m *mockBackend) Reject(trader int, tag, reason string, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rejects[reason] += n
	m.rejectTag[tag] += n
}

func (m *mockBackend) SessionClose(trader int, tag, reason string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.bound, trader)
	m.closes = append(m.closes, reason)
	m.closeTag[tag]++
}

func (m *mockBackend) shedTotal() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int
	for _, c := range m.rejects {
		n += c
	}
	return n
}

func (m *mockBackend) submittedTotal() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int
	for _, ops := range m.submitted {
		n += len(ops)
	}
	return n
}

// startGateway runs a gateway on a loopback listener.
func startGateway(t *testing.T, cfg Config) (*Gateway, string) {
	t.Helper()
	g := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- g.Serve(ln) }()
	t.Cleanup(func() {
		g.Close()
		if err := <-done; err != nil && !errors.Is(err, net.ErrClosed) {
			t.Errorf("Serve: %v", err)
		}
	})
	return g, ln.Addr().String()
}

// rawConn is a hand-driven protocol client for edge tests.
type rawConn struct {
	t    *testing.T
	conn net.Conn
	br   *bufio.Reader
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawConn{t: t, conn: conn, br: bufio.NewReader(conn)}
}

func (r *rawConn) send(m any) {
	r.t.Helper()
	r.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if _, err := r.conn.Write(EncodeMsg(nil, m)); err != nil {
		r.t.Fatalf("send %T: %v", m, err)
	}
}

func (r *rawConn) recv() any {
	r.t.Helper()
	r.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	payload, err := readFrame(r.br, nil)
	if err != nil {
		r.t.Fatalf("recv: %v", err)
	}
	m, err := DecodeMsg(payload)
	if err != nil {
		r.t.Fatalf("recv decode: %v", err)
	}
	return m
}

// recvErr reads one frame expecting a stream error (peer closed).
func (r *rawConn) recvErr() error {
	r.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		payload, err := readFrame(r.br, nil)
		if err != nil {
			return err
		}
		if _, err := DecodeMsg(payload); err != nil {
			return err
		}
	}
}

func (r *rawConn) hello(token string, session uint64) *HelloOK {
	r.t.Helper()
	r.send(&Hello{Proto: ProtoVersion, Session: session, Token: token})
	m := r.recv()
	ok, is := m.(*HelloOK)
	if !is {
		r.t.Fatalf("handshake reply: %+v", m)
	}
	return ok
}

// waitFor polls until the condition holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// testOps generates a deterministic single-trader op stream.
func testOps(n int) []workload.OrderOp {
	flow := workload.NewOrderFlow(workload.NewUniverse(2), workload.FlowConfig{Traders: 1}, 23)
	return flow.Take(n)
}

// TestAuthBeforeFirstOrder: an order on an unauthenticated session is
// refused with an auth Close, nothing reaches the backend.
func TestAuthBeforeFirstOrder(t *testing.T) {
	mb := newMockBackend()
	g, addr := startGateway(t, Config{Backend: mb})
	c := dialRaw(t, addr)
	c.send(&Order{Seq: 1, Symbol: "SYM0000", Qty: 100})
	m := c.recv()
	cl, ok := m.(*Close)
	if !ok || cl.Code != RejectAuth {
		t.Fatalf("expected auth Close, got %+v", m)
	}
	waitFor(t, 5*time.Second, "session close", func() bool {
		return g.Stats().SessionsClosed == 1
	})
	if got := g.Stats(); got.AuthFailures != 1 || got.Admitted != 0 {
		t.Fatalf("stats: %+v", got)
	}
	if mb.submittedTotal() != 0 {
		t.Fatal("order leaked past authentication")
	}
	if len(mb.closes) != 0 {
		t.Fatalf("SessionClose for a never-authenticated session: %v", mb.closes)
	}
}

// TestBadTokenRefused: a token the backend refuses closes the session
// without binding anything.
func TestBadTokenRefused(t *testing.T) {
	mb := newMockBackend()
	_, addr := startGateway(t, Config{Backend: mb})
	c := dialRaw(t, addr)
	c.send(&Hello{Proto: ProtoVersion, Token: "nobody"})
	m := c.recv()
	if cl, ok := m.(*Close); !ok || cl.Code != RejectAuth {
		t.Fatalf("expected auth Close, got %+v", m)
	}
}

// TestDuplicateSessionID: a second live connection claiming the same
// session ID is refused as a duplicate; the loser's trader binding is
// released so the trader can connect under another session.
func TestDuplicateSessionID(t *testing.T) {
	mb := newMockBackend()
	_, addr := startGateway(t, Config{Backend: mb})
	c1 := dialRaw(t, addr)
	ok1 := c1.hello("trader-0001", 77)
	if ok1.Session != 77 {
		t.Fatalf("session: %d", ok1.Session)
	}

	c2 := dialRaw(t, addr)
	c2.send(&Hello{Proto: ProtoVersion, Session: 77, Token: "trader-0002"})
	m := c2.recv()
	if cl, ok := m.(*Close); !ok || cl.Code != RejectDuplicate {
		t.Fatalf("expected duplicate Close, got %+v", m)
	}
	// The refused session must have released trader-0002's binding.
	waitFor(t, 5*time.Second, "binding release", func() bool {
		mb.mu.Lock()
		defer mb.mu.Unlock()
		return !mb.bound[2]
	})

	// The original session is undisturbed.
	c1.send(&Ping{Nonce: 5})
	if p, ok := c1.recv().(*Pong); !ok || p.Nonce != 5 {
		t.Fatal("original session lost its connection")
	}
}

// TestIdleTimeout: a session that goes quiet is evicted and its close
// is reported with the idle reason.
func TestIdleTimeout(t *testing.T) {
	mb := newMockBackend()
	g, addr := startGateway(t, Config{Backend: mb, IdleTimeout: 80 * time.Millisecond})
	c := dialRaw(t, addr)
	c.hello("trader-0003", 0)
	// Say nothing; the reaper fires.
	start := time.Now()
	err := c.recvErr()
	if err == nil {
		t.Fatal("connection survived idling")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("idle eviction took %v", waited)
	}
	waitFor(t, 5*time.Second, "idle close", func() bool {
		return g.Stats().IdleEvictions == 1
	})
	waitFor(t, 5*time.Second, "close event", func() bool {
		mb.mu.Lock()
		defer mb.mu.Unlock()
		return len(mb.closes) == 1 && mb.closes[0] == "idle-timeout"
	})
}

// TestMidFrameDisconnect: a connection dying inside a frame tears the
// session down cleanly — admitted orders stay admitted, the close
// event fires, and the partial frame admits nothing.
func TestMidFrameDisconnect(t *testing.T) {
	mb := newMockBackend()
	g, addr := startGateway(t, Config{Backend: mb})
	c := dialRaw(t, addr)
	c.hello("trader-0004", 0)

	ops := testOps(3)
	for i := range ops {
		o := OrderFromOp(&ops[i], ops[i].Seq)
		c.send(&o)
	}
	waitFor(t, 5*time.Second, "orders admitted", func() bool {
		return mb.submittedTotal() == 3
	})

	// A fourth order, torn mid-frame.
	o := OrderFromOp(&ops[0], 4)
	frame := EncodeMsg(nil, &o)
	c.conn.Write(frame[:len(frame)-5])
	c.conn.Close()

	waitFor(t, 5*time.Second, "session close", func() bool {
		return g.Stats().SessionsClosed == 1
	})
	st := g.Stats()
	if st.OrdersReceived != 3 || st.Admitted != 3 {
		t.Fatalf("stats after torn frame: %+v", st)
	}
	if st.Disconnects != 1 {
		t.Fatalf("disconnect not counted: %+v", st)
	}
	mb.mu.Lock()
	closes := append([]string{}, mb.closes...)
	mb.mu.Unlock()
	if len(closes) != 1 || closes[0] != "disconnect" {
		t.Fatalf("close events: %v", closes)
	}
}

// TestOverflowShedsLabeledRejects: with the backend wedged and a tiny
// ingress queue, the flood is shed — every shed order produces a wire
// Reject carrying the session trader's tag and a backend reject with
// the overflow reason; the ledger balances exactly.
func TestOverflowShedsLabeledRejects(t *testing.T) {
	mb := newMockBackend()
	mb.submitGate = make(chan struct{})
	g, addr := startGateway(t, Config{
		Backend:      mb,
		IngressQueue: 4,
		// Deep outbound queue: this test sheds hundreds of rejects and
		// must not trip slow-writer eviction while the client's reader
		// catches up.
		OutboundQueue: 2048,
	})
	c := dialRaw(t, addr)
	c.hello("trader-0005", 0)

	const n = 500
	ops := testOps(n)
	go func() {
		for i := range ops {
			o := OrderFromOp(&ops[i], ops[i].Seq)
			c.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
			if _, err := c.conn.Write(EncodeMsg(nil, &o)); err != nil {
				return
			}
		}
	}()

	// Collect rejects until the ledger covers all n orders.
	var rejects int
	tagged := make(map[string]int)
	waitFor(t, 10*time.Second, "all orders processed", func() bool {
		st := g.Stats()
		return st.OrdersReceived == n && st.Admitted+st.Rejected() == n
	})
	close(mb.submitGate) // unwedge so the submitter can flush and exit
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c.conn.SetReadDeadline(time.Now().Add(time.Second))
		payload, err := readFrame(c.br, nil)
		if err != nil {
			break
		}
		m, err := DecodeMsg(payload)
		if err != nil {
			t.Fatal(err)
		}
		if rej, ok := m.(*Reject); ok {
			rejects++
			tagged[rej.Tag]++
			if rej.Code != RejectOverflow {
				t.Fatalf("reject code %v", rej.Code)
			}
		}
		if rejects == int(g.Stats().OverflowRejects) {
			break
		}
	}

	st := g.Stats()
	if st.OverflowRejects == 0 {
		t.Fatal("flood produced no overflow rejects")
	}
	if rejects != int(st.OverflowRejects) {
		t.Fatalf("wire rejects %d != shed count %d", rejects, st.OverflowRejects)
	}
	// Every wire reject carries the session trader's tag — not the
	// gateway's identity, not empty.
	if tagged["t-trader-0005"] != rejects {
		t.Fatalf("reject tags: %v", tagged)
	}
	// The backend saw the same sheds, same tag, same reason.
	mb.mu.Lock()
	backendSheds := mb.rejects["overflow"]
	backendTagged := mb.rejectTag["t-trader-0005"]
	mb.mu.Unlock()
	if backendSheds != rejects || backendTagged != rejects {
		t.Fatalf("backend rejects %d (tagged %d) != wire rejects %d", backendSheds, backendTagged, rejects)
	}
	// No silent drops: received == admitted + shed.
	if st.OrdersReceived != st.Admitted+st.Rejected()+st.DupOrders {
		t.Fatalf("admission ledger leaks: %+v", st)
	}
}

// TestRateLimitRejects: a session over its token bucket sheds with
// the rate reason.
func TestRateLimitRejects(t *testing.T) {
	mb := newMockBackend()
	g, addr := startGateway(t, Config{
		Backend:       mb,
		Rate:          50,
		Burst:         10,
		OutboundQueue: 1024,
	})
	c := dialRaw(t, addr)
	c.hello("trader-0006", 0)
	ops := testOps(200)
	for i := range ops {
		o := OrderFromOp(&ops[i], ops[i].Seq)
		c.send(&o)
	}
	waitFor(t, 10*time.Second, "flood processed", func() bool {
		st := g.Stats()
		return st.OrdersReceived == 200 && st.Admitted+st.Rejected() == 200
	})
	st := g.Stats()
	if st.RateRejects == 0 {
		t.Fatalf("no rate rejects: %+v", st)
	}
	mb.mu.Lock()
	reasons := mb.rejects["rate"]
	mb.mu.Unlock()
	if reasons != int(st.RateRejects) {
		t.Fatalf("backend saw %d rate rejects, gateway shed %d", reasons, st.RateRejects)
	}
}

// TestSlowWriterEviction: a client that never reads while the server
// floods it with rejects overflows the outbound queue and is evicted.
func TestSlowWriterEviction(t *testing.T) {
	mb := newMockBackend()
	g, addr := startGateway(t, Config{
		Backend:       mb,
		Rate:          1, // nearly everything rejects → outbound pressure
		Burst:         1,
		OutboundQueue: 4,
		WriteTimeout:  200 * time.Millisecond,
	})
	c := dialRaw(t, addr)
	c.hello("trader-0007", 0)
	// Flood without ever reading; the outbound reject stream jams.
	ops := testOps(5000)
	for i := range ops {
		o := OrderFromOp(&ops[i], ops[i].Seq)
		c.conn.SetWriteDeadline(time.Now().Add(100 * time.Millisecond))
		if _, err := c.conn.Write(EncodeMsg(nil, &o)); err != nil {
			break // server hung up on us: that's the eviction
		}
	}
	waitFor(t, 10*time.Second, "slow-writer eviction", func() bool {
		return g.Stats().SlowEvictions >= 1 && g.Stats().SessionsClosed == 1
	})
	waitFor(t, 5*time.Second, "close event", func() bool {
		mb.mu.Lock()
		defer mb.mu.Unlock()
		return len(mb.closes) == 1
	})
}

// TestGracefulDrain: Close stops intake, flushes admitted in-flight
// orders to the backend, and every live session gets a close event
// with the drain reason.
func TestGracefulDrain(t *testing.T) {
	mb := newMockBackend()
	g, addr := startGateway(t, Config{Backend: mb})
	const sessions = 4
	conns := make([]*rawConn, sessions)
	for i := range conns {
		conns[i] = dialRaw(t, addr)
		conns[i].hello(fmt.Sprintf("trader-%04d", i), 0)
		ops := testOps(5)
		for j := range ops {
			o := OrderFromOp(&ops[j], ops[j].Seq)
			conns[i].send(&o)
		}
	}
	waitFor(t, 5*time.Second, "orders admitted", func() bool {
		return mb.submittedTotal() == sessions*5
	})
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Active != 0 || st.SessionsClosed != sessions {
		t.Fatalf("sessions survived drain: %+v", st)
	}
	if mb.submittedTotal() != sessions*5 {
		t.Fatalf("in-flight orders lost in drain: %d", mb.submittedTotal())
	}
	mb.mu.Lock()
	drains := 0
	for _, reason := range mb.closes {
		if reason == "drain" {
			drains++
		}
	}
	mb.mu.Unlock()
	if drains != sessions {
		t.Fatalf("drain close events: %d of %d (%v)", drains, sessions, mb.closes)
	}
	// New connections are refused.
	conn, err := net.Dial("tcp", addr)
	if err == nil {
		conn.Close()
		t.Fatal("listener still accepting after drain")
	}
}

// TestReconnectResync: a client whose connection dies resumes under
// the same session ID from the server's processed high-water mark; no
// order is admitted twice, none is lost.
func TestReconnectResync(t *testing.T) {
	mb := newMockBackend()
	g, addr := startGateway(t, Config{Backend: mb})
	ops := testOps(40)

	// First connection: send half, then die abruptly.
	c1 := dialRaw(t, addr)
	ok := c1.hello("trader-0009", 0)
	for i := 0; i < 20; i++ {
		o := OrderFromOp(&ops[i], ops[i].Seq)
		c1.send(&o)
	}
	waitFor(t, 5*time.Second, "first half admitted", func() bool {
		return mb.submittedTotal() == 20
	})
	c1.conn.Close()
	waitFor(t, 5*time.Second, "binding release", func() bool {
		mb.mu.Lock()
		defer mb.mu.Unlock()
		return !mb.bound[9]
	})

	// Reconnect under the same session ID: the server reports its
	// processed high-water mark and the client resumes after it.
	c2 := dialRaw(t, addr)
	ok2 := c2.hello("trader-0009", ok.Session)
	if ok2.LastSeq != 20 {
		t.Fatalf("resync point: %d", ok2.LastSeq)
	}
	for i := range ops {
		if ops[i].Seq <= ok2.LastSeq {
			continue
		}
		o := OrderFromOp(&ops[i], ops[i].Seq)
		c2.send(&o)
	}
	waitFor(t, 5*time.Second, "rest admitted", func() bool {
		return mb.submittedTotal() == 40
	})
	if g.Stats().Resyncs != 1 {
		t.Fatalf("resyncs: %d", g.Stats().Resyncs)
	}
	// Exactly-once per seq: the mock saw each op one time.
	mb.mu.Lock()
	seen := make(map[uint64]int)
	for _, op := range mb.submitted[9] {
		seen[op.Seq]++
	}
	mb.mu.Unlock()
	for seq, n := range seen {
		if n != 1 {
			t.Fatalf("seq %d admitted %d times", seq, n)
		}
	}
	if len(seen) != 40 {
		t.Fatalf("admitted %d distinct seqs", len(seen))
	}
}

// TestClientRunRoundTrip: the production Client against the gateway —
// every op acked, ledger balanced.
func TestClientRunRoundTrip(t *testing.T) {
	mb := newMockBackend()
	_, addr := startGateway(t, Config{Backend: mb})
	ops := testOps(100)
	cl := NewClient(ClientConfig{Addr: addr, Token: "trader-0011", Seed: 3})
	if err := cl.Run(ops); err != nil {
		t.Fatal(err)
	}
	st := cl.Stats()
	if st.Acked+st.Rejected+st.Unsent != uint64(len(ops)) {
		t.Fatalf("client ledger: %+v", st)
	}
	if st.Unsent != 0 {
		t.Fatalf("unsent ops on a healthy connection: %+v", st)
	}
	if mb.submittedTotal() != 100 {
		t.Fatalf("backend admitted %d", mb.submittedTotal())
	}
}

// TestClientBackoffGivesUp: with nothing listening, the client
// retries with backoff and reports the failure.
func TestClientBackoffGivesUp(t *testing.T) {
	cl := NewClient(ClientConfig{
		Addr:        "127.0.0.1:1", // nothing listens here
		Token:       "trader-0000",
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
	})
	err := cl.Run(testOps(5))
	if err == nil {
		t.Fatal("Run succeeded against a dead address")
	}
	st := cl.Stats()
	if st.DialRetries != 3 {
		t.Fatalf("dial retries: %+v", st)
	}
	if st.Unsent != 5 {
		t.Fatalf("unsent: %+v", st)
	}
}
