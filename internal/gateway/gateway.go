package gateway

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/workload"
)

// Backend is the platform side of the gateway. trading.Ingress
// implements it: Authenticate binds a session to a trader principal,
// Submit publishes admitted orders through that trader's unit (the
// full tag/privilege choreography), and Reject/SessionClose publish
// admission events labeled with the session trader's tag — admission
// decisions are events the Regulator can see, never silent drops.
//
// Submit may block (backpressure onto the gateway, never the other
// way around); Reject and SessionClose may block the calling session
// only. All methods must be safe for concurrent use by different
// sessions; the gateway serializes calls per session and never binds
// two sessions to one trader at once.
type Backend interface {
	// Authenticate resolves a token to a trader index and its tag
	// name, binding the trader until SessionClose. It must refuse a
	// trader that is already bound.
	Authenticate(token string) (trader int, tag string, err error)
	// Submit delivers a run of admitted ops on behalf of the trader,
	// in order.
	Submit(trader int, ops []workload.OrderOp) error
	// Reject publishes n labeled admission-reject events for the
	// trader (reason is a RejectCode string).
	Reject(trader int, tag, reason string, n int)
	// SessionClose publishes a labeled session-close event and
	// unbinds the trader.
	SessionClose(trader int, tag, reason string)
}

// ErrDraining is returned to sessions arriving while the gateway
// shuts down.
var ErrDraining = errors.New("gateway: draining")

// Config tunes a Gateway. The zero value of any field selects its
// default.
type Config struct {
	// Backend is required.
	Backend Backend
	// IngressQueue bounds each session's admitted-op queue between
	// the socket reader and the submit worker (default 256). Overflow
	// sheds the op to a labeled reject — it never blocks the reader
	// and never grows without bound.
	IngressQueue int
	// OutboundQueue bounds each session's server→client frame queue
	// (default 128). A consumer that cannot drain it is a slow writer
	// and is evicted. Cumulative acks coalesce into one slot and
	// cannot overflow it.
	OutboundQueue int
	// Rate is the per-session admission rate in orders/second; 0
	// disables rate limiting. Burst is the token-bucket depth
	// (default: Rate, floor 1).
	Rate  float64
	Burst int
	// IdleTimeout evicts a session that sends no frame for this long
	// — the half-open/idle connection reaper (default 30s).
	IdleTimeout time.Duration
	// WriteTimeout bounds one outbound frame write; a conn that
	// cannot take a frame within it is a slow writer (default 5s).
	WriteTimeout time.Duration
	// DrainTimeout bounds the graceful-drain phase of Close
	// (default 5s).
	DrainTimeout time.Duration
	// MaxSessions refuses accepts beyond this many live sessions
	// (0 = unlimited).
	MaxSessions int
	// ResyncCache is how many closed sessions' processed high-water
	// marks are retained for reconnect-with-resync (default 1024).
	ResyncCache int
}

func (c *Config) defaults() {
	if c.IngressQueue <= 0 {
		c.IngressQueue = 256
	}
	if c.OutboundQueue <= 0 {
		c.OutboundQueue = 128
	}
	if c.Burst <= 0 {
		c.Burst = int(c.Rate)
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 30 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 5 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.ResyncCache <= 0 {
		c.ResyncCache = 1024
	}
}

// Stats counts gateway activity; all fields are cumulative except
// Active.
type Stats struct {
	Accepted        uint64
	Active          int64
	AuthFailures    uint64
	OrdersReceived  uint64
	Admitted        uint64
	RateRejects     uint64
	OverflowRejects uint64
	ProtoRejects    uint64
	DrainRejects    uint64
	DupOrders       uint64
	BackendFailures uint64
	IdleEvictions   uint64
	SlowEvictions   uint64
	Disconnects     uint64
	FrameErrors     uint64
	SessionsClosed  uint64
	Resyncs         uint64
}

// Rejected sums every reject class. The admission ledger invariant —
// no order is ever silently dropped — is
//
//	OrdersReceived == Admitted + Rejected() + DupOrders.
//
// BackendFailures counts admitted ops the backend refused after
// admission (platform shutdown); they stay inside Admitted and are
// the only losses — visible, and only possible once the platform
// itself is gone.
func (s *Stats) Rejected() uint64 {
	return s.RateRejects + s.OverflowRejects + s.ProtoRejects + s.DrainRejects
}

// Gateway is the ingress server.
type Gateway struct {
	cfg Config

	mu       sync.Mutex
	ln       net.Listener
	sessions map[uint64]*session
	// closedSeq remembers recently closed sessions' processed
	// high-water marks for reconnect-with-resync, FIFO-bounded.
	closedSeq  map[uint64]uint64
	closedFIFO []uint64
	nextID     uint64

	draining atomic.Bool

	wg sync.WaitGroup

	accepted        atomic.Uint64
	active          atomic.Int64
	authFailures    atomic.Uint64
	ordersReceived  atomic.Uint64
	admitted        atomic.Uint64
	rateRejects     atomic.Uint64
	overflowRejects atomic.Uint64
	protoRejects    atomic.Uint64
	drainRejects    atomic.Uint64
	dupOrders       atomic.Uint64
	backendFailures atomic.Uint64
	idleEvictions   atomic.Uint64
	slowEvictions   atomic.Uint64
	disconnects     atomic.Uint64
	frameErrors     atomic.Uint64
	sessionsClosed  atomic.Uint64
	resyncs         atomic.Uint64
}

// New builds a gateway.
func New(cfg Config) *Gateway {
	cfg.defaults()
	if cfg.Backend == nil {
		panic("gateway: Config.Backend is required")
	}
	return &Gateway{
		cfg:       cfg,
		sessions:  make(map[uint64]*session),
		closedSeq: make(map[uint64]uint64),
	}
}

// Stats snapshots the counters.
func (g *Gateway) Stats() Stats {
	return Stats{
		Accepted:        g.accepted.Load(),
		Active:          g.active.Load(),
		AuthFailures:    g.authFailures.Load(),
		OrdersReceived:  g.ordersReceived.Load(),
		Admitted:        g.admitted.Load(),
		RateRejects:     g.rateRejects.Load(),
		OverflowRejects: g.overflowRejects.Load(),
		ProtoRejects:    g.protoRejects.Load(),
		DrainRejects:    g.drainRejects.Load(),
		DupOrders:       g.dupOrders.Load(),
		BackendFailures: g.backendFailures.Load(),
		IdleEvictions:   g.idleEvictions.Load(),
		SlowEvictions:   g.slowEvictions.Load(),
		Disconnects:     g.disconnects.Load(),
		FrameErrors:     g.frameErrors.Load(),
		SessionsClosed:  g.sessionsClosed.Load(),
		Resyncs:         g.resyncs.Load(),
	}
}

// Serve accepts sessions on the listener until Close. It returns nil
// after a graceful Close, or the accept error.
func (g *Gateway) Serve(ln net.Listener) error {
	g.mu.Lock()
	if g.draining.Load() {
		g.mu.Unlock()
		ln.Close()
		return ErrDraining
	}
	g.ln = ln
	g.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if g.draining.Load() {
				return nil
			}
			return err
		}
		g.accepted.Add(1)
		if g.cfg.MaxSessions > 0 && int(g.active.Load()) >= g.cfg.MaxSessions {
			// Over capacity: a labeled refusal on the wire, then drop.
			buf := EncodeMsg(nil, &Close{Code: RejectOverflow, Reason: "session limit"})
			conn.SetWriteDeadline(time.Now().Add(g.cfg.WriteTimeout))
			conn.Write(buf)
			conn.Close()
			continue
		}
		s := newSession(g, conn)
		g.active.Add(1)
		g.wg.Add(1)
		go s.run()
	}
}

// Close drains the gateway: stop accepting, wake every session's
// reader so no further frames are admitted, flush admitted in-flight
// orders to the backend, emit labeled session-close events and Close
// frames, then close the connections. Idempotent.
func (g *Gateway) Close() error {
	if g.draining.Swap(true) {
		return nil
	}
	g.mu.Lock()
	ln := g.ln
	live := make([]*session, 0, len(g.sessions))
	for _, s := range g.sessions {
		live = append(live, s)
	}
	g.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, s := range live {
		// Waking the reader with an immediate deadline stops frame
		// intake; the reader observes draining and tears down through
		// the normal path (ingress flush → close frame → event).
		s.conn.SetReadDeadline(time.Now())
	}
	done := make(chan struct{})
	go func() { g.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-time.After(g.cfg.DrainTimeout):
		// Hard-close stragglers; their readers error out and tear
		// down, but we stop waiting for them.
		g.mu.Lock()
		for _, s := range g.sessions {
			s.conn.Close()
		}
		g.mu.Unlock()
		<-done
		return nil
	}
}

// register binds a session ID, refusing live duplicates; id 0 draws a
// fresh one. It reports the session's resync point (the processed
// high-water mark of a closed predecessor with the same ID).
func (g *Gateway) register(s *session, id uint64) (uint64, uint64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining.Load() {
		return 0, 0, ErrDraining
	}
	if id == 0 {
		g.nextID++
		id = g.nextID
	} else if _, live := g.sessions[id]; live {
		return 0, 0, fmt.Errorf("gateway: session %d already connected", id)
	} else if id > g.nextID {
		g.nextID = id
	}
	last := g.closedSeq[id]
	g.sessions[id] = s
	return id, last, nil
}

// unregister removes a closed session, retaining its processed
// high-water mark for resync (FIFO-bounded).
func (g *Gateway) unregister(s *session) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.sessions[s.id] != s {
		return
	}
	delete(g.sessions, s.id)
	if _, seen := g.closedSeq[s.id]; !seen {
		g.closedFIFO = append(g.closedFIFO, s.id)
		if len(g.closedFIFO) > g.cfg.ResyncCache {
			evict := g.closedFIFO[0]
			g.closedFIFO = g.closedFIFO[1:]
			delete(g.closedSeq, evict)
		}
	}
	g.closedSeq[s.id] = s.seq
}

// bucket is a per-session token bucket; touched only by the session's
// reader goroutine.
type bucket struct {
	tokens float64
	last   time.Time
	rate   float64
	burst  float64
}

func newBucket(rate float64, burst int, now time.Time) *bucket {
	return &bucket{tokens: float64(burst), last: now, rate: rate, burst: float64(burst)}
}

func (b *bucket) take(now time.Time) bool {
	if b.rate <= 0 {
		return true
	}
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// session is one live connection.
type session struct {
	g    *Gateway
	conn net.Conn

	id     uint64
	trader int
	tag    string
	authed bool
	seq    uint64 // processed high-water (reader goroutine only)

	ingress chan workload.OrderOp
	subWG   sync.WaitGroup
	wrWG    sync.WaitGroup

	// Outbound plumbing: distinct frames ride the bounded out queue;
	// cumulative acks coalesce into ackSeq (CAS-max) + a one-token
	// kick so they can never overflow the queue.
	out     chan []byte
	ackSeq  atomic.Uint64
	ackKick chan struct{}
	wclosed chan struct{} // signals the writer to flush and stop
	werr    atomic.Bool   // writer hit an error or evicted the session

	closeCode   RejectCode
	closeReason string
}

func newSession(g *Gateway, conn net.Conn) *session {
	return &session{
		g:       g,
		conn:    conn,
		ingress: make(chan workload.OrderOp, g.cfg.IngressQueue),
		out:     make(chan []byte, g.cfg.OutboundQueue),
		ackKick: make(chan struct{}, 1),
		wclosed: make(chan struct{}),
	}
}

// send enqueues a frame; a full queue marks the session a slow writer
// and evicts it. Reader goroutine only.
func (s *session) send(m any) bool {
	select {
	case s.out <- EncodeMsg(nil, m):
		return true
	default:
		s.g.slowEvictions.Add(1)
		s.evict()
		return false
	}
}

// evict forces the connection closed; the reader unblocks with an
// error and tears the session down.
func (s *session) evict() {
	s.werr.Store(true)
	s.conn.Close()
}

// kickAck publishes a cumulative ack point (CAS-max) and nudges the
// writer. Safe from reader and submitter.
func (s *session) kickAck(seq uint64) {
	for {
		cur := s.ackSeq.Load()
		if seq <= cur || s.ackSeq.CompareAndSwap(cur, seq) {
			break
		}
	}
	select {
	case s.ackKick <- struct{}{}:
	default:
	}
}

// run is the session's reader loop and teardown driver.
func (s *session) run() {
	defer s.g.wg.Done()
	g := s.g

	s.wrWG.Add(1)
	go s.writer()
	s.subWG.Add(1)
	go s.submitter()

	code, reason := s.readLoop()

	// Teardown, always through the same path:
	// 1. no more frames are read; flush admitted in-flight orders.
	close(s.ingress)
	s.subWG.Wait()
	// 2. final cumulative ack + close frame; the writer flushes what
	//    the connection will still take, then stops.
	if s.seq > 0 {
		s.kickAck(s.seq)
	}
	s.closeCode, s.closeReason = code, reason
	close(s.wclosed)
	// 3. the writer finishes its bounded flush, then the connection
	//    dies...
	s.wrWG.Wait()
	s.conn.Close()
	// 4. ...the session leaves the live table (its resync point
	//    survives), and the platform hears about it with the session
	//    trader's label on the event.
	if s.authed {
		g.unregister(s)
		g.cfg.Backend.SessionClose(s.trader, s.tag, reason)
	}
	g.active.Add(-1)
	g.sessionsClosed.Add(1)
}

// readLoop processes frames until the session ends; it returns the
// close code/reason.
func (s *session) readLoop() (RejectCode, string) {
	g := s.g
	br := bufio.NewReaderSize(s.conn, 4096)
	var frame []byte
	limiter := newBucket(g.cfg.Rate, g.cfg.Burst, time.Now())

	for {
		s.conn.SetReadDeadline(time.Now().Add(g.cfg.IdleTimeout))
		payload, err := readFrame(br, frame)
		if err != nil {
			if s.draining() {
				return RejectDrain, "drain"
			}
			switch {
			case s.werr.Load():
				return RejectOverflow, "slow-writer"
			case errors.Is(err, ErrBadFrame) || errors.Is(err, ErrBadCRC):
				// The stream cannot be trusted past a framing fault.
				g.frameErrors.Add(1)
				return RejectProto, "frame-error"
			case isTimeout(err):
				g.idleEvictions.Add(1)
				return RejectAuth, "idle-timeout"
			default:
				g.disconnects.Add(1)
				return RejectAuth, "disconnect"
			}
		}
		frame = payload[:0]

		m, err := DecodeMsg(payload)
		if err != nil {
			g.frameErrors.Add(1)
			return RejectProto, "malformed-message"
		}

		if !s.authed {
			hello, ok := m.(*Hello)
			if !ok {
				// Auth-before-first-order: anything else is refused
				// and the connection dropped.
				g.authFailures.Add(1)
				s.send(&Close{Code: RejectAuth, Reason: "authenticate first"})
				return RejectAuth, "unauthenticated"
			}
			if code, reason, ok := s.handleHello(hello); !ok {
				return code, reason
			}
			continue
		}

		switch v := m.(type) {
		case *Order:
			s.handleOrder(v, limiter)
		case *Ping:
			s.send(&Pong{Nonce: v.Nonce})
		case *Bye:
			return RejectAuth, "bye"
		case *Hello:
			// Re-authentication on a live session is a protocol error.
			g.frameErrors.Add(1)
			return RejectProto, "duplicate-hello"
		default:
			// A client speaking server messages is broken.
			g.frameErrors.Add(1)
			return RejectProto, "unexpected-message"
		}
	}
}

// handleHello authenticates and registers the session.
func (s *session) handleHello(h *Hello) (RejectCode, string, bool) {
	g := s.g
	trader, tag, err := g.cfg.Backend.Authenticate(h.Token)
	if err != nil {
		g.authFailures.Add(1)
		s.send(&Close{Code: RejectAuth, Reason: err.Error()})
		return RejectAuth, "auth-failed", false
	}
	id, last, err := g.register(s, h.Session)
	if err != nil {
		// The trader bound above must be released: the session never
		// became live. SessionClose in run() only fires for authed
		// sessions, and authed is still false here.
		g.cfg.Backend.SessionClose(trader, tag, "register-failed")
		g.authFailures.Add(1)
		code := RejectDuplicate
		if errors.Is(err, ErrDraining) {
			code = RejectDrain
		}
		s.send(&Close{Code: code, Reason: err.Error()})
		return code, "register-failed", false
	}
	s.id, s.trader, s.tag, s.authed = id, trader, tag, true
	s.seq = last
	if last > 0 {
		g.resyncs.Add(1)
	}
	s.send(&HelloOK{Session: id, Trader: uint32(trader), LastSeq: last})
	return 0, "", true
}

// handleOrder is the admission decision for one order.
func (s *session) handleOrder(o *Order, limiter *bucket) {
	g := s.g
	g.ordersReceived.Add(1)
	if o.Seq <= s.seq {
		// Resync overlap: already processed under this session ID.
		g.dupOrders.Add(1)
		s.kickAck(s.seq)
		return
	}
	s.seq = o.Seq
	if s.draining() {
		s.shed(o, RejectDrain, &g.drainRejects)
		return
	}
	if !limiter.take(time.Now()) {
		s.shed(o, RejectRate, &g.rateRejects)
		return
	}
	select {
	case s.ingress <- o.Op():
		g.admitted.Add(1)
	default:
		// Bounded ingress queue full — the submitter (and behind it
		// the platform) is the bottleneck. Shed, never block the
		// socket reader, never queue unboundedly.
		s.shed(o, RejectOverflow, &g.overflowRejects)
	}
}

// shed refuses one order: a wire Reject to the client AND a labeled
// reject event through the backend — the admission decision is
// observable on both sides, never a silent drop. The reject advances
// the cumulative ack point: processed ≠ admitted.
func (s *session) shed(o *Order, code RejectCode, counter *atomic.Uint64) {
	counter.Add(1)
	s.g.cfg.Backend.Reject(s.trader, s.tag, code.String(), 1)
	s.send(&Reject{Seq: o.Seq, Code: code, Tag: s.tag})
	s.kickAck(s.seq)
}

func (s *session) draining() bool { return s.g.draining.Load() }

// submitter drains the ingress queue in batches and submits them to
// the backend. Backend backpressure lands here: the ingress queue
// fills and the reader sheds — bounded, labeled, and strictly off the
// matching path.
func (s *session) submitter() {
	defer s.subWG.Done()
	buf := make([]workload.OrderOp, 0, 64)
	for op := range s.ingress {
		buf = append(buf[:0], op)
	refill:
		for len(buf) < cap(buf) {
			select {
			case op, ok := <-s.ingress:
				if !ok {
					break refill
				}
				buf = append(buf, op)
			default:
				break refill
			}
		}
		if err := s.g.cfg.Backend.Submit(s.trader, buf); err != nil {
			// The platform is gone (shutdown): there is nothing to
			// reject through. Count the loss visibly — these ops stay
			// in Admitted, and BackendFailures marks them lost.
			s.g.backendFailures.Add(uint64(len(buf)))
			continue
		}
		s.kickAck(buf[len(buf)-1].Seq)
	}
}

// writer drains outbound frames. It owns the connection's write side:
// one frame at a time under WriteTimeout; an error or eviction stops
// it (frames already queued are dropped — the client recovers by
// resync, the platform-side ledger is already consistent).
func (s *session) writer() {
	defer s.wrWG.Done()
	var lastAck uint64
	writeFrame := func(buf []byte) bool {
		s.conn.SetWriteDeadline(time.Now().Add(s.g.cfg.WriteTimeout))
		if _, err := s.conn.Write(buf); err != nil {
			if !s.werr.Swap(true) {
				s.g.slowEvictions.Add(1)
			}
			s.conn.Close()
			return false
		}
		return true
	}
	writeAck := func() bool {
		if seq := s.ackSeq.Load(); seq > lastAck {
			lastAck = seq
			return writeFrame(EncodeMsg(nil, &Ack{Seq: seq}))
		}
		return true
	}
	for {
		select {
		case buf := <-s.out:
			if !writeFrame(buf) {
				return
			}
		case <-s.ackKick:
			if !writeAck() {
				return
			}
		case <-s.wclosed:
			// Final flush: queued frames, the last ack, the close
			// frame — each best-effort under the write deadline.
			for {
				select {
				case buf := <-s.out:
					if !writeFrame(buf) {
						return
					}
				default:
					if writeAck() {
						writeFrame(EncodeMsg(nil, &Close{Code: s.closeCode, Reason: s.closeReason}))
					}
					return
				}
			}
		}
	}
}

// isTimeout reports whether an error is a read-deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
