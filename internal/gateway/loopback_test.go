package gateway

// Loopback load-generation smoke: N concurrent sessions drive
// workload-derived order flow through real sockets into a live
// platform. The assertions are the admission-control soundness
// claims: zero silent drops (every order acked or labeled-rejected,
// gateway and platform ledgers agree) and zero matching-path blocking
// (the platform keeps matching and quiesces promptly after drain).
//
// CI scales it up via GATEWAY_SMOKE_SESSIONS / GATEWAY_SMOKE_OPS.

import (
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trading"
	"repro/internal/workload"
)

func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func TestGatewayLoadgenSmoke(t *testing.T) {
	sessions := envInt("GATEWAY_SMOKE_SESSIONS", 32)
	perSession := envInt("GATEWAY_SMOKE_OPS", 60)

	p, ingress, g, addr := chaosPlatform(t, core.LabelsFreeze, sessions, nil)

	start := time.Now()
	var wg sync.WaitGroup
	clients := make([]*Client, sessions)
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		clients[i] = NewClient(ClientConfig{
			Addr:      addr,
			Token:     trading.TraderToken(i),
			Seed:      int64(i) + 1,
			IOTimeout: 30 * time.Second,
		})
		ops := sessionOps(p.Universe(), i, perSession)
		wg.Add(1)
		go func(i int, ops []workload.OrderOp) {
			defer wg.Done()
			errs[i] = clients[i].Run(ops)
		}(i, ops)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var acked uint64
	for i, cl := range clients {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		st := cl.Stats()
		if st.Unsent != 0 || st.Acked+st.Rejected != uint64(perSession) {
			t.Fatalf("session %d ledger: %+v", i, st)
		}
		acked += st.Acked
	}

	st := g.Stats()
	total := uint64(sessions * perSession)
	// Zero silent drops: everything received is accounted for, and
	// what the clients think was admitted matches the gateway.
	if st.OrdersReceived != total {
		t.Fatalf("gateway received %d of %d", st.OrdersReceived, total)
	}
	if st.OrdersReceived != st.Admitted+st.Rejected()+st.DupOrders {
		t.Fatalf("admission ledger leaks: %+v", st)
	}
	if st.Admitted != acked {
		t.Fatalf("clients acked %d, gateway admitted %d", acked, st.Admitted)
	}
	if st.BackendFailures != 0 {
		t.Fatalf("admitted orders lost to the backend: %+v", st)
	}
	// Every shed has its labeled event.
	sheds := st.RateRejects + st.OverflowRejects + st.DrainRejects
	if ingress.Rejects() != sheds {
		t.Fatalf("labeled rejects %d != sheds %d", ingress.Rejects(), sheds)
	}

	// Zero matching-path blocking: with every socket still open, the
	// platform drains its queues promptly — matching never waited on
	// a client.
	if !p.Quiesce(60 * time.Second) {
		t.Fatal("matching path wedged: platform did not quiesce under open sockets")
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if !p.Quiesce(30 * time.Second) {
		t.Fatal("platform did not quiesce after drain")
	}
	time.Sleep(50 * time.Millisecond)
	if err := p.Broker.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if err := p.Broker.ValidateBooks(); err != nil {
		t.Fatal(err)
	}
	if p.Broker.Trades() == 0 {
		t.Fatal("crossing flow produced no trades through the gateway")
	}
	t.Logf("smoke: %d sessions × %d orders in %v (%d trades, %d sheds)",
		sessions, perSession, elapsed.Round(time.Millisecond), p.Broker.Trades(), sheds)
}
