package events

// Clone pooling.
//
// The labels+clone security mode hands every receiver a private deep
// copy of the published event (§4.1's MVM-style copying cost). At
// high rates that is one Event, one part slice and one Part per part
// per delivery — all short-lived garbage. DeepCopy therefore draws
// its Event and Part shells from sync.Pools, and Recycle returns
// them once a clone is provably dead:
//
//   - the dispatcher recycles clones whose enqueue was refused (the
//     clone never escaped), and
//   - a sole-owner consumer (a benchmark harness draining its own
//     queue, a managed instance that provably retains nothing) may
//     recycle explicitly via Unit.Recycle.
//
// Only the shells are pooled: part Data is a fresh deep copy whose
// ownership transfers to whoever read it, so a PartView taken before
// a Recycle stays valid.

import (
	"sync"

	"repro/internal/freeze"
)

// QueuedDelivery pairs an event with the subscription it matched; it
// is the unit of the batched receiver handoff (Receiver.EnqueueBatch).
type QueuedDelivery struct {
	Event *Event
	Sub   uint64
}

var (
	eventPool = sync.Pool{New: func() any { return new(Event) }}
	partPool  = sync.Pool{New: func() any { return new(Part) }}
)

// DeepCopyPooled clones the event and all part data with identical
// labels and grants, drawing the Event and Part shells from the clone
// pool. The result reports Pooled() true and may be returned with
// Recycle once dead.
func (e *Event) DeepCopyPooled(newID uint64) *Event {
	ne := eventPool.Get().(*Event)
	ne.id = newID
	ne.poolable = true
	e.mu.RLock()
	ne.Stamp = e.Stamp
	ne.nextSq = e.nextSq
	if cap(ne.parts) < len(e.parts) {
		ne.parts = make([]*Part, 0, len(e.parts))
	}
	for _, p := range e.parts {
		np := partPool.Get().(*Part)
		np.Name = p.Name
		np.Label = p.Label
		np.Data = freeze.CloneValue(p.Data)
		np.Grants = append(np.Grants[:0], p.Grants...)
		np.Seq = p.Seq
		np.AddedBy = p.AddedBy
		ne.parts = append(ne.parts, np)
	}
	e.mu.RUnlock()
	return ne
}

// Pooled reports whether the event came from the clone pool and has
// not been recycled.
func (e *Event) Pooled() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.poolable
}

// Recycle returns a pooled clone (and its Part shells) to the pool.
// It is a no-op on events that did not come from the pool, and is
// idempotent — the first call wins.
//
// Contract: the caller asserts that no goroutine retains a reference
// to the event or its *Part structs. Part Data values are NOT pooled;
// previously read PartViews remain valid.
func (e *Event) Recycle() {
	e.mu.Lock()
	if !e.poolable {
		e.mu.Unlock()
		return
	}
	e.poolable = false
	parts := e.parts
	e.id = 0
	e.Stamp = 0
	e.Origin = ""
	e.Hops = 0
	e.nextSq = 0
	e.frozen = 0
	e.gen.Store(0)
	e.delivered = e.delivered[:0]
	e.deliveredMap = nil
	for i, p := range parts {
		releasePart(p)
		parts[i] = nil
	}
	e.parts = parts[:0]
	e.mu.Unlock()
	eventPool.Put(e)
}

// releasePart zeroes a Part shell and returns it to the pool, keeping
// the Grants capacity for reuse. Grants hold no pointers, so the
// retained capacity pins nothing.
func releasePart(p *Part) {
	grants := p.Grants[:0]
	*p = Part{}
	p.Grants = grants
	partPool.Put(p)
}
