package events

// Property-based tests of event visibility invariants.

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/labels"
	"repro/internal/tags"
)

var qpool = func() []tags.Tag {
	s := tags.NewStore(777)
	out := make([]tags.Tag, 5)
	for i := range out {
		out[i] = s.Create(fmt.Sprintf("e%d", i), "quick")
	}
	return out
}()

func randSet(r *rand.Rand) labels.Set {
	var members []tags.Tag
	mask := r.Intn(1 << len(qpool))
	for i, t := range qpool {
		if mask&(1<<i) != 0 {
			members = append(members, t)
		}
	}
	return labels.NewSet(members...)
}

// evScenario is a generated event (part labels) plus two reader labels
// with low ≺ high.
type evScenario struct {
	Parts     []labels.Label
	Low, High labels.Label
}

// Generate implements quick.Generator: High is built from Low by only
// adding confidentiality and removing integrity, so Low ≺ High by
// construction.
func (evScenario) Generate(r *rand.Rand, _ int) reflect.Value {
	sc := evScenario{}
	n := 1 + r.Intn(4)
	for i := 0; i < n; i++ {
		sc.Parts = append(sc.Parts, labels.Label{S: randSet(r), I: randSet(r)})
	}
	lowI := randSet(r)
	sc.Low = labels.Label{S: randSet(r), I: lowI}
	sc.High = labels.Label{
		S: sc.Low.S.Union(randSet(r)),
		I: lowI.Subtract(randSet(r)),
	}
	return reflect.ValueOf(sc)
}

// TestQuickVisibilityMonotone: raising a reader's label (in the
// can-flow-to order) never hides a part that was visible before.
func TestQuickVisibilityMonotone(t *testing.T) {
	f := func(sc evScenario) bool {
		if !sc.Low.CanFlowTo(sc.High) {
			return true // generator degenerate case
		}
		e := New(1)
		for i, pl := range sc.Parts {
			if _, err := e.AddPart(fmt.Sprintf("p%d", i), pl, "v", "gen"); err != nil {
				return false
			}
		}
		lowVis := map[string]bool{}
		for _, p := range e.VisibleAll(sc.Low) {
			lowVis[p.Name] = true
		}
		highVis := map[string]bool{}
		for _, p := range e.VisibleAll(sc.High) {
			highVis[p.Name] = true
		}
		for name := range lowVis {
			if !highVis[name] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickVisibleIsFilteredParts: Visible(name, in) equals the subset
// of Parts() with that name whose labels flow to in.
func TestQuickVisibleIsFilteredParts(t *testing.T) {
	f := func(sc evScenario) bool {
		e := New(1)
		for _, pl := range sc.Parts {
			if _, err := e.AddPart("p", pl, "v", "gen"); err != nil {
				return false
			}
		}
		want := 0
		for _, p := range e.Parts() {
			if p.Label.CanFlowTo(sc.Low) {
				want++
			}
		}
		return len(e.Visible("p", sc.Low)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickCloneRelabelledDominates: every part of a clone carries a
// label at or above the original's join with the cloner's output.
func TestQuickCloneRelabelledDominates(t *testing.T) {
	f := func(sc evScenario) bool {
		e := New(1)
		for i, pl := range sc.Parts {
			if _, err := e.AddPart(fmt.Sprintf("p%d", i), pl, "v", "gen"); err != nil {
				return false
			}
		}
		out := sc.Low
		ne := e.CloneRelabelled(2, out, false)
		orig := e.Parts()
		for i, p := range ne.Parts() {
			want := orig[i].Label.WithContamination(out)
			if !p.Label.Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestConcurrentReadersAndWriter stresses the event's internal locking:
// one goroutine keeps adding parts while readers enumerate visibility.
func TestConcurrentReadersAndWriter(t *testing.T) {
	e := New(1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = e.VisibleAll(labels.Label{})
				_ = e.Visible("p", labels.Label{})
				_ = e.Len()
				e.FreezeParts()
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		if _, err := e.AddPart("p", labels.Label{}, int64(i), "w"); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			e.MarkDelivered(uint64(i))
		}
	}
	close(stop)
	wg.Wait()
	if e.Len() != 2000 {
		t.Fatalf("Len = %d", e.Len())
	}
}
