package events

import (
	"errors"
	"testing"

	"repro/internal/freeze"
	"repro/internal/labels"
	"repro/internal/priv"
	"repro/internal/tags"
)

type fixture struct {
	store *tags.Store
	dark  tags.Tag // confidentiality: dark-pool
	t77   tags.Tag // confidentiality: s-trader-77
	i77   tags.Tag // integrity: i-trader-77
}

func newFixture() fixture {
	s := tags.NewStore(11)
	return fixture{
		store: s,
		dark:  s.Create("dark-pool", "broker"),
		t77:   s.Create("s-trader-77", "trader-77"),
		i77:   s.Create("i-trader-77", "trader-77"),
	}
}

// buildBid reproduces the Figure 1 event: a bid with a public type
// part, a dark-pool body and a trader identity protected by both tags,
// all carrying trader 77's integrity.
func buildBid(t *testing.T, f fixture) *Event {
	t.Helper()
	e := New(1)
	i := labels.NewSet(f.i77)
	mustAdd := func(name string, s labels.Set, data freeze.Value) {
		t.Helper()
		if _, err := e.AddPart(name, labels.Label{S: s, I: i}, data, "trader-77"); err != nil {
			t.Fatalf("AddPart(%s): %v", name, err)
		}
	}
	mustAdd("type", labels.EmptySet, "bid")
	mustAdd("body", labels.NewSet(f.dark), freeze.MapOf("price", int64(1234), "symbol", "MSFT"))
	mustAdd("trader_id", labels.NewSet(f.dark, f.t77), "trader-77")
	return e
}

func TestVisibilityPerPart(t *testing.T) {
	f := newFixture()
	e := buildBid(t, f)

	public := labels.Public
	// A public reader (no tags, no integrity requirement) sees only the
	// type part.
	if got := e.VisibleAll(public); len(got) != 1 || got[0].Name != "type" {
		t.Fatalf("public reader sees %d parts", len(got))
	}

	// The Broker reads at {dark-pool}: sees type and body, not the
	// identity.
	broker := labels.Label{S: labels.NewSet(f.dark)}
	vis := e.VisibleAll(broker)
	if len(vis) != 2 {
		t.Fatalf("broker sees %d parts, want 2", len(vis))
	}
	if len(e.Visible("trader_id", broker)) != 0 {
		t.Fatal("broker can see trader identity")
	}

	// Reading at {dark-pool, s-trader-77} reveals the identity.
	full := labels.Label{S: labels.NewSet(f.dark, f.t77)}
	if len(e.Visible("trader_id", full)) != 1 {
		t.Fatal("full label cannot see trader identity")
	}
}

func TestVisibilityIntegrityDirection(t *testing.T) {
	f := newFixture()
	e := buildBid(t, f)
	// A reader requiring integrity {i77} can see the (endorsed) type
	// part; a reader requiring some other integrity cannot.
	endorsedReader := labels.Label{I: labels.NewSet(f.i77)}
	if len(e.Visible("type", endorsedReader)) != 1 {
		t.Fatal("endorsed reader rejected endorsed part")
	}
	other := f.store.Create("i-other", "x")
	otherReader := labels.Label{I: labels.NewSet(other)}
	if len(e.Visible("type", otherReader)) != 0 {
		t.Fatal("reader with alien integrity requirement saw part")
	}
}

func TestAddPartValidation(t *testing.T) {
	e := New(2)
	if _, err := e.AddPart("", labels.Public, "x", "u"); err == nil {
		t.Fatal("empty part name accepted")
	}
	if _, err := e.AddPart("p", labels.Public, []byte("raw"), "u"); !errors.Is(err, freeze.ErrBadValue) {
		t.Fatalf("raw []byte accepted: %v", err)
	}
	if e.Len() != 0 {
		t.Fatal("failed AddPart left residue")
	}
}

func TestMultipleVersionsAllReturned(t *testing.T) {
	e := New(3)
	l := labels.Public
	if _, err := e.AddPart("reason", l, "v1", "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddPart("reason", l, "v2", "b"); err != nil {
		t.Fatal(err)
	}
	got := e.Visible("reason", labels.Public)
	if len(got) != 2 {
		t.Fatalf("Visible returned %d versions, want 2", len(got))
	}
	if got[0].Seq >= got[1].Seq {
		t.Fatal("versions out of attach order")
	}
}

func TestDelPartExactLabel(t *testing.T) {
	f := newFixture()
	e := buildBid(t, f)
	i := labels.NewSet(f.i77)

	wrong := labels.Label{S: labels.NewSet(f.dark)} // missing integrity
	if err := e.DelPart("body", wrong); !errors.Is(err, ErrNoSuchPart) {
		t.Fatalf("DelPart with wrong label = %v", err)
	}
	right := labels.Label{S: labels.NewSet(f.dark), I: i}
	if err := e.DelPart("body", right); err != nil {
		t.Fatalf("DelPart: %v", err)
	}
	if e.Len() != 2 {
		t.Fatalf("Len after delete = %d", e.Len())
	}
	if err := e.DelPart("body", right); !errors.Is(err, ErrNoSuchPart) {
		t.Fatal("double delete succeeded")
	}
}

func TestAttachGrantTargetsExactPart(t *testing.T) {
	f := newFixture()
	e := buildBid(t, f)
	g := priv.Grant{Tag: f.t77, Right: priv.Plus}

	wrong := labels.Public
	if err := e.AttachGrant("body", wrong, g); !errors.Is(err, ErrNoSuchPart) {
		t.Fatalf("AttachGrant with wrong label = %v", err)
	}
	right := labels.Label{S: labels.NewSet(f.dark), I: labels.NewSet(f.i77)}
	if err := e.AttachGrant("body", right, g); err != nil {
		t.Fatalf("AttachGrant: %v", err)
	}
	parts := e.Visible("body", labels.Label{S: labels.NewSet(f.dark), I: labels.NewSet(f.i77)})
	if len(parts) != 1 || len(parts[0].Grants) != 1 || parts[0].Grants[0] != g {
		t.Fatal("grant not attached to the right part")
	}
}

func TestGenerationTracksStructuralChanges(t *testing.T) {
	f := newFixture()
	e := New(4)
	g0 := e.Generation()
	if _, err := e.AddPart("p", labels.Public, "v", "u"); err != nil {
		t.Fatal(err)
	}
	g1 := e.Generation()
	if g1 <= g0 {
		t.Fatal("AddPart did not bump generation")
	}
	if err := e.AttachGrant("p", labels.Public, priv.Grant{Tag: f.t77, Right: priv.Plus}); err != nil {
		t.Fatal(err)
	}
	if e.Generation() <= g1 {
		t.Fatal("AttachGrant did not bump generation")
	}
}

func TestFreezePartsFreezesAllThenNewOnes(t *testing.T) {
	e := New(5)
	m1 := freeze.NewMap()
	if _, err := e.AddPart("a", labels.Public, m1, "u"); err != nil {
		t.Fatal(err)
	}
	e.FreezeParts()
	if !m1.Frozen() {
		t.Fatal("publish freeze missed part data")
	}
	// Part added along the main dataflow path, then released.
	m2 := freeze.NewMap()
	if _, err := e.AddPart("b", labels.Public, m2, "u"); err != nil {
		t.Fatal(err)
	}
	if m2.Frozen() {
		t.Fatal("new part frozen too early")
	}
	e.FreezeParts()
	if !m2.Frozen() {
		t.Fatal("release freeze missed new part")
	}
}

func TestCloneRelabelled(t *testing.T) {
	f := newFixture()
	e := buildBid(t, f)
	e.Stamp = 42
	e.FreezeParts()

	// Clone by a unit whose output label is ({t77}, {i77}).
	out := labels.Label{S: labels.NewSet(f.t77), I: labels.NewSet(f.i77)}
	ne := e.CloneRelabelled(9, out, false)
	if ne.ID() != 9 || ne.Stamp != 42 {
		t.Fatalf("clone meta wrong: id=%d stamp=%d", ne.ID(), ne.Stamp)
	}
	if ne.Len() != e.Len() {
		t.Fatal("clone part count differs")
	}
	for _, p := range ne.Parts() {
		if !p.Label.S.Has(f.t77) {
			t.Fatalf("part %q missing cloner's S tag", p.Name)
		}
		if !p.Label.I.SubsetOf(labels.NewSet(f.i77)) {
			t.Fatalf("part %q integrity beyond cloner's output", p.Name)
		}
		if len(p.Grants) != 0 {
			t.Fatal("clone copied privilege grants")
		}
	}
	// Shallow clone shares frozen data.
	op := e.Parts()[1].Data.(*freeze.Map)
	np := ne.Parts()[1].Data.(*freeze.Map)
	if op != np {
		t.Fatal("shallow clone copied data")
	}

	// Deep clone must not share.
	nd := e.CloneRelabelled(10, out, true)
	if e.Parts()[1].Data.(*freeze.Map) == nd.Parts()[1].Data.(*freeze.Map) {
		t.Fatal("deep clone shared data")
	}
}

func TestDeepCopyPreservesLabelsAndGrants(t *testing.T) {
	f := newFixture()
	e := buildBid(t, f)
	g := priv.Grant{Tag: f.t77, Right: priv.Plus}
	idLabel := labels.Label{S: labels.NewSet(f.dark, f.t77), I: labels.NewSet(f.i77)}
	if err := e.AttachGrant("trader_id", idLabel, g); err != nil {
		t.Fatal(err)
	}
	e.FreezeParts()

	c := e.DeepCopy(20)
	if c.Len() != e.Len() {
		t.Fatal("part count differs")
	}
	cid := c.Visible("trader_id", idLabel)
	if len(cid) != 1 || len(cid[0].Grants) != 1 || cid[0].Grants[0] != g {
		t.Fatal("DeepCopy lost grants")
	}
	// Data is copied, not shared.
	ob := e.Visible("body", labels.Label{S: labels.NewSet(f.dark), I: labels.NewSet(f.i77)})[0]
	cb := c.Visible("body", labels.Label{S: labels.NewSet(f.dark), I: labels.NewSet(f.i77)})[0]
	if ob.Data.(*freeze.Map) == cb.Data.(*freeze.Map) {
		t.Fatal("DeepCopy shared data")
	}
	// The copy is mutable again (per-receiver private copy).
	if err := cb.Data.(*freeze.Map).Put("note", "mine"); err != nil {
		t.Fatalf("mutating deep copy: %v", err)
	}
}

func TestPartsSnapshotIsCopy(t *testing.T) {
	e := New(6)
	if _, err := e.AddPart("p", labels.Public, "v", "u"); err != nil {
		t.Fatal(err)
	}
	snap := e.Parts()
	snap[0] = nil
	if e.Parts()[0] == nil {
		t.Fatal("Parts returned internal slice")
	}
}

func TestStringAndIDs(t *testing.T) {
	e := New(77)
	if e.ID() != 77 {
		t.Fatal("ID wrong")
	}
	if e.String() == "" {
		t.Fatal("empty String")
	}
}
