// Package events implements DEFC event messages (paper §3.1.2).
//
// An event consists of named parts; each part carries data and its own
// security label, so a single event can be processed as one connected
// entity while its parts have different sensitivity (Figure 1: a bid
// whose type is public, whose body is confined to the dark pool and
// whose trader identity carries an additional trader-private tag).
//
// Parts may also carry privileges (§3.1.5): reading such a part bestows
// the attached grants on the reader — the in-band, covert-channel-free
// delegation mechanism of the DEFC model.
package events

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/freeze"
	"repro/internal/labels"
	"repro/internal/priv"
)

// ErrNoSuchPart is returned when a named part is absent (or invisible
// at the caller's input label — the two are indistinguishable by
// design: absence must not leak).
var ErrNoSuchPart = errors.New("events: no such part")

// Part is one named, labelled datum within an event. Parts are
// immutable once attached to a published event; "modification" of a
// part is modelled as adding a new version (§3.1.6: conflicting
// modifications leave both versions in the event).
type Part struct {
	// Name of the part, e.g. "type", "body", "trader_id".
	Name string
	// Label protecting the part's data.
	Label labels.Label
	// Data payload: an immutable scalar or a Freezable container.
	Data freeze.Value
	// Grants are privileges carried by the part; they are bestowed on
	// any unit that reads the part (and can already read its data).
	Grants []priv.Grant
	// Seq is the attach order of the part within its event; versions of
	// a same-named part are distinguished by Seq.
	Seq int
	// AddedBy records the adding unit's name, for diagnostics only.
	AddedBy string
}

// CloneShallow returns a copy of the part sharing the (frozen) data.
func (p *Part) CloneShallow() *Part {
	q := *p
	q.Grants = append([]priv.Grant(nil), p.Grants...)
	return &q
}

// Event is a DEFC event message: an identity plus an append-mostly
// collection of labelled parts. Events are shared between isolates in
// the labels+freeze modes, so all access is internally synchronised.
type Event struct {
	id uint64

	// Stamp is the origin timestamp in nanoseconds, set by the creating
	// unit for end-to-end latency accounting. It is measurement
	// plumbing, not part of the DEFC model.
	Stamp int64

	// Origin names the remote DEFCon node an imported event arrived
	// from ("" for local events). The node runtime uses it to prevent
	// forwarding loops; it is invisible to units.
	Origin string

	// Hops counts inter-node forwards this event has taken; links stop
	// propagating an event once the node's hop budget is spent.
	Hops uint8

	mu     sync.RWMutex
	parts  []*Part
	nextSq int
	frozen int // parts[:frozen] have had their data frozen

	// gen counts structural modifications; the dispatcher compares
	// generations across delivery and release to decide whether a
	// released event needs re-matching (§3.1.6).
	gen atomic.Uint64

	// delivered records receiver IDs this event has been offered to
	// (hybrid slice/map; see delivery.go).
	delivered    []uint64
	deliveredMap map[uint64]struct{}

	// poolable marks a clone drawn from the clone pool that has not
	// been recycled yet; see pool.go.
	poolable bool
}

// New returns an empty event with the given identity.
func New(id uint64) *Event { return &Event{id: id} }

// ID returns the event's system-assigned identity.
func (e *Event) ID() uint64 { return e.id }

// Generation returns the structural-modification counter.
func (e *Event) Generation() uint64 { return e.gen.Load() }

// AddPart attaches a new part. The caller (the core API layer) is
// responsible for having applied contamination independence to label
// before calling. The data value must be an allowed part value.
func (e *Event) AddPart(name string, label labels.Label, data freeze.Value, addedBy string) (*Part, error) {
	if name == "" {
		return nil, errors.New("events: part name must be non-empty")
	}
	if err := freeze.CheckValue(data); err != nil {
		return nil, fmt.Errorf("part %q: %w", name, err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	p := &Part{Name: name, Label: label, Data: data, Seq: e.nextSq, AddedBy: addedBy}
	e.nextSq++
	e.parts = append(e.parts, p)
	e.gen.Add(1)
	return p, nil
}

// AttachGrant appends a privilege grant to the most recent part with
// the given name and label. Authorisation (caller holds t^{p auth}) is
// checked by the API layer; this method only locates the part.
//
// Parts already handed to readers are never mutated: the grant lands on
// a copy-on-write replacement, so concurrent readers observe a stable
// snapshot (either without or with the new grant, never a torn one).
func (e *Event) AttachGrant(name string, label labels.Label, g priv.Grant) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := len(e.parts) - 1; i >= 0; i-- {
		p := e.parts[i]
		if p.Name == name && p.Label.Equal(label) {
			np := p.CloneShallow()
			np.Grants = append(np.Grants, g)
			e.parts[i] = np
			e.gen.Add(1)
			return nil
		}
	}
	return fmt.Errorf("%w: %q with label %v", ErrNoSuchPart, name, label)
}

// DelPart removes the most recent part with the given name and exact
// label. It returns ErrNoSuchPart if none matches — which the API layer
// reports identically for "absent" and "invisible".
func (e *Event) DelPart(name string, label labels.Label) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := len(e.parts) - 1; i >= 0; i-- {
		p := e.parts[i]
		if p.Name == name && p.Label.Equal(label) {
			e.parts = append(e.parts[:i], e.parts[i+1:]...)
			e.gen.Add(1)
			return nil
		}
	}
	return fmt.Errorf("%w: %q with label %v", ErrNoSuchPart, name, label)
}

// Visible returns the parts named name readable at input label in:
// every part p with p.Label ≺ in (Sp ⊆ Sin ∧ Ip ⊇ Iin). If multiple
// visible parts share the name, all are returned (Table 1, readPart).
func (e *Event) Visible(name string, in labels.Label) []*Part {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var out []*Part
	for _, p := range e.parts {
		if p.Name == name && p.Label.CanFlowTo(in) {
			out = append(out, p)
		}
	}
	return out
}

// Named returns every part with the given name regardless of label.
// It is for the trusted system layers only (the no-security dispatch
// mode); the unit-facing API always goes through Visible.
func (e *Event) Named(name string) []*Part {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var out []*Part
	for _, p := range e.parts {
		if p.Name == name {
			out = append(out, p)
		}
	}
	return out
}

// LastVisible returns the most recently added part with the given
// name that is readable at input label in, or nil. It is the
// allocation-free companion of Visible for the single-version common
// case (Unit.ReadOne on the consumer hot path). Parts are immutable
// once attached, so the pointer stays valid after the lock drops.
func (e *Event) LastVisible(name string, in labels.Label) *Part {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for i := len(e.parts) - 1; i >= 0; i-- {
		p := e.parts[i]
		if p.Name == name && p.Label.CanFlowTo(in) {
			return p
		}
	}
	return nil
}

// LastNamed returns the most recently added part with the given name
// regardless of label, or nil — LastVisible for the trusted
// no-security mode.
func (e *Event) LastNamed(name string) *Part {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for i := len(e.parts) - 1; i >= 0; i-- {
		if e.parts[i].Name == name {
			return e.parts[i]
		}
	}
	return nil
}

// VisibleAll returns every part readable at input label in, in attach
// order.
func (e *Event) VisibleAll(in labels.Label) []*Part {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var out []*Part
	for _, p := range e.parts {
		if p.Label.CanFlowTo(in) {
			out = append(out, p)
		}
	}
	return out
}

// EachPart calls fn for every part in attach order, regardless of
// label, until fn returns false. It is the allocation-free companion
// of Parts for the trusted system layers: the dispatcher derives index
// keys from it on every publish. fn must not call back into the event.
func (e *Event) EachPart(fn func(*Part) bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, p := range e.parts {
		if !fn(p) {
			return
		}
	}
}

// AnyNamed reports whether fn accepts any part with the given name,
// regardless of label (trusted no-security matching). It does not
// allocate. fn must not call back into the event.
func (e *Event) AnyNamed(name string, fn func(*Part) bool) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, p := range e.parts {
		if p.Name == name && fn(p) {
			return true
		}
	}
	return false
}

// AnyVisible reports whether fn accepts any part with the given name
// that is readable at input label in (Sp ⊆ Sin ∧ Ip ⊇ Iin). It is the
// allocation-free form of Visible used on the dispatcher's match path.
// fn must not call back into the event.
func (e *Event) AnyVisible(name string, in labels.Label, fn func(*Part) bool) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, p := range e.parts {
		if p.Name == name && p.Label.CanFlowTo(in) && fn(p) {
			return true
		}
	}
	return false
}

// Parts returns a snapshot of all parts regardless of label. It is for
// the trusted system layers (dispatcher matching, cloning, tests); the
// unit-facing API never exposes it.
func (e *Event) Parts() []*Part {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]*Part, len(e.parts))
	copy(out, e.parts)
	return out
}

// Len returns the number of parts currently attached.
func (e *Event) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.parts)
}

// FreezeParts freezes the data of any parts not yet frozen. The
// dispatcher calls it on publish and again on release (new parts may
// have been added along the main dataflow path). Each part's freeze is
// O(1) thanks to flag sharing.
func (e *Event) FreezeParts() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for ; e.frozen < len(e.parts); e.frozen++ {
		freeze.FreezeValue(e.parts[e.frozen].Data)
	}
}

// CloneRelabelled builds a new event whose parts are copies of e's
// with label (Sp ∪ Sout, Ip ∩ Iout) — the cloneEvent semantics of
// Table 1: "All the tags in the caller's output confidentiality label
// are attached to each part's label and only the caller's output
// integrity tags are maintained". Privilege grants are NOT copied:
// cloning must not amplify delegation.
//
// When deep is true the part data is deep-copied (labels+clone mode);
// otherwise the frozen data is shared.
func (e *Event) CloneRelabelled(newID uint64, out labels.Label, deep bool) *Event {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ne := New(newID)
	ne.Stamp = e.Stamp
	ne.parts = make([]*Part, 0, len(e.parts))
	for _, p := range e.parts {
		data := p.Data
		if deep {
			data = freeze.CloneValue(data)
		}
		ne.parts = append(ne.parts, &Part{
			Name:    p.Name,
			Label:   p.Label.WithContamination(out),
			Data:    data,
			Seq:     ne.nextSq,
			AddedBy: p.AddedBy,
		})
		ne.nextSq++
	}
	return ne
}

// DeepCopy clones the event and all part data with identical labels and
// grants. The labels+clone security mode uses it to hand each receiver
// a private copy, emulating isolation schemes that require copying
// (MVM serialisation, Incommunicado deep-copying — §4.1).
func (e *Event) DeepCopy(newID uint64) *Event {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ne := New(newID)
	ne.Stamp = e.Stamp
	ne.nextSq = e.nextSq
	ne.parts = make([]*Part, 0, len(e.parts))
	for _, p := range e.parts {
		ne.parts = append(ne.parts, &Part{
			Name:    p.Name,
			Label:   p.Label,
			Data:    freeze.CloneValue(p.Data),
			Grants:  append([]priv.Grant(nil), p.Grants...),
			Seq:     p.Seq,
			AddedBy: p.AddedBy,
		})
	}
	return ne
}

// String summarises the event for diagnostics.
func (e *Event) String() string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return fmt.Sprintf("event#%d(%d parts)", e.id, len(e.parts))
}
