package events

// Delivery bookkeeping.
//
// The dispatcher must remember which receivers an event has already
// been delivered to so that a release() after partial processing
// (§3.1.6) re-dispatches newly added parts without duplicating earlier
// deliveries. Keeping the set on the event itself — rather than in a
// global table — avoids a contended map on the publish fast path and
// lets the bookkeeping die with the event.

// MarkDelivered records that the receiver has been offered this event.
// It returns false if the receiver had already been recorded.
func (e *Event) MarkDelivered(receiver uint64) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.delivered == nil {
		e.delivered = make(map[uint64]struct{}, 4)
	}
	if _, dup := e.delivered[receiver]; dup {
		return false
	}
	e.delivered[receiver] = struct{}{}
	return true
}

// WasDelivered reports whether the receiver has already been offered
// this event.
func (e *Event) WasDelivered(receiver uint64) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	_, ok := e.delivered[receiver]
	return ok
}

// DeliveredCount reports how many distinct receivers have been offered
// this event.
func (e *Event) DeliveredCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.delivered)
}
