package events

// Delivery bookkeeping.
//
// The dispatcher must remember which receivers an event has already
// been delivered to so that a release() after partial processing
// (§3.1.6) re-dispatches newly added parts without duplicating earlier
// deliveries. Keeping the set on the event itself — rather than in a
// global table — avoids a contended map on the publish fast path and
// lets the bookkeeping die with the event.
//
// Representation is hybrid: a plain slice while the set is small (the
// overwhelmingly common case — an event reaches a handful of
// receivers — where a linear scan beats a map on both allocation and
// lookup cost), spilling into a map past deliveredSpill entries so a
// high-fan-out event (hundreds of subscribers on one symbol) does not
// degrade to quadratic duplicate checks under the event mutex.

// deliveredSpill is the slice-to-map threshold of the delivered set.
const deliveredSpill = 16

// MarkDelivered records that the receiver has been offered this event.
// It returns false if the receiver had already been recorded.
func (e *Event) MarkDelivered(receiver uint64) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.deliveredMap != nil {
		if _, dup := e.deliveredMap[receiver]; dup {
			return false
		}
		e.deliveredMap[receiver] = struct{}{}
		return true
	}
	for _, r := range e.delivered {
		if r == receiver {
			return false
		}
	}
	if len(e.delivered) >= deliveredSpill {
		e.deliveredMap = make(map[uint64]struct{}, 2*deliveredSpill)
		for _, r := range e.delivered {
			e.deliveredMap[r] = struct{}{}
		}
		e.deliveredMap[receiver] = struct{}{}
		return true
	}
	if e.delivered == nil {
		e.delivered = make([]uint64, 0, 4)
	}
	e.delivered = append(e.delivered, receiver)
	return true
}

// WasDelivered reports whether the receiver has already been offered
// this event.
func (e *Event) WasDelivered(receiver uint64) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.deliveredMap != nil {
		_, ok := e.deliveredMap[receiver]
		return ok
	}
	for _, r := range e.delivered {
		if r == receiver {
			return true
		}
	}
	return false
}

// DeliveredCount reports how many distinct receivers have been offered
// this event.
func (e *Event) DeliveredCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.deliveredMap != nil {
		return len(e.deliveredMap)
	}
	return len(e.delivered)
}
