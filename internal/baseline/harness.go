package baseline

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"repro/internal/workload"
)

// Env variables of the agent-mode re-exec protocol.
const (
	envAddr = "DEFCON_BASELINE_ADDR"
	envSpec = "DEFCON_BASELINE_SPEC"
)

// MaybeRunAgent turns the current process into a Strategy Agent if the
// agent-mode environment variables are set. Binaries that may host
// agents (cmd/baseline-agent, the test binary via TestMain) call it
// first thing; it never returns in agent mode.
func MaybeRunAgent() {
	addr := os.Getenv(envAddr)
	if addr == "" {
		return
	}
	spec, err := ParseAgentSpec(os.Getenv(envSpec))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := RunAgent(addr, spec); err != nil {
		fmt.Fprintln(os.Stderr, "agent:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// Mode selects how Strategy Agents are hosted.
type Mode int

const (
	// Subprocess hosts each agent in its own OS process — the paper's
	// one-JVM-per-client deployment. Requires the host binary to call
	// MaybeRunAgent.
	Subprocess Mode = iota
	// InProcess hosts agents on goroutines; the identical agent code
	// still communicates through TCP and gob. Used for fast tests and
	// as an ablation separating process cost from serialisation cost.
	InProcess
)

// Config assembles a baseline deployment.
type Config struct {
	NumAgents int
	Mode      Mode
	Universe  *workload.Universe
	Seed      int64
	// ThresholdBps mirrors the DEFCon platform's trigger threshold.
	ThresholdBps int64
	// AcceptTimeout bounds agent start-up.
	AcceptTimeout time.Duration
}

// Harness is a running baseline deployment.
type Harness struct {
	ORS    *ORS
	cfg    Config
	procs  []*exec.Cmd
	agents []AgentSpec
	done   chan struct{}
}

// New starts the ORS and the agent population.
func New(cfg Config) (*Harness, error) {
	if cfg.NumAgents <= 0 {
		return nil, fmt.Errorf("baseline: NumAgents must be positive")
	}
	if cfg.Universe == nil {
		cfg.Universe = workload.UniverseForTraders(cfg.NumAgents)
	}
	if cfg.ThresholdBps == 0 {
		cfg.ThresholdBps = 200
	}
	if cfg.AcceptTimeout == 0 {
		cfg.AcceptTimeout = 30 * time.Second
	}
	ors, err := NewORS()
	if err != nil {
		return nil, err
	}
	h := &Harness{ORS: ors, cfg: cfg, done: make(chan struct{})}

	assignment := cfg.Universe.AssignPairs(cfg.NumAgents, cfg.Seed+7)
	perPair := make([]int, len(cfg.Universe.Pairs))
	for i := 0; i < cfg.NumAgents; i++ {
		pair := cfg.Universe.Pairs[assignment[i]]
		side := "bid"
		if perPair[assignment[i]]%2 == 1 {
			side = "ask"
		}
		perPair[assignment[i]]++
		h.agents = append(h.agents, AgentSpec{
			ID:      i,
			SymbolA: pair.A, SymbolB: pair.B,
			BaseA: pair.BaseA, BaseB: pair.BaseB,
			Side:         side,
			ThresholdBps: cfg.ThresholdBps,
		})
	}

	if err := h.startAgents(); err != nil {
		h.Close()
		return nil, err
	}
	if err := ors.AcceptAgents(cfg.NumAgents, cfg.AcceptTimeout); err != nil {
		h.Close()
		return nil, err
	}
	return h, nil
}

// startAgents launches the population in the configured mode.
func (h *Harness) startAgents() error {
	switch h.cfg.Mode {
	case InProcess:
		for _, spec := range h.agents {
			spec := spec
			go func() { _ = RunAgent(h.ORS.Addr(), spec) }()
		}
		return nil
	default:
		self, err := os.Executable()
		if err != nil {
			return fmt.Errorf("baseline: resolving host binary: %w", err)
		}
		for _, spec := range h.agents {
			cmd := exec.Command(self)
			cmd.Env = append(os.Environ(),
				envAddr+"="+h.ORS.Addr(),
				envSpec+"="+spec.String(),
			)
			cmd.Stdout = os.Stderr
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				return fmt.Errorf("baseline: spawning agent %d: %w", spec.ID, err)
			}
			h.procs = append(h.procs, cmd)
		}
		return nil
	}
}

// Replay broadcasts ticks as fast as possible (Figure 8 regime).
func (h *Harness) Replay(ticks []workload.Tick) {
	for i := range ticks {
		h.ORS.Broadcast(&Tick{
			Seq:     ticks[i].Seq,
			Symbol:  ticks[i].Symbol,
			Price:   ticks[i].Price,
			StampNs: time.Now().UnixNano(),
		})
	}
}

// ReplayPaced broadcasts ticks at the given rate (Figure 9 regime: the
// paper used 1,000 events/second for baseline latency).
func (h *Harness) ReplayPaced(ticks []workload.Tick, rate float64) {
	if rate <= 0 {
		h.Replay(ticks)
		return
	}
	interval := time.Duration(float64(time.Second) / rate)
	next := time.Now()
	for i := range ticks {
		h.ORS.Broadcast(&Tick{
			Seq:     ticks[i].Seq,
			Symbol:  ticks[i].Symbol,
			Price:   ticks[i].Price,
			StampNs: time.Now().UnixNano(),
		})
		next = next.Add(interval)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}
}

// WaitTrades blocks until at least n trades completed or the timeout
// expires, returning the count seen.
func (h *Harness) WaitTrades(n uint64, timeout time.Duration) uint64 {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if got := h.ORS.Trades(); got >= n {
			return got
		}
		time.Sleep(2 * time.Millisecond)
	}
	return h.ORS.Trades()
}

// MemoryRSSMiB sums the resident set sizes of the agent processes plus
// this process — the multi-JVM memory footprint of Figure 7's
// comparison (2 GiB for 20 agents, 6 GiB for 100 in the paper). In
// in-process mode it reports only the host process.
func (h *Harness) MemoryRSSMiB() float64 {
	total := rssMiB(os.Getpid())
	for _, c := range h.procs {
		if c.Process != nil {
			total += rssMiB(c.Process.Pid)
		}
	}
	return total
}

// rssMiB reads VmRSS from /proc (Linux).
func rssMiB(pid int) float64 {
	f, err := os.Open(fmt.Sprintf("/proc/%d/status", pid))
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}

// Close tears the deployment down: the feed closes, agents exit on EOF,
// and stragglers are killed.
func (h *Harness) Close() {
	h.ORS.Close()
	for _, c := range h.procs {
		if c.Process == nil {
			continue
		}
		done := make(chan struct{})
		go func(c *exec.Cmd) {
			_ = c.Wait()
			close(done)
		}(c)
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			_ = c.Process.Kill()
			<-done
		}
	}
}
