package baseline

import (
	"os"
	"testing"
	"time"

	"repro/internal/workload"
)

// TestMain lets this test binary host agent subprocesses.
func TestMain(m *testing.M) {
	MaybeRunAgent()
	os.Exit(m.Run())
}

func TestAgentSpecRoundTrip(t *testing.T) {
	in := AgentSpec{
		ID: 7, SymbolA: "SYM000A", SymbolB: "SYM000B",
		BaseA: 10000, BaseB: 5000, Side: "ask", ThresholdBps: 200,
	}
	out, err := ParseAgentSpec(in.String())
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	if _, err := ParseAgentSpec("garbage"); err == nil {
		t.Fatal("garbage spec accepted")
	}
	if _, err := ParseAgentSpec(""); err == nil {
		t.Fatal("empty spec accepted")
	}
}

// runBaseline drives a small in-process deployment.
func runBaseline(t *testing.T, agents, ticks int, mode Mode) *Harness {
	t.Helper()
	h, err := New(Config{
		NumAgents: agents,
		Mode:      mode,
		Universe:  workload.NewUniverse(1),
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	trace := workload.NewTrace(h.cfg.Universe, 9)
	h.Replay(trace.Take(ticks))
	return h
}

func TestInProcessTradingFlow(t *testing.T) {
	h := runBaseline(t, 2, 300, InProcess)
	if got := h.WaitTrades(1, 10*time.Second); got == 0 {
		t.Fatal("no trades completed")
	}
	if h.ORS.TicksSent() != 300 {
		t.Fatalf("ticks sent = %d", h.ORS.TicksSent())
	}
	if h.ORS.OrdersReceived() == 0 {
		t.Fatal("no orders received")
	}
}

func TestLatencyHistogramsPopulated(t *testing.T) {
	h := runBaseline(t, 2, 300, InProcess)
	h.WaitTrades(1, 10*time.Second)
	// Give the last order's histograms a beat.
	time.Sleep(20 * time.Millisecond)
	if h.ORS.Processing.Count() == 0 || h.ORS.TicksProc.Count() == 0 || h.ORS.Full.Count() == 0 {
		t.Fatalf("histograms empty: %d/%d/%d",
			h.ORS.Processing.Count(), h.ORS.TicksProc.Count(), h.ORS.Full.Count())
	}
	// The decomposition must nest: processing ≤ ticks+processing ≤ full
	// (at matching percentiles, modulo bucket error).
	p, tp, full := h.ORS.Processing.Percentile(70), h.ORS.TicksProc.Percentile(70), h.ORS.Full.Percentile(70)
	if p > tp*2 || tp > full*2 {
		t.Fatalf("latency breakdown not nested: proc=%d ticks+proc=%d full=%d", p, tp, full)
	}
}

func TestAgentsFilterForeignSymbols(t *testing.T) {
	// Ticks on a pair no agent monitors must produce no orders.
	h, err := New(Config{
		NumAgents: 2,
		Mode:      InProcess,
		Universe:  workload.NewUniverse(4),
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	u := h.cfg.Universe
	monitored := make(map[string]bool)
	for _, spec := range h.agents {
		monitored[spec.SymbolA] = true
	}
	foreign := -1
	for i, p := range u.Pairs {
		if !monitored[p.A] {
			foreign = i
			break
		}
	}
	if foreign < 0 {
		t.Skip("all pairs monitored; cannot build a foreign trigger")
	}
	// Hand-build ticks that trigger only the foreign pair.
	var ticks []workload.Tick
	for i := 0; i < 50; i++ {
		ticks = append(ticks,
			workload.Tick{Seq: uint64(2*i + 1), Symbol: u.Pairs[foreign].A, Price: u.Pairs[foreign].BaseA},
			workload.Tick{Seq: uint64(2*i + 2), Symbol: u.Pairs[foreign].B, Price: u.Pairs[foreign].BaseB * 2},
		)
	}
	h.Replay(ticks)
	time.Sleep(100 * time.Millisecond)
	if got := h.ORS.OrdersReceived(); got != 0 {
		t.Fatalf("agents ordered on a foreign pair: %d", got)
	}
}

func TestSubprocessAgents(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess mode in -short")
	}
	h, err := New(Config{
		NumAgents: 2,
		Mode:      Subprocess,
		Universe:  workload.NewUniverse(1),
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	trace := workload.NewTrace(h.cfg.Universe, 9)
	h.Replay(trace.Take(300))
	if got := h.WaitTrades(1, 20*time.Second); got == 0 {
		t.Fatal("no trades with subprocess agents")
	}
	if rss := h.MemoryRSSMiB(); rss <= 0 {
		t.Fatalf("RSS accounting = %f", rss)
	}
}

func TestHarnessValidation(t *testing.T) {
	if _, err := New(Config{NumAgents: 0}); err == nil {
		t.Fatal("zero agents accepted")
	}
}

func TestPacedReplayBaseline(t *testing.T) {
	h, err := New(Config{
		NumAgents: 2,
		Mode:      InProcess,
		Universe:  workload.NewUniverse(1),
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	trace := workload.NewTrace(h.cfg.Universe, 9)
	start := time.Now()
	h.ReplayPaced(trace.Take(100), 1000) // ≈100 ms
	if time.Since(start) < 80*time.Millisecond {
		t.Fatal("paced replay too fast")
	}
}
