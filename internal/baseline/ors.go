package baseline

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// orderTTL bounds how long an unfilled order rests in the ORS book —
// the same immediate-or-cancel discipline as the DEFCon Broker, so the
// two systems' latency percentiles measure the same thing.
const orderTTL = 100 * time.Millisecond

// ORS is the Order Routing Service, extended — as the paper's authors
// extended Marketcetera's — with local brokering facilities and a
// market data feed for the Strategy Agents. All communication crosses
// process boundaries over TCP with gob serialisation.
type ORS struct {
	ln net.Listener

	mu     sync.Mutex
	agents map[int]*conn
	book   *orsBook

	ticksSent  atomic.Uint64
	ordersRecv atomic.Uint64
	tradesDone atomic.Uint64

	// Figure 9 latency breakdown (70th percentiles are reported):
	// processing            — strategy execution inside the agent
	// ticks+processing      — tick creation → agent processing done
	// full (ticks+orders+…) — tick creation → trade completion at ORS
	Processing *metrics.Histogram
	TicksProc  *metrics.Histogram
	Full       *metrics.Histogram

	wg     sync.WaitGroup
	closed atomic.Bool
}

// orsBook is the local-brokering order book.
type orsBook struct {
	bids    map[string][]*Order
	asks    map[string][]*Order
	entered map[int64]int64 // order ID → book-entry time
	ids     int64
}

// expire drops resting orders older than orderTTL.
func (bk *orsBook) expire(symbol string, now int64) {
	cutoff := now - orderTTL.Nanoseconds()
	for len(bk.bids[symbol]) > 0 && bk.entered[bk.bids[symbol][0].ID] < cutoff {
		delete(bk.entered, bk.bids[symbol][0].ID)
		bk.bids[symbol] = bk.bids[symbol][1:]
	}
	for len(bk.asks[symbol]) > 0 && bk.entered[bk.asks[symbol][0].ID] < cutoff {
		delete(bk.entered, bk.asks[symbol][0].ID)
		bk.asks[symbol] = bk.asks[symbol][1:]
	}
}

// NewORS starts the service on a loopback port.
func NewORS() (*ORS, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	o := &ORS{
		ln:     ln,
		agents: make(map[int]*conn),
		book: &orsBook{
			bids:    make(map[string][]*Order),
			asks:    make(map[string][]*Order),
			entered: make(map[int64]int64),
		},
		Processing: metrics.NewHistogram(),
		TicksProc:  metrics.NewHistogram(),
		Full:       metrics.NewHistogram(),
	}
	return o, nil
}

// Addr returns the service's dial address for agents.
func (o *ORS) Addr() string { return o.ln.Addr().String() }

// AcceptAgents accepts exactly n agent connections (with handshake) and
// starts their order-receiving loops.
func (o *ORS) AcceptAgents(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for i := 0; i < n; i++ {
		if tl, ok := o.ln.(*net.TCPListener); ok {
			if err := tl.SetDeadline(deadline); err != nil {
				return err
			}
		}
		raw, err := o.ln.Accept()
		if err != nil {
			return fmt.Errorf("baseline: accepting agent %d/%d: %w", i+1, n, err)
		}
		c := newConn(raw)
		var hello Hello
		if err := c.dec.Decode(&hello); err != nil {
			raw.Close()
			return fmt.Errorf("baseline: agent handshake: %w", err)
		}
		o.mu.Lock()
		o.agents[hello.AgentID] = c
		o.mu.Unlock()
		o.wg.Add(1)
		go o.serveAgent(c)
	}
	return nil
}

// serveAgent receives orders from one agent and runs local brokering.
func (o *ORS) serveAgent(c *conn) {
	defer o.wg.Done()
	for {
		env, err := c.recv()
		if err != nil {
			return
		}
		if env.Order == nil {
			continue
		}
		o.onOrder(env.Order)
	}
}

// onOrder books the order, records the agent-side latency contributions
// and attempts a match.
func (o *ORS) onOrder(ord *Order) {
	now := time.Now().UnixNano()
	o.ordersRecv.Add(1)
	o.Processing.Record(ord.AgentSentNs - ord.AgentRecvNs)
	o.TicksProc.Record(ord.AgentSentNs - ord.TickStampNs)

	o.mu.Lock()
	defer o.mu.Unlock()
	bk := o.book
	bk.entered[ord.ID] = now
	if ord.Side == "bid" {
		bk.bids[ord.Symbol] = append(bk.bids[ord.Symbol], ord)
	} else {
		bk.asks[ord.Symbol] = append(bk.asks[ord.Symbol], ord)
	}
	bk.expire(ord.Symbol, now)
	for len(bk.bids[ord.Symbol]) > 0 && len(bk.asks[ord.Symbol]) > 0 {
		bid, ask := bk.bids[ord.Symbol][0], bk.asks[ord.Symbol][0]
		if bid.Price < ask.Price {
			return
		}
		bk.bids[ord.Symbol] = bk.bids[ord.Symbol][1:]
		bk.asks[ord.Symbol] = bk.asks[ord.Symbol][1:]
		delete(bk.entered, bid.ID)
		delete(bk.entered, ask.ID)
		bk.ids++
		stamp := bid.TickStampNs
		if ask.TickStampNs < stamp {
			stamp = ask.TickStampNs
		}
		tr := &Trade{
			ID: bk.ids, Symbol: ord.Symbol, Price: ask.Price,
			Qty: minQty(bid.Qty, ask.Qty), Buyer: bid.AgentID, Seller: ask.AgentID,
			TickStampNs: stamp,
		}
		o.tradesDone.Add(1)
		o.Full.Record(time.Now().UnixNano() - stamp)
		// Notify the two counterparties (still under the lock: the per-
		// agent gob encoders are not otherwise synchronised).
		if c := o.agents[tr.Buyer]; c != nil {
			_ = c.sendTrade(tr)
		}
		if c := o.agents[tr.Seller]; c != nil && tr.Seller != tr.Buyer {
			_ = c.sendTrade(tr)
		}
	}
}

// Broadcast pushes one tick to every connected agent — the market data
// feed. Each agent connection gets its own gob encoding: the per-client
// serialisation cost that makes the feed the bottleneck as the agent
// population grows (Figure 8).
func (o *ORS) Broadcast(t *Tick) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, c := range o.agents {
		_ = c.sendTick(t)
	}
	o.ticksSent.Add(1)
}

// TicksSent reports feed broadcasts (one per tick, regardless of agent
// count).
func (o *ORS) TicksSent() uint64 { return o.ticksSent.Load() }

// OrdersReceived reports orders received from agents.
func (o *ORS) OrdersReceived() uint64 { return o.ordersRecv.Load() }

// Trades reports completed local-brokering trades.
func (o *ORS) Trades() uint64 { return o.tradesDone.Load() }

// Close shuts the service down and disconnects all agents.
func (o *ORS) Close() {
	if !o.closed.CompareAndSwap(false, true) {
		return
	}
	o.ln.Close()
	o.mu.Lock()
	for _, c := range o.agents {
		c.Close()
	}
	o.mu.Unlock()
	o.wg.Wait()
}

func minQty(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
