// Package baseline implements the Marketcetera-like comparison system
// of the paper's evaluation (§6): per-client Strategy Agents running in
// separate OS processes, a market data feed that pushes the full tick
// stream to every agent (the platform "does not support centralised
// market data filtering"), and an Order Routing Service extended with
// local brokering — each hop crossing a process boundary with
// serialisation, exactly the costs Figures 8 and 9 attribute to the
// multi-JVM architecture.
//
// The paper's Marketcetera 1.5 deployment isolated each client's
// strategies in its own JVM; here each agent is its own OS process
// (re-executing the host binary in agent mode), communicating with the
// ORS over TCP with gob serialisation. An in-process mode runs the
// identical agent code on goroutines — still through real sockets and
// serialisation — for fast unit testing.
package baseline

import (
	"encoding/gob"
	"fmt"
	"net"
)

// Hello is the agent's handshake: it announces which agent connected.
type Hello struct {
	AgentID int
}

// Tick is one market-data event pushed to every agent.
type Tick struct {
	Seq    uint64
	Symbol string
	Price  int64
	// StampNs is the feed-side creation time; the latency breakdown of
	// Figure 9 is computed from it.
	StampNs int64
}

// Order is an agent's buy/sell instruction sent to the ORS.
type Order struct {
	AgentID int
	ID      int64
	Symbol  string
	Price   int64
	Qty     int64
	Side    string // "bid" | "ask"

	// Latency accounting (all monotonic-ish wall clock, same host):
	// TickStampNs is the originating tick's creation time, AgentRecvNs
	// when the agent decoded that tick, AgentSentNs when it finished
	// strategy processing and handed the order to the socket.
	TickStampNs int64
	AgentRecvNs int64
	AgentSentNs int64
}

// Trade is a completed local-brokering match, reported back to agents.
type Trade struct {
	ID          int64
	Symbol      string
	Price       int64
	Qty         int64
	Buyer       int
	Seller      int
	TickStampNs int64
}

// envelope is the single wire type exchanged after the handshake;
// exactly one pointer field is set. gob's stream encoder interns the
// type descriptors per connection, as a Java serialisation stream
// would.
type envelope struct {
	Tick  *Tick
	Order *Order
	Trade *Trade
}

// conn wraps a TCP connection with gob codecs.
type conn struct {
	raw net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
}

func newConn(raw net.Conn) *conn {
	return &conn{raw: raw, enc: gob.NewEncoder(raw), dec: gob.NewDecoder(raw)}
}

func (c *conn) sendTick(t *Tick) error   { return c.enc.Encode(envelope{Tick: t}) }
func (c *conn) sendOrder(o *Order) error { return c.enc.Encode(envelope{Order: o}) }
func (c *conn) sendTrade(t *Trade) error { return c.enc.Encode(envelope{Trade: t}) }

func (c *conn) recv() (envelope, error) {
	var env envelope
	err := c.dec.Decode(&env)
	return env, err
}

func (c *conn) Close() error { return c.raw.Close() }

// AgentSpec tells an agent process what to trade.
type AgentSpec struct {
	ID           int
	SymbolA      string
	SymbolB      string
	BaseA, BaseB int64
	Side         string // "bid" | "ask"
	ThresholdBps int64
}

// String encodes the spec for the child environment.
func (s AgentSpec) String() string {
	return fmt.Sprintf("%d|%s|%s|%d|%d|%s|%d",
		s.ID, s.SymbolA, s.SymbolB, s.BaseA, s.BaseB, s.Side, s.ThresholdBps)
}

// ParseAgentSpec decodes String's format.
func ParseAgentSpec(raw string) (AgentSpec, error) {
	var s AgentSpec
	_, err := fmt.Sscanf(raw, "%d|%s", &s.ID, new(string)) // probe
	if err != nil {
		return s, fmt.Errorf("baseline: bad agent spec %q", raw)
	}
	n, err := fmt.Sscanf(replacePipes(raw), "%d %s %s %d %d %s %d",
		&s.ID, &s.SymbolA, &s.SymbolB, &s.BaseA, &s.BaseB, &s.Side, &s.ThresholdBps)
	if err != nil || n != 7 {
		return s, fmt.Errorf("baseline: bad agent spec %q", raw)
	}
	return s, nil
}

func replacePipes(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] == '|' {
			b[i] = ' '
		}
	}
	return string(b)
}
