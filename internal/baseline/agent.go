package baseline

import (
	"net"
	"time"
)

// Agent is one client's Strategy Agent: the pairs-trading strategy of
// §6.1 hosted in its own process (or goroutine, in-process mode). It
// receives the FULL market feed and filters for its own pair locally —
// Marketcetera's Strategy Agents "filtering market data individually as
// the platform does not support centralised market data filtering",
// which §6.2 identifies as the scaling bottleneck of Figure 8.
type Agent struct {
	spec AgentSpec
	c    *conn

	lastA, lastB int64
	lastStamp    int64
	lastRecvNs   int64
	above        bool
	orderSeq     int64

	ordersSent uint64
	tradesSeen uint64
}

// RunAgent connects to the ORS at addr and processes the feed until the
// connection closes. It is the shared body of the subprocess and
// in-process modes.
func RunAgent(addr string, spec AgentSpec) error {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	a := &Agent{spec: spec, c: newConn(raw)}
	defer a.c.Close()
	if err := a.c.enc.Encode(Hello{AgentID: spec.ID}); err != nil {
		return err
	}
	return a.loop()
}

// loop decodes envelopes until EOF.
func (a *Agent) loop() error {
	for {
		env, err := a.c.recv()
		if err != nil {
			return nil // feed closed: orderly shutdown
		}
		switch {
		case env.Tick != nil:
			a.onTick(env.Tick)
		case env.Trade != nil:
			a.tradesSeen++
		}
	}
}

// onTick is the per-agent filter plus the pairs-trading strategy.
func (a *Agent) onTick(t *Tick) {
	// Per-agent filtering: every agent sees every tick and discards
	// the ones it does not monitor.
	var mine bool
	switch t.Symbol {
	case a.spec.SymbolA:
		a.lastA = t.Price
		mine = true
	case a.spec.SymbolB:
		a.lastB = t.Price
		mine = true
	}
	if !mine {
		return
	}
	a.lastRecvNs = time.Now().UnixNano()
	a.lastStamp = t.StampNs
	if a.lastA == 0 || a.lastB == 0 {
		return
	}
	// Identical maths to trading.Monitor: deviation of the price ratio
	// from the configured mean, in basis points.
	ratioNow := a.lastA * 10000 * a.spec.BaseB
	ratioMean := a.lastB * a.spec.BaseA
	devBps := ratioNow/ratioMean - 10000
	if devBps < 0 {
		devBps = -devBps
	}
	crossed := devBps >= a.spec.ThresholdBps
	if crossed && !a.above {
		a.placeOrder()
	}
	a.above = crossed
}

// placeOrder sends one order on the spiked (B) symbol.
func (a *Agent) placeOrder() {
	a.orderSeq++
	o := &Order{
		AgentID:     a.spec.ID,
		ID:          int64(a.spec.ID)*1_000_000 + a.orderSeq,
		Symbol:      a.spec.SymbolB,
		Price:       a.lastB,
		Qty:         100,
		Side:        a.spec.Side,
		TickStampNs: a.lastStamp,
		AgentRecvNs: a.lastRecvNs,
		AgentSentNs: time.Now().UnixNano(),
	}
	if err := a.c.sendOrder(o); err != nil {
		return
	}
	a.ordersSent++
}
