package orderbook

// Property-based tests of the matching engine against a naive
// reference model, in the style of labels/quick_test.go: random
// operation sequences are replayed through both the Book and an
// O(n²) declarative model, and the fill streams and final resting
// states must agree exactly. The model IS the spec — best price
// first, arrival order within a price, fills never exceed either
// side's open interest.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// refOrder is one resting order in the reference model.
type refOrder struct {
	id    int64
	side  Side
	price int64
	qty   int64
	seq   int // arrival order, the time component of priority
}

// refBook is the declarative reference: a flat slice of resting
// orders, matched by scanning for the best-priced earliest-arrived
// opposite order each fill.
type refBook struct {
	rest []refOrder
	seq  int
}

func (r *refBook) lookup(id int64) *refOrder {
	for i := range r.rest {
		if r.rest[i].id == id {
			return &r.rest[i]
		}
	}
	return nil
}

// take matches an incoming taker, returning its fills in order.
func (r *refBook) take(side Side, price int64, priced bool, qty int64) []fill {
	var fills []fill
	for qty > 0 {
		best := -1
		for i := range r.rest {
			o := &r.rest[i]
			if o.side != side.Opposite() {
				continue
			}
			if priced && !crosses(side, price, o.price) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			bo := &r.rest[best]
			if better(o.side, o.price, bo.price) || (o.price == bo.price && o.seq < bo.seq) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		o := &r.rest[best]
		n := o.qty
		if qty < n {
			n = qty
		}
		o.qty -= n
		qty -= n
		fills = append(fills, fill{maker: o.id, price: o.price, qty: n})
		if o.qty == 0 {
			r.rest = append(r.rest[:best], r.rest[best+1:]...)
		}
	}
	return fills
}

func (r *refBook) limit(id int64, side Side, price, qty int64) []fill {
	if price <= 0 || qty <= 0 || r.lookup(id) != nil {
		return nil
	}
	fills := r.take(side, price, true, qty)
	var done int64
	for _, f := range fills {
		done += f.qty
	}
	if rem := qty - done; rem > 0 {
		r.seq++
		r.rest = append(r.rest, refOrder{id: id, side: side, price: price, qty: rem, seq: r.seq})
	}
	return fills
}

func (r *refBook) market(side Side, qty int64) []fill {
	if qty <= 0 {
		return nil
	}
	return r.take(side, 0, false, qty)
}

func (r *refBook) cancel(id int64) bool {
	for i := range r.rest {
		if r.rest[i].id == id {
			r.rest = append(r.rest[:i], r.rest[i+1:]...)
			return true
		}
	}
	return false
}

// flatten renders the model's resting state in the Book's snapshot
// order: bids best-first, asks best-first, arrival order within a
// level.
func (r *refBook) flatten() []LevelSnap {
	var out []LevelSnap
	for _, side := range [2]Side{Bid, Ask} {
		// Collect this side's distinct prices, best first.
		var prices []int64
		for _, o := range r.rest {
			if o.side != side {
				continue
			}
			seen := false
			for _, p := range prices {
				if p == o.price {
					seen = true
				}
			}
			if !seen {
				prices = append(prices, o.price)
			}
		}
		for i := 1; i < len(prices); i++ {
			for j := i; j > 0 && better(side, prices[j], prices[j-1]); j-- {
				prices[j], prices[j-1] = prices[j-1], prices[j]
			}
		}
		for _, p := range prices {
			ls := LevelSnap{Side: side, Price: p}
			// Arrival order within the level = ascending seq.
			lo := -1
			for {
				next := -1
				for i := range r.rest {
					o := &r.rest[i]
					if o.side != side || o.price != p || o.seq <= lo {
						continue
					}
					if next < 0 || o.seq < r.rest[next].seq {
						next = i
					}
				}
				if next < 0 {
					break
				}
				lo = r.rest[next].seq
				ls.Orders = append(ls.Orders, OrderSnap{ID: r.rest[next].id, Qty: r.rest[next].qty})
			}
			out = append(out, ls)
		}
	}
	return out
}

// qop is one generated operation.
type qop struct {
	kind   int // 0,1 = limit; 2 = market; 3 = cancel; 4 = amend
	side   Side
	price  int64
	qty    int64
	target int // index into previously issued ids
}

// qops wraps an op sequence to implement quick.Generator.
type qops struct{ ops []qop }

// Generate draws 20–100 ops over a narrow price band so books overlap
// and cross frequently.
func (qops) Generate(r *rand.Rand, _ int) reflect.Value {
	n := 20 + r.Intn(81)
	ops := make([]qop, n)
	for i := range ops {
		ops[i] = qop{
			kind:   r.Intn(5),
			side:   Side(r.Intn(2)),
			price:  int64(95 + r.Intn(11)),
			qty:    int64(1 + r.Intn(40)),
			target: r.Intn(n),
		}
	}
	return reflect.ValueOf(qops{ops: ops})
}

// replayBoth runs one op sequence through engine and model, failing t
// on the first divergence. It returns the engine for further checks.
func replayBoth(t *testing.T, ops []qop) *Book {
	t.Helper()
	b := New()
	ref := &refBook{}
	var issued []int64
	canceled := make(map[int64]bool)
	var id int64
	for i, op := range ops {
		var got, want []fill
		switch op.kind {
		case 0, 1:
			id++
			got = nil
			gotFilled, rested := b.Limit(id, op.side, op.price, op.qty, Owner{}, int64(i+1), collect(&got))
			want = ref.limit(id, op.side, op.price, op.qty)
			issued = append(issued, id)
			// Conservation: filled + rested residual == submitted qty.
			var residual int64
			if o := b.Lookup(id); o != nil {
				residual = o.Qty
			}
			if rested != (residual > 0) || gotFilled+residual != op.qty {
				t.Fatalf("op %d: conservation broken: filled %d + residual %d != qty %d (rested=%v)",
					i, gotFilled, residual, op.qty, rested)
			}
		case 2:
			got = nil
			b.Market(op.side, op.qty, collect(&got))
			want = ref.market(op.side, op.qty)
		case 3:
			if len(issued) == 0 {
				continue
			}
			target := issued[op.target%len(issued)]
			gotOK := b.Cancel(target)
			wantOK := ref.cancel(target)
			if gotOK != wantOK {
				t.Fatalf("op %d: cancel(%d) engine=%v model=%v", i, target, gotOK, wantOK)
			}
			if gotOK {
				canceled[target] = true
			}
		case 4:
			if len(issued) == 0 {
				continue
			}
			target := issued[op.target%len(issued)]
			// Model the amend as the engine defines it: qty-down in
			// place, otherwise cancel + re-enter.
			mo := ref.lookup(target)
			got = nil
			_, gotOK := b.Amend(target, op.price, op.qty, int64(i+1), collect(&got))
			if (mo != nil) != gotOK {
				t.Fatalf("op %d: amend(%d) engine=%v model=%v", i, target, gotOK, mo != nil)
			}
			if mo == nil {
				continue
			}
			if op.price == mo.price && op.qty <= mo.qty {
				mo.qty = op.qty
				want = nil
			} else {
				side := mo.side
				ref.cancel(target)
				want = ref.limit(target, side, op.price, op.qty)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("op %d (%+v): %d fills, model wants %d\n got: %+v\nwant: %+v", i, op, len(got), len(want), got, want)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("op %d: fill %d = %+v, model wants %+v", i, k, got[k], want[k])
			}
		}
		// Cancel-then-fill impossible: no fill may name a canceled maker.
		for _, f := range got {
			if canceled[f.maker] {
				t.Fatalf("op %d: canceled order %d filled", i, f.maker)
			}
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	gotSnap, wantSnap := b.Snapshot(), ref.flatten()
	if len(gotSnap) != len(wantSnap) {
		t.Fatalf("final books diverge:\n got: %+v\nwant: %+v", gotSnap, wantSnap)
	}
	for i := range gotSnap {
		if !reflect.DeepEqual(gotSnap[i], wantSnap[i]) {
			t.Fatalf("final level %d diverges:\n got: %+v\nwant: %+v", i, gotSnap[i], wantSnap[i])
		}
	}
	return b
}

var qcfg = &quick.Config{MaxCount: 250}

// TestQuickEngineMatchesReferenceModel is the main property: for
// arbitrary op sequences the engine's fill stream and final resting
// state equal the declarative model's — which implies price-time
// priority is never violated, filled quantity equals the crossing
// interest, and residuals rest at the correct level.
func TestQuickEngineMatchesReferenceModel(t *testing.T) {
	f := func(o qops) bool {
		replayBoth(t, o.ops)
		return true
	}
	if err := quick.Check(f, qcfg); err != nil {
		t.Error(err)
	}
}

// TestQuickFilledNeverExceedsCrossingInterest spells out the
// conservation property directly: a taker's total fill equals
// min(its quantity, the opposite interest it crosses).
func TestQuickFilledNeverExceedsCrossingInterest(t *testing.T) {
	f := func(o qops) bool {
		b := New()
		var id int64
		for i, op := range o.ops {
			if op.kind == 3 || op.kind == 4 {
				continue
			}
			// Crossing interest visible to this taker right now.
			var crossable int64
			opp := b.ladderFor(op.side.Opposite())
			for _, lv := range opp.levels {
				if op.kind == 2 || crosses(op.side, op.price, lv.price) {
					crossable += lv.qty
				}
			}
			want := op.qty
			if crossable < want {
				want = crossable
			}
			var filled int64
			id++
			if op.kind == 2 {
				filled = b.Market(op.side, op.qty, nil)
			} else {
				filled, _ = b.Limit(id, op.side, op.price, op.qty, Owner{}, int64(i+1), nil)
			}
			if filled != want {
				t.Fatalf("op %d: filled %d, crossing interest math says %d", i, filled, want)
			}
		}
		return true
	}
	if err := quick.Check(f, qcfg); err != nil {
		t.Error(err)
	}
}
