package orderbook

// Depth-hook coverage: a mirror maintained purely from DepthFunc
// callbacks must track the book's true level aggregates through every
// mutation path — rest, fills (partial and sweeping), cancel, amend
// (in-place and re-entry), TTL expiry and self-trade withdrawal — and
// VisitDepth must agree with the copying Snapshot it replaces.

import (
	"math/rand"
	"testing"
)

// lvKey identifies one price level in a mirror.
type lvKey struct {
	side  Side
	price int64
}

// lvVal is one mirrored level's aggregates.
type lvVal struct {
	qty    int64
	orders int
}

// depthMirror rebuilds level state from hook callbacks alone.
type depthMirror map[lvKey]lvVal

func (m depthMirror) apply(side Side, price, qty int64, orders int) {
	k := lvKey{side, price}
	if qty == 0 {
		delete(m, k)
		return
	}
	m[k] = lvVal{qty, orders}
}

// bookDepth reads the book's true level state through VisitDepth.
func bookDepth(b *Book) depthMirror {
	out := make(depthMirror)
	for _, side := range [2]Side{Bid, Ask} {
		b.VisitDepth(side, func(price, qty int64, orders int) bool {
			out[lvKey{side, price}] = lvVal{qty, orders}
			return true
		})
	}
	return out
}

// snapshotDepth aggregates the copying Snapshot to level state.
func snapshotDepth(b *Book) depthMirror {
	out := make(depthMirror)
	for _, ls := range b.Snapshot() {
		var qty int64
		for _, o := range ls.Orders {
			qty += o.Qty
		}
		out[lvKey{ls.Side, ls.Price}] = lvVal{qty, len(ls.Orders)}
	}
	return out
}

func equalMirrors(a, b depthMirror) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestDepthHookTracksBook drives a seeded random op mix and checks the
// hook-built mirror against VisitDepth and Snapshot after every op.
func TestDepthHookTracksBook(t *testing.T) {
	for _, stp := range []STP{STPAllow, STPCancelResting, STPCancelIncoming} {
		rng := rand.New(rand.NewSource(11))
		b := New()
		mirror := make(depthMirror)
		b.SetDepthHook(mirror.apply)
		var ids []int64
		nextID := int64(1)
		owners := []string{"alice", "bob"}
		now := int64(0)
		for i := 0; i < 4000; i++ {
			now++
			side := Side(rng.Intn(2))
			price := int64(100 + rng.Intn(10))
			qty := int64(1 + rng.Intn(5))
			ow := Owner{Name: owners[rng.Intn(len(owners))]}
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // limit
				id := nextID
				nextID++
				if _, rested, ok := b.LimitSTP(id, side, price, qty, ow, now, stp, nil, nil); ok && rested {
					ids = append(ids, id)
				}
			case 5: // market
				b.MarketSTP(side, qty, ow.Name, stp, nil, nil)
			case 6: // cancel
				if len(ids) > 0 {
					j := rng.Intn(len(ids))
					b.Cancel(ids[j])
					ids = append(ids[:j], ids[j+1:]...)
				}
			case 7: // amend (reprice or resize)
				if len(ids) > 0 {
					b.AmendSTP(ids[rng.Intn(len(ids))], price, qty, now, stp, nil, nil)
				}
			case 8: // amend down in place
				if len(ids) > 0 {
					id := ids[rng.Intn(len(ids))]
					if o := b.Lookup(id); o != nil {
						b.Amend(id, o.Price, 1, now, nil)
					}
				}
			case 9: // expire a random prefix
				b.Expire(now-int64(rng.Intn(40)), nil)
			}
			if err := b.Validate(); err != nil {
				t.Fatalf("stp=%d op %d: %v", stp, i, err)
			}
			truth := bookDepth(b)
			if !equalMirrors(mirror, truth) {
				t.Fatalf("stp=%d op %d: hook mirror diverged:\nmirror %v\ntruth  %v", stp, i, mirror, truth)
			}
			if snap := snapshotDepth(b); !equalMirrors(truth, snap) {
				t.Fatalf("stp=%d op %d: VisitDepth disagrees with Snapshot:\nvisit %v\nsnap  %v", stp, i, truth, snap)
			}
		}
	}
}

// TestDepthHookZeroAlloc pins the hot-path claim: fills with the hook
// installed allocate nothing in steady state.
func TestDepthHookZeroAlloc(t *testing.T) {
	b := New()
	var calls int
	b.SetDepthHook(func(Side, int64, int64, int) { calls++ })
	// Warm the free lists.
	for i := int64(0); i < 64; i++ {
		b.Limit(i+1, Bid, 100, 5, Owner{Name: "w"}, 0, nil)
		b.Market(Ask, 5, nil)
	}
	id := int64(1 << 20)
	avg := testing.AllocsPerRun(200, func() {
		id++
		b.Limit(id, Bid, 100, 5, Owner{Name: "w"}, 0, nil)
		b.Market(Ask, 5, nil)
	})
	if avg > 0 {
		t.Fatalf("fill roundtrip with depth hook allocates %.2f/op", avg)
	}
	if calls == 0 {
		t.Fatal("depth hook never fired")
	}
}

// TestVisitDepthEarlyStop checks the visitor's stop contract.
func TestVisitDepthEarlyStop(t *testing.T) {
	b := New()
	for i := int64(0); i < 5; i++ {
		b.Limit(i+1, Bid, 100+i, 1, Owner{}, 0, nil)
	}
	var seen []int64
	b.VisitDepth(Bid, func(price, _ int64, _ int) bool {
		seen = append(seen, price)
		return len(seen) < 2
	})
	// Bids are best-first: highest prices first.
	if len(seen) != 2 || seen[0] != 104 || seen[1] != 103 {
		t.Fatalf("early stop visited %v", seen)
	}
}
