package orderbook

// Full-state dump/restore: the checkpoint path of the crash-safe
// journal (DESIGN-dispatch.md §12). Snapshot carries only what tests
// compare (IDs and quantities); a checkpoint must carry everything a
// live book needs — owners, entry times for TTL, prices per order —
// in an order that reproduces price-time priority exactly.

import "fmt"

// OrderState is one resting order's complete externalized state.
type OrderState struct {
	ID      int64
	Side    Side
	Price   int64
	Qty     int64
	Entered int64
	Owner   Owner
}

// Dump externalizes every resting order in deterministic priority
// order: bid levels best-first, then ask levels best-first, FIFO
// within each level. Feeding the result to Restore in the same order
// reproduces the book exactly — including time priority and TTL ages.
func (b *Book) Dump() []OrderState {
	out := make([]OrderState, 0, b.bids.count+b.asks.count)
	for _, side := range [2]Side{Bid, Ask} {
		for _, lv := range b.ladderFor(side).levels {
			for o := lv.head; o != nil; o = o.next {
				out = append(out, OrderState{
					ID: o.ID, Side: o.Side, Price: o.Price, Qty: o.Qty,
					Entered: o.Entered, Owner: o.Owner,
				})
			}
		}
	}
	return out
}

// Restore rebuilds the book from a Dump. The book must be empty;
// orders enter in slice order, so a priority-ordered dump restores
// priority exactly. Invalid input — non-positive price or quantity,
// duplicate IDs, or a state that fails Validate (e.g. a crossed book
// from a corrupted checkpoint) — returns an error; the caller should
// discard the book and fall back.
func (b *Book) Restore(orders []OrderState) error {
	if len(b.byID) != 0 {
		return fmt.Errorf("orderbook: restore into non-empty book (%d resting)", len(b.byID))
	}
	for i, os := range orders {
		if os.Price <= 0 || os.Qty <= 0 {
			return fmt.Errorf("orderbook: restore order %d (id %d): price=%d qty=%d", i, os.ID, os.Price, os.Qty)
		}
		if os.Side != Bid && os.Side != Ask {
			return fmt.Errorf("orderbook: restore order %d (id %d): bad side %d", i, os.ID, os.Side)
		}
		if b.byID[os.ID] != nil {
			return fmt.Errorf("orderbook: restore order %d: duplicate id %d", i, os.ID)
		}
		b.rest(os.ID, os.Side, os.Price, os.Qty, os.Owner, os.Entered)
	}
	if err := b.Validate(); err != nil {
		return fmt.Errorf("orderbook: restored state invalid: %w", err)
	}
	return nil
}
