// Package orderbook implements the dark pool's matching engine: a
// price-time-priority limit order book with partial fills.
//
// Each Book holds one symbol's resting interest as two ladders of
// price levels — bids best (highest) first, asks best (lowest) first —
// with a FIFO queue of orders inside every level. An incoming order
// matches against the best opposite levels in price order and against
// orders within a level in arrival order; whatever quantity remains of
// a limit order rests at its price. Cancels and amends address resting
// orders by ID; TTL expiry is folded into the level structure (orders
// within a level age head-first, so expiry pops stale heads without
// scanning).
//
// The engine is written for the Broker's managed-instance hot path
// (one goroutine per book, see trading.Broker): it is deliberately
// NOT safe for concurrent use, and it recycles order and level structs
// through internal free lists so that a steady-state fill performs no
// allocation — the labels+freeze+isolation fast path stays zero-alloc
// per fill.
package orderbook

import (
	"fmt"
	"sort"

	"repro/internal/tags"
)

// Side is the side of the book an order belongs to.
type Side int8

const (
	// Bid is buying interest: priced descending, crosses asks at or
	// below its limit.
	Bid Side = iota
	// Ask is selling interest: priced ascending, crosses bids at or
	// above its limit.
	Ask
)

// Opposite returns the other side.
func (s Side) Opposite() Side { return 1 - s }

// String renders the side in the event vocabulary's spelling.
func (s Side) String() string {
	if s == Bid {
		return "bid"
	}
	return "ask"
}

// SideOf parses the event vocabulary's side spelling.
func SideOf(s string) (Side, bool) {
	switch s {
	case "bid":
		return Bid, true
	case "ask":
		return Ask, true
	}
	return 0, false
}

// Owner is opaque counterparty metadata the trading layer threads
// through the book: the engine never inspects it, but every fill and
// eviction hands it back so the Broker can publish trades and release
// per-order delegation authority without a side lookup.
type Owner struct {
	// Name is the owning trader's platform name.
	Name string
	// Tag is the per-order confidentiality tag tr protecting the
	// owner's identity parts.
	Tag tags.Tag
	// Strat is the owner's durable strategy-tag reference.
	Strat tags.Tag
	// Stamp is the originating tick time (latency accounting).
	Stamp int64
}

// Order is one resting order. Orders are owned by the book and pooled:
// pointers handed to FillFunc and eviction callbacks are valid only
// for the duration of the callback.
type Order struct {
	ID    int64
	Side  Side
	Price int64
	// Qty is the remaining open quantity. Inside a FillFunc callback
	// it is already reduced by the fill, so Qty == 0 means the fill
	// completed the order.
	Qty int64
	// Entered is the book-entry time (TTL accounting). Within a level
	// it is non-decreasing head→tail, which is what lets Expire pop
	// stale orders without scanning whole queues.
	Entered int64
	Owner   Owner

	level      *level
	prev, next *Order
}

// level is one price level: a FIFO queue of resting orders plus
// aggregates. Levels are pooled alongside orders.
type level struct {
	price      int64
	head, tail *Order
	count      int
	qty        int64
	free       *level
}

// ladder is one side's price levels, kept sorted best-first, plus
// side-wide aggregates so depth queries are O(1).
type ladder struct {
	levels []*level
	count  int
	qty    int64
}

// FillFunc observes one fill during matching: maker is the resting
// order (its Qty already reduced by qty), price is the maker's level
// price, qty the filled quantity. The callback must not call back into
// the Book, and must not retain maker past its return.
type FillFunc func(maker *Order, price, qty int64)

// DepthFunc observes one price-level change: after any mutation that
// alters a level's aggregates the book reports the level's NEW state —
// qty == 0 (and orders == 0) means the level is gone. The callback is
// invoked with plain scalars and no per-call allocation, making it the
// zero-alloc substitute for polling Snapshot on the matching hot path;
// it must not call back into the Book. A batch of fills sweeping one
// level reports once with the level's settled state, not once per
// fill.
type DepthFunc func(side Side, price, qty int64, orders int)

// EvictFunc observes one TTL eviction; same pointer rules as FillFunc.
type EvictFunc func(*Order)

// STP is a self-trade prevention policy: what happens when an incoming
// order would cross resting interest with the same Owner.Name. Orders
// with an empty owner name (engine-level tests) never self-match.
type STP uint8

const (
	// STPAllow lets an owner trade with itself (the default; wash
	// trades are the surveillance layer's problem, not the engine's).
	STPAllow STP = iota
	// STPCancelResting withdraws the owner's resting order and keeps
	// matching the incoming one against the rest of the book.
	STPCancelResting
	// STPCancelIncoming stops matching at the first self-cross and
	// discards the incoming order's remainder (fills already made
	// stand; a limit residual does NOT rest).
	STPCancelIncoming
)

// Book is one symbol's limit order book. Not safe for concurrent use.
type Book struct {
	bids, asks ladder
	byID       map[int64]*Order

	freeOrders *Order
	freeLevels *level

	depthHook DepthFunc
}

// SetDepthHook installs the level-delta observer (nil disables it).
// The market-data feed hangs off this hook; with it unset every
// mutation pays exactly one nil check.
func (b *Book) SetDepthHook(fn DepthFunc) { b.depthHook = fn }

// noteLevel reports a level's new aggregate state to the depth hook.
func (b *Book) noteLevel(s Side, lv *level) {
	if b.depthHook != nil {
		b.depthHook(s, lv.price, lv.qty, lv.count)
	}
}

// noteGone reports a level's removal to the depth hook.
func (b *Book) noteGone(s Side, price int64) {
	if b.depthHook != nil {
		b.depthHook(s, price, 0, 0)
	}
}

// New creates an empty book.
func New() *Book {
	return &Book{byID: make(map[int64]*Order)}
}

// ladderFor returns the ladder holding side's resting orders.
func (b *Book) ladderFor(s Side) *ladder {
	if s == Bid {
		return &b.bids
	}
	return &b.asks
}

// crosses reports whether a taker at takerPrice crosses a maker level
// at makerPrice.
func crosses(taker Side, takerPrice, makerPrice int64) bool {
	if taker == Bid {
		return takerPrice >= makerPrice
	}
	return takerPrice <= makerPrice
}

// better reports whether price a has strictly higher priority than b
// on side s.
func better(s Side, a, b int64) bool {
	if s == Bid {
		return a > b
	}
	return a < b
}

// Limit submits a limit order: it matches against the opposite side
// while the book crosses, then rests any residual at its price level.
// Non-positive price or quantity and duplicate IDs are rejected whole
// (no partial application). Returns the filled quantity and whether a
// residual rested.
func (b *Book) Limit(id int64, side Side, price, qty int64, ow Owner, now int64, fill FillFunc) (filled int64, rested bool) {
	filled, rested, _ = b.LimitSTP(id, side, price, qty, ow, now, STPAllow, nil, fill)
	return filled, rested
}

// LimitSTP is Limit with a self-trade prevention policy: stpCancel
// observes each resting order withdrawn under STPCancelResting (same
// pointer rules as EvictFunc). ok reports whether the order was
// accepted at all (false: non-positive price/qty or duplicate ID) —
// callers keeping quantity ledgers need the distinction from an
// accepted order that neither filled nor rested.
func (b *Book) LimitSTP(id int64, side Side, price, qty int64, ow Owner, now int64, stp STP, stpCancel EvictFunc, fill FillFunc) (filled int64, rested, ok bool) {
	if price <= 0 || qty <= 0 || b.byID[id] != nil {
		return 0, false, false
	}
	filled, stopped := b.take(side, price, true, qty, ow.Name, stp, stpCancel, fill)
	if rem := qty - filled; rem > 0 && !stopped {
		b.rest(id, side, price, rem, ow, now)
		return filled, true, true
	}
	return filled, false, true
}

// Market submits a market order: it matches against the opposite side
// regardless of price until the quantity is done or the book is empty;
// any remainder is discarded, never rested.
func (b *Book) Market(side Side, qty int64, fill FillFunc) (filled int64) {
	filled, _ = b.MarketSTP(side, qty, "", STPAllow, nil, fill)
	return filled
}

// MarketSTP is Market with a self-trade prevention policy; owner is
// the incoming order's Owner.Name for the self-cross comparison.
func (b *Book) MarketSTP(side Side, qty int64, owner string, stp STP, stpCancel EvictFunc, fill FillFunc) (filled int64, ok bool) {
	if qty <= 0 {
		return 0, false
	}
	filled, _ = b.take(side, 0, false, qty, owner, stp, stpCancel, fill)
	return filled, true
}

// Cancel removes the resting order with the given ID. Returns false if
// no such order rests (already filled, expired or never rested) — a
// canceled order can never fill afterwards.
func (b *Book) Cancel(id int64) bool {
	o := b.byID[id]
	if o == nil {
		return false
	}
	b.removeResting(o)
	return true
}

// Amend modifies a resting order. A quantity reduction at the same
// price amends in place and keeps time priority; a reprice or quantity
// increase loses priority — the order is pulled and re-enters as fresh
// interest (it may immediately match, reported through fill). Returns
// the re-entry fill quantity and whether the order existed.
func (b *Book) Amend(id int64, price, qty int64, now int64, fill FillFunc) (filled int64, ok bool) {
	return b.AmendSTP(id, price, qty, now, STPAllow, nil, fill)
}

// AmendSTP is Amend with a self-trade prevention policy applied to the
// re-entry path (an amend that loses priority may cross the owner's
// other resting orders).
func (b *Book) AmendSTP(id int64, price, qty int64, now int64, stp STP, stpCancel EvictFunc, fill FillFunc) (filled int64, ok bool) {
	o := b.byID[id]
	if o == nil || price <= 0 || qty <= 0 {
		return 0, false
	}
	if price == o.Price && qty <= o.Qty {
		delta := o.Qty - qty
		o.Qty = qty
		o.level.qty -= delta
		b.ladderFor(o.Side).qty -= delta
		if delta != 0 {
			b.noteLevel(o.Side, o.level)
		}
		return 0, true
	}
	side, ow := o.Side, o.Owner
	b.removeResting(o)
	filled, _, _ = b.LimitSTP(id, side, price, qty, ow, now, stp, stpCancel, fill)
	return filled, true
}

// Lookup returns the resting order with the given ID, or nil. The
// pointer is owned by the book: valid only until the next mutating
// call.
func (b *Book) Lookup(id int64) *Order { return b.byID[id] }

// Expire removes every resting order entered before cutoff, invoking
// evict for each. Orders age head-first within a level, so each level
// pays only for its stale prefix. Returns the number evicted.
func (b *Book) Expire(cutoff int64, evict EvictFunc) int {
	return b.expireSide(Bid, cutoff, evict) + b.expireSide(Ask, cutoff, evict)
}

func (b *Book) expireSide(side Side, cutoff int64, evict EvictFunc) int {
	lad := b.ladderFor(side)
	removed := 0
	for i := 0; i < len(lad.levels); {
		lv := lad.levels[i]
		n0 := lv.count
		for lv.head != nil && lv.head.Entered < cutoff {
			o := lv.head
			if evict != nil {
				evict(o)
			}
			lv.head = o.next
			if lv.head == nil {
				lv.tail = nil
			} else {
				lv.head.prev = nil
			}
			lv.count--
			lv.qty -= o.Qty
			lad.count--
			lad.qty -= o.Qty
			delete(b.byID, o.ID)
			b.recycleOrder(o)
			removed++
		}
		if lv.count == 0 {
			lad.removeAt(i)
			b.noteGone(side, lv.price)
			b.recycleLevel(lv)
		} else {
			if lv.count != n0 {
				b.noteLevel(side, lv)
			}
			i++
		}
	}
	return removed
}

// take matches an incoming taker against the opposite ladder. priced
// limits matching to levels the taker's price crosses; market orders
// pass priced=false and sweep everything. owner/stp implement
// self-trade prevention: a maker whose Owner.Name equals owner is
// withdrawn (STPCancelResting, reported through stpCancel) or stops
// the taker outright (STPCancelIncoming, reported through stopped —
// the caller must then discard the remainder instead of resting it).
func (b *Book) take(side Side, price int64, priced bool, qty int64, owner string, stp STP, stpCancel EvictFunc, fill FillFunc) (filled int64, stopped bool) {
	mside := side.Opposite()
	opp := b.ladderFor(mside)
	for qty > 0 && len(opp.levels) > 0 {
		lv := opp.levels[0]
		if priced && !crosses(side, price, lv.price) {
			break
		}
		q0, c0 := lv.qty, lv.count
		for qty > 0 && lv.head != nil {
			maker := lv.head
			if stp != STPAllow && owner != "" && maker.Owner.Name == owner {
				if stp == STPCancelIncoming {
					// The self-crossed maker keeps the level non-empty,
					// so no empty level escapes the early return.
					if lv.qty != q0 || lv.count != c0 {
						b.noteLevel(mside, lv)
					}
					return filled, true
				}
				// STPCancelResting: withdraw the maker and keep going.
				lv.head = maker.next
				if lv.head == nil {
					lv.tail = nil
				} else {
					lv.head.prev = nil
				}
				lv.count--
				lv.qty -= maker.Qty
				opp.count--
				opp.qty -= maker.Qty
				delete(b.byID, maker.ID)
				if stpCancel != nil {
					stpCancel(maker)
				}
				b.recycleOrder(maker)
				continue
			}
			n := maker.Qty
			if qty < n {
				n = qty
			}
			maker.Qty -= n
			lv.qty -= n
			opp.qty -= n
			qty -= n
			filled += n
			if fill != nil {
				fill(maker, lv.price, n)
			}
			if maker.Qty == 0 {
				lv.head = maker.next
				if lv.head == nil {
					lv.tail = nil
				} else {
					lv.head.prev = nil
				}
				lv.count--
				opp.count--
				delete(b.byID, maker.ID)
				b.recycleOrder(maker)
			}
		}
		if lv.count == 0 {
			opp.removeAt(0)
			b.noteGone(mside, lv.price)
			b.recycleLevel(lv)
		} else if lv.qty != q0 || lv.count != c0 {
			b.noteLevel(mside, lv)
		}
	}
	return filled, false
}

// rest enters a residual at its price level, creating the level if
// needed.
func (b *Book) rest(id int64, side Side, price, qty int64, ow Owner, now int64) {
	lad := b.ladderFor(side)
	i, found := lad.locate(side, price)
	var lv *level
	if found {
		lv = lad.levels[i]
	} else {
		lv = b.newLevel(price)
		lad.levels = append(lad.levels, nil)
		copy(lad.levels[i+1:], lad.levels[i:])
		lad.levels[i] = lv
	}
	o := b.newOrder()
	o.ID, o.Side, o.Price, o.Qty, o.Entered, o.Owner = id, side, price, qty, now, ow
	o.level = lv
	if lv.tail == nil {
		lv.head, lv.tail = o, o
	} else {
		o.prev = lv.tail
		lv.tail.next = o
		lv.tail = o
	}
	lv.count++
	lv.qty += qty
	lad.count++
	lad.qty += qty
	b.byID[id] = o
	b.noteLevel(side, lv)
}

// removeResting unlinks a resting order (cancel/amend path) and
// recycles it, dropping its level if emptied.
func (b *Book) removeResting(o *Order) {
	lv := o.level
	if o.prev != nil {
		o.prev.next = o.next
	} else {
		lv.head = o.next
	}
	if o.next != nil {
		o.next.prev = o.prev
	} else {
		lv.tail = o.prev
	}
	lv.count--
	lv.qty -= o.Qty
	lad := b.ladderFor(o.Side)
	lad.count--
	lad.qty -= o.Qty
	delete(b.byID, o.ID)
	if lv.count == 0 {
		if i, found := lad.locate(o.Side, lv.price); found {
			lad.removeAt(i)
		}
		b.noteGone(o.Side, lv.price)
		b.recycleLevel(lv)
	} else {
		b.noteLevel(o.Side, lv)
	}
	b.recycleOrder(o)
}

// locate finds the index of price in the ladder, or the insertion
// index preserving best-first order.
func (l *ladder) locate(side Side, price int64) (int, bool) {
	i := sort.Search(len(l.levels), func(i int) bool {
		return !better(side, l.levels[i].price, price)
	})
	if i < len(l.levels) && l.levels[i].price == price {
		return i, true
	}
	return i, false
}

// removeAt drops the level at index i, keeping slice capacity.
func (l *ladder) removeAt(i int) {
	copy(l.levels[i:], l.levels[i+1:])
	l.levels[len(l.levels)-1] = nil
	l.levels = l.levels[:len(l.levels)-1]
}

// pooling

func (b *Book) newOrder() *Order {
	if o := b.freeOrders; o != nil {
		b.freeOrders = o.next
		*o = Order{}
		return o
	}
	return &Order{}
}

func (b *Book) recycleOrder(o *Order) {
	*o = Order{next: b.freeOrders}
	b.freeOrders = o
}

func (b *Book) newLevel(price int64) *level {
	if lv := b.freeLevels; lv != nil {
		b.freeLevels = lv.free
		*lv = level{price: price}
		return lv
	}
	return &level{price: price}
}

func (b *Book) recycleLevel(lv *level) {
	*lv = level{free: b.freeLevels}
	b.freeLevels = lv
}

// accessors

// Best returns the side's best price and that level's total quantity.
func (b *Book) Best(side Side) (price, qty int64, ok bool) {
	lad := b.ladderFor(side)
	if len(lad.levels) == 0 {
		return 0, 0, false
	}
	lv := lad.levels[0]
	return lv.price, lv.qty, true
}

// Resting reports one side's resting order count and total quantity.
func (b *Book) Resting(side Side) (orders int, qty int64) {
	lad := b.ladderFor(side)
	return lad.count, lad.qty
}

// RestingOrders reports the total resting order count across both
// sides — the book's depth, as the bench harness samples it.
func (b *Book) RestingOrders() int { return b.bids.count + b.asks.count }

// Levels reports the number of populated price levels on a side.
func (b *Book) Levels(side Side) int { return len(b.ladderFor(side).levels) }

// VisitDepth walks one side's populated price levels best-first,
// reporting each level's aggregate state without copying anything —
// the zero-alloc form of Snapshot for readers that need depth, not
// per-order detail (the market-data feed's snapshot primer, depth
// sampling in benchmarks). fn returns false to stop early. The
// callback must not mutate the book.
func (b *Book) VisitDepth(side Side, fn func(price, qty int64, orders int) bool) {
	for _, lv := range b.ladderFor(side).levels {
		if !fn(lv.price, lv.qty, lv.count) {
			return
		}
	}
}

// snapshots

// OrderSnap is one resting order in a snapshot.
type OrderSnap struct {
	ID, Qty int64
}

// LevelSnap is one price level in a snapshot, orders in time priority.
type LevelSnap struct {
	Side   Side
	Price  int64
	Orders []OrderSnap
}

// Snapshot copies the book's resting state: bid levels best-first,
// then ask levels best-first. Tests use it to compare book states
// across replay paths.
func (b *Book) Snapshot() []LevelSnap {
	out := make([]LevelSnap, 0, len(b.bids.levels)+len(b.asks.levels))
	for _, side := range [2]Side{Bid, Ask} {
		for _, lv := range b.ladderFor(side).levels {
			ls := LevelSnap{Side: side, Price: lv.price, Orders: make([]OrderSnap, 0, lv.count)}
			for o := lv.head; o != nil; o = o.next {
				ls.Orders = append(ls.Orders, OrderSnap{ID: o.ID, Qty: o.Qty})
			}
			out = append(out, ls)
		}
	}
	return out
}

// Validate checks every structural invariant of the book; property and
// fuzz tests call it after each operation. It returns the first
// violation found, or nil.
func (b *Book) Validate() error {
	total := 0
	for _, side := range [2]Side{Bid, Ask} {
		lad := b.ladderFor(side)
		count, qty := 0, int64(0)
		for i, lv := range lad.levels {
			if i > 0 && !better(side, lad.levels[i-1].price, lv.price) {
				return fmt.Errorf("%v ladder out of order at %d: %d then %d", side, i, lad.levels[i-1].price, lv.price)
			}
			if lv.count == 0 || lv.head == nil {
				return fmt.Errorf("%v level %d empty but present", side, lv.price)
			}
			lvCount, lvQty := 0, int64(0)
			var prev *Order
			for o := lv.head; o != nil; o = o.next {
				if o.prev != prev {
					return fmt.Errorf("order %d has broken back-link", o.ID)
				}
				if o.level != lv || o.Side != side || o.Price != lv.price {
					return fmt.Errorf("order %d misfiled: side=%v price=%d in %v level %d", o.ID, o.Side, o.Price, side, lv.price)
				}
				if o.Qty <= 0 {
					return fmt.Errorf("order %d rests with qty %d", o.ID, o.Qty)
				}
				if b.byID[o.ID] != o {
					return fmt.Errorf("order %d not indexed", o.ID)
				}
				lvCount++
				lvQty += o.Qty
				prev = o
			}
			if lv.tail != prev {
				return fmt.Errorf("%v level %d tail mismatch", side, lv.price)
			}
			if lvCount != lv.count || lvQty != lv.qty {
				return fmt.Errorf("%v level %d aggregates: count %d/%d qty %d/%d", side, lv.price, lvCount, lv.count, lvQty, lv.qty)
			}
			count += lvCount
			qty += lvQty
		}
		if count != lad.count || qty != lad.qty {
			return fmt.Errorf("%v ladder aggregates: count %d/%d qty %d/%d", side, count, lad.count, qty, lad.qty)
		}
		total += count
	}
	if total != len(b.byID) {
		return fmt.Errorf("index holds %d orders, ladders hold %d", len(b.byID), total)
	}
	if bb, _, okB := b.Best(Bid); okB {
		if ba, _, okA := b.Best(Ask); okA && bb >= ba {
			return fmt.Errorf("book crossed: best bid %d >= best ask %d", bb, ba)
		}
	}
	return nil
}
