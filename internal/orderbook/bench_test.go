package orderbook

// Engine micro-benchmarks. BookFillRoundtrip is the zero-alloc claim:
// steady-state rest+cross pairs must not allocate. BookSweep measures
// a taker clearing a ladder of small makers — the partial-fill hot
// path the order-flow workload exercises.
//
//	go test ./internal/orderbook -run xxx -bench BenchmarkBook -benchmem

import (
	"testing"
)

func BenchmarkBookFillRoundtrip(b *testing.B) {
	bk := New()
	ow := Owner{Name: "bench"}
	id := int64(0)
	for i := 0; i < 64; i++ { // warm the pools
		id += 2
		bk.Limit(id, Ask, 100, 7, ow, id, nil)
		bk.Limit(id+1, Bid, 100, 7, ow, id+1, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id += 2
		bk.Limit(id, Ask, 100, 7, ow, id, nil)
		if f, _ := bk.Limit(id+1, Bid, 100, 7, ow, id+1, nil); f != 7 {
			b.Fatal("missed cross")
		}
	}
}

func BenchmarkBookSweep(b *testing.B) {
	bk := New()
	ow := Owner{Name: "bench"}
	id := int64(0)
	const makers = 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < makers; j++ {
			id++
			bk.Limit(id, Ask, int64(100+j%4), 10, ow, id, nil)
		}
		id++
		if f := bk.Market(Bid, makers*10, nil); f != makers*10 {
			b.Fatal("sweep incomplete")
		}
	}
}

func BenchmarkBookCancel(b *testing.B) {
	bk := New()
	ow := Owner{Name: "bench"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := int64(i + 1)
		bk.Limit(id, Bid, int64(90+i%8), 5, ow, id, nil)
		if !bk.Cancel(id) {
			b.Fatal("cancel missed")
		}
	}
}
