package orderbook

import (
	"testing"
)

type fill struct {
	maker      int64
	price, qty int64
}

// collect returns a FillFunc appending to *out.
func collect(out *[]fill) FillFunc {
	return func(m *Order, price, qty int64) {
		*out = append(*out, fill{maker: m.ID, price: price, qty: qty})
	}
}

func mustValid(t *testing.T, b *Book) {
	t.Helper()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPricePriorityAcrossLevels(t *testing.T) {
	b := New()
	b.Limit(1, Ask, 105, 10, Owner{}, 1, nil)
	b.Limit(2, Ask, 103, 10, Owner{}, 2, nil)
	b.Limit(3, Ask, 104, 10, Owner{}, 3, nil)
	mustValid(t, b)

	var fills []fill
	filled, rested := b.Limit(4, Bid, 104, 25, Owner{}, 4, collect(&fills))
	if filled != 20 || !rested {
		t.Fatalf("filled=%d rested=%v", filled, rested)
	}
	want := []fill{{2, 103, 10}, {3, 104, 10}}
	if len(fills) != len(want) {
		t.Fatalf("fills %+v", fills)
	}
	for i := range want {
		if fills[i] != want[i] {
			t.Fatalf("fill %d = %+v, want %+v", i, fills[i], want[i])
		}
	}
	// The 105 ask never crossed; the bid's residual rests at 104.
	if price, qty, ok := b.Best(Bid); !ok || price != 104 || qty != 5 {
		t.Fatalf("residual: price=%d qty=%d ok=%v", price, qty, ok)
	}
	mustValid(t, b)
}

func TestResidualRestsAtItsLevel(t *testing.T) {
	b := New()
	b.Limit(1, Ask, 100, 30, Owner{}, 1, nil)
	var fills []fill
	filled, rested := b.Limit(2, Bid, 101, 50, Owner{}, 2, collect(&fills))
	if filled != 30 || !rested {
		t.Fatalf("filled=%d rested=%v", filled, rested)
	}
	price, qty, ok := b.Best(Bid)
	if !ok || price != 101 || qty != 20 {
		t.Fatalf("residual best bid %d qty %d ok=%v", price, qty, ok)
	}
	if o := b.Lookup(2); o == nil || o.Qty != 20 || o.Price != 101 {
		t.Fatalf("residual lookup %+v", o)
	}
	mustValid(t, b)
}

func TestTimePriorityWithinLevel(t *testing.T) {
	b := New()
	b.Limit(1, Bid, 100, 10, Owner{}, 1, nil)
	b.Limit(2, Bid, 100, 10, Owner{}, 2, nil)
	b.Limit(3, Bid, 100, 10, Owner{}, 3, nil)
	var fills []fill
	b.Limit(4, Ask, 100, 15, Owner{}, 4, collect(&fills))
	if len(fills) != 2 || fills[0].maker != 1 || fills[0].qty != 10 || fills[1].maker != 2 || fills[1].qty != 5 {
		t.Fatalf("fills %+v", fills)
	}
	if o := b.Lookup(2); o == nil || o.Qty != 5 {
		t.Fatal("partially filled maker lost or wrong qty")
	}
	mustValid(t, b)
}

func TestCancelThenFillImpossible(t *testing.T) {
	b := New()
	b.Limit(1, Ask, 100, 10, Owner{}, 1, nil)
	b.Limit(2, Ask, 100, 10, Owner{}, 2, nil)
	if !b.Cancel(1) {
		t.Fatal("cancel failed")
	}
	if b.Cancel(1) {
		t.Fatal("double cancel succeeded")
	}
	var fills []fill
	b.Limit(3, Bid, 100, 20, Owner{}, 3, collect(&fills))
	for _, f := range fills {
		if f.maker == 1 {
			t.Fatalf("canceled order filled: %+v", f)
		}
	}
	if len(fills) != 1 || fills[0].maker != 2 {
		t.Fatalf("fills %+v", fills)
	}
	mustValid(t, b)
}

func TestMarketSweepsAndDiscardsRemainder(t *testing.T) {
	b := New()
	b.Limit(1, Bid, 99, 10, Owner{}, 1, nil)
	b.Limit(2, Bid, 98, 10, Owner{}, 2, nil)
	var fills []fill
	filled := b.Market(Ask, 50, collect(&fills))
	if filled != 20 {
		t.Fatalf("market filled %d", filled)
	}
	if n, q := b.Resting(Bid); n != 0 || q != 0 {
		t.Fatalf("bids remain: %d/%d", n, q)
	}
	if n, _ := b.Resting(Ask); n != 0 {
		t.Fatal("market remainder rested")
	}
	if fills[0].maker != 1 || fills[0].price != 99 || fills[1].maker != 2 || fills[1].price != 98 {
		t.Fatalf("fills %+v", fills)
	}
	mustValid(t, b)
}

func TestAmendQtyDownKeepsPriority(t *testing.T) {
	b := New()
	b.Limit(1, Bid, 100, 30, Owner{}, 1, nil)
	b.Limit(2, Bid, 100, 30, Owner{}, 2, nil)
	if _, ok := b.Amend(1, 100, 10, 3, nil); !ok {
		t.Fatal("amend failed")
	}
	var fills []fill
	b.Limit(3, Ask, 100, 10, Owner{}, 4, collect(&fills))
	if len(fills) != 1 || fills[0].maker != 1 {
		t.Fatalf("amended order lost priority: %+v", fills)
	}
	mustValid(t, b)
}

func TestAmendRepriceLosesPriorityAndMayFill(t *testing.T) {
	b := New()
	b.Limit(1, Bid, 100, 10, Owner{}, 1, nil)
	b.Limit(2, Ask, 105, 10, Owner{}, 2, nil)
	var fills []fill
	filled, ok := b.Amend(1, 105, 10, 3, collect(&fills))
	if !ok || filled != 10 {
		t.Fatalf("reprice-to-cross: filled=%d ok=%v", filled, ok)
	}
	if len(fills) != 1 || fills[0].maker != 2 {
		t.Fatalf("fills %+v", fills)
	}
	if b.RestingOrders() != 0 {
		t.Fatal("book not empty after crossing amend")
	}
	mustValid(t, b)
}

func TestExpirePopsStaleHeads(t *testing.T) {
	b := New()
	b.Limit(1, Bid, 100, 10, Owner{}, 10, nil)
	b.Limit(2, Bid, 100, 10, Owner{}, 20, nil)
	b.Limit(3, Bid, 99, 10, Owner{}, 5, nil)
	b.Limit(4, Ask, 110, 10, Owner{}, 12, nil)
	var evicted []int64
	n := b.Expire(15, func(o *Order) { evicted = append(evicted, o.ID) })
	if n != 3 {
		t.Fatalf("expired %d, want 3 (ids %v)", n, evicted)
	}
	for _, id := range []int64{1, 3, 4} {
		if b.Lookup(id) != nil {
			t.Fatalf("stale order %d survived", id)
		}
	}
	if b.Lookup(2) == nil {
		t.Fatal("fresh order evicted")
	}
	if b.Levels(Bid) != 1 || b.Levels(Ask) != 0 {
		t.Fatalf("levels after expiry: %d bid, %d ask", b.Levels(Bid), b.Levels(Ask))
	}
	mustValid(t, b)
}

func TestRejects(t *testing.T) {
	b := New()
	if f, r := b.Limit(1, Bid, 0, 10, Owner{}, 1, nil); f != 0 || r {
		t.Fatal("zero price accepted")
	}
	if f, r := b.Limit(1, Bid, 100, 0, Owner{}, 1, nil); f != 0 || r {
		t.Fatal("zero qty accepted")
	}
	b.Limit(1, Bid, 100, 10, Owner{}, 1, nil)
	if f, r := b.Limit(1, Bid, 101, 10, Owner{}, 2, nil); f != 0 || r {
		t.Fatal("duplicate id accepted")
	}
	if b.Market(Ask, 0, nil) != 0 {
		t.Fatal("zero-qty market filled")
	}
	if _, ok := b.Amend(99, 100, 10, 1, nil); ok {
		t.Fatal("amend of unknown id succeeded")
	}
	mustValid(t, b)
}

func TestSnapshotShape(t *testing.T) {
	b := New()
	b.Limit(1, Bid, 100, 10, Owner{}, 1, nil)
	b.Limit(2, Bid, 99, 20, Owner{}, 2, nil)
	b.Limit(3, Ask, 101, 30, Owner{}, 3, nil)
	snap := b.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot %+v", snap)
	}
	if snap[0].Side != Bid || snap[0].Price != 100 || snap[1].Price != 99 {
		t.Fatalf("bid order wrong: %+v", snap[:2])
	}
	if snap[2].Side != Ask || snap[2].Price != 101 || snap[2].Orders[0].Qty != 30 {
		t.Fatalf("ask snap wrong: %+v", snap[2])
	}
}

// TestSteadyStateFillDoesNotAllocate pins the zero-alloc fill claim:
// once the pools are warm, a rest+cross round trip performs no heap
// allocation. A small tolerance absorbs rare map-internal rehashing.
func TestSteadyStateFillDoesNotAllocate(t *testing.T) {
	b := New()
	id := int64(0)
	round := func() {
		id += 2
		b.Limit(id, Ask, 100, 7, Owner{Name: "maker"}, id, nil)
		if f, _ := b.Limit(id+1, Bid, 100, 7, Owner{Name: "taker"}, id+1, nil); f != 7 {
			t.Fatalf("round fill %d", f)
		}
	}
	for i := 0; i < 64; i++ { // warm pools and map buckets
		round()
	}
	if avg := testing.AllocsPerRun(200, round); avg > 0.1 {
		t.Fatalf("steady-state fill allocates %.2f per round", avg)
	}
	mustValid(t, b)
}

func TestPoolRecyclingReusesStructs(t *testing.T) {
	b := New()
	b.Limit(1, Bid, 100, 10, Owner{Name: "x"}, 1, nil)
	o1 := b.Lookup(1)
	b.Cancel(1)
	b.Limit(2, Bid, 90, 5, Owner{Name: "y"}, 2, nil)
	o2 := b.Lookup(2)
	if o1 != o2 {
		t.Fatal("order struct not recycled")
	}
	if o2.Owner.Name != "y" || o2.Price != 90 {
		t.Fatalf("recycled order carries stale state: %+v", o2)
	}
	mustValid(t, b)
}
