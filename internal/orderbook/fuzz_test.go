package orderbook

// Native fuzz target over encoded order streams. Each 4-byte chunk
// decodes to one operation; the engine must never panic, never report
// a non-positive or oversized fill, and must satisfy every structural
// invariant (Validate) after every operation. The declarative model
// from quick_test.go rides along as the matching oracle.
//
// CI runs a short smoke (`go test -fuzz=FuzzMatch -fuzztime=30s`) as a
// non-blocking job; locally let it run longer.

import (
	"testing"
)

// fuzzOp decodes one op from 4 bytes:
//
//	b0: bits 0-2 kind (0-3 limit, 4 market, 5 cancel, 6 amend,
//	    7 expire), bit 3 side
//	b1: price offset into a narrow crossing band
//	b2: quantity
//	b3: target selector for cancel/amend
func FuzzMatch(f *testing.F) {
	f.Add([]byte{0x00, 10, 5, 0, 0x08, 10, 5, 0})                  // bid meets ask at one price
	f.Add([]byte{0x00, 1, 20, 0, 0x08, 60, 20, 0, 0x04, 0, 50, 0}) // passive pair swept by market
	f.Add([]byte{0x00, 30, 9, 0, 0x05, 30, 9, 0, 0x06, 31, 4, 0})  // cancel then amend
	f.Add([]byte{0x01, 32, 40, 0, 0x09, 31, 7, 0, 0x09, 30, 7, 1, 0x07, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1024 {
			data = data[:1024] // keep the O(n²) oracle affordable
		}
		b := New()
		ref := &refBook{}
		var issued []int64
		var id int64
		for i := 0; i+4 <= len(data); i += 4 {
			kind := data[i] & 0x07
			side := Side((data[i] >> 3) & 1)
			price := int64(100 + int(data[i+1])%32)
			qty := int64(1 + int(data[i+2])%64)
			now := int64(i + 1)

			var got, want []fill
			switch {
			case kind <= 3: // limit
				id++
				filled, rested := b.Limit(id, side, price, qty, Owner{}, now, collect(&got))
				want = ref.limit(id, side, price, qty)
				issued = append(issued, id)
				var residual int64
				if o := b.Lookup(id); o != nil {
					residual = o.Qty
				}
				if filled < 0 || filled > qty {
					t.Fatalf("op %d: limit filled %d of %d", i, filled, qty)
				}
				if rested != (residual > 0) || filled+residual != qty {
					t.Fatalf("op %d: conservation broken: filled %d residual %d qty %d", i, filled, residual, qty)
				}
			case kind == 4: // market
				filled := b.Market(side, qty, collect(&got))
				want = ref.market(side, qty)
				if filled < 0 || filled > qty {
					t.Fatalf("op %d: market filled %d of %d", i, filled, qty)
				}
			case kind == 5: // cancel
				if len(issued) == 0 {
					continue
				}
				target := issued[int(data[i+3])%len(issued)]
				if b.Cancel(target) != ref.cancel(target) {
					t.Fatalf("op %d: cancel(%d) diverges from model", i, target)
				}
			case kind == 6: // amend
				if len(issued) == 0 {
					continue
				}
				target := issued[int(data[i+3])%len(issued)]
				mo := ref.lookup(target)
				_, ok := b.Amend(target, price, qty, now, collect(&got))
				if ok != (mo != nil) {
					t.Fatalf("op %d: amend(%d) diverges from model", i, target)
				}
				if mo != nil {
					if price == mo.price && qty <= mo.qty {
						mo.qty = qty
					} else {
						s := mo.side
						ref.cancel(target)
						want = ref.limit(target, s, price, qty)
					}
				}
			default: // expire everything entered before the stream midpoint
				cutoff := int64(len(data) / 2)
				evicted := 0
				b.Expire(cutoff, func(o *Order) {
					if o.Qty <= 0 {
						t.Fatalf("op %d: evicted order %d with qty %d", i, o.ID, o.Qty)
					}
					evicted++
					ref.cancel(o.ID)
				})
				_ = evicted
			}

			if len(got) != len(want) {
				t.Fatalf("op %d: %d fills, model wants %d (%+v vs %+v)", i, len(got), len(want), got, want)
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("op %d: fill %d = %+v, model wants %+v", i, k, got[k], want[k])
				}
				if got[k].qty <= 0 {
					t.Fatalf("op %d: non-positive fill %+v", i, got[k])
				}
			}
			if err := b.Validate(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	})
}
