package orderbook

import (
	"math/rand"
	"reflect"
	"testing"
)

// buildRandomBook drives a seeded op mix into a fresh book and
// returns it.
func buildRandomBook(t *testing.T, seed int64, ops int) *Book {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := New()
	id := int64(1)
	for i := 0; i < ops; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5:
			side := Side(rng.Intn(2))
			price := int64(90 + rng.Intn(21))
			qty := int64(1 + rng.Intn(50))
			ow := Owner{Name: "t", Stamp: int64(i)}
			b.Limit(id, side, price, qty, ow, int64(i), nil)
			id++
		case 6:
			b.Market(Side(rng.Intn(2)), int64(1+rng.Intn(30)), nil)
		case 7:
			b.Cancel(int64(rng.Int63n(id)))
		case 8:
			b.Amend(int64(rng.Int63n(id)), int64(90+rng.Intn(21)), int64(1+rng.Intn(50)), int64(i), nil)
		case 9:
			b.Expire(int64(i-20), nil)
		}
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("seed %d: built book invalid: %v", seed, err)
	}
	return b
}

func TestDumpRestoreRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		src := buildRandomBook(t, seed, 400)
		dump := src.Dump()

		dst := New()
		if err := dst.Restore(dump); err != nil {
			t.Fatalf("seed %d: restore: %v", seed, err)
		}
		if !reflect.DeepEqual(dst.Snapshot(), src.Snapshot()) {
			t.Fatalf("seed %d: snapshots diverge after restore", seed)
		}
		if !reflect.DeepEqual(dst.Dump(), dump) {
			t.Fatalf("seed %d: dump not idempotent through restore", seed)
		}

		// Time priority and TTL state must survive: the same follow-up
		// ops produce identical fills and end states on both books.
		type fillRec struct{ ID, Price, Qty int64 }
		var fa, fb []fillRec
		rec := func(out *[]fillRec) FillFunc {
			return func(m *Order, p, q int64) { *out = append(*out, fillRec{m.ID, p, q}) }
		}
		for i, bk := range []*Book{src, dst} {
			out := []*[]fillRec{&fa, &fb}[i]
			bk.Expire(380, nil)
			bk.Market(Bid, 75, rec(out))
			bk.Limit(1_000_001, Ask, 95, 40, Owner{Name: "x"}, 500, rec(out))
			bk.Limit(1_000_002, Bid, 101, 60, Owner{Name: "y"}, 501, rec(out))
		}
		if !reflect.DeepEqual(fa, fb) {
			t.Fatalf("seed %d: post-restore fills diverge:\n%v\n%v", seed, fa, fb)
		}
		if !reflect.DeepEqual(src.Snapshot(), dst.Snapshot()) {
			t.Fatalf("seed %d: post-restore books diverge", seed)
		}
	}
}

func TestRestoreRejectsBadState(t *testing.T) {
	good := OrderState{ID: 1, Side: Bid, Price: 100, Qty: 5}
	cases := []struct {
		name   string
		orders []OrderState
	}{
		{"zero qty", []OrderState{{ID: 1, Side: Bid, Price: 100, Qty: 0}}},
		{"zero price", []OrderState{{ID: 1, Side: Bid, Price: 0, Qty: 5}}},
		{"bad side", []OrderState{{ID: 1, Side: 7, Price: 100, Qty: 5}}},
		{"dup id", []OrderState{good, {ID: 1, Side: Ask, Price: 110, Qty: 5}}},
		{"crossed", []OrderState{
			{ID: 1, Side: Bid, Price: 110, Qty: 5},
			{ID: 2, Side: Ask, Price: 100, Qty: 5},
		}},
	}
	for _, tc := range cases {
		if err := New().Restore(tc.orders); err == nil {
			t.Errorf("%s: restore accepted invalid state", tc.name)
		}
	}
	b := New()
	if err := b.Restore([]OrderState{good}); err != nil {
		t.Fatalf("valid restore failed: %v", err)
	}
	if err := b.Restore([]OrderState{{ID: 2, Side: Ask, Price: 110, Qty: 5}}); err == nil {
		t.Error("restore into non-empty book accepted")
	}
}
