package orderbook

// Table-driven self-trade prevention tests. Each scenario scripts the
// book to a known state, submits the incoming order under each policy,
// and pins fills, STP cancels, the incoming residual and the final
// resting set — including the partial-fill-then-self-cross edge where
// the taker first fills against a counterparty and only then meets its
// own resting interest.

import (
	"testing"
)

// stpRest is one pre-scripted resting order.
type stpRest struct {
	id    int64
	owner string
	side  Side
	price int64
	qty   int64
}

// stpWant pins one policy's expected outcome.
type stpWant struct {
	fills      []fill  // observed fill stream, in order
	stpCancels []int64 // IDs withdrawn by STPCancelResting, in order
	restedQty  int64   // residual resting for the incoming order (0 = none)
	restingIDs []int64 // every order left in the book, any side
}

func TestSelfTradePreventionTable(t *testing.T) {
	const taker = "alice"
	cases := []struct {
		name    string
		resting []stpRest
		// incoming limit order (id 100) from taker.
		side       Side
		price, qty int64
		want       map[STP]stpWant
	}{
		{
			// Pure self-cross: the only crossing interest is the
			// taker's own.
			name:    "self-only cross",
			resting: []stpRest{{id: 1, owner: taker, side: Ask, price: 100, qty: 10}},
			side:    Bid, price: 100, qty: 10,
			want: map[STP]stpWant{
				STPAllow: {
					fills:      []fill{{maker: 1, price: 100, qty: 10}},
					restingIDs: nil,
				},
				STPCancelResting: {
					stpCancels: []int64{1},
					restedQty:  10,
					restingIDs: []int64{100},
				},
				STPCancelIncoming: {
					// Incoming discarded whole; the resting ask stays.
					restingIDs: []int64{1},
				},
			},
		},
		{
			// Partial-fill-then-self-cross: bob's ask has time priority
			// at the level, alice's own ask sits behind it. The taker
			// fills bob first, then meets itself.
			name: "partial fill then self cross",
			resting: []stpRest{
				{id: 1, owner: "bob", side: Ask, price: 100, qty: 6},
				{id: 2, owner: taker, side: Ask, price: 100, qty: 6},
				{id: 3, owner: "carol", side: Ask, price: 101, qty: 6},
			},
			side: Bid, price: 101, qty: 15,
			want: map[STP]stpWant{
				STPAllow: {
					fills: []fill{
						{maker: 1, price: 100, qty: 6},
						{maker: 2, price: 100, qty: 6},
						{maker: 3, price: 101, qty: 3},
					},
					restingIDs: []int64{3},
				},
				STPCancelResting: {
					// Own ask withdrawn mid-sweep; matching continues
					// into carol's level.
					fills: []fill{
						{maker: 1, price: 100, qty: 6},
						{maker: 3, price: 101, qty: 6},
					},
					stpCancels: []int64{2},
					restedQty:  3,
					restingIDs: []int64{100},
				},
				STPCancelIncoming: {
					// Bob's fill stands; the remainder dies at the
					// self-cross and must NOT rest even though the
					// taker priced through carol's level too.
					fills:      []fill{{maker: 1, price: 100, qty: 6}},
					restingIDs: []int64{2, 3},
				},
			},
		},
		{
			// Self interest deeper than the taker's limit never
			// triggers any policy.
			name: "own order behind the limit",
			resting: []stpRest{
				{id: 1, owner: "bob", side: Ask, price: 100, qty: 5},
				{id: 2, owner: taker, side: Ask, price: 103, qty: 5},
			},
			side: Bid, price: 100, qty: 8,
			want: map[STP]stpWant{
				STPAllow: {
					fills:      []fill{{maker: 1, price: 100, qty: 5}},
					restedQty:  3,
					restingIDs: []int64{2, 100},
				},
				STPCancelResting: {
					fills:      []fill{{maker: 1, price: 100, qty: 5}},
					restedQty:  3,
					restingIDs: []int64{2, 100},
				},
				STPCancelIncoming: {
					fills:      []fill{{maker: 1, price: 100, qty: 5}},
					restedQty:  3,
					restingIDs: []int64{2, 100},
				},
			},
		},
	}

	for _, tc := range cases {
		for _, stp := range []STP{STPAllow, STPCancelResting, STPCancelIncoming} {
			want, ok := tc.want[stp]
			if !ok {
				continue
			}
			t.Run(tc.name+"/"+stpName(stp), func(t *testing.T) {
				b := New()
				for i, r := range tc.resting {
					if _, rested := b.Limit(r.id, r.side, r.price, r.qty, Owner{Name: r.owner}, int64(i+1), nil); !rested {
						t.Fatalf("scripted order %d did not rest", r.id)
					}
				}
				var got []fill
				var cancels []int64
				_, _, ok := b.LimitSTP(100, tc.side, tc.price, tc.qty, Owner{Name: taker}, 50, stp,
					func(o *Order) { cancels = append(cancels, o.ID) },
					collect(&got))
				if !ok {
					t.Fatal("incoming order rejected")
				}
				if len(got) != len(want.fills) {
					t.Fatalf("fills %+v, want %+v", got, want.fills)
				}
				for i := range got {
					if got[i] != want.fills[i] {
						t.Fatalf("fill %d = %+v, want %+v", i, got[i], want.fills[i])
					}
				}
				if len(cancels) != len(want.stpCancels) {
					t.Fatalf("stp cancels %v, want %v", cancels, want.stpCancels)
				}
				for i := range cancels {
					if cancels[i] != want.stpCancels[i] {
						t.Fatalf("stp cancel %d = %d, want %d", i, cancels[i], want.stpCancels[i])
					}
				}
				var restedQty int64
				if o := b.Lookup(100); o != nil {
					restedQty = o.Qty
				}
				if restedQty != want.restedQty {
					t.Fatalf("incoming residual %d, want %d", restedQty, want.restedQty)
				}
				for _, id := range want.restingIDs {
					if b.Lookup(id) == nil {
						t.Fatalf("order %d missing from book", id)
					}
				}
				if got, wantN := b.RestingOrders(), len(want.restingIDs); got != wantN {
					t.Fatalf("%d orders resting, want %d", got, wantN)
				}
				if err := b.Validate(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func stpName(s STP) string {
	switch s {
	case STPCancelResting:
		return "cancel-resting"
	case STPCancelIncoming:
		return "cancel-incoming"
	default:
		return "allow"
	}
}

// TestSelfTradePreventionMarketAndAmend covers the two non-limit entry
// points: a market order under STP, and an amend whose re-entry
// self-crosses.
func TestSelfTradePreventionMarketAndAmend(t *testing.T) {
	t.Run("market cancel-resting sweeps through own order", func(t *testing.T) {
		b := New()
		b.Limit(1, Ask, 100, 5, Owner{Name: "alice"}, 1, nil)
		b.Limit(2, Ask, 101, 5, Owner{Name: "bob"}, 2, nil)
		var got []fill
		var cancels []int64
		filled, ok := b.MarketSTP(Bid, 8, "alice", STPCancelResting,
			func(o *Order) { cancels = append(cancels, o.ID) }, collect(&got))
		if !ok || filled != 5 {
			t.Fatalf("filled %d ok=%v, want 5 from bob only", filled, ok)
		}
		if len(cancels) != 1 || cancels[0] != 1 {
			t.Fatalf("stp cancels %v, want [1]", cancels)
		}
		if err := b.Validate(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("market cancel-incoming stops at own order", func(t *testing.T) {
		b := New()
		b.Limit(1, Ask, 100, 5, Owner{Name: "alice"}, 1, nil)
		b.Limit(2, Ask, 101, 5, Owner{Name: "bob"}, 2, nil)
		filled, ok := b.MarketSTP(Bid, 8, "alice", STPCancelIncoming, nil, nil)
		if !ok || filled != 0 {
			t.Fatalf("filled %d, want 0 (stopped at own best ask)", filled)
		}
		if b.RestingOrders() != 2 {
			t.Fatalf("resting %d, want both asks untouched", b.RestingOrders())
		}
	})
	t.Run("amend re-entry self-crosses", func(t *testing.T) {
		b := New()
		b.Limit(1, Bid, 99, 5, Owner{Name: "alice"}, 1, nil)
		b.Limit(2, Ask, 101, 5, Owner{Name: "alice"}, 2, nil)
		// Reprice alice's ask through her own bid under cancel-incoming:
		// the re-entering order dies at the self-cross; the bid stays.
		var got []fill
		filled, ok := b.AmendSTP(2, 99, 5, 3, STPCancelIncoming, nil, collect(&got))
		if !ok || filled != 0 || len(got) != 0 {
			t.Fatalf("amend self-cross filled %d (%+v)", filled, got)
		}
		if b.Lookup(2) != nil {
			t.Fatal("amended order still resting after cancel-incoming self-cross")
		}
		if b.Lookup(1) == nil {
			t.Fatal("counterparty-free bid vanished")
		}
		if err := b.Validate(); err != nil {
			t.Fatal(err)
		}
	})
}
