// Package units implements the runtime state of DEFCon processing-unit
// instances: input/output labels, privilege sets, the per-instance
// delivery queue and the (optional) isolation context.
//
// A unit instance is the paper's "unit" (§3.1.3–§3.1.4) plus, for
// managed subscriptions, the per-contamination instances DEFCon creates
// on the unit's behalf (§5, subscribeManaged). The label and privilege
// bookkeeping lives here; the Table 1 API semantics live in the core
// package, which drives instances.
package units

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/events"
	"repro/internal/isolation"
	"repro/internal/labels"
	"repro/internal/priv"
)

// ErrTerminated is returned by blocking operations once the system is
// shut down or the instance retired.
var ErrTerminated = errors.New("units: unit terminated")

// Delivery is one event offered to an instance.
type Delivery struct {
	Event *events.Event
	Sub   uint64 // matching subscription
	Gen   uint64 // event generation at delivery time
}

// Instance is one executing unit instance.
type Instance struct {
	id   uint64
	name string

	// in/out are the instance's input and output labels (§3.1.4). They
	// are read on every match (hot path) and written rarely, so they
	// live behind atomic pointers.
	in  atomic.Pointer[labels.Label]
	out atomic.Pointer[labels.Label]

	// privMu guards owned. Privilege reads happen on API calls of this
	// instance's own goroutine; mutation also happens via privilege-
	// carrying parts read during delivery processing.
	privMu sync.Mutex
	owned  *priv.Owned

	// Iso is the instance's isolation context; nil outside the
	// labels+freeze+isolation mode.
	Iso *isolation.Isolate

	queue    chan Delivery
	done     <-chan struct{}
	retired  atomic.Bool
	enqueued atomic.Uint64

	// creation snapshot, used to detect and undo contamination drift in
	// pooled managed instances.
	createdIn  labels.Label
	createdOut labels.Label
	createdOwn *priv.Owned

	// state is scratch storage for managed handlers, wiped when the
	// instance is re-virgined.
	stateMu sync.Mutex
	state   map[string]any
}

// Config assembles an instance.
type Config struct {
	ID       uint64
	Name     string
	In, Out  labels.Label
	Owned    *priv.Owned
	Iso      *isolation.Isolate
	QueueCap int
	Done     <-chan struct{}
}

// New creates an instance. A nil Owned starts with no privileges.
func New(cfg Config) *Instance {
	if cfg.Owned == nil {
		cfg.Owned = &priv.Owned{}
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 1024
	}
	inst := &Instance{
		id:         cfg.ID,
		name:       cfg.Name,
		owned:      cfg.Owned,
		Iso:        cfg.Iso,
		queue:      make(chan Delivery, cfg.QueueCap),
		done:       cfg.Done,
		createdIn:  cfg.In,
		createdOut: cfg.Out,
		createdOwn: cfg.Owned.Clone(),
	}
	in, out := cfg.In, cfg.Out
	inst.in.Store(&in)
	inst.out.Store(&out)
	return inst
}

// ReceiverID implements dispatch.Receiver.
func (i *Instance) ReceiverID() uint64 { return i.id }

// Name returns the instance's diagnostic name.
func (i *Instance) Name() string { return i.name }

// InputLabel returns the current input label (= contamination, §3.1.4).
func (i *Instance) InputLabel() labels.Label { return *i.in.Load() }

// OutputLabel returns the current output label.
func (i *Instance) OutputLabel() labels.Label { return *i.out.Load() }

// SetInputLabel replaces the input label. Privilege checking is the
// caller's (core API's) duty.
func (i *Instance) SetInputLabel(l labels.Label) { i.in.Store(&l) }

// SetOutputLabel replaces the output label.
func (i *Instance) SetOutputLabel(l labels.Label) { i.out.Store(&l) }

// WithPrivileges runs fn with exclusive access to the instance's
// privilege sets.
func (i *Instance) WithPrivileges(fn func(o *priv.Owned)) {
	i.privMu.Lock()
	defer i.privMu.Unlock()
	fn(i.owned)
}

// HasPrivilege reports whether the instance holds right r over tag t.
func (i *Instance) HasPrivilege(t priv.Grant) bool {
	i.privMu.Lock()
	defer i.privMu.Unlock()
	return i.owned.Has(t.Tag, t.Right)
}

// Enqueue implements dispatch.Receiver: with block set it waits for
// queue space (natural backpressure towards the publisher); without it
// a full queue drops the delivery. It fails once the instance or
// system is shut down.
func (i *Instance) Enqueue(e *events.Event, sub uint64, block bool) bool {
	if i.retired.Load() {
		return false
	}
	d := Delivery{Event: e, Sub: sub, Gen: e.Generation()}
	if !block {
		select {
		case i.queue <- d:
			i.enqueued.Add(1)
			return true
		default:
			return false
		}
	}
	select {
	case i.queue <- d:
		i.enqueued.Add(1)
		return true
	case <-i.done:
		return false
	}
}

// Next blocks until a delivery arrives, the system shuts down, or the
// instance is retired.
func (i *Instance) Next() (Delivery, error) {
	select {
	case d := <-i.queue:
		return d, nil
	case <-i.done:
		// Drain-first: prefer a queued delivery over shutdown so close
		// is not racy for already-delivered events.
		select {
		case d := <-i.queue:
			return d, nil
		default:
			return Delivery{}, ErrTerminated
		}
	}
}

// TryNext is the non-blocking variant of Next.
func (i *Instance) TryNext() (Delivery, bool) {
	select {
	case d := <-i.queue:
		return d, true
	default:
		return Delivery{}, false
	}
}

// QueueLen reports the number of waiting deliveries.
func (i *Instance) QueueLen() int { return len(i.queue) }

// Enqueued reports the total number of deliveries accepted.
func (i *Instance) Enqueued() uint64 { return i.enqueued.Load() }

// Retire marks the instance dead; subsequent Enqueues fail.
func (i *Instance) Retire() { i.retired.Store(true) }

// Retired reports whether the instance was retired.
func (i *Instance) Retired() bool { return i.retired.Load() }

// State returns the instance's scratch state map, creating it on first
// use. Managed handlers persist state across deliveries here; the map
// is wiped by Reset.
func (i *Instance) State() map[string]any {
	i.stateMu.Lock()
	defer i.stateMu.Unlock()
	if i.state == nil {
		i.state = make(map[string]any)
	}
	return i.state
}

// Drifted reports whether the instance's labels or privileges have
// changed since creation — i.e. whether processing contaminated it
// beyond its pooled identity.
func (i *Instance) Drifted() bool {
	if !i.InputLabel().Equal(i.createdIn) || !i.OutputLabel().Equal(i.createdOut) {
		return true
	}
	drifted := false
	i.WithPrivileges(func(o *priv.Owned) {
		for r := priv.Plus; r <= priv.MinusAuth; r++ {
			if !o.Set(r).Equal(i.createdOwn.Set(r)) {
				drifted = true
				return
			}
		}
	})
	return drifted
}

// Reset re-virgins a pooled managed instance: labels, privileges and
// scratch state return to their creation snapshot. Combined with
// Drifted it gives the paper's "creates and reuses separate unit
// instances with contaminations appropriate for the processing of
// incoming events": a contaminated instance is indistinguishable from
// a fresh one after Reset because no state survives.
func (i *Instance) Reset() {
	i.SetInputLabel(i.createdIn)
	i.SetOutputLabel(i.createdOut)
	i.privMu.Lock()
	i.owned = i.createdOwn.Clone()
	i.privMu.Unlock()
	i.stateMu.Lock()
	i.state = nil
	i.stateMu.Unlock()
}
