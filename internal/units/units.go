// Package units implements the runtime state of DEFCon processing-unit
// instances: input/output labels, privilege sets, the per-instance
// delivery queue and the (optional) isolation context.
//
// A unit instance is the paper's "unit" (§3.1.3–§3.1.4) plus, for
// managed subscriptions, the per-contamination instances DEFCon creates
// on the unit's behalf (§5, subscribeManaged). The label and privilege
// bookkeeping lives here; the Table 1 API semantics live in the core
// package, which drives instances.
package units

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/events"
	"repro/internal/isolation"
	"repro/internal/labels"
	"repro/internal/priv"
)

// ErrTerminated is returned by blocking operations once the system is
// shut down or the instance retired.
var ErrTerminated = errors.New("units: unit terminated")

// Delivery is one event offered to an instance.
type Delivery struct {
	Event *events.Event
	Sub   uint64 // matching subscription
	Gen   uint64 // event generation at delivery time
}

// Instance is one executing unit instance.
type Instance struct {
	id   uint64
	name string

	// in/out are the instance's input and output labels (§3.1.4). They
	// are read on every match (hot path) and written rarely, so they
	// live behind atomic pointers.
	in  atomic.Pointer[labels.Label]
	out atomic.Pointer[labels.Label]

	// privMu guards owned. Privilege reads happen on API calls of this
	// instance's own goroutine; mutation also happens via privilege-
	// carrying parts read during delivery processing.
	privMu sync.Mutex
	owned  *priv.Owned

	// Iso is the instance's isolation context; nil outside the
	// labels+freeze+isolation mode.
	Iso *isolation.Isolate

	// The delivery queue is a mutex-guarded ring buffer rather than a
	// channel: a batched enqueue (EnqueueBatch) appends a whole run of
	// deliveries under one lock acquisition, where a channel would pay
	// per-send. Blocking waits park on the notEmpty/space token
	// channels so they remain selectable against done (shutdown).
	qmu    sync.Mutex
	buf    []Delivery
	qhead  int
	qcount int
	// notEmpty and space carry at most one wake-up token each;
	// senders never block (see signal).
	notEmpty chan struct{}
	space    chan struct{}

	done     <-chan struct{}
	retired  atomic.Bool
	enqueued atomic.Uint64

	// creation snapshot, used to detect and undo contamination drift in
	// pooled managed instances.
	createdIn  labels.Label
	createdOut labels.Label
	createdOwn *priv.Owned

	// state is scratch storage for managed handlers, wiped when the
	// instance is re-virgined.
	stateMu sync.Mutex
	state   map[string]any
}

// Config assembles an instance.
type Config struct {
	ID       uint64
	Name     string
	In, Out  labels.Label
	Owned    *priv.Owned
	Iso      *isolation.Isolate
	QueueCap int
	Done     <-chan struct{}
}

// New creates an instance. A nil Owned starts with no privileges.
func New(cfg Config) *Instance {
	if cfg.Owned == nil {
		cfg.Owned = &priv.Owned{}
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 1024
	}
	inst := &Instance{
		id:         cfg.ID,
		name:       cfg.Name,
		owned:      cfg.Owned,
		Iso:        cfg.Iso,
		buf:        make([]Delivery, cfg.QueueCap),
		notEmpty:   make(chan struct{}, 1),
		space:      make(chan struct{}, 1),
		done:       cfg.Done,
		createdIn:  cfg.In,
		createdOut: cfg.Out,
		createdOwn: cfg.Owned.Clone(),
	}
	in, out := cfg.In, cfg.Out
	inst.in.Store(&in)
	inst.out.Store(&out)
	return inst
}

// ReceiverID implements dispatch.Receiver.
func (i *Instance) ReceiverID() uint64 { return i.id }

// Name returns the instance's diagnostic name.
func (i *Instance) Name() string { return i.name }

// InputLabel returns the current input label (= contamination, §3.1.4).
func (i *Instance) InputLabel() labels.Label { return *i.in.Load() }

// OutputLabel returns the current output label.
func (i *Instance) OutputLabel() labels.Label { return *i.out.Load() }

// SetInputLabel replaces the input label. Privilege checking is the
// caller's (core API's) duty.
func (i *Instance) SetInputLabel(l labels.Label) { i.in.Store(&l) }

// SetOutputLabel replaces the output label.
func (i *Instance) SetOutputLabel(l labels.Label) { i.out.Store(&l) }

// WithPrivileges runs fn with exclusive access to the instance's
// privilege sets.
func (i *Instance) WithPrivileges(fn func(o *priv.Owned)) {
	i.privMu.Lock()
	defer i.privMu.Unlock()
	fn(i.owned)
}

// HasPrivilege reports whether the instance holds right r over tag t.
func (i *Instance) HasPrivilege(t priv.Grant) bool {
	i.privMu.Lock()
	defer i.privMu.Unlock()
	return i.owned.Has(t.Tag, t.Right)
}

// signal deposits a wake-up token without blocking; a token already
// present is enough.
func signal(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// pushLocked appends to the ring; the caller holds qmu and has
// checked capacity.
func (i *Instance) pushLocked(d Delivery) {
	i.buf[(i.qhead+i.qcount)%len(i.buf)] = d
	i.qcount++
}

// popLocked removes the oldest delivery; the caller holds qmu and has
// checked qcount > 0.
func (i *Instance) popLocked() Delivery {
	d := i.buf[i.qhead]
	i.buf[i.qhead] = Delivery{} // drop the event reference
	i.qhead = (i.qhead + 1) % len(i.buf)
	i.qcount--
	return d
}

// Enqueue implements dispatch.Receiver: with block set it waits for
// queue space (natural backpressure towards the publisher); without it
// a full queue drops the delivery. It fails once the instance or
// system is shut down.
func (i *Instance) Enqueue(e *events.Event, sub uint64, block bool) bool {
	if i.retired.Load() {
		return false
	}
	d := Delivery{Event: e, Sub: sub, Gen: e.Generation()}
	for {
		i.qmu.Lock()
		if i.qcount < len(i.buf) {
			i.pushLocked(d)
			i.qmu.Unlock()
			signal(i.notEmpty)
			i.enqueued.Add(1)
			return true
		}
		i.qmu.Unlock()
		if !block {
			return false
		}
		select {
		case <-i.space:
		case <-i.done:
			return false
		}
	}
}

// EnqueueBatch implements dispatch.Receiver's batched path: the whole
// run is appended under a single lock acquisition with one consumer
// wake-up, so a receiver matched by k events of a publish batch pays
// one queue synchronisation instead of k. Accepted deliveries are a
// prefix of ds; the refused remainder is recycled per the Receiver
// contract. With block set the call waits for space, aborting on
// shutdown.
func (i *Instance) EnqueueBatch(ds []events.QueuedDelivery, block bool) int {
	if len(ds) == 0 {
		return 0
	}
	accepted := 0
	if !i.retired.Load() {
		for {
			i.qmu.Lock()
			pushed := 0
			for accepted < len(ds) && i.qcount < len(i.buf) {
				q := ds[accepted]
				i.pushLocked(Delivery{Event: q.Event, Sub: q.Sub, Gen: q.Event.Generation()})
				accepted++
				pushed++
			}
			i.qmu.Unlock()
			if pushed > 0 {
				signal(i.notEmpty)
				i.enqueued.Add(uint64(pushed))
			}
			if accepted == len(ds) {
				return accepted
			}
			if !block {
				break
			}
			select {
			case <-i.space:
			case <-i.done:
				// Shutdown while blocked: drop the remainder.
				goto drop
			}
		}
	}
drop:
	for _, q := range ds[accepted:] {
		q.Event.Recycle() // no-op outside the clone pool
	}
	return accepted
}

// Next blocks until a delivery arrives, the system shuts down, or the
// instance is retired.
func (i *Instance) Next() (Delivery, error) {
	for {
		if d, ok := i.TryNext(); ok {
			return d, nil
		}
		select {
		case <-i.notEmpty:
		case <-i.done:
			// Drain-first: prefer a queued delivery over shutdown so
			// close is not racy for already-delivered events.
			if d, ok := i.TryNext(); ok {
				return d, nil
			}
			return Delivery{}, ErrTerminated
		}
	}
}

// NextBatch blocks until at least one delivery arrives, then drains
// opportunistically: up to len(buf) queued deliveries are popped under
// a single lock acquisition. Consumers that pay a fixed per-API-call
// cost (the §4 interceptor tax) use it so a burst of k deliveries
// costs one queue synchronisation and one amortised tax traversal
// instead of k. Returns ErrTerminated like Next; an empty buffer is a
// caller bug and errors rather than silently busy-looping.
func (i *Instance) NextBatch(buf []Delivery) (int, error) {
	if len(buf) == 0 {
		return 0, errors.New("units: NextBatch with empty buffer")
	}
	for {
		if n := i.TryNextBatch(buf); n > 0 {
			return n, nil
		}
		select {
		case <-i.notEmpty:
		case <-i.done:
			// Drain-first, as in Next.
			if n := i.TryNextBatch(buf); n > 0 {
				return n, nil
			}
			return 0, ErrTerminated
		}
	}
}

// TryNextBatch pops up to len(buf) waiting deliveries under one lock
// acquisition; it is the non-blocking batch drain behind NextBatch.
func (i *Instance) TryNextBatch(buf []Delivery) int {
	if len(buf) == 0 {
		return 0
	}
	i.qmu.Lock()
	n := 0
	for n < len(buf) && i.qcount > 0 {
		buf[n] = i.popLocked()
		n++
	}
	remaining := i.qcount
	i.qmu.Unlock()
	if n > 0 {
		signal(i.space)
	}
	if remaining > 0 {
		signal(i.notEmpty)
	}
	return n
}

// TryNext is the non-blocking variant of Next.
func (i *Instance) TryNext() (Delivery, bool) {
	i.qmu.Lock()
	if i.qcount == 0 {
		i.qmu.Unlock()
		return Delivery{}, false
	}
	d := i.popLocked()
	remaining := i.qcount
	i.qmu.Unlock()
	signal(i.space)
	if remaining > 0 {
		// Pass the baton: further consumers (or a pending token lost
		// to the capacity-1 channel) must still see the backlog.
		signal(i.notEmpty)
	}
	return d, true
}

// QueueLen reports the number of waiting deliveries.
func (i *Instance) QueueLen() int {
	i.qmu.Lock()
	defer i.qmu.Unlock()
	return i.qcount
}

// QueueCap reports the queue's capacity.
func (i *Instance) QueueCap() int { return len(i.buf) }

// Enqueued reports the total number of deliveries accepted.
func (i *Instance) Enqueued() uint64 { return i.enqueued.Load() }

// Retire marks the instance dead; subsequent Enqueues fail.
func (i *Instance) Retire() { i.retired.Store(true) }

// Retired reports whether the instance was retired.
func (i *Instance) Retired() bool { return i.retired.Load() }

// State returns the instance's scratch state map, creating it on first
// use. Managed handlers persist state across deliveries here; the map
// is wiped by Reset.
func (i *Instance) State() map[string]any {
	i.stateMu.Lock()
	defer i.stateMu.Unlock()
	if i.state == nil {
		i.state = make(map[string]any)
	}
	return i.state
}

// Drifted reports whether the instance's labels or privileges have
// changed since creation — i.e. whether processing contaminated it
// beyond its pooled identity.
func (i *Instance) Drifted() bool {
	if !i.InputLabel().Equal(i.createdIn) || !i.OutputLabel().Equal(i.createdOut) {
		return true
	}
	drifted := false
	i.WithPrivileges(func(o *priv.Owned) {
		drifted = !o.SameAs(i.createdOwn)
	})
	return drifted
}

// Reset re-virgins a pooled managed instance: labels, privileges and
// scratch state return to their creation snapshot. Combined with
// Drifted it gives the paper's "creates and reuses separate unit
// instances with contaminations appropriate for the processing of
// incoming events": a contaminated instance is indistinguishable from
// a fresh one after Reset because no state survives.
//
// The isolation context (Iso) is deliberately not reset: its replica
// slots are per-isolate copies of JDK statics belonging to the unit's
// code identity, not contamination absorbed from event data, and the
// pool is private to one owner unit — so replicas persisting across
// re-virgining leak nothing between principals while keeping the
// recycled instance on the memoized warm interceptor path.
func (i *Instance) Reset() {
	i.SetInputLabel(i.createdIn)
	i.SetOutputLabel(i.createdOut)
	i.privMu.Lock()
	i.owned = i.createdOwn.Clone()
	i.privMu.Unlock()
	i.stateMu.Lock()
	i.state = nil
	i.stateMu.Unlock()
}
