package units

import (
	"errors"
	"testing"
	"time"

	"repro/internal/events"
	"repro/internal/labels"
	"repro/internal/priv"
	"repro/internal/tags"
)

func testInstance(t *testing.T, done <-chan struct{}) *Instance {
	t.Helper()
	return New(Config{ID: 1, Name: "u", Done: done, QueueCap: 4})
}

func TestLabelsReadWrite(t *testing.T) {
	store := tags.NewStore(1)
	tg := store.Create("t", "u")
	in := labels.Label{S: labels.NewSet(tg)}
	i := New(Config{ID: 1, Name: "u", In: in})
	if !i.InputLabel().Equal(in) {
		t.Fatal("InputLabel mismatch")
	}
	if !i.OutputLabel().IsPublic() {
		t.Fatal("OutputLabel not public by default")
	}
	out := labels.Label{I: labels.NewSet(tg)}
	i.SetOutputLabel(out)
	if !i.OutputLabel().Equal(out) {
		t.Fatal("SetOutputLabel lost")
	}
}

func TestEnqueueAndNext(t *testing.T) {
	done := make(chan struct{})
	defer close(done)
	i := testInstance(t, done)
	e := events.New(7)
	if !i.Enqueue(e, 3, true) {
		t.Fatal("Enqueue failed")
	}
	d, err := i.Next()
	if err != nil {
		t.Fatal(err)
	}
	if d.Event != e || d.Sub != 3 {
		t.Fatalf("delivery = %+v", d)
	}
	if i.Enqueued() != 1 {
		t.Fatal("Enqueued counter wrong")
	}
}

func TestNextUnblocksOnShutdown(t *testing.T) {
	done := make(chan struct{})
	i := testInstance(t, done)
	errc := make(chan error, 1)
	go func() {
		_, err := i.Next()
		errc <- err
	}()
	close(done)
	select {
	case err := <-errc:
		if !errors.Is(err, ErrTerminated) {
			t.Fatalf("Next after shutdown = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not unblock on shutdown")
	}
}

func TestNextDrainsQueueBeforeShutdown(t *testing.T) {
	done := make(chan struct{})
	i := testInstance(t, done)
	e := events.New(1)
	i.Enqueue(e, 1, true)
	close(done)
	// The queued delivery should still be preferred over termination.
	d, err := i.Next()
	if err != nil || d.Event != e {
		t.Fatalf("drain-first failed: %v %v", d, err)
	}
	if _, err := i.Next(); !errors.Is(err, ErrTerminated) {
		t.Fatal("empty queue after shutdown did not terminate")
	}
}

func TestEnqueueFailsWhenRetired(t *testing.T) {
	done := make(chan struct{})
	defer close(done)
	i := testInstance(t, done)
	i.Retire()
	if i.Enqueue(events.New(1), 1, true) {
		t.Fatal("Enqueue succeeded on retired instance")
	}
	if !i.Retired() {
		t.Fatal("Retired not reported")
	}
}

func TestEnqueueFailsOnShutdownWhenFull(t *testing.T) {
	done := make(chan struct{})
	i := New(Config{ID: 1, Name: "u", Done: done, QueueCap: 1})
	if !i.Enqueue(events.New(1), 1, true) {
		t.Fatal("first enqueue failed")
	}
	// Queue full; enqueue should block until shutdown, then fail.
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(done)
	}()
	if i.Enqueue(events.New(2), 1, true) {
		t.Fatal("enqueue succeeded past capacity on shutdown")
	}
}

func TestTryNext(t *testing.T) {
	done := make(chan struct{})
	defer close(done)
	i := testInstance(t, done)
	if _, ok := i.TryNext(); ok {
		t.Fatal("TryNext on empty queue returned delivery")
	}
	i.Enqueue(events.New(1), 1, true)
	if i.QueueLen() != 1 {
		t.Fatal("QueueLen wrong")
	}
	if _, ok := i.TryNext(); !ok {
		t.Fatal("TryNext missed queued delivery")
	}
}

func TestNextBatchDrainsInOrder(t *testing.T) {
	done := make(chan struct{})
	defer close(done)
	i := testInstance(t, done) // QueueCap 4
	evs := []*events.Event{events.New(1), events.New(2), events.New(3)}
	for k, e := range evs {
		if !i.Enqueue(e, uint64(k), true) {
			t.Fatal("Enqueue failed")
		}
	}
	buf := make([]Delivery, 8)
	n, err := i.NextBatch(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("drained %d, want 3", n)
	}
	for k := 0; k < n; k++ {
		if buf[k].Event != evs[k] || buf[k].Sub != uint64(k) {
			t.Fatalf("delivery %d = %+v", k, buf[k])
		}
	}
	if i.QueueLen() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestNextBatchBoundedByBuffer(t *testing.T) {
	done := make(chan struct{})
	defer close(done)
	i := testInstance(t, done)
	for k := 0; k < 4; k++ {
		if !i.Enqueue(events.New(uint64(k+1)), 0, true) {
			t.Fatal("Enqueue failed")
		}
	}
	buf := make([]Delivery, 2)
	if n, err := i.NextBatch(buf); err != nil || n != 2 {
		t.Fatalf("first drain = %d, %v", n, err)
	}
	if i.QueueLen() != 2 {
		t.Fatalf("QueueLen = %d, want 2", i.QueueLen())
	}
	if n := i.TryNextBatch(buf); n != 2 {
		t.Fatalf("second drain = %d, want 2", n)
	}
	if n := i.TryNextBatch(buf); n != 0 {
		t.Fatalf("empty drain = %d, want 0", n)
	}
	// A zero-length buffer is a caller bug: error, never a silent
	// (0, nil) busy-loop.
	if _, err := i.NextBatch(nil); err == nil {
		t.Fatal("NextBatch(nil) succeeded")
	}
}

func TestNextBatchFreesSpaceForBlockedSender(t *testing.T) {
	done := make(chan struct{})
	defer close(done)
	i := testInstance(t, done) // QueueCap 4
	for k := 0; k < 4; k++ {
		i.Enqueue(events.New(uint64(k+1)), 0, true)
	}
	sent := make(chan struct{})
	go func() {
		i.Enqueue(events.New(99), 0, true) // blocks on the full queue
		close(sent)
	}()
	buf := make([]Delivery, 4)
	if n, err := i.NextBatch(buf); err != nil || n != 4 {
		t.Fatalf("drain = %d, %v", n, err)
	}
	select {
	case <-sent:
	case <-time.After(2 * time.Second):
		t.Fatal("batch drain did not wake the blocked sender")
	}
}

func TestNextBatchUnblocksOnShutdown(t *testing.T) {
	done := make(chan struct{})
	i := testInstance(t, done)
	errc := make(chan error, 1)
	go func() {
		_, err := i.NextBatch(make([]Delivery, 4))
		errc <- err
	}()
	close(done)
	select {
	case err := <-errc:
		if !errors.Is(err, ErrTerminated) {
			t.Fatalf("NextBatch = %v, want ErrTerminated", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("NextBatch did not unblock on shutdown")
	}
}

func TestNextBatchDrainsBeforeShutdown(t *testing.T) {
	done := make(chan struct{})
	i := testInstance(t, done)
	i.Enqueue(events.New(1), 0, true)
	i.Enqueue(events.New(2), 0, true)
	close(done)
	buf := make([]Delivery, 8)
	n, err := i.NextBatch(buf)
	if err != nil || n != 2 {
		t.Fatalf("drain after shutdown = %d, %v; want 2 queued deliveries first", n, err)
	}
	if _, err := i.NextBatch(buf); !errors.Is(err, ErrTerminated) {
		t.Fatalf("empty NextBatch after shutdown = %v", err)
	}
}

func TestPrivilegesAccess(t *testing.T) {
	store := tags.NewStore(2)
	tg := store.Create("t", "u")
	i := New(Config{ID: 1, Name: "u"})
	if i.HasPrivilege(priv.Grant{Tag: tg, Right: priv.Plus}) {
		t.Fatal("fresh instance has privilege")
	}
	i.WithPrivileges(func(o *priv.Owned) { o.Grant(tg, priv.Plus) })
	if !i.HasPrivilege(priv.Grant{Tag: tg, Right: priv.Plus}) {
		t.Fatal("granted privilege not visible")
	}
}

func TestDriftAndReset(t *testing.T) {
	store := tags.NewStore(3)
	tg := store.Create("t", "u")
	base := labels.Label{S: labels.NewSet(tg)}
	i := New(Config{ID: 1, Name: "u", In: base, Out: base})
	if i.Drifted() {
		t.Fatal("fresh instance drifted")
	}

	// Label drift.
	other := store.Create("o", "u")
	i.SetInputLabel(labels.Label{S: labels.NewSet(tg, other)})
	if !i.Drifted() {
		t.Fatal("label change not detected as drift")
	}
	i.Reset()
	if i.Drifted() || !i.InputLabel().Equal(base) {
		t.Fatal("Reset did not restore labels")
	}

	// Privilege drift.
	i.WithPrivileges(func(o *priv.Owned) { o.Grant(other, priv.Minus) })
	if !i.Drifted() {
		t.Fatal("privilege gain not detected as drift")
	}
	i.Reset()
	if i.HasPrivilege(priv.Grant{Tag: other, Right: priv.Minus}) {
		t.Fatal("Reset did not drop acquired privileges")
	}

	// State wipe.
	i.State()["book"] = 42
	i.Reset()
	if len(i.State()) != 0 {
		t.Fatal("Reset did not wipe state")
	}
}

func TestResetPreservesCreationPrivileges(t *testing.T) {
	store := tags.NewStore(4)
	tg := store.Create("t", "u")
	owned := &priv.Owned{}
	owned.Grant(tg, priv.Minus)
	i := New(Config{ID: 1, Name: "u", Owned: owned})
	i.Reset()
	if !i.HasPrivilege(priv.Grant{Tag: tg, Right: priv.Minus}) {
		t.Fatal("Reset dropped creation privileges")
	}
}

func TestDefaultQueueCap(t *testing.T) {
	i := New(Config{ID: 1, Name: "u"})
	if i.QueueCap() != 1024 {
		t.Fatalf("default queue cap = %d", i.QueueCap())
	}
	if i.Name() != "u" || i.ReceiverID() != 1 {
		t.Fatal("identity accessors wrong")
	}
}
