// Package labels implements DEFC security labels and the can-flow-to
// lattice (paper §3.1.1).
//
// A label is a pair (S, I) of tag sets: S holds confidentiality
// ("sticky") tags and I holds integrity ("fragile") tags. Information
// with label La may flow to a holder with label Lb iff
//
//	Sa ⊆ Sb  and  Ia ⊇ Ib
//
// Confidentiality tags accumulate as data is combined; integrity tags
// are destroyed when data is mixed with data lacking them, unless a
// privilege is exercised.
package labels

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/tags"
)

// Set is an immutable, ordered set of tags. The zero value is the
// empty set and is ready to use. All operations return new sets and
// never mutate their receivers, so Sets may be shared freely between
// goroutines without synchronisation.
//
// Representation: a single pointer to an immutable header holding a
// sorted slice without duplicates plus a cached 256-bit bitmask
// (setMask, four words) over the first tags.InternWidth interned tag
// indexes. DEFC labels are small (a handful of tags per part), so the
// sorted slice beats a map on footprint and iteration cost, and the
// bitmask turns the subset/superset tests on the dispatch hot path
// into a few unrolled word operations. Copying a Set copies one word.
type Set struct {
	h *setHeader
}

// setHeader is the shared immutable backing of a non-empty Set. Only
// the lazily computed key is mutated, under keyOnce.
type setHeader struct {
	elems []tags.Tag // sorted ascending by Tag.Compare, no duplicates
	// mask has bit i set iff the set contains the tag with intern
	// index i < tags.InternWidth, as observed at construction time.
	mask setMask
	// exact records that every element had an intern index below
	// tags.InternWidth at construction time, i.e. mask is a complete
	// encoding of the membership. Fast paths require exactness of all
	// participating sets: intern indexes are assigned once and never
	// change, so two exact masks are directly comparable.
	exact bool

	keyOnce sync.Once
	key     string
}

// EmptySet is the canonical empty tag set.
var EmptySet = Set{}

// makeSet wraps a sorted, deduplicated element slice, computing the
// fast-path mask. The caller must not retain elems.
func makeSet(elems []tags.Tag) Set {
	if len(elems) == 0 {
		return Set{}
	}
	h := &setHeader{elems: elems, exact: true}
	for _, t := range elems {
		idx, ok := tags.InternIndex(t)
		if ok && idx < tags.InternWidth {
			h.mask.set(idx)
		} else {
			h.exact = false
		}
	}
	return Set{h: h}
}

// mergedSet wraps the result of a set operation over a and b. When
// both inputs are exact, every result element carries a fast-path
// index, so the pre-combined mask is authoritative. Otherwise the
// result is marked inexact WITHOUT re-deriving a mask: an inexact
// set's mask is never consulted, and re-probing the intern table for
// every element (as a makeSet fallback would) turns each merge over a
// spilled set into O(n) table lookups — the dominant cost of the
// whole trading run before this was removed, because per-order tags
// spill past the fast-path width by design and can never become
// exact again. Inexactness therefore propagates through merges; only
// construction from scratch (NewSet) re-examines intern indexes.
func mergedSet(elems []tags.Tag, a, b Set, mask setMask) Set {
	if len(elems) == 0 {
		return Set{}
	}
	if a.exact() && b.exact() {
		return Set{h: &setHeader{elems: elems, mask: mask, exact: true}}
	}
	return Set{h: &setHeader{elems: elems}}
}

// mask returns the fast-path bitmask (zero for the empty set).
func (s Set) mask() setMask {
	if s.h == nil {
		return setMask{}
	}
	return s.h.mask
}

// exact reports whether the mask completely encodes the membership.
func (s Set) exact() bool {
	return s.h == nil || s.h.exact
}

// NewSet builds a set from the given tags, deduplicating as needed.
func NewSet(ts ...tags.Tag) Set {
	if len(ts) == 0 {
		return Set{}
	}
	elems := make([]tags.Tag, len(ts))
	copy(elems, ts)
	sort.Slice(elems, func(i, j int) bool { return elems[i].Less(elems[j]) })
	// Deduplicate in place.
	out := elems[:1]
	for _, t := range elems[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return makeSet(out)
}

// Len returns the number of tags in the set.
func (s Set) Len() int {
	if s.h == nil {
		return 0
	}
	return len(s.h.elems)
}

// IsEmpty reports whether the set has no tags.
func (s Set) IsEmpty() bool { return s.h == nil || len(s.h.elems) == 0 }

// items returns the backing slice (nil for the empty set). Callers
// must not mutate it.
func (s Set) items() []tags.Tag {
	if s.h == nil {
		return nil
	}
	return s.h.elems
}

// Has reports whether t is a member of s.
func (s Set) Has(t tags.Tag) bool {
	if s.h == nil {
		return false
	}
	if s.h.exact {
		// Exact sets contain only tags with fast-path indexes; a tag
		// without one cannot be a member, and index↔identity is a
		// bijection, so the bit test is authoritative.
		if idx, ok := tags.InternIndex(t); ok && idx < tags.InternWidth {
			return s.h.mask.has(idx)
		}
		return false
	}
	elems := s.h.elems
	i := sort.Search(len(elems), func(i int) bool {
		return !elems[i].Less(t)
	})
	return i < len(elems) && elems[i] == t
}

// Slice returns the members in ascending order. The returned slice is
// a copy and may be modified by the caller.
func (s Set) Slice() []tags.Tag {
	elems := s.items()
	out := make([]tags.Tag, len(elems))
	copy(out, elems)
	return out
}

// Add returns s ∪ {ts...}.
func (s Set) Add(ts ...tags.Tag) Set {
	if len(ts) == 0 {
		return s
	}
	return s.Union(NewSet(ts...))
}

// Remove returns s \ {ts...}.
func (s Set) Remove(ts ...tags.Tag) Set {
	if len(ts) == 0 || s.IsEmpty() {
		return s
	}
	return s.Subtract(NewSet(ts...))
}

// Union returns s ∪ o using a linear merge.
func (s Set) Union(o Set) Set {
	if o.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return o
	}
	// Containment short-circuits: labels converge quickly under
	// repeated contamination joins, so the union usually IS one of the
	// operands — return it without allocating.
	if s.exact() && o.exact() {
		switch union := s.mask().or(o.mask()); union {
		case s.mask():
			return s
		case o.mask():
			return o
		}
	}
	se, oe := s.h.elems, o.h.elems
	out := make([]tags.Tag, 0, len(se)+len(oe))
	i, j := 0, 0
	for i < len(se) && j < len(oe) {
		switch c := se[i].Compare(oe[j]); {
		case c < 0:
			out = append(out, se[i])
			i++
		case c > 0:
			out = append(out, oe[j])
			j++
		default:
			out = append(out, se[i])
			i++
			j++
		}
	}
	out = append(out, se[i:]...)
	out = append(out, oe[j:]...)
	return mergedSet(out, s, o, s.mask().or(o.mask()))
}

// Intersect returns s ∩ o.
func (s Set) Intersect(o Set) Set {
	if s.IsEmpty() || o.IsEmpty() {
		return Set{}
	}
	if s.exact() && o.exact() {
		switch inter := s.mask().and(o.mask()); {
		case inter == s.mask():
			return s
		case inter == o.mask():
			return o
		case inter.isZero():
			return Set{}
		}
	}
	se, oe := s.h.elems, o.h.elems
	out := make([]tags.Tag, 0, min(len(se), len(oe)))
	i, j := 0, 0
	for i < len(se) && j < len(oe) {
		switch c := se[i].Compare(oe[j]); {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			out = append(out, se[i])
			i++
			j++
		}
	}
	return mergedSet(out, s, o, s.mask().and(o.mask()))
}

// Subtract returns s \ o.
func (s Set) Subtract(o Set) Set {
	if s.IsEmpty() || o.IsEmpty() {
		return s
	}
	if s.exact() && o.exact() {
		switch diff := s.mask().andNot(o.mask()); {
		case diff == s.mask():
			return s // disjoint
		case diff.isZero():
			return Set{} // s ⊆ o
		}
	}
	se, oe := s.h.elems, o.h.elems
	out := make([]tags.Tag, 0, len(se))
	i, j := 0, 0
	for i < len(se) {
		if j >= len(oe) {
			out = append(out, se[i:]...)
			break
		}
		switch c := se[i].Compare(oe[j]); {
		case c < 0:
			out = append(out, se[i])
			i++
		case c > 0:
			j++
		default:
			i++
			j++
		}
	}
	return mergedSet(out, s, o, s.mask().andNot(o.mask()))
}

// SubsetOf reports s ⊆ o.
func (s Set) SubsetOf(o Set) bool {
	if s.IsEmpty() {
		return true
	}
	if s.Len() > o.Len() {
		return false
	}
	// Fast path: when both masks completely encode their memberships,
	// the subset test is a handful of unrolled word operations.
	if s.exact() && o.exact() {
		return s.mask().subsetOf(o.mask())
	}
	se, oe := s.h.elems, o.h.elems
	i, j := 0, 0
	for i < len(se) {
		if j >= len(oe) {
			return false
		}
		switch c := se[i].Compare(oe[j]); {
		case c < 0:
			return false // s has an element smaller than anything left in o
		case c > 0:
			j++
		default:
			i++
			j++
		}
	}
	return true
}

// SupersetOf reports s ⊇ o.
func (s Set) SupersetOf(o Set) bool { return o.SubsetOf(s) }

// Equal reports whether the two sets have identical membership.
func (s Set) Equal(o Set) bool {
	if s.Len() != o.Len() {
		return false
	}
	if s.IsEmpty() {
		return true
	}
	if s.h == o.h {
		return true
	}
	if s.exact() && o.exact() {
		return s.mask() == o.mask()
	}
	se, oe := s.h.elems, o.h.elems
	for i := range se {
		if se[i] != oe[i] {
			return false
		}
	}
	return true
}

// String renders the membership as {tag(..), ...} in sorted order.
func (s Set) String() string {
	if s.IsEmpty() {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range s.h.elems {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(t.String())
	}
	b.WriteByte('}')
	return b.String()
}

// Key returns a deterministic byte-string identifying the membership,
// suitable for use as a map key (e.g. pooling managed-subscription
// instances by contamination level). The key is computed once per set
// and cached; repeated calls return the same string without
// rebuilding it.
func (s Set) Key() string {
	if s.h == nil {
		return ""
	}
	s.h.keyOnce.Do(func() {
		var b strings.Builder
		b.Grow(len(s.h.elems) * tags.IDLen)
		for _, t := range s.h.elems {
			id := t.ID()
			b.Write(id[:])
		}
		s.h.key = b.String()
	})
	return s.h.key
}
