// Package labels implements DEFC security labels and the can-flow-to
// lattice (paper §3.1.1).
//
// A label is a pair (S, I) of tag sets: S holds confidentiality
// ("sticky") tags and I holds integrity ("fragile") tags. Information
// with label La may flow to a holder with label Lb iff
//
//	Sa ⊆ Sb  and  Ia ⊇ Ib
//
// Confidentiality tags accumulate as data is combined; integrity tags
// are destroyed when data is mixed with data lacking them, unless a
// privilege is exercised.
package labels

import (
	"sort"
	"strings"

	"repro/internal/tags"
)

// Set is an immutable, ordered set of tags. The zero value is the
// empty set and is ready to use. All operations return new sets and
// never mutate their receivers, so Sets may be shared freely between
// goroutines without synchronisation.
//
// Representation: a sorted slice without duplicates. DEFC labels are
// small (a handful of tags per part), so a sorted slice beats a map on
// both footprint and iteration cost, and gives cheap subset tests by
// merge-walk.
type Set struct {
	elems []tags.Tag // sorted ascending by Tag.Compare, no duplicates
}

// EmptySet is the canonical empty tag set.
var EmptySet = Set{}

// NewSet builds a set from the given tags, deduplicating as needed.
func NewSet(ts ...tags.Tag) Set {
	if len(ts) == 0 {
		return Set{}
	}
	elems := make([]tags.Tag, len(ts))
	copy(elems, ts)
	sort.Slice(elems, func(i, j int) bool { return elems[i].Less(elems[j]) })
	// Deduplicate in place.
	out := elems[:1]
	for _, t := range elems[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return Set{elems: out}
}

// Len returns the number of tags in the set.
func (s Set) Len() int { return len(s.elems) }

// IsEmpty reports whether the set has no tags.
func (s Set) IsEmpty() bool { return len(s.elems) == 0 }

// Has reports whether t is a member of s.
func (s Set) Has(t tags.Tag) bool {
	i := sort.Search(len(s.elems), func(i int) bool {
		return !s.elems[i].Less(t)
	})
	return i < len(s.elems) && s.elems[i] == t
}

// Slice returns the members in ascending order. The returned slice is
// a copy and may be modified by the caller.
func (s Set) Slice() []tags.Tag {
	out := make([]tags.Tag, len(s.elems))
	copy(out, s.elems)
	return out
}

// Add returns s ∪ {ts...}.
func (s Set) Add(ts ...tags.Tag) Set {
	if len(ts) == 0 {
		return s
	}
	return s.Union(NewSet(ts...))
}

// Remove returns s \ {ts...}.
func (s Set) Remove(ts ...tags.Tag) Set {
	if len(ts) == 0 || len(s.elems) == 0 {
		return s
	}
	return s.Subtract(NewSet(ts...))
}

// Union returns s ∪ o using a linear merge.
func (s Set) Union(o Set) Set {
	if o.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return o
	}
	out := make([]tags.Tag, 0, len(s.elems)+len(o.elems))
	i, j := 0, 0
	for i < len(s.elems) && j < len(o.elems) {
		switch c := s.elems[i].Compare(o.elems[j]); {
		case c < 0:
			out = append(out, s.elems[i])
			i++
		case c > 0:
			out = append(out, o.elems[j])
			j++
		default:
			out = append(out, s.elems[i])
			i++
			j++
		}
	}
	out = append(out, s.elems[i:]...)
	out = append(out, o.elems[j:]...)
	return Set{elems: out}
}

// Intersect returns s ∩ o.
func (s Set) Intersect(o Set) Set {
	if s.IsEmpty() || o.IsEmpty() {
		return Set{}
	}
	out := make([]tags.Tag, 0, min(len(s.elems), len(o.elems)))
	i, j := 0, 0
	for i < len(s.elems) && j < len(o.elems) {
		switch c := s.elems[i].Compare(o.elems[j]); {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			out = append(out, s.elems[i])
			i++
			j++
		}
	}
	if len(out) == 0 {
		return Set{}
	}
	return Set{elems: out}
}

// Subtract returns s \ o.
func (s Set) Subtract(o Set) Set {
	if s.IsEmpty() || o.IsEmpty() {
		return s
	}
	out := make([]tags.Tag, 0, len(s.elems))
	i, j := 0, 0
	for i < len(s.elems) {
		if j >= len(o.elems) {
			out = append(out, s.elems[i:]...)
			break
		}
		switch c := s.elems[i].Compare(o.elems[j]); {
		case c < 0:
			out = append(out, s.elems[i])
			i++
		case c > 0:
			j++
		default:
			i++
			j++
		}
	}
	if len(out) == 0 {
		return Set{}
	}
	return Set{elems: out}
}

// SubsetOf reports s ⊆ o.
func (s Set) SubsetOf(o Set) bool {
	if len(s.elems) > len(o.elems) {
		return false
	}
	i, j := 0, 0
	for i < len(s.elems) {
		if j >= len(o.elems) {
			return false
		}
		switch c := s.elems[i].Compare(o.elems[j]); {
		case c < 0:
			return false // s has an element smaller than anything left in o
		case c > 0:
			j++
		default:
			i++
			j++
		}
	}
	return true
}

// SupersetOf reports s ⊇ o.
func (s Set) SupersetOf(o Set) bool { return o.SubsetOf(s) }

// Equal reports whether the two sets have identical membership.
func (s Set) Equal(o Set) bool {
	if len(s.elems) != len(o.elems) {
		return false
	}
	for i := range s.elems {
		if s.elems[i] != o.elems[i] {
			return false
		}
	}
	return true
}

// String renders the membership as {tag(..), ...} in sorted order.
func (s Set) String() string {
	if s.IsEmpty() {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range s.elems {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(t.String())
	}
	b.WriteByte('}')
	return b.String()
}

// Key returns a deterministic byte-string identifying the membership,
// suitable for use as a map key (e.g. pooling managed-subscription
// instances by contamination level).
func (s Set) Key() string {
	var b strings.Builder
	b.Grow(len(s.elems) * tags.IDLen)
	for _, t := range s.elems {
		id := t.ID()
		b.Write(id[:])
	}
	return b.String()
}
