package labels

import (
	"testing"

	"repro/internal/tags"
)

// pool returns n distinct tags from a deterministic store.
func pool(t testing.TB, n int) []tags.Tag {
	t.Helper()
	s := tags.NewStore(1234)
	out := make([]tags.Tag, n)
	for i := range out {
		out[i] = s.Create("t", "test")
	}
	return out
}

func TestNewSetDeduplicatesAndSorts(t *testing.T) {
	p := pool(t, 3)
	s := NewSet(p[2], p[0], p[2], p[1], p[0])
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	elems := s.Slice()
	for i := 1; i < len(elems); i++ {
		if !elems[i-1].Less(elems[i]) {
			t.Fatalf("Slice not strictly sorted at %d", i)
		}
	}
}

func TestHas(t *testing.T) {
	p := pool(t, 4)
	s := NewSet(p[0], p[2])
	if !s.Has(p[0]) || !s.Has(p[2]) {
		t.Fatal("Has missed a member")
	}
	if s.Has(p[1]) || s.Has(p[3]) {
		t.Fatal("Has reported a non-member")
	}
	if EmptySet.Has(p[0]) {
		t.Fatal("empty set Has a member")
	}
}

func TestUnionIntersectSubtract(t *testing.T) {
	p := pool(t, 5)
	a := NewSet(p[0], p[1], p[2])
	b := NewSet(p[2], p[3])

	u := a.Union(b)
	if u.Len() != 4 {
		t.Fatalf("Union Len = %d, want 4", u.Len())
	}
	for _, x := range []tags.Tag{p[0], p[1], p[2], p[3]} {
		if !u.Has(x) {
			t.Fatalf("Union missing %v", x)
		}
	}

	i := a.Intersect(b)
	if i.Len() != 1 || !i.Has(p[2]) {
		t.Fatalf("Intersect = %v, want {p2}", i)
	}

	d := a.Subtract(b)
	if d.Len() != 2 || !d.Has(p[0]) || !d.Has(p[1]) || d.Has(p[2]) {
		t.Fatalf("Subtract = %v, want {p0,p1}", d)
	}
}

func TestSetImmutability(t *testing.T) {
	p := pool(t, 3)
	a := NewSet(p[0])
	_ = a.Add(p[1], p[2])
	if a.Len() != 1 {
		t.Fatal("Add mutated receiver")
	}
	_ = a.Remove(p[0])
	if !a.Has(p[0]) {
		t.Fatal("Remove mutated receiver")
	}
	_ = a.Union(NewSet(p[1]))
	if a.Len() != 1 {
		t.Fatal("Union mutated receiver")
	}
}

func TestSubsetSuperset(t *testing.T) {
	p := pool(t, 4)
	small := NewSet(p[0], p[1])
	big := NewSet(p[0], p[1], p[2])
	other := NewSet(p[0], p[3])

	if !small.SubsetOf(big) {
		t.Fatal("small ⊆ big failed")
	}
	if big.SubsetOf(small) {
		t.Fatal("big ⊆ small succeeded")
	}
	if !big.SupersetOf(small) {
		t.Fatal("big ⊇ small failed")
	}
	if small.SubsetOf(other) || other.SubsetOf(small) {
		t.Fatal("incomparable sets reported comparable")
	}
	if !EmptySet.SubsetOf(small) {
		t.Fatal("∅ ⊆ small failed")
	}
	if !small.SubsetOf(small) {
		t.Fatal("reflexivity failed")
	}
}

func TestEqual(t *testing.T) {
	p := pool(t, 3)
	a := NewSet(p[0], p[1])
	b := NewSet(p[1], p[0])
	if !a.Equal(b) {
		t.Fatal("order-insensitive equality failed")
	}
	if a.Equal(NewSet(p[0])) || a.Equal(NewSet(p[0], p[2])) {
		t.Fatal("unequal sets reported equal")
	}
	if !EmptySet.Equal(Set{}) {
		t.Fatal("empty equality failed")
	}
}

func TestAddRemove(t *testing.T) {
	p := pool(t, 3)
	s := EmptySet.Add(p[0]).Add(p[1], p[1]).Remove(p[0])
	if s.Len() != 1 || !s.Has(p[1]) {
		t.Fatalf("chained Add/Remove = %v", s)
	}
	if got := s.Remove(p[2]); !got.Equal(s) {
		t.Fatal("removing absent tag changed set")
	}
}

func TestKeyDistinguishesSets(t *testing.T) {
	p := pool(t, 3)
	a := NewSet(p[0], p[1])
	b := NewSet(p[0], p[2])
	if a.Key() == b.Key() {
		t.Fatal("distinct sets share Key")
	}
	if a.Key() != NewSet(p[1], p[0]).Key() {
		t.Fatal("Key depends on construction order")
	}
}

func TestStringRendering(t *testing.T) {
	p := pool(t, 2)
	if EmptySet.String() != "{}" {
		t.Fatalf("empty String = %q", EmptySet.String())
	}
	s := NewSet(p[0], p[1]).String()
	if len(s) < 2 || s[0] != '{' || s[len(s)-1] != '}' {
		t.Fatalf("String = %q", s)
	}
}
