package labels

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/tags"
)

// Label is a DEFC security label: a confidentiality component S and an
// integrity component I (paper §3.1.1, Figure 1). The zero value is
// the public label ({}, {}).
//
// Labels are immutable values; deriving a new label never mutates the
// receiver.
type Label struct {
	S Set // confidentiality tags: "sticky"
	I Set // integrity tags: "fragile"
}

// Public is the bottom-confidentiality, bottom-integrity label ({}, {}).
var Public = Label{}

// New builds a label from confidentiality and integrity tag sets.
func New(s, i Set) Label { return Label{S: s, I: i} }

// NewFromTags builds a label from slices of confidentiality and
// integrity tags.
func NewFromTags(s, i []tags.Tag) Label {
	return Label{S: NewSet(s...), I: NewSet(i...)}
}

// CanFlowTo reports La ≺ Lb: information labelled l may flow to a
// holder labelled o iff l.S ⊆ o.S and l.I ⊇ o.I.
//
// Note: Table 1 of the paper prints the integrity direction of the
// receive check as Ip ⊆ Iin, which contradicts both the lattice in
// §3.1.1 and the Pair Monitor behaviour in §6.1 (a unit holding read
// integrity {s} must only perceive events endorsed with s). We follow
// the lattice. See DESIGN.md §1.
func (l Label) CanFlowTo(o Label) bool {
	return l.S.SubsetOf(o.S) && l.I.SupersetOf(o.I)
}

// Join returns the least upper bound of the two labels in the
// can-flow-to order: (S1 ∪ S2, I1 ∩ I2). This is the label of data
// derived from both inputs — confidentiality tags are sticky and
// accumulate, integrity tags are fragile and survive only when carried
// by every input.
func (l Label) Join(o Label) Label {
	return Label{S: l.S.Union(o.S), I: l.I.Intersect(o.I)}
}

// Meet returns the greatest lower bound: (S1 ∩ S2, I1 ∪ I2).
func (l Label) Meet(o Label) Label {
	return Label{S: l.S.Intersect(o.S), I: l.I.Union(o.I)}
}

// Equal reports componentwise equality.
func (l Label) Equal(o Label) bool {
	return l.S.Equal(o.S) && l.I.Equal(o.I)
}

// IsPublic reports whether the label is ({}, {}).
func (l Label) IsPublic() bool { return l.S.IsEmpty() && l.I.IsEmpty() }

// WithContamination applies contamination independence (paper §5):
// a part created with requested label l by a unit whose output label
// is out actually receives (l.S ∪ out.S, l.I ∩ out.I). The unit may
// make data more confidential than its output level but never less,
// and may claim at most the integrity its output label carries.
func (l Label) WithContamination(out Label) Label {
	return Label{S: l.S.Union(out.S), I: l.I.Intersect(out.I)}
}

// String renders the label as (S,I).
func (l Label) String() string {
	return fmt.Sprintf("(S=%s, I=%s)", l.S, l.I)
}

// Key returns a deterministic string identifying the label, suitable
// for map keys. The S and I components are length-prefixed to avoid
// ambiguity between, e.g., ({a,b}, {}) and ({a}, {b}). The component
// keys are cached inside the sets, so repeated calls only concatenate.
func (l Label) Key() string {
	sk, ik := l.S.Key(), l.I.Key()
	var b strings.Builder
	b.Grow(len(sk) + len(ik) + 16)
	b.WriteString(strconv.Itoa(l.S.Len()))
	b.WriteByte(':')
	b.WriteString(sk)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(l.I.Len()))
	b.WriteByte(':')
	b.WriteString(ik)
	return b.String()
}
