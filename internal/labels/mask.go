package labels

// The wide fast-path mask.
//
// A set's mask has bit i set iff the set contains the tag with intern
// index i < tags.InternWidth (see internal/tags). The mask is a fixed
// four-word (256-bit) array rather than a single uint64 so that
// paper-scale workloads — which mint one tag per trader and per order
// (§6.2) and blow straight past 64 identities — still resolve their
// subset/superset/flow checks as a handful of word operations instead
// of spilling to the sorted-slice merge path.
//
// All operations are unrolled over the four words: the arrays are
// small enough that the compiler keeps them in registers, and the
// unrolled forms avoid loop/bounds bookkeeping on the dispatch hot
// path (every candidate admission check runs two subset tests).

import "repro/internal/tags"

// maskWords is the number of 64-bit words in the fast-path mask.
const maskWords = 4

// Compile-time guards: the unrolled mask operations below assume
// exactly maskWords words, and the mask must cover exactly
// tags.InternWidth bit positions. Either array has negative length —
// a compile error — if the two constants drift apart.
var (
	_ [tags.InternWidth - 64*maskWords]struct{}
	_ [64*maskWords - tags.InternWidth]struct{}
)

// setMask is the fast-path bitmask over interned tag indexes. The
// zero value is the empty mask. Arrays are comparable, so equality is
// the built-in ==.
type setMask [maskWords]uint64

// set sets bit idx; the caller guarantees idx < tags.InternWidth.
func (m *setMask) set(idx uint32) {
	m[idx>>6] |= 1 << (idx & 63)
}

// has reports whether bit idx is set; the caller guarantees
// idx < tags.InternWidth.
func (m *setMask) has(idx uint32) bool {
	return m[idx>>6]&(1<<(idx&63)) != 0
}

// isZero reports whether no bit is set.
func (m setMask) isZero() bool {
	return m[0]|m[1]|m[2]|m[3] == 0
}

// or returns the bitwise union m ∪ o.
func (m setMask) or(o setMask) setMask {
	return setMask{m[0] | o[0], m[1] | o[1], m[2] | o[2], m[3] | o[3]}
}

// and returns the bitwise intersection m ∩ o.
func (m setMask) and(o setMask) setMask {
	return setMask{m[0] & o[0], m[1] & o[1], m[2] & o[2], m[3] & o[3]}
}

// andNot returns the bitwise difference m \ o.
func (m setMask) andNot(o setMask) setMask {
	return setMask{m[0] &^ o[0], m[1] &^ o[1], m[2] &^ o[2], m[3] &^ o[3]}
}

// subsetOf reports m ⊆ o as one fused word expression — no branch per
// word, so the dispatch admission check stays branch-predictable.
func (m setMask) subsetOf(o setMask) bool {
	return m[0]&^o[0]|m[1]&^o[1]|m[2]&^o[2]|m[3]&^o[3] == 0
}
