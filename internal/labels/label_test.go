package labels

import (
	"testing"
)

func TestCanFlowToConfidentiality(t *testing.T) {
	p := pool(t, 2)
	public := Label{}
	secret := Label{S: NewSet(p[0])}
	topSecret := Label{S: NewSet(p[0], p[1])}

	// Sticky S tags: data may flow up in secrecy, never down.
	if !public.CanFlowTo(secret) || !secret.CanFlowTo(topSecret) {
		t.Fatal("upward confidentiality flow rejected")
	}
	if secret.CanFlowTo(public) || topSecret.CanFlowTo(secret) {
		t.Fatal("downward confidentiality flow permitted")
	}
}

func TestCanFlowToIntegrity(t *testing.T) {
	p := pool(t, 2)
	endorsed := Label{I: NewSet(p[0])}
	plain := Label{}
	reader := Label{I: NewSet(p[0])} // unit with read integrity {s}

	// §6.1: a Pair Monitor instantiated with read integrity s perceives
	// only events endorsed with s.
	if !endorsed.CanFlowTo(reader) {
		t.Fatal("endorsed event rejected by endorsed reader")
	}
	if plain.CanFlowTo(reader) {
		t.Fatal("unendorsed event accepted by endorsed reader")
	}
	// Anyone can read high-integrity data.
	if !endorsed.CanFlowTo(plain) {
		t.Fatal("endorsed event rejected by public reader")
	}
}

func TestJoinAccumulatesSAndErodesI(t *testing.T) {
	p := pool(t, 4)
	// §3.1.1 worked example: combining {s-trading, s-client-2402} with
	// {s-trading, s-trader-77} yields all three tags.
	a := Label{S: NewSet(p[0], p[1]), I: NewSet(p[3])}
	b := Label{S: NewSet(p[0], p[2]), I: NewSet(p[3])}
	j := a.Join(b)
	if j.S.Len() != 3 {
		t.Fatalf("join S = %v, want 3 tags", j.S)
	}
	if !j.I.Equal(NewSet(p[3])) {
		t.Fatalf("join I = %v, want {p3}", j.I)
	}

	// Stock ticker integrity {i-stockticker} mixed with {i-trader-77}
	// integrity yields {}.
	ticker := Label{I: NewSet(p[0])}
	trader := Label{I: NewSet(p[1])}
	if got := ticker.Join(trader); !got.I.IsEmpty() {
		t.Fatalf("mixing disjoint integrity gave %v, want {}", got.I)
	}
}

func TestJoinIsLeastUpperBound(t *testing.T) {
	p := pool(t, 3)
	a := Label{S: NewSet(p[0]), I: NewSet(p[1], p[2])}
	b := Label{S: NewSet(p[1]), I: NewSet(p[2])}
	j := a.Join(b)
	if !a.CanFlowTo(j) || !b.CanFlowTo(j) {
		t.Fatal("join is not an upper bound")
	}
	// Any other upper bound dominates the join.
	ub := Label{S: NewSet(p[0], p[1], p[2]), I: EmptySet}
	if !a.CanFlowTo(ub) || !b.CanFlowTo(ub) {
		t.Fatal("test upper bound invalid")
	}
	if !j.CanFlowTo(ub) {
		t.Fatal("join is not the least upper bound")
	}
}

func TestMeetIsGreatestLowerBound(t *testing.T) {
	p := pool(t, 3)
	a := Label{S: NewSet(p[0], p[1]), I: NewSet(p[2])}
	b := Label{S: NewSet(p[1]), I: EmptySet}
	m := a.Meet(b)
	if !m.CanFlowTo(a) || !m.CanFlowTo(b) {
		t.Fatal("meet is not a lower bound")
	}
	lb := Label{S: EmptySet, I: NewSet(p[0], p[1], p[2])}
	if !lb.CanFlowTo(a) || !lb.CanFlowTo(b) {
		t.Fatal("test lower bound invalid")
	}
	if !lb.CanFlowTo(m) {
		t.Fatal("meet is not the greatest lower bound")
	}
}

func TestWithContamination(t *testing.T) {
	p := pool(t, 4)
	out := Label{S: NewSet(p[0]), I: NewSet(p[1])}
	// §5 example: a unit with Sout={d} adding a part labelled S={t}
	// produces S'={d,t}.
	req := Label{S: NewSet(p[2]), I: NewSet(p[1], p[3])}
	got := req.WithContamination(out)
	if !got.S.Equal(NewSet(p[0], p[2])) {
		t.Fatalf("S' = %v, want {p0,p2}", got.S)
	}
	// Integrity is capped at the output label: the unit cannot vouch
	// for p3.
	if !got.I.Equal(NewSet(p[1])) {
		t.Fatalf("I' = %v, want {p1}", got.I)
	}
}

func TestPublicAndEqual(t *testing.T) {
	p := pool(t, 1)
	if !Public.IsPublic() {
		t.Fatal("Public not IsPublic")
	}
	l := Label{S: NewSet(p[0])}
	if l.IsPublic() {
		t.Fatal("tagged label IsPublic")
	}
	if !l.Equal(Label{S: NewSet(p[0])}) {
		t.Fatal("Equal failed on identical labels")
	}
	if l.Equal(Public) {
		t.Fatal("Equal confused tagged with public")
	}
}

func TestLabelKeyUnambiguous(t *testing.T) {
	p := pool(t, 2)
	// ({a,b}, {}) vs ({a}, {b}) must produce different keys.
	a := Label{S: NewSet(p[0], p[1])}
	b := Label{S: NewSet(p[0]), I: NewSet(p[1])}
	if a.Key() == b.Key() {
		t.Fatal("Key ambiguous between S and I membership")
	}
	if a.Key() != (Label{S: NewSet(p[1], p[0])}).Key() {
		t.Fatal("Key order-sensitive")
	}
}
