package labels

// Property-based tests of the tag-set algebra and the can-flow-to
// lattice, using testing/quick over randomly generated sets drawn from
// a fixed tag pool.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/tags"
)

// genPool is the shared tag pool for generated sets. Sets are generated
// as bitmasks over the pool, which keeps overlap between generated sets
// likely (all-distinct tags would make intersection trivially empty).
var genPool = func() []tags.Tag {
	s := tags.NewStore(99)
	out := make([]tags.Tag, 12)
	for i := range out {
		out[i] = s.Create("q", "quick")
	}
	return out
}()

// qset wraps Set to implement quick.Generator.
type qset struct{ Set }

// Generate draws a random subset of genPool.
func (qset) Generate(r *rand.Rand, _ int) reflect.Value {
	mask := r.Intn(1 << len(genPool))
	var members []tags.Tag
	for i, t := range genPool {
		if mask&(1<<i) != 0 {
			members = append(members, t)
		}
	}
	return reflect.ValueOf(qset{NewSet(members...)})
}

// qlabel wraps Label to implement quick.Generator.
type qlabel struct{ Label }

// Generate draws independent random S and I components.
func (qlabel) Generate(r *rand.Rand, size int) reflect.Value {
	s := qset{}.Generate(r, size).Interface().(qset)
	i := qset{}.Generate(r, size).Interface().(qset)
	return reflect.ValueOf(qlabel{Label{S: s.Set, I: i.Set}})
}

var qcfg = &quick.Config{MaxCount: 400}

func TestQuickSetAlgebraLaws(t *testing.T) {
	commutative := func(a, b qset) bool {
		return a.Union(b.Set).Equal(b.Union(a.Set)) &&
			a.Intersect(b.Set).Equal(b.Intersect(a.Set))
	}
	if err := quick.Check(commutative, qcfg); err != nil {
		t.Error(err)
	}

	associativeUnion := func(a, b, c qset) bool {
		return a.Union(b.Set).Union(c.Set).Equal(a.Union(b.Union(c.Set)))
	}
	if err := quick.Check(associativeUnion, qcfg); err != nil {
		t.Error(err)
	}

	idempotent := func(a qset) bool {
		return a.Union(a.Set).Equal(a.Set) && a.Intersect(a.Set).Equal(a.Set)
	}
	if err := quick.Check(idempotent, qcfg); err != nil {
		t.Error(err)
	}

	absorption := func(a, b qset) bool {
		return a.Union(a.Intersect(b.Set)).Equal(a.Set) &&
			a.Intersect(a.Union(b.Set)).Equal(a.Set)
	}
	if err := quick.Check(absorption, qcfg); err != nil {
		t.Error(err)
	}

	subtractDisjoint := func(a, b qset) bool {
		d := a.Subtract(b.Set)
		return d.Intersect(b.Set).IsEmpty() && d.SubsetOf(a.Set) &&
			d.Union(a.Intersect(b.Set)).Equal(a.Set)
	}
	if err := quick.Check(subtractDisjoint, qcfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSubsetConsistentWithMembership(t *testing.T) {
	f := func(a, b qset) bool {
		want := true
		for _, x := range a.Slice() {
			if !b.Has(x) {
				want = false
				break
			}
		}
		return a.SubsetOf(b.Set) == want
	}
	if err := quick.Check(f, qcfg); err != nil {
		t.Error(err)
	}
}

func TestQuickCanFlowToIsPartialOrder(t *testing.T) {
	reflexive := func(a qlabel) bool { return a.CanFlowTo(a.Label) }
	if err := quick.Check(reflexive, qcfg); err != nil {
		t.Error(err)
	}

	antisymmetric := func(a, b qlabel) bool {
		if a.CanFlowTo(b.Label) && b.CanFlowTo(a.Label) {
			return a.Equal(b.Label)
		}
		return true
	}
	if err := quick.Check(antisymmetric, qcfg); err != nil {
		t.Error(err)
	}

	transitive := func(a, b, c qlabel) bool {
		if a.CanFlowTo(b.Label) && b.CanFlowTo(c.Label) {
			return a.CanFlowTo(c.Label)
		}
		return true
	}
	if err := quick.Check(transitive, qcfg); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinMeetAreBounds(t *testing.T) {
	joinUB := func(a, b qlabel) bool {
		j := a.Join(b.Label)
		return a.CanFlowTo(j) && b.CanFlowTo(j)
	}
	if err := quick.Check(joinUB, qcfg); err != nil {
		t.Error(err)
	}

	meetLB := func(a, b qlabel) bool {
		m := a.Meet(b.Label)
		return m.CanFlowTo(a.Label) && m.CanFlowTo(b.Label)
	}
	if err := quick.Check(meetLB, qcfg); err != nil {
		t.Error(err)
	}

	// Least/greatest: every other bound is beyond the join/meet.
	joinLeast := func(a, b, c qlabel) bool {
		if a.CanFlowTo(c.Label) && b.CanFlowTo(c.Label) {
			return a.Join(b.Label).CanFlowTo(c.Label)
		}
		return true
	}
	if err := quick.Check(joinLeast, qcfg); err != nil {
		t.Error(err)
	}

	meetGreatest := func(a, b, c qlabel) bool {
		if c.CanFlowTo(a.Label) && c.CanFlowTo(b.Label) {
			return c.CanFlowTo(a.Meet(b.Label))
		}
		return true
	}
	if err := quick.Check(meetGreatest, qcfg); err != nil {
		t.Error(err)
	}
}

func TestQuickContaminationIndependenceMonotone(t *testing.T) {
	// A part created under contamination independence is always at
	// least as restrictive as the unit's output label demands: the
	// result can never flow anywhere the raw output label could not.
	f := func(req, out qlabel) bool {
		got := req.WithContamination(out.Label)
		return out.S.SubsetOf(got.S) && got.I.SubsetOf(out.I)
	}
	if err := quick.Check(f, qcfg); err != nil {
		t.Error(err)
	}
}

func TestQuickKeyInjectiveOnSamples(t *testing.T) {
	f := func(a, b qlabel) bool {
		if a.Equal(b.Label) {
			return a.Key() == b.Key()
		}
		return a.Key() != b.Key()
	}
	if err := quick.Check(f, qcfg); err != nil {
		t.Error(err)
	}
}
