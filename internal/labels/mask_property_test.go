package labels

// Property tests for the interned-tag bitmask fast path: every set
// operation must agree with a reference implementation computed by
// plain sorted-slice merges, regardless of whether the participating
// tags hold fast-path intern indexes (< tags.InternWidth) or spill
// beyond the boundary. The tag pool deliberately spans the boundary:
// a fresh store mints enough tags that later ones are guaranteed
// indexes ≥ InternWidth even if this test runs first in the process.

import (
	"math/rand"
	"testing"

	"repro/internal/tags"
)

// refSet is the trivial reference: a sorted, deduplicated tag slice.
type refSet []tags.Tag

func refFrom(s Set) refSet { return s.Slice() }

func (a refSet) subsetOf(b refSet) bool {
	i, j := 0, 0
	for i < len(a) {
		if j >= len(b) {
			return false
		}
		switch c := a[i].Compare(b[j]); {
		case c < 0:
			return false
		case c > 0:
			j++
		default:
			i++
			j++
		}
	}
	return true
}

func (a refSet) union(b refSet) refSet {
	out := refSet{}
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case i >= len(a):
			out = append(out, b[j])
			j++
		case j >= len(b):
			out = append(out, a[i])
			i++
		default:
			switch c := a[i].Compare(b[j]); {
			case c < 0:
				out = append(out, a[i])
				i++
			case c > 0:
				out = append(out, b[j])
				j++
			default:
				out = append(out, a[i])
				i++
				j++
			}
		}
	}
	return out
}

func (a refSet) intersect(b refSet) refSet {
	out := refSet{}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch c := a[i].Compare(b[j]); {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func (a refSet) subtract(b refSet) refSet {
	out := refSet{}
	i, j := 0, 0
	for i < len(a) {
		switch {
		case j >= len(b):
			out = append(out, a[i])
			i++
		default:
			switch c := a[i].Compare(b[j]); {
			case c < 0:
				out = append(out, a[i])
				i++
			case c > 0:
				j++
			default:
				i++
				j++
			}
		}
	}
	return out
}

func (a refSet) equal(b refSet) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameMembers(t *testing.T, what string, got Set, want refSet) {
	t.Helper()
	if !refSet(got.Slice()).equal(want) {
		t.Fatalf("%s: got %v want %v", what, got.Slice(), want)
	}
}

// boundaryPool mints a tag pool that straddles the fast-path width:
// whatever intern indexes are already taken in this process, the
// later tags of the pool exceed tags.InternWidth.
func boundaryPool(t *testing.T) []tags.Tag {
	t.Helper()
	store := tags.NewStore(424242)
	pool := make([]tags.Tag, 0, tags.InternWidth+32)
	for i := 0; i < tags.InternWidth+32; i++ {
		pool = append(pool, store.Create("prop", "test"))
	}
	return pool
}

func randomSubset(rng *rand.Rand, pool []tags.Tag) []tags.Tag {
	var out []tags.Tag
	for _, tg := range pool {
		if rng.Intn(4) == 0 {
			out = append(out, tg)
		}
	}
	return out
}

func TestSetOpsMatchReferenceAcrossInternBoundary(t *testing.T) {
	pool := boundaryPool(t)
	rng := rand.New(rand.NewSource(7))

	// Pool slices targeting every word boundary of the 4-word mask
	// (indexes 63/64, 127/128, 191/192) and the fast-path width edge
	// (255/256), plus fast-path-heavy, beyond-width and full-pool
	// mixes — every combination must agree with the reference. (The
	// positions line up with intern indexes exactly when this test
	// mints the process's first tags; either way the property must
	// hold.)
	regions := [][]tags.Tag{
		pool[:16],
		pool[56:72],   // word 0 / word 1 boundary
		pool[120:136], // word 1 / word 2 boundary
		pool[184:200], // word 2 / word 3 boundary
		pool[tags.InternWidth-8 : tags.InternWidth+8], // width edge
		pool[tags.InternWidth:],
		pool,
	}
	for iter := 0; iter < 2000; iter++ {
		ra := regions[rng.Intn(len(regions))]
		rb := regions[rng.Intn(len(regions))]
		a := NewSet(randomSubset(rng, ra)...)
		b := NewSet(randomSubset(rng, rb)...)
		refA, refB := refFrom(a), refFrom(b)

		if got, want := a.SubsetOf(b), refA.subsetOf(refB); got != want {
			t.Fatalf("SubsetOf mismatch: %v vs %v (a=%v b=%v)", got, want, refA, refB)
		}
		if got, want := a.SupersetOf(b), refB.subsetOf(refA); got != want {
			t.Fatalf("SupersetOf mismatch: %v vs %v", got, want)
		}
		if got, want := a.Equal(b), refA.equal(refB); got != want {
			t.Fatalf("Equal mismatch: %v vs %v", got, want)
		}
		sameMembers(t, "Union", a.Union(b), refA.union(refB))
		sameMembers(t, "Intersect", a.Intersect(b), refA.intersect(refB))
		sameMembers(t, "Subtract", a.Subtract(b), refA.subtract(refB))

		// Membership agrees for every pool tag.
		for _, tg := range ra {
			inRef := refSet{tg}.subsetOf(refA)
			if a.Has(tg) != inRef {
				t.Fatalf("Has(%v) = %v, reference %v", tg, a.Has(tg), inRef)
			}
		}
	}
}

func TestLabelLatticeMatchesReferenceAcrossInternBoundary(t *testing.T) {
	pool := boundaryPool(t)
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 2000; iter++ {
		la := Label{S: NewSet(randomSubset(rng, pool)...), I: NewSet(randomSubset(rng, pool)...)}
		lb := Label{S: NewSet(randomSubset(rng, pool)...), I: NewSet(randomSubset(rng, pool)...)}
		refFlow := refFrom(la.S).subsetOf(refFrom(lb.S)) && refFrom(lb.I).subsetOf(refFrom(la.I))
		if got := la.CanFlowTo(lb); got != refFlow {
			t.Fatalf("CanFlowTo mismatch: got %v want %v", got, refFlow)
		}

		join := la.Join(lb)
		sameMembers(t, "Join.S", join.S, refFrom(la.S).union(refFrom(lb.S)))
		sameMembers(t, "Join.I", join.I, refFrom(la.I).intersect(refFrom(lb.I)))

		meet := la.Meet(lb)
		sameMembers(t, "Meet.S", meet.S, refFrom(la.S).intersect(refFrom(lb.S)))
		sameMembers(t, "Meet.I", meet.I, refFrom(la.I).union(refFrom(lb.I)))

		// Lattice laws: X ≺ X⊔Y and X⊓Y ≺ X.
		if !la.CanFlowTo(join) || !lb.CanFlowTo(join) {
			t.Fatal("join is not an upper bound")
		}
		if !meet.CanFlowTo(la) || !meet.CanFlowTo(lb) {
			t.Fatal("meet is not a lower bound")
		}
	}
}

// TestLateInternedTagStaysCorrect pins the soundness rule for tags
// interned AFTER a set containing them was built: such sets are
// permanently inexact and must keep falling back to the slice path,
// even when compared against exact sets built later.
func TestLateInternedTagStaysCorrect(t *testing.T) {
	// A tag that was never interned (FromID without registration).
	var id tags.ID
	id[0] = 0xAB
	id[15] = 0xCD
	late := tags.FromID(id)

	before := NewSet(late) // built while late is uninterned: inexact
	if before.Has(late) != true {
		t.Fatal("membership lost for uninterned tag")
	}

	// Now the tag gets interned (e.g. a foreign registration) and a
	// second set is built; the two must still compare correctly.
	store := tags.NewStore(99)
	store.RegisterForeign(late, "late", "test")
	after := NewSet(late)

	if !before.Equal(after) || !before.SubsetOf(after) || !after.SubsetOf(before) {
		t.Fatal("late-interned tag broke set comparisons")
	}
	if !before.Union(after).Equal(after) {
		t.Fatal("late-interned tag broke union")
	}
}

// TestMaskWordBoundaryMembership pins the mask behaviour at the exact
// word boundaries of the 4-word fast path: tags whose intern indexes
// sit at 63/64, 127/128 and 255/256 (the last straddling the
// fast-path width itself, so sets containing index 256 are inexact).
// Tags are selected by their actual process-wide intern index, so the
// test is immune to other tests having interned tags first.
func TestMaskWordBoundaryMembership(t *testing.T) {
	pool := boundaryPool(t)
	byIdx := make(map[uint32]tags.Tag, len(pool))
	for _, tg := range pool {
		if ix, ok := tags.InternIndex(tg); ok {
			byIdx[ix] = tg
		}
	}
	var present []tags.Tag
	for _, ix := range []uint32{62, 63, 64, 65, 126, 127, 128, 129, 254, 255, 256, 257} {
		if tg, ok := byIdx[ix]; ok {
			present = append(present, tg)
		}
	}
	if len(present) < 4 {
		t.Skipf("only %d boundary indexes landed in the pool", len(present))
	}

	all := NewSet(present...)
	for _, tg := range present {
		if !all.Has(tg) {
			ix, _ := tags.InternIndex(tg)
			t.Fatalf("membership lost for boundary index %d", ix)
		}
	}
	for i, a := range present {
		sa := NewSet(a)
		for _, b := range present[i+1:] {
			sb := NewSet(b)
			u := sa.Union(sb)
			switch {
			case u.Len() != 2:
				t.Fatalf("union of distinct singletons has %d members", u.Len())
			case !sa.SubsetOf(u) || !sb.SubsetOf(u):
				t.Fatal("operand not subset of its union")
			case sa.SubsetOf(sb) || sb.SubsetOf(sa):
				t.Fatal("distinct singletons report subset")
			case !sa.Intersect(sb).IsEmpty():
				t.Fatal("distinct singletons intersect")
			case !u.Subtract(sa).Equal(sb):
				t.Fatal("union minus operand is not the other operand")
			}
		}
	}
}
