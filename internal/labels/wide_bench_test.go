package labels

// Benchmarks for set operations over a paper-scale tag universe (200
// interned tags, one per trader): with the 256-bit mask all of these
// are word operations on exact sets; past the mask width they fall
// back to sorted-slice merges.

import (
	"testing"

	"repro/internal/tags"
)

func wideUniverse(b *testing.B) []tags.Tag {
	b.Helper()
	store := tags.NewStore(771177)
	out := make([]tags.Tag, 200)
	for i := range out {
		out[i] = store.Create("wide", "bench")
	}
	return out
}

func BenchmarkWideSubsetOf(b *testing.B) {
	u := wideUniverse(b)
	small := NewSet(u[7], u[93], u[181])
	big := NewSet(u...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !small.SubsetOf(big) {
			b.Fatal("subset lost")
		}
	}
}

func BenchmarkWideUnionContained(b *testing.B) {
	u := wideUniverse(b)
	small := NewSet(u[7], u[93], u[181])
	big := NewSet(u...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := big.Union(small); got.Len() != 200 {
			b.Fatal("union wrong")
		}
	}
}

func BenchmarkWideCanFlowTo(b *testing.B) {
	u := wideUniverse(b)
	part := Label{S: NewSet(u[7], u[93]), I: NewSet(u[181])}
	in := Label{S: NewSet(u...), I: EmptySet}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !part.CanFlowTo(in) {
			b.Fatal("flow lost")
		}
	}
}
