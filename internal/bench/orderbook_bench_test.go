package bench

// Order-book workload benchmark: the dark pool clearing order flow
// through the price-time book in every security mode, reporting
//
//	fills/s    – completed fills per wall-clock second
//	depth_p99  – 99th-percentile book depth (resting orders) sampled
//	             after each processed order
//	ns/op      – per submitted order-flow op
//
// Run with:
//
//	go test ./internal/bench -run xxx -bench BenchmarkOrderBook -benchmem

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trading"
	"repro/internal/workload"
)

const orderBookBenchTraders = 48

// runOrderBookOnce replays n flow ops and returns fills, depth
// histogram and elapsed wall time.
func runOrderBookOnce(tb testing.TB, mode core.SecurityMode, n int) (uint64, *metrics.Histogram, time.Duration) {
	tb.Helper()
	h := metrics.NewHistogram()
	p, err := trading.New(trading.Config{
		Mode:        mode,
		NumTraders:  orderBookBenchTraders,
		Universe:    workload.NewUniverse(4),
		Seed:        1,
		OrderTTL:    time.Minute,
		Enforcer:    SharedEnforcer(),
		OnBookDepth: func(d int) { h.Record(int64(d)) },
	})
	if err != nil {
		tb.Fatal(err)
	}
	defer p.Close()
	flow := workload.NewOrderFlow(p.Universe(), workload.FlowConfig{
		Traders:       orderBookBenchTraders,
		AggressionPct: 50,
	}, 7)
	ops := flow.Take(n)
	start := time.Now()
	p.ReplayOrders(ops)
	if !p.Quiesce(60 * time.Second) {
		tb.Fatal("order-book bench did not quiesce")
	}
	return p.Broker.Trades(), h, time.Since(start)
}

func BenchmarkOrderBook(b *testing.B) {
	for _, mode := range dispatchBenchModes {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			fills, h, elapsed := runOrderBookOnce(b, mode, b.N)
			b.StopTimer()
			if s := elapsed.Seconds(); s > 0 {
				b.ReportMetric(float64(fills)/s, "fills/s")
			}
			b.ReportMetric(float64(h.Percentile(99)), "depth_p99")
		})
	}
}

// TestOrderBookBenchHarness smoke-tests the harness (and RunOrderBook)
// at tiny scale so CI catches bit-rot without a full benchmark run.
func TestOrderBookBenchHarness(t *testing.T) {
	fills, h, _ := runOrderBookOnce(t, core.LabelsFreeze, 2000)
	if fills == 0 {
		t.Fatal("harness produced no fills")
	}
	if h.Count() == 0 {
		t.Fatal("depth histogram empty")
	}
	res, err := RunOrderBook(OrderBookOpts{
		Traders: []int{8},
		Modes:   []core.SecurityMode{core.NoSecurity, core.LabelsFreezeIsolation},
		Ops:     1500,
		Pairs:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series: %+v", res.Series)
	}
	for _, s := range res.Series {
		if len(s.Points) != 1 || s.Points[0].Y <= 0 {
			t.Fatalf("series %s has no fill rate: %+v", s.Name, s.Points)
		}
	}
	// The table must round-trip through the benchjson header parser:
	// render and eyeball the row count.
	if out := res.Format(); len(out) == 0 {
		t.Fatal("empty format")
	}
}
