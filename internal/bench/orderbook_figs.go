package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/trading"
	"repro/internal/workload"
)

// OrderBookOpts parameterise the order-book workload sweep: the
// dark pool clearing a limit/market/cancel order-flow trace through
// the price-time book, per security mode. This is the scenario that
// stresses the per-fill label merges and per-book-mutation isolation
// tax directly, without the pairs-monitor stage in front.
type OrderBookOpts struct {
	// Traders lists the x-axis points (default 16..128).
	Traders []int
	// Modes lists the security configurations (default AllModes).
	Modes []core.SecurityMode
	// Ops is the order-flow length per measurement point (default
	// 30,000).
	Ops int
	// Pairs sizes the symbol universe (default 8 pairs, 16 symbols).
	Pairs int
	// Flow shapes the trace; the Traders field is overridden per
	// point. Zero-value fields take workload defaults.
	Flow workload.FlowConfig
	// Seed fixes the workload.
	Seed int64
}

func (o *OrderBookOpts) defaults() {
	if len(o.Traders) == 0 {
		o.Traders = []int{16, 32, 64, 128}
	}
	if len(o.Modes) == 0 {
		o.Modes = AllModes
	}
	if o.Ops == 0 {
		o.Ops = 30000
	}
	if o.Pairs == 0 {
		o.Pairs = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// RunOrderBook measures dark-pool fill throughput on the order-flow
// workload: fills/s per security mode as the trader population grows.
// The replay driver pushes the trace as fast as the platform accepts
// it; the measurement covers replay plus drain (Quiesce), so the
// number is end-to-end fills per wall-clock second.
// OrderBookShardOpts parameterise the shard-scaling sweep: aggregate
// dark-pool fill throughput on a multi-symbol order flow as the
// broker pool grows, per security mode. Replay runs on several
// publisher lanes so the single replay goroutine is not the ceiling
// the pool is measured against.
type OrderBookShardOpts struct {
	// Shards lists the x-axis points (default 1,2,4,8).
	Shards []int
	// Traders is the fixed trader population (default 48).
	Traders int
	// Modes lists the security configurations (default AllModes).
	Modes []core.SecurityMode
	// Ops is the order-flow length per measurement point (default
	// 60,000).
	Ops int
	// Pairs sizes the symbol universe (default 16 pairs, 32 symbols).
	Pairs int
	// Lanes is the number of concurrent replay drivers (default 4).
	Lanes int
	// Flow shapes the trace; the Traders field is overridden. Zero-
	// value fields take workload defaults.
	Flow workload.FlowConfig
	// Seed fixes the workload.
	Seed int64
}

func (o *OrderBookShardOpts) defaults() {
	if len(o.Shards) == 0 {
		o.Shards = []int{1, 2, 4, 8}
	}
	if o.Traders == 0 {
		o.Traders = 48
	}
	if len(o.Modes) == 0 {
		o.Modes = AllModes
	}
	if o.Ops == 0 {
		o.Ops = 60000
	}
	if o.Pairs == 0 {
		o.Pairs = 16
	}
	if o.Lanes == 0 {
		o.Lanes = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// RunOrderBookShards measures aggregate fills/s as the broker pool
// widens (the `-fig obshard` sweep): the same multi-symbol trace is
// split across Lanes concurrent replay drivers by trader range, so
// matching — not the replay goroutine — is the measured resource.
// Scaling requires hardware parallelism: on a single-core host the
// series stays flat by construction.
func RunOrderBookShards(o OrderBookShardOpts) (Result, error) {
	o.defaults()
	res := Result{
		Figure:  "Order book shard scaling",
		Caption: "aggregate dark-pool fill rate vs broker shard count on the multi-symbol order-flow workload",
	}
	for _, mode := range o.Modes {
		s := Series{Name: mode.String(), Unit: "fills/s"}
		for _, shards := range o.Shards {
			p, err := trading.New(trading.Config{
				Mode:         mode,
				NumTraders:   o.Traders,
				Universe:     workload.NewUniverse(o.Pairs),
				Seed:         o.Seed,
				BrokerShards: shards,
				OrderTTL:     time.Minute,
				QueueCap:     4096,
				Enforcer:     SharedEnforcer(),
			})
			if err != nil {
				return res, err
			}
			flowCfg := o.Flow
			flowCfg.Traders = o.Traders
			flow := workload.NewOrderFlow(p.Universe(), flowCfg, o.Seed+5)
			ops := flow.Take(o.Ops)
			// Partition by trader so each lane publishes disjoint
			// principals; per-symbol ordering across lanes is not
			// preserved, which is fine for a throughput measurement.
			lanes := make([][]workload.OrderOp, o.Lanes)
			for _, op := range ops {
				l := op.Trader * o.Lanes / o.Traders % o.Lanes
				lanes[l] = append(lanes[l], op)
			}
			start := time.Now()
			var wg sync.WaitGroup
			for _, laneOps := range lanes {
				if len(laneOps) == 0 {
					continue
				}
				wg.Add(1)
				go func(laneOps []workload.OrderOp) {
					defer wg.Done()
					p.ReplayOrders(laneOps)
				}(laneOps)
			}
			wg.Wait()
			if !p.Quiesce(60 * time.Second) {
				p.Close()
				return res, fmt.Errorf("obshard point %s/%d did not quiesce", mode, shards)
			}
			elapsed := time.Since(start)
			fills := p.Broker.Trades()
			p.Close()
			s.Points = append(s.Points, Point{X: shards, Y: float64(fills) / elapsed.Seconds()})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// OrderBookJournalOpts parameterise the journal-overhead sweep: the
// order-flow workload with the per-shard crash journal off vs on, per
// security mode. The journal backend is an in-memory FS, so the
// number isolates the matching-thread tax of framing, CRC and
// group-commit hand-off — the part PR 7's ≤15% overhead budget is
// about — rather than disk bandwidth.
type OrderBookJournalOpts struct {
	// Traders lists the x-axis points (default 32, 64).
	Traders []int
	// Modes lists the security configurations (default AllModes).
	Modes []core.SecurityMode
	// Ops is the order-flow length per measurement point (default
	// 30,000).
	Ops int
	// Pairs sizes the symbol universe (default 8 pairs, 16 symbols).
	Pairs int
	// CheckpointEvery sets the snapshot cadence for the journal-on
	// arm (default 4096 records per shard).
	CheckpointEvery int
	// Flow shapes the trace; Traders is overridden per point.
	Flow workload.FlowConfig
	// Seed fixes the workload.
	Seed int64
}

func (o *OrderBookJournalOpts) defaults() {
	if len(o.Traders) == 0 {
		o.Traders = []int{32, 64}
	}
	if len(o.Modes) == 0 {
		o.Modes = AllModes
	}
	if o.Ops == 0 {
		o.Ops = 30000
	}
	if o.Pairs == 0 {
		o.Pairs = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// RunOrderBookJournal measures end-to-end order throughput (replay +
// drain) with journaling off and on (the `-fig objournal` sweep). Two
// series per mode — "<mode> off" and "<mode> on" — so the overhead at
// any point is a same-X division.
func RunOrderBookJournal(o OrderBookJournalOpts) (Result, error) {
	o.defaults()
	res := Result{
		Figure:  "Order book journal overhead",
		Caption: "orders/s on the order-flow workload, crash journal off vs on (in-memory FS, group commit)",
	}
	for _, mode := range o.Modes {
		for _, journaled := range []bool{false, true} {
			name := mode.String() + " off"
			if journaled {
				name = mode.String() + " on"
			}
			s := Series{Name: name, Unit: "orders/s"}
			for _, n := range o.Traders {
				cfg := trading.Config{
					Mode:       mode,
					NumTraders: n,
					Universe:   workload.NewUniverse(o.Pairs),
					Seed:       o.Seed,
					OrderTTL:   time.Minute,
					Enforcer:   SharedEnforcer(),
				}
				if journaled {
					cfg.JournalFS = journal.NewMemFS()
					cfg.JournalNoSync = true
					cfg.JournalCheckpointEvery = o.CheckpointEvery
					cfg.JournalStagingCap = 1 << 15
				}
				p, err := trading.New(cfg)
				if err != nil {
					return res, err
				}
				flowCfg := o.Flow
				flowCfg.Traders = n
				flow := workload.NewOrderFlow(p.Universe(), flowCfg, o.Seed+5)
				ops := flow.Take(o.Ops)
				start := time.Now()
				p.ReplayOrders(ops)
				if !p.Quiesce(30 * time.Second) {
					p.Close()
					return res, fmt.Errorf("objournal point %s/%d did not quiesce", s.Name, n)
				}
				elapsed := time.Since(start)
				p.Close()
				s.Points = append(s.Points, Point{X: n, Y: float64(len(ops)) / elapsed.Seconds()})
			}
			res.Series = append(res.Series, s)
		}
	}
	return res, nil
}

func RunOrderBook(o OrderBookOpts) (Result, error) {
	o.defaults()
	res := Result{
		Figure:  "Order book",
		Caption: "dark-pool fill rate vs number of traders on the order-flow workload",
	}
	for _, mode := range o.Modes {
		s := Series{Name: mode.String(), Unit: "fills/s"}
		for _, n := range o.Traders {
			p, err := trading.New(trading.Config{
				Mode:       mode,
				NumTraders: n,
				Universe:   workload.NewUniverse(o.Pairs),
				Seed:       o.Seed,
				// Flow replay outpaces wall-clock expiry wildly; a
				// long TTL keeps the measurement about matching, not
				// eviction of a backlogged queue.
				OrderTTL: time.Minute,
				Enforcer: SharedEnforcer(),
			})
			if err != nil {
				return res, err
			}
			flowCfg := o.Flow
			flowCfg.Traders = n
			flow := workload.NewOrderFlow(p.Universe(), flowCfg, o.Seed+5)
			ops := flow.Take(o.Ops)
			start := time.Now()
			p.ReplayOrders(ops)
			if !p.Quiesce(30 * time.Second) {
				p.Close()
				return res, fmt.Errorf("order-book point %s/%d did not quiesce", mode, n)
			}
			elapsed := time.Since(start)
			fills := p.Broker.Trades()
			p.Close()
			s.Points = append(s.Points, Point{X: n, Y: float64(fills) / elapsed.Seconds()})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}
