package bench

import (
	"time"

	"repro/internal/baseline"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// BaselineOpts parameterise the Marketcetera-like sweeps (Figures 8–9).
type BaselineOpts struct {
	// ThroughputAgents lists the Figure 8 x-axis (paper: 2–40).
	ThroughputAgents []int
	// LatencyAgents lists the Figure 9 x-axis (paper: 20–100).
	LatencyAgents []int
	// Mode selects process-per-agent (paper-faithful) or in-process
	// agents (ablation isolating serialisation cost from process cost).
	Mode baseline.Mode
	// Duration bounds each Figure 8 measurement (default 2 s).
	Duration time.Duration
	// LatencyRate is the Figure 9 offered rate (paper: 1,000 ev/s).
	LatencyRate float64
	// LatencyTicks bounds the Figure 9 run (default rate·2 s).
	LatencyTicks int
	// UniversePairs overrides the universe size (0 = scale with the
	// agent count). Tiny smoke runs pin a single pair so the two
	// available agents can cross.
	UniversePairs int
	// Seed fixes workloads.
	Seed int64
}

// universe builds the symbol universe for an agent count.
func (o *BaselineOpts) universe(agents int) *workload.Universe {
	if o.UniversePairs > 0 {
		return workload.NewUniverse(o.UniversePairs)
	}
	return workload.UniverseForTraders(agents)
}

func (o *BaselineOpts) defaults() {
	if len(o.ThroughputAgents) == 0 {
		o.ThroughputAgents = []int{2, 5, 10, 20, 30, 40}
	}
	if len(o.LatencyAgents) == 0 {
		o.LatencyAgents = []int{20, 40, 60, 80, 100}
	}
	if o.Duration == 0 {
		o.Duration = 2 * time.Second
	}
	if o.LatencyRate == 0 {
		o.LatencyRate = 1000
	}
	if o.LatencyTicks == 0 {
		o.LatencyTicks = int(o.LatencyRate * 2)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// RunFig8 regenerates Figure 8: maximum supported event rate in the
// Marketcetera-like baseline as a function of the number of traders.
// Every tick is serialised once per agent (no centralised filtering),
// so the feed rate collapses as the population grows.
func RunFig8(o BaselineOpts) (Result, error) {
	o.defaults()
	res := Result{
		Figure:  "Figure 8",
		Caption: "Baseline (Marketcetera-like) max event rate vs number of traders (median of 100ms windows)",
	}
	s := Series{Name: "baseline", Unit: "events/s"}
	for _, n := range o.ThroughputAgents {
		u := o.universe(n)
		h, err := baseline.New(baseline.Config{
			NumAgents: n,
			Mode:      o.Mode,
			Universe:  u,
			Seed:      o.Seed,
		})
		if err != nil {
			return res, err
		}
		th := metrics.NewThroughput()
		stop := make(chan struct{})
		go th.Run(100*time.Millisecond, stop)

		tr := workload.NewTrace(u, o.Seed+3)
		deadline := time.Now().Add(o.Duration)
		for time.Now().Before(deadline) {
			batch := tr.Take(64)
			h.Replay(batch)
			th.Add(64)
		}
		close(stop)
		th.Sample()
		s.Points = append(s.Points, Point{X: n, Y: th.Median()})
		h.Close()
	}
	res.Series = append(res.Series, s)
	return res, nil
}

// RunFig9 regenerates Figure 9: baseline 70th-percentile trade latency
// broken into its contributions — strategy processing, tick propagation
// + processing, and the full tick+order round trip — at a low offered
// rate (the paper used 1,000 events/s "to draw conclusions about
// latency while not being affected by scheduling phenomena").
func RunFig9(o BaselineOpts) (Result, error) {
	o.defaults()
	res := Result{
		Figure:  "Figure 9",
		Caption: "Baseline 70th-percentile latency breakdown vs number of traders (ms)",
	}
	proc := Series{Name: "processing", Unit: "ms"}
	ticksProc := Series{Name: "ticks+processing", Unit: "ms"}
	full := Series{Name: "ticks+orders+processing", Unit: "ms"}
	for _, n := range o.LatencyAgents {
		u := o.universe(n)
		h, err := baseline.New(baseline.Config{
			NumAgents: n,
			Mode:      o.Mode,
			Universe:  u,
			Seed:      o.Seed,
		})
		if err != nil {
			return res, err
		}
		tr := workload.NewTrace(u, o.Seed+3)
		h.ReplayPaced(tr.Take(o.LatencyTicks), o.LatencyRate)
		h.WaitTrades(1, 5*time.Second)
		time.Sleep(50 * time.Millisecond) // drain in-flight orders

		proc.Points = append(proc.Points, Point{X: n, Y: float64(h.ORS.Processing.Percentile(70)) / 1e6})
		ticksProc.Points = append(ticksProc.Points, Point{X: n, Y: float64(h.ORS.TicksProc.Percentile(70)) / 1e6})
		full.Points = append(full.Points, Point{X: n, Y: float64(h.ORS.Full.Percentile(70)) / 1e6})
		h.Close()
	}
	res.Series = append(res.Series, proc, ticksProc, full)
	return res, nil
}
