package bench

// Market-data fanout harness smoke: RunMDFeed at a small subscriber
// count must produce conflated and unbounded series for every
// requested mode with positive sustained delivery — and its built-in
// amortization assertion (label checks == fanned batches × classes)
// must hold, which is what the CI guard pins.

import (
	"testing"

	"repro/internal/core"
)

func TestMDFeedBenchHarness(t *testing.T) {
	res, err := RunMDFeed(MDFeedOpts{
		Subscribers: []int{16},
		Modes:       []core.SecurityMode{core.NoSecurity, core.LabelsFreeze},
		Ops:         1500,
		Traders:     8,
		Workers:     2,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 { // 2 modes × {conflated, unbounded}
		t.Fatalf("series: %d", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Name) > 24 {
			t.Fatalf("series name %q overflows the 24-char table column", s.Name)
		}
		if len(s.Points) != 1 {
			t.Fatalf("%s: points %d", s.Name, len(s.Points))
		}
		if s.Points[0].Y <= 0 {
			t.Fatalf("%s: no sustained delivery: %+v", s.Name, s.Points[0])
		}
	}
	if res.Format() == "" {
		t.Fatal("empty render")
	}
}
