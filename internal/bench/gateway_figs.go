package bench

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/trading"
	"repro/internal/workload"
)

// GatewayOpts parameterise the ingress-gateway sweep: sustained
// orders/s through real loopback sockets as the concurrent session
// count grows, per security mode. Each session is a full protocol
// client — framed binary orders, per-session auth, cumulative acks —
// so the point measures the whole admission path: socket read, CRC
// frame decode, token-bucket admission, bounded ingress queue,
// trader-unit submit, matching, ack write-back.
type GatewayOpts struct {
	// Sessions lists the x-axis points (default 100, 500, 1000).
	Sessions []int
	// Modes lists the security configurations (default AllModes).
	Modes []core.SecurityMode
	// OpsPerSession is the per-client trace length (default 50).
	OpsPerSession int
	// Pairs sizes the symbol universe (default 2 pairs, 4 symbols).
	Pairs int
	// Seed fixes the per-session workload traces.
	Seed int64
}

func (o *GatewayOpts) defaults() {
	if len(o.Sessions) == 0 {
		o.Sessions = []int{100, 500, 1000}
	}
	if len(o.Modes) == 0 {
		o.Modes = AllModes
	}
	if o.OpsPerSession == 0 {
		o.OpsPerSession = 50
	}
	if o.Pairs == 0 {
		o.Pairs = 2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// RunGateway measures the ingress gateway (the `-fig gateway` sweep):
// N concurrent loopback sessions each replay a workload trace through
// the wire protocol, and the point is processed orders (admitted plus
// labeled rejects) per wall-clock second, dial through final ack.
// Each point also verifies the admission ledger (nothing received is
// silently dropped, every shed has its labeled reject event) and the
// platform's conservation and book invariants.
func RunGateway(o GatewayOpts) (Result, error) {
	o.defaults()
	res := Result{
		Figure:  "Ingress gateway",
		Caption: "orders/s through loopback sockets vs concurrent sessions, full admission path per security mode",
	}
	for _, mode := range o.Modes {
		s := Series{Name: shortMode(mode), Unit: "orders/s"}
		for _, n := range o.Sessions {
			y, err := runGatewayPoint(&o, mode, n)
			if err != nil {
				return res, fmt.Errorf("gateway point %s/%d: %w", s.Name, n, err)
			}
			s.Points = append(s.Points, Point{X: n, Y: y})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

func runGatewayPoint(o *GatewayOpts, mode core.SecurityMode, n int) (float64, error) {
	p, err := trading.New(trading.Config{
		Mode:       mode,
		NumTraders: n,
		Universe:   workload.NewUniverse(o.Pairs),
		Seed:       o.Seed,
		// Keep the sampled-trade feedback path out of the accounting.
		AuditSampleEvery: 1 << 30,
		QueueCap:         4096,
		BrokerShards:     4,
		OrderTTL:         time.Minute,
		Enforcer:         SharedEnforcer(),
	})
	if err != nil {
		return 0, err
	}
	defer p.Close()

	ingress := p.NewIngress()
	g := gateway.New(gateway.Config{
		Backend:       ingress,
		IngressQueue:  512,
		OutboundQueue: 2048,
		IdleTimeout:   60 * time.Second,
		MaxSessions:   n + 8,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- g.Serve(ln) }()
	addr := ln.Addr().String()

	var wg sync.WaitGroup
	clients := make([]*gateway.Client, n)
	errs := make([]error, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		flow := workload.NewOrderFlow(p.Universe(), workload.FlowConfig{
			Traders:       1,
			AggressionPct: 55,
		}, o.Seed+int64(i)*101)
		ops := workload.OffsetOrderIDs(flow.Take(o.OpsPerSession), int64(i+1)<<24)
		clients[i] = gateway.NewClient(gateway.ClientConfig{
			Addr:      addr,
			Token:     trading.TraderToken(i),
			Seed:      o.Seed + int64(i),
			IOTimeout: 120 * time.Second,
		})
		wg.Add(1)
		go func(i int, ops []workload.OrderOp) {
			defer wg.Done()
			errs[i] = clients[i].Run(ops)
		}(i, ops)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var processed uint64
	for i, cl := range clients {
		if errs[i] != nil {
			g.Close()
			return 0, fmt.Errorf("session %d: %w", i, errs[i])
		}
		st := cl.Stats()
		if st.Unsent != 0 {
			g.Close()
			return 0, fmt.Errorf("session %d lost %d orders", i, st.Unsent)
		}
		processed += st.Acked + st.Rejected
	}

	st := g.Stats()
	if st.OrdersReceived != st.Admitted+st.Rejected()+st.DupOrders {
		return 0, fmt.Errorf("admission ledger leaks: %+v", st)
	}
	if sheds := st.RateRejects + st.OverflowRejects + st.DrainRejects; ingress.Rejects() != sheds {
		return 0, fmt.Errorf("labeled rejects %d != sheds %d", ingress.Rejects(), sheds)
	}
	if !p.Quiesce(120 * time.Second) {
		return 0, fmt.Errorf("platform did not quiesce")
	}
	if err := g.Close(); err != nil {
		return 0, err
	}
	if err := <-serveErr; err != nil {
		return 0, fmt.Errorf("serve: %w", err)
	}
	if err := p.Broker.CheckConservation(); err != nil {
		return 0, err
	}
	if err := p.Broker.ValidateBooks(); err != nil {
		return 0, err
	}
	return float64(processed) / elapsed.Seconds(), nil
}
