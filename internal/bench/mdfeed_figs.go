package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/mdfeed"
	"repro/internal/trading"
	"repro/internal/workload"
)

// MDFeedOpts parameterise the market-data fanout sweep: sustained
// delivered deltas/s on one symbol's L2 feed as the subscriber
// population grows, conflation on vs off, per security mode. This is
// the headline "heavy traffic" figure — the trader sweeps top out at
// hundreds of consumers; this one targets 10k+ subscribers per
// symbol, which is only affordable because the label check runs once
// per (batch, class) and delivery is a shared-pointer append.
type MDFeedOpts struct {
	// Subscribers lists the x-axis points (default 100, 1000, 10000).
	Subscribers []int
	// Modes lists the security configurations (default AllModes).
	Modes []core.SecurityMode
	// Ops is the order-flow length per measurement point (default
	// 20,000).
	Ops int
	// Pairs sizes the symbol universe (default 1 pair, 2 symbols).
	Pairs int
	// Traders is the order-flow population (default 16).
	Traders int
	// Workers is the consumer poll-loop pool size (default
	// GOMAXPROCS clamped to [1, 8]).
	Workers int
	// Mix shapes the subscriber population (default: workload
	// defaults plus 20% unentitled, so the flow check has a class to
	// refuse).
	Mix workload.SubscriberMix
	// Seed fixes workload and population.
	Seed int64
}

func (o *MDFeedOpts) defaults() {
	if len(o.Subscribers) == 0 {
		o.Subscribers = []int{100, 1000, 10000}
	}
	if len(o.Modes) == 0 {
		o.Modes = AllModes
	}
	if o.Ops == 0 {
		o.Ops = 20000
	}
	if o.Pairs == 0 {
		o.Pairs = 1
	}
	if o.Traders == 0 {
		o.Traders = 16
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
		if o.Workers > 8 {
			o.Workers = 8
		}
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.Mix == (workload.SubscriberMix{}) {
		o.Mix = workload.SubscriberMix{UnentitledPct: 20}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// shortMode compresses mode names so "<mode> conflated" fits the
// Result table's 24-character series column.
func shortMode(m core.SecurityMode) string {
	switch m {
	case core.NoSecurity:
		return "no-sec"
	case core.LabelsFreeze:
		return "l+f"
	case core.LabelsClone:
		return "l+clone"
	case core.LabelsFreezeIsolation:
		return "l+f+iso"
	default:
		return m.String()
	}
}

// RunMDFeed measures the market-data fanout (the `-fig mdfeed`
// sweep): a fast/slow/churning subscriber population polls one
// symbol's feed while the dark pool clears an order-flow trace, and
// the point is total delivered deltas (in-sequence plus recovery)
// per wall-clock second, replay through final drain. Each point also
// verifies the amortization invariant — label checks exactly equal
// fanned-out batches × label classes, independent of the subscriber
// count.
func RunMDFeed(o MDFeedOpts) (Result, error) {
	o.defaults()
	res := Result{
		Figure:  "Market-data fanout",
		Caption: "delivered L2 deltas/s vs subscribers on one symbol's feed, conflation on vs off (unbounded queues)",
	}
	for _, mode := range o.Modes {
		for _, conflate := range []bool{true, false} {
			suffix := " conflated"
			if !conflate {
				suffix = " unbounded"
			}
			s := Series{Name: shortMode(mode) + suffix, Unit: "deltas/s"}
			for _, n := range o.Subscribers {
				y, err := runMDFeedPoint(&o, mode, conflate, n)
				if err != nil {
					return res, fmt.Errorf("mdfeed point %s/%d: %w", s.Name, n, err)
				}
				s.Points = append(s.Points, Point{X: n, Y: y})
			}
			res.Series = append(res.Series, s)
		}
	}
	return res, nil
}

func runMDFeedPoint(o *MDFeedOpts, mode core.SecurityMode, conflate bool, n int) (float64, error) {
	p, err := trading.New(trading.Config{
		Mode:       mode,
		NumTraders: o.Traders,
		Universe:   workload.NewUniverse(o.Pairs),
		Seed:       o.Seed,
		OrderTTL:   time.Minute,
		QueueCap:   4096,
		Enforcer:   SharedEnforcer(),
		MarketData: true,
	})
	if err != nil {
		return 0, err
	}
	defer p.Close()

	sym := p.Universe().Symbols[0]
	feed := p.MD.Feed(sym)
	profiles := workload.Subscribers(n, o.Mix, o.Seed+9)
	subOpts := func(pr workload.SubscriberProfile) mdfeed.SubOptions {
		so := mdfeed.SubOptions{NoConflate: !conflate}
		if pr.Entitled {
			so.Label = p.MDLabel()
		}
		return so
	}
	subs := make([]*mdfeed.Subscription, n)
	for i, pr := range profiles {
		subs[i] = feed.Subscribe(subOpts(pr))
	}
	classes := feed.Classes()

	// Consumer pool: each worker polls its subscriber stripe in
	// rounds, draining per the profile's cadence and churning
	// (unsubscribe + rejoin through snapshot recovery) where the
	// profile says so.
	var applied atomic.Uint64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local uint64
			count := func(mdfeed.Delta) { local++ }
			for round := 1; !stop.Load(); round++ {
				for i := w; i < n; i += o.Workers {
					pr := profiles[i]
					if pr.Kind == workload.SubChurn && round%pr.ChurnEvery == 0 {
						feed.Unsubscribe(subs[i])
						subs[i] = feed.Subscribe(subOpts(pr))
					}
					if round%pr.PollEvery == 0 {
						subs[i].Drain(count)
					}
				}
				applied.Add(local)
				local = 0
			}
			// Final pass: drain whatever the cutover left queued.
			for i := w; i < n; i += o.Workers {
				subs[i].Drain(count)
			}
			applied.Add(local)
		}(w)
	}

	flow := workload.NewOrderFlow(p.Universe(), workload.FlowConfig{
		Traders:       o.Traders,
		AggressionPct: 55,
	}, o.Seed+5)
	ops := flow.Take(o.Ops)
	start := time.Now()
	p.ReplayOrders(ops)
	if !p.Quiesce(120 * time.Second) {
		stop.Store(true)
		wg.Wait()
		return 0, fmt.Errorf("did not quiesce")
	}
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	if feed.Deltas() == 0 {
		return 0, fmt.Errorf("feed emitted no deltas")
	}
	// Amortization invariant: one CanFlowTo per fanned-out batch per
	// label class — never per subscriber.
	fanned := feed.Batches() - feed.LostBatches()
	if mode.CheckLabels() {
		if got, want := feed.LabelChecks(), fanned*uint64(classes); got != want {
			return 0, fmt.Errorf("label checks %d != fanned batches %d × classes %d",
				got, fanned, classes)
		}
	} else if feed.LabelChecks() != 0 {
		return 0, fmt.Errorf("label checks %d with security off", feed.LabelChecks())
	}
	return float64(applied.Load()) / elapsed.Seconds(), nil
}
