package bench

import (
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trading"
	"repro/internal/workload"
)

// DEFConOpts parameterise the DEFCon-side sweeps (Figures 5–7).
type DEFConOpts struct {
	// Traders lists the x-axis points (paper: 200–2,000 step 200).
	Traders []int
	// Modes lists the security configurations (default AllModes).
	Modes []core.SecurityMode
	// Duration bounds each throughput measurement (Figure 5; default
	// 2 s per point).
	Duration time.Duration
	// LatencyRate is the offered tick rate for the latency measurement
	// (Figure 6; default 5,000 events/s).
	LatencyRate float64
	// LatencyTicks bounds the latency run length (default rate·2 s).
	LatencyTicks int
	// MemoryTicks is the replay length before the heap measurement
	// (Figure 7; default 20,000).
	MemoryTicks int
	// TickCache is the exchange cache size for the memory run
	// (default 10,000 — the paper retained ≈300 MiB of ticks).
	TickCache int
	// FixedPairs pins the symbol universe across sweep points (default
	// 128): the tradable world does not grow with the trader count, so
	// popular symbols accumulate monitors as traders join — the load
	// shape behind the paper's declining Figure 5 curves.
	FixedPairs int
	// Seed fixes workloads.
	Seed int64
}

func (o *DEFConOpts) defaults() {
	if len(o.Traders) == 0 {
		o.Traders = []int{200, 400, 600, 800, 1000, 1200, 1400, 1600, 1800, 2000}
	}
	if len(o.Modes) == 0 {
		o.Modes = AllModes
	}
	if o.Duration == 0 {
		o.Duration = 2 * time.Second
	}
	if o.LatencyRate == 0 {
		o.LatencyRate = 5000
	}
	if o.LatencyTicks == 0 {
		o.LatencyTicks = int(o.LatencyRate * 2)
	}
	if o.MemoryTicks == 0 {
		o.MemoryTicks = 20000
	}
	if o.TickCache == 0 {
		o.TickCache = 10000
	}
	if o.FixedPairs == 0 {
		o.FixedPairs = 128
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// newPlatform builds a trading platform for a sweep point.
func (o *DEFConOpts) newPlatform(mode core.SecurityMode, traders, cache int, onTrade func(int64)) (*trading.Platform, error) {
	return trading.New(trading.Config{
		Mode:          mode,
		NumTraders:    traders,
		Universe:      workload.NewUniverse(o.FixedPairs),
		Seed:          o.Seed,
		TickCacheSize: cache,
		Enforcer:      SharedEnforcer(),
		OnTrade:       onTrade,
	})
}

// RunFig5 regenerates Figure 5: maximum supported event rate in DEFCon
// as a function of the number of traders, per security mode. The Stock
// Exchange replays ticks as fast as possible; the result is the median
// of 100 ms window rates.
func RunFig5(o DEFConOpts) (Result, error) {
	o.defaults()
	res := Result{
		Figure:  "Figure 5",
		Caption: "DEFCon max event rate vs number of traders (median of 100ms windows)",
	}
	for _, mode := range o.Modes {
		s := Series{Name: mode.String(), Unit: "events/s"}
		for _, n := range o.Traders {
			p, err := o.newPlatform(mode, n, 256, nil)
			if err != nil {
				return res, err
			}
			th := metrics.NewThroughput()
			stop := make(chan struct{})
			go th.Run(100*time.Millisecond, stop)

			trace := workload.NewTrace(workload.NewUniverse(o.FixedPairs), o.Seed+3)
			deadline := time.Now().Add(o.Duration)
			var run [64]workload.Tick
			for time.Now().Before(deadline) {
				// Publish in batched runs: keeps the deadline check off
				// the per-event path and exercises the same
				// PublishTicks→PublishBatch path the replay driver uses.
				for i := range run {
					run[i] = trace.Next()
				}
				p.Exchange.PublishTicks(run[:])
				th.Add(uint64(len(run)))
			}
			close(stop)
			th.Sample()
			s.Points = append(s.Points, Point{X: n, Y: th.Median()})
			p.Close()
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// RunFig6 regenerates Figure 6: 70th-percentile trade latency vs
// number of traders, per security mode, at a fixed offered tick rate.
// Latency is the difference between the Broker producing a trade and
// the originating tick (§6.2).
func RunFig6(o DEFConOpts) (Result, error) {
	o.defaults()
	res := Result{
		Figure:  "Figure 6",
		Caption: "DEFCon 70th-percentile trade latency vs number of traders (ms)",
	}
	for _, mode := range o.Modes {
		s := Series{Name: mode.String(), Unit: "ms"}
		for _, n := range o.Traders {
			h := metrics.NewHistogram()
			p, err := o.newPlatform(mode, n, 256, func(ns int64) { h.Record(ns) })
			if err != nil {
				return res, err
			}
			trace := workload.NewTrace(workload.NewUniverse(o.FixedPairs), o.Seed+3)
			p.ReplayPaced(trace.Take(o.LatencyTicks), o.LatencyRate)
			p.Quiesce(5 * time.Second)
			s.Points = append(s.Points, Point{X: n, Y: float64(h.Percentile(70)) / 1e6})
			p.Close()
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// RunFig7 regenerates Figure 7: live heap after a fixed replay vs
// number of traders, per security mode. The exchange retains a tick
// cache (the paper's ≈300 MiB cache) and the weaving's per-isolate
// state grows with the trader count.
func RunFig7(o DEFConOpts) (Result, error) {
	o.defaults()
	res := Result{
		Figure:  "Figure 7",
		Caption: "DEFCon occupied memory vs number of traders (MiB)",
	}
	for _, mode := range o.Modes {
		s := Series{Name: mode.String(), Unit: "MiB"}
		for _, n := range o.Traders {
			p, err := o.newPlatform(mode, n, o.TickCache, nil)
			if err != nil {
				return res, err
			}
			trace := workload.NewTrace(workload.NewUniverse(o.FixedPairs), o.Seed+3)
			p.Replay(trace.Take(o.MemoryTicks))
			p.Quiesce(5 * time.Second)
			s.Points = append(s.Points, Point{X: n, Y: metrics.HeapInUseMiB()})
			p.Close()
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}
