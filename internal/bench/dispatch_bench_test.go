package bench

// Dispatch-path benchmarks across all four security modes.
//
// These measure the publish→match→admit→enqueue→consume pipeline at
// the core.System level (label checks, freezing and cloning included),
// complementing the dispatcher-local micro-benchmarks in
// internal/dispatch. Each run reports:
//
//	ns/op     – per published event (inverse throughput)
//	events/s  – publish throughput
//	p99_ms    – 99th-percentile publish→consume latency
//	allocs/op – allocations on the publish path (-benchmem)
//
// Run with:
//
//	go test ./internal/bench -run xxx -bench BenchmarkDispatch -benchmem

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/events"
	"repro/internal/freeze"
	"repro/internal/labels"
	"repro/internal/metrics"
	"repro/internal/units"
)

// dispatchBenchSubscribers is the number of consumer units, each on a
// distinct equality-indexed symbol.
const dispatchBenchSubscribers = 64

// benchSystem assembles a system in the given mode with consumer
// units that drain (and in clone mode recycle) their deliveries,
// recording publish→consume latency.
func benchSystem(tb testing.TB, mode core.SecurityMode) (*core.System, *core.Unit, *metrics.Histogram) {
	tb.Helper()
	sys := core.NewSystem(core.Config{
		Mode:     mode,
		Seed:     1,
		QueueCap: 4096,
		Enforcer: SharedEnforcer(),
	})
	h := metrics.NewHistogram()
	var ready sync.WaitGroup
	for i := 0; i < dispatchBenchSubscribers; i++ {
		sym := fmt.Sprintf("SYM%04d", i)
		ready.Add(1)
		sys.SpawnUnit(fmt.Sprintf("consumer-%d", i), core.UnitConfig{}, func(u *core.Unit) {
			if _, err := u.Subscribe(dispatch.MustFilter(dispatch.KeyEq("body", "symbol", sym))); err != nil {
				panic(err)
			}
			ready.Done()
			// Drain in batches — the consumer idiom the trading units
			// use: one queue synchronisation and one amortised
			// interceptor traversal per burst.
			var buf [32]units.Delivery
			for {
				n, err := u.GetEvents(buf[:])
				if err != nil {
					return
				}
				for k := 0; k < n; k++ {
					h.Record(time.Now().UnixNano() - buf[k].Event.Stamp)
					u.Recycle(buf[k].Event) // no-op outside labels+clone
					buf[k] = units.Delivery{}
				}
			}
		})
	}
	ready.Wait()

	pub := sys.NewUnit("publisher", core.UnitConfig{})
	return sys, pub, h
}

// makeTick builds a tick-shaped event for one of the bench symbols.
func makeTick(pub *core.Unit, i int) *events.Event {
	e := pub.CreateEvent()
	body := freeze.MapOf(
		"symbol", fmt.Sprintf("SYM%04d", i%dispatchBenchSubscribers),
		"price", int64(100+i%50),
		"seq", int64(i),
	)
	if err := pub.AddPart(e, labels.EmptySet, labels.EmptySet, "type", "tick"); err != nil {
		panic(err)
	}
	if err := pub.AddPart(e, labels.EmptySet, labels.EmptySet, "body", body); err != nil {
		panic(err)
	}
	return e
}

// benchModes lists the four security configurations in the paper's
// legend order. The full-isolation mode rides along to keep the sweep
// complete even though its extra cost lives in the API interceptors
// rather than the dispatcher.
var dispatchBenchModes = []core.SecurityMode{
	core.NoSecurity,
	core.LabelsFreeze,
	core.LabelsClone,
	core.LabelsFreezeIsolation,
}

// BenchmarkDispatchPublish measures single-event publishes through
// the full system pipeline in every security mode.
func BenchmarkDispatchPublish(b *testing.B) {
	for _, mode := range dispatchBenchModes {
		b.Run(mode.String(), func(b *testing.B) {
			sys, pub, h := benchSystem(b, mode)
			defer sys.Close()
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if err := pub.Publish(makeTick(pub, i)); err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(start)
			b.StopTimer()
			sys.Close()
			if s := elapsed.Seconds(); s > 0 {
				b.ReportMetric(float64(b.N)/s, "events/s")
			}
			b.ReportMetric(float64(h.Percentile(99))/1e6, "p99_ms")
		})
	}
}

// BenchmarkDispatchPublishBatch measures runs of 64 events through
// PublishBatch — the amortised path a replaying feed uses.
func BenchmarkDispatchPublishBatch(b *testing.B) {
	const run = 64
	for _, mode := range dispatchBenchModes {
		b.Run(mode.String(), func(b *testing.B) {
			sys, pub, h := benchSystem(b, mode)
			defer sys.Close()
			batch := make([]*events.Event, run)
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				for j := range batch {
					batch[j] = makeTick(pub, i*run+j)
				}
				if err := pub.PublishBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(start)
			b.StopTimer()
			sys.Close()
			if s := elapsed.Seconds(); s > 0 {
				b.ReportMetric(float64(b.N*run)/s, "events/s")
			}
			b.ReportMetric(float64(h.Percentile(99))/1e6, "p99_ms")
		})
	}
}

// TestDispatchBenchHarness smoke-tests the harness shape itself so CI
// catches bit-rot without running full benchmarks: publish a small
// burst in every mode and require every consumer subscription to see
// its share.
func TestDispatchBenchHarness(t *testing.T) {
	for _, mode := range dispatchBenchModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			sys, pub, h := benchSystem(t, mode)
			defer sys.Close()
			const n = 256
			for i := 0; i < n; i++ {
				if err := pub.Publish(makeTick(pub, i)); err != nil {
					t.Fatal(err)
				}
			}
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) && h.Count() < n {
				time.Sleep(time.Millisecond)
			}
			if h.Count() != n {
				t.Fatalf("consumed %d of %d deliveries", h.Count(), n)
			}
		})
	}
}
