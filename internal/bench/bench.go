// Package bench regenerates the paper's evaluation figures (§6.2):
// every figure runner sweeps the paper's x-axis (trader/agent count)
// and produces the same series the paper plots. Absolute numbers are
// machine-dependent; the shapes — which mode wins, the relative
// overheads, where the baseline collapses — are the reproduction
// targets (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/isolation"
)

// Point is one measurement of a series.
type Point struct {
	X int     // trader/agent count
	Y float64 // figure-specific unit
}

// Series is one plotted line.
type Series struct {
	Name   string
	Unit   string
	Points []Point
}

// Result is a regenerated figure.
type Result struct {
	Figure  string
	Caption string
	Series  []Series
}

// Format renders the result as an aligned table, one row per x value —
// the textual equivalent of the paper's plot.
func (r Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", r.Figure, r.Caption)
	if len(r.Series) == 0 {
		return b.String()
	}
	// Header. 28-wide columns fit the longest series name
	// ("labels+freeze+isolation off") with the two-space separation
	// the benchjson parser keys on.
	fmt.Fprintf(&b, "%-10s", "x")
	for _, s := range r.Series {
		fmt.Fprintf(&b, " %28s", s.Name)
	}
	fmt.Fprintf(&b, "   (%s)\n", r.Series[0].Unit)
	// Collect x values from the first series (all series share them).
	for i := range r.Series[0].Points {
		fmt.Fprintf(&b, "%-10d", r.Series[0].Points[i].X)
		for _, s := range r.Series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, " %28.2f", s.Points[i].Y)
			} else {
				fmt.Fprintf(&b, " %28s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// AllModes are the four security configurations of Figures 5–7, in the
// paper's legend order.
var AllModes = []core.SecurityMode{
	core.NoSecurity,
	core.LabelsFreeze,
	core.LabelsClone,
	core.LabelsFreezeIsolation,
}

// enforcer caching: the isolation analysis is identical across runs;
// building it once keeps set-up cost out of measured regions.
var (
	enfOnce sync.Once
	enf     *isolation.Enforcer
)

// SharedEnforcer returns the process-wide isolation enforcer.
func SharedEnforcer() *isolation.Enforcer {
	enfOnce.Do(func() {
		enf = isolation.NewEnforcer(isolation.Analyze(isolation.NewJDKCatalog()))
	})
	return enf
}

// AnalysisReport renders the §4.2 static-analysis pipeline counts —
// the reproduction of the paper's target numbers (4,000 static fields,
// 1,200 unit-reachable targets, 52 manual inspections, ...).
func AnalysisReport() string {
	a := isolation.Analyze(isolation.NewJDKCatalog())
	hot := isolation.NewEnforcer(a).HotPathIDs()
	a.ApplyProfile(hot, 6, 9)
	return a.BuildReport().String()
}
