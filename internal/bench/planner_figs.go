package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/trading"
	"repro/internal/workload"
)

// PlannerOpts parameterise the load-aware planner sweep: dark-pool
// fill throughput under a skewed (Zipf) flow landing on a
// deterministically constructed hot shard, with the rebalancing
// planner off versus on, per security mode. Every symbol starts on
// shard 0, so the off run is bound by one shard's matching throughput
// for the whole sweep while the on run is healed by automatic
// migration waves within the first window.
type PlannerOpts struct {
	// Traders is the trader population (default 32).
	Traders int
	// Modes lists the security configurations (default AllModes).
	Modes []core.SecurityMode
	// Ops is the order-flow length per window (default 12,000).
	Ops int
	// Windows is the number of measured flow windows (default 3): the
	// x-axis, so convergence shows as the on-series rising across x.
	Windows int
	// Pairs sizes the symbol universe (default 8 pairs, 16 symbols).
	Pairs int
	// Shards sizes the broker pool (default 4).
	Shards int
	// Skew is the Zipf symbol skew of the flow (default 1.6).
	Skew float64
	// Seed fixes the workload.
	Seed int64
}

func (o *PlannerOpts) defaults() {
	if o.Traders == 0 {
		o.Traders = 32
	}
	if len(o.Modes) == 0 {
		o.Modes = AllModes
	}
	if o.Ops == 0 {
		o.Ops = 12000
	}
	if o.Windows == 0 {
		o.Windows = 3
	}
	if o.Pairs == 0 {
		o.Pairs = 8
	}
	if o.Shards == 0 {
		o.Shards = 4
	}
	if o.Skew == 0 {
		o.Skew = 1.6
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// RunPlanner measures fills/s per flow window (the `-fig planner`
// sweep) twice per mode: "<mode> off" replays the skewed flow against
// the constructed hot shard with no policy layer, "<mode> on" runs
// the same trace with the automatic planner healing the imbalance.
// Fills are bit-identical between the two runs by the migration
// equivalence argument; only the wall-clock differs. On a single-CPU
// host both series are expected flat and equal (shards add no
// parallelism) — the sweep still pins the planner's overhead and that
// its waves actually execute.
func RunPlanner(o PlannerOpts) (Result, error) {
	o.defaults()
	res := Result{
		Figure: "Load-aware rebalancing planner",
		Caption: fmt.Sprintf(
			"dark-pool fill rate per flow window, Zipf skew %.1f onto one hot shard of %d: planner off vs on",
			o.Skew, o.Shards),
	}
	for _, mode := range o.Modes {
		run := func(planner bool) (Series, error) {
			name := shortMode(mode) + " off"
			cfg := trading.Config{
				Mode:         mode,
				NumTraders:   o.Traders,
				Universe:     workload.NewUniverse(o.Pairs),
				Seed:         o.Seed,
				BrokerShards: o.Shards,
				OrderTTL:     time.Minute,
				QueueCap:     4096,
				Enforcer:     SharedEnforcer(),
			}
			if planner {
				name = shortMode(mode) + " on"
				cfg.Planner = trading.PlannerConfig{
					Enable:         true,
					Interval:       20 * time.Millisecond,
					EWMATau:        100 * time.Millisecond,
					HotRatio:       1.4,
					HotStreak:      2,
					MinSamples:     2,
					MinRate:        0.000001,
					SymbolCooldown: 250 * time.Millisecond,
					WaveCooldown:   100 * time.Millisecond,
				}
			}
			s := Series{Name: name, Unit: "fills/s"}
			p, err := trading.New(cfg)
			if err != nil {
				return s, err
			}
			defer p.Close()
			// Construct the hot shard: every symbol onto shard 0, so both
			// runs start from the same degenerate routing.
			for _, sym := range p.Universe().Symbols {
				if err := p.Rebalance.Migrate(sym, 0); err != nil {
					return s, fmt.Errorf("constructing hot shard: %s: %w", sym, err)
				}
			}
			flow := workload.NewOrderFlow(p.Universe(), workload.FlowConfig{
				Traders:       o.Traders,
				AggressionPct: 55,
				CancelPct:     5,
				AmendPct:      5,
				SymbolSkew:    o.Skew,
			}, o.Seed+5)
			trace := flow.Take(o.Windows * o.Ops)
			for w := 0; w < o.Windows; w++ {
				before := p.Broker.Trades()
				start := time.Now()
				p.ReplayOrders(trace[w*o.Ops : (w+1)*o.Ops])
				if !p.Quiesce(60 * time.Second) {
					return s, fmt.Errorf("planner window %d did not quiesce", w)
				}
				elapsed := time.Since(start)
				s.Points = append(s.Points, Point{X: w, Y: float64(p.Broker.Trades()-before) / elapsed.Seconds()})
			}
			if planner && o.Shards > 1 {
				if st := p.Stats(); st.PlannerMoves == 0 {
					return s, fmt.Errorf("planner never migrated off the constructed hot shard (%+v)", st)
				}
			}
			return s, nil
		}
		for _, planner := range []bool{false, true} {
			s, err := run(planner)
			if err != nil {
				return res, fmt.Errorf("planner %s (on=%v): %w", mode, planner, err)
			}
			res.Series = append(res.Series, s)
		}
	}
	return res, nil
}
