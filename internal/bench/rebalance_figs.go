package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/trading"
	"repro/internal/workload"
)

// RebalanceOpts parameterise the live-rebalance sweep: dark-pool fill
// throughput before, during and after migrating the hottest symbol
// between broker shards, per security mode. The "during" window prices
// the hand-off — the freeze fence, the drain, the state transfer and
// the frozen-queue release — against the same flow the steady windows
// clear.
type RebalanceOpts struct {
	// Traders is the trader population (default 32).
	Traders int
	// Modes lists the security configurations (default AllModes).
	Modes []core.SecurityMode
	// Ops is the order-flow length per window (default 20,000).
	Ops int
	// Pairs sizes the symbol universe (default 8 pairs, 16 symbols).
	Pairs int
	// Shards sizes the broker pool (default 4).
	Shards int
	// Flow shapes the trace; the Traders field is overridden. Zero-
	// value fields take workload defaults.
	Flow workload.FlowConfig
	// Seed fixes the workload.
	Seed int64
}

func (o *RebalanceOpts) defaults() {
	if o.Traders == 0 {
		o.Traders = 32
	}
	if len(o.Modes) == 0 {
		o.Modes = AllModes
	}
	if o.Ops == 0 {
		o.Ops = 20000
	}
	if o.Pairs == 0 {
		o.Pairs = 8
	}
	if o.Shards == 0 {
		o.Shards = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// RunRebalance measures fills/s across three equal flow windows (the
// `-fig rebalance` sweep): X=0 runs on the home routing, X=1 replays
// while the Rebalancer migrates the trace's hottest symbol to another
// shard mid-window, X=2 runs entirely on the migrated routing. Orders
// for the migrating symbol park in the freeze queue rather than
// dropping, so the X=1 point shows the hand-off as a throughput dip,
// never as lost flow.
func RunRebalance(o RebalanceOpts) (Result, error) {
	o.defaults()
	res := Result{
		Figure:  "Live shard rebalance",
		Caption: "dark-pool fill rate before (x=0), during (x=1) and after (x=2) migrating the hot symbol between shards",
	}
	for _, mode := range o.Modes {
		p, err := trading.New(trading.Config{
			Mode:         mode,
			NumTraders:   o.Traders,
			Universe:     workload.NewUniverse(o.Pairs),
			Seed:         o.Seed,
			BrokerShards: o.Shards,
			OrderTTL:     time.Minute,
			QueueCap:     4096,
			Enforcer:     SharedEnforcer(),
		})
		if err != nil {
			return res, err
		}
		flowCfg := o.Flow
		flowCfg.Traders = o.Traders
		flow := workload.NewOrderFlow(p.Universe(), flowCfg, o.Seed+5)
		trace := flow.Take(3 * o.Ops)

		// The hottest symbol of the trace is the one whose hand-off
		// freezes the most in-flight interest.
		counts := map[string]int{}
		for i := range trace {
			counts[trace[i].Symbol]++
		}
		var hot string
		for sym, n := range counts {
			if hot == "" || n > counts[hot] || (n == counts[hot] && sym < hot) {
				hot = sym
			}
		}

		window := func(ops []workload.OrderOp, migrate bool) (float64, error) {
			before := p.Broker.Trades()
			start := time.Now()
			if migrate {
				done := make(chan struct{})
				go func() {
					defer close(done)
					p.ReplayOrders(ops)
				}()
				dst := (p.RouteOf(hot) + 1) % o.Shards
				if err := p.Rebalance.Migrate(hot, dst); err != nil {
					return 0, err
				}
				<-done
			} else {
				p.ReplayOrders(ops)
			}
			if !p.Quiesce(60 * time.Second) {
				return 0, fmt.Errorf("rebalance window did not quiesce")
			}
			elapsed := time.Since(start)
			return float64(p.Broker.Trades()-before) / elapsed.Seconds(), nil
		}

		s := Series{Name: shortMode(mode), Unit: "fills/s"}
		for w := 0; w < 3; w++ {
			y, err := window(trace[w*o.Ops:(w+1)*o.Ops], w == 1)
			if err != nil {
				p.Close()
				return res, fmt.Errorf("rebalance point %s/%d: %w", mode, w, err)
			}
			s.Points = append(s.Points, Point{X: w, Y: y})
		}
		if got := p.Rebalance.Migrations(); got != 1 {
			p.Close()
			return res, fmt.Errorf("rebalance %s: %d migrations, want 1", mode, got)
		}
		p.Close()
		res.Series = append(res.Series, s)
	}
	return res, nil
}
