package bench

import (
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
)

// TestMain lets figure runs host baseline agent subprocesses.
func TestMain(m *testing.M) {
	baseline.MaybeRunAgent()
	os.Exit(m.Run())
}

// tinyDEFCon keeps smoke runs fast.
func tinyDEFCon() DEFConOpts {
	return DEFConOpts{
		Traders:      []int{8, 16},
		Modes:        []core.SecurityMode{core.NoSecurity, core.LabelsFreeze},
		Duration:     200 * time.Millisecond,
		LatencyRate:  2000,
		LatencyTicks: 600,
		MemoryTicks:  500,
		TickCache:    256,
		FixedPairs:   2, // tiny universe: spikes occur within the short runs
	}
}

func TestRunFig5Smoke(t *testing.T) {
	res, err := RunFig5(tinyDEFCon())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != 2 {
			t.Fatalf("%s points = %d", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Fatalf("%s@%d throughput %f", s.Name, p.X, p.Y)
			}
		}
	}
	if out := res.Format(); !strings.Contains(out, "Figure 5") {
		t.Fatal("Format missing header")
	}
}

func TestRunFig6Smoke(t *testing.T) {
	res, err := RunFig6(tinyDEFCon())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		for _, p := range s.Points {
			if p.Y < 0 || p.Y > 60000 {
				t.Fatalf("%s@%d latency %f ms", s.Name, p.X, p.Y)
			}
			if p.Y == 0 {
				t.Fatalf("%s@%d zero latency: no trades measured", s.Name, p.X)
			}
		}
	}
}

func TestRunFig7Smoke(t *testing.T) {
	res, err := RunFig7(tinyDEFCon())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Fatalf("%s@%d memory %f", s.Name, p.X, p.Y)
			}
		}
	}
}

func TestRunFig8Smoke(t *testing.T) {
	res, err := RunFig8(BaselineOpts{
		ThroughputAgents: []int{2, 4},
		Mode:             baseline.InProcess,
		Duration:         200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 || len(res.Series[0].Points) != 2 {
		t.Fatalf("bad shape: %+v", res.Series)
	}
	for _, p := range res.Series[0].Points {
		if p.Y <= 0 {
			t.Fatalf("agents=%d throughput %f", p.X, p.Y)
		}
	}
}

func TestRunFig9Smoke(t *testing.T) {
	res, err := RunFig9(BaselineOpts{
		LatencyAgents: []int{2, 4},
		Mode:          baseline.InProcess,
		LatencyRate:   2000,
		LatencyTicks:  800,
		UniversePairs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d, want 3 (the breakdown)", len(res.Series))
	}
	// The decomposition must be ordered: processing ≤ ticks+processing
	// ≤ full, at every x (within histogram error).
	for i := range res.Series[0].Points {
		p := res.Series[0].Points[i].Y
		tp := res.Series[1].Points[i].Y
		full := res.Series[2].Points[i].Y
		if p > tp*1.5 || tp > full*1.5 {
			t.Fatalf("breakdown disordered at x=%d: %f %f %f",
				res.Series[0].Points[i].X, p, tp, full)
		}
	}
}

func TestAnalysisReport(t *testing.T) {
	rep := AnalysisReport()
	for _, want := range []string{"unit-reachable", "profiled-whitelisted", "intercepted"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestSharedEnforcerSingleton(t *testing.T) {
	if SharedEnforcer() != SharedEnforcer() {
		t.Fatal("SharedEnforcer not cached")
	}
}

func TestFormatHandlesRaggedSeries(t *testing.T) {
	r := Result{
		Figure:  "X",
		Caption: "c",
		Series: []Series{
			{Name: "a", Unit: "u", Points: []Point{{1, 1}, {2, 2}}},
			{Name: "b", Unit: "u", Points: []Point{{1, 1}}},
		},
	}
	out := r.Format()
	if !strings.Contains(out, "-") {
		t.Fatal("missing point not rendered as dash")
	}
	if (Result{Figure: "E", Caption: "c"}).Format() == "" {
		t.Fatal("empty result renders nothing")
	}
}
