package freeze

// Property-based tests of the freezing invariants.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// tree is a generated container tree description: node kinds by level.
type tree struct {
	// Ops is a sequence of build instructions; each entry selects a
	// container kind (0=list, 1=map) and a scalar payload.
	Ops []uint8
}

// Generate implements quick.Generator.
func (tree) Generate(r *rand.Rand, _ int) reflect.Value {
	n := 1 + r.Intn(6)
	t := tree{Ops: make([]uint8, n)}
	for i := range t.Ops {
		t.Ops[i] = uint8(r.Intn(4))
	}
	return reflect.ValueOf(t)
}

// build materialises the tree: a chain of nested containers with the
// leaf-most first. It returns the root and every container created.
func (t tree) build() (Value, []Freezable) {
	var all []Freezable
	var cur Value = "leaf"
	for _, op := range t.Ops {
		switch op % 2 {
		case 0:
			l := MustList(cur)
			all = append(all, l)
			cur = l
		default:
			m := NewMap()
			_ = m.Put("child", cur)
			all = append(all, m)
			cur = m
		}
	}
	return cur, all
}

// TestQuickFreezeRootFreezesEverything: freezing the root container
// transitively freezes every descendant, however the tree was built.
func TestQuickFreezeRootFreezesEverything(t *testing.T) {
	f := func(tr tree) bool {
		root, all := tr.build()
		FreezeValue(root)
		for _, c := range all {
			if !c.Frozen() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickCloneIsUnfrozenAndDisjoint: cloning a frozen tree yields a
// mutable tree that shares no frozen state with the original.
func TestQuickCloneIsUnfrozenAndDisjoint(t *testing.T) {
	f := func(tr tree) bool {
		root, _ := tr.build()
		FreezeValue(root)
		clone := CloneValue(root)
		cf, ok := clone.(Freezable)
		if !ok {
			return clone == root // scalar roots clone to themselves
		}
		if cf.Frozen() {
			return false
		}
		// Mutating the clone must succeed; the original stays frozen.
		switch c := clone.(type) {
		case *List:
			if err := c.Append("x"); err != nil {
				return false
			}
		case *Map:
			if err := c.Put("x", "y"); err != nil {
				return false
			}
		}
		orig := root.(Freezable)
		return orig.Frozen()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickFrozenRejectsAllMutations: after freezing, every mutating
// operation on every container in the tree fails.
func TestQuickFrozenRejectsAllMutations(t *testing.T) {
	f := func(tr tree) bool {
		root, all := tr.build()
		FreezeValue(root)
		for _, c := range all {
			switch x := c.(type) {
			case *List:
				if x.Append("z") == nil {
					return false
				}
				if x.Set(0, "z") == nil {
					return false
				}
			case *Map:
				if x.Put("z", 1) == nil {
					return false
				}
				if x.Delete("child") == nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
