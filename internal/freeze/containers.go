package freeze

import (
	"fmt"
	"sort"
	"sync"
)

// List is an ordered, freezable sequence of Values — the freezable
// analogue of a Java ArrayList restricted to shareable contents.
// The zero value is an empty, mutable list.
type List struct {
	base
	mu    sync.RWMutex // guards items
	items []Value
}

// NewList returns a list seeded with the given values.
func NewList(vs ...Value) (*List, error) {
	l := &List{}
	for _, v := range vs {
		if err := l.Append(v); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// MustList is NewList that panics on a disallowed value; convenient in
// unit code whose value types are statically known.
func MustList(vs ...Value) *List {
	l, err := NewList(vs...)
	if err != nil {
		panic(err)
	}
	return l
}

// Append adds v to the end of the list.
func (l *List) Append(v Value) error {
	if err := CheckValue(v); err != nil {
		return err
	}
	if err := l.checkMutable(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	attachValue(v, l.governingFlags())
	l.items = append(l.items, v)
	return nil
}

// Set replaces the element at index i.
func (l *List) Set(i int, v Value) error {
	if err := CheckValue(v); err != nil {
		return err
	}
	if err := l.checkMutable(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if i < 0 || i >= len(l.items) {
		return fmt.Errorf("freeze: list index %d out of range [0,%d)", i, len(l.items))
	}
	attachValue(v, l.governingFlags())
	l.items[i] = v
	return nil
}

// Get returns the element at index i and whether it exists.
func (l *List) Get(i int) (Value, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if i < 0 || i >= len(l.items) {
		return nil, false
	}
	return l.items[i], true
}

// Len returns the number of elements.
func (l *List) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.items)
}

// Each calls fn for every element in order; fn returning false stops
// the iteration.
func (l *List) Each(fn func(i int, v Value) bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for i, v := range l.items {
		if !fn(i, v) {
			return
		}
	}
}

// attachFlag subscribes the list and, transitively, its current
// elements to an additional governing flag.
func (l *List) attachFlag(f *Flag) {
	l.addFlag(f)
	l.mu.RLock()
	defer l.mu.RUnlock()
	for _, v := range l.items {
		attachValue(v, []*Flag{f})
	}
}

// CloneValue returns a deep, unfrozen copy of the list.
func (l *List) CloneValue() Value {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := &List{items: make([]Value, len(l.items))}
	for i, v := range l.items {
		cv := CloneValue(v)
		attachValue(cv, []*Flag{&out.own})
		out.items[i] = cv
	}
	return out
}

// Map is a freezable string-keyed dictionary — the shape of the
// key/value event payloads common in event processing (§2.1).
// The zero value is an empty, mutable map.
type Map struct {
	base
	mu sync.RWMutex // guards kv
	kv map[string]Value
}

// NewMap returns an empty freezable map.
func NewMap() *Map { return &Map{} }

// MapOf builds a map from alternating key/value pairs; it panics on a
// non-string key, a disallowed value or an odd pair count.
func MapOf(pairs ...Value) *Map {
	if len(pairs)%2 != 0 {
		panic("freeze: MapOf requires an even number of arguments")
	}
	m := NewMap()
	for i := 0; i < len(pairs); i += 2 {
		k, ok := pairs[i].(string)
		if !ok {
			panic(fmt.Sprintf("freeze: MapOf key %d is %T, want string", i/2, pairs[i]))
		}
		if err := m.Put(k, pairs[i+1]); err != nil {
			panic(err)
		}
	}
	return m
}

// Put stores v under key k.
func (m *Map) Put(k string, v Value) error {
	if err := CheckValue(v); err != nil {
		return err
	}
	if err := m.checkMutable(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.kv == nil {
		m.kv = make(map[string]Value)
	}
	attachValue(v, m.governingFlags())
	m.kv[k] = v
	return nil
}

// Delete removes key k.
func (m *Map) Delete(k string) error {
	if err := m.checkMutable(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.kv, k)
	return nil
}

// Get returns the value stored under k and whether it exists.
func (m *Map) Get(k string) (Value, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	v, ok := m.kv[k]
	return v, ok
}

// GetString returns the string stored under k, or "" if absent or not
// a string.
func (m *Map) GetString(k string) string {
	if v, ok := m.Get(k); ok {
		if s, ok := v.(string); ok {
			return s
		}
	}
	return ""
}

// GetInt returns the int64 stored under k (accepting any integer kind),
// or 0 if absent.
func (m *Map) GetInt(k string) int64 {
	v, ok := m.Get(k)
	if !ok {
		return 0
	}
	switch x := v.(type) {
	case int:
		return int64(x)
	case int8:
		return int64(x)
	case int16:
		return int64(x)
	case int32:
		return int64(x)
	case int64:
		return x
	case uint:
		return int64(x)
	case uint8:
		return int64(x)
	case uint16:
		return int64(x)
	case uint32:
		return int64(x)
	case uint64:
		return int64(x)
	default:
		return 0
	}
}

// GetFloat returns the float64 stored under k, or 0.
func (m *Map) GetFloat(k string) float64 {
	v, ok := m.Get(k)
	if !ok {
		return 0
	}
	switch x := v.(type) {
	case float64:
		return x
	case float32:
		return float64(x)
	default:
		return 0
	}
}

// Len returns the number of keys.
func (m *Map) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.kv)
}

// Keys returns the keys in sorted order.
func (m *Map) Keys() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.kv))
	for k := range m.kv {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Each calls fn for every key/value pair in sorted key order; fn
// returning false stops the iteration.
func (m *Map) Each(fn func(k string, v Value) bool) {
	for _, k := range m.Keys() {
		v, ok := m.Get(k)
		if !ok {
			continue
		}
		if !fn(k, v) {
			return
		}
	}
}

// attachFlag subscribes the map and, transitively, its current values
// to an additional governing flag.
func (m *Map) attachFlag(f *Flag) {
	m.addFlag(f)
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, v := range m.kv {
		attachValue(v, []*Flag{f})
	}
}

// CloneValue returns a deep, unfrozen copy of the map.
func (m *Map) CloneValue() Value {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := &Map{kv: make(map[string]Value, len(m.kv))}
	for k, v := range m.kv {
		cv := CloneValue(v)
		attachValue(cv, []*Flag{&out.own})
		out.kv[k] = cv
	}
	return out
}

// Bytes is a freezable byte buffer, the shareable stand-in for []byte
// payloads (raw []byte is mutable and therefore not an allowed part
// value). The zero value is an empty, mutable buffer.
type Bytes struct {
	base
	mu  sync.RWMutex
	buf []byte
}

// NewBytes returns a buffer initialised with a copy of b.
func NewBytes(b []byte) *Bytes {
	return &Bytes{buf: append([]byte(nil), b...)}
}

// Write appends p to the buffer, implementing io.Writer while mutable.
func (b *Bytes) Write(p []byte) (int, error) {
	if err := b.checkMutable(); err != nil {
		return 0, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf = append(b.buf, p...)
	return len(p), nil
}

// SetByte stores c at offset i.
func (b *Bytes) SetByte(i int, c byte) error {
	if err := b.checkMutable(); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if i < 0 || i >= len(b.buf) {
		return fmt.Errorf("freeze: byte index %d out of range [0,%d)", i, len(b.buf))
	}
	b.buf[i] = c
	return nil
}

// Len returns the buffer length.
func (b *Bytes) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.buf)
}

// Snapshot returns a copy of the contents. (Handing out the internal
// slice would defeat freezing.)
func (b *Bytes) Snapshot() []byte {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return append([]byte(nil), b.buf...)
}

// attachFlag subscribes the buffer to an additional governing flag.
func (b *Bytes) attachFlag(f *Flag) { b.addFlag(f) }

// CloneValue returns a deep, unfrozen copy of the buffer.
func (b *Bytes) CloneValue() Value {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return &Bytes{buf: append([]byte(nil), b.buf...)}
}

// Compile-time interface checks.
var (
	_ Freezable = (*List)(nil)
	_ Freezable = (*Map)(nil)
	_ Freezable = (*Bytes)(nil)
)
