// Package freeze implements DEFCon's zero-copy sharing discipline for
// event data (paper §5, "Freezing shared objects").
//
// Units exchange events without serialisation or deep copies by only
// ever sharing immutable data. Go scalars and strings are immutable
// already; for structured data this package provides Freezable
// containers. Before an event is dispatched, the system freezes every
// part; from then on any mutating operation fails.
//
// Freezing a container is O(1): contained Freezable objects hold a
// reference to the container's frozen flag rather than being visited.
// The cost moves to mutation, which checks one flag per containing
// collection — exactly the trade-off described in the paper.
package freeze

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/tags"
)

// ErrFrozen is returned by mutating operations on frozen objects.
var ErrFrozen = errors.New("freeze: object is frozen")

// ErrBadValue is returned when a value of a disallowed type is offered
// as event-part data.
var ErrBadValue = errors.New("freeze: value type not allowed in event parts")

// Value is any datum storable in an event part: an allowed immutable
// scalar (see AllowedValue) or a Freezable container.
type Value = any

// Flag is a shared frozen marker. Containers own one Flag; contained
// Freezable objects keep references to the flags of every container
// they belong to.
type Flag struct {
	frozen atomic.Bool
}

// Set marks the flag frozen. Freezing is irreversible.
func (f *Flag) Set() { f.frozen.Store(true) }

// IsSet reports whether the flag is frozen.
func (f *Flag) IsSet() bool { return f.frozen.Load() }

// Freezable is the interface of mutable containers that can be frozen
// in constant time. Only types in this package implement it: the paper
// restricts part contents to "a subset of types ... either immutable or
// extend a package-private Freezable base class", and keeping the
// attachment hooks unexported gives the same guarantee here.
type Freezable interface {
	// Freeze irreversibly forbids further mutation. O(1).
	Freeze()
	// Frozen reports whether this object, or any collection containing
	// it, has been frozen.
	Frozen() bool
	// CloneValue returns a deep, unfrozen copy with fresh flags. Used
	// by the labels+clone security mode, which copies event data per
	// delivery instead of sharing frozen objects.
	CloneValue() Value

	// attachFlag subscribes the object (and, transitively, its
	// children) to an additional governing flag. Unexported: only
	// containers in this package may attach.
	attachFlag(f *Flag)
}

// base carries the shared freezing machinery for container types.
type base struct {
	own Flag
	mu  sync.Mutex // guards attached
	// attached holds the flags of every collection this object has been
	// inserted into. Mutation checks are O(len(attached)+1).
	attached []*Flag
}

func (b *base) Freeze() { b.own.Set() }

func (b *base) Frozen() bool {
	if b.own.IsSet() {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, f := range b.attached {
		if f.IsSet() {
			return true
		}
	}
	return false
}

// checkMutable returns ErrFrozen if the object or any containing
// collection is frozen.
func (b *base) checkMutable() error {
	if b.Frozen() {
		return ErrFrozen
	}
	return nil
}

func (b *base) addFlag(f *Flag) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, have := range b.attached {
		if have == f {
			return
		}
	}
	b.attached = append(b.attached, f)
}

// governingFlags returns own + attached flags; used when a container is
// itself inserted into another container, so that freezing the outer
// container transitively governs grandchildren.
func (b *base) governingFlags() []*Flag {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*Flag, 0, len(b.attached)+1)
	out = append(out, &b.own)
	out = append(out, b.attached...)
	return out
}

// AllowedValue reports whether v may be stored in an event part:
// nil, Go immutable scalars, strings, tags.Tag (tag references are
// transmittable objects, §3.1.3), or a Freezable container.
func AllowedValue(v Value) bool {
	switch v.(type) {
	case nil, bool,
		int, int8, int16, int32, int64,
		uint, uint8, uint16, uint32, uint64,
		float32, float64,
		string,
		tags.Tag:
		return true
	case Freezable:
		return true
	default:
		return false
	}
}

// CheckValue returns ErrBadValue (wrapped with the offending type) if v
// is not an allowed part value.
func CheckValue(v Value) error {
	if !AllowedValue(v) {
		return fmt.Errorf("%w: %T", ErrBadValue, v)
	}
	return nil
}

// FreezeValue freezes v if it is Freezable; immutable values need no
// action. O(1) in all cases.
func FreezeValue(v Value) {
	if f, ok := v.(Freezable); ok {
		f.Freeze()
	}
}

// FrozenValue reports whether v is safe to share: immutable scalars
// always are; Freezable values must have been frozen.
func FrozenValue(v Value) bool {
	if f, ok := v.(Freezable); ok {
		return f.Frozen()
	}
	return true
}

// CloneValue deep-copies v. Immutable scalars are returned as is,
// except strings, which are copied byte-for-byte: the labels+clone mode
// exists to measure the cost MVM-style per-isolate copying would incur,
// and payload strings dominate event data, so eliding their copy would
// understate it.
func CloneValue(v Value) Value {
	switch x := v.(type) {
	case Freezable:
		return x.CloneValue()
	case string:
		return cloneString(x)
	default:
		return v
	}
}

// cloneString forces a fresh allocation of s's bytes.
func cloneString(s string) string {
	if s == "" {
		return ""
	}
	return string(append([]byte(nil), s...))
}

// attachValue subscribes v (if Freezable) to all governing flags of the
// inserting container.
func attachValue(v Value, flags []*Flag) {
	f, ok := v.(Freezable)
	if !ok {
		return
	}
	for _, fl := range flags {
		f.attachFlag(fl)
	}
}
