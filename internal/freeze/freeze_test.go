package freeze

import (
	"errors"
	"testing"

	"repro/internal/tags"
)

func TestAllowedValues(t *testing.T) {
	store := tags.NewStore(1)
	ok := []Value{
		nil, true, 1, int8(1), int16(1), int32(1), int64(1),
		uint(1), uint8(1), uint16(1), uint32(1), uint64(1),
		float32(1), float64(1), "s", store.Create("t", "u"),
		NewMap(), MustList(), NewBytes(nil),
	}
	for _, v := range ok {
		if err := CheckValue(v); err != nil {
			t.Errorf("CheckValue(%T) = %v, want nil", v, err)
		}
	}
	bad := []Value{[]byte("raw"), map[string]int{}, struct{}{}, &struct{}{}, make(chan int)}
	for _, v := range bad {
		if err := CheckValue(v); !errors.Is(err, ErrBadValue) {
			t.Errorf("CheckValue(%T) = %v, want ErrBadValue", v, err)
		}
	}
}

func TestMapFreezeStopsMutation(t *testing.T) {
	m := NewMap()
	if err := m.Put("k", "v"); err != nil {
		t.Fatalf("Put: %v", err)
	}
	m.Freeze()
	if !m.Frozen() {
		t.Fatal("Frozen false after Freeze")
	}
	if err := m.Put("k2", "v2"); !errors.Is(err, ErrFrozen) {
		t.Fatalf("Put after freeze = %v, want ErrFrozen", err)
	}
	if err := m.Delete("k"); !errors.Is(err, ErrFrozen) {
		t.Fatalf("Delete after freeze = %v, want ErrFrozen", err)
	}
	if got := m.GetString("k"); got != "v" {
		t.Fatalf("read after freeze = %q, want v", got)
	}
}

func TestListFreezeStopsMutation(t *testing.T) {
	l := MustList("a", "b")
	l.Freeze()
	if err := l.Append("c"); !errors.Is(err, ErrFrozen) {
		t.Fatalf("Append after freeze = %v", err)
	}
	if err := l.Set(0, "z"); !errors.Is(err, ErrFrozen) {
		t.Fatalf("Set after freeze = %v", err)
	}
	if v, ok := l.Get(1); !ok || v != "b" {
		t.Fatalf("Get after freeze = %v,%v", v, ok)
	}
}

func TestBytesFreezeStopsMutation(t *testing.T) {
	b := NewBytes([]byte("abc"))
	if _, err := b.Write([]byte("d")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	b.Freeze()
	if _, err := b.Write([]byte("e")); !errors.Is(err, ErrFrozen) {
		t.Fatalf("Write after freeze = %v", err)
	}
	if err := b.SetByte(0, 'z'); !errors.Is(err, ErrFrozen) {
		t.Fatalf("SetByte after freeze = %v", err)
	}
	if string(b.Snapshot()) != "abcd" {
		t.Fatalf("Snapshot = %q", b.Snapshot())
	}
}

func TestCollectionFreezeGovernsElements(t *testing.T) {
	inner := NewMap()
	if err := inner.Put("x", 1); err != nil {
		t.Fatal(err)
	}
	outer := MustList(inner)
	// Freezing the collection freezes the element in O(1) via the
	// shared flag: the element was never visited.
	outer.Freeze()
	if !inner.Frozen() {
		t.Fatal("element not frozen by collection freeze")
	}
	if err := inner.Put("y", 2); !errors.Is(err, ErrFrozen) {
		t.Fatalf("element mutation after collection freeze = %v", err)
	}
}

func TestElementFreezeDoesNotFreezeCollection(t *testing.T) {
	inner := NewMap()
	outer := MustList(inner)
	inner.Freeze()
	if outer.Frozen() {
		t.Fatal("collection frozen by element freeze")
	}
	if err := outer.Append("more"); err != nil {
		t.Fatalf("collection mutation after element freeze: %v", err)
	}
}

func TestNestedCollectionsPropagateFlags(t *testing.T) {
	leaf := NewMap()
	mid := MustList(leaf)
	top := MustList(mid)
	top.Freeze()
	if !mid.Frozen() || !leaf.Frozen() {
		t.Fatal("grandchild not governed by top-level freeze")
	}
	if err := leaf.Put("k", "v"); !errors.Is(err, ErrFrozen) {
		t.Fatalf("grandchild mutation = %v", err)
	}
}

func TestLateInsertionIntoFrozenPathFails(t *testing.T) {
	top := MustList()
	top.Freeze()
	if err := top.Append(NewMap()); !errors.Is(err, ErrFrozen) {
		t.Fatalf("insert into frozen collection = %v", err)
	}
}

func TestAttachAfterBuildGovernsExistingChildren(t *testing.T) {
	leaf := NewMap()
	mid := MustList(leaf) // leaf attached to mid
	top := MustList()
	if err := top.Append(mid); err != nil { // mid (and leaf) must inherit top's flag
		t.Fatal(err)
	}
	top.Freeze()
	if !leaf.Frozen() {
		t.Fatal("pre-existing grandchild missed flag propagation")
	}
}

func TestFreezeValueHelpers(t *testing.T) {
	m := NewMap()
	if FrozenValue(m) {
		t.Fatal("unfrozen map reported frozen")
	}
	FreezeValue(m)
	if !FrozenValue(m) {
		t.Fatal("map not frozen by FreezeValue")
	}
	// Immutables are always shareable.
	if !FrozenValue("str") || !FrozenValue(42) || !FrozenValue(nil) {
		t.Fatal("immutable reported unfrozen")
	}
	FreezeValue("str") // must not panic
}

func TestCloneValueDeepCopies(t *testing.T) {
	inner := NewMap()
	if err := inner.Put("n", int64(1)); err != nil {
		t.Fatal(err)
	}
	l := MustList(inner, "s")
	l.Freeze()

	c := CloneValue(l).(*List)
	if c.Frozen() {
		t.Fatal("clone inherited frozen state")
	}
	ci, _ := c.Get(0)
	cm := ci.(*Map)
	if cm.Frozen() {
		t.Fatal("cloned child frozen")
	}
	if err := cm.Put("n", int64(2)); err != nil {
		t.Fatalf("mutating clone child: %v", err)
	}
	if inner.GetInt("n") != 1 {
		t.Fatal("clone shares storage with original")
	}
	// Cloned child must be governed by the clone, not the original.
	c.Freeze()
	if err := cm.Put("z", 0); !errors.Is(err, ErrFrozen) {
		t.Fatal("cloned child not governed by clone's flag")
	}
}

func TestCloneValueCopiesStrings(t *testing.T) {
	s := "payload"
	c := CloneValue(s).(string)
	if c != s {
		t.Fatal("string clone changed value")
	}
	if CloneValue("").(string) != "" {
		t.Fatal("empty string clone wrong")
	}
}

func TestMapAccessors(t *testing.T) {
	m := MapOf("s", "str", "i", int64(7), "f", 2.5, "u", uint32(9))
	if m.GetString("s") != "str" || m.GetString("i") != "" || m.GetString("missing") != "" {
		t.Fatal("GetString wrong")
	}
	if m.GetInt("i") != 7 || m.GetInt("u") != 9 || m.GetInt("s") != 0 {
		t.Fatal("GetInt wrong")
	}
	if m.GetFloat("f") != 2.5 || m.GetFloat("s") != 0 {
		t.Fatal("GetFloat wrong")
	}
	if m.Len() != 4 {
		t.Fatalf("Len = %d", m.Len())
	}
	keys := m.Keys()
	if len(keys) != 4 || keys[0] != "f" {
		t.Fatalf("Keys = %v", keys)
	}
	var seen int
	m.Each(func(k string, v Value) bool { seen++; return true })
	if seen != 4 {
		t.Fatalf("Each visited %d", seen)
	}
	seen = 0
	m.Each(func(k string, v Value) bool { seen++; return false })
	if seen != 1 {
		t.Fatal("Each ignored early stop")
	}
}

func TestMapOfPanics(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("odd args", func() { MapOf("k") })
	assertPanics("non-string key", func() { MapOf(1, "v") })
	assertPanics("bad value", func() { MapOf("k", []byte("x")) })
}

func TestListAccessors(t *testing.T) {
	l := MustList("a", int64(2))
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	if _, ok := l.Get(-1); ok {
		t.Fatal("Get(-1) ok")
	}
	if _, ok := l.Get(2); ok {
		t.Fatal("Get(len) ok")
	}
	if err := l.Set(5, "x"); err == nil {
		t.Fatal("Set out of range succeeded")
	}
	var seen int
	l.Each(func(i int, v Value) bool { seen++; return i == 0 })
	if seen != 2 {
		t.Fatalf("Each visited %d, want 2 (stop after second)", seen)
	}
}

func TestRejectedValuesDoNotEnterContainers(t *testing.T) {
	l := MustList()
	if err := l.Append([]byte("raw")); !errors.Is(err, ErrBadValue) {
		t.Fatalf("Append raw bytes = %v", err)
	}
	if l.Len() != 0 {
		t.Fatal("rejected value entered list")
	}
	m := NewMap()
	if err := m.Put("k", map[string]int{}); !errors.Is(err, ErrBadValue) {
		t.Fatalf("Put raw map = %v", err)
	}
	if m.Len() != 0 {
		t.Fatal("rejected value entered map")
	}
}

func TestFreezeIsIdempotentAndIrreversible(t *testing.T) {
	m := NewMap()
	m.Freeze()
	m.Freeze()
	if !m.Frozen() {
		t.Fatal("double freeze unfroze")
	}
}
