package dispatch

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/events"
	"repro/internal/freeze"
	"repro/internal/labels"
)

// Receiver is the dispatcher's view of a delivery destination: an
// active unit instance's queue, or the router of a managed
// subscription. Implementations live in the core layer.
type Receiver interface {
	// ReceiverID distinguishes destinations for per-event delivery
	// deduplication: an event is offered to each receiver at most once,
	// even across publish and post-release re-dispatch.
	ReceiverID() uint64
	// InputLabel is the label used for match-time admission checks.
	// For managed subscriptions this is the potential input label the
	// unit could raise itself to (§5, subscribeManaged).
	InputLabel() labels.Label
	// Enqueue hands the event over; sub identifies the matching
	// subscription. When block is false the receiver must not wait for
	// queue space: it drops and returns false instead (best-effort
	// delivery). It returns false if the receiver is gone.
	Enqueue(e *events.Event, sub uint64, block bool) bool
	// EnqueueBatch hands several deliveries over in one call, letting
	// the receiver amortise queue locking across them (PublishBatch).
	// Implementations must attempt the deliveries in order and return
	// the number accepted; with block false they drop what does not
	// fit. A refused delivery's event belongs to the receiver to
	// dispose of: it must call Event.Recycle on it (a no-op outside
	// the clone pool) — the dispatcher cannot know which members of a
	// partially accepted batch were dropped.
	EnqueueBatch(ds []events.QueuedDelivery, block bool) int
}

// Options configure a Dispatcher for one security mode.
type Options struct {
	// CheckLabels enables DEFC admission checks at match time. Off in
	// the no-security baseline mode.
	CheckLabels bool
	// FreezeOnPublish freezes part data before delivery so receivers
	// share references safely (labels+freeze modes).
	FreezeOnPublish bool
	// CloneDeliveries hands every receiver a private deep copy instead
	// of sharing frozen data (the labels+clone mode, emulating
	// MVM-style isolate copying).
	CloneDeliveries bool
	// NextEventID mints IDs for cloned deliveries; required when
	// CloneDeliveries is set.
	NextEventID func() uint64
}

// Stats count dispatcher activity since construction.
type Stats struct {
	Published    uint64 // events accepted by Publish
	Dropped      uint64 // part-less events dropped by Publish
	Deliveries   uint64 // enqueued deliveries (incl. re-dispatch)
	Redispatches uint64 // release-triggered re-matching passes
	IndexHits    uint64 // candidate subscriptions found via the index
	ScanChecks   uint64 // candidate subscriptions checked from the scan list
}

// subscription pairs a filter with its receiver. Subscriptions are
// immutable after registration; shard snapshots share them.
type subscription struct {
	id     uint64
	filter *Filter
	recv   Receiver
	// indexKey is the equality-hash this subscription is indexed
	// under; valid only when indexed is true.
	indexKey uint64
	indexed  bool
	// tap marks a trusted system tap: matching ignores label admission.
	// Only the node runtime (inter-node links, §7) registers taps;
	// the unit-facing API cannot reach this flag.
	tap bool
}

// numShards is the number of hash-selected subscription shards. A
// power of two so shard selection is a mask; 16 keeps the copy-on-
// write unit small while spreading writer contention.
const (
	numShards = 16
	shardMask = numShards - 1
)

// snapshot is one shard's immutable subscription table. Readers load
// it with a single atomic pointer read and never take a lock; writers
// build a replacement and swap it in.
type snapshot struct {
	indexed map[uint64][]*subscription // equality-hash → subscriptions
}

var emptySnapshot = &snapshot{}

// scanTable is the dispatcher-wide immutable bucket table for
// non-indexable ("scan") subscriptions, keyed by each filter's anchor
// part name (Filter.ScanAnchor). A filter is a conjunction, so an
// event lacking the anchor part can never match; bucketing by it
// means a publish probes one bucket per distinct event part name
// instead of walking every scan subscription across all shards
// (the ROADMAP "per-part-name scan buckets" item). Like shard
// snapshots it is copy-on-write: readers load the pointer, writers
// swap a rebuilt map.
type scanTable struct {
	byPart map[string][]*subscription
}

var emptyScanTable = &scanTable{}

// shardCounters are per-shard statistics. Each shard pads its
// counters to a cache line so publishers attributed to different
// shards do not false-share.
type shardCounters struct {
	published    atomic.Uint64
	dropped      atomic.Uint64
	deliveries   atomic.Uint64
	redispatches atomic.Uint64
	indexHits    atomic.Uint64
	scanChecks   atomic.Uint64
	_            [16]byte // pad to 64 bytes
}

// shard is one slice of the subscription table. The pad between the
// snapshot pointer and the counters puts them on separate cache
// lines: stat increments by publishers must not invalidate the line
// every other publisher loads for the lock-free snap read.
type shard struct {
	snap  atomic.Pointer[snapshot]
	_     [56]byte
	stats shardCounters
}

// Dispatcher routes published events to matching subscriptions with
// label-checked admission. It is safe for concurrent use; matching
// runs on the publisher's goroutine (cost attributed to the
// publishing unit, as in the paper's single-threaded Stock Exchange)
// and takes no locks: each shard's subscription table is an immutable
// snapshot swapped atomically by Subscribe/Unsubscribe.
type Dispatcher struct {
	opts Options

	shards [numShards]shard

	// scan is the per-part-name bucket table for non-indexable
	// subscriptions; scanCount tracks its total population so
	// publishes skip the bucket probes entirely when every filter is
	// indexable (the common case).
	scan      atomic.Pointer[scanTable]
	scanCount atomic.Int64

	// ctl serialises the control plane (Subscribe/Unsubscribe): the
	// per-shard copy-on-write happens under it. The hot path never
	// touches it.
	ctl  sync.Mutex
	byID map[uint64]*subscription

	nextSub atomic.Uint64
}

// New creates a dispatcher.
func New(opts Options) *Dispatcher {
	if opts.CloneDeliveries && opts.NextEventID == nil {
		panic("dispatch: CloneDeliveries requires NextEventID")
	}
	d := &Dispatcher{
		opts: opts,
		byID: make(map[uint64]*subscription),
	}
	for i := range d.shards {
		d.shards[i].snap.Store(emptySnapshot)
	}
	d.scan.Store(emptyScanTable)
	return d
}

// ErrNilReceiver rejects subscriptions without a destination.
var ErrNilReceiver = errors.New("dispatch: nil receiver")

// Subscribe registers a filter for a receiver and returns the
// subscription ID.
func (d *Dispatcher) Subscribe(f *Filter, recv Receiver) (uint64, error) {
	return d.subscribe(f, recv, false)
}

// SubscribeTap registers a trusted system tap: its filter matches on
// names and data only, bypassing label admission. Taps feed the
// node-to-node links of a distributed deployment; they are part of the
// trusted runtime, like the dispatcher itself.
func (d *Dispatcher) SubscribeTap(f *Filter, recv Receiver) (uint64, error) {
	return d.subscribe(f, recv, true)
}

func (d *Dispatcher) subscribe(f *Filter, recv Receiver, tap bool) (uint64, error) {
	if f == nil || len(f.conds) == 0 {
		return 0, ErrEmptyFilter
	}
	if recv == nil {
		return 0, ErrNilReceiver
	}
	id := d.nextSub.Add(1)
	sub := &subscription{id: id, filter: f, recv: recv, tap: tap}
	if key, ok := f.IndexKey(); ok {
		sub.indexKey = key
		sub.indexed = true
	}

	d.ctl.Lock()
	defer d.ctl.Unlock()
	d.byID[id] = sub
	if sub.indexed {
		sh := d.shardFor(sub)
		old := sh.snap.Load()
		next := &snapshot{indexed: copyIndexed(old.indexed, 1)}
		next.indexed[sub.indexKey] = appendCopy(old.indexed[sub.indexKey], sub)
		sh.snap.Store(next)
	} else {
		anchor := f.ScanAnchor()
		old := d.scan.Load()
		next := &scanTable{byPart: copyScan(old.byPart, 1)}
		next.byPart[anchor] = appendCopy(old.byPart[anchor], sub)
		d.scan.Store(next)
		d.scanCount.Add(1)
	}
	return id, nil
}

// Unsubscribe removes a subscription. Removing an unknown ID is a
// no-op: a unit must not be able to probe the subscription table.
func (d *Dispatcher) Unsubscribe(id uint64) {
	d.ctl.Lock()
	defer d.ctl.Unlock()
	sub, ok := d.byID[id]
	if !ok {
		return
	}
	delete(d.byID, id)
	if sub.indexed {
		sh := d.shardFor(sub)
		old := sh.snap.Load()
		next := &snapshot{indexed: copyIndexed(old.indexed, 0)}
		list := removeSub(next.indexed[sub.indexKey], sub)
		if len(list) == 0 {
			delete(next.indexed, sub.indexKey)
		} else {
			next.indexed[sub.indexKey] = list
		}
		sh.snap.Store(next)
	} else {
		anchor := sub.filter.ScanAnchor()
		old := d.scan.Load()
		next := &scanTable{byPart: copyScan(old.byPart, 0)}
		list := removeSub(next.byPart[anchor], sub)
		if len(list) == 0 {
			delete(next.byPart, anchor)
		} else {
			next.byPart[anchor] = list
		}
		d.scan.Store(next)
		d.scanCount.Add(-1)
	}
}

// shardFor selects the shard owning an indexed subscription: it lives
// in the shard its equality hash selects, so a publish probes exactly
// one shard per event key. Scan subscriptions live in the dispatcher-
// wide scan table, not in shards.
func (d *Dispatcher) shardFor(sub *subscription) *shard {
	return &d.shards[sub.indexKey&shardMask]
}

// copyIndexed shallow-copies an index map for copy-on-write. The
// bucket slices are shared with the old snapshot; the writer replaces
// only the bucket it touches with a fresh slice.
func copyIndexed(m map[uint64][]*subscription, extra int) map[uint64][]*subscription {
	out := make(map[uint64][]*subscription, len(m)+extra)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// copyScan shallow-copies the scan bucket table for copy-on-write,
// with the same slice-sharing discipline as copyIndexed.
func copyScan(m map[string][]*subscription, extra int) map[string][]*subscription {
	out := make(map[string][]*subscription, len(m)+extra)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// appendCopy returns a new slice with s appended; the input slice is
// never mutated (it may be shared with live snapshots).
func appendCopy(list []*subscription, s *subscription) []*subscription {
	out := make([]*subscription, len(list)+1)
	copy(out, list)
	out[len(list)] = s
	return out
}

// removeSub returns a new slice without s; the input slice is never
// mutated (it may be shared with live snapshots).
func removeSub(list []*subscription, s *subscription) []*subscription {
	for i, x := range list {
		if x == s {
			out := make([]*subscription, 0, len(list)-1)
			out = append(out, list[:i]...)
			return append(out, list[i+1:]...)
		}
	}
	return list
}

// SubscriptionCount reports the number of live subscriptions.
func (d *Dispatcher) SubscriptionCount() int {
	d.ctl.Lock()
	defer d.ctl.Unlock()
	return len(d.byID)
}

// Publish dispatches an event to every matching subscription. Events
// without parts are dropped (Table 1). The return value is the number
// of deliveries made; callers in the core layer do not expose it to
// units (a publish must not convey who was notified).
func (d *Dispatcher) Publish(e *events.Event) int {
	return d.publish(e, true)
}

// PublishBestEffort is Publish with non-blocking deliveries: receivers
// whose queues are full are skipped rather than waited for. Feedback
// edges (the Regulator's step 9 tick republication) use it so that a
// congested downstream cannot stall — and transitively deadlock — the
// publisher.
func (d *Dispatcher) PublishBestEffort(e *events.Event) int {
	return d.publish(e, false)
}

func (d *Dispatcher) publish(e *events.Event, block bool) int {
	// Stats are attributed to the event's hash shard: any fixed slot
	// would put every publisher on the same cache line.
	stats := &d.shards[e.ID()&shardMask].stats
	if e.Len() == 0 {
		stats.dropped.Add(1)
		return 0
	}
	if d.opts.FreezeOnPublish {
		e.FreezeParts()
	}
	stats.published.Add(1)
	return d.matchAndDeliver(e, block, nil)
}

// Redispatch re-matches an event after a release that modified it
// (§3.1.6). Receivers that already saw the event are skipped via the
// event's delivered set; label admission applies as on first publish,
// which enforces "a released event must not cause additional deliveries
// to units with lower input labels".
func (d *Dispatcher) Redispatch(e *events.Event) int {
	if e.Len() == 0 {
		return 0
	}
	if d.opts.FreezeOnPublish {
		e.FreezeParts() // parts added along the main path
	}
	d.shards[e.ID()&shardMask].stats.redispatches.Add(1)
	return d.matchAndDeliver(e, true, nil)
}

// matchScratch is the per-publish scratch space: the event's index-key
// hashes and (only when scan subscriptions exist) its distinct part
// names for the scan bucket probes.
type matchScratch struct {
	keys  []uint64
	names []string
}

// scratchPool recycles matchScratch across publishes so the hot path
// allocates nothing.
var scratchPool = sync.Pool{
	New: func() any {
		return &matchScratch{
			keys:  make([]uint64, 0, 8),
			names: make([]string, 0, 8),
		}
	},
}

// release returns the scratch to the pool, dropping the name strings
// so an idle pooled scratch does not pin event part names.
func (m *matchScratch) release() {
	m.keys = m.keys[:0]
	clear(m.names)
	m.names = m.names[:0]
	scratchPool.Put(m)
}

// matchAndDeliver finds matching subscriptions via the per-shard
// equality indexes plus the scan lists and enqueues the event once per
// receiver. It runs entirely on immutable snapshots — no locks. When
// batch is non-nil, accepted deliveries are appended to it instead of
// being enqueued (the PublishBatch path); the caller flushes them
// grouped by receiver.
func (d *Dispatcher) matchAndDeliver(e *events.Event, block bool, batch *batchState) int {
	scr := scratchPool.Get().(*matchScratch)
	scr.keys = appendEventKeys(scr.keys, e)

	delivered := 0
	for _, k := range scr.keys {
		sh := &d.shards[k&shardMask]
		snap := sh.snap.Load()
		list := snap.indexed[k]
		if len(list) == 0 {
			continue
		}
		sh.stats.indexHits.Add(uint64(len(list)))
		for _, sub := range list {
			delivered += d.offer(sub, e, block, &sh.stats, batch)
		}
	}
	if d.scanCount.Load() > 0 {
		// Scan subscriptions are bucketed by their filter's anchor part
		// name: probe one bucket per distinct part name of the event
		// instead of walking every scan subscription.
		tbl := d.scan.Load()
		stats := &d.shards[e.ID()&shardMask].stats
		scr.names = appendEventPartNames(scr.names, e)
		for _, name := range scr.names {
			list := tbl.byPart[name]
			if len(list) == 0 {
				continue
			}
			stats.scanChecks.Add(uint64(len(list)))
			for _, sub := range list {
				delivered += d.offer(sub, e, block, stats, batch)
			}
		}
	}

	scr.release()
	return delivered
}

// offer matches one subscription against the event and, on success,
// enqueues (or batches) the delivery. It returns 1 on an accepted
// delivery, 0 otherwise.
func (d *Dispatcher) offer(sub *subscription, e *events.Event, block bool, stats *shardCounters, batch *batchState) int {
	if !sub.filter.Matches(e, sub.recv.InputLabel(), d.opts.CheckLabels && !sub.tap) {
		return 0
	}
	// One offer per receiver per event, across publish + releases.
	if !e.MarkDelivered(sub.recv.ReceiverID()) {
		return 0
	}
	ev := e
	if d.opts.CloneDeliveries {
		ev = e.DeepCopyPooled(d.opts.NextEventID())
		// The clone remembers its own receiver so that a release
		// of the clone does not bounce straight back.
		ev.MarkDelivered(sub.recv.ReceiverID())
	}
	if batch != nil {
		batch.add(sub.recv, ev, sub.id)
		return 1
	}
	if !sub.recv.Enqueue(ev, sub.id, block) {
		if d.opts.CloneDeliveries {
			ev.Recycle() // the clone never escaped
		}
		return 0
	}
	stats.deliveries.Add(1)
	return 1
}

// appendEventKeys appends the equality-index hashes an event can
// satisfy: one per scalar part datum and one per scalar entry of each
// map part, deduplicated.
func appendEventKeys(keys []uint64, e *events.Event) []uint64 {
	e.EachPart(func(p *events.Part) bool {
		if k, ok := hashIndexValue(p.Name, "", p.Data); ok {
			keys = appendKeyDedup(keys, k)
		}
		if m, ok := p.Data.(*freeze.Map); ok {
			name := p.Name
			m.Each(func(mk string, v freeze.Value) bool {
				if ik, ok := hashIndexValue(name, mk, v); ok {
					keys = appendKeyDedup(keys, ik)
				}
				return true
			})
		}
		return true
	})
	return keys
}

// appendKeyDedup appends k unless already present; key counts are
// tiny, so the linear scan beats a map.
func appendKeyDedup(keys []uint64, k uint64) []uint64 {
	for _, x := range keys {
		if x == k {
			return keys
		}
	}
	return append(keys, k)
}

// appendEventPartNames appends the event's distinct part names for the
// scan bucket probes. Part counts are tiny, so the linear dedup scan
// beats a map; the scratch pool keeps the appends allocation-free in
// steady state.
func appendEventPartNames(names []string, e *events.Event) []string {
	e.EachPart(func(p *events.Part) bool {
		for _, n := range names {
			if n == p.Name {
				return true
			}
		}
		names = append(names, p.Name)
		return true
	})
	return names
}

// Stats snapshots the dispatcher counters, aggregated across shards.
func (d *Dispatcher) Stats() Stats {
	var s Stats
	for i := range d.shards {
		st := &d.shards[i].stats
		s.Published += st.published.Load()
		s.Dropped += st.dropped.Load()
		s.Deliveries += st.deliveries.Load()
		s.Redispatches += st.redispatches.Load()
		s.IndexHits += st.indexHits.Load()
		s.ScanChecks += st.scanChecks.Load()
	}
	return s
}
