package dispatch

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/events"
	"repro/internal/freeze"
	"repro/internal/labels"
)

// Receiver is the dispatcher's view of a delivery destination: an
// active unit instance's queue, or the router of a managed
// subscription. Implementations live in the core layer.
type Receiver interface {
	// ReceiverID distinguishes destinations for per-event delivery
	// deduplication: an event is offered to each receiver at most once,
	// even across publish and post-release re-dispatch.
	ReceiverID() uint64
	// InputLabel is the label used for match-time admission checks.
	// For managed subscriptions this is the potential input label the
	// unit could raise itself to (§5, subscribeManaged).
	InputLabel() labels.Label
	// Enqueue hands the event over; sub identifies the matching
	// subscription. When block is false the receiver must not wait for
	// queue space: it drops and returns false instead (best-effort
	// delivery). It returns false if the receiver is gone.
	Enqueue(e *events.Event, sub uint64, block bool) bool
}

// Options configure a Dispatcher for one security mode.
type Options struct {
	// CheckLabels enables DEFC admission checks at match time. Off in
	// the no-security baseline mode.
	CheckLabels bool
	// FreezeOnPublish freezes part data before delivery so receivers
	// share references safely (labels+freeze modes).
	FreezeOnPublish bool
	// CloneDeliveries hands every receiver a private deep copy instead
	// of sharing frozen data (the labels+clone mode, emulating
	// MVM-style isolate copying).
	CloneDeliveries bool
	// NextEventID mints IDs for cloned deliveries; required when
	// CloneDeliveries is set.
	NextEventID func() uint64
}

// Stats count dispatcher activity since construction.
type Stats struct {
	Published    uint64 // events accepted by Publish
	Dropped      uint64 // part-less events dropped by Publish
	Deliveries   uint64 // enqueued deliveries (incl. re-dispatch)
	Redispatches uint64 // release-triggered re-matching passes
	IndexHits    uint64 // candidate subscriptions found via the index
	ScanChecks   uint64 // candidate subscriptions checked from the scan list
}

// subscription pairs a filter with its receiver.
type subscription struct {
	id     uint64
	filter *Filter
	recv   Receiver
	// indexKey is the equality key this subscription is indexed under,
	// or "" if it is on the linear scan list.
	indexKey string
	// tap marks a trusted system tap: matching ignores label admission.
	// Only the node runtime (inter-node links, §7) registers taps;
	// the unit-facing API cannot reach this flag.
	tap bool
}

// Dispatcher routes published events to matching subscriptions with
// label-checked admission. It is safe for concurrent use; matching runs
// on the publisher's goroutine (cost attributed to the publishing
// unit, as in the paper's single-threaded Stock Exchange).
type Dispatcher struct {
	opts Options

	mu      sync.RWMutex
	subs    map[uint64]*subscription
	indexed map[string][]*subscription // equality-indexed subscriptions
	scan    []*subscription            // subscriptions without an indexable condition

	nextSub atomic.Uint64

	published, dropped, deliveries   atomic.Uint64
	redispatches, indexHits, scanned atomic.Uint64
}

// New creates a dispatcher.
func New(opts Options) *Dispatcher {
	if opts.CloneDeliveries && opts.NextEventID == nil {
		panic("dispatch: CloneDeliveries requires NextEventID")
	}
	return &Dispatcher{
		opts:    opts,
		subs:    make(map[uint64]*subscription),
		indexed: make(map[string][]*subscription),
	}
}

// ErrNilReceiver rejects subscriptions without a destination.
var ErrNilReceiver = errors.New("dispatch: nil receiver")

// Subscribe registers a filter for a receiver and returns the
// subscription ID.
func (d *Dispatcher) Subscribe(f *Filter, recv Receiver) (uint64, error) {
	return d.subscribe(f, recv, false)
}

// SubscribeTap registers a trusted system tap: its filter matches on
// names and data only, bypassing label admission. Taps feed the
// node-to-node links of a distributed deployment; they are part of the
// trusted runtime, like the dispatcher itself.
func (d *Dispatcher) SubscribeTap(f *Filter, recv Receiver) (uint64, error) {
	return d.subscribe(f, recv, true)
}

func (d *Dispatcher) subscribe(f *Filter, recv Receiver, tap bool) (uint64, error) {
	if f == nil || len(f.conds) == 0 {
		return 0, ErrEmptyFilter
	}
	if recv == nil {
		return 0, ErrNilReceiver
	}
	id := d.nextSub.Add(1)
	sub := &subscription{id: id, filter: f, recv: recv, tap: tap}
	if key, ok := f.IndexKey(); ok {
		sub.indexKey = key
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.subs[id] = sub
	if sub.indexKey != "" {
		d.indexed[sub.indexKey] = append(d.indexed[sub.indexKey], sub)
	} else {
		d.scan = append(d.scan, sub)
	}
	return id, nil
}

// Unsubscribe removes a subscription. Removing an unknown ID is a
// no-op: a unit must not be able to probe the subscription table.
func (d *Dispatcher) Unsubscribe(id uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	sub, ok := d.subs[id]
	if !ok {
		return
	}
	delete(d.subs, id)
	if sub.indexKey != "" {
		d.indexed[sub.indexKey] = removeSub(d.indexed[sub.indexKey], sub)
		if len(d.indexed[sub.indexKey]) == 0 {
			delete(d.indexed, sub.indexKey)
		}
	} else {
		d.scan = removeSub(d.scan, sub)
	}
}

func removeSub(list []*subscription, s *subscription) []*subscription {
	for i, x := range list {
		if x == s {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// SubscriptionCount reports the number of live subscriptions.
func (d *Dispatcher) SubscriptionCount() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.subs)
}

// Publish dispatches an event to every matching subscription. Events
// without parts are dropped (Table 1). The return value is the number
// of deliveries made; callers in the core layer do not expose it to
// units (a publish must not convey who was notified).
func (d *Dispatcher) Publish(e *events.Event) int {
	return d.publish(e, true)
}

// PublishBestEffort is Publish with non-blocking deliveries: receivers
// whose queues are full are skipped rather than waited for. Feedback
// edges (the Regulator's step 9 tick republication) use it so that a
// congested downstream cannot stall — and transitively deadlock — the
// publisher.
func (d *Dispatcher) PublishBestEffort(e *events.Event) int {
	return d.publish(e, false)
}

func (d *Dispatcher) publish(e *events.Event, block bool) int {
	if e.Len() == 0 {
		d.dropped.Add(1)
		return 0
	}
	if d.opts.FreezeOnPublish {
		e.FreezeParts()
	}
	d.published.Add(1)
	return d.matchAndDeliver(e, block)
}

// Redispatch re-matches an event after a release that modified it
// (§3.1.6). Receivers that already saw the event are skipped via the
// event's delivered set; label admission applies as on first publish,
// which enforces "a released event must not cause additional deliveries
// to units with lower input labels".
func (d *Dispatcher) Redispatch(e *events.Event) int {
	if e.Len() == 0 {
		return 0
	}
	if d.opts.FreezeOnPublish {
		e.FreezeParts() // parts added along the main path
	}
	d.redispatches.Add(1)
	return d.matchAndDeliver(e, true)
}

// matchAndDeliver finds matching subscriptions via the equality index
// plus the scan list and enqueues the event once per receiver.
func (d *Dispatcher) matchAndDeliver(e *events.Event, block bool) int {
	keys := eventIndexKeys(e)

	d.mu.RLock()
	// Collect candidates under the read lock; deliver after releasing
	// it so slow receivers cannot block Subscribe/Unsubscribe.
	var candidates []*subscription
	for _, k := range keys {
		if list := d.indexed[k]; len(list) > 0 {
			candidates = append(candidates, list...)
			d.indexHits.Add(uint64(len(list)))
		}
	}
	if len(d.scan) > 0 {
		candidates = append(candidates, d.scan...)
		d.scanned.Add(uint64(len(d.scan)))
	}
	d.mu.RUnlock()

	delivered := 0
	for _, sub := range candidates {
		if !sub.filter.Matches(e, sub.recv.InputLabel(), d.opts.CheckLabels && !sub.tap) {
			continue
		}
		// One offer per receiver per event, across publish + releases.
		if !e.MarkDelivered(sub.recv.ReceiverID()) {
			continue
		}
		ev := e
		if d.opts.CloneDeliveries {
			ev = e.DeepCopy(d.opts.NextEventID())
			// The clone remembers its own receiver so that a release
			// of the clone does not bounce straight back.
			ev.MarkDelivered(sub.recv.ReceiverID())
		}
		if sub.recv.Enqueue(ev, sub.id, block) {
			delivered++
			d.deliveries.Add(1)
		}
	}
	return delivered
}

// eventIndexKeys derives the equality-index keys an event can satisfy:
// one per scalar part datum and one per scalar entry of each map part.
func eventIndexKeys(e *events.Event) []string {
	var keys []string
	for _, p := range e.Parts() {
		if k, ok := indexValueKey(p.Name, "", p.Data); ok {
			keys = append(keys, k)
		}
		if m, ok := p.Data.(*freeze.Map); ok {
			name := p.Name
			m.Each(func(k string, v freeze.Value) bool {
				if ik, ok := indexValueKey(name, k, v); ok {
					keys = append(keys, ik)
				}
				return true
			})
		}
	}
	// Deduplicate to avoid double candidate lists when two parts carry
	// identical scalars.
	if len(keys) > 1 {
		seen := make(map[string]struct{}, len(keys))
		out := keys[:0]
		for _, k := range keys {
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				out = append(out, k)
			}
		}
		keys = out
	}
	return keys
}

// Stats snapshots the dispatcher counters.
func (d *Dispatcher) Stats() Stats {
	return Stats{
		Published:    d.published.Load(),
		Dropped:      d.dropped.Load(),
		Deliveries:   d.deliveries.Load(),
		Redispatches: d.redispatches.Load(),
		IndexHits:    d.indexHits.Load(),
		ScanChecks:   d.scanned.Load(),
	}
}
