// Package dispatch implements the DEFCon event dispatcher (paper §3.2):
// label-checked publish/subscribe with content filters, decoupled
// delivery, and the release/re-dispatch protocol for partial event
// processing (§3.1.6).
package dispatch

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/events"
	"repro/internal/freeze"
	"repro/internal/labels"
	"repro/internal/tags"
)

// ErrEmptyFilter rejects subscriptions without conditions: Table 1
// requires "a non-empty filter", which stops units from registering a
// match-everything subscription whose notifications would leak the
// existence of events they cannot read.
var ErrEmptyFilter = errors.New("dispatch: subscription filter must be non-empty")

// Op is a comparison operator usable in filter conditions.
type Op uint8

const (
	// Exists matches any part with the condition's name.
	Exists Op = iota
	// Eq matches when the addressed datum equals Value.
	Eq
	// Ne matches when the addressed datum differs from Value.
	Ne
	// Lt matches when the addressed datum is numerically less than Value.
	Lt
	// Gt matches when the addressed datum is numerically greater than Value.
	Gt
	// Prefix matches when the addressed string datum starts with Value.
	Prefix
)

// String names the operator.
func (o Op) String() string {
	switch o {
	case Exists:
		return "exists"
	case Eq:
		return "=="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Gt:
		return ">"
	case Prefix:
		return "prefix"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Cond is one condition of a filter: an operator applied to a part's
// data, or to one key of a freeze.Map part when Key is set.
type Cond struct {
	Part  string // part name the condition addresses
	Key   string // optional map key within the part's data
	Op    Op
	Value freeze.Value // comparison operand (ignored for Exists)
}

// String renders the condition.
func (c Cond) String() string {
	addr := c.Part
	if c.Key != "" {
		addr += "." + c.Key
	}
	if c.Op == Exists {
		return addr + " exists"
	}
	return fmt.Sprintf("%s %v %v", addr, c.Op, c.Value)
}

// Filter is a conjunction of conditions over event parts (Table 1: "an
// expression over the name and data of event parts"). An event matches
// when every condition is satisfied by at least one part that is
// visible at the subscriber's input label.
type Filter struct {
	conds []Cond
}

// NewFilter builds a filter from conditions.
func NewFilter(conds ...Cond) (*Filter, error) {
	if len(conds) == 0 {
		return nil, ErrEmptyFilter
	}
	for _, c := range conds {
		if c.Part == "" {
			return nil, errors.New("dispatch: filter condition with empty part name")
		}
	}
	return &Filter{conds: append([]Cond(nil), conds...)}, nil
}

// MustFilter is NewFilter that panics on error; for statically known
// filters in unit code.
func MustFilter(conds ...Cond) *Filter {
	f, err := NewFilter(conds...)
	if err != nil {
		panic(err)
	}
	return f
}

// PartExists is shorthand for a Cond{Part: name, Op: Exists}.
func PartExists(name string) Cond { return Cond{Part: name, Op: Exists} }

// PartEq is shorthand for an equality condition on a part's data.
func PartEq(name string, v freeze.Value) Cond { return Cond{Part: name, Op: Eq, Value: v} }

// KeyEq is shorthand for an equality condition on one key of a
// freeze.Map part.
func KeyEq(part, key string, v freeze.Value) Cond {
	return Cond{Part: part, Key: key, Op: Eq, Value: v}
}

// Conds returns a copy of the filter's conditions.
func (f *Filter) Conds() []Cond { return append([]Cond(nil), f.conds...) }

// IndexKey returns the equality-index hash of the first Eq condition
// on a part datum or map key, and whether one exists. The dispatcher
// uses it to avoid scanning every subscription on every publish (the
// centralised-filtering advantage §6.2 attributes to DEFCon over
// Marketcetera). Hash collisions are harmless: index candidates are
// always re-verified by the full filter match.
func (f *Filter) IndexKey() (uint64, bool) {
	for _, c := range f.conds {
		if c.Op == Eq {
			if k, ok := hashIndexValue(c.Part, c.Key, c.Value); ok {
				return k, true
			}
		}
	}
	return 0, false
}

// ScanAnchor returns the part name a non-indexable subscription is
// bucketed under in the dispatcher's scan table. A filter is a
// conjunction and every condition requires a part with its name to be
// present, so an event that lacks the anchor part can never match:
// bucketing by the first condition's part name is sound. NewFilter
// rejects empty condition lists and empty part names, so the anchor is
// always a non-empty string.
func (f *Filter) ScanAnchor() string { return f.conds[0].Part }

// FNV-1a, inlined so the per-publish key derivation allocates nothing.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

func fnvUint64(h uint64, n uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (n & 0xff)) * fnvPrime64
		n >>= 8
	}
	return h
}

// hashIndexValue hashes (part, key, value) with a type discriminator,
// mirroring the old string encoding without allocating it.
func hashIndexValue(part, key string, v freeze.Value) (uint64, bool) {
	h := uint64(fnvOffset64)
	h = fnvString(h, part)
	h = fnvByte(h, 0)
	h = fnvString(h, key)
	h = fnvByte(h, 0)
	switch x := v.(type) {
	case string:
		h = fnvByte(h, 's')
		h = fnvString(h, x)
	case bool:
		if x {
			h = fnvString(h, "b1")
		} else {
			h = fnvString(h, "b0")
		}
	case int, int8, int16, int32, int64, uint, uint8, uint16, uint32, uint64:
		n, _ := asInt(v)
		h = fnvByte(h, 'i')
		h = fnvUint64(h, uint64(n))
	case tags.Tag:
		id := x.ID()
		h = fnvByte(h, 't')
		for _, b := range id {
			h = fnvByte(h, b)
		}
	default:
		return 0, false // floats and containers are not indexable
	}
	return h, true
}

// Matches reports whether event e satisfies the filter for a subscriber
// with input label in. When checkLabels is false (the no-security
// mode), label admission is skipped and only names/data are compared.
//
// Per Table 1, every part consulted by the filter must individually
// satisfy Sp ⊆ Sin and Ip ⊇ Iin at the time of matching.
func (f *Filter) Matches(e *events.Event, in labels.Label, checkLabels bool) bool {
	for _, c := range f.conds {
		if !f.condMatches(c, e, in, checkLabels) {
			return false
		}
	}
	return true
}

func (f *Filter) condMatches(c Cond, e *events.Event, in labels.Label, checkLabels bool) bool {
	pred := func(p *events.Part) bool { return evalCond(c, p.Data) }
	if checkLabels {
		return e.AnyVisible(c.Part, in, pred)
	}
	// Without label checks every same-named part is a candidate.
	return e.AnyNamed(c.Part, pred)
}

// evalCond applies the operator to the addressed datum.
func evalCond(c Cond, data freeze.Value) bool {
	v := data
	if c.Key != "" {
		m, ok := data.(*freeze.Map)
		if !ok {
			return false
		}
		v, ok = m.Get(c.Key)
		if !ok {
			return false
		}
	}
	switch c.Op {
	case Exists:
		return true
	case Eq:
		return valueEq(v, c.Value)
	case Ne:
		return !valueEq(v, c.Value)
	case Lt:
		a, aok := asFloat(v)
		b, bok := asFloat(c.Value)
		return aok && bok && a < b
	case Gt:
		a, aok := asFloat(v)
		b, bok := asFloat(c.Value)
		return aok && bok && a > b
	case Prefix:
		s, sok := v.(string)
		pre, pok := c.Value.(string)
		return sok && pok && strings.HasPrefix(s, pre)
	default:
		return false
	}
}

// valueEq compares two part data values: numeric kinds compare by
// value, everything else by interface equality.
func valueEq(a, b freeze.Value) bool {
	if ai, ok := asInt(a); ok {
		if bi, ok := asInt(b); ok {
			return ai == bi
		}
	}
	if af, ok := asFloat(a); ok {
		if bf, ok := asFloat(b); ok {
			return af == bf
		}
	}
	return a == b
}

// asInt widens any integer kind to int64.
func asInt(v freeze.Value) (int64, bool) {
	switch x := v.(type) {
	case int:
		return int64(x), true
	case int8:
		return int64(x), true
	case int16:
		return int64(x), true
	case int32:
		return int64(x), true
	case int64:
		return x, true
	case uint:
		return int64(x), true
	case uint8:
		return int64(x), true
	case uint16:
		return int64(x), true
	case uint32:
		return int64(x), true
	case uint64:
		return int64(x), true
	default:
		return 0, false
	}
}

// asFloat widens any numeric kind to float64.
func asFloat(v freeze.Value) (float64, bool) {
	if i, ok := asInt(v); ok {
		return float64(i), true
	}
	switch x := v.(type) {
	case float32:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}

// String renders the filter as cond ∧ cond ∧ ...
func (f *Filter) String() string {
	ss := make([]string, len(f.conds))
	for i, c := range f.conds {
		ss[i] = c.String()
	}
	return strings.Join(ss, " ∧ ")
}
