package dispatch

import (
	"sync/atomic"
	"testing"

	"repro/internal/events"
	"repro/internal/labels"
)

// addScalar attaches a scalar part or fails the test.
func addScalar(t *testing.T, e *events.Event, name string, v any) {
	t.Helper()
	if _, err := e.AddPart(name, labels.Label{}, v, "t"); err != nil {
		t.Fatal(err)
	}
}

func TestPublishBatchMatchesLikePublish(t *testing.T) {
	d := newDispatcher(true)
	msft := newRecv(labels.Label{})
	goog := newRecv(labels.Label{})
	if _, err := d.Subscribe(MustFilter(PartEq("symbol", "MSFT")), msft); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Subscribe(MustFilter(PartEq("symbol", "GOOG")), goog); err != nil {
		t.Fatal(err)
	}
	batch := make([]*events.Event, 6)
	for i := range batch {
		e := events.New(uint64(i + 1))
		sym := "MSFT"
		if i%3 == 0 {
			sym = "GOOG"
		}
		addScalar(t, e, "symbol", sym)
		batch[i] = e
	}
	if n := d.PublishBatch(batch, true); n != 6 {
		t.Fatalf("accepted %d, want 6", n)
	}
	if msft.count() != 4 || goog.count() != 2 {
		t.Fatalf("deliveries msft=%d goog=%d", msft.count(), goog.count())
	}
	if st := d.Stats(); st.Published != 6 || st.Deliveries != 6 {
		t.Fatalf("stats %+v", st)
	}
}

// TestPublishBatchPreservesPerReceiverOrder pins the stable-grouping
// rule: gathering one receiver's deliveries must not reorder another
// receiver's. The interleaving below (A then shared then A…) broke a
// selection-swap grouping once: receiver B observed its second event
// before its first.
func TestPublishBatchPreservesPerReceiverOrder(t *testing.T) {
	d := newDispatcher(true)
	a := newRecv(labels.Label{})
	bcast := newRecv(labels.Label{})
	// a subscribes to its own symbol; bcast takes every event via a
	// non-indexable filter, so the two groups interleave.
	if _, err := d.Subscribe(MustFilter(PartEq("symbol", "A")), a); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Subscribe(MustFilter(PartExists("symbol")), bcast); err != nil {
		t.Fatal(err)
	}
	batch := make([]*events.Event, 8)
	for i := range batch {
		e := events.New(uint64(i + 1))
		sym := "A"
		if i%2 == 1 {
			sym = "OTHER"
		}
		addScalar(t, e, "symbol", sym)
		batch[i] = e
	}
	d.PublishBatch(batch, true)
	if got := len(bcast.got); got != 8 {
		t.Fatalf("broadcast receiver saw %d of 8", got)
	}
	for i, e := range bcast.got {
		if e.ID() != uint64(i+1) {
			ids := make([]uint64, len(bcast.got))
			for j, ev := range bcast.got {
				ids[j] = ev.ID()
			}
			t.Fatalf("broadcast receiver deliveries out of publish order: %v", ids)
		}
	}
}

func TestPublishBatchDedupsAcrossBatchAndRedispatch(t *testing.T) {
	d := newDispatcher(true)
	r := newRecv(labels.Label{})
	if _, err := d.Subscribe(MustFilter(PartExists("p")), r); err != nil {
		t.Fatal(err)
	}
	e := events.New(1)
	addScalar(t, e, "p", "v")
	if n := d.PublishBatch([]*events.Event{e}, true); n != 1 {
		t.Fatalf("accepted %d", n)
	}
	// Re-batching the same event must not double-deliver.
	if n := d.PublishBatch([]*events.Event{e}, true); n != 0 {
		t.Fatalf("duplicate batch delivered %d", n)
	}
}

func TestPublishBatchDropsPartless(t *testing.T) {
	d := newDispatcher(true)
	r := newRecv(labels.Label{})
	if _, err := d.Subscribe(MustFilter(PartExists("p")), r); err != nil {
		t.Fatal(err)
	}
	if n := d.PublishBatch([]*events.Event{events.New(1), nil}, true); n != 0 {
		t.Fatalf("accepted %d", n)
	}
	if st := d.Stats(); st.Dropped != 1 {
		t.Fatalf("dropped = %d", st.Dropped)
	}
}

// TestPublishBatchRecyclesRefusedClones: a dead receiver refuses its
// batch deliveries; in clone mode the refused clones must return to
// the pool (observable via Pooled turning false after the receiver's
// Recycle).
func TestPublishBatchRecyclesRefusedClones(t *testing.T) {
	var id atomic.Uint64
	id.Store(100)
	d := New(Options{
		CheckLabels:     true,
		CloneDeliveries: true,
		NextEventID:     func() uint64 { return id.Add(1) },
	})
	alive := newRecv(labels.Label{})
	dead := newRecv(labels.Label{})
	dead.dead = true
	if _, err := d.Subscribe(MustFilter(PartExists("p")), alive); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Subscribe(MustFilter(PartExists("p")), dead); err != nil {
		t.Fatal(err)
	}
	e := events.New(1)
	addScalar(t, e, "p", "v")
	if n := d.PublishBatch([]*events.Event{e}, true); n != 1 {
		t.Fatalf("accepted %d, want 1 (dead receiver refused)", n)
	}
	// The accepted clone is alive and pooled-flagged; the original is
	// not pooled.
	if len(alive.got) != 1 || !alive.got[0].Pooled() {
		t.Fatal("accepted clone missing or not pool-flagged")
	}
	if e.Pooled() {
		t.Fatal("original event must not be pool-flagged")
	}
}
