package dispatch

// Batched publication.
//
// A high-rate publisher (the Stock Exchange replaying ticks, an
// inter-node link draining its import queue) publishes runs of events
// back-to-back. PublishBatch matches each event exactly like Publish
// but hands the accepted deliveries to every receiver in one
// EnqueueBatch call, so a receiver matched by k events of the batch
// pays for one queue-lock acquisition instead of k.

import (
	"sync"

	"repro/internal/events"
)

// recvGroup collects one receiver's deliveries, in publish order.
type recvGroup struct {
	recv Receiver
	ds   []events.QueuedDelivery
}

// batchState accumulates matched deliveries across the events of one
// PublishBatch call, grouped by receiver as they are matched — one
// O(1) map probe per delivery, no post-hoc regrouping.
type batchState struct {
	byRecv map[Receiver]int // receiver → index into groups
	groups []recvGroup
}

func (b *batchState) add(recv Receiver, e *events.Event, sub uint64) {
	if b.byRecv == nil {
		b.byRecv = make(map[Receiver]int, 16)
	}
	idx, ok := b.byRecv[recv]
	if !ok {
		idx = len(b.groups)
		if idx < cap(b.groups) {
			b.groups = b.groups[:idx+1] // reuse pooled ds capacity
			b.groups[idx].recv = recv
		} else {
			b.groups = append(b.groups, recvGroup{recv: recv})
		}
		b.byRecv[recv] = idx
	}
	g := &b.groups[idx]
	g.ds = append(g.ds, events.QueuedDelivery{Event: e, Sub: sub})
}

// reset drops all pointers (an idle pooled batchState must not pin
// the last batch's events and receivers) while keeping capacities.
func (b *batchState) reset() {
	clear(b.byRecv)
	for i := range b.groups {
		g := &b.groups[i]
		g.recv = nil
		clear(g.ds)
		g.ds = g.ds[:0]
	}
	b.groups = b.groups[:0]
}

var batchPool = sync.Pool{New: func() any { return &batchState{} }}

// PublishBatch publishes several events in one call: each event is
// matched exactly as by Publish, then the accepted deliveries are
// handed over grouped by receiver via EnqueueBatch. The return value
// is the total number of accepted deliveries. Per receiver,
// deliveries arrive in publish order — the call is semantically
// identical to publishing the events one by one.
//
// Delivery QoS follows block: with block true, full receiver queues
// backpressure the publisher; with block false they drop.
func (d *Dispatcher) PublishBatch(evs []*events.Event, block bool) int {
	if len(evs) == 0 {
		return 0
	}
	b := batchPool.Get().(*batchState)
	for _, e := range evs {
		if e == nil {
			continue
		}
		stats := &d.shards[e.ID()&shardMask].stats
		if e.Len() == 0 {
			stats.dropped.Add(1)
			continue
		}
		if d.opts.FreezeOnPublish {
			e.FreezeParts()
		}
		stats.published.Add(1)
		d.matchAndDeliver(e, block, b)
	}
	accepted := d.flush(b, block)
	b.reset()
	batchPool.Put(b)
	return accepted
}

// flush enqueues each receiver's group in one EnqueueBatch call.
// Refused deliveries are the receiver's to dispose of (see
// Receiver.EnqueueBatch); the flush only counts acceptances.
func (d *Dispatcher) flush(b *batchState, block bool) int {
	accepted := 0
	for i := range b.groups {
		g := &b.groups[i]
		if len(g.ds) == 0 {
			continue
		}
		// Resolve the stats slot BEFORE handing the events over:
		// EnqueueBatch transfers ownership, after which a consumer may
		// already be recycling a clone (rewriting its ID) concurrently.
		stats := &d.shards[g.ds[0].Event.ID()&shardMask].stats
		ok := g.recv.EnqueueBatch(g.ds, block)
		accepted += ok
		if ok > 0 {
			stats.deliveries.Add(uint64(ok))
		}
	}
	return accepted
}

// EnqueueSeq implements the Receiver.EnqueueBatch contract for
// receivers without a batchable queue: it attempts each delivery in
// order via Enqueue, recycles refused deliveries' events (a no-op
// outside the clone pool) and returns the number accepted. Routers
// and channel-backed receivers delegate to it so the refusal
// handling lives in one place.
func EnqueueSeq(recv Receiver, ds []events.QueuedDelivery, block bool) int {
	accepted := 0
	for _, q := range ds {
		if recv.Enqueue(q.Event, q.Sub, block) {
			accepted++
		} else {
			q.Event.Recycle()
		}
	}
	return accepted
}
