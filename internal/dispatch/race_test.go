package dispatch

// Concurrency tests for the sharded, snapshot-swapped subscription
// table. Run with -race: publishers must be able to match against
// immutable shard snapshots while the control plane churns
// subscriptions, with no torn reads and no lost deliveries for
// subscriptions that were stably registered throughout.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/events"
	"repro/internal/labels"
)

func TestConcurrentPublishSubscribeUnsubscribeRace(t *testing.T) {
	d := New(Options{CheckLabels: true, FreezeOnPublish: true})

	// Stable subscribers that must see every publish of their symbol.
	const stable = 8
	stableRecvs := make([]*fakeReceiver, stable)
	for i := range stableRecvs {
		stableRecvs[i] = newRecv(labels.Label{})
		if _, err := d.Subscribe(MustFilter(PartEq("symbol", fmt.Sprintf("STABLE%d", i))), stableRecvs[i]); err != nil {
			t.Fatal(err)
		}
	}
	// One stable scan subscriber.
	scanRecv := newRecv(labels.Label{})
	if _, err := d.Subscribe(MustFilter(PartExists("halt")), scanRecv); err != nil {
		t.Fatal(err)
	}

	var wg, churners sync.WaitGroup
	stop := make(chan struct{})

	// Churners: indexed and scan subscriptions appearing and vanishing.
	for w := 0; w < 4; w++ {
		churners.Add(1)
		go func(w int) {
			defer churners.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r := newRecv(labels.Label{})
				var id uint64
				if i%3 == 0 {
					id, _ = d.Subscribe(MustFilter(PartExists("churn")), r)
				} else {
					id, _ = d.Subscribe(MustFilter(PartEq("symbol", fmt.Sprintf("CHURN%d-%d", w, i%16))), r)
				}
				d.Unsubscribe(id)
			}
		}(w)
	}

	// Publishers.
	var published atomic.Uint64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				e := events.New(uint64(w)<<32 | uint64(i+1))
				if _, err := e.AddPart("symbol", labels.Label{}, fmt.Sprintf("STABLE%d", i%stable), "t"); err != nil {
					panic(err)
				}
				d.Publish(e)
				published.Add(1)
				// Interleave redispatches after a modification.
				if i%7 == 0 {
					if _, err := e.AddPart("halt", labels.Label{}, "now", "t"); err != nil {
						panic(err)
					}
					d.Redispatch(e)
				}
			}
		}(w)
	}

	// Batch publishers exercising the grouped flush concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			batch := make([]*events.Event, 16)
			for j := range batch {
				e := events.New(uint64(1)<<40 | uint64(i*16+j+1))
				if _, err := e.AddPart("symbol", labels.Label{}, fmt.Sprintf("STABLE%d", j%stable), "t"); err != nil {
					panic(err)
				}
				batch[j] = e
			}
			d.PublishBatch(batch, true)
		}
	}()

	wg.Wait()
	close(stop)
	churners.Wait()

	// Every stable indexed subscriber saw exactly its share: 4
	// publishers × 2000 events spread round-robin over 8 symbols,
	// plus the batch publisher's 100×16 spread over the same symbols.
	want := 4*2000/stable + 100*16/stable
	for i, r := range stableRecvs {
		if got := r.count(); got != want {
			t.Fatalf("stable subscriber %d saw %d deliveries, want %d", i, got, want)
		}
	}
	// The scan subscriber saw every redispatched (halt-carrying) event.
	if scanRecv.count() == 0 {
		t.Fatal("scan subscriber starved")
	}
	if d.SubscriptionCount() != stable+1 {
		t.Fatalf("leaked subscriptions: %d", d.SubscriptionCount())
	}
}

// TestSnapshotIsolation pins the copy-on-write rule: a publish that
// loaded a snapshot before an unsubscribe may still deliver to the
// removed subscription's receiver, but a publish starting after
// Unsubscribe returns must not.
func TestSnapshotIsolation(t *testing.T) {
	d := New(Options{CheckLabels: true})
	r := newRecv(labels.Label{})
	id, err := d.Subscribe(MustFilter(PartEq("symbol", "X")), r)
	if err != nil {
		t.Fatal(err)
	}
	d.Unsubscribe(id)
	e := events.New(1)
	if _, err := e.AddPart("symbol", labels.Label{}, "X", "t"); err != nil {
		t.Fatal(err)
	}
	if n := d.Publish(e); n != 0 {
		t.Fatalf("post-unsubscribe publish delivered %d", n)
	}
}

// TestShardStatsAggregate checks that per-shard counters sum to the
// global view under concurrent publishing.
func TestShardStatsAggregate(t *testing.T) {
	d := New(Options{CheckLabels: true})
	r := newRecv(labels.Label{})
	if _, err := d.Subscribe(MustFilter(PartEq("symbol", "S")), r); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				e := events.New(uint64(w)<<32 | uint64(i+1))
				if _, err := e.AddPart("symbol", labels.Label{}, "S", "t"); err != nil {
					panic(err)
				}
				d.Publish(e)
			}
		}(w)
	}
	wg.Wait()
	st := d.Stats()
	if st.Published != 8*500 {
		t.Fatalf("published = %d", st.Published)
	}
	if st.Deliveries != 8*500 {
		t.Fatalf("deliveries = %d", st.Deliveries)
	}
}
