package dispatch

// Property-based tests of the dispatcher's central security invariant:
// an event is delivered to a receiver only if every part the filter
// consulted can flow to that receiver's input label.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/events"
	"repro/internal/labels"
	"repro/internal/tags"
)

// qtags is the tag pool for generated labels.
var qtags = func() []tags.Tag {
	s := tags.NewStore(4242)
	out := make([]tags.Tag, 6)
	for i := range out {
		out[i] = s.Create(fmt.Sprintf("q%d", i), "quick")
	}
	return out
}()

// qsubset draws a random subset of the tag pool.
func qsubset(r *rand.Rand) labels.Set {
	var members []tags.Tag
	mask := r.Intn(1 << len(qtags))
	for i, t := range qtags {
		if mask&(1<<i) != 0 {
			members = append(members, t)
		}
	}
	return labels.NewSet(members...)
}

// scenario is a generated publish: one event with up to 4 labelled
// parts, and one receiver label.
type scenario struct {
	PartLabels []labels.Label
	Receiver   labels.Label
}

// Generate implements quick.Generator.
func (scenario) Generate(r *rand.Rand, _ int) reflect.Value {
	n := 1 + r.Intn(4)
	sc := scenario{Receiver: labels.Label{S: qsubset(r), I: qsubset(r)}}
	for i := 0; i < n; i++ {
		sc.PartLabels = append(sc.PartLabels, labels.Label{S: qsubset(r), I: qsubset(r)})
	}
	return reflect.ValueOf(sc)
}

// TestQuickDeliveryImpliesFlow: whenever the dispatcher delivers, the
// filter-consulted part flows to the receiver; whenever some visible
// part satisfies the filter, it must deliver (no false negatives).
func TestQuickDeliveryImpliesFlow(t *testing.T) {
	f := func(sc scenario) bool {
		d := New(Options{CheckLabels: true, FreezeOnPublish: true})
		recv := &fakeReceiver{id: recvID.Add(1), label: sc.Receiver}
		if _, err := d.Subscribe(MustFilter(PartEq("p", "v")), recv); err != nil {
			return false
		}
		e := events.New(1)
		for _, pl := range sc.PartLabels {
			if _, err := e.AddPart("p", pl, "v", "gen"); err != nil {
				return false
			}
		}
		delivered := d.Publish(e) > 0

		want := false
		for _, pl := range sc.PartLabels {
			if pl.CanFlowTo(sc.Receiver) {
				want = true
			}
		}
		return delivered == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickRedispatchNeverLowersBar: after publish, adding a part and
// redispatching delivers to a previously unmatched receiver only when
// the new part flows to it.
func TestQuickRedispatchNeverLowersBar(t *testing.T) {
	f := func(sc scenario, extra uint8) bool {
		if len(sc.PartLabels) < 2 {
			return true
		}
		d := New(Options{CheckLabels: true, FreezeOnPublish: true})
		recv := &fakeReceiver{id: recvID.Add(1), label: sc.Receiver}
		// The receiver subscribes to the part added post-publish.
		if _, err := d.Subscribe(MustFilter(PartEq("late", "w")), recv); err != nil {
			return false
		}
		e := events.New(1)
		if _, err := e.AddPart("p", sc.PartLabels[0], "v", "gen"); err != nil {
			return false
		}
		d.Publish(e)
		before := recv.count()

		lateLabel := sc.PartLabels[1]
		if _, err := e.AddPart("late", lateLabel, "w", "gen"); err != nil {
			return false
		}
		d.Redispatch(e)
		gained := recv.count() > before
		return gained == lateLabel.CanFlowTo(sc.Receiver)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickNoSecurityDeliversRegardless: with label checks off, any
// satisfying part delivers no matter its label.
func TestQuickNoSecurityDeliversRegardless(t *testing.T) {
	f := func(sc scenario) bool {
		d := New(Options{CheckLabels: false})
		recv := &fakeReceiver{id: recvID.Add(1), label: sc.Receiver}
		if _, err := d.Subscribe(MustFilter(PartEq("p", "v")), recv); err != nil {
			return false
		}
		e := events.New(1)
		for _, pl := range sc.PartLabels {
			if _, err := e.AddPart("p", pl, "v", "gen"); err != nil {
				return false
			}
		}
		return d.Publish(e) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
