package dispatch

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/events"
	"repro/internal/labels"
	"repro/internal/tags"
)

// benchModes mirror the four security configurations of the paper's
// Figures 5–7 at the dispatcher layer.
var benchModes = []struct {
	name string
	opts Options
}{
	{"no-security", Options{}},
	{"labels", Options{CheckLabels: true}},
	{"labels+freeze", Options{CheckLabels: true, FreezeOnPublish: true}},
	{"labels+clone", Options{CheckLabels: true, CloneDeliveries: true}},
}

// sinkReceiver swallows deliveries without synchronisation beyond an
// atomic counter, so the benchmark measures dispatcher cost, not
// receiver cost.
type sinkReceiver struct {
	id    uint64
	label labels.Label
	n     atomic.Uint64
}

func (s *sinkReceiver) ReceiverID() uint64       { return s.id }
func (s *sinkReceiver) InputLabel() labels.Label { return s.label }
func (s *sinkReceiver) Enqueue(e *events.Event, sub uint64, block bool) bool {
	s.n.Add(1)
	return true
}

func (s *sinkReceiver) EnqueueBatch(ds []events.QueuedDelivery, block bool) int {
	s.n.Add(uint64(len(ds)))
	return len(ds)
}

// benchSetup subscribes nSubs receivers, each on a distinct equality
// symbol, plus one non-indexable scan subscription, and returns events
// cycling over the symbols.
func benchSetup(b *testing.B, opts Options, nSubs int, lbl labels.Label) (*Dispatcher, []*events.Event) {
	b.Helper()
	var eid atomic.Uint64
	eid.Store(1 << 20)
	if opts.CloneDeliveries {
		opts.NextEventID = func() uint64 { return eid.Add(1) }
	}
	d := New(opts)
	for i := 0; i < nSubs; i++ {
		r := &sinkReceiver{id: recvID.Add(1), label: lbl}
		sym := fmt.Sprintf("SYM%04d", i)
		if _, err := d.Subscribe(MustFilter(PartEq("symbol", sym)), r); err != nil {
			b.Fatal(err)
		}
	}
	scan := &sinkReceiver{id: recvID.Add(1), label: lbl}
	if _, err := d.Subscribe(MustFilter(PartExists("halt")), scan); err != nil {
		b.Fatal(err)
	}
	evs := make([]*events.Event, 256)
	for i := range evs {
		e := events.New(uint64(i + 1))
		sym := fmt.Sprintf("SYM%04d", i%nSubs)
		if _, err := e.AddPart("symbol", lbl, sym, "bench"); err != nil {
			b.Fatal(err)
		}
		if _, err := e.AddPart("price", lbl, int64(100+i), "bench"); err != nil {
			b.Fatal(err)
		}
		evs[i] = e
	}
	return d, evs
}

// BenchmarkPublish measures the single-publisher hot path: one event
// matched against 1024 indexed subscriptions plus one scan
// subscription, in each security mode.
func BenchmarkPublish(b *testing.B) {
	for _, m := range benchModes {
		b.Run(m.name, func(b *testing.B) {
			var lbl labels.Label
			if m.opts.CheckLabels {
				store := tags.NewStore(42)
				lbl = labels.Label{S: labels.NewSet(store.Create("bench-s", "bench"))}
			}
			d, evs := benchSetup(b, m.opts, 1024, lbl)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Publish(evs[i%len(evs)])
			}
		})
	}
}

// BenchmarkPublishParallel measures contended publishing: GOMAXPROCS
// goroutines publishing concurrently against a static subscription
// table — the scenario the sharded lock-free table targets.
func BenchmarkPublishParallel(b *testing.B) {
	for _, m := range benchModes {
		b.Run(m.name, func(b *testing.B) {
			var lbl labels.Label
			if m.opts.CheckLabels {
				store := tags.NewStore(42)
				lbl = labels.Label{S: labels.NewSet(store.Create("bench-s", "bench"))}
			}
			d, evs := benchSetup(b, m.opts, 1024, lbl)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := int(recvID.Add(1)) // decorrelate goroutine starting points
				for pb.Next() {
					d.Publish(evs[i%len(evs)])
					i++
				}
			})
		})
	}
}

// BenchmarkPublishFanout measures a publish that matches many
// receivers at once (64 subscribers on one symbol): the batched
// delivery path.
func BenchmarkPublishFanout(b *testing.B) {
	for _, m := range benchModes {
		b.Run(m.name, func(b *testing.B) {
			var eid atomic.Uint64
			eid.Store(1 << 20)
			opts := m.opts
			if opts.CloneDeliveries {
				opts.NextEventID = func() uint64 { return eid.Add(1) }
			}
			d := New(opts)
			for i := 0; i < 64; i++ {
				r := &sinkReceiver{id: recvID.Add(1)}
				if _, err := d.Subscribe(MustFilter(PartEq("symbol", "HOT")), r); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := events.New(uint64(i + 1))
				if _, err := e.AddPart("symbol", labels.Label{}, "HOT", "bench"); err != nil {
					b.Fatal(err)
				}
				d.Publish(e)
			}
		})
	}
}

// BenchmarkPublishDeliver measures the full publish→deliver path with
// a fresh event per iteration (event creation included), so delivery
// bookkeeping is not amortised away by re-published events.
func BenchmarkPublishDeliver(b *testing.B) {
	for _, m := range benchModes {
		b.Run(m.name, func(b *testing.B) {
			var eid atomic.Uint64
			eid.Store(1 << 20)
			opts := m.opts
			if opts.CloneDeliveries {
				opts.NextEventID = func() uint64 { return eid.Add(1) }
			}
			d := New(opts)
			for i := 0; i < 512; i++ {
				r := &sinkReceiver{id: recvID.Add(1)}
				sym := fmt.Sprintf("SYM%04d", i)
				if _, err := d.Subscribe(MustFilter(PartEq("symbol", sym)), r); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := events.New(uint64(i + 1))
				sym := fmt.Sprintf("SYM%04d", i%512)
				if _, err := e.AddPart("symbol", labels.Label{}, sym, "bench"); err != nil {
					b.Fatal(err)
				}
				d.Publish(e)
			}
		})
	}
}

// BenchmarkPublishBatch measures the batched path: runs of 64 events
// published in one PublishBatch call against 512 subscriptions, with
// per-receiver grouped enqueue.
func BenchmarkPublishBatch(b *testing.B) {
	for _, m := range benchModes {
		b.Run(m.name, func(b *testing.B) {
			var eid atomic.Uint64
			eid.Store(1 << 20)
			opts := m.opts
			if opts.CloneDeliveries {
				opts.NextEventID = func() uint64 { return eid.Add(1) }
			}
			d := New(opts)
			for i := 0; i < 512; i++ {
				r := &sinkReceiver{id: recvID.Add(1)}
				sym := fmt.Sprintf("SYM%04d", i)
				if _, err := d.Subscribe(MustFilter(PartEq("symbol", sym)), r); err != nil {
					b.Fatal(err)
				}
			}
			batch := make([]*events.Event, 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range batch {
					e := events.New(uint64(i*64 + j + 1))
					sym := fmt.Sprintf("SYM%04d", (i*64+j)%512)
					if _, err := e.AddPart("symbol", labels.Label{}, sym, "bench"); err != nil {
						b.Fatal(err)
					}
					batch[j] = e
				}
				d.PublishBatch(batch, true)
			}
		})
	}
}

// BenchmarkSubscribeChurn measures control-plane cost: subscribe +
// unsubscribe under copy-on-write snapshots.
func BenchmarkSubscribeChurn(b *testing.B) {
	d := New(Options{CheckLabels: true})
	for i := 0; i < 256; i++ {
		r := &sinkReceiver{id: recvID.Add(1)}
		sym := fmt.Sprintf("SYM%04d", i)
		if _, err := d.Subscribe(MustFilter(PartEq("symbol", sym)), r); err != nil {
			b.Fatal(err)
		}
	}
	r := &sinkReceiver{id: recvID.Add(1)}
	f := MustFilter(PartEq("symbol", "CHURN"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := d.Subscribe(f, r)
		if err != nil {
			b.Fatal(err)
		}
		d.Unsubscribe(id)
	}
}

// BenchmarkPublishWideLabels measures label admission at paper scale:
// a 200-tag universe (one tag per trader, §6.2 — far past the old
// 64-bit mask), 64 subscribers on one symbol each carrying the full
// 200-tag input label, and events whose part labels draw pairs from
// the universe. With the 256-bit mask every subset test is a few word
// ops; with a narrower mask these sets are inexact and every check
// walks the sorted-slice merge.
func BenchmarkPublishWideLabels(b *testing.B) {
	store := tags.NewStore(991199)
	universe := make([]tags.Tag, 200)
	for i := range universe {
		universe[i] = store.Create("wide", "bench")
	}
	in := labels.Label{S: labels.NewSet(universe...)}

	for _, m := range benchModes[1:2] { // labels mode: pure admission cost
		b.Run(m.name, func(b *testing.B) {
			d := New(m.opts)
			for i := 0; i < 64; i++ {
				r := &sinkReceiver{id: recvID.Add(1), label: in}
				if _, err := d.Subscribe(MustFilter(PartEq("symbol", "WIDE")), r); err != nil {
					b.Fatal(err)
				}
			}
			evs := make([]*events.Event, 256)
			for i := range evs {
				e := events.New(uint64(i + 1))
				pl := labels.Label{S: labels.NewSet(universe[i%200], universe[(i*31+7)%200])}
				if _, err := e.AddPart("symbol", pl, "WIDE", "bench"); err != nil {
					b.Fatal(err)
				}
				evs[i] = e
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Publish(evs[i%len(evs)])
			}
		})
	}
}
