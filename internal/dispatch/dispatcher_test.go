package dispatch

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/events"
	"repro/internal/freeze"
	"repro/internal/labels"
	"repro/internal/tags"
)

// fakeReceiver collects deliveries synchronously.
type fakeReceiver struct {
	id    uint64
	label labels.Label
	mu    sync.Mutex
	got   []*events.Event
	subs  []uint64
	dead  bool
}

func (f *fakeReceiver) ReceiverID() uint64       { return f.id }
func (f *fakeReceiver) InputLabel() labels.Label { return f.label }
func (f *fakeReceiver) Enqueue(e *events.Event, sub uint64, block bool) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return false
	}
	f.got = append(f.got, e)
	f.subs = append(f.subs, sub)
	return true
}

func (f *fakeReceiver) EnqueueBatch(ds []events.QueuedDelivery, block bool) int {
	return EnqueueSeq(f, ds, block)
}

func (f *fakeReceiver) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.got)
}

var recvID atomic.Uint64

func newRecv(l labels.Label) *fakeReceiver {
	return &fakeReceiver{id: recvID.Add(1), label: l}
}

func newDispatcher(check bool) *Dispatcher {
	return New(Options{CheckLabels: check, FreezeOnPublish: check})
}

func TestSubscribeValidation(t *testing.T) {
	d := newDispatcher(true)
	if _, err := d.Subscribe(nil, newRecv(labels.Label{})); err != ErrEmptyFilter {
		t.Fatalf("nil filter error = %v", err)
	}
	if _, err := d.Subscribe(MustFilter(PartExists("p")), nil); err != ErrNilReceiver {
		t.Fatalf("nil receiver error = %v", err)
	}
}

func TestPublishDropsPartlessEvents(t *testing.T) {
	d := newDispatcher(true)
	r := newRecv(labels.Label{})
	if _, err := d.Subscribe(MustFilter(PartExists("p")), r); err != nil {
		t.Fatal(err)
	}
	if n := d.Publish(events.New(1)); n != 0 {
		t.Fatalf("empty event delivered %d times", n)
	}
	if st := d.Stats(); st.Dropped != 1 || st.Published != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPublishDeliversToMatchingOnly(t *testing.T) {
	d := newDispatcher(true)
	msft := newRecv(labels.Label{})
	goog := newRecv(labels.Label{})
	if _, err := d.Subscribe(MustFilter(PartEq("symbol", "MSFT")), msft); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Subscribe(MustFilter(PartEq("symbol", "GOOG")), goog); err != nil {
		t.Fatal(err)
	}
	e := events.New(1)
	if _, err := e.AddPart("symbol", labels.Label{}, "MSFT", "x"); err != nil {
		t.Fatal(err)
	}
	if n := d.Publish(e); n != 1 {
		t.Fatalf("delivered %d, want 1", n)
	}
	if msft.count() != 1 || goog.count() != 0 {
		t.Fatalf("deliveries: msft=%d goog=%d", msft.count(), goog.count())
	}
	// The index should have found the subscription without scanning.
	st := d.Stats()
	if st.IndexHits == 0 {
		t.Fatal("equality subscription not served by index")
	}
	if st.ScanChecks != 0 {
		t.Fatalf("scan consulted (%d) despite all filters indexable", st.ScanChecks)
	}
}

func TestScanListUsedForNonIndexable(t *testing.T) {
	d := newDispatcher(true)
	r := newRecv(labels.Label{})
	if _, err := d.Subscribe(MustFilter(PartExists("anything")), r); err != nil {
		t.Fatal(err)
	}
	e := events.New(1)
	if _, err := e.AddPart("anything", labels.Label{}, int64(1), "x"); err != nil {
		t.Fatal(err)
	}
	if n := d.Publish(e); n != 1 {
		t.Fatalf("delivered %d, want 1", n)
	}
	if st := d.Stats(); st.ScanChecks == 0 {
		t.Fatal("scan list unused for non-indexable filter")
	}
}

func TestLabelAdmissionAtMatchTime(t *testing.T) {
	store := tags.NewStore(1)
	secret := store.Create("s", "u")
	lbl := labels.Label{S: labels.NewSet(secret)}

	d := newDispatcher(true)
	cleared := newRecv(lbl)
	public := newRecv(labels.Label{})
	f := MustFilter(PartEq("symbol", "MSFT"))
	if _, err := d.Subscribe(f, cleared); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Subscribe(f, public); err != nil {
		t.Fatal(err)
	}

	e := events.New(1)
	if _, err := e.AddPart("symbol", lbl, "MSFT", "x"); err != nil {
		t.Fatal(err)
	}
	if n := d.Publish(e); n != 1 {
		t.Fatalf("delivered %d, want 1", n)
	}
	if public.count() != 0 || cleared.count() != 1 {
		t.Fatal("label admission failed at match time")
	}
}

func TestPublishFreezesParts(t *testing.T) {
	d := newDispatcher(true)
	r := newRecv(labels.Label{})
	if _, err := d.Subscribe(MustFilter(PartExists("p")), r); err != nil {
		t.Fatal(err)
	}
	e := events.New(1)
	m := mustMap(t, "k", "v")
	if _, err := e.AddPart("p", labels.Label{}, m, "x"); err != nil {
		t.Fatal(err)
	}
	d.Publish(e)
	if !m.Frozen() {
		t.Fatal("publish did not freeze part data")
	}
}

func TestOneDeliveryPerReceiverAcrossSubscriptions(t *testing.T) {
	d := newDispatcher(true)
	r := newRecv(labels.Label{})
	if _, err := d.Subscribe(MustFilter(PartEq("symbol", "MSFT")), r); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Subscribe(MustFilter(PartExists("symbol")), r); err != nil {
		t.Fatal(err)
	}
	e := events.New(1)
	if _, err := e.AddPart("symbol", labels.Label{}, "MSFT", "x"); err != nil {
		t.Fatal(err)
	}
	if n := d.Publish(e); n != 1 {
		t.Fatalf("delivered %d, want 1 (per-receiver dedupe)", n)
	}
}

func TestRedispatchSkipsAlreadyDelivered(t *testing.T) {
	d := newDispatcher(true)
	first := newRecv(labels.Label{})
	late := newRecv(labels.Label{})
	if _, err := d.Subscribe(MustFilter(PartExists("base")), first); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Subscribe(MustFilter(PartExists("extra")), late); err != nil {
		t.Fatal(err)
	}

	e := events.New(1)
	if _, err := e.AddPart("base", labels.Label{}, "v", "x"); err != nil {
		t.Fatal(err)
	}
	if n := d.Publish(e); n != 1 {
		t.Fatalf("initial publish delivered %d", n)
	}

	// A unit adds a part along the main path, then releases.
	if _, err := e.AddPart("extra", labels.Label{}, "w", "first"); err != nil {
		t.Fatal(err)
	}
	if n := d.Redispatch(e); n != 1 {
		t.Fatalf("redispatch delivered %d, want 1", n)
	}
	if first.count() != 1 || late.count() != 1 {
		t.Fatalf("counts: first=%d late=%d", first.count(), late.count())
	}
	// Releasing again without modification delivers nothing new.
	if n := d.Redispatch(e); n != 0 {
		t.Fatalf("idempotent redispatch delivered %d", n)
	}
}

func TestRedispatchRespectsLabels(t *testing.T) {
	store := tags.NewStore(2)
	secret := store.Create("s", "u")
	slbl := labels.Label{S: labels.NewSet(secret)}

	d := newDispatcher(true)
	low := newRecv(labels.Label{})
	if _, err := d.Subscribe(MustFilter(PartExists("extra")), low); err != nil {
		t.Fatal(err)
	}
	e := events.New(1)
	if _, err := e.AddPart("base", labels.Label{}, "v", "x"); err != nil {
		t.Fatal(err)
	}
	d.Publish(e)
	// A secret part is added; the released event must not reach the
	// public unit even though its filter names the new part.
	if _, err := e.AddPart("extra", slbl, "w", "y"); err != nil {
		t.Fatal(err)
	}
	if n := d.Redispatch(e); n != 0 {
		t.Fatalf("redispatch leaked to lower input label: %d", n)
	}
}

func TestCloneDeliveriesAreIndependent(t *testing.T) {
	var id atomic.Uint64
	id.Store(100)
	d := New(Options{
		CheckLabels:     true,
		CloneDeliveries: true,
		NextEventID:     func() uint64 { return id.Add(1) },
	})
	a, b := newRecv(labels.Label{}), newRecv(labels.Label{})
	if _, err := d.Subscribe(MustFilter(PartExists("p")), a); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Subscribe(MustFilter(PartExists("p")), b); err != nil {
		t.Fatal(err)
	}
	e := events.New(1)
	m := mustMap(t, "k", "v")
	if _, err := e.AddPart("p", labels.Label{}, m, "x"); err != nil {
		t.Fatal(err)
	}
	if n := d.Publish(e); n != 2 {
		t.Fatalf("delivered %d, want 2", n)
	}
	ea, eb := a.got[0], b.got[0]
	if ea == e || eb == e || ea == eb {
		t.Fatal("clone mode shared event objects")
	}
	if ea.ID() == e.ID() || ea.ID() == eb.ID() {
		t.Fatal("clones did not get fresh IDs")
	}
	// Original data must not be aliased.
	if ea.Parts()[0].Data == m {
		t.Fatal("clone shares part data with original")
	}
}

func TestCloneRequiresIDGenerator(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with CloneDeliveries and nil NextEventID did not panic")
		}
	}()
	New(Options{CloneDeliveries: true})
}

func TestUnsubscribeStopsDeliveries(t *testing.T) {
	d := newDispatcher(true)
	r := newRecv(labels.Label{})
	id, err := d.Subscribe(MustFilter(PartEq("symbol", "MSFT")), r)
	if err != nil {
		t.Fatal(err)
	}
	if d.SubscriptionCount() != 1 {
		t.Fatal("SubscriptionCount wrong")
	}
	d.Unsubscribe(id)
	d.Unsubscribe(id) // idempotent
	if d.SubscriptionCount() != 0 {
		t.Fatal("Unsubscribe left subscription")
	}
	e := events.New(1)
	if _, err := e.AddPart("symbol", labels.Label{}, "MSFT", "x"); err != nil {
		t.Fatal(err)
	}
	if n := d.Publish(e); n != 0 {
		t.Fatalf("delivered %d after unsubscribe", n)
	}
}

func TestDeadReceiverNotCounted(t *testing.T) {
	d := newDispatcher(true)
	r := newRecv(labels.Label{})
	r.dead = true
	if _, err := d.Subscribe(MustFilter(PartExists("p")), r); err != nil {
		t.Fatal(err)
	}
	e := events.New(1)
	if _, err := e.AddPart("p", labels.Label{}, "v", "x"); err != nil {
		t.Fatal(err)
	}
	if n := d.Publish(e); n != 0 {
		t.Fatalf("dead receiver counted: %d", n)
	}
}

func TestConcurrentPublishAndSubscribe(t *testing.T) {
	d := newDispatcher(true)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Churning subscriber.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r := newRecv(labels.Label{})
			id, _ := d.Subscribe(MustFilter(PartEq("symbol", "MSFT")), r)
			d.Unsubscribe(id)
		}
	}()
	// Publisher.
	for i := 0; i < 2000; i++ {
		e := events.New(uint64(i))
		if _, err := e.AddPart("symbol", labels.Label{}, "MSFT", "x"); err != nil {
			t.Fatal(err)
		}
		d.Publish(e)
	}
	close(stop)
	wg.Wait()
}

// mustMap builds a freezable map for tests.
func mustMap(t *testing.T, pairs ...any) *freeze.Map {
	t.Helper()
	m := freeze.NewMap()
	for i := 0; i < len(pairs); i += 2 {
		if err := m.Put(pairs[i].(string), pairs[i+1]); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

// TestScanBucketsProbeOnlyMatchingPartNames pins the per-part-name
// scan buckets: a publish checks only the scan subscriptions whose
// anchor part name appears among the event's parts, instead of
// walking every scan subscription.
func TestScanBucketsProbeOnlyMatchingPartNames(t *testing.T) {
	d := newDispatcher(true)
	halt := newRecv(labels.Label{})
	audit := newRecv(labels.Label{})
	// Two non-indexable subscriptions with different anchors.
	if _, err := d.Subscribe(MustFilter(PartExists("halt")), halt); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Subscribe(MustFilter(PartExists("audit")), audit); err != nil {
		t.Fatal(err)
	}

	// An event with neither part probes no bucket at all.
	e := events.New(1)
	addScalar(t, e, "symbol", "MSFT")
	d.Publish(e)
	if st := d.Stats(); st.ScanChecks != 0 {
		t.Fatalf("unrelated event checked %d scan subscriptions", st.ScanChecks)
	}

	// An event with the halt part checks exactly the halt bucket.
	e = events.New(2)
	addScalar(t, e, "halt", true)
	d.Publish(e)
	if st := d.Stats(); st.ScanChecks != 1 {
		t.Fatalf("halt event checked %d scan subscriptions, want 1", st.ScanChecks)
	}
	if halt.count() != 1 || audit.count() != 0 {
		t.Fatalf("deliveries halt=%d audit=%d", halt.count(), audit.count())
	}

	// Unsubscribing empties the bucket again.
	d.Unsubscribe(1)
	d.Unsubscribe(2)
	e = events.New(3)
	addScalar(t, e, "halt", true)
	addScalar(t, e, "audit", true)
	before := d.Stats().ScanChecks
	d.Publish(e)
	if st := d.Stats(); st.ScanChecks != before {
		t.Fatalf("unsubscribed buckets still checked: %d → %d", before, st.ScanChecks)
	}
}

// TestScanBucketMatchesMultiCondFilter: a scan filter is bucketed by
// its FIRST condition's part name; events carrying that part still
// have the full conjunction verified.
func TestScanBucketMatchesMultiCondFilter(t *testing.T) {
	d := newDispatcher(true)
	r := newRecv(labels.Label{})
	f := MustFilter(PartExists("alpha"), Cond{Part: "beta", Op: Gt, Value: int64(10)})
	if _, err := d.Subscribe(f, r); err != nil {
		t.Fatal(err)
	}
	e := events.New(1)
	addScalar(t, e, "alpha", "x")
	addScalar(t, e, "beta", int64(5))
	if n := d.Publish(e); n != 0 {
		t.Fatal("conjunction not verified")
	}
	e = events.New(2)
	addScalar(t, e, "alpha", "x")
	addScalar(t, e, "beta", int64(50))
	if n := d.Publish(e); n != 1 {
		t.Fatal("matching event missed via scan bucket")
	}
}
