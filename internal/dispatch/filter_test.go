package dispatch

import (
	"testing"

	"repro/internal/events"
	"repro/internal/freeze"
	"repro/internal/labels"
	"repro/internal/tags"
)

func tickEvent(t *testing.T, symbol string, price int64, lbl labels.Label) *events.Event {
	t.Helper()
	e := events.New(1)
	if _, err := e.AddPart("type", lbl, "tick", "exchange"); err != nil {
		t.Fatal(err)
	}
	body := freeze.MapOf("symbol", symbol, "price", price)
	if _, err := e.AddPart("body", lbl, body, "exchange"); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewFilterValidation(t *testing.T) {
	if _, err := NewFilter(); err != ErrEmptyFilter {
		t.Fatalf("empty filter error = %v", err)
	}
	if _, err := NewFilter(Cond{Op: Eq, Value: "x"}); err == nil {
		t.Fatal("empty part name accepted")
	}
	if _, err := NewFilter(PartExists("p")); err != nil {
		t.Fatalf("valid filter rejected: %v", err)
	}
}

func TestMustFilterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustFilter did not panic")
		}
	}()
	MustFilter()
}

func TestFilterOps(t *testing.T) {
	e := tickEvent(t, "MSFT", 1234, labels.Label{})
	pub := labels.Label{}
	cases := []struct {
		name string
		cond Cond
		want bool
	}{
		{"exists", PartExists("type"), true},
		{"exists-missing", PartExists("nope"), false},
		{"eq-scalar", PartEq("type", "tick"), true},
		{"eq-scalar-miss", PartEq("type", "trade"), false},
		{"eq-key", KeyEq("body", "symbol", "MSFT"), true},
		{"eq-key-miss", KeyEq("body", "symbol", "GOOG"), false},
		{"eq-key-absent", KeyEq("body", "venue", "LSE"), false},
		{"eq-int-widening", KeyEq("body", "price", int(1234)), true},
		{"ne", Cond{Part: "type", Op: Ne, Value: "trade"}, true},
		{"ne-false", Cond{Part: "type", Op: Ne, Value: "tick"}, false},
		{"lt", Cond{Part: "body", Key: "price", Op: Lt, Value: int64(2000)}, true},
		{"lt-false", Cond{Part: "body", Key: "price", Op: Lt, Value: int64(100)}, false},
		{"gt", Cond{Part: "body", Key: "price", Op: Gt, Value: 100.0}, true},
		{"prefix", Cond{Part: "type", Op: Prefix, Value: "ti"}, true},
		{"prefix-false", Cond{Part: "type", Op: Prefix, Value: "tr"}, false},
		{"key-on-scalar-part", KeyEq("type", "k", "v"), false},
		{"lt-non-numeric", Cond{Part: "type", Op: Lt, Value: int64(5)}, false},
	}
	for _, c := range cases {
		f := MustFilter(c.cond)
		if got := f.Matches(e, pub, true); got != c.want {
			t.Errorf("%s: Matches = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestFilterConjunction(t *testing.T) {
	e := tickEvent(t, "MSFT", 1234, labels.Label{})
	both := MustFilter(PartEq("type", "tick"), KeyEq("body", "symbol", "MSFT"))
	if !both.Matches(e, labels.Label{}, true) {
		t.Fatal("conjunction of satisfied conds failed")
	}
	mixed := MustFilter(PartEq("type", "tick"), KeyEq("body", "symbol", "GOOG"))
	if mixed.Matches(e, labels.Label{}, true) {
		t.Fatal("conjunction with one failing cond matched")
	}
}

func TestFilterLabelAdmission(t *testing.T) {
	store := tags.NewStore(1)
	secret := store.Create("s", "t")
	lbl := labels.Label{S: labels.NewSet(secret)}
	e := tickEvent(t, "MSFT", 1234, lbl)
	f := MustFilter(KeyEq("body", "symbol", "MSFT"))

	// A public subscriber must not match: the consulted part requires
	// the secret tag.
	if f.Matches(e, labels.Label{}, true) {
		t.Fatal("label admission bypassed")
	}
	// A cleared subscriber matches.
	if !f.Matches(e, lbl, true) {
		t.Fatal("cleared subscriber did not match")
	}
	// With checks off (no-security mode) the public subscriber matches.
	if !f.Matches(e, labels.Label{}, false) {
		t.Fatal("no-security matching still applied labels")
	}
}

func TestFilterIntegrityAdmission(t *testing.T) {
	store := tags.NewStore(2)
	s := store.Create("i-exchange", "x")
	endorsed := labels.Label{I: labels.NewSet(s)}
	e := tickEvent(t, "MSFT", 1234, endorsed)
	plain := tickEvent(t, "MSFT", 1234, labels.Label{})

	reader := labels.Label{I: labels.NewSet(s)}
	f := MustFilter(KeyEq("body", "symbol", "MSFT"))
	if !f.Matches(e, reader, true) {
		t.Fatal("endorsed event rejected by endorsed reader")
	}
	// §6.1: a reader requiring integrity s must not perceive unendorsed
	// events.
	if f.Matches(plain, reader, true) {
		t.Fatal("unendorsed event matched endorsed reader")
	}
}

func TestIndexKey(t *testing.T) {
	withEq := MustFilter(PartExists("type"), KeyEq("body", "symbol", "MSFT"))
	k, ok := withEq.IndexKey()
	if !ok {
		t.Fatal("Eq filter not indexable")
	}
	onlyExists := MustFilter(PartExists("type"))
	if _, ok := onlyExists.IndexKey(); ok {
		t.Fatal("Exists-only filter claimed indexable")
	}
	// Floats are not indexable (representation ambiguity).
	floatEq := MustFilter(KeyEq("body", "price", 1.5))
	if _, ok := floatEq.IndexKey(); ok {
		t.Fatal("float Eq claimed indexable")
	}
	// Same value spaces must give equal keys; different parts, not.
	k2, _ := MustFilter(KeyEq("body", "symbol", "MSFT")).IndexKey()
	if k != k2 {
		t.Fatal("identical Eq conds gave different index keys")
	}
	k3, _ := MustFilter(KeyEq("other", "symbol", "MSFT")).IndexKey()
	if k == k3 {
		t.Fatal("different parts share an index key")
	}
}

func TestIndexKeyTagValues(t *testing.T) {
	store := tags.NewStore(3)
	a, b := store.Create("a", "u"), store.Create("b", "u")
	ka, ok := MustFilter(PartEq("tag", a)).IndexKey()
	if !ok {
		t.Fatal("tag Eq not indexable")
	}
	kb, _ := MustFilter(PartEq("tag", b)).IndexKey()
	if ka == kb {
		t.Fatal("distinct tags share an index key")
	}
}

func TestMultiVersionPartsAnyMaySatisfy(t *testing.T) {
	e := events.New(9)
	if _, err := e.AddPart("reason", labels.Label{}, "v1", "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddPart("reason", labels.Label{}, "v2", "b"); err != nil {
		t.Fatal(err)
	}
	f := MustFilter(PartEq("reason", "v2"))
	if !f.Matches(e, labels.Label{}, true) {
		t.Fatal("second version not consulted")
	}
}

func TestFilterStringRendering(t *testing.T) {
	f := MustFilter(PartExists("a"), KeyEq("b", "k", int64(1)))
	if f.String() == "" {
		t.Fatal("empty filter String")
	}
	if MustFilter(Cond{Part: "p", Op: Op(99), Value: 1}).Matches(tickEvent(t, "X", 1, labels.Label{}), labels.Label{}, true) {
		t.Fatal("unknown op matched")
	}
}
