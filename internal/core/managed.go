package core

import (
	"fmt"
	"sync"

	"repro/internal/dispatch"
	"repro/internal/events"
	"repro/internal/labels"
	"repro/internal/priv"
	"repro/internal/units"
)

// ManagedHandler processes one delivery inside a managed-subscription
// instance. u is the instance's own API handle: label changes,
// privilege acquisitions and scratch State are instance-local.
type ManagedHandler func(u *Unit, e *events.Event, sub uint64)

// ManagedOptions tune a managed subscription.
type ManagedOptions struct {
	// ResetOnDrift re-virgins an instance (labels, privileges, state)
	// after any delivery that left it contaminated beyond its creation
	// label — the Asbestos-event-process behaviour and the paper's
	// "process multiple tags without contaminating its state
	// permanently". Default true.
	//
	// Long-lived stateful services (the Broker's order book) disable it
	// and perform explicit label hygiene instead: they hold the
	// declassification privileges that make retaining state sound.
	ResetOnDrift bool
	// Pin is a confidentiality floor joined into every instance's
	// contamination. A service whose state lives at a fixed level (the
	// Broker's order book at {b}) pins its instances there so that
	// lower-labelled deliveries (public audit requests) reach the same
	// instance instead of spawning one at a lower level. Raising a
	// contamination is always safe; Pin never lowers anything.
	Pin labels.Set
	// QueueCap bounds each instance's delivery queue (0 = system
	// default).
	QueueCap int
	// KeepDeliveries opts out of the clone-mode auto-recycle. By
	// default the managed runtime returns a labels+clone delivery to
	// the clone pool once the handler has returned and any release
	// re-dispatch has completed — at that point the delivery is
	// provably dropped (see runInstance). A handler that retains the
	// *events.Event or its *Part structs past return (rather than the
	// data values read through the Table 1 API, which stay valid)
	// must set KeepDeliveries. None of the stock units need it.
	KeepDeliveries bool
}

// SubscribeManaged declares a managed subscription (Table 1:
// subscribeManaged): DEFCon creates and reuses separate unit instances
// with contaminations appropriate for the processing of incoming
// events, so the subscribing unit's own state is never contaminated.
func (u *Unit) SubscribeManaged(handler ManagedHandler, filter *dispatch.Filter) (uint64, error) {
	return u.SubscribeManagedOpts(handler, filter, ManagedOptions{ResetOnDrift: true})
}

// SubscribeManagedOpts is SubscribeManaged with explicit options.
func (u *Unit) SubscribeManagedOpts(handler ManagedHandler, filter *dispatch.Filter, opts ManagedOptions) (uint64, error) {
	ids, err := u.SubscribeManagedMulti(handler, opts, filter)
	if err != nil {
		return 0, err
	}
	return ids[0], nil
}

// SubscribeManagedMulti registers several filters behind one managed
// router: all deliveries share a single instance pool, so a stateful
// service can receive different event shapes (the Broker's orders and
// audited trades) in the same instance. Returns one subscription ID
// per filter.
func (u *Unit) SubscribeManagedMulti(handler ManagedHandler, opts ManagedOptions, filters ...*dispatch.Filter) ([]uint64, error) {
	u.tax()
	if handler == nil {
		return nil, fmt.Errorf("core: nil managed handler")
	}
	if len(filters) == 0 {
		return nil, fmt.Errorf("core: managed subscription needs at least one filter")
	}
	r := &managedRouter{
		id:      u.sys.nextUnitID(),
		sys:     u.sys,
		owner:   u,
		handler: handler,
		opts:    opts,
		pool:    make(map[string]*Unit),
	}
	ids := make([]uint64, 0, len(filters))
	for _, f := range filters {
		id, err := u.sys.disp.Subscribe(f, r)
		if err != nil {
			for _, done := range ids {
				u.sys.disp.Unsubscribe(done)
			}
			return nil, err
		}
		ids = append(ids, id)
	}
	u.subsMu.Lock()
	u.subs = append(u.subs, ids...)
	u.subsMu.Unlock()
	return ids, nil
}

// managedRouter is the dispatch.Receiver behind a managed subscription:
// it matches on the owner's *potential* input label and routes each
// delivery to a pooled instance at the contamination the event needs.
type managedRouter struct {
	id      uint64
	sys     *System
	owner   *Unit
	handler ManagedHandler
	opts    ManagedOptions

	mu   sync.Mutex
	pool map[string]*Unit // keyed by creation-label Key
	seq  int
}

// ReceiverID implements dispatch.Receiver.
func (r *managedRouter) ReceiverID() uint64 { return r.id }

// InputLabel implements dispatch.Receiver with the owner's potential
// input label: the label the unit could legitimately raise itself to —
// (Sin ∪ O+, Iin \ O−). Matching against it lets events the owner
// could only read after self-contamination reach the router, which
// then manufactures an instance at the required level.
func (r *managedRouter) InputLabel() labels.Label {
	if !r.sys.mode.CheckLabels() {
		return labels.Label{}
	}
	in := r.owner.inst.InputLabel()
	var plus, minus labels.Set
	r.owner.inst.WithPrivileges(func(o *priv.Owned) {
		plus = o.Set(priv.Plus)
		minus = o.Set(priv.Minus)
	})
	return labels.Label{S: in.S.Union(plus), I: in.I.Subtract(minus)}
}

// Enqueue implements dispatch.Receiver: it computes the contamination
// the event requires, fetches or creates the pooled instance for that
// level, and hands the delivery over.
func (r *managedRouter) Enqueue(e *events.Event, sub uint64, block bool) bool {
	needed := r.neededLabel(e)
	inst := r.instanceFor(needed)
	if inst == nil {
		return false
	}
	return inst.inst.Enqueue(e, sub, block)
}

// EnqueueBatch implements dispatch.Receiver's batched path. The
// router resolves each event's instance individually (events in one
// batch may need different contamination levels), so one refusing
// instance must not sink the deliveries bound for the others:
// EnqueueSeq attempts every delivery and recycles refusals.
func (r *managedRouter) EnqueueBatch(ds []events.QueuedDelivery, block bool) int {
	return dispatch.EnqueueSeq(r, ds, block)
}

// neededLabel joins the labels of every part the owner could read at
// its potential label: the contamination "appropriate for the
// processing of the incoming event". Parts beyond the potential label
// (e.g. an identity part whose extra tag arrives only via a carried
// privilege) are excluded — the instance escalates itself later if the
// handler acquires the privilege.
func (r *managedRouter) neededLabel(e *events.Event) labels.Label {
	if !r.sys.mode.CheckLabels() {
		return labels.Label{}
	}
	base := r.owner.inst.InputLabel()
	needed := labels.Label{S: base.S.Union(r.opts.Pin), I: base.I}
	for _, p := range e.VisibleAll(r.InputLabel()) {
		needed = needed.Join(p.Label)
	}
	// Integrity may only drop tags the owner holds t− for; Join already
	// intersects, and admission guaranteed the dropped tags are in O−.
	return needed
}

// instanceFor returns the pooled instance for a contamination level,
// creating one (and its processing goroutine) on first use.
func (r *managedRouter) instanceFor(needed labels.Label) *Unit {
	key := needed.Key()
	r.mu.Lock()
	defer r.mu.Unlock()
	if inst, ok := r.pool[key]; ok {
		return inst
	}
	if r.sys.Closed() {
		return nil
	}

	// The instance's privileges are a snapshot of the owner's: it is
	// the same principal's code running at a different contamination.
	var owned *priv.Owned
	r.owner.inst.WithPrivileges(func(o *priv.Owned) { owned = o.Clone() })

	// Output label: the owner's, plus any needed confidentiality tags
	// the instance cannot declassify — without t− the instance's
	// output must carry the contamination it absorbs.
	ownerOut := r.owner.inst.OutputLabel()
	outS := ownerOut.S
	for _, t := range needed.S.Slice() {
		if !owned.Has(t, priv.Minus) {
			outS = outS.Add(t)
		}
	}
	out := labels.Label{S: outS, I: ownerOut.I.Intersect(needed.I)}

	r.seq++
	name := fmt.Sprintf("%s@managed%d", r.owner.name, r.seq)
	inst := r.sys.buildUnitAt(name, needed, out, owned, r.opts.QueueCap)
	r.pool[key] = inst
	// Register the instance so system-wide accounting (TotalQueueLen,
	// shutdown) covers it.
	r.sys.mu.Lock()
	r.sys.units[inst.inst.ReceiverID()] = inst
	r.sys.mu.Unlock()
	r.sys.track(func() { r.runInstance(inst) })
	return inst
}

// managedDrainBatch bounds how many deliveries runInstance drains per
// queue synchronisation.
const managedDrainBatch = 16

// runInstance is a managed instance's processing loop: deliver →
// handler → release (re-dispatching modifications) → optional
// re-virgining → clone recycle. Deliveries are drained in batches
// (one queue synchronisation per run) but processed strictly in order
// with per-delivery release/reset semantics, so handler observable
// behaviour is identical to the one-at-a-time loop.
//
// The instance's isolation context persists across deliveries — and
// across Reset — by design: pooled reuse keeps the isolate on the
// memoized warm interceptor path, and its replicas belong to the
// owner's code identity, not to event contamination (see
// units.Instance.Reset).
func (r *managedRouter) runInstance(inst *Unit) {
	recycle := !r.opts.KeepDeliveries && r.sys.mode.CloneDeliveries()
	var buf [managedDrainBatch]units.Delivery
	for {
		n, err := inst.inst.NextBatch(buf[:])
		if err != nil {
			return
		}
		for k := 0; k < n; k++ {
			d := buf[k]
			buf[k] = units.Delivery{}
			r.handler(inst, d.Event, d.Sub)
			if d.Event.Generation() != d.Gen {
				r.sys.disp.Redispatch(d.Event)
			}
			if r.opts.ResetOnDrift && inst.inst.Drifted() {
				inst.inst.Reset()
			}
			if recycle {
				// Return-path proof that the delivery is dropped: in
				// clone mode the dispatcher handed this router a
				// private deep copy and routed it to exactly this
				// instance (delivery dedup is per receiver); the
				// handler has returned; and the re-dispatch above ran
				// synchronously and hands other receivers fresh
				// clones, never this one. Unless the handler retained
				// the event shell itself — forbidden by the handler
				// contract and opted out of via KeepDeliveries — no
				// reference remains, so the clone goes back to the
				// pool without harness cooperation. Data values
				// already read stay valid (pool.go: only the shells
				// are pooled).
				d.Event.Recycle()
			}
		}
	}
}

// InstanceCount reports the number of pooled managed instances behind
// the router; tests and the memory benchmarks read it through
// System.ManagedInstances.
func (r *managedRouter) InstanceCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pool)
}
