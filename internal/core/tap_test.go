package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/dispatch"
	"repro/internal/events"
	"repro/internal/labels"
)

func TestTapBypassesLabels(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	alice := s.NewUnit("alice", UnitConfig{})
	secret := alice.CreateTag("s")

	tap, err := s.NewTap(dispatch.MustFilter(dispatch.PartExists("order")), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer tap.Close()

	e := alice.CreateEvent()
	if err := alice.AddPart(e, labels.NewSet(secret), labels.EmptySet, "order", "x"); err != nil {
		t.Fatal(err)
	}
	if err := alice.Publish(e); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-tap.Events():
		if got.ID() != e.ID() {
			t.Fatal("tap delivered wrong event")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("tap did not observe protected event")
	}
}

func TestTapCloseStopsFeed(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	u := s.NewUnit("u", UnitConfig{})
	tap, err := s.NewTap(dispatch.MustFilter(dispatch.PartExists("p")), 8)
	if err != nil {
		t.Fatal(err)
	}
	tap.Close()
	e := u.CreateEvent()
	if err := u.AddPart(e, labels.EmptySet, labels.EmptySet, "p", "v"); err != nil {
		t.Fatal(err)
	}
	if err := u.Publish(e); err != nil {
		t.Fatal(err)
	}
	select {
	case <-tap.Events():
		t.Fatal("closed tap still fed")
	case <-time.After(30 * time.Millisecond):
	}
}

func TestTapValidation(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	if _, err := s.NewTap(nil, 8); err == nil {
		t.Fatal("nil filter accepted")
	}
}

func TestInjectPreservesLabels(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	alice := s.NewUnit("alice", UnitConfig{})
	secret := alice.CreateTag("s")

	cleared := s.NewUnit("cleared", UnitConfig{
		In: labels.Label{S: labels.NewSet(secret)},
	})
	if _, err := cleared.Subscribe(dispatch.MustFilter(dispatch.PartExists("imported"))); err != nil {
		t.Fatal(err)
	}
	low := s.NewUnit("low", UnitConfig{})
	if _, err := low.Subscribe(dispatch.MustFilter(dispatch.PartExists("imported"))); err != nil {
		t.Fatal(err)
	}

	// A node-runtime import: fully formed event with a protected part.
	e := events.New(s.NextEventID())
	if _, err := e.AddPart("imported", labels.Label{S: labels.NewSet(secret)}, "v", "link"); err != nil {
		t.Fatal(err)
	}
	if err := s.Inject(e); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cleared.GetEvent(); err != nil {
		t.Fatal("cleared unit did not receive import")
	}
	if low.QueueLen() != 0 {
		t.Fatal("label lost on Inject")
	}
}

func TestInjectAfterClose(t *testing.T) {
	s := NewSystem(Config{Mode: LabelsFreeze})
	s.Close()
	if err := s.Inject(events.New(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Inject after close = %v", err)
	}
}

func TestAccountingMetersActivity(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	busy := s.NewUnit("busy", UnitConfig{})
	idle := s.NewUnit("idle", UnitConfig{})
	_ = idle

	tg := busy.CreateTag("t")
	_ = tg
	e := busy.CreateEvent()
	if err := busy.AddPart(e, labels.EmptySet, labels.EmptySet, "p", "v"); err != nil {
		t.Fatal(err)
	}
	if _, err := busy.ReadPart(e, "p"); err != nil {
		t.Fatal(err)
	}
	if err := busy.Publish(e); err != nil {
		t.Fatal(err)
	}

	u := busy.Usage()
	if u.APICalls < 5 || u.PartsAdded != 1 || u.PartsRead != 1 ||
		u.Published != 1 || u.TagsMinted != 1 {
		t.Fatalf("usage = %+v", u)
	}

	acc := s.Accounting()
	if len(acc) != 2 {
		t.Fatalf("accounts = %d", len(acc))
	}
	if acc[0].Unit != "busy" {
		t.Fatalf("sort order wrong: %q first", acc[0].Unit)
	}
	rep := s.AccountingReport(1)
	if rep == "" {
		t.Fatal("empty report")
	}
}
