package core

// Tests of the delivery-QoS surface: bounded queues, best-effort
// publication, and the backpressure properties behind the trading
// platform's feedback-edge design (DESIGN.md §5.10).

import (
	"testing"
	"time"

	"repro/internal/dispatch"
	"repro/internal/events"
	"repro/internal/freeze"
	"repro/internal/labels"
)

// mustQoSMap builds a small freezable map.
func mustQoSMap(t *testing.T) *freeze.Map {
	t.Helper()
	m := freeze.NewMap()
	if err := m.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPublishBestEffortDropsOnFullQueue(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	pub := s.NewUnit("pub", UnitConfig{})
	slow := s.NewUnit("slow", UnitConfig{QueueCap: 1})
	if _, err := slow.Subscribe(dispatch.MustFilter(dispatch.PartExists("p"))); err != nil {
		t.Fatal(err)
	}
	emit := func(fn func(*events.Event) error) error {
		e := pub.CreateEvent()
		if err := pub.AddPart(e, labels.EmptySet, labels.EmptySet, "p", "v"); err != nil {
			t.Fatal(err)
		}
		return fn(e)
	}
	// Fill the queue.
	if err := emit(pub.PublishBestEffort); err != nil {
		t.Fatal(err)
	}
	// Second publish must return immediately (drop), not block.
	done := make(chan error, 1)
	go func() { done <- emit(pub.PublishBestEffort) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("best-effort publish blocked on full queue")
	}
	// Exactly one delivery was accepted.
	if st := s.DispatchStats(); st.Deliveries != 1 {
		t.Fatalf("deliveries = %d, want 1 (one accepted, one dropped)", st.Deliveries)
	}
}

func TestBlockingPublishWaitsForSpace(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	pub := s.NewUnit("pub", UnitConfig{})
	slow := s.NewUnit("slow", UnitConfig{QueueCap: 1})
	if _, err := slow.Subscribe(dispatch.MustFilter(dispatch.PartExists("p"))); err != nil {
		t.Fatal(err)
	}
	emit := func() {
		e := pub.CreateEvent()
		if err := pub.AddPart(e, labels.EmptySet, labels.EmptySet, "p", "v"); err != nil {
			t.Fatal(err)
		}
		if err := pub.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	emit() // fills the queue
	started := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		close(started)
		emit() // must block until the consumer drains
		close(finished)
	}()
	<-started
	select {
	case <-finished:
		t.Fatal("blocking publish did not backpressure")
	case <-time.After(50 * time.Millisecond):
	}
	// Drain one delivery; the blocked publish must complete.
	if _, _, err := slow.GetEvent(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-finished:
	case <-time.After(2 * time.Second):
		t.Fatal("publish still blocked after drain")
	}
}

func TestSubscribeManagedMultiValidation(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	u := s.NewUnit("u", UnitConfig{})
	if _, err := u.SubscribeManagedMulti(func(*Unit, *events.Event, uint64) {},
		ManagedOptions{}); err == nil {
		t.Fatal("zero filters accepted")
	}
	// A bad filter mid-list must roll back earlier registrations.
	good := dispatch.MustFilter(dispatch.PartExists("a"))
	if _, err := u.SubscribeManagedMulti(func(*Unit, *events.Event, uint64) {},
		ManagedOptions{}, good, nil); err == nil {
		t.Fatal("nil filter accepted")
	}
	if got := s.disp.SubscriptionCount(); got != 0 {
		t.Fatalf("rollback left %d subscriptions", got)
	}
}

func TestUnsubscribeStopsUnitDeliveries(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	pub := s.NewUnit("pub", UnitConfig{})
	u := s.NewUnit("u", UnitConfig{})
	id, err := u.Subscribe(dispatch.MustFilter(dispatch.PartExists("p")))
	if err != nil {
		t.Fatal(err)
	}
	u.Unsubscribe(id)
	e := pub.CreateEvent()
	if err := pub.AddPart(e, labels.EmptySet, labels.EmptySet, "p", "v"); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(e); err != nil {
		t.Fatal(err)
	}
	if u.QueueLen() != 0 {
		t.Fatal("delivery after Unsubscribe")
	}
}

func TestCloneEventNoSecurityDeepCopies(t *testing.T) {
	s := newSys(t, NoSecurity)
	u := s.NewUnit("u", UnitConfig{})
	e := u.CreateEvent()
	m := mustQoSMap(t)
	if err := u.AddPart(e, labels.EmptySet, labels.EmptySet, "p", m); err != nil {
		t.Fatal(err)
	}
	// Without freezing, a clone must not alias the (still mutable)
	// original data.
	c, err := u.CloneEvent(e, labels.EmptySet, labels.EmptySet)
	if err != nil {
		t.Fatal(err)
	}
	if c.Parts()[0].Data == e.Parts()[0].Data {
		t.Fatal("no-security clone aliased mutable data")
	}
}
