package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/dispatch"
	"repro/internal/events"
	"repro/internal/freeze"
	"repro/internal/labels"
	"repro/internal/priv"
	"repro/internal/tags"
	"repro/internal/units"
)

// Component selects a label component in label-change calls, the
// 〈S|I〉 argument of Table 1.
type Component uint8

const (
	// Confidentiality selects the S component.
	Confidentiality Component = iota
	// Integrity selects the I component.
	Integrity
)

// LabelOp selects the direction of a label change, the 〈add|del〉
// argument of Table 1.
type LabelOp uint8

const (
	// Add inserts a tag into a label component (requires t+).
	Add LabelOp = iota
	// Del removes a tag from a label component (requires t−).
	Del
)

// ErrTerminated is returned by GetEvent after system shutdown.
var ErrTerminated = units.ErrTerminated

// ErrNoSuchPart is returned when a part is absent or invisible; the
// two cases are deliberately indistinguishable.
var ErrNoSuchPart = events.ErrNoSuchPart

// PartView is the unit-visible projection of an event part.
type PartView struct {
	Label labels.Label
	Data  freeze.Value
}

// Unit is a processing unit's handle to the DEFCon system — the API of
// Table 1. All interaction between unit logic and the rest of the
// world goes through these methods; in the labels+freeze+isolation
// mode every call additionally traverses the woven interceptors of §4.
//
// A Unit is driven by one goroutine (its processing loop); the managed
// subscription machinery creates additional Units with their own
// instances.
type Unit struct {
	sys  *System
	inst *units.Instance
	name string

	mu        sync.Mutex
	held      *heldDelivery
	heldBatch []heldDelivery // deliveries returned by the last GetEvents

	subsMu sync.Mutex
	subs   []uint64

	// acct meters the unit's resource consumption at the API boundary
	// (see accounting.go).
	acct usageCounters
}

// heldDelivery tracks the event a unit is currently processing, for
// release-on-next-get semantics.
type heldDelivery struct {
	ev  *events.Event
	gen uint64
}

// newUnit assembles a Unit around an instance.
func newUnit(s *System, name string, inst *units.Instance) *Unit {
	return &Unit{sys: s, inst: inst, name: name}
}

// Name returns the unit's diagnostic name.
func (u *Unit) Name() string { return u.name }

// InputLabel returns the unit's current input label (= contamination).
func (u *Unit) InputLabel() labels.Label { return u.inst.InputLabel() }

// OutputLabel returns the unit's current output label.
func (u *Unit) OutputLabel() labels.Label { return u.inst.OutputLabel() }

// HasPrivilege reports whether the unit holds the given grant; units
// use it to decide whether an expected delegation has arrived.
func (u *Unit) HasPrivilege(t tags.Tag, r priv.Right) bool {
	return u.inst.HasPrivilege(priv.Grant{Tag: t, Right: r})
}

// State is scratch storage scoped to this unit instance; managed
// handler state is wiped when the instance is re-virgined.
func (u *Unit) State() map[string]any { return u.inst.State() }

// tax runs the woven §4 interceptors for one API call in the
// labels+freeze+isolation mode, and meters the call for resource
// accounting in every mode.
func (u *Unit) tax() {
	u.acct.apiCalls.Add(1)
	if u.sys.enf != nil && u.inst.Iso != nil {
		u.sys.enf.APITax(u.inst.Iso)
	}
}

// taxN meters n API calls through one interceptor traversal — the
// batched tax entry of the batch delivery paths (PublishBatch,
// GetEvents): a batch of n events enters and leaves the §4 API region
// once, amortising the traversal while accounting every call.
func (u *Unit) taxN(n int) {
	if n <= 0 {
		return
	}
	u.acct.apiCalls.Add(uint64(n))
	if u.sys.enf != nil && u.inst.Iso != nil {
		u.sys.enf.APITaxN(u.inst.Iso, n)
	}
}

// effectiveLabel applies contamination independence (§5): the requested
// (S, I) silently becomes (S ∪ Sout, I ∩ Iout), so a sandboxed unit
// need not know its own contamination.
//
// An empty requested integrity set defaults to the full output
// integrity: §3.1.4's Broker "can add an integrity tag i to Iout ...
// to vouch for the integrity of the stock trades that it publishes
// without having to add tag i explicitly each time". A non-empty
// request selects a subset per Table 1's I′ = I ∩ Iout.
func (u *Unit) effectiveLabel(S, I labels.Set) labels.Label {
	if !u.sys.mode.CheckLabels() {
		return labels.Label{}
	}
	out := u.inst.OutputLabel()
	if I.IsEmpty() {
		I = out.I
	}
	return labels.Label{S: S, I: I}.WithContamination(out)
}

// CreateEvent creates a new, empty event (Table 1: createEvent). The
// event is local to the unit until published.
func (u *Unit) CreateEvent() *events.Event {
	u.tax()
	e := events.New(u.sys.nextEventID())
	e.Stamp = time.Now().UnixNano()
	return e
}

// CreateEventFrom creates an event that inherits the origin timestamp
// of a triggering event, preserving end-to-end latency accounting
// along a processing chain (measurement plumbing, not DEFC semantics).
func (u *Unit) CreateEventFrom(trigger *events.Event) *events.Event {
	e := u.CreateEvent()
	if trigger != nil {
		e.Stamp = trigger.Stamp
	}
	return e
}

// AddPart adds a part with requested label (S, I) to event e (Table 1:
// addPart). Contamination independence applies: tags in the unit's
// output label are attached transparently, and the part's integrity is
// capped by the output label.
func (u *Unit) AddPart(e *events.Event, S, I labels.Set, name string, data freeze.Value) error {
	u.tax()
	if e == nil {
		return errors.New("core: AddPart on nil event")
	}
	_, err := e.AddPart(name, u.effectiveLabel(S, I), data, u.name)
	if err == nil {
		u.acct.partsAdded.Add(1)
	}
	return err
}

// DelPart removes part name with label (S, I) from event e (Table 1:
// delPart). The label is contamination-adjusted like AddPart's, so a
// unit can delete exactly the parts it could have created.
func (u *Unit) DelPart(e *events.Event, S, I labels.Set, name string) error {
	u.tax()
	if e == nil {
		return errors.New("core: DelPart on nil event")
	}
	if !u.sys.mode.CheckLabels() {
		// Without labels, delete the most recent part with the name.
		parts := e.Named(name)
		if len(parts) == 0 {
			return fmt.Errorf("%w: %q", ErrNoSuchPart, name)
		}
		return e.DelPart(name, parts[len(parts)-1].Label)
	}
	return e.DelPart(name, u.effectiveLabel(S, I))
}

// ReadPart returns the data of every visible part with the given name
// (Table 1: readPart): Sp ⊆ Sin and Ip ⊇ Iin must hold per part.
// Reading a privilege-carrying part bestows its grants on the unit
// (§3.1.5) — the unit must already be able to read the part's data, so
// no extra privilege check applies.
func (u *Unit) ReadPart(e *events.Event, name string) ([]PartView, error) {
	u.tax()
	if e == nil {
		return nil, errors.New("core: ReadPart on nil event")
	}
	var parts []*events.Part
	if u.sys.mode.CheckLabels() {
		parts = e.Visible(name, u.inst.InputLabel())
	} else {
		parts = e.Named(name)
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchPart, name)
	}
	views := make([]PartView, 0, len(parts))
	for _, p := range parts {
		if len(p.Grants) > 0 {
			grants := p.Grants
			u.inst.WithPrivileges(func(o *priv.Owned) { o.GrantAll(grants) })
		}
		views = append(views, PartView{Label: p.Label, Data: p.Data})
	}
	u.acct.partsRead.Add(uint64(len(views)))
	return views, nil
}

// ReadOne is ReadPart for the common single-version case; with several
// visible versions it returns — and bestows the carried grants of —
// the most recently added. Unlike ReadPart it allocates nothing: it
// runs once per delivery in every consumer loop (monitors, traders,
// the Broker book), so the per-event view slices ReadPart builds
// would dominate the collector at replay rates.
func (u *Unit) ReadOne(e *events.Event, name string) (PartView, error) {
	u.tax()
	if e == nil {
		return PartView{}, errors.New("core: ReadOne on nil event")
	}
	var p *events.Part
	if u.sys.mode.CheckLabels() {
		p = e.LastVisible(name, u.inst.InputLabel())
	} else {
		p = e.LastNamed(name)
	}
	if p == nil {
		return PartView{}, fmt.Errorf("%w: %q", ErrNoSuchPart, name)
	}
	if len(p.Grants) > 0 {
		grants := p.Grants
		u.inst.WithPrivileges(func(o *priv.Owned) { o.GrantAll(grants) })
	}
	u.acct.partsRead.Add(1)
	return PartView{Label: p.Label, Data: p.Data}, nil
}

// AttachPrivilegeToPart attaches privilege right over tag t to part
// name with label (S, I), creating a privilege-carrying event part for
// delegation (Table 1: attachPrivilegeToPart; §3.1.5). The call
// succeeds only if the caller holds the corresponding t±auth.
func (u *Unit) AttachPrivilegeToPart(e *events.Event, name string, S, I labels.Set, t tags.Tag, right priv.Right) error {
	u.tax()
	if e == nil {
		return errors.New("core: AttachPrivilegeToPart on nil event")
	}
	g := priv.Grant{Tag: t, Right: right}
	var authErr error
	u.inst.WithPrivileges(func(o *priv.Owned) { authErr = o.AuthoriseDelegation(g) })
	if authErr != nil {
		return authErr
	}
	if !u.sys.mode.CheckLabels() {
		parts := e.Named(name)
		if len(parts) == 0 {
			return fmt.Errorf("%w: %q", ErrNoSuchPart, name)
		}
		return e.AttachGrant(name, parts[len(parts)-1].Label, g)
	}
	return e.AttachGrant(name, u.effectiveLabel(S, I), g)
}

// CloneEvent creates a new instance e′ of event e (Table 1:
// cloneEvent): every part label gains the caller's output
// confidentiality tags plus S, and keeps only integrity tags in the
// caller's output label intersected with I. Privilege grants are not
// cloned. This precludes DEFC violations based on observing the number
// of received events.
func (u *Unit) CloneEvent(e *events.Event, S, I labels.Set) (*events.Event, error) {
	u.tax()
	if e == nil {
		return nil, errors.New("core: CloneEvent on nil event")
	}
	out := u.effectiveLabel(S, I)
	deep := u.sys.mode.CloneDeliveries() || !u.sys.mode.CheckLabels()
	// In freeze modes the original's data is (or will be) frozen, so
	// sharing is safe; otherwise the clone must not alias mutable data.
	ne := e.CloneRelabelled(u.sys.nextEventID(), out, deep)
	return ne, nil
}

// Publish publishes event e (Table 1: publish). Events without parts
// are dropped. The call intentionally reveals nothing about deliveries:
// decoupled communication means success carries no DEFC-relevant
// information.
func (u *Unit) Publish(e *events.Event) error {
	u.tax()
	if e == nil {
		return errors.New("core: Publish of nil event")
	}
	u.acct.published.Add(1)
	u.sys.disp.Publish(e)
	return nil
}

// PublishBestEffort publishes like Publish but never blocks on full
// receiver queues: congested receivers are skipped. Units on feedback
// paths (the Regulator republishing local trades as ticks, step 9) use
// it so a congested downstream cannot stall them into a backpressure
// cycle. DEFC semantics are identical — only delivery QoS differs.
func (u *Unit) PublishBestEffort(e *events.Event) error {
	u.tax()
	if e == nil {
		return errors.New("core: Publish of nil event")
	}
	u.acct.published.Add(1)
	u.sys.disp.PublishBestEffort(e)
	return nil
}

// PublishBatch publishes a run of events in one call (batched
// dispatch): each event is matched exactly as by Publish, and the
// accepted deliveries reach every receiver through one batched queue
// handoff. High-rate replay paths (the Stock Exchange feed) use it to
// amortise per-event dispatch overhead. DEFC semantics are identical
// to publishing the events one by one in order — the batch is metered
// as len(evs) API calls through one amortised interceptor traversal.
func (u *Unit) PublishBatch(evs []*events.Event) error {
	for _, e := range evs {
		if e == nil {
			return errors.New("core: PublishBatch with nil event")
		}
	}
	// Validated: meter the batch only for publishes that will happen.
	u.taxN(len(evs))
	u.acct.published.Add(uint64(len(evs)))
	u.sys.disp.PublishBatch(evs, true)
	return nil
}

// Recycle returns a clone-mode delivery to the clone pool. It is a
// no-op outside the labels+clone mode and for events that did not
// come from the pool. The caller asserts it retains no reference to
// the event or its parts; data values already read remain valid.
// Harness-style consumers that drain high event rates use it to keep
// the clone mode's per-delivery copies off the garbage collector.
func (u *Unit) Recycle(e *events.Event) {
	if e == nil || !u.sys.mode.CloneDeliveries() {
		return
	}
	// Detach the event from the held state: the recycled shell may be
	// reused by the clone pool before the next GetEvents, and a stale
	// held entry would compare generations of an event this unit no
	// longer owns.
	u.dropHeld(e)
	e.Recycle()
}

// dropHeld detaches e from the unit's held delivery state (the single
// held delivery and the held batch), returning the generation e was
// delivered at and whether it was held. Batch entries are nilled in
// place — O(1), no splice on the hot consumer path — and skipped by
// autoRelease.
func (u *Unit) dropHeld(e *events.Event) (uint64, bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.held != nil && u.held.ev == e {
		gen := u.held.gen
		u.held = nil
		return gen, true
	}
	for idx := range u.heldBatch {
		if u.heldBatch[idx].ev == e {
			gen := u.heldBatch[idx].gen
			u.heldBatch[idx].ev = nil
			return gen, true
		}
	}
	return 0, false
}

// Release releases a delivered event after (partial) processing
// (Table 1: release; §3.1.6): if the unit modified the event, the
// dispatcher re-matches it so that newly added parts reach further
// units — but never units whose input labels do not admit them.
func (u *Unit) Release(e *events.Event) error {
	u.tax()
	if e == nil {
		return errors.New("core: Release of nil event")
	}
	if gen, was := u.dropHeld(e); was && gen == e.Generation() {
		return nil // unmodified: nothing to re-dispatch
	}
	u.sys.disp.Redispatch(e)
	return nil
}

// Subscribe registers interest in events matching filter (Table 1:
// subscribe). Deliveries arrive via GetEvent.
func (u *Unit) Subscribe(filter *dispatch.Filter) (uint64, error) {
	u.tax()
	id, err := u.sys.disp.Subscribe(filter, u.inst)
	if err != nil {
		return 0, err
	}
	u.subsMu.Lock()
	u.subs = append(u.subs, id)
	u.subsMu.Unlock()
	return id, nil
}

// GetEvent blocks until an event matching one of the unit's
// subscriptions arrives (Table 1: getEvent) and returns it with the
// matching subscription ID. Any previously returned event is released
// implicitly, so simple units never need to call Release.
func (u *Unit) GetEvent() (*events.Event, uint64, error) {
	u.tax()
	u.autoRelease()
	d, err := u.inst.Next()
	if err != nil {
		return nil, 0, err
	}
	u.mu.Lock()
	u.held = &heldDelivery{ev: d.Event, gen: d.Gen}
	u.mu.Unlock()
	return d.Event, d.Sub, nil
}

// GetEvents is the batched getEvent: it blocks until at least one
// delivery arrives, then opportunistically drains up to len(buf)
// queued deliveries through one queue synchronisation and one
// amortised interceptor traversal (metered as one API call per
// returned delivery). Every delivery returned by the previous
// GetEvent/GetEvents call is released implicitly, with modified events
// re-dispatched — the same release-on-next-get semantics GetEvent
// gives its single delivery. High-rate consumer loops (the Pair
// Monitors on the tick feed) use it so a burst of k deliveries costs
// one tax traversal instead of k.
func (u *Unit) GetEvents(buf []units.Delivery) (int, error) {
	u.autoRelease()
	n, err := u.inst.NextBatch(buf)
	if err != nil {
		u.tax() // the call is metered even when it reports termination
		return 0, err
	}
	u.taxN(n)
	u.mu.Lock()
	u.heldBatch = u.heldBatch[:0]
	for _, d := range buf[:n] {
		u.heldBatch = append(u.heldBatch, heldDelivery{ev: d.Event, gen: d.Gen})
	}
	u.mu.Unlock()
	return n, nil
}

// autoRelease releases the currently held delivery (and any held batch
// from GetEvents), re-dispatching whatever was modified.
func (u *Unit) autoRelease() {
	u.mu.Lock()
	held := u.held
	u.held = nil
	var modified []*events.Event
	for _, h := range u.heldBatch {
		// nil entries were detached by Recycle/Release (dropHeld).
		if h.ev != nil && h.ev.Generation() != h.gen {
			modified = append(modified, h.ev)
		}
	}
	u.heldBatch = u.heldBatch[:0]
	u.mu.Unlock()
	if held != nil && held.ev.Generation() != held.gen {
		u.sys.disp.Redispatch(held.ev)
	}
	for _, e := range modified {
		u.sys.disp.Redispatch(e)
	}
}

// ChangeOutLabel adds or removes tag t on the unit's output label only
// (Table 1: changeOutLabel): the declassify/endorse-on-output
// convenience of §3.1.4. Adding requires t+, removing t−.
func (u *Unit) ChangeOutLabel(comp Component, op LabelOp, t tags.Tag) error {
	u.tax()
	if !u.sys.mode.CheckLabels() {
		return nil
	}
	if err := u.checkLabelChange(op, t); err != nil {
		return err
	}
	u.inst.SetOutputLabel(applyLabelOp(u.inst.OutputLabel(), comp, op, t))
	return nil
}

// ChangeInOutLabel adds or removes tag t on both the input and output
// labels (Table 1: changeInOutLabel). Adding requires t+, removing t−.
func (u *Unit) ChangeInOutLabel(comp Component, op LabelOp, t tags.Tag) error {
	u.tax()
	if !u.sys.mode.CheckLabels() {
		return nil
	}
	if err := u.checkLabelChange(op, t); err != nil {
		return err
	}
	u.inst.SetInputLabel(applyLabelOp(u.inst.InputLabel(), comp, op, t))
	u.inst.SetOutputLabel(applyLabelOp(u.inst.OutputLabel(), comp, op, t))
	return nil
}

// ChangeInLabel adds or removes tag t on the input label only. The
// paper's API folds this into changeInOutLabel; the split form lets a
// Broker "receive and declassify t-protected orders without changing
// the code that handles individual events" (§3.1.4) while keeping its
// output public.
//
// Raising only the input confidentiality opens a standing
// declassification: everything the unit then emits at its lower output
// label may derive from t-protected input. The system therefore
// demands t− in addition to t+ for this form — the automatic exercise
// of privileges §3.1.4 describes.
func (u *Unit) ChangeInLabel(comp Component, op LabelOp, t tags.Tag) error {
	u.tax()
	if !u.sys.mode.CheckLabels() {
		return nil
	}
	if err := u.checkLabelChange(op, t); err != nil {
		return err
	}
	if comp == Confidentiality && op == Add && !u.inst.OutputLabel().S.Has(t) {
		if !u.inst.HasPrivilege(priv.Grant{Tag: t, Right: priv.Minus}) {
			return fmt.Errorf("%w: raising input-only confidentiality needs %v over %v",
				priv.ErrNotAuthorised, priv.Minus, t)
		}
	}
	u.inst.SetInputLabel(applyLabelOp(u.inst.InputLabel(), comp, op, t))
	return nil
}

// checkLabelChange enforces §3.1.3: adding a tag to one's own label
// requires t ∈ O+, removing requires t ∈ O−.
func (u *Unit) checkLabelChange(op LabelOp, t tags.Tag) error {
	if t.IsZero() {
		return fmt.Errorf("%w: zero tag", priv.ErrNotAuthorised)
	}
	need := priv.Plus
	if op == Del {
		need = priv.Minus
	}
	if !u.inst.HasPrivilege(priv.Grant{Tag: t, Right: need}) {
		return fmt.Errorf("%w: label change needs %v over %v", priv.ErrNotAuthorised, need, t)
	}
	return nil
}

// applyLabelOp performs the set surgery for a label change.
func applyLabelOp(l labels.Label, comp Component, op LabelOp, t tags.Tag) labels.Label {
	switch {
	case comp == Confidentiality && op == Add:
		l.S = l.S.Add(t)
	case comp == Confidentiality && op == Del:
		l.S = l.S.Remove(t)
	case comp == Integrity && op == Add:
		l.I = l.I.Add(t)
	default:
		l.I = l.I.Remove(t)
	}
	return l
}

// DropPrivilege renounces right r over tag t. Self-renunciation needs
// no authority — a unit could equivalently just never exercise the
// right — but long-lived services use it as hygiene: per-order grants
// accumulate otherwise, growing the privilege sets without bound.
func (u *Unit) DropPrivilege(t tags.Tag, r priv.Right) {
	u.tax()
	u.inst.WithPrivileges(func(o *priv.Owned) { o.Drop(t, r) })
}

// CreateTag requests a fresh tag from the system (§3.1.3). The creator
// receives t+auth and t−auth and — as is typical — immediately
// self-applies them, so the returned tag comes with full t± privilege.
func (u *Unit) CreateTag(name string) tags.Tag {
	u.tax()
	t := u.sys.tags.Create(name, u.name)
	u.acct.tags.Add(1)
	u.inst.WithPrivileges(func(o *priv.Owned) { o.OnCreateTag(t, true) })
	return t
}

// CreateTagAuthOnly is CreateTag without the self-application: the
// creator holds only t±auth, e.g. to mint a tag whose privileges are
// wholly delegated elsewhere.
func (u *Unit) CreateTagAuthOnly(name string) tags.Tag {
	u.tax()
	t := u.sys.tags.Create(name, u.name)
	u.acct.tags.Add(1)
	u.inst.WithPrivileges(func(o *priv.Owned) { o.OnCreateTag(t, false) })
	return t
}

// InstantiateUnit creates a new unit at label (S, I) with delegated
// privileges (Table 1: instantiateUnit). The child inherits the
// caller's confidentiality contamination — the caller cannot launder
// data through a fresh unit — and every delegated grant must pass the
// caller's t±auth check. logic runs on a new goroutine.
func (u *Unit) InstantiateUnit(name string, S, I labels.Set, grants []priv.Grant, logic func(*Unit)) (*Unit, error) {
	u.tax()
	var authErr error
	u.inst.WithPrivileges(func(o *priv.Owned) {
		for _, g := range grants {
			if err := o.AuthoriseDelegation(g); err != nil {
				authErr = err
				return
			}
		}
	})
	if authErr != nil {
		return nil, authErr
	}
	callerIn := u.inst.InputLabel()
	childIn := labels.Label{S: S.Union(callerIn.S), I: I}
	// The child's output starts at its confidentiality sandbox with no
	// integrity: endorsement rights must be delegated explicitly and
	// exercised by the child via ChangeOutLabel.
	childOut := labels.Label{S: S.Union(callerIn.S), I: labels.EmptySet}
	owned := &priv.Owned{}
	owned.GrantAll(grants)

	child := u.sys.buildUnitAt(name, childIn, childOut, owned, 0)
	u.sys.mu.Lock()
	if u.sys.closed {
		u.sys.mu.Unlock()
		return nil, ErrTerminated
	}
	u.sys.units[child.inst.ReceiverID()] = child
	u.sys.mu.Unlock()
	if logic != nil {
		u.sys.track(func() { logic(child) })
	}
	return child, nil
}

// Unsubscribe removes one of the unit's subscriptions.
func (u *Unit) Unsubscribe(id uint64) {
	u.tax()
	u.sys.disp.Unsubscribe(id)
	u.subsMu.Lock()
	for i, s := range u.subs {
		if s == id {
			u.subs = append(u.subs[:i], u.subs[i+1:]...)
			break
		}
	}
	u.subsMu.Unlock()
}

// Terminate retires the unit: its subscriptions are removed and its
// queue stops accepting deliveries. The system applies this as part of
// unit life-cycle management (§3.2).
func (u *Unit) Terminate() {
	u.inst.Retire()
	u.subsMu.Lock()
	subs := append([]uint64(nil), u.subs...)
	u.subs = nil
	u.subsMu.Unlock()
	for _, id := range subs {
		u.sys.disp.Unsubscribe(id)
	}
	u.sys.mu.Lock()
	delete(u.sys.units, u.inst.ReceiverID())
	u.sys.mu.Unlock()
}

// QueueLen reports the number of deliveries waiting for this unit;
// benchmark harnesses use it to detect drain.
func (u *Unit) QueueLen() int { return u.inst.QueueLen() }
