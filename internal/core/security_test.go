package core

// Adversarial tests: each models a unit that "may be tempted not to
// play by the rules" (§2.2's threat model) and asserts the enforcement
// point that stops it.

import (
	"errors"
	"testing"
	"time"

	"repro/internal/dispatch"
	"repro/internal/events"
	"repro/internal/freeze"
	"repro/internal/isolation"
	"repro/internal/labels"
	"repro/internal/priv"
)

// TestAttackMutateAfterPublish: a malicious publisher keeps a reference
// to published part data and mutates it after receivers have shared
// references — freezing must block the write.
func TestAttackMutateAfterPublish(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	mallory := s.NewUnit("mallory", UnitConfig{})
	victim := s.NewUnit("victim", UnitConfig{})
	if _, err := victim.Subscribe(dispatch.MustFilter(dispatch.PartExists("p"))); err != nil {
		t.Fatal(err)
	}
	payload := freeze.MapOf("price", int64(100))
	e := mallory.CreateEvent()
	if err := mallory.AddPart(e, labels.EmptySet, labels.EmptySet, "p", payload); err != nil {
		t.Fatal(err)
	}
	if err := mallory.Publish(e); err != nil {
		t.Fatal(err)
	}
	// Post-publish mutation attempt.
	if err := payload.Put("price", int64(999)); !errors.Is(err, freeze.ErrFrozen) {
		t.Fatalf("post-publish mutation = %v, want ErrFrozen", err)
	}
	got, _, err := victim.GetEvent()
	if err != nil {
		t.Fatal(err)
	}
	v, err := victim.ReadOne(got, "p")
	if err != nil {
		t.Fatal(err)
	}
	if v.Data.(*freeze.Map).GetInt("price") != 100 {
		t.Fatal("receiver observed tampered data")
	}
}

// TestAttackSmuggleMutableValue: event parts must refuse raw mutable
// values that would create shared state between isolates.
func TestAttackSmuggleMutableValue(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	mallory := s.NewUnit("mallory", UnitConfig{})
	e := mallory.CreateEvent()
	for _, v := range []freeze.Value{[]byte("raw"), map[string]int{}, &struct{ X int }{}} {
		if err := mallory.AddPart(e, labels.EmptySet, labels.EmptySet, "p", v); !errors.Is(err, freeze.ErrBadValue) {
			t.Fatalf("mutable value %T accepted: %v", v, err)
		}
	}
}

// TestAttackRelabelByDeletion: a unit must not be able to delete
// another principal's protected part (deleting what you cannot name is
// impossible; deleting what you can see but did not create at that
// label fails the exact-label match).
func TestAttackRelabelByDeletion(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	alice := s.NewUnit("alice", UnitConfig{})
	mallory := s.NewUnit("mallory", UnitConfig{})
	secret := alice.CreateTag("s")
	e := alice.CreateEvent()
	if err := alice.AddPart(e, labels.NewSet(secret), labels.EmptySet, "order", "data"); err != nil {
		t.Fatal(err)
	}
	// Mallory names the part but cannot reproduce its label (she has no
	// reference to alice's tag in this trust configuration — and even
	// with the reference, her DelPart call carries her own effective
	// label, which differs unless she can already write at that level).
	if err := mallory.DelPart(e, labels.EmptySet, labels.EmptySet, "order"); !errors.Is(err, ErrNoSuchPart) {
		t.Fatalf("foreign deletion = %v", err)
	}
	if e.Len() != 1 {
		t.Fatal("protected part deleted")
	}
}

// TestAttackPrivilegeLaundering: holding t− does not allow delegating
// t−; only t−auth does (§3.1.3's topology enforcement).
func TestAttackPrivilegeLaundering(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	owner := s.NewUnit("owner", UnitConfig{})
	tg := owner.CreateTag("t")
	// The regulator-like unit holds t− but no auth.
	mid := s.NewUnit("mid", UnitConfig{Grants: []priv.Grant{{Tag: tg, Right: priv.Minus}}})
	e := mid.CreateEvent()
	if err := mid.AddPart(e, labels.EmptySet, labels.EmptySet, "gift", tg); err != nil {
		t.Fatal(err)
	}
	err := mid.AttachPrivilegeToPart(e, "gift", labels.EmptySet, labels.EmptySet, tg, priv.Minus)
	if !errors.Is(err, priv.ErrNotAuthorised) {
		t.Fatalf("delegation without auth = %v", err)
	}
}

// TestAttackTagReferenceIsNotPrivilege: obtaining a tag reference (for
// example from part data) conveys no rights over the tag.
func TestAttackTagReferenceIsNotPrivilege(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	alice := s.NewUnit("alice", UnitConfig{})
	mallory := s.NewUnit("mallory", UnitConfig{})
	secret := alice.CreateTag("s")

	// Alice shares the reference publicly (tags are transmittable).
	e := alice.CreateEvent()
	if err := alice.AddPart(e, labels.EmptySet, labels.EmptySet, "ref", secret); err != nil {
		t.Fatal(err)
	}
	views, err := mallory.ReadPart(e, "ref")
	if err != nil {
		t.Fatal(err)
	}
	got := views[0].Data.(interface{ IsZero() bool })
	if got.IsZero() {
		t.Fatal("reference lost")
	}
	// The reference alone buys nothing.
	if err := mallory.ChangeInLabel(Confidentiality, Add, secret); !errors.Is(err, priv.ErrNotAuthorised) {
		t.Fatalf("raise with bare reference = %v", err)
	}
	if err := mallory.ChangeOutLabel(Confidentiality, Add, secret); !errors.Is(err, priv.ErrNotAuthorised) {
		t.Fatalf("endorse with bare reference = %v", err)
	}
}

// TestAttackObserveAbsence: a unit must not learn whether its publish
// reached anyone, and a reader cannot distinguish "part absent" from
// "part invisible" (§3.1.4's implicit-contamination discussion).
func TestAttackObserveAbsence(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	alice := s.NewUnit("alice", UnitConfig{})
	mallory := s.NewUnit("mallory", UnitConfig{})
	secret := alice.CreateTag("s")

	withPart := alice.CreateEvent()
	if err := alice.AddPart(withPart, labels.NewSet(secret), labels.EmptySet, "x", "v"); err != nil {
		t.Fatal(err)
	}
	without := alice.CreateEvent()
	if err := alice.AddPart(without, labels.EmptySet, labels.EmptySet, "other", "v"); err != nil {
		t.Fatal(err)
	}

	_, errInvisible := mallory.ReadPart(withPart, "x")
	_, errAbsent := mallory.ReadPart(without, "x")
	if errInvisible.Error() != errAbsent.Error() {
		t.Fatalf("absence distinguishable: %q vs %q", errInvisible, errAbsent)
	}
}

// TestAttackCovertStorageChannel: two colluding units try the
// Thread.threadSeqNum trick end to end in the isolation mode; the
// per-isolate replication must keep them apart.
func TestAttackCovertStorageChannel(t *testing.T) {
	s := newSys(t, LabelsFreezeIsolation)
	sender := s.NewUnit("sender", UnitConfig{})
	receiver := s.NewUnit("receiver", UnitConfig{})

	enf := s.enf
	id, ok := enf.TargetID("java.lang.Thread.threadSeqNum")
	if !ok {
		t.Fatal("canonical target missing")
	}
	if err := enf.SetStatic(sender.inst.Iso, id, int64(0xABC)); err != nil {
		t.Fatal(err)
	}
	v, err := enf.GetStatic(receiver.inst.Iso, id)
	if err != nil {
		t.Fatal(err)
	}
	if v == any(int64(0xABC)) {
		t.Fatal("storage channel across units")
	}
}

// TestAttackSyncChannel: units may not synchronise on shared values.
func TestAttackSyncChannel(t *testing.T) {
	s := newSys(t, LabelsFreezeIsolation)
	u := s.NewUnit("u", UnitConfig{})
	if err := s.enf.SyncOn(u.inst.Iso, "interned-string"); !errors.Is(err, isolation.ErrSecurity) {
		t.Fatalf("sync on shared value = %v", err)
	}
	var m isolation.Mutex
	if err := s.enf.SyncOn(u.inst.Iso, &m); err != nil {
		t.Fatalf("sync on NeverShared = %v", err)
	}
}

// TestAttackManagedCannotRetainEscalation: a managed instance that
// acquires privileges during one delivery must not keep them for the
// next (reset-on-drift), so a compromised handler cannot accumulate
// authority.
func TestAttackManagedCannotRetainEscalation(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	granter := s.NewUnit("granter", UnitConfig{})
	tg := granter.CreateTag("t")

	spy := s.NewUnit("spy", UnitConfig{})
	leaks := make(chan bool, 4)
	if _, err := spy.SubscribeManaged(func(u *Unit, e *events.Event, sub uint64) {
		leaks <- u.HasPrivilege(tg, priv.Plus)
		_, _ = u.ReadPart(e, "grant")
	}, dispatch.MustFilter(dispatch.PartEq("type", "bait"))); err != nil {
		t.Fatal(err)
	}

	publish := func() {
		e := granter.CreateEvent()
		if err := granter.AddPart(e, labels.EmptySet, labels.EmptySet, "type", "bait"); err != nil {
			t.Fatal(err)
		}
		if err := granter.AddPart(e, labels.EmptySet, labels.EmptySet, "grant", tg); err != nil {
			t.Fatal(err)
		}
		if err := granter.AttachPrivilegeToPart(e, "grant", labels.EmptySet, labels.EmptySet, tg, priv.Plus); err != nil {
			t.Fatal(err)
		}
		if err := granter.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	publish()
	waitLeak := func() bool {
		select {
		case v := <-leaks:
			return v
		case <-time.After(3 * time.Second):
			t.Fatal("handler never ran")
			return false
		}
	}
	if waitLeak() {
		t.Fatal("first delivery started privileged")
	}
	publish()
	if waitLeak() {
		t.Fatal("escalation retained across deliveries")
	}
}

// TestAttackSandboxedChildCannotLaunder: a unit cannot wash off its
// contamination by instantiating a child — the child inherits it.
func TestAttackSandboxedChildCannotLaunder(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	owner := s.NewUnit("owner", UnitConfig{})
	tg := owner.CreateTag("t")

	// Contaminated unit (bootstrap-sandboxed at {t}).
	dirty := s.NewUnit("dirty", UnitConfig{
		In:  labels.Label{S: labels.NewSet(tg)},
		Out: labels.Label{S: labels.NewSet(tg)},
	})
	child, err := dirty.InstantiateUnit("laundry", labels.EmptySet, labels.EmptySet, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !child.InputLabel().S.Has(tg) || !child.OutputLabel().S.Has(tg) {
		t.Fatal("child escaped contamination")
	}
	// Everything the child emits is still t-protected.
	e := child.CreateEvent()
	if err := child.AddPart(e, labels.EmptySet, labels.EmptySet, "leak", "secret"); err != nil {
		t.Fatal(err)
	}
	if !e.Parts()[0].Label.S.Has(tg) {
		t.Fatal("child published below its contamination")
	}
}

// TestAttackCloneDoesNotAmplify: cloning an event must not duplicate
// its privilege grants (a clone-based privilege printing press).
func TestAttackCloneDoesNotAmplify(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	alice := s.NewUnit("alice", UnitConfig{})
	tg := alice.CreateTag("t")
	e := alice.CreateEvent()
	if err := alice.AddPart(e, labels.EmptySet, labels.EmptySet, "p", "v"); err != nil {
		t.Fatal(err)
	}
	if err := alice.AttachPrivilegeToPart(e, "p", labels.EmptySet, labels.EmptySet, tg, priv.Plus); err != nil {
		t.Fatal(err)
	}
	clone, err := alice.CloneEvent(e, labels.EmptySet, labels.EmptySet)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range clone.Parts() {
		if len(p.Grants) != 0 {
			t.Fatal("clone carried privilege grants")
		}
	}
}
