package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/dispatch"
	"repro/internal/events"
	"repro/internal/isolation"
	"repro/internal/labels"
)

// findDecision returns the first target ID of the given kind/decision.
func findDecision(t *testing.T, a *isolation.Analysis, kind isolation.TargetKind, d isolation.Decision) int {
	t.Helper()
	for i := range a.Catalog.Targets {
		if a.Catalog.Targets[i].Kind == kind && a.Decisions[i] == d {
			return i
		}
	}
	t.Fatalf("no target with kind %v decision %v", kind, d)
	return -1
}

// TestManagedIsolateReuseConcurrent drives one pooled managed
// instance's isolate from two sides at once: the instance's own
// processing loop taxes it on every handler API call while its
// deliveries keep drifting and re-virgining the instance (recycled
// pooled reuse), and a separate goroutine hammers the same isolate
// with direct APITax/GetStatic/SetStatic interceptor calls — the shape
// the replica slot array must survive without a lock. Run under -race
// in CI; correctness checks: deliveries all processed, replica writes
// never observed torn, the isolate persists across Reset (warm path
// kept), and copies are charged once.
func TestManagedIsolateReuseConcurrent(t *testing.T) {
	a := isolation.Analyze(isolation.NewJDKCatalog())
	enf := isolation.NewEnforcer(a)
	rid := findDecision(t, a, isolation.StaticField, isolation.InterceptReplicate)
	did := findDecision(t, a, isolation.StaticField, isolation.InterceptDeferredSet)

	s := NewSystem(Config{Mode: LabelsFreezeIsolation, Enforcer: enf, QueueCap: 1024})
	defer s.Close()

	owner := s.NewUnit("owner", UnitConfig{})
	drift := owner.CreateTag("drift")

	var isoPtr atomic.Pointer[isolation.Isolate]
	var handled atomic.Uint64
	_, err := owner.SubscribeManagedOpts(func(u *Unit, e *events.Event, sub uint64) {
		isoPtr.CompareAndSwap(nil, u.inst.Iso)
		if _, err := u.ReadOne(e, "body"); err != nil {
			t.Errorf("ReadOne: %v", err)
			return
		}
		// Contaminate the instance so the managed runtime re-virgins it
		// after this delivery: the next delivery exercises genuine
		// pooled reuse of the same isolate.
		if err := u.ChangeOutLabel(Confidentiality, Add, drift); err != nil {
			t.Errorf("ChangeOutLabel: %v", err)
		}
		handled.Add(1)
	}, dispatch.MustFilter(dispatch.PartEq("type", "tick")), ManagedOptions{ResetOnDrift: true})
	if err != nil {
		t.Fatal(err)
	}

	pub := s.NewUnit("pub", UnitConfig{})
	const deliveries = 400

	// Hammer the pooled isolate with direct interceptor calls as soon
	// as the first delivery captures it.
	stop := make(chan struct{})
	hammerDone := make(chan struct{})
	go func() {
		defer close(hammerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			iso := isoPtr.Load()
			if iso == nil {
				continue
			}
			enf.APITax(iso)
			if err := enf.SetStatic(iso, did, int64(i)); err != nil {
				t.Errorf("SetStatic: %v", err)
				return
			}
			if v, err := enf.GetStatic(iso, did); err != nil {
				t.Errorf("GetStatic(deferred): %v", err)
				return
			} else if _, ok := v.(int64); !ok {
				t.Errorf("torn deferred replica: %T", v)
				return
			}
			if _, err := enf.GetStatic(iso, rid); err != nil {
				t.Errorf("GetStatic(replicate): %v", err)
				return
			}
		}
	}()

	for i := 0; i < deliveries; i++ {
		e := pub.CreateEvent()
		if err := pub.AddPart(e, labels.EmptySet, labels.EmptySet, "type", "tick"); err != nil {
			t.Fatal(err)
		}
		if err := pub.AddPart(e, labels.EmptySet, labels.EmptySet, "body", "payload"); err != nil {
			t.Fatal(err)
		}
		if err := pub.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all deliveries handled", func() bool { return handled.Load() == deliveries })
	close(stop)
	<-hammerDone

	iso := isoPtr.Load()
	if iso == nil {
		t.Fatal("no pooled instance captured")
	}
	st := iso.Stats()
	if st.APICalls == 0 || st.FieldReads == 0 {
		t.Fatalf("isolate did no interceptor work: %+v", st)
	}
	// The isolate persisted across every Reset: one cold pass total, so
	// each replicated hot-path field was copied exactly once.
	if st.FieldCopies > uint64(enf.ReplicaSlotCount()) {
		t.Fatalf("FieldCopies = %d exceeds slot count %d (replicas recopied)",
			st.FieldCopies, enf.ReplicaSlotCount())
	}
}
