package core

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dispatch"
	"repro/internal/events"
	"repro/internal/freeze"
	"repro/internal/labels"
	"repro/internal/priv"
)

// waitFor polls cond until true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// publishOrder publishes a b-protected order event from the trader.
func publishOrder(t *testing.T, trader *Unit, b interface {
	IsZero() bool
}, symbol string, price int64, S labels.Set) *events.Event {
	t.Helper()
	e := trader.CreateEvent()
	body := freeze.MapOf("symbol", symbol, "price", price)
	if err := trader.AddPart(e, S, labels.EmptySet, "order", body); err != nil {
		t.Fatal(err)
	}
	if err := trader.Publish(e); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestManagedMatchesOnPotentialLabelAndContaminatesInstance(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	trader := s.NewUnit("trader", UnitConfig{})
	b := trader.CreateTag("dark-pool")

	// The broker holds b± but keeps a public base input label: the
	// managed machinery must still match b-protected orders.
	broker := s.NewUnit("broker", UnitConfig{Grants: []priv.Grant{
		{Tag: b, Right: priv.Plus}, {Tag: b, Right: priv.Minus},
	}})
	handled := make(chan labels.Label, 4)
	if _, err := broker.SubscribeManaged(func(u *Unit, e *events.Event, sub uint64) {
		// The instance must be able to read the protected part.
		if _, err := u.ReadPart(e, "order"); err != nil {
			t.Errorf("managed instance cannot read order: %v", err)
		}
		handled <- u.InputLabel()
	}, dispatch.MustFilter(dispatch.KeyEq("order", "symbol", "MSFT"))); err != nil {
		t.Fatal(err)
	}

	publishOrder(t, trader, b, "MSFT", 1234, labels.NewSet(b))

	select {
	case lbl := <-handled:
		if !lbl.S.Has(b) {
			t.Fatalf("instance label %v lacks b", lbl)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("managed handler never ran")
	}
	// The broker's own unit remains uncontaminated.
	if !broker.InputLabel().IsPublic() {
		t.Fatal("managed subscription contaminated the base unit")
	}
}

func TestManagedWithoutPrivilegesDoesNotMatchProtectedEvents(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	trader := s.NewUnit("trader", UnitConfig{})
	b := trader.CreateTag("dark-pool")
	eve := s.NewUnit("eve", UnitConfig{})

	var ran atomic.Int32
	if _, err := eve.SubscribeManaged(func(u *Unit, e *events.Event, sub uint64) {
		ran.Add(1)
	}, dispatch.MustFilter(dispatch.KeyEq("order", "symbol", "MSFT"))); err != nil {
		t.Fatal(err)
	}
	publishOrder(t, trader, b, "MSFT", 1234, labels.NewSet(b))
	time.Sleep(30 * time.Millisecond)
	if ran.Load() != 0 {
		t.Fatal("unprivileged managed subscription saw a protected event")
	}
}

func TestManagedInstancePooling(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	trader := s.NewUnit("trader", UnitConfig{})
	b := trader.CreateTag("dark-pool")
	broker := s.NewUnit("broker", UnitConfig{Grants: []priv.Grant{
		{Tag: b, Right: priv.Plus}, {Tag: b, Right: priv.Minus},
	}})

	var count atomic.Int32
	names := make(chan string, 8)
	if _, err := broker.SubscribeManaged(func(u *Unit, e *events.Event, sub uint64) {
		count.Add(1)
		names <- u.Name()
	}, dispatch.MustFilter(dispatch.KeyEq("order", "symbol", "MSFT"))); err != nil {
		t.Fatal(err)
	}

	publishOrder(t, trader, b, "MSFT", 1, labels.NewSet(b))
	publishOrder(t, trader, b, "MSFT", 2, labels.NewSet(b))
	waitFor(t, "two handled deliveries", func() bool { return count.Load() == 2 })

	// Same contamination level → same pooled instance.
	n1, n2 := <-names, <-names
	if n1 != n2 {
		t.Fatalf("same-label deliveries used different instances: %q vs %q", n1, n2)
	}
}

func TestManagedDistinctContaminationsUseDistinctInstances(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	trader := s.NewUnit("trader", UnitConfig{})
	b := trader.CreateTag("dark-pool")
	c := trader.CreateTag("lit-pool")
	broker := s.NewUnit("broker", UnitConfig{Grants: []priv.Grant{
		{Tag: b, Right: priv.Plus}, {Tag: b, Right: priv.Minus},
		{Tag: c, Right: priv.Plus}, {Tag: c, Right: priv.Minus},
	}})

	var count atomic.Int32
	names := make(chan string, 8)
	if _, err := broker.SubscribeManaged(func(u *Unit, e *events.Event, sub uint64) {
		count.Add(1)
		names <- u.Name()
	}, dispatch.MustFilter(dispatch.KeyEq("order", "symbol", "MSFT"))); err != nil {
		t.Fatal(err)
	}

	publishOrder(t, trader, b, "MSFT", 1, labels.NewSet(b))
	publishOrder(t, trader, b, "MSFT", 2, labels.NewSet(c))
	waitFor(t, "two handled deliveries", func() bool { return count.Load() == 2 })
	n1, n2 := <-names, <-names
	if n1 == n2 {
		t.Fatal("different contaminations shared an instance")
	}
}

func TestManagedResetOnDrift(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	trader := s.NewUnit("trader", UnitConfig{})
	secret := trader.CreateTag("per-order")

	regulator := s.NewUnit("regulator", UnitConfig{})
	var count atomic.Int32
	sawPriv := make(chan bool, 4)
	if _, err := regulator.SubscribeManaged(func(u *Unit, e *events.Event, sub uint64) {
		count.Add(1)
		// First act: record whether we already hold the privilege (we
		// must not, if reset worked), then read the grant-carrying part.
		sawPriv <- u.HasPrivilege(secret, priv.Plus)
		if _, err := u.ReadPart(e, "delegation"); err != nil {
			t.Errorf("reading delegation: %v", err)
		}
		u.State()["seen"] = true
	}, dispatch.MustFilter(dispatch.PartEq("type", "delegation"))); err != nil {
		t.Fatal(err)
	}

	publish := func() {
		e := trader.CreateEvent()
		if err := trader.AddPart(e, labels.EmptySet, labels.EmptySet, "type", "delegation"); err != nil {
			t.Fatal(err)
		}
		if err := trader.AddPart(e, labels.EmptySet, labels.EmptySet, "delegation", secret); err != nil {
			t.Fatal(err)
		}
		if err := trader.AttachPrivilegeToPart(e, "delegation", labels.EmptySet, labels.EmptySet, secret, priv.Plus); err != nil {
			t.Fatal(err)
		}
		if err := trader.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	publish()
	waitFor(t, "first delivery", func() bool { return count.Load() == 1 })
	publish()
	waitFor(t, "second delivery", func() bool { return count.Load() == 2 })

	if <-sawPriv {
		t.Fatal("first delivery started with privilege")
	}
	if <-sawPriv {
		t.Fatal("instance kept acquired privilege across deliveries; reset-on-drift failed")
	}
}

func TestManagedNoResetKeepsState(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	trader := s.NewUnit("trader", UnitConfig{})
	b := trader.CreateTag("dark-pool")
	broker := s.NewUnit("broker", UnitConfig{Grants: []priv.Grant{
		{Tag: b, Right: priv.Plus}, {Tag: b, Right: priv.Minus},
	}})

	var count atomic.Int32
	sizes := make(chan int, 4)
	if _, err := broker.SubscribeManagedOpts(func(u *Unit, e *events.Event, sub uint64) {
		st := u.State()
		book, _ := st["book"].(int)
		book++
		st["book"] = book
		count.Add(1)
		sizes <- book
	}, dispatch.MustFilter(dispatch.KeyEq("order", "symbol", "MSFT")),
		ManagedOptions{ResetOnDrift: false}); err != nil {
		t.Fatal(err)
	}

	publishOrder(t, trader, b, "MSFT", 1, labels.NewSet(b))
	publishOrder(t, trader, b, "MSFT", 2, labels.NewSet(b))
	waitFor(t, "both orders", func() bool { return count.Load() == 2 })
	a, bk := <-sizes, <-sizes
	if a != 1 || bk != 2 {
		t.Fatalf("book sizes = %d,%d; state not persistent", a, bk)
	}
}

func TestManagedInstanceOutputContaminatedWithoutDeclassify(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	trader := s.NewUnit("trader", UnitConfig{})
	b := trader.CreateTag("dark-pool")

	// Auditor can raise to b (b+) but cannot declassify (no b−): its
	// managed instances' output must carry b.
	auditor := s.NewUnit("auditor", UnitConfig{Grants: []priv.Grant{
		{Tag: b, Right: priv.Plus},
	}})
	outLabels := make(chan labels.Label, 1)
	if _, err := auditor.SubscribeManaged(func(u *Unit, e *events.Event, sub uint64) {
		outLabels <- u.OutputLabel()
	}, dispatch.MustFilter(dispatch.KeyEq("order", "symbol", "MSFT"))); err != nil {
		t.Fatal(err)
	}
	publishOrder(t, trader, b, "MSFT", 1, labels.NewSet(b))
	select {
	case out := <-outLabels:
		if !out.S.Has(b) {
			t.Fatal("instance without b− has public output: declassification laundering")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("handler never ran")
	}
}

func TestManagedModificationsRedispatch(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	pub := s.NewUnit("pub", UnitConfig{})
	late := s.NewUnit("late", UnitConfig{})
	if _, err := late.Subscribe(dispatch.MustFilter(dispatch.PartExists("verdict"))); err != nil {
		t.Fatal(err)
	}

	checker := s.NewUnit("checker", UnitConfig{})
	if _, err := checker.SubscribeManaged(func(u *Unit, e *events.Event, sub uint64) {
		if err := u.AddPart(e, labels.EmptySet, labels.EmptySet, "verdict", "ok"); err != nil {
			t.Errorf("AddPart in handler: %v", err)
		}
	}, dispatch.MustFilter(dispatch.PartEq("type", "claim"))); err != nil {
		t.Fatal(err)
	}

	e := pub.CreateEvent()
	if err := pub.AddPart(e, labels.EmptySet, labels.EmptySet, "type", "claim"); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(e); err != nil {
		t.Fatal(err)
	}
	// The handler's modification must reach `late` via release.
	got, _, err := late.GetEvent()
	if err != nil {
		t.Fatal(err)
	}
	if v, err := late.ReadOne(got, "verdict"); err != nil || v.Data != freeze.Value("ok") {
		t.Fatalf("verdict not delivered: %v %v", v, err)
	}
}

// TestManagedAutoRecyclesCloneDeliveries: in labels+clone mode the
// managed runtime must return a delivery's private clone to the pool
// once the handler has returned (and any release re-dispatch has run),
// without the handler calling Recycle itself. Data values read before
// the recycle stay valid.
func TestManagedAutoRecyclesCloneDeliveries(t *testing.T) {
	s := newSys(t, LabelsClone)
	pub := s.NewUnit("pub", UnitConfig{})

	type seen struct {
		ev   *events.Event
		data freeze.Value
	}
	got := make(chan seen, 1)
	consumer := s.NewUnit("consumer", UnitConfig{})
	if _, err := consumer.SubscribeManaged(func(u *Unit, e *events.Event, sub uint64) {
		v, err := u.ReadOne(e, "payload")
		if err != nil {
			t.Errorf("ReadOne in handler: %v", err)
			return
		}
		got <- seen{ev: e, data: v.Data}
	}, dispatch.MustFilter(dispatch.PartEq("type", "note"))); err != nil {
		t.Fatal(err)
	}

	e := pub.CreateEvent()
	if err := pub.AddPart(e, labels.EmptySet, labels.EmptySet, "type", "note"); err != nil {
		t.Fatal(err)
	}
	if err := pub.AddPart(e, labels.EmptySet, labels.EmptySet, "payload", "hello"); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(e); err != nil {
		t.Fatal(err)
	}

	d := <-got
	if d.ev == e {
		t.Fatal("clone mode delivered the original event")
	}
	// The clone must be recycled shortly after the handler returns.
	waitFor(t, "auto-recycle", func() bool { return !d.ev.Pooled() })
	if d.data != freeze.Value("hello") {
		t.Fatalf("data read before recycle went invalid: %v", d.data)
	}
	// The original publisher-side event is not pooled and unaffected.
	if e.Pooled() {
		t.Fatal("original event must not be pool-flagged")
	}
}

// TestManagedKeepDeliveriesSkipsAutoRecycle pins the opt-out: a
// handler that retains the event shell sets KeepDeliveries and the
// runtime leaves the clone alone.
func TestManagedKeepDeliveriesSkipsAutoRecycle(t *testing.T) {
	s := newSys(t, LabelsClone)
	pub := s.NewUnit("pub", UnitConfig{})

	got := make(chan *events.Event, 1)
	consumer := s.NewUnit("consumer", UnitConfig{})
	if _, err := consumer.SubscribeManagedOpts(func(u *Unit, e *events.Event, sub uint64) {
		got <- e
	}, dispatch.MustFilter(dispatch.PartEq("type", "note")),
		ManagedOptions{ResetOnDrift: true, KeepDeliveries: true}); err != nil {
		t.Fatal(err)
	}

	e := pub.CreateEvent()
	if err := pub.AddPart(e, labels.EmptySet, labels.EmptySet, "type", "note"); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(e); err != nil {
		t.Fatal(err)
	}
	clone := <-got
	// Give the runtime a beat; the clone must stay pooled-flagged
	// (i.e. alive, not recycled).
	time.Sleep(20 * time.Millisecond)
	if !clone.Pooled() {
		t.Fatal("KeepDeliveries delivery was recycled")
	}
}
