package core

// Trusted node-runtime hooks.
//
// A distributed deployment (§7: "a distributed system built from a set
// of DEFCON nodes") needs two capabilities that deliberately do not
// exist in the unit-facing Table 1 API: observing events regardless of
// label (to serialise them onto an inter-node link) and re-publishing
// events with their original labels intact (to materialise imports).
// Both belong to the node runtime — the same trust domain as the
// dispatcher — and live here, behind types the unit API never hands
// out.

import (
	"errors"

	"repro/internal/dispatch"
	"repro/internal/events"
	"repro/internal/labels"
)

// Tap is a trusted, label-bypassing event feed.
type Tap struct {
	sys *System
	id  uint64
	sub uint64
	ch  chan *events.Event
}

// tapReceiver adapts the channel to dispatch.Receiver.
type tapReceiver struct{ t *Tap }

func (r tapReceiver) ReceiverID() uint64       { return r.t.id }
func (r tapReceiver) InputLabel() labels.Label { return labels.Label{} }

// EnqueueBatch implements dispatch.Receiver's batched path over the
// tap channel; refused deliveries are recycled by EnqueueSeq per the
// Receiver contract.
func (r tapReceiver) EnqueueBatch(ds []events.QueuedDelivery, block bool) int {
	return dispatch.EnqueueSeq(r, ds, block)
}

func (r tapReceiver) Enqueue(e *events.Event, sub uint64, block bool) bool {
	if !block {
		select {
		case r.t.ch <- e:
			return true
		default:
			return false
		}
	}
	select {
	case r.t.ch <- e:
		return true
	case <-r.t.sys.done:
		return false
	}
}

// NewTap registers a trusted tap for events matching filter (by name
// and data only — labels are not consulted). buffer bounds the feed
// channel; a full channel blocks publishers, as unit queues do.
func (s *System) NewTap(filter *dispatch.Filter, buffer int) (*Tap, error) {
	if buffer <= 0 {
		buffer = 256
	}
	t := &Tap{sys: s, id: s.nextUnitID(), ch: make(chan *events.Event, buffer)}
	sub, err := s.disp.SubscribeTap(filter, tapReceiver{t})
	if err != nil {
		return nil, err
	}
	t.sub = sub
	return t, nil
}

// Events returns the tap's feed channel.
func (t *Tap) Events() <-chan *events.Event { return t.ch }

// Close unregisters the tap.
func (t *Tap) Close() { t.sys.disp.Unsubscribe(t.sub) }

// ErrClosed is returned by Inject after system shutdown.
var ErrClosed = errors.New("core: system closed")

// Inject publishes a fully formed event — labels, grants and all —
// bypassing contamination independence. It is the import half of an
// inter-node link: the event was label-checked on the origin node and
// its labels must survive the hop verbatim.
func (s *System) Inject(e *events.Event) error {
	if e == nil {
		return errors.New("core: Inject of nil event")
	}
	if s.Closed() {
		return ErrClosed
	}
	s.disp.Publish(e)
	return nil
}

// InjectBatch is Inject for a run of events: each is published exactly
// as by Inject, in order, through the batched dispatch path — the
// import loop of an inter-node link decodes a whole frame of peer
// events and materialises it in one call, so every matched receiver
// pays one queue handoff per frame instead of one per event.
func (s *System) InjectBatch(evs []*events.Event) error {
	if len(evs) == 0 {
		return nil
	}
	if s.Closed() {
		return ErrClosed
	}
	s.disp.PublishBatch(evs, true)
	return nil
}
