package core

// Per-unit resource accounting.
//
// The paper defers resource accounting to future work but observes
// (§7) that "thanks to our message passing paradigm it is possible to
// use common profiling techniques from aspect-oriented programming for
// resource accounting". The DEFCon API boundary is exactly such a
// weave point: every unit interaction already crosses it, so metering
// there attributes work to principals without trusting unit code.

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Usage is one unit's resource account.
type Usage struct {
	Unit       string
	APICalls   uint64 // total Table 1 API invocations
	Published  uint64 // events published
	Deliveries uint64 // events accepted into the unit's queue
	PartsRead  uint64 // part views returned by ReadPart
	PartsAdded uint64 // parts attached by AddPart
	TagsMinted uint64 // tags created
}

// usageCounters is the hot-path representation embedded in Unit.
// Delivery counts live on the instance queue (units.Instance.Enqueued).
type usageCounters struct {
	apiCalls, published         atomic.Uint64
	partsRead, partsAdded, tags atomic.Uint64
}

// Usage snapshots this unit's resource account.
func (u *Unit) Usage() Usage {
	return Usage{
		Unit:       u.name,
		APICalls:   u.acct.apiCalls.Load(),
		Published:  u.acct.published.Load(),
		Deliveries: u.inst.Enqueued(),
		PartsRead:  u.acct.partsRead.Load(),
		PartsAdded: u.acct.partsAdded.Load(),
		TagsMinted: u.acct.tags.Load(),
	}
}

// Accounting snapshots every registered unit's account (managed
// instances included), sorted by API call volume — the platform
// operator's per-principal resource view.
func (s *System) Accounting() []Usage {
	s.mu.Lock()
	units := make([]*Unit, 0, len(s.units))
	for _, u := range s.units {
		units = append(units, u)
	}
	s.mu.Unlock()
	out := make([]Usage, 0, len(units))
	for _, u := range units {
		out = append(out, u.Usage())
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].APICalls != out[j].APICalls {
			return out[i].APICalls > out[j].APICalls
		}
		return out[i].Unit < out[j].Unit
	})
	return out
}

// AccountingReport renders the top n accounts as an aligned table
// (n <= 0 renders all).
func (s *System) AccountingReport(n int) string {
	usages := s.Accounting()
	if n > 0 && len(usages) > n {
		usages = usages[:n]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %10s %10s %10s %10s %10s %8s\n",
		"unit", "api-calls", "published", "delivered", "parts-rd", "parts-add", "tags")
	for _, u := range usages {
		fmt.Fprintf(&b, "%-28s %10d %10d %10d %10d %10d %8d\n",
			u.Unit, u.APICalls, u.Published, u.Deliveries, u.PartsRead, u.PartsAdded, u.TagsMinted)
	}
	return b.String()
}
