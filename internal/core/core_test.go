package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/dispatch"
	"repro/internal/events"
	"repro/internal/freeze"
	"repro/internal/labels"
	"repro/internal/priv"
	"repro/internal/units"
)

func newSys(t *testing.T, mode SecurityMode) *System {
	t.Helper()
	s := NewSystem(Config{Mode: mode, Seed: 42})
	t.Cleanup(s.Close)
	return s
}

func TestSecurityModeFlags(t *testing.T) {
	cases := []struct {
		mode                         SecurityMode
		check, frz, clone, isolation bool
	}{
		{NoSecurity, false, false, false, false},
		{LabelsFreeze, true, true, false, false},
		{LabelsClone, true, false, true, false},
		{LabelsFreezeIsolation, true, true, false, true},
	}
	for _, c := range cases {
		if c.mode.CheckLabels() != c.check || c.mode.FreezeOnPublish() != c.frz ||
			c.mode.CloneDeliveries() != c.clone || c.mode.Isolation() != c.isolation {
			t.Errorf("%v flags wrong", c.mode)
		}
		if c.mode.String() == "" {
			t.Errorf("%v empty String", c.mode)
		}
	}
}

func TestContaminationIndependence(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	u := s.NewUnit("sandboxed", UnitConfig{})
	d := u.CreateTag("d")
	tt := u.CreateTag("t")
	// Sandbox the unit's output at {d} (the §5 example).
	if err := u.ChangeOutLabel(Confidentiality, Add, d); err != nil {
		t.Fatal(err)
	}
	e := u.CreateEvent()
	if err := u.AddPart(e, labels.NewSet(tt), labels.EmptySet, "p", "v"); err != nil {
		t.Fatal(err)
	}
	parts := e.Parts()
	if len(parts) != 1 {
		t.Fatal("part missing")
	}
	want := labels.NewSet(d, tt)
	if !parts[0].Label.S.Equal(want) {
		t.Fatalf("part S = %v, want {d,t}", parts[0].Label.S)
	}
}

func TestAddPartIntegrityCappedByOutput(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	u := s.NewUnit("u", UnitConfig{})
	i := u.CreateTag("i-exchange")
	e := u.CreateEvent()
	// Claiming integrity without it being in the output label silently
	// yields no integrity.
	if err := u.AddPart(e, labels.EmptySet, labels.NewSet(i), "p", "v"); err != nil {
		t.Fatal(err)
	}
	if !e.Parts()[0].Label.I.IsEmpty() {
		t.Fatal("integrity claimed beyond output label")
	}
	// After endorsing the output label (the unit owns i), parts carry it.
	if err := u.ChangeOutLabel(Integrity, Add, i); err != nil {
		t.Fatal(err)
	}
	if err := u.AddPart(e, labels.EmptySet, labels.NewSet(i), "q", "v"); err != nil {
		t.Fatal(err)
	}
	if !e.Parts()[1].Label.I.Has(i) {
		t.Fatal("endorsed part lacks integrity tag")
	}
}

func TestReadPartVisibilityAndBestowal(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	alice := s.NewUnit("alice", UnitConfig{})
	bob := s.NewUnit("bob", UnitConfig{})

	secret := alice.CreateTag("s-alice")
	e := alice.CreateEvent()
	if err := alice.AddPart(e, labels.NewSet(secret), labels.EmptySet, "order", "data"); err != nil {
		t.Fatal(err)
	}
	// Attach a privilege to a public part for bob.
	if err := alice.AddPart(e, labels.EmptySet, labels.EmptySet, "grant", secret); err != nil {
		t.Fatal(err)
	}
	if err := alice.AttachPrivilegeToPart(e, "grant", labels.EmptySet, labels.EmptySet, secret, priv.Plus); err != nil {
		t.Fatal(err)
	}
	if err := alice.AttachPrivilegeToPart(e, "grant", labels.EmptySet, labels.EmptySet, secret, priv.Minus); err != nil {
		t.Fatal(err)
	}

	// Bob cannot see the protected part.
	if _, err := bob.ReadPart(e, "order"); !errors.Is(err, ErrNoSuchPart) {
		t.Fatalf("ReadPart(order) = %v, want ErrNoSuchPart", err)
	}
	// Reading the public part bestows s+ and s− on bob (§3.1.5).
	views, err := bob.ReadPart(e, "grant")
	if err != nil {
		t.Fatal(err)
	}
	if got := views[0].Data; got != freeze.Value(secret) {
		t.Fatal("tag reference not carried in data")
	}
	if !bob.HasPrivilege(secret, priv.Plus) || !bob.HasPrivilege(secret, priv.Minus) {
		t.Fatal("grants not bestowed on read")
	}
	// Bob raises his input label and reads the protected part.
	if err := bob.ChangeInLabel(Confidentiality, Add, secret); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.ReadPart(e, "order"); err != nil {
		t.Fatalf("ReadPart after raise: %v", err)
	}
}

func TestAttachPrivilegeRequiresAuth(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	alice := s.NewUnit("alice", UnitConfig{})
	eve := s.NewUnit("eve", UnitConfig{})
	secret := alice.CreateTag("s")

	e := eve.CreateEvent()
	if err := eve.AddPart(e, labels.EmptySet, labels.EmptySet, "p", "v"); err != nil {
		t.Fatal(err)
	}
	// Eve has no authority over alice's tag.
	err := eve.AttachPrivilegeToPart(e, "p", labels.EmptySet, labels.EmptySet, secret, priv.Plus)
	if !errors.Is(err, priv.ErrNotAuthorised) {
		t.Fatalf("AttachPrivilegeToPart = %v, want ErrNotAuthorised", err)
	}
}

func TestLabelChangeRules(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	u := s.NewUnit("u", UnitConfig{})
	other := s.NewUnit("other", UnitConfig{})
	mine := u.CreateTag("mine")
	theirs := other.CreateTag("theirs")

	// Adding an owned tag works; adding someone else's fails.
	if err := u.ChangeInOutLabel(Confidentiality, Add, mine); err != nil {
		t.Fatal(err)
	}
	if err := u.ChangeInOutLabel(Confidentiality, Add, theirs); !errors.Is(err, priv.ErrNotAuthorised) {
		t.Fatalf("foreign add = %v", err)
	}
	if !u.InputLabel().S.Has(mine) || !u.OutputLabel().S.Has(mine) {
		t.Fatal("ChangeInOutLabel did not apply to both labels")
	}
	// Removal needs t− (owned: fine) and zero tags are rejected.
	if err := u.ChangeInOutLabel(Confidentiality, Del, mine); err != nil {
		t.Fatal(err)
	}
	if err := u.ChangeOutLabel(Confidentiality, Add, mine); err != nil {
		t.Fatal(err)
	}
	var zero = struct{ labels.Label }{}
	_ = zero
	if err := u.ChangeOutLabel(Confidentiality, Add, theirs); !errors.Is(err, priv.ErrNotAuthorised) {
		t.Fatal("foreign out-label add allowed")
	}
}

func TestChangeInLabelNeedsDeclassifyPrivilege(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	owner := s.NewUnit("owner", UnitConfig{})
	tg := owner.CreateTag("t")

	// A unit holding only t+ cannot open a standing declassification.
	half := s.NewUnit("half", UnitConfig{Grants: []priv.Grant{{Tag: tg, Right: priv.Plus}}})
	if err := half.ChangeInLabel(Confidentiality, Add, tg); !errors.Is(err, priv.ErrNotAuthorised) {
		t.Fatalf("input-only raise with t+ only = %v", err)
	}
	// With t±, the §3.1.4 broker pattern works.
	full := s.NewUnit("full", UnitConfig{Grants: []priv.Grant{
		{Tag: tg, Right: priv.Plus}, {Tag: tg, Right: priv.Minus},
	}})
	if err := full.ChangeInLabel(Confidentiality, Add, tg); err != nil {
		t.Fatal(err)
	}
	if full.OutputLabel().S.Has(tg) {
		t.Fatal("input-only raise contaminated output label")
	}
}

func TestPublishSubscribeGetEvent(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	pub := s.NewUnit("pub", UnitConfig{})
	subU := s.NewUnit("sub", UnitConfig{})

	subID, err := subU.Subscribe(dispatch.MustFilter(dispatch.PartEq("type", "tick")))
	if err != nil {
		t.Fatal(err)
	}
	e := pub.CreateEvent()
	if err := pub.AddPart(e, labels.EmptySet, labels.EmptySet, "type", "tick"); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(e); err != nil {
		t.Fatal(err)
	}
	got, gotSub, err := subU.GetEvent()
	if err != nil {
		t.Fatal(err)
	}
	if gotSub != subID {
		t.Fatalf("sub = %d, want %d", gotSub, subID)
	}
	if v, err := subU.ReadOne(got, "type"); err != nil || v.Data != freeze.Value("tick") {
		t.Fatalf("delivered part wrong: %v %v", v, err)
	}
}

func TestGetEventAutoReleaseRedispatches(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	pub := s.NewUnit("pub", UnitConfig{})
	augmenter := s.NewUnit("aug", UnitConfig{})
	late := s.NewUnit("late", UnitConfig{})

	if _, err := augmenter.Subscribe(dispatch.MustFilter(dispatch.PartExists("base"))); err != nil {
		t.Fatal(err)
	}
	if _, err := late.Subscribe(dispatch.MustFilter(dispatch.PartExists("extra"))); err != nil {
		t.Fatal(err)
	}

	e := pub.CreateEvent()
	if err := pub.AddPart(e, labels.EmptySet, labels.EmptySet, "base", "v"); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(e); err != nil {
		t.Fatal(err)
	}

	got, _, err := augmenter.GetEvent()
	if err != nil {
		t.Fatal(err)
	}
	// Partial processing: augmenter adds a part; the next GetEvent
	// auto-releases, so `late` receives the event.
	if err := augmenter.AddPart(got, labels.EmptySet, labels.EmptySet, "extra", "w"); err != nil {
		t.Fatal(err)
	}
	// Publish a second event so augmenter's GetEvent returns.
	e2 := pub.CreateEvent()
	if err := pub.AddPart(e2, labels.EmptySet, labels.EmptySet, "base", "v2"); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(e2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := augmenter.GetEvent(); err != nil {
		t.Fatal(err)
	}

	lateGot, _, err := late.GetEvent()
	if err != nil {
		t.Fatal(err)
	}
	if lateGot.ID() != e.ID() {
		t.Fatalf("late received event %d, want %d", lateGot.ID(), e.ID())
	}
}

// TestGetEventsBatchDrain checks the batched getEvent: a burst drains
// in order through one call, API-call metering counts every delivery,
// and modified events from the batch are auto-released (re-dispatched)
// by the next call exactly like GetEvent's single held delivery.
func TestGetEventsBatchDrain(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	pub := s.NewUnit("pub", UnitConfig{})
	consumer := s.NewUnit("consumer", UnitConfig{})
	late := s.NewUnit("late", UnitConfig{})

	if _, err := consumer.Subscribe(dispatch.MustFilter(dispatch.PartExists("base"))); err != nil {
		t.Fatal(err)
	}
	if _, err := late.Subscribe(dispatch.MustFilter(dispatch.PartExists("extra"))); err != nil {
		t.Fatal(err)
	}

	const burst = 5
	ids := make([]uint64, 0, burst)
	for i := 0; i < burst; i++ {
		e := pub.CreateEvent()
		if err := pub.AddPart(e, labels.EmptySet, labels.EmptySet, "base", "v"); err != nil {
			t.Fatal(err)
		}
		if err := pub.Publish(e); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, e.ID())
	}

	buf := make([]units.Delivery, 8)
	drained := 0
	var modified *events.Event
	before := consumer.Usage().APICalls
	for drained < burst {
		n, err := consumer.GetEvents(buf)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < n; k++ {
			if buf[k].Event.ID() != ids[drained+k] {
				t.Fatalf("delivery %d = event %d, want %d", drained+k, buf[k].Event.ID(), ids[drained+k])
			}
		}
		if modified == nil {
			// Modify the first delivery of the first batch: the next
			// GetEvents must auto-release and re-dispatch it.
			modified = buf[0].Event
			if err := consumer.AddPart(modified, labels.EmptySet, labels.EmptySet, "extra", "w"); err != nil {
				t.Fatal(err)
			}
		}
		drained += n
	}
	// One metered call per batched delivery, plus the consumer's own
	// AddPart above.
	if got := consumer.Usage().APICalls - before; got != uint64(drained)+1 {
		t.Fatalf("metered %d API calls for %d batched deliveries + 1 AddPart", got, drained)
	}

	// Force one more GetEvents so the held batch (with the modified
	// event) is auto-released.
	e := pub.CreateEvent()
	if err := pub.AddPart(e, labels.EmptySet, labels.EmptySet, "base", "tail"); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(e); err != nil {
		t.Fatal(err)
	}
	if _, err := consumer.GetEvents(buf); err != nil {
		t.Fatal(err)
	}

	lateGot, _, err := late.GetEvent()
	if err != nil {
		t.Fatal(err)
	}
	if lateGot.ID() != modified.ID() {
		t.Fatalf("late received event %d, want modified %d", lateGot.ID(), modified.ID())
	}
	if st := s.DispatchStats(); st.Redispatches != 1 {
		t.Fatalf("redispatches = %d, want 1 (only the modified delivery)", st.Redispatches)
	}
}

func TestExplicitReleaseRedispatches(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	pub := s.NewUnit("pub", UnitConfig{})
	aug := s.NewUnit("aug", UnitConfig{})
	late := s.NewUnit("late", UnitConfig{})

	if _, err := aug.Subscribe(dispatch.MustFilter(dispatch.PartExists("base"))); err != nil {
		t.Fatal(err)
	}
	if _, err := late.Subscribe(dispatch.MustFilter(dispatch.PartExists("extra"))); err != nil {
		t.Fatal(err)
	}
	e := pub.CreateEvent()
	if err := pub.AddPart(e, labels.EmptySet, labels.EmptySet, "base", "v"); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(e); err != nil {
		t.Fatal(err)
	}
	got, _, err := aug.GetEvent()
	if err != nil {
		t.Fatal(err)
	}
	if err := aug.AddPart(got, labels.EmptySet, labels.EmptySet, "extra", "w"); err != nil {
		t.Fatal(err)
	}
	if err := aug.Release(got); err != nil {
		t.Fatal(err)
	}
	if _, _, err := late.GetEvent(); err != nil {
		t.Fatal(err)
	}
	// Releasing an unmodified delivery is a no-op (no redispatch).
	st := s.DispatchStats()
	if st.Redispatches != 1 {
		t.Fatalf("redispatches = %d, want 1", st.Redispatches)
	}
}

func TestTraderIsolationScenario(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	t1 := s.NewUnit("trader-1", UnitConfig{})
	t2 := s.NewUnit("trader-2", UnitConfig{})

	tag1 := t1.CreateTag("t1")
	if err := t1.ChangeInOutLabel(Confidentiality, Add, tag1); err != nil {
		t.Fatal(err)
	}
	// Trader 2 subscribes to everything it can express.
	if _, err := t2.Subscribe(dispatch.MustFilter(dispatch.PartExists("strategy"))); err != nil {
		t.Fatal(err)
	}
	e := t1.CreateEvent()
	if err := t1.AddPart(e, labels.EmptySet, labels.EmptySet, "strategy", "pairs:MSFT/GOOG"); err != nil {
		t.Fatal(err)
	}
	if err := t1.Publish(e); err != nil {
		t.Fatal(err)
	}
	// The part was contaminated with t1; trader 2 must receive nothing.
	if n := t2.QueueLen(); n != 0 {
		t.Fatalf("trader 2 received %d deliveries of a t1-protected event", n)
	}
	if st := s.DispatchStats(); st.Deliveries != 0 {
		t.Fatalf("deliveries = %d, want 0", st.Deliveries)
	}
}

func TestInstantiateUnitInheritsContaminationAndChecksGrants(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	parent := s.NewUnit("parent", UnitConfig{})
	sandbox := parent.CreateTag("sandbox")
	foreign := s.NewUnit("other", UnitConfig{}).CreateTag("foreign")

	if err := parent.ChangeInOutLabel(Confidentiality, Add, sandbox); err != nil {
		t.Fatal(err)
	}
	// Delegating a tag the parent has no authority over fails.
	if _, err := parent.InstantiateUnit("child", labels.EmptySet, labels.EmptySet,
		[]priv.Grant{{Tag: foreign, Right: priv.Plus}}, nil); !errors.Is(err, priv.ErrNotAuthorised) {
		t.Fatalf("foreign delegation = %v", err)
	}
	// Legal instantiation: child inherits the parent's contamination.
	child, err := parent.InstantiateUnit("child", labels.EmptySet, labels.EmptySet,
		[]priv.Grant{{Tag: sandbox, Right: priv.Plus}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !child.InputLabel().S.Has(sandbox) || !child.OutputLabel().S.Has(sandbox) {
		t.Fatal("child escaped parent's contamination")
	}
	if !child.HasPrivilege(sandbox, priv.Plus) {
		t.Fatal("delegated grant missing")
	}
	if child.HasPrivilege(sandbox, priv.Minus) {
		t.Fatal("undelegated grant present")
	}
}

func TestCloneEventRelabels(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	u := s.NewUnit("u", UnitConfig{})
	tg := u.CreateTag("t")
	if err := u.ChangeOutLabel(Confidentiality, Add, tg); err != nil {
		t.Fatal(err)
	}
	src := u.CreateEvent()
	if err := u.AddPart(src, labels.EmptySet, labels.EmptySet, "p", "v"); err != nil {
		t.Fatal(err)
	}
	if err := u.Publish(src); err != nil {
		t.Fatal(err)
	}
	clone, err := u.CloneEvent(src, labels.EmptySet, labels.EmptySet)
	if err != nil {
		t.Fatal(err)
	}
	if clone.ID() == src.ID() {
		t.Fatal("clone shares ID")
	}
	if !clone.Parts()[0].Label.S.Has(tg) {
		t.Fatal("clone part missing output confidentiality tag")
	}
}

func TestNoSecurityModeIsLabelFree(t *testing.T) {
	s := newSys(t, NoSecurity)
	a := s.NewUnit("a", UnitConfig{})
	b := s.NewUnit("b", UnitConfig{})
	tg := a.CreateTag("t")

	// Label APIs are no-ops.
	if err := a.ChangeInOutLabel(Confidentiality, Add, tg); err != nil {
		t.Fatal(err)
	}
	if !a.InputLabel().IsPublic() {
		t.Fatal("no-security unit has labels")
	}
	if _, err := b.Subscribe(dispatch.MustFilter(dispatch.PartExists("x"))); err != nil {
		t.Fatal(err)
	}
	e := a.CreateEvent()
	if err := a.AddPart(e, labels.NewSet(tg), labels.EmptySet, "x", "v"); err != nil {
		t.Fatal(err)
	}
	if err := a.Publish(e); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.GetEvent(); err != nil {
		t.Fatal("no-security delivery failed")
	}
	// Parts are label-free and mutable (no freeze).
	if len(e.Parts()[0].Label.S.Slice()) != 0 {
		t.Fatal("no-security part carries labels")
	}
}

func TestCloneModeDeliversPrivateCopies(t *testing.T) {
	s := newSys(t, LabelsClone)
	pub := s.NewUnit("pub", UnitConfig{})
	a := s.NewUnit("a", UnitConfig{})
	b := s.NewUnit("b", UnitConfig{})
	for _, u := range []*Unit{a, b} {
		if _, err := u.Subscribe(dispatch.MustFilter(dispatch.PartExists("p"))); err != nil {
			t.Fatal(err)
		}
	}
	e := pub.CreateEvent()
	body := freeze.MapOf("k", "v")
	if err := pub.AddPart(e, labels.EmptySet, labels.EmptySet, "p", body); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(e); err != nil {
		t.Fatal(err)
	}
	ea, _, err := a.GetEvent()
	if err != nil {
		t.Fatal(err)
	}
	eb, _, err := b.GetEvent()
	if err != nil {
		t.Fatal(err)
	}
	if ea == eb || ea == e {
		t.Fatal("clone mode shared event objects")
	}
	va, _ := a.ReadOne(ea, "p")
	vb, _ := b.ReadOne(eb, "p")
	if va.Data == vb.Data {
		t.Fatal("clone mode shared part data")
	}
}

func TestIsolationModeTaxesAPICalls(t *testing.T) {
	s := newSys(t, LabelsFreezeIsolation)
	u := s.NewUnit("u", UnitConfig{})
	e := u.CreateEvent()
	if err := u.AddPart(e, labels.EmptySet, labels.EmptySet, "p", "v"); err != nil {
		t.Fatal(err)
	}
	if err := u.Publish(e); err != nil {
		t.Fatal(err)
	}
	st := u.inst.Iso.Stats()
	if st.APICalls < 3 {
		t.Fatalf("API calls taxed = %d, want ≥3", st.APICalls)
	}
	if st.FieldReads == 0 {
		t.Fatal("no interceptor work performed")
	}
}

func TestSystemCloseUnblocksUnits(t *testing.T) {
	s := NewSystem(Config{Mode: LabelsFreeze})
	got := make(chan error, 1)
	s.SpawnUnit("blocked", UnitConfig{}, func(u *Unit) {
		_, _, err := u.GetEvent()
		got <- err
	})
	time.Sleep(10 * time.Millisecond)
	s.Close()
	select {
	case err := <-got:
		if !errors.Is(err, ErrTerminated) {
			t.Fatalf("GetEvent after close = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("unit did not unblock on Close")
	}
	if !s.Closed() {
		t.Fatal("Closed() false")
	}
	s.Close() // idempotent
}

func TestTerminateUnit(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	pub := s.NewUnit("pub", UnitConfig{})
	u := s.NewUnit("u", UnitConfig{})
	if _, err := u.Subscribe(dispatch.MustFilter(dispatch.PartExists("p"))); err != nil {
		t.Fatal(err)
	}
	if s.UnitCount() != 2 {
		t.Fatalf("UnitCount = %d", s.UnitCount())
	}
	u.Terminate()
	if s.UnitCount() != 1 {
		t.Fatal("Terminate did not deregister")
	}
	e := pub.CreateEvent()
	if err := pub.AddPart(e, labels.EmptySet, labels.EmptySet, "p", "v"); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(e); err != nil {
		t.Fatal(err)
	}
	if st := s.DispatchStats(); st.Deliveries != 0 {
		t.Fatal("terminated unit still receives")
	}
}

func TestPublishDoesNotRevealDeliveries(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	pub := s.NewUnit("pub", UnitConfig{})
	e := pub.CreateEvent()
	if err := pub.AddPart(e, labels.EmptySet, labels.EmptySet, "p", "v"); err != nil {
		t.Fatal(err)
	}
	// Publish with zero subscribers returns exactly the same as with
	// many: nil. (The API has no delivery-count channel.)
	if err := pub.Publish(e); err != nil {
		t.Fatal(err)
	}
}

func TestNilArgumentErrors(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	u := s.NewUnit("u", UnitConfig{})
	if err := u.AddPart(nil, labels.EmptySet, labels.EmptySet, "p", "v"); err == nil {
		t.Fatal("AddPart(nil) succeeded")
	}
	if err := u.Publish(nil); err == nil {
		t.Fatal("Publish(nil) succeeded")
	}
	if err := u.Release(nil); err == nil {
		t.Fatal("Release(nil) succeeded")
	}
	if _, err := u.ReadPart(nil, "p"); err == nil {
		t.Fatal("ReadPart(nil) succeeded")
	}
	if _, err := u.CloneEvent(nil, labels.EmptySet, labels.EmptySet); err == nil {
		t.Fatal("CloneEvent(nil) succeeded")
	}
	if err := u.DelPart(nil, labels.EmptySet, labels.EmptySet, "p"); err == nil {
		t.Fatal("DelPart(nil) succeeded")
	}
	if _, err := u.SubscribeManaged(nil, dispatch.MustFilter(dispatch.PartExists("p"))); err == nil {
		t.Fatal("SubscribeManaged(nil handler) succeeded")
	}
}

func TestDelPartRequiresExactEffectiveLabel(t *testing.T) {
	s := newSys(t, LabelsFreeze)
	u := s.NewUnit("u", UnitConfig{})
	tg := u.CreateTag("t")
	e := u.CreateEvent()
	if err := u.AddPart(e, labels.NewSet(tg), labels.EmptySet, "p", "v"); err != nil {
		t.Fatal(err)
	}
	// Deleting with the same requested label succeeds (same effective
	// label after contamination).
	if err := u.DelPart(e, labels.NewSet(tg), labels.EmptySet, "p"); err != nil {
		t.Fatal(err)
	}
	if e.Len() != 0 {
		t.Fatal("part not deleted")
	}
}
