// Package core is the DEFCon system: the runtime that hosts event
// processing units, enforces the DEFC model at the Table 1 API
// boundary, and dispatches events between isolates.
//
// The package ties the substrates together: labels/tags/priv implement
// the model's lattice and privileges, events carries labelled parts,
// dispatch matches and routes, units holds per-instance runtime state,
// isolation supplies the woven interceptors of §4, and freeze provides
// zero-copy sharing. Units interact exclusively through *Unit — the
// API surface of Table 1.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/dispatch"
	"repro/internal/isolation"
	"repro/internal/labels"
	"repro/internal/priv"
	"repro/internal/tags"
	"repro/internal/units"
)

// SecurityMode selects the enforcement level, matching the four curves
// of Figures 5–7.
type SecurityMode int

const (
	// NoSecurity disables labels, freezing and isolation: the paper's
	// "no security" baseline.
	NoSecurity SecurityMode = iota
	// LabelsFreeze enforces DEFC labels and shares frozen event data by
	// reference ("labels+freeze").
	LabelsFreeze
	// LabelsClone enforces DEFC labels and hands each receiver a
	// private deep copy of the event ("labels+clone") — the cost an
	// MVM-style copying isolation scheme would impose.
	LabelsClone
	// LabelsFreezeIsolation is LabelsFreeze plus the §4 runtime
	// interceptors woven into every unit API call
	// ("labels+freeze+isolation") — the full DEFCon configuration.
	LabelsFreezeIsolation
)

// String names the mode using the paper's curve labels.
func (m SecurityMode) String() string {
	switch m {
	case NoSecurity:
		return "no security"
	case LabelsFreeze:
		return "labels+freeze"
	case LabelsClone:
		return "labels+clone"
	case LabelsFreezeIsolation:
		return "labels+freeze+isolation"
	default:
		return fmt.Sprintf("SecurityMode(%d)", int(m))
	}
}

// CheckLabels reports whether the mode enforces DEFC admission.
func (m SecurityMode) CheckLabels() bool { return m != NoSecurity }

// FreezeOnPublish reports whether published parts are frozen for
// zero-copy sharing.
func (m SecurityMode) FreezeOnPublish() bool {
	return m == LabelsFreeze || m == LabelsFreezeIsolation
}

// CloneDeliveries reports whether receivers get private deep copies.
func (m SecurityMode) CloneDeliveries() bool { return m == LabelsClone }

// Isolation reports whether the §4 interceptors are woven in.
func (m SecurityMode) Isolation() bool { return m == LabelsFreezeIsolation }

// Config assembles a System.
type Config struct {
	// Mode selects the security level. Default: LabelsFreezeIsolation.
	Mode SecurityMode
	// Seed drives the tag store's identity stream. Default 1.
	Seed int64
	// QueueCap bounds each unit instance's delivery queue. Default 1024.
	QueueCap int
	// Enforcer supplies a pre-built isolation enforcer; when nil and
	// Mode requires isolation, the system analyses a fresh JDK catalog.
	// Benchmarks share one enforcer across systems to keep set-up out
	// of the measured region.
	Enforcer *isolation.Enforcer
}

// System is a DEFCon instance: tag store, dispatcher and unit registry.
type System struct {
	mode SecurityMode
	tags *tags.Store
	disp *dispatch.Dispatcher
	enf  *isolation.Enforcer

	queueCap int

	eventID atomic.Uint64
	unitID  atomic.Uint64

	mu     sync.Mutex
	units  map[uint64]*Unit
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup
}

// NewSystem builds and starts a DEFCon system.
func NewSystem(cfg Config) *System {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 1024
	}
	s := &System{
		mode:     cfg.Mode,
		tags:     tags.NewStore(cfg.Seed),
		queueCap: cfg.QueueCap,
		units:    make(map[uint64]*Unit),
		done:     make(chan struct{}),
	}
	if cfg.Mode.Isolation() {
		s.enf = cfg.Enforcer
		if s.enf == nil {
			s.enf = isolation.NewEnforcer(isolation.Analyze(isolation.NewJDKCatalog()))
		}
	}
	s.disp = dispatch.New(dispatch.Options{
		CheckLabels:     cfg.Mode.CheckLabels(),
		FreezeOnPublish: cfg.Mode.FreezeOnPublish(),
		CloneDeliveries: cfg.Mode.CloneDeliveries(),
		NextEventID:     func() uint64 { return s.eventID.Add(1) },
	})
	return s
}

// Mode returns the system's security mode.
func (s *System) Mode() SecurityMode { return s.mode }

// TagStore exposes the tag store for diagnostics (symbolic tag names in
// logs and tests). Units create tags through Unit.CreateTag.
func (s *System) TagStore() *tags.Store { return s.tags }

// DispatchStats snapshots the dispatcher counters.
func (s *System) DispatchStats() dispatch.Stats { return s.disp.Stats() }

// Done exposes the shutdown channel; unit logic may select on it for
// periodic work.
func (s *System) Done() <-chan struct{} { return s.done }

// Closed reports whether Close has been called.
func (s *System) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close shuts the system down: blocked GetEvent calls return
// ErrTerminated and unit goroutines are awaited.
func (s *System) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.done)
	s.mu.Unlock()
	s.wg.Wait()
}

// UnitConfig configures a new root unit (trusted bootstrap — the
// platform operator deciding which units run and with which initial
// labels/privileges, Figure 2).
type UnitConfig struct {
	// In is the initial input label (= contamination). Zero means
	// public.
	In labels.Label
	// Out is the initial output label. Zero means public.
	Out labels.Label
	// Grants are privileges bestowed at creation (system-level; no
	// delegation check applies to the trusted bootstrap).
	Grants []priv.Grant
	// QueueCap overrides the per-unit delivery queue capacity.
	QueueCap int
}

// NewUnit registers a unit without starting a goroutine; the caller
// drives its API directly. Tests and benchmark harnesses use this form.
func (s *System) NewUnit(name string, cfg UnitConfig) *Unit {
	u := s.buildUnit(name, cfg)
	s.mu.Lock()
	s.units[u.inst.ReceiverID()] = u
	s.mu.Unlock()
	return u
}

// SpawnUnit registers a unit and runs logic on its own goroutine — the
// unit's processing loop. The goroutine is awaited by Close.
func (s *System) SpawnUnit(name string, cfg UnitConfig, logic func(u *Unit)) *Unit {
	u := s.NewUnit(name, cfg)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		logic(u)
	}()
	return u
}

// buildUnit assembles the unit and its primary instance.
func (s *System) buildUnit(name string, cfg UnitConfig) *Unit {
	owned := &priv.Owned{}
	owned.GrantAll(cfg.Grants)
	in, out := cfg.In, cfg.Out
	if !s.mode.CheckLabels() {
		// The no-security mode carries no labels at all.
		in, out = labels.Label{}, labels.Label{}
	}
	return s.buildUnitAt(name, in, out, owned, cfg.QueueCap)
}

// buildUnitAt assembles a unit instance at explicit labels with an
// explicit privilege state; shared by the bootstrap path,
// InstantiateUnit and the managed-subscription router. queueCap <= 0
// selects the system default.
func (s *System) buildUnitAt(name string, in, out labels.Label, owned *priv.Owned, queueCap int) *Unit {
	var iso *isolation.Isolate
	if s.enf != nil {
		iso = s.enf.NewIsolate(name)
	}
	if queueCap <= 0 {
		queueCap = s.queueCap
	}
	inst := units.New(units.Config{
		ID:       s.nextUnitID(),
		Name:     name,
		In:       in,
		Out:      out,
		Owned:    owned,
		Iso:      iso,
		QueueCap: queueCap,
		Done:     s.done,
	})
	return newUnit(s, name, inst)
}

// UnitCount reports the number of registered units (primary instances).
func (s *System) UnitCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.units)
}

// TotalQueueLen sums the delivery-queue depths of every registered
// unit, including managed-subscription instances. Harnesses use it to
// detect quiescence after a replay.
func (s *System) TotalQueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, u := range s.units {
		total += u.inst.QueueLen()
	}
	return total
}

// nextEventID mints an event identity.
func (s *System) nextEventID() uint64 { return s.eventID.Add(1) }

// NextEventID mints a fresh event identity for the trusted node
// runtime (inter-node event import).
func (s *System) NextEventID() uint64 { return s.nextEventID() }

// nextUnitID mints a unit/receiver identity.
func (s *System) nextUnitID() uint64 { return s.unitID.Add(1) }

// track registers a child goroutine with the system lifecycle.
func (s *System) track(fn func()) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		fn()
	}()
}

// Go runs fn on a system-tracked goroutine, awaited by Close. Unit
// assemblies use it to start processing loops after registering
// subscriptions synchronously (avoiding a race between subscription
// set-up and the first publishes).
func (s *System) Go(fn func()) { s.track(fn) }
