package isolation

import (
	"fmt"
	"sort"
	"strings"
)

// KindCounts tallies targets per kind at some pipeline stage.
type KindCounts struct {
	Fields  int
	Natives int
	Syncs   int
}

// Total sums all kinds.
func (k KindCounts) Total() int { return k.Fields + k.Natives + k.Syncs }

// add increments the counter for kind.
func (k *KindCounts) add(kind TargetKind) {
	switch kind {
	case StaticField:
		k.Fields++
	case NativeMethod:
		k.Natives++
	case SyncTarget:
		k.Syncs++
	}
}

// String renders "F fields, N natives, S syncs".
func (k KindCounts) String() string {
	return fmt.Sprintf("%d static fields, %d native methods, %d sync targets",
		k.Fields, k.Natives, k.Syncs)
}

// Report summarises each stage of the §4.2 pipeline, mirroring the
// counts the paper reports for OpenJDK 6.
type Report struct {
	// TotalTargets covers the whole class library (≈4,000 static
	// fields, ≈2,000 native methods in the paper).
	TotalTargets KindCounts
	// Eliminated targets belong to classes referenced by neither
	// DEFCon nor units (AWT/Swing and friends).
	Eliminated KindCounts
	// Used is TDEFCon ∪ Tunits (paper: "more than 2,000 used targets —
	// approximately 20% of the full JDK").
	Used KindCounts
	// DEFConOnly is TDEFCon \ Tunits: unreachable from unit code by
	// class-loader construction.
	DEFConOnly KindCounts
	// UnitReachable is Tunits after the reachability analysis (paper:
	// ≈1,200 dangerous targets — ≈320 native methods, ≈900 static
	// fields).
	UnitReachable KindCounts
	// HeuristicWhitelisted were proven safe by the §4.2 heuristics.
	HeuristicWhitelisted KindCounts
	// AfterHeuristics remain dangerous after heuristics (paper: ≈500
	// static fields and ≈300 native methods).
	AfterHeuristics KindCounts
	// ManualWhitelisted were inspected by hand (paper: 15 native
	// methods, 27 static fields, 10 sync targets — 52 in total).
	ManualWhitelisted KindCounts
	// ProfiledWhitelisted were hot targets white-listed after profiling
	// (paper: 15 — 6 static fields, 9 native methods).
	ProfiledWhitelisted KindCounts
	// Intercepted targets get runtime interceptors woven in.
	Intercepted KindCounts
}

// String renders the report as the pipeline table.
func (r Report) String() string {
	var b strings.Builder
	w := func(stage string, k KindCounts) {
		fmt.Fprintf(&b, "%-22s %5d  (%s)\n", stage, k.Total(), k)
	}
	w("total", r.TotalTargets)
	w("eliminated (T_JDK)", r.Eliminated)
	w("used", r.Used)
	w("defcon-only", r.DEFConOnly)
	w("unit-reachable", r.UnitReachable)
	w("heuristic-whitelisted", r.HeuristicWhitelisted)
	w("after-heuristics", r.AfterHeuristics)
	w("manual-whitelisted", r.ManualWhitelisted)
	w("profiled-whitelisted", r.ProfiledWhitelisted)
	w("intercepted", r.Intercepted)
	return b.String()
}

// Analysis is the result of running the static pipeline over a catalog:
// a per-target decision table plus the interceptor plan the runtime
// Enforcer executes.
type Analysis struct {
	Catalog   *Catalog
	Decisions []Decision // indexed by Target.ID
	Users     []UserSet  // indexed by Target.ID

	// manualQuota fixes how many of each kind the manual inspection
	// stage white-lists, defaulting to the paper's 27/15/10.
	manualFields, manualNatives, manualSyncs int
}

// namedManualWhitelist are the targets §4.2 justifies by hand. They are
// white-listed first; the remaining manual quota is filled with the
// lexicographically first intercepted targets, mirroring "before
// running the units in our financial scenario, we had to manually check
// 15 native methods and 27 static fields, which were intercepted and
// raised security exceptions".
var namedManualWhitelist = []string{
	"java.lang.Object.hashCode",            // equivalent to reading a constant field
	"java.lang.Object.getClass",            // Class objects unique and constant
	"java.lang.Double.longBitsToDouble",    // accesses no JVM state
	"java.lang.Double.doubleToRawLongBits", // accesses no JVM state
	"java.lang.System.security",            // protected from modification by units
	"java.lang.System.arraycopy",           // pure copy, no global state
	"java.lang.System.nanoTime",            // reads clock only
	"java.lang.ClassLoader.loadClass",      // NeverShared-transformed sync
	"java.lang.StringBuffer.append",        // NeverShared-transformed sync
	"java.lang.StringBuffer.toStringLock",  // NeverShared-transformed sync
}

// Analyze runs the full static pipeline: dependency trim, reachability
// with dynamic dispatch, heuristic white-listing, manual white-listing
// and interceptor planning.
func Analyze(cat *Catalog) *Analysis {
	a := &Analysis{
		Catalog:       cat,
		Decisions:     make([]Decision, len(cat.Targets)),
		Users:         make([]UserSet, len(cat.Targets)),
		manualFields:  27,
		manualNatives: 15,
		manualSyncs:   10,
	}
	a.stageTrimAndPartition()
	a.stageHeuristics()
	a.stageManual()
	a.stagePlan()
	return a
}

// reachable computes the transitive closure over reference edges,
// expanding subtype edges to cover dynamic dispatch: a call through a
// base class may execute any compatible subtype's code (§4.2
// "Reachability analysis").
func reachable(cat *Catalog, roots map[string]bool) map[string]bool {
	seen := make(map[string]bool, len(roots))
	queue := sortedKeys(roots)
	for _, r := range queue {
		seen[r] = true
	}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		cl, ok := cat.Classes[name]
		if !ok {
			continue
		}
		next := make([]string, 0, len(cl.Refs)+len(cl.Subtypes))
		next = append(next, cl.Refs...)
		next = append(next, cl.Subtypes...)
		for _, n := range next {
			if !seen[n] {
				seen[n] = true
				queue = append(queue, n)
			}
		}
	}
	return seen
}

// stageTrimAndPartition performs the dependency trim (eliminating TJDK)
// and the TDEFCon / Tunits partition.
func (a *Analysis) stageTrimAndPartition() {
	cat := a.Catalog
	usedClasses := reachable(cat, union(cat.DEFConRoots, cat.UnitWhitelist))
	unitClasses := reachable(cat, cat.UnitWhitelist)

	for i := range cat.Targets {
		t := &cat.Targets[i]
		switch {
		case unitClasses[t.Class]:
			a.Users[i] = UsedByUnits
			// Decision pending: heuristics and interceptors follow.
		case usedClasses[t.Class]:
			a.Users[i] = UsedByDEFCon
			a.Decisions[i] = DEFConOnly
		default:
			a.Users[i] = UsedByNone
			a.Decisions[i] = Eliminated
		}
	}
}

// stageHeuristics applies the §4.2 white-listing rules to
// unit-reachable targets.
func (a *Analysis) stageHeuristics() {
	for i := range a.Catalog.Targets {
		if a.Users[i] != UsedByUnits || a.Decisions[i] != Undecided {
			continue
		}
		t := &a.Catalog.Targets[i]
		switch {
		case t.SecurityGuarded:
			// The Unsafe rule: guarded by the security framework.
			a.Decisions[i] = WhitelistedHeuristic
		case t.Kind == StaticField && t.Field.Final && t.Field.ImmutableType:
			// Immutable constants can be shared.
			a.Decisions[i] = WhitelistedHeuristic
		case t.Kind == StaticField && t.Field.Private && t.Field.WriteOnce:
			// Private write-once vectors of constants.
			a.Decisions[i] = WhitelistedHeuristic
		}
	}
}

// stageManual white-lists the named targets, then fills the per-kind
// manual quotas with the lexicographically first remaining dangerous
// targets (a deterministic stand-in for "the targets our scenario's
// units actually tripped over").
func (a *Analysis) stageManual() {
	named := make(map[string]bool, len(namedManualWhitelist))
	for _, n := range namedManualWhitelist {
		named[n] = true
	}
	quota := map[TargetKind]int{
		StaticField:  a.manualFields,
		NativeMethod: a.manualNatives,
		SyncTarget:   a.manualSyncs,
	}
	// Pass 1: the named justifications.
	for i := range a.Catalog.Targets {
		t := &a.Catalog.Targets[i]
		if a.Users[i] == UsedByUnits && a.Decisions[i] == Undecided &&
			named[t.FullName()] && quota[t.Kind] > 0 {
			a.Decisions[i] = WhitelistedManual
			quota[t.Kind]--
		}
	}
	// Pass 2: fill quotas deterministically.
	idx := make([]int, 0, len(a.Catalog.Targets))
	for i := range a.Catalog.Targets {
		if a.Users[i] == UsedByUnits && a.Decisions[i] == Undecided {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(x, y int) bool {
		return a.Catalog.Targets[idx[x]].FullName() < a.Catalog.Targets[idx[y]].FullName()
	})
	for _, i := range idx {
		t := &a.Catalog.Targets[i]
		if quota[t.Kind] > 0 {
			a.Decisions[i] = WhitelistedManual
			quota[t.Kind]--
		}
	}
}

// stagePlan assigns interceptors to everything still dangerous.
func (a *Analysis) stagePlan() {
	for i := range a.Catalog.Targets {
		if a.Users[i] != UsedByUnits || a.Decisions[i] != Undecided {
			continue
		}
		t := &a.Catalog.Targets[i]
		switch t.Kind {
		case StaticField:
			if t.Field.Primitive {
				// Copy can be deferred to the first set for primitive
				// and constant types.
				a.Decisions[i] = InterceptDeferredSet
			} else {
				a.Decisions[i] = InterceptReplicate
			}
		case NativeMethod, SyncTarget:
			a.Decisions[i] = InterceptGuard
		}
	}
}

// ApplyProfile white-lists hot intercepted targets found by profiling
// unit execution paths (§4.2, final paragraph: 15 additional targets —
// 6 static fields and 9 native methods). hot lists target IDs in
// decreasing heat; quotas bound how many of each kind move to the
// manual white-list.
func (a *Analysis) ApplyProfile(hot []int, maxFields, maxNatives int) int {
	moved := 0
	for _, id := range hot {
		if id < 0 || id >= len(a.Decisions) {
			continue
		}
		t := &a.Catalog.Targets[id]
		if !a.Decisions[id].Intercepted() {
			continue
		}
		switch t.Kind {
		case StaticField:
			if maxFields == 0 {
				continue
			}
			maxFields--
		case NativeMethod:
			if maxNatives == 0 {
				continue
			}
			maxNatives--
		default:
			continue
		}
		t.Hot = true
		a.Decisions[id] = WhitelistedManual
		moved++
	}
	return moved
}

// ReplicaSlots assigns every intercepted static field a dense replica
// slot — the index of its per-isolate copy in the Isolate slot array.
// Slot assignment happens at plan-compilation time (NewEnforcer): the
// returned table is a snapshot of the current decisions, so later
// ApplyProfile calls do not shift slots under a live enforcer. Returns
// slotOf (indexed by target ID, -1 = no replica) and the slot count.
func (a *Analysis) ReplicaSlots() ([]int32, int) {
	slotOf := make([]int32, len(a.Decisions))
	n := int32(0)
	for i, d := range a.Decisions {
		slotOf[i] = -1
		if a.Catalog.Targets[i].Kind == StaticField && d.Intercepted() {
			slotOf[i] = n
			n++
		}
	}
	return slotOf, int(n)
}

// InterceptedIDs returns the IDs of all targets with runtime
// interceptors, in ascending order.
func (a *Analysis) InterceptedIDs() []int {
	var out []int
	for i, d := range a.Decisions {
		if d.Intercepted() {
			out = append(out, i)
		}
	}
	return out
}

// Decision returns the verdict for a target ID.
func (a *Analysis) Decision(id int) Decision {
	if id < 0 || id >= len(a.Decisions) {
		return Undecided
	}
	return a.Decisions[id]
}

// BuildReport tallies the pipeline stages.
func (a *Analysis) BuildReport() Report {
	var r Report
	for i := range a.Catalog.Targets {
		t := &a.Catalog.Targets[i]
		r.TotalTargets.add(t.Kind)
		switch a.Users[i] {
		case UsedByNone:
			r.Eliminated.add(t.Kind)
		case UsedByDEFCon:
			r.Used.add(t.Kind)
			r.DEFConOnly.add(t.Kind)
		case UsedByUnits:
			r.Used.add(t.Kind)
			r.UnitReachable.add(t.Kind)
		}
		switch a.Decisions[i] {
		case WhitelistedHeuristic:
			r.HeuristicWhitelisted.add(t.Kind)
		case WhitelistedManual:
			if t.Hot {
				r.ProfiledWhitelisted.add(t.Kind)
			} else {
				r.ManualWhitelisted.add(t.Kind)
			}
		}
		if a.Decisions[i].Intercepted() {
			r.Intercepted.add(t.Kind)
		}
	}
	// After-heuristics = unit-reachable minus heuristic white-list.
	r.AfterHeuristics = KindCounts{
		Fields:  r.UnitReachable.Fields - r.HeuristicWhitelisted.Fields,
		Natives: r.UnitReachable.Natives - r.HeuristicWhitelisted.Natives,
		Syncs:   r.UnitReachable.Syncs - r.HeuristicWhitelisted.Syncs,
	}
	return r
}

// union merges two class sets.
func union(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}
