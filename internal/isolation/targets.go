// Package isolation reproduces DEFCon's practical, light-weight
// isolation methodology (paper §4).
//
// The paper isolates Java processing units inside one JVM by (1)
// statically determining potentially dangerous JDK "targets" — static
// fields, native methods and synchronisation primitives that could act
// as covert storage channels between isolates — (2) white-listing the
// provably safe ones with heuristics, and (3) weaving runtime
// interceptors into the remainder (per-isolate replication of static
// fields, guards on native methods, NeverShared-checked locking).
//
// Go has no JVM to weave, so this package reproduces the methodology on
// a faithful synthetic model of the JDK 6 class library (class graph
// with the paper's target populations) and provides the runtime
// enforcement layer — isolate contexts, a replicated static-field
// store, native guards and a NeverShared sync guard — that the DEFCon
// core actually routes unit API calls through when running in the
// labels+freeze+isolation security mode. The interceptor work (table
// lookups, per-isolate copies, violation accounting) is real, so the
// isolation overhead measured by the Figure 5–7 benchmarks is executed
// rather than simulated.
package isolation

import "fmt"

// TargetKind classifies a potentially dangerous JDK target (§4: "static
// fields, native methods and synchronisation primitives that could be
// used by units to communicate covertly").
type TargetKind uint8

const (
	// StaticField is mutable class-level state (≈4,000 in OpenJDK 6).
	StaticField TargetKind = iota
	// NativeMethod may expose global JVM state (≈2,000 in OpenJDK 6).
	NativeMethod
	// SyncTarget is a synchronisation point on a potentially shared
	// object (locks of interned strings, Class objects, ...).
	SyncTarget
)

// String names the kind.
func (k TargetKind) String() string {
	switch k {
	case StaticField:
		return "static-field"
	case NativeMethod:
		return "native-method"
	case SyncTarget:
		return "sync"
	default:
		return fmt.Sprintf("TargetKind(%d)", uint8(k))
	}
}

// UserSet records which part of the system references a target, the
// TDEFCon / Tunits / TJDK partition of Figure 3.
type UserSet uint8

const (
	// UsedByNone — TJDK: referenced by neither DEFCon nor units;
	// eliminated outright by the dependency trim.
	UsedByNone UserSet = iota
	// UsedByDEFCon — TDEFCon: referenced only by the trusted DEFCon
	// implementation; unreachable from unit code by construction
	// (custom class loader white-list).
	UsedByDEFCon
	// UsedByUnits — Tunits: reachable from unit code; must be
	// white-listed or intercepted.
	UsedByUnits
)

// String names the user set.
func (u UserSet) String() string {
	switch u {
	case UsedByNone:
		return "T_JDK"
	case UsedByDEFCon:
		return "T_DEFCon"
	case UsedByUnits:
		return "T_units"
	default:
		return fmt.Sprintf("UserSet(%d)", uint8(u))
	}
}

// FieldAttrs are the static-field properties the heuristic
// white-listing stage inspects (§4.2 "Heuristic-based white-listing").
type FieldAttrs struct {
	Final         bool // declared final
	ImmutableType bool // String, boxed primitive, or primitive constant
	Private       bool // private visibility
	WriteOnce     bool // "not declared final but only written once"
	Primitive     bool // primitive or constant type: copy can defer to set
}

// Target is one potentially dangerous member of the class library.
type Target struct {
	ID      int        // dense identity, index into analysis tables
	Kind    TargetKind // field / native / sync
	Class   string     // fully-qualified declaring class
	Member  string     // field or method name
	Package string     // declaring package

	// SecurityGuarded marks members of sun.misc.Unsafe and friends:
	// already guarded by the Java security framework, so any access
	// from unit code "would be a critical JVM bug" and the member is
	// white-listed wholesale.
	SecurityGuarded bool

	Field FieldAttrs // meaningful when Kind == StaticField

	// Hot marks targets on frequently executed unit code paths; the
	// profiling pass (§4.2 "Manual white-listing", final paragraph)
	// surfaces these for manual inspection.
	Hot bool
}

// FullName returns Class.Member.
func (t *Target) FullName() string { return t.Class + "." + t.Member }

// Decision is the analysis pipeline's verdict for a target.
type Decision uint8

const (
	// Undecided targets have not been processed yet.
	Undecided Decision = iota
	// Eliminated — class never loaded (TJDK trimmed from the JDK).
	Eliminated
	// DEFConOnly — reachable only from trusted DEFCon code; the unit
	// class-loader white-list makes unit access impossible (call 'A'
	// in Figure 3).
	DEFConOnly
	// WhitelistedHeuristic — proven safe by a §4.2 heuristic
	// (security-guarded, final immutable constant, private write-once).
	WhitelistedHeuristic
	// WhitelistedManual — one of the 52 targets inspected by hand
	// (15 native + 27 static + 10 sync) or the 15 profiled hot targets.
	WhitelistedManual
	// InterceptReplicate — static field duplicated per isolate with an
	// on-demand deep copy on get access.
	InterceptReplicate
	// InterceptDeferredSet — primitive/constant static field whose
	// per-isolate copy can be deferred to the first set.
	InterceptDeferredSet
	// InterceptGuard — native method or sync target wrapped in a
	// runtime check: allowed when executed as part of a DEFCon API call
	// (call 'D' in Figure 3) or on a NeverShared object, otherwise a
	// security exception (call 'C').
	InterceptGuard
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case Undecided:
		return "undecided"
	case Eliminated:
		return "eliminated"
	case DEFConOnly:
		return "defcon-only"
	case WhitelistedHeuristic:
		return "whitelisted-heuristic"
	case WhitelistedManual:
		return "whitelisted-manual"
	case InterceptReplicate:
		return "intercept-replicate"
	case InterceptDeferredSet:
		return "intercept-deferred-set"
	case InterceptGuard:
		return "intercept-guard"
	default:
		return fmt.Sprintf("Decision(%d)", uint8(d))
	}
}

// Intercepted reports whether the decision requires a runtime
// interceptor on the access path.
func (d Decision) Intercepted() bool {
	switch d {
	case InterceptReplicate, InterceptDeferredSet, InterceptGuard:
		return true
	default:
		return false
	}
}

// Class models one class of the library: its members and its reference
// edges (the statically enumerable method-to-method and method-to-field
// paths used by the reachability analysis).
type Class struct {
	Name    string
	Package string

	// Targets declared by this class (indices into Catalog.Targets).
	Members []int

	// Refs are classes this class's code references directly.
	Refs []string

	// Subtypes lists classes that extend/implement this class. A call
	// to a method signature of this class may dynamically dispatch into
	// any compatible subtype (§4.2 "Reachability analysis").
	Subtypes []string
}
