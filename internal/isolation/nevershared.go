package isolation

import "sync"

// NeverShared is the tagging interface of §4.3: a type may implement it
// when (a) the system prevents its instances being put into events,
// (b) no white-listed native method can return the same instance to two
// units, and (c) no static field of the type is white-listed as safe.
// Units may only synchronise on NeverShared values; attempts to lock
// anything else raise a security exception.
//
// The freeze package's containers deliberately do NOT implement
// NeverShared — they are exactly the objects that get shared through
// events, mirroring the paper's exclusion of String and Class.
type NeverShared interface {
	neverShared()
}

// Mutex is a unit-local lock that satisfies the NeverShared
// requirements: it is not an allowed event-part value, so it can never
// be shared through an event, and the system never aliases one across
// units. Units needing synchronisation create their own.
type Mutex struct {
	mu sync.Mutex
}

// Lock acquires the mutex.
func (m *Mutex) Lock() { m.mu.Lock() }

// Unlock releases the mutex.
func (m *Mutex) Unlock() { m.mu.Unlock() }

func (*Mutex) neverShared() {}

// Cond is a unit-local condition variable over a Mutex, for units whose
// processing loops block awaiting local state changes.
type Cond struct {
	c *sync.Cond
}

// NewCond returns a condition variable bound to m.
func NewCond(m *Mutex) *Cond { return &Cond{c: sync.NewCond(&m.mu)} }

// Wait blocks until Signal or Broadcast; the caller must hold the
// associated Mutex.
func (c *Cond) Wait() { c.c.Wait() }

// Signal wakes one waiter.
func (c *Cond) Signal() { c.c.Signal() }

// Broadcast wakes all waiters.
func (c *Cond) Broadcast() { c.c.Broadcast() }

func (*Cond) neverShared() {}

var (
	_ NeverShared = (*Mutex)(nil)
	_ NeverShared = (*Cond)(nil)
)
