package isolation

import (
	"errors"
	"testing"
)

func newEnforcer(t testing.TB) *Enforcer {
	t.Helper()
	return NewEnforcer(Analyze(NewJDKCatalog()))
}

// pickTarget finds the first target with the given decision and kind.
func pickTarget(t testing.TB, e *Enforcer, kind TargetKind, d Decision) int {
	t.Helper()
	for i := range e.analysis.Catalog.Targets {
		if e.analysis.Catalog.Targets[i].Kind == kind && e.analysis.Decisions[i] == d {
			return i
		}
	}
	t.Fatalf("no target with kind %v decision %v", kind, d)
	return -1
}

func TestStaticFieldReplicationClosesChannel(t *testing.T) {
	e := newEnforcer(t)
	id := findTarget(t, e.analysis.Catalog, "java.lang.Thread.threadSeqNum")
	alice := e.NewIsolate("alice")
	bob := e.NewIsolate("bob")

	// Alice writes a covert value into the "shared" static.
	if err := e.SetStatic(alice, id, int64(0xC0DE)); err != nil {
		t.Fatalf("SetStatic: %v", err)
	}
	// Bob must read the pristine default, not Alice's value.
	got, err := e.GetStatic(bob, id)
	if err != nil {
		t.Fatalf("GetStatic: %v", err)
	}
	if got == any(int64(0xC0DE)) {
		t.Fatal("storage channel: bob observed alice's write")
	}
	// Alice reads back her own replica.
	mine, err := e.GetStatic(alice, id)
	if err != nil {
		t.Fatal(err)
	}
	if mine != any(int64(0xC0DE)) {
		t.Fatalf("alice lost her replica: %v", mine)
	}
}

func TestReplicatedFieldCopyOnRead(t *testing.T) {
	e := newEnforcer(t)
	id := pickTarget(t, e, StaticField, InterceptReplicate)
	iso := e.NewIsolate("u")
	v1, err := e.GetStatic(iso, id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.GetStatic(iso, id); err != nil {
		t.Fatal(err)
	}
	st := iso.Stats()
	if st.FieldCopies != 1 {
		t.Fatalf("FieldCopies = %d, want exactly 1 (on-demand copy)", st.FieldCopies)
	}
	if st.FieldReads != 2 {
		t.Fatalf("FieldReads = %d, want 2", st.FieldReads)
	}
	if v1 != e.defaults[id] {
		t.Fatal("replica value differs from default")
	}
}

func TestWhitelistedConstantsSharedAndWriteProtected(t *testing.T) {
	e := newEnforcer(t)
	id := pickTarget(t, e, StaticField, WhitelistedHeuristic)
	iso := e.NewIsolate("u")
	if _, err := e.GetStatic(iso, id); err != nil {
		t.Fatalf("reading white-listed constant: %v", err)
	}
	if err := e.SetStatic(iso, id, "evil"); !errors.Is(err, ErrSecurity) {
		t.Fatalf("writing white-listed constant = %v, want ErrSecurity", err)
	}
}

func TestNativeGuardBlocksOutsideAPI(t *testing.T) {
	e := newEnforcer(t)
	id := pickTarget(t, e, NativeMethod, InterceptGuard)
	iso := e.NewIsolate("u")

	// Call 'C' in Figure 3: direct unit access raises a security
	// exception.
	if err := e.InvokeNative(iso, id); !errors.Is(err, ErrSecurity) {
		t.Fatalf("guarded native outside API = %v, want ErrSecurity", err)
	}
	// Call 'D': the same target on a DEFCon API path is trusted.
	done := e.EnterAPI(iso)
	if err := e.InvokeNative(iso, id); err != nil {
		t.Fatalf("guarded native inside API = %v", err)
	}
	done()
	if err := e.InvokeNative(iso, id); !errors.Is(err, ErrSecurity) {
		t.Fatal("guard did not re-engage after API exit")
	}
	st := iso.Stats()
	if st.BlockedNatives != 2 || st.NativeCalls != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestManuallyWhitelistedNativeAlwaysAllowed(t *testing.T) {
	e := newEnforcer(t)
	id := findTarget(t, e.analysis.Catalog, "java.lang.Object.hashCode")
	iso := e.NewIsolate("u")
	if err := e.InvokeNative(iso, id); err != nil {
		t.Fatalf("hashCode blocked: %v", err)
	}
}

func TestEliminatedAndDEFConOnlyInaccessible(t *testing.T) {
	e := newEnforcer(t)
	iso := e.NewIsolate("u")

	elim := pickTarget(t, e, StaticField, Eliminated)
	if _, err := e.GetStatic(iso, elim); !errors.Is(err, ErrNotLoaded) {
		t.Fatalf("eliminated field = %v, want ErrNotLoaded", err)
	}

	dcOnly := pickTarget(t, e, StaticField, DEFConOnly)
	if _, err := e.GetStatic(iso, dcOnly); !errors.Is(err, ErrNotLoaded) {
		t.Fatalf("DEFCon-only field from unit = %v, want ErrNotLoaded", err)
	}
	// The same target is readable on a DEFCon API path.
	done := e.EnterAPI(iso)
	if _, err := e.GetStatic(iso, dcOnly); err != nil {
		t.Fatalf("DEFCon-only field inside API = %v", err)
	}
	done()
}

func TestKindMismatchRejected(t *testing.T) {
	e := newEnforcer(t)
	iso := e.NewIsolate("u")
	fid := pickTarget(t, e, StaticField, InterceptReplicate)
	nid := pickTarget(t, e, NativeMethod, InterceptGuard)
	if err := e.InvokeNative(iso, fid); !errors.Is(err, ErrSecurity) {
		t.Fatal("invoking a field as native succeeded")
	}
	if _, err := e.GetStatic(iso, nid); !errors.Is(err, ErrSecurity) {
		t.Fatal("reading a native as field succeeded")
	}
	if _, err := e.GetStatic(iso, -1); !errors.Is(err, ErrNotLoaded) {
		t.Fatal("unknown target id accepted")
	}
}

func TestSyncGuard(t *testing.T) {
	e := newEnforcer(t)
	iso := e.NewIsolate("u")

	// NeverShared types may be locked.
	var m Mutex
	if err := e.SyncOn(iso, &m); err != nil {
		t.Fatalf("SyncOn(Mutex) = %v", err)
	}
	if err := e.SyncOn(iso, NewCond(&m)); err != nil {
		t.Fatalf("SyncOn(Cond) = %v", err)
	}

	// Shared types (strings — the interning channel — and anything
	// exchangeable through events) must be refused.
	if err := e.SyncOn(iso, "interned"); !errors.Is(err, ErrSecurity) {
		t.Fatalf("SyncOn(string) = %v, want ErrSecurity", err)
	}
	if err := e.SyncOn(iso, struct{}{}); !errors.Is(err, ErrSecurity) {
		t.Fatal("SyncOn(shared struct) allowed")
	}
	if got := iso.Stats().BlockedSyncs; got != 2 {
		t.Fatalf("BlockedSyncs = %d, want 2", got)
	}
}

func TestMutexIsUsable(t *testing.T) {
	var m Mutex
	done := make(chan struct{})
	m.Lock()
	go func() {
		m.Lock()
		m.Unlock()
		close(done)
	}()
	m.Unlock()
	<-done
}

func TestAPITaxPerformsRealWork(t *testing.T) {
	e := newEnforcer(t)
	if e.HotPathLen() == 0 {
		t.Fatal("empty hot path")
	}
	iso := e.NewIsolate("u")
	e.APITax(iso)
	st := iso.Stats()
	if st.APICalls != 1 {
		t.Fatalf("APICalls = %d", st.APICalls)
	}
	if st.FieldReads == 0 || st.NativeCalls == 0 {
		t.Fatalf("hot path did no work: %+v", st)
	}
	if st.BlockedNatives != 0 {
		t.Fatalf("hot path blocked natives inside API: %+v", st)
	}
	// Second call reuses replicas: copies must not grow.
	copies := st.FieldCopies
	e.APITax(iso)
	if got := iso.Stats().FieldCopies; got != copies {
		t.Fatalf("APITax recopied fields: %d -> %d", copies, got)
	}
}

// TestWarmColdEquivalence checks the memoized warm pass against the
// cold path: after warming, every hot-path target must yield the same
// replica values through GetStatic as a freshly cold-taxed isolate,
// and blocked targets must fail identically on both.
func TestWarmColdEquivalence(t *testing.T) {
	e := newEnforcer(t)
	warm := e.NewIsolate("warm")
	for i := 0; i < 4; i++ { // one cold + three warm traversals
		e.APITax(warm)
	}
	cold := e.NewIsolate("cold")
	e.APITax(cold)

	for _, id := range e.HotPathIDs() {
		switch e.analysis.Catalog.Targets[id].Kind {
		case StaticField:
			wv, werr := e.GetStatic(warm, id)
			cv, cerr := e.GetStatic(cold, id)
			if (werr == nil) != (cerr == nil) {
				t.Fatalf("target %d: warm err %v, cold err %v", id, werr, cerr)
			}
			if wv != cv {
				t.Fatalf("target %d: warm value %v, cold value %v", id, wv, cv)
			}
		case NativeMethod:
			// Outside the API region the guard must re-engage on both:
			// warmth memoizes the traversal, not the guard verdicts of
			// direct unit access.
			werr := e.InvokeNative(warm, id)
			cerr := e.InvokeNative(cold, id)
			if !errors.Is(werr, ErrSecurity) || !errors.Is(cerr, ErrSecurity) {
				t.Fatalf("target %d: guarded native outside API: warm %v, cold %v", id, werr, cerr)
			}
		}
	}

	// Writes land in replicas on both paths.
	fid := pickTarget(t, e, StaticField, InterceptReplicate)
	if err := e.SetStatic(warm, fid, "mine"); err != nil {
		t.Fatal(err)
	}
	if v, _ := e.GetStatic(warm, fid); v != any("mine") {
		t.Fatalf("warm isolate lost its write: %v", v)
	}
	if v, _ := e.GetStatic(cold, fid); v == any("mine") {
		t.Fatal("write leaked across isolates")
	}
}

// TestAPITaxWarmAccounting pins the coalesced warm counters: warm
// traversals stay visible in APICalls and expand into per-interceptor
// counts, while FieldCopies is charged exactly once.
func TestAPITaxWarmAccounting(t *testing.T) {
	e := newEnforcer(t)
	iso := e.NewIsolate("u")
	e.APITax(iso) // cold
	cold := iso.Stats()
	e.APITax(iso) // warm
	e.APITax(iso) // warm
	st := iso.Stats()
	if st.APICalls != 3 {
		t.Fatalf("APICalls = %d, want 3", st.APICalls)
	}
	if st.FieldCopies != cold.FieldCopies {
		t.Fatalf("warm pass copied fields: %d -> %d", cold.FieldCopies, st.FieldCopies)
	}
	if want := 3 * cold.FieldReads; st.FieldReads != want {
		t.Fatalf("FieldReads = %d, want %d (3 traversals)", st.FieldReads, want)
	}
	if want := 3 * cold.NativeCalls; st.NativeCalls != want {
		t.Fatalf("NativeCalls = %d, want %d (3 traversals)", st.NativeCalls, want)
	}
}

// TestAPITaxNBatch checks the batched tax entry: n API calls are
// metered through at most two traversals (one cold + one warm sweep),
// with copies still charged once.
func TestAPITaxNBatch(t *testing.T) {
	e := newEnforcer(t)
	// Reference: one cold traversal's worth of interceptor counts.
	ref := e.NewIsolate("ref")
	e.APITax(ref)
	perTraversal := ref.Stats().FieldReads
	if perTraversal == 0 {
		t.Fatal("cold traversal read no fields")
	}

	iso := e.NewIsolate("u")
	e.APITaxN(iso, 64)
	st := iso.Stats()
	if st.APICalls != 64 {
		t.Fatalf("APICalls = %d, want 64", st.APICalls)
	}
	// Exactly one cold traversal plus one amortised warm sweep — not
	// 64 traversals.
	if st.FieldReads != 2*perTraversal {
		t.Fatalf("FieldReads = %d, want %d (two traversals)", st.FieldReads, 2*perTraversal)
	}
	copies := st.FieldCopies
	e.APITaxN(iso, 100)
	st = iso.Stats()
	if st.APICalls != 164 {
		t.Fatalf("APICalls = %d, want 164", st.APICalls)
	}
	if st.FieldCopies != copies {
		t.Fatalf("batched warm pass recopied fields: %d -> %d", copies, st.FieldCopies)
	}
	if e.APITaxN(iso, 0); iso.Stats().APICalls != 164 {
		t.Fatal("APITaxN(0) metered calls")
	}
}

// TestReplicaSlotAssignment checks the plan-time slot table: every
// intercepted static field gets a unique dense slot, nothing else gets
// one.
func TestReplicaSlotAssignment(t *testing.T) {
	a := Analyze(NewJDKCatalog())
	slotOf, n := a.ReplicaSlots()
	if len(slotOf) != len(a.Catalog.Targets) {
		t.Fatalf("slot table covers %d of %d targets", len(slotOf), len(a.Catalog.Targets))
	}
	seen := make(map[int32]int)
	for id, slot := range slotOf {
		intercepted := a.Catalog.Targets[id].Kind == StaticField && a.Decisions[id].Intercepted()
		if intercepted != (slot >= 0) {
			t.Fatalf("target %d: intercepted=%v but slot=%d", id, intercepted, slot)
		}
		if slot >= 0 {
			if slot >= int32(n) {
				t.Fatalf("slot %d out of range [0,%d)", slot, n)
			}
			if prev, dup := seen[slot]; dup {
				t.Fatalf("slot %d assigned to both %d and %d", slot, prev, id)
			}
			seen[slot] = id
		}
	}
	if len(seen) != n {
		t.Fatalf("assigned %d slots, table reports %d", len(seen), n)
	}
	e := NewEnforcer(a)
	if e.ReplicaSlotCount() != n {
		t.Fatalf("enforcer slot count %d, analysis %d", e.ReplicaSlotCount(), n)
	}
}

// TestConcurrentTaxAndFieldAccess hammers one isolate from several
// goroutines mixing APITax, APITaxN, GetStatic and SetStatic — the
// pooled managed-instance shape. Run under -race in CI; correctness
// checks: replica identity per isolate, copies counted once, API-call
// accounting exact.
func TestConcurrentTaxAndFieldAccess(t *testing.T) {
	e := newEnforcer(t)
	iso := e.NewIsolate("pooled")
	rid := pickTarget(t, e, StaticField, InterceptReplicate)
	did := pickTarget(t, e, StaticField, InterceptDeferredSet)

	const workers = 8
	const iters = 200
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0:
					e.APITax(iso)
				case 1:
					e.APITaxN(iso, 4)
				case 2:
					if _, err := e.GetStatic(iso, rid); err != nil {
						done <- err
						return
					}
					if err := e.SetStatic(iso, did, int64(w)); err != nil {
						done <- err
						return
					}
				case 3:
					if v, err := e.GetStatic(iso, did); err != nil {
						done <- err
						return
					} else if _, ok := v.(int64); !ok {
						done <- errors.New("torn deferred-set replica")
						return
					}
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	st := iso.Stats()
	// Each worker meters iters/4 single + iters/4 batched-by-4 calls.
	wantCalls := uint64(workers * (iters/4 + iters/4*4))
	if st.APICalls != wantCalls {
		t.Fatalf("APICalls = %d, want %d", st.APICalls, wantCalls)
	}
}

func TestIsolatesAreIndependentUnderConcurrency(t *testing.T) {
	e := newEnforcer(t)
	id := pickTarget(t, e, StaticField, InterceptReplicate)
	const n = 8
	done := make(chan error, n)
	for w := 0; w < n; w++ {
		go func(w int) {
			iso := e.NewIsolate("w")
			if err := e.SetStatic(iso, id, int64(w)); err != nil {
				done <- err
				return
			}
			v, err := e.GetStatic(iso, id)
			if err != nil {
				done <- err
				return
			}
			if v != any(int64(w)) {
				done <- errors.New("cross-isolate interference")
				return
			}
			done <- nil
		}(w)
	}
	for w := 0; w < n; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestHotPathIDsStable(t *testing.T) {
	a, b := newEnforcer(t), newEnforcer(t)
	x, y := a.HotPathIDs(), b.HotPathIDs()
	if len(x) != len(y) {
		t.Fatal("hot path length differs across constructions")
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("hot path not deterministic")
		}
	}
}
