package isolation

import (
	"errors"
	"testing"
)

func newEnforcer(t testing.TB) *Enforcer {
	t.Helper()
	return NewEnforcer(Analyze(NewJDKCatalog()))
}

// pickTarget finds the first target with the given decision and kind.
func pickTarget(t testing.TB, e *Enforcer, kind TargetKind, d Decision) int {
	t.Helper()
	for i := range e.analysis.Catalog.Targets {
		if e.analysis.Catalog.Targets[i].Kind == kind && e.analysis.Decisions[i] == d {
			return i
		}
	}
	t.Fatalf("no target with kind %v decision %v", kind, d)
	return -1
}

func TestStaticFieldReplicationClosesChannel(t *testing.T) {
	e := newEnforcer(t)
	id := findTarget(t, e.analysis.Catalog, "java.lang.Thread.threadSeqNum")
	alice := e.NewIsolate("alice")
	bob := e.NewIsolate("bob")

	// Alice writes a covert value into the "shared" static.
	if err := e.SetStatic(alice, id, int64(0xC0DE)); err != nil {
		t.Fatalf("SetStatic: %v", err)
	}
	// Bob must read the pristine default, not Alice's value.
	got, err := e.GetStatic(bob, id)
	if err != nil {
		t.Fatalf("GetStatic: %v", err)
	}
	if got == any(int64(0xC0DE)) {
		t.Fatal("storage channel: bob observed alice's write")
	}
	// Alice reads back her own replica.
	mine, err := e.GetStatic(alice, id)
	if err != nil {
		t.Fatal(err)
	}
	if mine != any(int64(0xC0DE)) {
		t.Fatalf("alice lost her replica: %v", mine)
	}
}

func TestReplicatedFieldCopyOnRead(t *testing.T) {
	e := newEnforcer(t)
	id := pickTarget(t, e, StaticField, InterceptReplicate)
	iso := e.NewIsolate("u")
	v1, err := e.GetStatic(iso, id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.GetStatic(iso, id); err != nil {
		t.Fatal(err)
	}
	st := iso.Stats()
	if st.FieldCopies != 1 {
		t.Fatalf("FieldCopies = %d, want exactly 1 (on-demand copy)", st.FieldCopies)
	}
	if st.FieldReads != 2 {
		t.Fatalf("FieldReads = %d, want 2", st.FieldReads)
	}
	if v1 != e.defaults[id] {
		t.Fatal("replica value differs from default")
	}
}

func TestWhitelistedConstantsSharedAndWriteProtected(t *testing.T) {
	e := newEnforcer(t)
	id := pickTarget(t, e, StaticField, WhitelistedHeuristic)
	iso := e.NewIsolate("u")
	if _, err := e.GetStatic(iso, id); err != nil {
		t.Fatalf("reading white-listed constant: %v", err)
	}
	if err := e.SetStatic(iso, id, "evil"); !errors.Is(err, ErrSecurity) {
		t.Fatalf("writing white-listed constant = %v, want ErrSecurity", err)
	}
}

func TestNativeGuardBlocksOutsideAPI(t *testing.T) {
	e := newEnforcer(t)
	id := pickTarget(t, e, NativeMethod, InterceptGuard)
	iso := e.NewIsolate("u")

	// Call 'C' in Figure 3: direct unit access raises a security
	// exception.
	if err := e.InvokeNative(iso, id); !errors.Is(err, ErrSecurity) {
		t.Fatalf("guarded native outside API = %v, want ErrSecurity", err)
	}
	// Call 'D': the same target on a DEFCon API path is trusted.
	done := e.EnterAPI(iso)
	if err := e.InvokeNative(iso, id); err != nil {
		t.Fatalf("guarded native inside API = %v", err)
	}
	done()
	if err := e.InvokeNative(iso, id); !errors.Is(err, ErrSecurity) {
		t.Fatal("guard did not re-engage after API exit")
	}
	st := iso.Stats()
	if st.BlockedNatives != 2 || st.NativeCalls != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestManuallyWhitelistedNativeAlwaysAllowed(t *testing.T) {
	e := newEnforcer(t)
	id := findTarget(t, e.analysis.Catalog, "java.lang.Object.hashCode")
	iso := e.NewIsolate("u")
	if err := e.InvokeNative(iso, id); err != nil {
		t.Fatalf("hashCode blocked: %v", err)
	}
}

func TestEliminatedAndDEFConOnlyInaccessible(t *testing.T) {
	e := newEnforcer(t)
	iso := e.NewIsolate("u")

	elim := pickTarget(t, e, StaticField, Eliminated)
	if _, err := e.GetStatic(iso, elim); !errors.Is(err, ErrNotLoaded) {
		t.Fatalf("eliminated field = %v, want ErrNotLoaded", err)
	}

	dcOnly := pickTarget(t, e, StaticField, DEFConOnly)
	if _, err := e.GetStatic(iso, dcOnly); !errors.Is(err, ErrNotLoaded) {
		t.Fatalf("DEFCon-only field from unit = %v, want ErrNotLoaded", err)
	}
	// The same target is readable on a DEFCon API path.
	done := e.EnterAPI(iso)
	if _, err := e.GetStatic(iso, dcOnly); err != nil {
		t.Fatalf("DEFCon-only field inside API = %v", err)
	}
	done()
}

func TestKindMismatchRejected(t *testing.T) {
	e := newEnforcer(t)
	iso := e.NewIsolate("u")
	fid := pickTarget(t, e, StaticField, InterceptReplicate)
	nid := pickTarget(t, e, NativeMethod, InterceptGuard)
	if err := e.InvokeNative(iso, fid); !errors.Is(err, ErrSecurity) {
		t.Fatal("invoking a field as native succeeded")
	}
	if _, err := e.GetStatic(iso, nid); !errors.Is(err, ErrSecurity) {
		t.Fatal("reading a native as field succeeded")
	}
	if _, err := e.GetStatic(iso, -1); !errors.Is(err, ErrNotLoaded) {
		t.Fatal("unknown target id accepted")
	}
}

func TestSyncGuard(t *testing.T) {
	e := newEnforcer(t)
	iso := e.NewIsolate("u")

	// NeverShared types may be locked.
	var m Mutex
	if err := e.SyncOn(iso, &m); err != nil {
		t.Fatalf("SyncOn(Mutex) = %v", err)
	}
	if err := e.SyncOn(iso, NewCond(&m)); err != nil {
		t.Fatalf("SyncOn(Cond) = %v", err)
	}

	// Shared types (strings — the interning channel — and anything
	// exchangeable through events) must be refused.
	if err := e.SyncOn(iso, "interned"); !errors.Is(err, ErrSecurity) {
		t.Fatalf("SyncOn(string) = %v, want ErrSecurity", err)
	}
	if err := e.SyncOn(iso, struct{}{}); !errors.Is(err, ErrSecurity) {
		t.Fatal("SyncOn(shared struct) allowed")
	}
	if got := iso.Stats().BlockedSyncs; got != 2 {
		t.Fatalf("BlockedSyncs = %d, want 2", got)
	}
}

func TestMutexIsUsable(t *testing.T) {
	var m Mutex
	done := make(chan struct{})
	m.Lock()
	go func() {
		m.Lock()
		m.Unlock()
		close(done)
	}()
	m.Unlock()
	<-done
}

func TestAPITaxPerformsRealWork(t *testing.T) {
	e := newEnforcer(t)
	if e.HotPathLen() == 0 {
		t.Fatal("empty hot path")
	}
	iso := e.NewIsolate("u")
	e.APITax(iso)
	st := iso.Stats()
	if st.APICalls != 1 {
		t.Fatalf("APICalls = %d", st.APICalls)
	}
	if st.FieldReads == 0 || st.NativeCalls == 0 {
		t.Fatalf("hot path did no work: %+v", st)
	}
	if st.BlockedNatives != 0 {
		t.Fatalf("hot path blocked natives inside API: %+v", st)
	}
	// Second call reuses replicas: copies must not grow.
	copies := st.FieldCopies
	e.APITax(iso)
	if got := iso.Stats().FieldCopies; got != copies {
		t.Fatalf("APITax recopied fields: %d -> %d", copies, got)
	}
}

func TestIsolatesAreIndependentUnderConcurrency(t *testing.T) {
	e := newEnforcer(t)
	id := pickTarget(t, e, StaticField, InterceptReplicate)
	const n = 8
	done := make(chan error, n)
	for w := 0; w < n; w++ {
		go func(w int) {
			iso := e.NewIsolate("w")
			if err := e.SetStatic(iso, id, int64(w)); err != nil {
				done <- err
				return
			}
			v, err := e.GetStatic(iso, id)
			if err != nil {
				done <- err
				return
			}
			if v != any(int64(w)) {
				done <- errors.New("cross-isolate interference")
				return
			}
			done <- nil
		}(w)
	}
	for w := 0; w < n; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestHotPathIDsStable(t *testing.T) {
	a, b := newEnforcer(t), newEnforcer(t)
	x, y := a.HotPathIDs(), b.HotPathIDs()
	if len(x) != len(y) {
		t.Fatal("hot path length differs across constructions")
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("hot path not deterministic")
		}
	}
}
