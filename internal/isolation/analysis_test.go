package isolation

import (
	"strings"
	"testing"
)

// sharedAnalysis caches the catalog + analysis across tests; both are
// deterministic and read-only after construction (except ApplyProfile,
// which tests run on their own copies).
func sharedAnalysis(t testing.TB) *Analysis {
	t.Helper()
	return Analyze(NewJDKCatalog())
}

func TestCatalogScaleMatchesOpenJDK6(t *testing.T) {
	cat := NewJDKCatalog()
	counts := cat.CountByKind()
	// Paper §4: "about 4,000 static fields" and "more than 2,000 native
	// methods" in OpenJDK 6.
	if f := counts[StaticField]; f < 3600 || f > 4400 {
		t.Errorf("static fields = %d, want ≈4,000", f)
	}
	if n := counts[NativeMethod]; n < 1900 || n > 2300 {
		t.Errorf("native methods = %d, want ≈2,000", n)
	}
	if s := counts[SyncTarget]; s < 30 {
		t.Errorf("sync targets = %d, want ≥30", s)
	}
}

func TestCatalogContainsNamedTargets(t *testing.T) {
	cat := NewJDKCatalog()
	want := []string{
		"java.lang.Thread.threadSeqNum",
		"java.lang.Object.hashCode",
		"java.lang.Object.getClass",
		"java.lang.Double.longBitsToDouble",
		"java.lang.System.security",
		"java.lang.ClassLoader.loadClass",
		"java.lang.String.intern",
	}
	have := make(map[string]bool, len(cat.Targets))
	for i := range cat.Targets {
		have[cat.Targets[i].FullName()] = true
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("catalog missing named target %s", name)
		}
	}
}

func TestCatalogDeterministic(t *testing.T) {
	a, b := NewJDKCatalog(), NewJDKCatalog()
	if len(a.Targets) != len(b.Targets) {
		t.Fatal("catalog size differs between constructions")
	}
	for i := range a.Targets {
		if a.Targets[i].FullName() != b.Targets[i].FullName() ||
			a.Targets[i].Kind != b.Targets[i].Kind {
			t.Fatalf("target %d differs between constructions", i)
		}
	}
}

func TestUnsafeIsExactlyPaperSized(t *testing.T) {
	cat := NewJDKCatalog()
	var fields, natives int
	for i := range cat.Targets {
		if cat.Targets[i].Class == "sun.misc.Unsafe" {
			switch cat.Targets[i].Kind {
			case StaticField:
				fields++
			case NativeMethod:
				natives++
			}
			if !cat.Targets[i].SecurityGuarded {
				t.Fatalf("Unsafe member %s not security-guarded", cat.Targets[i].Member)
			}
		}
	}
	if fields != 66 || natives != 20 {
		t.Fatalf("Unsafe = %d fields + %d natives, want 66 + 20", fields, natives)
	}
}

func TestPipelineCountsMatchPaper(t *testing.T) {
	r := sharedAnalysis(t).BuildReport()

	// Dependency trim: "more than 2,000 used targets".
	if used := r.Used.Total(); used < 2000 || used > 2700 {
		t.Errorf("used targets = %d, want >2,000 (and of the right order)", used)
	}
	// The GUI/ORB mass must be eliminated.
	if r.Eliminated.Total() < 3000 {
		t.Errorf("eliminated = %d, want the bulk of the library", r.Eliminated.Total())
	}

	// Reachability: "Tunits still has 1,200 dangerous targets reachable
	// from java.lang — approximately 320 native methods and 900 static
	// fields".
	if tot := r.UnitReachable.Total(); tot < 1050 || tot > 1400 {
		t.Errorf("unit-reachable = %d, want ≈1,200", tot)
	}
	if n := r.UnitReachable.Natives; n < 260 || n > 390 {
		t.Errorf("unit-reachable natives = %d, want ≈320", n)
	}
	if f := r.UnitReachable.Fields; f < 750 || f > 1050 {
		t.Errorf("unit-reachable fields = %d, want ≈900", f)
	}

	// Heuristics: "reducing the number of dangerous targets to
	// approximately 500 static fields and 300 native methods".
	if f := r.AfterHeuristics.Fields; f < 380 || f > 620 {
		t.Errorf("after-heuristics fields = %d, want ≈500", f)
	}
	if n := r.AfterHeuristics.Natives; n < 240 || n > 360 {
		t.Errorf("after-heuristics natives = %d, want ≈300", n)
	}

	// Manual inspection: 27 static fields, 15 native methods, 10 sync
	// targets.
	if r.ManualWhitelisted.Fields != 27 || r.ManualWhitelisted.Natives != 15 ||
		r.ManualWhitelisted.Syncs != 10 {
		t.Errorf("manual whitelist = %+v, want 27/15/10", r.ManualWhitelisted)
	}

	// Everything dangerous and not white-listed is intercepted.
	wantIntercepted := r.AfterHeuristics.Total() - r.ManualWhitelisted.Total() - r.ProfiledWhitelisted.Total()
	if got := r.Intercepted.Total(); got != wantIntercepted {
		t.Errorf("intercepted = %d, want %d", got, wantIntercepted)
	}
}

func TestUnsafeWhitelistedByHeuristic(t *testing.T) {
	a := sharedAnalysis(t)
	for i := range a.Catalog.Targets {
		tgt := &a.Catalog.Targets[i]
		if tgt.Class == "sun.misc.Unsafe" {
			if d := a.Decisions[i]; d != WhitelistedHeuristic {
				t.Fatalf("Unsafe.%s decision = %v, want heuristic whitelist", tgt.Member, d)
			}
		}
	}
}

func TestThreadSeqNumIsReplicated(t *testing.T) {
	a := sharedAnalysis(t)
	id := findTarget(t, a.Catalog, "java.lang.Thread.threadSeqNum")
	// The canonical storage channel must end up intercepted with
	// per-isolate replication (deferred, since it is a primitive).
	if d := a.Decisions[id]; d != InterceptDeferredSet && d != InterceptReplicate {
		t.Fatalf("threadSeqNum decision = %v, want replication interceptor", d)
	}
}

func TestNamedManualTargetsWhitelisted(t *testing.T) {
	a := sharedAnalysis(t)
	for _, name := range []string{
		"java.lang.Object.hashCode",
		"java.lang.Object.getClass",
		"java.lang.Double.longBitsToDouble",
		"java.lang.System.security",
		"java.lang.ClassLoader.loadClass",
	} {
		id := findTarget(t, a.Catalog, name)
		if d := a.Decisions[id]; d != WhitelistedManual {
			t.Errorf("%s decision = %v, want manual whitelist", name, d)
		}
	}
}

func TestGUIPackagesEliminated(t *testing.T) {
	a := sharedAnalysis(t)
	for i := range a.Catalog.Targets {
		tgt := &a.Catalog.Targets[i]
		switch tgt.Package {
		case "java.awt", "javax.swing", "java.rmi", "org.omg":
			if a.Decisions[i] != Eliminated {
				t.Fatalf("%s decision = %v, want eliminated", tgt.FullName(), a.Decisions[i])
			}
		}
	}
}

func TestDEFConOnlyTargetsExist(t *testing.T) {
	r := sharedAnalysis(t).BuildReport()
	if r.DEFConOnly.Total() == 0 {
		t.Fatal("no DEFCon-only targets; the class-loader white-list partition is vacuous")
	}
}

func TestApplyProfileMovesHotTargets(t *testing.T) {
	a := Analyze(NewJDKCatalog())
	hot := a.InterceptedIDs()
	if len(hot) < 20 {
		t.Fatal("too few intercepted targets to profile")
	}
	// Paper: "15 additional frequently-accessed targets (6 static
	// fields and 9 native methods)".
	moved := a.ApplyProfile(hot, 6, 9)
	if moved != 15 {
		t.Fatalf("ApplyProfile moved %d, want 15", moved)
	}
	r := a.BuildReport()
	if r.ProfiledWhitelisted.Fields != 6 || r.ProfiledWhitelisted.Natives != 9 {
		t.Fatalf("profiled whitelist = %+v, want 6 fields + 9 natives", r.ProfiledWhitelisted)
	}
	// Idempotent on a second application of the same profile.
	if again := a.ApplyProfile(hot, 0, 0); again != 0 {
		t.Fatalf("second ApplyProfile moved %d, want 0", again)
	}
}

func TestReportRendering(t *testing.T) {
	r := sharedAnalysis(t).BuildReport()
	s := r.String()
	for _, want := range []string{"unit-reachable", "intercepted", "static fields"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestDecisionAccessorsAndStrings(t *testing.T) {
	a := sharedAnalysis(t)
	if a.Decision(-1) != Undecided || a.Decision(1<<30) != Undecided {
		t.Error("out-of-range Decision not Undecided")
	}
	for d := Undecided; d <= InterceptGuard; d++ {
		if d.String() == "" {
			t.Errorf("Decision(%d) has empty String", d)
		}
	}
	for _, k := range []TargetKind{StaticField, NativeMethod, SyncTarget} {
		if k.String() == "" {
			t.Error("empty TargetKind string")
		}
	}
	for _, u := range []UserSet{UsedByNone, UsedByDEFCon, UsedByUnits} {
		if u.String() == "" {
			t.Error("empty UserSet string")
		}
	}
}

// findTarget locates a target by full name.
func findTarget(t testing.TB, cat *Catalog, name string) int {
	t.Helper()
	for i := range cat.Targets {
		if cat.Targets[i].FullName() == name {
			return i
		}
	}
	t.Fatalf("target %s not in catalog", name)
	return -1
}
