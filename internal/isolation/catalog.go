package isolation

import (
	"fmt"
	"sort"
)

// Catalog is a synthetic but faithfully proportioned model of the
// OpenJDK 6 class library: ~4,000 static fields and ~2,000 native
// methods spread over the real package structure, plus the specific
// named targets the paper discusses (Thread.threadSeqNum,
// Object.hashCode, System.security, ClassLoader.loadClass, ...).
//
// The catalog is deterministic: the same construction always yields the
// same classes, members, attributes and reference edges, so analysis
// results are reproducible without tuning.
type Catalog struct {
	Targets []Target
	Classes map[string]*Class

	classOrder []string // insertion order, for deterministic iteration

	// UnitWhitelist holds the classes units may load through the custom
	// class loader (§4.2 "Static dependency analysis"): java.lang and
	// java.util, the packages non-malicious units actually need.
	UnitWhitelist map[string]bool

	// DEFConRoots holds the classes referenced by the trusted DEFCon
	// implementation.
	DEFConRoots map[string]bool
}

// class returns the named class, creating it on first use.
func (c *Catalog) class(pkg, name string) *Class {
	fq := pkg + "." + name
	if cl, ok := c.Classes[fq]; ok {
		return cl
	}
	cl := &Class{Name: fq, Package: pkg}
	c.Classes[fq] = cl
	c.classOrder = append(c.classOrder, fq)
	return cl
}

// addTarget declares a member target on a class and returns its ID.
func (c *Catalog) addTarget(cl *Class, kind TargetKind, member string, attrs FieldAttrs, guarded bool) int {
	id := len(c.Targets)
	c.Targets = append(c.Targets, Target{
		ID:              id,
		Kind:            kind,
		Class:           cl.Name,
		Member:          member,
		Package:         cl.Package,
		SecurityGuarded: guarded,
		Field:           attrs,
	})
	cl.Members = append(cl.Members, id)
	return id
}

// ref adds a directed reference edge between classes.
func (c *Catalog) ref(from *Class, to string) { from.Refs = append(from.Refs, to) }

// subtype records that sub may be dynamically dispatched into when base
// is used.
func (c *Catalog) subtype(base *Class, sub string) { base.Subtypes = append(base.Subtypes, sub) }

// ClassNames returns all class names in deterministic order.
func (c *Catalog) ClassNames() []string {
	out := make([]string, len(c.classOrder))
	copy(out, c.classOrder)
	return out
}

// CountByKind tallies targets of each kind over the whole catalog.
func (c *Catalog) CountByKind() map[TargetKind]int {
	out := make(map[TargetKind]int)
	for i := range c.Targets {
		out[c.Targets[i].Kind]++
	}
	return out
}

// pkgSpec drives the bulk generation of one package.
type pkgSpec struct {
	name    string
	classes int
	fields  int
	natives int
	syncs   int
}

// NewJDKCatalog builds the synthetic OpenJDK 6 model.
func NewJDKCatalog() *Catalog {
	c := &Catalog{
		Classes:       make(map[string]*Class),
		UnitWhitelist: make(map[string]bool),
		DEFConRoots:   make(map[string]bool),
	}

	c.buildJavaLangCore()

	// Bulk package populations, proportioned after OpenJDK 6. The
	// GUI/ORB packages carry roughly two thirds of all targets and are
	// referenced by neither DEFCon nor units — exactly the mass the
	// dependency trim eliminates.
	specs := []pkgSpec{
		{"java.lang", 38, 280, 100, 6}, // on top of the named core classes
		{"java.lang.reflect", 12, 50, 80, 2},
		{"java.util", 70, 340, 30, 8},
		{"java.io", 55, 160, 140, 6},
		{"java.net", 35, 140, 90, 4},
		{"java.security", 25, 90, 35, 2},
		{"java.text", 20, 110, 10, 2},
		{"java.math", 8, 40, 15, 0},
		{"sun.misc", 11, 60, 190, 2}, // Unsafe is built separately
		{"java.awt", 140, 1000, 420, 10},
		{"javax.swing", 170, 1250, 180, 12},
		{"java.rmi", 30, 200, 250, 4},
		{"org.omg", 30, 260, 350, 4},
	}
	for _, s := range specs {
		c.buildPackage(s)
	}
	c.buildUnsafe()
	c.wireReferences()
	c.markRoots()
	return c
}

// buildJavaLangCore creates the named java.lang classes whose members
// the paper calls out explicitly.
func (c *Catalog) buildJavaLangCore() {
	object := c.class("java.lang", "Object")
	c.addTarget(object, NativeMethod, "hashCode", FieldAttrs{}, false)
	c.addTarget(object, NativeMethod, "getClass", FieldAttrs{}, false)
	c.addTarget(object, NativeMethod, "clone", FieldAttrs{}, false)
	c.addTarget(object, NativeMethod, "wait", FieldAttrs{}, false)
	c.addTarget(object, NativeMethod, "notify", FieldAttrs{}, false)
	c.addTarget(object, SyncTarget, "monitor", FieldAttrs{}, false)

	str := c.class("java.lang", "String")
	c.addTarget(str, NativeMethod, "intern", FieldAttrs{}, false)
	c.addTarget(str, StaticField, "CASE_INSENSITIVE_ORDER",
		FieldAttrs{Final: true, ImmutableType: true}, false)
	c.addTarget(str, SyncTarget, "internLock", FieldAttrs{}, false)

	thread := c.class("java.lang", "Thread")
	// The paper's canonical storage channel: "a static integer
	// Thread.threadSeqNum identifies threads, which can be altered to
	// act as a channel between two classes".
	c.addTarget(thread, StaticField, "threadSeqNum", FieldAttrs{Primitive: true}, false)
	c.addTarget(thread, NativeMethod, "currentThread", FieldAttrs{}, false)
	c.addTarget(thread, NativeMethod, "sleep", FieldAttrs{}, false)

	system := c.class("java.lang", "System")
	// System.security is mutable global state that the heuristics cannot
	// prove safe; the paper white-lists it manually ("the reference to
	// the security manager is protected from modification by units").
	c.addTarget(system, StaticField, "security", FieldAttrs{}, false)
	c.addTarget(system, StaticField, "out", FieldAttrs{Final: true}, false)
	c.addTarget(system, NativeMethod, "nanoTime", FieldAttrs{}, false)
	c.addTarget(system, NativeMethod, "arraycopy", FieldAttrs{}, false)
	c.addTarget(system, NativeMethod, "identityHashCode", FieldAttrs{}, false)

	dbl := c.class("java.lang", "Double")
	c.addTarget(dbl, NativeMethod, "longBitsToDouble", FieldAttrs{}, false)
	c.addTarget(dbl, NativeMethod, "doubleToRawLongBits", FieldAttrs{}, false)
	c.addTarget(dbl, StaticField, "TYPE", FieldAttrs{Final: true, ImmutableType: true}, false)

	cls := c.class("java.lang", "Class")
	c.addTarget(cls, NativeMethod, "getName", FieldAttrs{}, false)
	c.addTarget(cls, NativeMethod, "forName", FieldAttrs{}, false)
	c.addTarget(cls, SyncTarget, "classLock", FieldAttrs{}, false)

	loader := c.class("java.lang", "ClassLoader")
	// "Classloader.loadClass() ... synchronised. However, both are
	// types that are never shared" — one of the manually transformed
	// NeverShared sync targets.
	c.addTarget(loader, SyncTarget, "loadClass", FieldAttrs{}, false)
	c.addTarget(loader, StaticField, "scl", FieldAttrs{Private: true, WriteOnce: true}, false)

	sb := c.class("java.lang", "StringBuffer")
	c.addTarget(sb, SyncTarget, "append", FieldAttrs{}, false)
	c.addTarget(sb, SyncTarget, "toStringLock", FieldAttrs{}, false)
}

// buildUnsafe creates sun.misc.Unsafe with the member counts the paper
// reports white-listing wholesale: "the 66 static fields and 20 native
// methods from the Unsafe class ... guarded by the Java Security
// Framework".
func (c *Catalog) buildUnsafe() {
	u := c.class("sun.misc", "Unsafe")
	for i := 0; i < 66; i++ {
		c.addTarget(u, StaticField, fmt.Sprintf("OFFSET_%02d", i),
			FieldAttrs{Final: true, Primitive: true}, true)
	}
	for i := 0; i < 20; i++ {
		c.addTarget(u, NativeMethod, fmt.Sprintf("raw%02d", i), FieldAttrs{}, true)
	}
}

// buildPackage bulk-generates a package's classes and members with
// deterministic attribute assignment: every 3rd field is a final
// immutable constant, every 12th is private write-once, every 4th is
// primitive-typed. These ratios land the heuristic white-listing yields
// in the ranges §4.2 reports.
func (c *Catalog) buildPackage(s pkgSpec) {
	classes := make([]*Class, s.classes)
	for i := range classes {
		classes[i] = c.class(s.name, fmt.Sprintf("C%03d", i))
	}
	for i := 0; i < s.fields; i++ {
		cl := classes[i%len(classes)]
		attrs := FieldAttrs{
			Final:         i%3 == 0,
			ImmutableType: i%3 == 0,
			Private:       i%12 == 1,
			WriteOnce:     i%12 == 1,
			Primitive:     i%4 == 0,
		}
		c.addTarget(cl, StaticField, fmt.Sprintf("f%03d", i), attrs, false)
	}
	for i := 0; i < s.natives; i++ {
		cl := classes[i%len(classes)]
		c.addTarget(cl, NativeMethod, fmt.Sprintf("n%03d", i), FieldAttrs{}, false)
	}
	for i := 0; i < s.syncs; i++ {
		cl := classes[i%len(classes)]
		c.addTarget(cl, SyncTarget, fmt.Sprintf("lock%02d", i), FieldAttrs{}, false)
	}
	// Intra-package reference chains in blocks of six classes: classes
	// within a block reference each other, blocks are independent.
	// Reaching one class therefore pulls in its block, not the whole
	// package — packages are only partially exposed to units, exactly
	// what the paper's reachability stage uncovers.
	for i := 1; i < len(classes); i++ {
		if i%6 != 0 {
			c.ref(classes[i-1], classes[i].Name)
		}
	}
	// Dynamic-dispatch fan: class 0 is the package's abstract base;
	// nearby classes are compatible subtypes that a base-typed call may
	// execute. The fan is bounded to the first three blocks, mirroring
	// how implementation spread (not the entire package) becomes
	// reachable through dispatch.
	for i := 5; i < len(classes) && i < 18; i += 5 {
		c.subtype(classes[0], classes[i].Name)
	}
}

// wireReferences adds the cross-package edges that shape reachability:
// unit-visible java.lang/java.util code pulls in slices of java.io,
// java.security, java.lang.reflect and sun.misc.Unsafe, exactly the
// transitive exposure the paper's reachability analysis hunts down.
func (c *Catalog) wireReferences() {
	object := c.Classes["java.lang.Object"]
	system := c.Classes["java.lang.System"]
	cls := c.Classes["java.lang.Class"]
	loader := c.Classes["java.lang.ClassLoader"]

	// Object and String reach Unsafe (intern tables, field offsets).
	c.ref(object, "sun.misc.Unsafe")
	c.ref(c.Classes["java.lang.String"], "sun.misc.Unsafe")

	// System reaches the security manager and console I/O: half of
	// java.security, a third of java.io.
	for i := 0; i < 12; i++ {
		c.ref(system, fmt.Sprintf("java.security.C%03d", i))
	}
	for i := 0; i < 18; i++ {
		c.ref(system, fmt.Sprintf("java.io.C%03d", i))
	}
	// Class/ClassLoader reach a quarter of java.lang.reflect.
	for i := 0; i < 3; i++ {
		c.ref(cls, fmt.Sprintf("java.lang.reflect.C%03d", i))
		c.ref(loader, fmt.Sprintf("java.lang.reflect.C%03d", i))
	}
	// The named core classes anchor the generated java.lang chain, and
	// all generated java.lang classes implicitly reference Object.
	c.ref(object, "java.lang.C000")
	for i := 0; i < 38; i++ {
		c.ref(c.Classes[fmt.Sprintf("java.lang.C%03d", i)], "java.lang.Object")
	}
	// java.util references java.lang and (for Arrays/Collections
	// internals) Unsafe.
	c.ref(c.Classes["java.util.C000"], "java.lang.Object")
	c.ref(c.Classes["java.util.C001"], "sun.misc.Unsafe")

	// DEFCon-side wiring: networking and text handling hang off a
	// deep java.io class that unit code never reaches, so these
	// packages stay DEFCon-only.
	c.ref(c.Classes["java.io.C030"], "java.net.C000")
	c.ref(c.Classes["java.net.C000"], "java.text.C000")
	c.ref(c.Classes["java.text.C000"], "java.math.C000")
}

// markRoots assigns the unit class-loader white-list (java.lang +
// java.util) and the DEFCon implementation roots (all non-GUI
// packages).
func (c *Catalog) markRoots() {
	for name, cl := range c.Classes {
		switch cl.Package {
		case "java.lang", "java.util":
			c.UnitWhitelist[name] = true
			c.DEFConRoots[name] = true
		case "java.io", "java.net", "java.security", "java.text",
			"java.math", "sun.misc", "java.lang.reflect":
			c.DEFConRoots[name] = true
		}
	}
}

// sortedKeys returns map keys in sorted order, for deterministic walks.
func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
