package isolation

import (
	"sync"
	"testing"
)

// Shared enforcer for benchmarks: the catalog analysis is identical
// across runs and must stay out of the measured region.
var (
	benchOnce sync.Once
	benchEnf  *Enforcer
)

func benchEnforcer() *Enforcer {
	benchOnce.Do(func() {
		benchEnf = NewEnforcer(Analyze(NewJDKCatalog()))
	})
	return benchEnf
}

// BenchmarkAPITaxCold measures the first interceptor traversal of a
// fresh isolate: slot-array allocation plus the full cold pass that
// copies every replicated hot-path field. This is the per-unit-instance
// setup cost of the §4 weaving.
func BenchmarkAPITaxCold(b *testing.B) {
	e := benchEnforcer()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iso := e.NewIsolate("bench")
		e.APITax(iso)
	}
}

// BenchmarkAPITaxWarm measures the memoized steady-state traversal —
// the per-API-call cost every Table 1 call pays in the
// labels+freeze+isolation mode. The acceptance target is zero
// allocations, zero mutex acquisitions, zero map operations and at
// most two atomic adds per traversal.
func BenchmarkAPITaxWarm(b *testing.B) {
	e := benchEnforcer()
	iso := e.NewIsolate("bench")
	e.APITax(iso) // prime: cold pass fills the replica slots
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.APITax(iso)
	}
}

// BenchmarkAPITaxWarmBatch measures the batched entry: 64 API calls
// metered through one warm traversal, the shape PublishBatch and
// GetEvents produce.
func BenchmarkAPITaxWarmBatch(b *testing.B) {
	const n = 64
	e := benchEnforcer()
	iso := e.NewIsolate("bench")
	e.APITax(iso)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.APITaxN(iso, n)
	}
	b.ReportMetric(float64(n), "calls/op")
}

// TestAPITaxWarmPathAllocFree pins the acceptance criterion in the
// test suite (benchmarks do not run in CI's blocking jobs): the warm
// traversal must not allocate.
func TestAPITaxWarmPathAllocFree(t *testing.T) {
	e := benchEnforcer()
	iso := e.NewIsolate("alloc-check")
	e.APITax(iso)
	allocs := testing.AllocsPerRun(100, func() { e.APITax(iso) })
	if allocs != 0 {
		t.Fatalf("warm APITax allocates %.1f per call, want 0", allocs)
	}
}
