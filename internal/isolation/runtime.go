package isolation

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrSecurity is the Go analogue of the security exception raised by a
// woven interceptor when unit code touches a blocked target (call 'C'
// in Figure 3).
var ErrSecurity = errors.New("isolation: security exception")

// ErrNotLoaded is returned when unit code names a target whose class
// was eliminated by the dependency trim or lies outside the unit
// class-loader white-list (call 'A' in Figure 3).
var ErrNotLoaded = errors.New("isolation: class not accessible to units")

// Stats are per-isolate interceptor accounting: how much runtime work
// the woven checks performed on behalf of this unit.
type Stats struct {
	FieldReads     uint64 // intercepted static-field get accesses
	FieldCopies    uint64 // on-demand per-isolate deep copies performed
	FieldWrites    uint64 // intercepted static-field set accesses
	NativeCalls    uint64 // guarded native invocations permitted
	BlockedNatives uint64 // native invocations denied (security exception)
	BlockedSyncs   uint64 // synchronisation attempts denied
	BlockedFields  uint64 // field accesses denied
	APICalls       uint64 // DEFCon API calls taxed by the weaving
}

// Isolate is one unit's isolation context: the per-isolate replicas of
// intercepted static fields plus interceptor accounting. An isolate is
// owned by a single unit instance; the field store is still locked
// because managed-subscription instances may be pooled across
// deliveries.
type Isolate struct {
	Name string

	mu     sync.Mutex
	fields map[int]any // per-isolate replicas, keyed by target ID

	// apiDepth > 0 marks execution inside a DEFCon API call: native
	// targets reached on that path are trusted (call 'D' in Figure 3).
	apiDepth atomic.Int32

	stats struct {
		fieldReads, fieldCopies, fieldWrites      atomic.Uint64
		nativeCalls, blockedNatives, blockedSyncs atomic.Uint64
		blockedFields, apiCalls                   atomic.Uint64
	}
}

// Stats snapshots the interceptor accounting.
func (iso *Isolate) Stats() Stats {
	return Stats{
		FieldReads:     iso.stats.fieldReads.Load(),
		FieldCopies:    iso.stats.fieldCopies.Load(),
		FieldWrites:    iso.stats.fieldWrites.Load(),
		NativeCalls:    iso.stats.nativeCalls.Load(),
		BlockedNatives: iso.stats.blockedNatives.Load(),
		BlockedSyncs:   iso.stats.blockedSyncs.Load(),
		BlockedFields:  iso.stats.blockedFields.Load(),
		APICalls:       iso.stats.apiCalls.Load(),
	}
}

// Enforcer executes an Analysis plan at runtime. It is shared by all
// isolates of a DEFCon instance and is safe for concurrent use.
type Enforcer struct {
	analysis *Analysis

	// defaults holds the shared initial value of every static-field
	// target; replicas are copied from here on demand.
	defaults []any

	// hotPath is the deterministic set of intercepted targets woven
	// into the DEFCon API fast path. Each unit API call traverses these
	// interceptors — the measurable cost of isolation in Figures 5–7.
	hotPath []hotTarget
}

type hotTarget struct {
	id   int
	kind TargetKind
}

// hotPathSize is how many woven interceptors a single DEFCon API call
// traverses. The paper reports ≈20 % throughput overhead for weaving
// with their unit workload; a dozen live interceptor hits per call
// reproduces that order of cost with real work.
const hotPathSize = 24

// NewEnforcer builds the runtime enforcement layer from an analysis.
func NewEnforcer(a *Analysis) *Enforcer {
	e := &Enforcer{
		analysis: a,
		defaults: make([]any, len(a.Catalog.Targets)),
	}
	for i := range a.Catalog.Targets {
		t := &a.Catalog.Targets[i]
		if t.Kind == StaticField {
			// Seed a plausible default: primitive fields get an int,
			// the rest a small shared string.
			if t.Field.Primitive {
				e.defaults[i] = int64(i)
			} else {
				e.defaults[i] = "jdk-default:" + t.Member
			}
		}
	}
	// Select the API hot path: alternate replicated fields and guarded
	// natives from the interceptor plan, in deterministic ID order.
	var fields, natives []int
	for _, id := range a.InterceptedIDs() {
		switch a.Catalog.Targets[id].Kind {
		case StaticField:
			fields = append(fields, id)
		case NativeMethod:
			natives = append(natives, id)
		}
	}
	for i := 0; len(e.hotPath) < hotPathSize && (i < len(fields) || i < len(natives)); i++ {
		if i < len(fields) {
			e.hotPath = append(e.hotPath, hotTarget{fields[i], StaticField})
		}
		if len(e.hotPath) < hotPathSize && i < len(natives) {
			e.hotPath = append(e.hotPath, hotTarget{natives[i], NativeMethod})
		}
	}
	return e
}

// NewIsolate creates a fresh isolation context for a unit instance.
func (e *Enforcer) NewIsolate(name string) *Isolate {
	return &Isolate{Name: name, fields: make(map[int]any)}
}

// EnterAPI marks the isolate as executing inside a trusted DEFCon API
// call; the returned function leaves it. Usage:
//
//	defer enforcer.EnterAPI(iso)()
func (e *Enforcer) EnterAPI(iso *Isolate) func() {
	iso.apiDepth.Add(1)
	return func() { iso.apiDepth.Add(-1) }
}

// GetStatic performs an intercepted static-field read on behalf of unit
// code.
func (e *Enforcer) GetStatic(iso *Isolate, id int) (any, error) {
	d, t, err := e.lookup(id)
	if err != nil {
		return nil, err
	}
	if t.Kind != StaticField {
		return nil, fmt.Errorf("%w: %s is not a static field", ErrSecurity, t.FullName())
	}
	switch d {
	case WhitelistedHeuristic, WhitelistedManual:
		return e.defaults[id], nil
	case InterceptReplicate:
		// On-demand deep copy, per-isolate reference (§4.2 "Automatic
		// runtime injection": copy on get access).
		iso.stats.fieldReads.Add(1)
		iso.mu.Lock()
		defer iso.mu.Unlock()
		v, ok := iso.fields[id]
		if !ok {
			v = copyFieldValue(e.defaults[id])
			iso.fields[id] = v
			iso.stats.fieldCopies.Add(1)
		}
		return v, nil
	case InterceptDeferredSet:
		// Primitive/constant types defer the copy to the first set.
		iso.stats.fieldReads.Add(1)
		iso.mu.Lock()
		defer iso.mu.Unlock()
		if v, ok := iso.fields[id]; ok {
			return v, nil
		}
		return e.defaults[id], nil
	case DEFConOnly:
		if iso.apiDepth.Load() > 0 {
			return e.defaults[id], nil
		}
		iso.stats.blockedFields.Add(1)
		return nil, fmt.Errorf("%w: %s", ErrNotLoaded, t.FullName())
	case Eliminated:
		return nil, fmt.Errorf("%w: %s", ErrNotLoaded, t.FullName())
	default:
		iso.stats.blockedFields.Add(1)
		return nil, fmt.Errorf("%w: field %s", ErrSecurity, t.FullName())
	}
}

// SetStatic performs an intercepted static-field write: the write lands
// in the isolate's replica and is never visible to other isolates —
// closing the Thread.threadSeqNum-style storage channel.
func (e *Enforcer) SetStatic(iso *Isolate, id int, v any) error {
	d, t, err := e.lookup(id)
	if err != nil {
		return err
	}
	if t.Kind != StaticField {
		return fmt.Errorf("%w: %s is not a static field", ErrSecurity, t.FullName())
	}
	switch d {
	case InterceptReplicate, InterceptDeferredSet:
		iso.stats.fieldWrites.Add(1)
		iso.mu.Lock()
		defer iso.mu.Unlock()
		iso.fields[id] = v
		return nil
	case WhitelistedHeuristic, WhitelistedManual:
		// White-listed fields are constants; a write from unit code is
		// a security exception (the heuristic guarantees no unit writes
		// them in practice).
		iso.stats.blockedFields.Add(1)
		return fmt.Errorf("%w: write to white-listed constant %s", ErrSecurity, t.FullName())
	case Eliminated, DEFConOnly:
		return fmt.Errorf("%w: %s", ErrNotLoaded, t.FullName())
	default:
		iso.stats.blockedFields.Add(1)
		return fmt.Errorf("%w: field %s", ErrSecurity, t.FullName())
	}
}

// InvokeNative performs an intercepted native-method call: permitted
// when white-listed, or when on a DEFCon API path (call 'D'); otherwise
// a security exception (call 'C').
func (e *Enforcer) InvokeNative(iso *Isolate, id int) error {
	d, t, err := e.lookup(id)
	if err != nil {
		return err
	}
	if t.Kind != NativeMethod {
		return fmt.Errorf("%w: %s is not a native method", ErrSecurity, t.FullName())
	}
	switch d {
	case WhitelistedHeuristic, WhitelistedManual:
		iso.stats.nativeCalls.Add(1)
		return nil
	case InterceptGuard:
		if iso.apiDepth.Load() > 0 {
			iso.stats.nativeCalls.Add(1)
			return nil
		}
		iso.stats.blockedNatives.Add(1)
		return fmt.Errorf("%w: native %s outside DEFCon API", ErrSecurity, t.FullName())
	case DEFConOnly:
		if iso.apiDepth.Load() > 0 {
			iso.stats.nativeCalls.Add(1)
			return nil
		}
		iso.stats.blockedNatives.Add(1)
		return fmt.Errorf("%w: %s", ErrNotLoaded, t.FullName())
	case Eliminated:
		return fmt.Errorf("%w: %s", ErrNotLoaded, t.FullName())
	default:
		iso.stats.blockedNatives.Add(1)
		return fmt.Errorf("%w: native %s", ErrSecurity, t.FullName())
	}
}

// SyncOn checks a unit's attempt to synchronise on v: permitted only
// for types implementing NeverShared (§4.3). Returns ErrSecurity
// otherwise — the runtime type check injected by AOP in the paper.
func (e *Enforcer) SyncOn(iso *Isolate, v any) error {
	if _, ok := v.(NeverShared); ok {
		return nil
	}
	iso.stats.blockedSyncs.Add(1)
	return fmt.Errorf("%w: synchronisation on shared type %T", ErrSecurity, v)
}

// APITax runs the interceptors woven into one DEFCon API call: the
// per-call cost of isolation that Figures 5–7 measure in the
// labels+freeze+isolation mode. The work is real — per-isolate map
// lookups, copy-on-first-read, guard checks and counters.
func (e *Enforcer) APITax(iso *Isolate) {
	iso.stats.apiCalls.Add(1)
	done := e.EnterAPI(iso)
	defer done()
	for _, h := range e.hotPath {
		switch h.kind {
		case StaticField:
			_, _ = e.GetStatic(iso, h.id)
		case NativeMethod:
			_ = e.InvokeNative(iso, h.id)
		}
	}
}

// HotPathLen reports the number of interceptors on the API fast path.
func (e *Enforcer) HotPathLen() int { return len(e.hotPath) }

// HotPathIDs returns the IDs of the targets on the API fast path, in
// traversal order; profiling uses them as its heat ranking.
func (e *Enforcer) HotPathIDs() []int {
	out := make([]int, len(e.hotPath))
	for i, h := range e.hotPath {
		out[i] = h.id
	}
	return out
}

// TargetID resolves a fully qualified member name (Class.Member) to
// its target ID.
func (e *Enforcer) TargetID(fullName string) (int, bool) {
	for i := range e.analysis.Catalog.Targets {
		if e.analysis.Catalog.Targets[i].FullName() == fullName {
			return i, true
		}
	}
	return 0, false
}

// lookup resolves a target ID to its decision and descriptor.
func (e *Enforcer) lookup(id int) (Decision, *Target, error) {
	if id < 0 || id >= len(e.analysis.Catalog.Targets) {
		return Undecided, nil, fmt.Errorf("%w: unknown target %d", ErrNotLoaded, id)
	}
	return e.analysis.Decisions[id], &e.analysis.Catalog.Targets[id], nil
}

// copyFieldValue deep-copies a field default for per-isolate
// replication. Field defaults are strings or int64s in the synthetic
// model; strings are re-allocated so the replica shares no storage.
func copyFieldValue(v any) any {
	if s, ok := v.(string); ok {
		return string(append([]byte(nil), s...))
	}
	return v
}
