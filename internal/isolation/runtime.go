package isolation

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrSecurity is the Go analogue of the security exception raised by a
// woven interceptor when unit code touches a blocked target (call 'C'
// in Figure 3).
var ErrSecurity = errors.New("isolation: security exception")

// ErrNotLoaded is returned when unit code names a target whose class
// was eliminated by the dependency trim or lies outside the unit
// class-loader white-list (call 'A' in Figure 3).
var ErrNotLoaded = errors.New("isolation: class not accessible to units")

// Stats are per-isolate interceptor accounting: how much runtime work
// the woven checks performed on behalf of this unit.
type Stats struct {
	FieldReads     uint64 // intercepted static-field get accesses
	FieldCopies    uint64 // on-demand per-isolate deep copies performed
	FieldWrites    uint64 // intercepted static-field set accesses
	NativeCalls    uint64 // guarded native invocations permitted
	BlockedNatives uint64 // native invocations denied (security exception)
	BlockedSyncs   uint64 // synchronisation attempts denied
	BlockedFields  uint64 // field accesses denied
	APICalls       uint64 // DEFCon API calls taxed by the weaving
}

// Isolate is one unit's isolation context: the per-isolate replicas of
// intercepted static fields plus interceptor accounting. An isolate is
// owned by a single unit instance; the replica store uses atomic slot
// pointers rather than a lock because managed-subscription instances
// may be pooled across deliveries and benchmark/race harnesses drive
// one isolate from several goroutines.
type Isolate struct {
	Name string

	// slots holds the per-isolate replicas of intercepted static
	// fields, indexed by the dense slot the compiled plan assigned at
	// NewEnforcer time (Analysis.ReplicaSlots). nil means "not yet
	// replicated": reads fall back to the shared default. Each slot is
	// an atomic pointer — a load observes either nil or a fully
	// published replica, so no mutex is needed even when a pooled
	// isolate is touched from more than one goroutine.
	slots []atomic.Pointer[any]

	// apiDepth > 0 marks execution inside a DEFCon API call: native
	// targets reached on that path are trusted (call 'D' in Figure 3).
	apiDepth atomic.Int32

	// warm flips to true after the first full (cold) APITax traversal:
	// every replicated hot-path field now has a slot, so subsequent
	// traversals take the memoized warm pass.
	warm atomic.Bool

	// warmReads/warmNatives are the per-traversal interceptor counts of
	// the compiled plan, snapshotted at NewIsolate time so Stats can
	// expand the coalesced warm counters without reaching back into the
	// enforcer. Written once at creation, read-only afterwards.
	warmReads, warmNatives uint64

	stats struct {
		fieldReads, fieldCopies, fieldWrites      atomic.Uint64
		nativeCalls, blockedNatives, blockedSyncs atomic.Uint64
		blockedFields, apiCalls                   atomic.Uint64
		// Coalesced warm-pass accounting: a warm traversal bumps
		// warmSweeps once and warmCalls by the number of API calls it
		// meters (APITaxN batches n calls into one sweep). Stats()
		// expands them into FieldReads/NativeCalls/APICalls.
		warmSweeps, warmCalls atomic.Uint64
	}
}

// Stats snapshots the interceptor accounting.
//
// Snapshot semantics: each counter is individually atomic but the group
// is read without a global lock, so a snapshot taken while another
// goroutine is mid-traversal may mix before/after values of different
// counters (e.g. APICalls already bumped, FieldReads not yet). Every
// counter is monotone, so two quiescent snapshots always difference
// correctly; consumers that need a consistent cut must quiesce the
// isolate first. The warm pass coalesces its per-traversal work into
// two counters (one sweep, n metered calls); Stats expands them here —
// FieldReads/NativeCalls grow by the plan's per-traversal interceptor
// counts per sweep (a batched APITaxN traverses once for n calls), and
// APICalls reflects every metered call, warm or cold. FieldCopies only
// ever moves on the cold path: a replica is copied exactly once.
func (iso *Isolate) Stats() Stats {
	sweeps := iso.stats.warmSweeps.Load()
	return Stats{
		FieldReads:     iso.stats.fieldReads.Load() + sweeps*iso.warmReads,
		FieldCopies:    iso.stats.fieldCopies.Load(),
		FieldWrites:    iso.stats.fieldWrites.Load(),
		NativeCalls:    iso.stats.nativeCalls.Load() + sweeps*iso.warmNatives,
		BlockedNatives: iso.stats.blockedNatives.Load(),
		BlockedSyncs:   iso.stats.blockedSyncs.Load(),
		BlockedFields:  iso.stats.blockedFields.Load(),
		APICalls:       iso.stats.apiCalls.Load() + iso.stats.warmCalls.Load(),
	}
}

// Enforcer executes an Analysis plan at runtime. It is shared by all
// isolates of a DEFCon instance and is safe for concurrent use.
//
// The enforcer compiles its interceptor plan once, at construction: the
// per-target decisions are snapshotted, every intercepted static field
// gets a dense replica slot, and the hot-path targets are resolved into
// typed plan entries. Mutating the Analysis afterwards (ApplyProfile)
// does not affect an already-built enforcer — rebuild to apply.
type Enforcer struct {
	analysis *Analysis

	// decisions is the plan-time snapshot of the analysis verdicts; the
	// steady-state paths never consult the live Analysis.
	decisions []Decision

	// defaults holds the shared initial value of every static-field
	// target; replicas are copied from here on demand.
	defaults []any

	// slotOf maps target ID → dense replica slot (-1 = no replica);
	// numSlots sizes each isolate's slot array.
	slotOf   []int32
	numSlots int

	// nameIndex resolves Class.Member → target ID in O(1).
	nameIndex map[string]int

	// plan is the compiled interceptor hot path woven into the DEFCon
	// API fast path: each entry carries its pre-resolved decision, kind
	// and replica slot, so a traversal never calls lookup or switches
	// on a live Decision. Each unit API call traverses these
	// interceptors — the measurable cost of isolation in Figures 5–7.
	plan []planEntry

	// warmPlan is the field subset of the plan in traversal order; the
	// memoized warm pass sweeps it checking replica existence.
	warmPlan []warmEntry

	// planReads/planNatives are the per-traversal interceptor counts,
	// copied into each isolate for coalesced accounting.
	planReads, planNatives uint64
}

// planEntry is one pre-dispatched interceptor on the compiled hot path.
type planEntry struct {
	id   int32
	slot int32 // replica slot for fields, -1 for natives
	kind TargetKind
	d    Decision
}

// warmEntry is one field interceptor of the warm sweep. required marks
// InterceptReplicate entries, whose replica must exist for the memoized
// pass to be valid; deferred-copy entries may legitimately still read
// the shared default (nil slot).
type warmEntry struct {
	slot     int32
	required bool
}

// hotPathSize is how many woven interceptors a single DEFCon API call
// traverses. The paper reports ≈20 % throughput overhead for weaving
// with their unit workload; a dozen live interceptor hits per call
// reproduces that order of cost with real work.
const hotPathSize = 24

// NewEnforcer builds the runtime enforcement layer from an analysis,
// compiling the interceptor plan (decision snapshot, replica slots,
// typed hot-path entries) so the steady-state traversal is lock-free.
func NewEnforcer(a *Analysis) *Enforcer {
	e := &Enforcer{
		analysis:  a,
		decisions: append([]Decision(nil), a.Decisions...),
		defaults:  make([]any, len(a.Catalog.Targets)),
		nameIndex: make(map[string]int, len(a.Catalog.Targets)),
	}
	for i := range a.Catalog.Targets {
		t := &a.Catalog.Targets[i]
		e.nameIndex[t.FullName()] = i
		if t.Kind == StaticField {
			// Seed a plausible default: primitive fields get an int,
			// the rest a small shared string.
			if t.Field.Primitive {
				e.defaults[i] = int64(i)
			} else {
				e.defaults[i] = "jdk-default:" + t.Member
			}
		}
	}
	e.slotOf, e.numSlots = a.ReplicaSlots()

	// Select the API hot path: alternate replicated fields and guarded
	// natives from the interceptor plan, in deterministic ID order.
	var fields, natives []int
	for _, id := range a.InterceptedIDs() {
		switch a.Catalog.Targets[id].Kind {
		case StaticField:
			fields = append(fields, id)
		case NativeMethod:
			natives = append(natives, id)
		}
	}
	add := func(id int) {
		e.plan = append(e.plan, planEntry{
			id:   int32(id),
			slot: e.slotOf[id],
			kind: a.Catalog.Targets[id].Kind,
			d:    e.decisions[id],
		})
	}
	for i := 0; len(e.plan) < hotPathSize && (i < len(fields) || i < len(natives)); i++ {
		if i < len(fields) {
			add(fields[i])
		}
		if len(e.plan) < hotPathSize && i < len(natives) {
			add(natives[i])
		}
	}
	for _, p := range e.plan {
		switch p.kind {
		case StaticField:
			e.planReads++
			e.warmPlan = append(e.warmPlan, warmEntry{
				slot:     p.slot,
				required: p.d == InterceptReplicate,
			})
		case NativeMethod:
			e.planNatives++
		}
	}
	return e
}

// NewIsolate creates a fresh isolation context for a unit instance.
func (e *Enforcer) NewIsolate(name string) *Isolate {
	return &Isolate{
		Name:        name,
		slots:       make([]atomic.Pointer[any], e.numSlots),
		warmReads:   e.planReads,
		warmNatives: e.planNatives,
	}
}

// EnterAPI marks the isolate as executing inside a trusted DEFCon API
// call; the returned function leaves it. Usage:
//
//	defer enforcer.EnterAPI(iso)()
func (e *Enforcer) EnterAPI(iso *Isolate) func() {
	iso.apiDepth.Add(1)
	return func() { iso.apiDepth.Add(-1) }
}

// GetStatic performs an intercepted static-field read on behalf of unit
// code.
func (e *Enforcer) GetStatic(iso *Isolate, id int) (any, error) {
	d, t, err := e.lookup(id)
	if err != nil {
		return nil, err
	}
	if t.Kind != StaticField {
		return nil, fmt.Errorf("%w: %s is not a static field", ErrSecurity, t.FullName())
	}
	switch d {
	case WhitelistedHeuristic, WhitelistedManual:
		return e.defaults[id], nil
	case InterceptReplicate:
		// On-demand deep copy, per-isolate reference (§4.2 "Automatic
		// runtime injection": copy on get access). The slot CAS keeps
		// the copy unique under concurrent first reads: the loser
		// observes the winner's replica, as with the old lock.
		iso.stats.fieldReads.Add(1)
		slot := &iso.slots[e.slotOf[id]]
		if p := slot.Load(); p != nil {
			return *p, nil
		}
		v := copyFieldValue(e.defaults[id])
		if slot.CompareAndSwap(nil, &v) {
			iso.stats.fieldCopies.Add(1)
			return v, nil
		}
		return *slot.Load(), nil
	case InterceptDeferredSet:
		// Primitive/constant types defer the copy to the first set.
		iso.stats.fieldReads.Add(1)
		if p := iso.slots[e.slotOf[id]].Load(); p != nil {
			return *p, nil
		}
		return e.defaults[id], nil
	case DEFConOnly:
		if iso.apiDepth.Load() > 0 {
			return e.defaults[id], nil
		}
		iso.stats.blockedFields.Add(1)
		return nil, fmt.Errorf("%w: %s", ErrNotLoaded, t.FullName())
	case Eliminated:
		return nil, fmt.Errorf("%w: %s", ErrNotLoaded, t.FullName())
	default:
		iso.stats.blockedFields.Add(1)
		return nil, fmt.Errorf("%w: field %s", ErrSecurity, t.FullName())
	}
}

// SetStatic performs an intercepted static-field write: the write lands
// in the isolate's replica and is never visible to other isolates —
// closing the Thread.threadSeqNum-style storage channel.
func (e *Enforcer) SetStatic(iso *Isolate, id int, v any) error {
	d, t, err := e.lookup(id)
	if err != nil {
		return err
	}
	if t.Kind != StaticField {
		return fmt.Errorf("%w: %s is not a static field", ErrSecurity, t.FullName())
	}
	switch d {
	case InterceptReplicate, InterceptDeferredSet:
		iso.stats.fieldWrites.Add(1)
		iso.slots[e.slotOf[id]].Store(&v)
		return nil
	case WhitelistedHeuristic, WhitelistedManual:
		// White-listed fields are constants; a write from unit code is
		// a security exception (the heuristic guarantees no unit writes
		// them in practice).
		iso.stats.blockedFields.Add(1)
		return fmt.Errorf("%w: write to white-listed constant %s", ErrSecurity, t.FullName())
	case Eliminated, DEFConOnly:
		return fmt.Errorf("%w: %s", ErrNotLoaded, t.FullName())
	default:
		iso.stats.blockedFields.Add(1)
		return fmt.Errorf("%w: field %s", ErrSecurity, t.FullName())
	}
}

// InvokeNative performs an intercepted native-method call: permitted
// when white-listed, or when on a DEFCon API path (call 'D'); otherwise
// a security exception (call 'C').
func (e *Enforcer) InvokeNative(iso *Isolate, id int) error {
	d, t, err := e.lookup(id)
	if err != nil {
		return err
	}
	if t.Kind != NativeMethod {
		return fmt.Errorf("%w: %s is not a native method", ErrSecurity, t.FullName())
	}
	switch d {
	case WhitelistedHeuristic, WhitelistedManual:
		iso.stats.nativeCalls.Add(1)
		return nil
	case InterceptGuard:
		if iso.apiDepth.Load() > 0 {
			iso.stats.nativeCalls.Add(1)
			return nil
		}
		iso.stats.blockedNatives.Add(1)
		return fmt.Errorf("%w: native %s outside DEFCon API", ErrSecurity, t.FullName())
	case DEFConOnly:
		if iso.apiDepth.Load() > 0 {
			iso.stats.nativeCalls.Add(1)
			return nil
		}
		iso.stats.blockedNatives.Add(1)
		return fmt.Errorf("%w: %s", ErrNotLoaded, t.FullName())
	case Eliminated:
		return fmt.Errorf("%w: %s", ErrNotLoaded, t.FullName())
	default:
		iso.stats.blockedNatives.Add(1)
		return fmt.Errorf("%w: native %s", ErrSecurity, t.FullName())
	}
}

// SyncOn checks a unit's attempt to synchronise on v: permitted only
// for types implementing NeverShared (§4.3). Returns ErrSecurity
// otherwise — the runtime type check injected by AOP in the paper.
func (e *Enforcer) SyncOn(iso *Isolate, v any) error {
	if _, ok := v.(NeverShared); ok {
		return nil
	}
	iso.stats.blockedSyncs.Add(1)
	return fmt.Errorf("%w: synchronisation on shared type %T", ErrSecurity, v)
}

// APITax runs the interceptors woven into one DEFCon API call: the
// per-call cost of isolation that Figures 5–7 measure in the
// labels+freeze+isolation mode. The first traversal of an isolate is
// cold — full interceptor semantics, copying replicated fields into
// their slots; every later traversal takes the memoized warm pass.
func (e *Enforcer) APITax(iso *Isolate) { e.APITaxN(iso, 1) }

// APITaxN meters n API calls through one interceptor traversal — the
// batched entry used by Unit's batch delivery paths (PublishBatch,
// GetEvents): a batch of n events enters and leaves the API region
// once, amortising the traversal bookkeeping while still accounting
// all n calls.
func (e *Enforcer) APITaxN(iso *Isolate, n int) {
	if n <= 0 {
		return
	}
	if iso.warm.Load() && e.warmTax(iso, uint64(n)) {
		return
	}
	e.coldTax(iso)
	if n > 1 {
		e.warmTax(iso, uint64(n-1))
	}
}

// warmTax is the memoized warm pass: guard checks and accounting only.
// It performs zero mutex acquisitions, zero map operations and exactly
// two atomic adds per traversal — the per-entry work is an atomic slot
// load (the value unit code would observe through the woven getter)
// plus the pre-dispatched guard verdicts, which the compiled plan has
// already resolved: a replicated field is valid while its replica
// exists, and a guarded native is permitted because the traversal is a
// DEFCon API path by construction. Reports false — without counting
// anything — if a required replica is missing, sending the caller back
// to the cold path.
func (e *Enforcer) warmTax(iso *Isolate, n uint64) bool {
	for _, w := range e.warmPlan {
		if iso.slots[w.slot].Load() == nil && w.required {
			return false
		}
	}
	iso.stats.warmSweeps.Add(1)
	iso.stats.warmCalls.Add(n)
	return true
}

// coldTax is the first, uncached traversal of an isolate: it runs every
// plan entry through the full interceptor (copying replicated fields
// into their slots, checking native guards inside the API region) with
// per-interceptor accounting, then memoizes the isolate as warm — the
// cold pass has materialised every required replica, and replicas are
// never removed, so warmth is permanent.
func (e *Enforcer) coldTax(iso *Isolate) {
	iso.stats.apiCalls.Add(1)
	done := e.EnterAPI(iso)
	for _, p := range e.plan {
		switch p.kind {
		case StaticField:
			_, _ = e.GetStatic(iso, int(p.id))
		case NativeMethod:
			_ = e.InvokeNative(iso, int(p.id))
		}
	}
	done()
	iso.warm.Store(true)
}

// HotPathLen reports the number of interceptors on the API fast path.
func (e *Enforcer) HotPathLen() int { return len(e.plan) }

// HotPathIDs returns the IDs of the targets on the API fast path, in
// traversal order; profiling uses them as its heat ranking.
func (e *Enforcer) HotPathIDs() []int {
	out := make([]int, len(e.plan))
	for i, p := range e.plan {
		out[i] = int(p.id)
	}
	return out
}

// ReplicaSlotCount reports the number of per-isolate replica slots the
// compiled plan assigned (one per intercepted static field).
func (e *Enforcer) ReplicaSlotCount() int { return e.numSlots }

// TargetID resolves a fully qualified member name (Class.Member) to
// its target ID via the name index built at NewEnforcer time.
func (e *Enforcer) TargetID(fullName string) (int, bool) {
	id, ok := e.nameIndex[fullName]
	return id, ok
}

// lookup resolves a target ID to its plan-time decision and descriptor.
func (e *Enforcer) lookup(id int) (Decision, *Target, error) {
	if id < 0 || id >= len(e.decisions) {
		return Undecided, nil, fmt.Errorf("%w: unknown target %d", ErrNotLoaded, id)
	}
	return e.decisions[id], &e.analysis.Catalog.Targets[id], nil
}

// copyFieldValue deep-copies a field default for per-isolate
// replication. Field defaults are strings or int64s in the synthetic
// model; strings are re-allocated so the replica shares no storage.
func copyFieldValue(v any) any {
	if s, ok := v.(string); ok {
		return string(append([]byte(nil), s...))
	}
	return v
}
