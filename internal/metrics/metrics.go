// Package metrics provides the measurement instruments used by the
// evaluation harness (paper §6.2): latency histograms with percentile
// queries (Figures 6 and 9 report the 70th percentile), windowed
// throughput sampling (Figures 5 and 8 report the median of 100 ms
// windows), and heap usage snapshots (Figure 7).
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram is a log-scaled latency histogram: 64 power-of-two major
// buckets each split into 16 linear minor buckets, giving ≤6.25 %
// relative quantile error over the full int64 nanosecond range with a
// fixed 8 KiB footprint. It is safe for concurrent recording.
type Histogram struct {
	counts [64 * 16]atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Int64
	min    atomic.Int64
	max    atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	major := 63 - bits.LeadingZeros64(uint64(v)|1)
	var minor int64
	if major >= 4 {
		minor = (v >> (uint(major) - 4)) & 15
	} else {
		minor = v & 15
	}
	return major*16 + int(minor)
}

// bucketLow returns the lower bound of a bucket.
func bucketLow(idx int) int64 {
	major := idx / 16
	minor := int64(idx % 16)
	if major < 4 {
		return minor
	}
	return (1 << uint(major)) + (minor << (uint(major) - 4))
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	h.counts[bucketOf(v)].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
	for {
		old := h.min.Load()
		if v >= old || h.min.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Mean returns the arithmetic mean of the samples, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Min returns the smallest recorded sample, or 0 when empty.
func (h *Histogram) Min() int64 {
	if h.total.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest recorded sample, or 0 when empty.
func (h *Histogram) Max() int64 {
	if h.total.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// Percentile returns the approximate p-th percentile (0 < p ≤ 100).
// The paper reports the 70th percentile of trade latencies, ignoring
// higher percentiles that are dominated by GC pauses and workload
// spikes.
func (h *Histogram) Percentile(p float64) int64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p / 100 * float64(n)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			return bucketLow(i)
		}
	}
	return h.Max()
}

// Snapshot renders the key statistics.
func (h *Histogram) Snapshot() string {
	return fmt.Sprintf("n=%d min=%v p50=%v p70=%v p99=%v max=%v mean=%v",
		h.Count(),
		time.Duration(h.Min()),
		time.Duration(h.Percentile(50)),
		time.Duration(h.Percentile(70)),
		time.Duration(h.Percentile(99)),
		time.Duration(h.Max()),
		time.Duration(int64(h.Mean())))
}

// Throughput measures event rates over fixed windows: Add counts
// events; a sampler goroutine (or explicit Sample calls) closes
// windows. The paper reports the median of 100 ms windows.
type Throughput struct {
	count atomic.Uint64

	mu      sync.Mutex
	last    uint64
	lastAt  time.Time
	windows []float64 // events/second per closed window
}

// NewThroughput returns a throughput meter with the clock started.
func NewThroughput() *Throughput {
	return &Throughput{lastAt: time.Now()}
}

// Add counts n events.
func (t *Throughput) Add(n uint64) { t.count.Add(n) }

// Sample closes the current window, recording its rate.
func (t *Throughput) Sample() {
	now := time.Now()
	cur := t.count.Load()
	t.mu.Lock()
	defer t.mu.Unlock()
	dt := now.Sub(t.lastAt).Seconds()
	if dt <= 0 {
		return
	}
	t.windows = append(t.windows, float64(cur-t.last)/dt)
	t.last = cur
	t.lastAt = now
}

// Run samples every interval until stop is closed. Call in a goroutine:
//
//	go th.Run(100*time.Millisecond, stop)
func (t *Throughput) Run(interval time.Duration, stop <-chan struct{}) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			t.Sample()
		case <-stop:
			return
		}
	}
}

// Median returns the median window rate in events/second.
func (t *Throughput) Median() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.windows) == 0 {
		return 0
	}
	ws := append([]float64(nil), t.windows...)
	sort.Float64s(ws)
	mid := len(ws) / 2
	if len(ws)%2 == 1 {
		return ws[mid]
	}
	return (ws[mid-1] + ws[mid]) / 2
}

// Windows returns the number of closed windows.
func (t *Throughput) Windows() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.windows)
}

// Total returns the total event count.
func (t *Throughput) Total() uint64 { return t.count.Load() }

// HeapInUseMiB reports the live heap after a GC cycle, the Figure 7
// measurement.
func HeapInUseMiB() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapInuse) / (1 << 20)
}

// HeapInUseMiBNoGC reports the instantaneous live heap without forcing
// a collection (for steady-state sampling mid-run).
func HeapInUseMiBNoGC() float64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapInuse) / (1 << 20)
}
