package metrics

import (
	"math"
	"math/rand"
	"slices"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	if h.Percentile(70) != 0 {
		t.Fatal("empty percentile not zero")
	}
	for i := int64(1); i <= 100; i++ {
		h.Record(i * 1000)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != 1000 || h.Max() != 100000 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if m := h.Mean(); math.Abs(m-50500) > 1 {
		t.Fatalf("Mean = %f", m)
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(1))
	var samples []int64
	for i := 0; i < 100000; i++ {
		// Latency-like distribution: microseconds to tens of ms.
		v := int64(1000 + rng.ExpFloat64()*2e6)
		samples = append(samples, v)
		h.Record(v)
	}
	// Sort once for exact percentiles (a per-call insertion sort here
	// once dominated the package's test wall time).
	sorted := append([]int64(nil), samples...)
	slices.Sort(sorted)
	exact := func(p float64) int64 {
		ix := int(math.Ceil(p/100*float64(len(sorted)))) - 1
		return sorted[ix]
	}
	for _, p := range []float64{50, 70, 90, 99} {
		got, want := h.Percentile(p), exact(p)
		rel := math.Abs(float64(got-want)) / float64(want)
		if rel > 0.08 {
			t.Errorf("p%.0f = %d, exact %d (rel err %.3f)", p, got, want, rel)
		}
	}
}

func TestHistogramQuickMonotonePercentiles(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range raw {
			h.Record(int64(v))
		}
		last := int64(0)
		for p := 10.0; p <= 100; p += 10 {
			cur := h.Percentile(p)
			if cur < last {
				return false
			}
			last = cur
		}
		return h.Percentile(100) <= h.Max() && int64(0) <= h.Percentile(1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				h.Record(int64(w*10000 + i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 80000 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Count() != 1 {
		t.Fatal("negative sample dropped")
	}
	if h.Percentile(50) < 0 {
		t.Fatal("negative percentile")
	}
}

func TestHistogramSnapshotRenders(t *testing.T) {
	h := NewHistogram()
	h.Record(1000)
	if s := h.Snapshot(); s == "" {
		t.Fatal("empty snapshot")
	}
}

func TestThroughputWindows(t *testing.T) {
	th := NewThroughput()
	if th.Median() != 0 {
		t.Fatal("empty median not zero")
	}
	th.Add(1000)
	time.Sleep(20 * time.Millisecond)
	th.Sample()
	th.Add(3000)
	time.Sleep(20 * time.Millisecond)
	th.Sample()
	if th.Windows() != 2 {
		t.Fatalf("windows = %d", th.Windows())
	}
	if th.Total() != 4000 {
		t.Fatalf("total = %d", th.Total())
	}
	med := th.Median()
	if med <= 0 || med > 1e9 {
		t.Fatalf("median = %f", med)
	}
}

func TestThroughputMedianOddEven(t *testing.T) {
	th := NewThroughput()
	th.mu.Lock()
	th.windows = []float64{100, 300, 200}
	th.mu.Unlock()
	if th.Median() != 200 {
		t.Fatalf("odd median = %f", th.Median())
	}
	th.mu.Lock()
	th.windows = []float64{100, 200, 300, 400}
	th.mu.Unlock()
	if th.Median() != 250 {
		t.Fatalf("even median = %f", th.Median())
	}
}

func TestThroughputRunSampler(t *testing.T) {
	th := NewThroughput()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		th.Run(10*time.Millisecond, stop)
		close(done)
	}()
	th.Add(500)
	time.Sleep(60 * time.Millisecond)
	close(stop)
	<-done
	if th.Windows() < 2 {
		t.Fatalf("sampler closed %d windows", th.Windows())
	}
}

func TestHeapInUse(t *testing.T) {
	if HeapInUseMiB() <= 0 {
		t.Fatal("heap zero")
	}
	if HeapInUseMiBNoGC() <= 0 {
		t.Fatal("heap (no GC) zero")
	}
}
